#include "model/ncf_model.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {
constexpr double kEmbInitStd = 0.1;
}  // namespace

NcfModel::NcfModel(int embedding_dim, std::vector<int> hidden_dims)
    : dim_(embedding_dim), hidden_dims_(std::move(hidden_dims)) {
  if (hidden_dims_.empty()) {
    hidden_dims_ = {embedding_dim, std::max(1, embedding_dim / 2)};
  }
  for (int h : hidden_dims_) PIECK_CHECK(h > 0);
}

GlobalModel NcfModel::InitGlobalModel(int num_items, Rng& rng) const {
  GlobalModel g;
  g.item_embeddings =
      Matrix(static_cast<size_t>(num_items), static_cast<size_t>(dim_));
  g.item_embeddings.RandomNormal(rng, 0.0, kEmbInitStd);

  int in = 2 * dim_;
  for (int out : hidden_dims_) {
    Matrix w(static_cast<size_t>(out), static_cast<size_t>(in));
    // Glorot-uniform keeps activations well-scaled through the tower.
    double bound = std::sqrt(6.0 / static_cast<double>(in + out));
    w.RandomUniform(rng, -bound, bound);
    g.mlp_weights.push_back(std::move(w));
    g.mlp_biases.push_back(Zeros(static_cast<size_t>(out)));
    in = out;
  }
  g.projection = Vec(static_cast<size_t>(in));
  double bound = std::sqrt(6.0 / static_cast<double>(in + 1));
  for (double& x : g.projection) x = rng.Uniform(-bound, bound);
  return g;
}

Vec NcfModel::InitUserEmbedding(Rng& rng) const {
  Vec u(static_cast<size_t>(dim_));
  for (double& x : u) x = rng.Normal(0.0, kEmbInitStd);
  return u;
}

double NcfModel::Forward(const GlobalModel& g, const Vec& u, const Vec& v,
                         ForwardCache* cache) const {
  PIECK_CHECK(static_cast<int>(u.size()) == dim_ &&
              static_cast<int>(v.size()) == dim_);
  PIECK_CHECK(g.mlp_weights.size() == hidden_dims_.size());

  Vec x;
  x.reserve(2 * static_cast<size_t>(dim_));
  x.insert(x.end(), u.begin(), u.end());
  x.insert(x.end(), v.begin(), v.end());

  ForwardCache local;
  ForwardCache& c = cache != nullptr ? *cache : local;
  c.input = x;
  c.pre.clear();
  c.act.clear();
  c.pre.reserve(hidden_dims_.size());
  c.act.reserve(hidden_dims_.size());

  const KernelTable& k = ActiveKernels();
  Vec cur = std::move(x);
  for (size_t l = 0; l < g.mlp_weights.size(); ++l) {
    Vec pre = g.mlp_weights[l].MatVec(cur);
    Axpy(1.0, g.mlp_biases[l], pre);
    Vec act(pre.size());
    k.relu(pre.data(), act.data(), pre.size());
    c.pre.push_back(std::move(pre));
    cur = act;
    c.act.push_back(std::move(act));
  }
  double logit = Dot(g.projection, cur);
  c.logit = logit;
  return logit;
}

void NcfModel::Backward(const GlobalModel& g, const Vec& u, const Vec& v,
                        const ForwardCache& cache, double dlogit, Vec* grad_u,
                        Vec* grad_v, InteractionGrads* igrads) const {
  PIECK_CHECK(cache.pre.size() == g.mlp_weights.size());
  const size_t L = g.mlp_weights.size();
  const KernelTable& k = ActiveKernels();

  // d logit / d z_L = h.
  Vec delta = g.projection;  // gradient flowing into the top activation
  Scale(dlogit, delta);

  if (igrads != nullptr && igrads->active) {
    // dh += dlogit * z_L.
    const Vec& z_top = L > 0 ? cache.act[L - 1] : cache.input;
    Axpy(dlogit, z_top, igrads->projection);
  }

  for (size_t l = L; l-- > 0;) {
    // Through ReLU: zero delta where pre <= 0 (masked selection).
    Vec delta_pre = delta;
    k.relu_backward(cache.pre[l].data(), delta_pre.data(), delta_pre.size());
    const Vec& layer_in = l > 0 ? cache.act[l - 1] : cache.input;
    if (igrads != nullptr && igrads->active) {
      igrads->weights[l].AddOuter(1.0, delta_pre, layer_in);
      Axpy(1.0, delta_pre, igrads->biases[l]);
    }
    delta = g.mlp_weights[l].MatTVec(delta_pre);
  }

  // delta now holds d logit / d input (times dlogit); the first dim_
  // entries belong to u, the rest to v.
  const size_t d = static_cast<size_t>(dim_);
  if (grad_u != nullptr) {
    PIECK_CHECK(grad_u->size() == u.size());
    k.axpy(1.0, delta.data(), grad_u->data(), d);
  }
  if (grad_v != nullptr) {
    PIECK_CHECK(grad_v->size() == v.size());
    k.axpy(1.0, delta.data() + d, grad_v->data(), d);
  }
}

}  // namespace pieck
