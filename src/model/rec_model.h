#ifndef PIECK_MODEL_REC_MODEL_H_
#define PIECK_MODEL_REC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/global_model.h"
#include "tensor/vector_ops.h"

namespace pieck {

/// Which base recommender the federation runs (§III-A).
enum class ModelKind {
  kMatrixFactorization,  // MF-FRS: fixed dot-product interaction
  kNeuralCf,             // DL-FRS: learnable MLP interaction (NCF)
};

const char* ModelKindToString(ModelKind kind);

/// Per-example forward activations cached for the backward pass.
/// MF leaves the layer vectors empty.
struct ForwardCache {
  double logit = 0.0;
  Vec input;                  // u ⊕ v (DL only)
  std::vector<Vec> pre;       // pre-activation of each MLP layer
  std::vector<Vec> act;       // post-ReLU activation of each MLP layer
};

/// Abstract base recommender. Implementations provide the interaction
/// function Ψ and analytic gradients of the logit with respect to the
/// user embedding, the item embedding, and (for DL-FRS) the interaction
/// parameters. All loss functions in the library (BCE, BPR, the attack
/// losses) are expressed on top of these two primitives.
class RecModel {
 public:
  virtual ~RecModel() = default;

  virtual ModelKind kind() const = 0;
  virtual int embedding_dim() const = 0;

  /// True if the interaction function has learnable parameters that are
  /// part of the global model (DL-FRS).
  virtual bool has_learnable_interaction() const = 0;

  /// Initializes the global model for `num_items` items.
  virtual GlobalModel InitGlobalModel(int num_items, Rng& rng) const = 0;

  /// Initializes one client's private user embedding.
  virtual Vec InitUserEmbedding(Rng& rng) const = 0;

  /// Computes the pre-sigmoid logit s for (u, v); fills `cache` for a
  /// subsequent Backward call. `cache` may be nullptr for scoring only.
  virtual double Forward(const GlobalModel& g, const Vec& u, const Vec& v,
                         ForwardCache* cache) const = 0;

  /// Scores the item range [first, first + count): out[i] =
  /// Forward(g, u, item first + i) for i in [0, count); `out` holds
  /// `count` doubles. The range form is the serving/evaluation hot
  /// path: the top-K server streams tile-sized ranges through it, and
  /// HR@K scores single sampled negatives. The default loops Forward
  /// over borrowed rows with one reused buffer; MF overrides it with a
  /// batched gemv over the row range, bit-identical to the loop by the
  /// kernel contract. Thread-safe for concurrent calls with distinct
  /// `out`.
  virtual void ScoreItemsRange(const GlobalModel& g, const Vec& u, int first,
                               int count, double* out) const;

  /// Scores every item: out[j] = Forward(g, u, item j) for j in
  /// [0, g.num_items()); `out` holds g.num_items() doubles. Wrapper for
  /// ScoreItemsRange over the whole table.
  void ScoreItems(const GlobalModel& g, const Vec& u, double* out) const {
    ScoreItemsRange(g, u, 0, g.num_items(), out);
  }

  /// Given d(loss)/d(logit) (already multiplied by any example weight),
  /// accumulates gradients: grad_u += dlogit * ds/du, grad_v += dlogit *
  /// ds/dv, and interaction grads if `igrads` is non-null and active.
  /// `cache` must come from Forward on the same (g, u, v).
  virtual void Backward(const GlobalModel& g, const Vec& u, const Vec& v,
                        const ForwardCache& cache, double dlogit, Vec* grad_u,
                        Vec* grad_v, InteractionGrads* igrads) const = 0;

  /// Predicted probability x̂ = σ(logit). Convenience wrapper.
  double ScoreProb(const GlobalModel& g, const Vec& u, const Vec& v) const;
};

/// Options for the NCF tower. hidden_dims lists the output width of each
/// MLP layer; the input of the first layer is 2*embedding_dim.
struct NcfOptions {
  std::vector<int> hidden_dims;  // default: {embedding_dim, embedding_dim/2}
};

/// Factory. For kNeuralCf, `ncf` customizes the tower.
std::unique_ptr<RecModel> MakeModel(ModelKind kind, int embedding_dim,
                                    const NcfOptions& ncf = {});

}  // namespace pieck

#endif  // PIECK_MODEL_REC_MODEL_H_
