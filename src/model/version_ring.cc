#include "model/version_ring.h"

#include <algorithm>

#include "common/logging.h"

namespace pieck {

void ModelVersionRing::Reset(const GlobalModel& base, int64_t base_version,
                             int depth) {
  PIECK_CHECK(depth >= 1);
  PIECK_CHECK(base_version >= 0);
  depth_ = depth;
  newest_.store(base_version, std::memory_order_release);
  slots_.assign(static_cast<size_t>(depth), base);
  dirty_ring_.resize(static_cast<size_t>(depth));
  for (auto& d : dirty_ring_) d.clear();
}

void ModelVersionRing::Publish(const GlobalModel& live, int64_t version,
                               const DirtyRowSet& dirty_rows) {
  PIECK_CHECK(depth_ >= 1) << "Publish before Reset";
  const int64_t newest = newest_.load(std::memory_order_relaxed);
  PIECK_CHECK(version == newest + 1)
      << "versions publish consecutively: got " << version << " after "
      << newest;
  dirty_ring_[static_cast<size_t>(version % depth_)].assign(
      dirty_rows.rows().begin(), dirty_rows.rows().end());

  GlobalModel& slot = slots_[static_cast<size_t>(version % depth_)];
  // The slot holds version - depth; the union of the retained dirty
  // lists (versions version-depth+1 .. version) is exactly what changed
  // since. Duplicate rows across lists just re-copy a row — harmless.
  const size_t dim = live.item_embeddings.cols();
  for (const std::vector<int>& dirty : dirty_ring_) {
    for (int row : dirty) {
      const size_t r = static_cast<size_t>(row);
      const double* src = live.item_embeddings.RowPtr(r);
      double* dst = slot.item_embeddings.MutableRowPtr(r);
      std::copy(src, src + dim, dst);
    }
  }
  if (live.has_interaction_params()) {
    slot.mlp_weights = live.mlp_weights;
    slot.mlp_biases = live.mlp_biases;
    slot.projection = live.projection;
  }
  newest_.store(version, std::memory_order_release);
}

const GlobalModel& ModelVersionRing::Snapshot(int64_t version) const {
  PIECK_CHECK(depth_ >= 1) << "Snapshot before Reset";
  const int64_t newest = newest_.load(std::memory_order_acquire);
  PIECK_CHECK(version <= newest && version > newest - depth_)
      << "version " << version << " outside the ring window ("
      << newest - depth_ + 1 << " .. " << newest << ")";
  return slots_[static_cast<size_t>(version % depth_)];
}

int64_t ModelVersionRing::CapacityBytes() const {
  int64_t bytes = 0;
  for (const GlobalModel& m : slots_) {
    bytes += static_cast<int64_t>(m.item_embeddings.data().capacity() *
                                  sizeof(double));
    for (const Matrix& w : m.mlp_weights) {
      bytes += static_cast<int64_t>(w.data().capacity() * sizeof(double));
    }
    for (const Vec& b : m.mlp_biases) {
      bytes += static_cast<int64_t>(b.capacity() * sizeof(double));
    }
    bytes += static_cast<int64_t>(m.projection.capacity() * sizeof(double));
  }
  for (const std::vector<int>& d : dirty_ring_) {
    bytes += static_cast<int64_t>(d.capacity() * sizeof(int));
  }
  return bytes;
}

}  // namespace pieck
