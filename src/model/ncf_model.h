#ifndef PIECK_MODEL_NCF_MODEL_H_
#define PIECK_MODEL_NCF_MODEL_H_

#include <vector>

#include "model/rec_model.h"

namespace pieck {

/// Neural collaborative filtering FRS (DL-FRS, Eq. 1):
///   Ψ_DL(u, v) = sigmoid(h^T φ_L(... φ_1(u ⊕ v))),
///   φ_l(x) = ReLU(W_l x + b_l).
/// The logit is h^T z_L. W_l, b_l, and h are part of the global model and
/// are collaboratively trained — and therefore poisonable (A-RA/A-HUM).
class NcfModel : public RecModel {
 public:
  /// `hidden_dims[l]` is the output width of layer l; input width of
  /// layer 0 is 2*embedding_dim. Empty hidden_dims defaults to
  /// {embedding_dim, embedding_dim/2}.
  NcfModel(int embedding_dim, std::vector<int> hidden_dims);

  ModelKind kind() const override { return ModelKind::kNeuralCf; }
  int embedding_dim() const override { return dim_; }
  bool has_learnable_interaction() const override { return true; }

  GlobalModel InitGlobalModel(int num_items, Rng& rng) const override;
  Vec InitUserEmbedding(Rng& rng) const override;

  double Forward(const GlobalModel& g, const Vec& u, const Vec& v,
                 ForwardCache* cache) const override;
  void Backward(const GlobalModel& g, const Vec& u, const Vec& v,
                const ForwardCache& cache, double dlogit, Vec* grad_u,
                Vec* grad_v, InteractionGrads* igrads) const override;

  const std::vector<int>& hidden_dims() const { return hidden_dims_; }

 private:
  int dim_;
  std::vector<int> hidden_dims_;
};

}  // namespace pieck

#endif  // PIECK_MODEL_NCF_MODEL_H_
