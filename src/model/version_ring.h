/// \file
/// Double-buffered (depth-D) immutable snapshots of the global model.
///
/// The bounded-staleness round pipeline trains round r+1 against a
/// frozen copy of the model while round r's apply stage mutates the
/// live `GlobalModel`. `ModelVersionRing` holds the last `depth`
/// published versions in a slot ring (version v lives in slot
/// `v % depth`), so a training stage can read any version within the
/// staleness window without ever touching the live model.
///
/// Publish is incremental: the caller passes the item rows dirtied
/// since the *previous* version (the apply stage's router groups), the
/// ring remembers the last `depth` dirty lists, and refreshing a slot —
/// whose content is exactly `depth` versions old — copies only the
/// union of those lists plus the (dense) interaction parameters. A
/// steady-state publish therefore costs O(touched rows · dim), not
/// O(items · dim), and allocates nothing once the dirty ring reaches
/// capacity.
///
/// Thread-safety contract: the slot contents are unsynchronized. The
/// pipeline guarantees externally (mutex/condvar handoff) that
/// `Publish(v)` never runs concurrently with a reader of slot
/// `v % depth` — the only reader of that slot is the training stage of
/// round v-1's cohort, which completed before v's apply began. The
/// version watermark `newest_` *is* crossed concurrently (the apply
/// thread publishes while the driver bounds-checks its snapshot), so it
/// is an atomic: Publish release-stores it after the slot copy, readers
/// acquire-load it.
#ifndef PIECK_MODEL_VERSION_RING_H_
#define PIECK_MODEL_VERSION_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "model/global_model.h"
#include "storage/dirty_rows.h"

namespace pieck {

class ModelVersionRing {
 public:
  /// Re-arms the ring with `depth` slots, every slot holding a full
  /// copy of `base` (the live model at version `base_version`). O(depth
  /// · model size); called once per pipelined block, not per round.
  void Reset(const GlobalModel& base, int64_t base_version, int depth);

  /// Publishes the live model as `version` (must be `newest() + 1`):
  /// records `dirty_rows` (item rows changed since `version - 1`) and
  /// refreshes slot `version % depth` by copying the union of the last
  /// `depth` dirty lists plus the interaction parameters from `live`.
  void Publish(const GlobalModel& live, int64_t version,
               const DirtyRowSet& dirty_rows);

  /// Borrowed snapshot of `version`; it must be within the last
  /// `depth` published versions. Valid until that slot is republished.
  const GlobalModel& Snapshot(int64_t version) const;

  int depth() const { return depth_; }
  int64_t newest() const { return newest_.load(std::memory_order_acquire); }

  /// Resident bytes of the snapshot slots and dirty lists (telemetry).
  int64_t CapacityBytes() const;

 private:
  int depth_ = 0;
  std::atomic<int64_t> newest_{-1};
  std::vector<GlobalModel> slots_;            // slot v % depth_
  std::vector<std::vector<int>> dirty_ring_;  // dirty rows of version v
};

}  // namespace pieck

#endif  // PIECK_MODEL_VERSION_RING_H_
