#ifndef PIECK_MODEL_MF_MODEL_H_
#define PIECK_MODEL_MF_MODEL_H_

#include "model/rec_model.h"

namespace pieck {

/// Matrix-factorization FRS: Ψ_MF(u, v) = u ⊙ v (dot product, Eq. in
/// §III-A). The logit is the raw dot product; BCE is applied on σ(u·v).
/// There are no learnable interaction parameters, which is exactly why
/// interaction-function attacks (A-RA/A-HUM) lose power here (Table III).
class MfModel : public RecModel {
 public:
  explicit MfModel(int embedding_dim) : dim_(embedding_dim) {}

  ModelKind kind() const override { return ModelKind::kMatrixFactorization; }
  int embedding_dim() const override { return dim_; }
  bool has_learnable_interaction() const override { return false; }

  GlobalModel InitGlobalModel(int num_items, Rng& rng) const override;
  Vec InitUserEmbedding(Rng& rng) const override;

  double Forward(const GlobalModel& g, const Vec& u, const Vec& v,
                 ForwardCache* cache) const override;
  void Backward(const GlobalModel& g, const Vec& u, const Vec& v,
                const ForwardCache& cache, double dlogit, Vec* grad_u,
                Vec* grad_v, InteractionGrads* igrads) const override;
  /// One batched gemv over the item-embedding row range; bit-identical
  /// to the per-item Forward loop (dot is commutative per IEEE-754 and
  /// gemv rows reduce in dot's lane order).
  void ScoreItemsRange(const GlobalModel& g, const Vec& u, int first,
                       int count, double* out) const override;

 private:
  int dim_;
};

}  // namespace pieck

#endif  // PIECK_MODEL_MF_MODEL_H_
