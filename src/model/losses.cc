#include "model/losses.h"

#include "common/logging.h"
#include "tensor/kernels.h"
#include "tensor/math.h"

namespace pieck {

const char* LossKindToString(LossKind kind) {
  switch (kind) {
    case LossKind::kBce:
      return "BCE";
    case LossKind::kBpr:
      return "BPR";
  }
  return "?";
}

double BceBatchForwardBackward(const RecModel& model, const GlobalModel& g,
                               const Vec& u,
                               const std::vector<LabeledItem>& batch,
                               Vec* grad_u, ClientUpdate* update,
                               InteractionGrads* igrads) {
  if (batch.empty()) return 0.0;
  const double inv_n = 1.0 / static_cast<double>(batch.size());
  double loss = 0.0;

  // MF fast path: the whole example — logit, loss, and both gradient
  // accumulations — is one fused kernel call straight into the update's
  // stored gradient row, with no virtual dispatch or temporaries.
  if (model.kind() == ModelKind::kMatrixFactorization) {
    const KernelTable& k = ActiveKernels();
    const size_t d = u.size();
    PIECK_CHECK(g.item_embeddings.cols() == d);
    PIECK_CHECK(grad_u == nullptr || grad_u->size() == d);
    double* gu = grad_u != nullptr ? grad_u->data() : nullptr;
    for (const LabeledItem& ex : batch) {
      const double* v = g.item_embeddings.RowPtr(static_cast<size_t>(ex.item));
      double* gv =
          update != nullptr ? update->MutableItemGrad(ex.item, d) : nullptr;
      loss += k.BceStep(ex.label, inv_n, u.data(), v, gu, gv, d);
    }
    return loss;
  }

  ForwardCache cache;
  for (const LabeledItem& ex : batch) {
    Vec v = g.item_embeddings.Row(static_cast<size_t>(ex.item));
    double logit = model.Forward(g, u, v, &cache);
    loss += BceLossFromLogit(ex.label, logit) * inv_n;
    double dlogit = BceGradFromLogit(ex.label, logit) * inv_n;

    Vec grad_v = Zeros(v.size());
    model.Backward(g, u, v, cache, dlogit, grad_u,
                   update != nullptr ? &grad_v : nullptr, igrads);
    if (update != nullptr) update->AccumulateItemGrad(ex.item, grad_v);
  }
  return loss;
}

double BprBatchForwardBackward(const RecModel& model, const GlobalModel& g,
                               const Vec& u,
                               const std::vector<LabeledItem>& batch,
                               Vec* grad_u, ClientUpdate* update,
                               InteractionGrads* igrads) {
  std::vector<int> pos;
  std::vector<int> neg;
  for (const LabeledItem& ex : batch) {
    (ex.label > 0.5 ? pos : neg).push_back(ex.item);
  }
  if (pos.empty() || neg.empty()) return 0.0;

  // Zip positives with negatives (the sampler produces q negatives per
  // positive; pair k-th positive with negatives k, k+|pos|, ...).
  std::vector<std::pair<int, int>> pairs;
  for (size_t k = 0; k < neg.size(); ++k) {
    pairs.push_back({pos[k % pos.size()], neg[k]});
  }
  const double inv_n = 1.0 / static_cast<double>(pairs.size());

  double loss = 0.0;

  // MF fast path, mirroring the BCE one: dots and axpys through the
  // kernel layer, gradients accumulated in place. The two MutableItemGrad
  // lookups are sequential (fetch, use, fetch, use) because the second
  // insertion can reallocate the gradient storage.
  if (model.kind() == ModelKind::kMatrixFactorization) {
    const KernelTable& k = ActiveKernels();
    const size_t d = u.size();
    PIECK_CHECK(g.item_embeddings.cols() == d);
    PIECK_CHECK(grad_u == nullptr || grad_u->size() == d);
    double* gu = grad_u != nullptr ? grad_u->data() : nullptr;
    for (const auto& [ip, in] : pairs) {
      const double* vp = g.item_embeddings.RowPtr(static_cast<size_t>(ip));
      const double* vn = g.item_embeddings.RowPtr(static_cast<size_t>(in));
      const double diff = k.dot(u.data(), vp, d) - k.dot(u.data(), vn, d);
      loss += -LogSigmoid(diff) * inv_n;
      const double ddiff = (Sigmoid(diff) - 1.0) * inv_n;
      if (gu != nullptr) {
        k.axpy(ddiff, vp, gu, d);
        k.axpy(-ddiff, vn, gu, d);
      }
      if (update != nullptr) {
        k.axpy(ddiff, u.data(), update->MutableItemGrad(ip, d), d);
        k.axpy(-ddiff, u.data(), update->MutableItemGrad(in, d), d);
      }
    }
    return loss;
  }

  ForwardCache cache_p;
  ForwardCache cache_n;
  for (const auto& [ip, in] : pairs) {
    Vec vp = g.item_embeddings.Row(static_cast<size_t>(ip));
    Vec vn = g.item_embeddings.Row(static_cast<size_t>(in));
    double sp = model.Forward(g, u, vp, &cache_p);
    double sn = model.Forward(g, u, vn, &cache_n);
    double diff = sp - sn;
    loss += -LogSigmoid(diff) * inv_n;
    // dL/ddiff = -(1 - σ(diff)) = σ(diff) - 1.
    double ddiff = (Sigmoid(diff) - 1.0) * inv_n;

    Vec grad_vp = Zeros(vp.size());
    Vec grad_vn = Zeros(vn.size());
    model.Backward(g, u, vp, cache_p, ddiff, grad_u,
                   update != nullptr ? &grad_vp : nullptr, igrads);
    model.Backward(g, u, vn, cache_n, -ddiff, grad_u,
                   update != nullptr ? &grad_vn : nullptr, igrads);
    if (update != nullptr) {
      update->AccumulateItemGrad(ip, grad_vp);
      update->AccumulateItemGrad(in, grad_vn);
    }
  }
  return loss;
}

}  // namespace pieck
