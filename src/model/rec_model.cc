#include "model/rec_model.h"

#include <algorithm>

#include "common/logging.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/math.h"

namespace pieck {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMatrixFactorization:
      return "MF-FRS";
    case ModelKind::kNeuralCf:
      return "DL-FRS";
  }
  return "?";
}

double RecModel::ScoreProb(const GlobalModel& g, const Vec& u,
                           const Vec& v) const {
  return Sigmoid(Forward(g, u, v, nullptr));
}

void RecModel::ScoreItemsRange(const GlobalModel& g, const Vec& u, int first,
                               int count, double* out) const {
  // Generic fallback (DL-FRS): one Forward per item, reading the row
  // through a single per-thread buffer instead of a fresh Vec copy per
  // item per user.
  PIECK_CHECK(first >= 0 && count >= 0 && first + count <= g.num_items());
  const size_t d = g.item_embeddings.cols();
  thread_local Vec v;
  v.resize(d);
  for (int i = 0; i < count; ++i) {
    const double* row =
        g.item_embeddings.RowPtr(static_cast<size_t>(first + i));
    std::copy(row, row + d, v.begin());
    out[i] = Forward(g, u, v, nullptr);
  }
}

std::unique_ptr<RecModel> MakeModel(ModelKind kind, int embedding_dim,
                                    const NcfOptions& ncf) {
  PIECK_CHECK(embedding_dim > 0);
  switch (kind) {
    case ModelKind::kMatrixFactorization:
      return std::make_unique<MfModel>(embedding_dim);
    case ModelKind::kNeuralCf:
      return std::make_unique<NcfModel>(embedding_dim, ncf.hidden_dims);
  }
  return nullptr;
}

}  // namespace pieck
