#include "model/rec_model.h"

#include "common/logging.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/math.h"

namespace pieck {

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMatrixFactorization:
      return "MF-FRS";
    case ModelKind::kNeuralCf:
      return "DL-FRS";
  }
  return "?";
}

double RecModel::ScoreProb(const GlobalModel& g, const Vec& u,
                           const Vec& v) const {
  return Sigmoid(Forward(g, u, v, nullptr));
}

std::unique_ptr<RecModel> MakeModel(ModelKind kind, int embedding_dim,
                                    const NcfOptions& ncf) {
  PIECK_CHECK(embedding_dim > 0);
  switch (kind) {
    case ModelKind::kMatrixFactorization:
      return std::make_unique<MfModel>(embedding_dim);
    case ModelKind::kNeuralCf:
      return std::make_unique<NcfModel>(embedding_dim, ncf.hidden_dims);
  }
  return nullptr;
}

}  // namespace pieck
