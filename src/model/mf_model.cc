#include "model/mf_model.h"

#include "common/logging.h"

namespace pieck {

namespace {
// Embedding initialization scale; N(0, kInitStd) per coordinate, the
// common choice for MF with implicit feedback.
constexpr double kInitStd = 0.1;
}  // namespace

GlobalModel MfModel::InitGlobalModel(int num_items, Rng& rng) const {
  GlobalModel g;
  g.item_embeddings =
      Matrix(static_cast<size_t>(num_items), static_cast<size_t>(dim_));
  g.item_embeddings.RandomNormal(rng, 0.0, kInitStd);
  return g;
}

Vec MfModel::InitUserEmbedding(Rng& rng) const {
  Vec u(static_cast<size_t>(dim_));
  for (double& x : u) x = rng.Normal(0.0, kInitStd);
  return u;
}

double MfModel::Forward(const GlobalModel& /*g*/, const Vec& u, const Vec& v,
                        ForwardCache* cache) const {
  double s = Dot(u, v);
  if (cache != nullptr) cache->logit = s;
  return s;
}

void MfModel::Backward(const GlobalModel& /*g*/, const Vec& u, const Vec& v,
                       const ForwardCache& /*cache*/, double dlogit,
                       Vec* grad_u, Vec* grad_v,
                       InteractionGrads* /*igrads*/) const {
  // s = u·v: ds/du = v, ds/dv = u.
  if (grad_u != nullptr) {
    PIECK_CHECK(grad_u->size() == v.size());
    Axpy(dlogit, v, *grad_u);
  }
  if (grad_v != nullptr) {
    PIECK_CHECK(grad_v->size() == u.size());
    Axpy(dlogit, u, *grad_v);
  }
}

}  // namespace pieck
