#include "model/mf_model.h"

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {
// Embedding initialization scale; N(0, kInitStd) per coordinate, the
// common choice for MF with implicit feedback.
constexpr double kInitStd = 0.1;
}  // namespace

GlobalModel MfModel::InitGlobalModel(int num_items, Rng& rng) const {
  GlobalModel g;
  g.item_embeddings =
      Matrix(static_cast<size_t>(num_items), static_cast<size_t>(dim_));
  g.item_embeddings.RandomNormal(rng, 0.0, kInitStd);
  return g;
}

Vec MfModel::InitUserEmbedding(Rng& rng) const {
  Vec u(static_cast<size_t>(dim_));
  for (double& x : u) x = rng.Normal(0.0, kInitStd);
  return u;
}

// The BCE/BPR training loops in losses.cc never reach these virtuals
// for MF: they run the fused kernel path (KernelTable::BceStep /
// dot+axpy) on embedding-row pointers directly. Forward/Backward remain
// the generic entry points for evaluation, attacks, and gradient
// checks, dispatching through the same kernel table.

double MfModel::Forward(const GlobalModel& /*g*/, const Vec& u, const Vec& v,
                        ForwardCache* cache) const {
  PIECK_CHECK(u.size() == v.size());
  double s = ActiveKernels().dot(u.data(), v.data(), u.size());
  if (cache != nullptr) cache->logit = s;
  return s;
}

void MfModel::ScoreItemsRange(const GlobalModel& g, const Vec& u, int first,
                              int count, double* out) const {
  const Matrix& items = g.item_embeddings;
  PIECK_CHECK(u.size() == items.cols());
  PIECK_CHECK(first >= 0 && count >= 0);
  PIECK_CHECK(static_cast<size_t>(first + count) <= items.rows());
  if (count == 0) return;
  ActiveKernels().gemv(items.RowPtr(static_cast<size_t>(first)),
                       static_cast<size_t>(count), items.cols(), u.data(),
                       out);
}

void MfModel::Backward(const GlobalModel& /*g*/, const Vec& u, const Vec& v,
                       const ForwardCache& /*cache*/, double dlogit,
                       Vec* grad_u, Vec* grad_v,
                       InteractionGrads* /*igrads*/) const {
  // s = u·v: ds/du = v, ds/dv = u.
  const KernelTable& k = ActiveKernels();
  if (grad_u != nullptr) {
    PIECK_CHECK(grad_u->size() == v.size());
    k.axpy(dlogit, v.data(), grad_u->data(), v.size());
  }
  if (grad_v != nullptr) {
    PIECK_CHECK(grad_v->size() == u.size());
    k.axpy(dlogit, u.data(), grad_v->data(), u.size());
  }
}

}  // namespace pieck
