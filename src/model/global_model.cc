#include "model/global_model.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace pieck {

namespace {
std::atomic<int64_t> g_client_update_copies{0};
}  // namespace

ClientUpdate::ClientUpdate(const ClientUpdate& other)
    : item_grads(other.item_grads),
      interaction_grads(other.interaction_grads),
      model_version(other.model_version) {
  g_client_update_copies.fetch_add(1, std::memory_order_relaxed);
}

ClientUpdate& ClientUpdate::operator=(const ClientUpdate& other) {
  item_grads = other.item_grads;
  interaction_grads = other.interaction_grads;
  model_version = other.model_version;
  g_client_update_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

int64_t ClientUpdate::CopyCount() {
  return g_client_update_copies.load(std::memory_order_relaxed);
}

InteractionGrads InteractionGrads::ZerosLike(const GlobalModel& model) {
  InteractionGrads g;
  if (!model.has_interaction_params()) return g;
  g.active = true;
  g.weights.reserve(model.mlp_weights.size());
  for (const Matrix& w : model.mlp_weights) {
    g.weights.emplace_back(w.rows(), w.cols(), 0.0);
  }
  g.biases.reserve(model.mlp_biases.size());
  for (const Vec& b : model.mlp_biases) {
    g.biases.push_back(Zeros(b.size()));
  }
  g.projection = Zeros(model.projection.size());
  return g;
}

void InteractionGrads::ResetLike(const GlobalModel& model) {
  if (!model.has_interaction_params()) {
    active = false;
    return;
  }
  bool shapes_match = active && weights.size() == model.mlp_weights.size() &&
                      biases.size() == model.mlp_biases.size() &&
                      projection.size() == model.projection.size();
  for (size_t l = 0; shapes_match && l < weights.size(); ++l) {
    shapes_match = weights[l].rows() == model.mlp_weights[l].rows() &&
                   weights[l].cols() == model.mlp_weights[l].cols() &&
                   biases[l].size() == model.mlp_biases[l].size();
  }
  if (!shapes_match) {
    *this = ZerosLike(model);
    return;
  }
  for (size_t l = 0; l < weights.size(); ++l) {
    weights[l].SetZero();
    std::fill(biases[l].begin(), biases[l].end(), 0.0);
  }
  std::fill(projection.begin(), projection.end(), 0.0);
}

void InteractionGrads::Axpy(double alpha, const InteractionGrads& other) {
  PIECK_CHECK(active && other.active);
  PIECK_CHECK(weights.size() == other.weights.size());
  for (size_t l = 0; l < weights.size(); ++l) {
    weights[l].Axpy(alpha, other.weights[l]);
    ::pieck::Axpy(alpha, other.biases[l], biases[l]);
  }
  ::pieck::Axpy(alpha, other.projection, projection);
}

double InteractionGrads::SquaredNorm() const {
  double s = 0.0;
  for (const Matrix& w : weights) {
    for (double v : w.data()) s += v * v;
  }
  for (const Vec& b : biases) s += SquaredNorm2(b);
  s += SquaredNorm2(projection);
  return s;
}

size_t InteractionGrads::FlattenedSize() const {
  size_t n = projection.size();
  for (size_t l = 0; l < weights.size(); ++l) {
    n += weights[l].data().size() + biases[l].size();
  }
  return n;
}

Vec InteractionGrads::Flatten() const {
  Vec flat;
  FlattenInto(&flat);
  return flat;
}

void InteractionGrads::FlattenInto(Vec* out) const {
  out->resize(FlattenedSize());
  double* p = out->data();
  for (size_t l = 0; l < weights.size(); ++l) {
    const std::vector<double>& wdata = weights[l].data();
    p = std::copy(wdata.begin(), wdata.end(), p);
    p = std::copy(biases[l].begin(), biases[l].end(), p);
  }
  p = std::copy(projection.begin(), projection.end(), p);
  PIECK_CHECK(p == out->data() + out->size());
}

void InteractionGrads::Unflatten(const Vec& flat) {
  size_t pos = 0;
  for (size_t l = 0; l < weights.size(); ++l) {
    std::vector<double>& wdata = weights[l].data();
    PIECK_CHECK(pos + wdata.size() <= flat.size());
    std::copy(flat.begin() + static_cast<ptrdiff_t>(pos),
              flat.begin() + static_cast<ptrdiff_t>(pos + wdata.size()),
              wdata.begin());
    pos += wdata.size();
    PIECK_CHECK(pos + biases[l].size() <= flat.size());
    std::copy(flat.begin() + static_cast<ptrdiff_t>(pos),
              flat.begin() + static_cast<ptrdiff_t>(pos + biases[l].size()),
              biases[l].begin());
    pos += biases[l].size();
  }
  PIECK_CHECK(pos + projection.size() == flat.size());
  std::copy(flat.begin() + static_cast<ptrdiff_t>(pos), flat.end(),
            projection.begin());
}

Vec ClientUpdate::TakeSpare(size_t dim) {
  if (spare_.empty()) return Zeros(dim);
  Vec v = std::move(spare_.back());
  spare_.pop_back();
  // assign keeps the existing heap buffer whenever its capacity covers
  // `dim` — the steady-state case, since clients upload batches of a
  // stable shape round after round.
  v.assign(dim, 0.0);
  return v;
}

void ClientUpdate::ResetForReuse() {
  spare_.reserve(spare_.size() + item_grads.size());
  for (auto& [item, grad] : item_grads) {
    spare_.push_back(std::move(grad));
  }
  item_grads.clear();
  model_version = -1;
}

int64_t ClientUpdate::CapacityBytes() const {
  int64_t bytes = static_cast<int64_t>(
      item_grads.capacity() * sizeof(std::pair<int, Vec>) +
      spare_.capacity() * sizeof(Vec));
  for (const auto& [item, grad] : item_grads) {
    bytes += static_cast<int64_t>(grad.capacity() * sizeof(double));
  }
  for (const Vec& v : spare_) {
    bytes += static_cast<int64_t>(v.capacity() * sizeof(double));
  }
  for (const Matrix& w : interaction_grads.weights) {
    bytes += static_cast<int64_t>(w.data().capacity() * sizeof(double));
  }
  for (const Vec& b : interaction_grads.biases) {
    bytes += static_cast<int64_t>(b.capacity() * sizeof(double));
  }
  bytes += static_cast<int64_t>(interaction_grads.projection.capacity() *
                                sizeof(double));
  return bytes;
}

void ClientUpdate::AccumulateItemGrad(int item, const Vec& g) {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it != item_grads.end() && it->first == item) {
    ::pieck::Axpy(1.0, g, it->second);
  } else {
    // Recycle a spare buffer but skip TakeSpare's zero-fill: every
    // element is overwritten by the assign.
    Vec grad;
    if (!spare_.empty()) {
      grad = std::move(spare_.back());
      spare_.pop_back();
    }
    grad.assign(g.begin(), g.end());
    item_grads.insert(it, {item, std::move(grad)});
  }
}

double* ClientUpdate::MutableItemGrad(int item, size_t dim) {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it == item_grads.end() || it->first != item) {
    it = item_grads.insert(it, {item, TakeSpare(dim)});
  }
  return it->second.data();
}

const Vec* ClientUpdate::FindItemGrad(int item) const {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it != item_grads.end() && it->first == item) return &it->second;
  return nullptr;
}

}  // namespace pieck
