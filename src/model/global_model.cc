#include "model/global_model.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace pieck {

namespace {
std::atomic<int64_t> g_client_update_copies{0};
}  // namespace

ClientUpdate::ClientUpdate(const ClientUpdate& other)
    : item_grads(other.item_grads),
      interaction_grads(other.interaction_grads) {
  g_client_update_copies.fetch_add(1, std::memory_order_relaxed);
}

ClientUpdate& ClientUpdate::operator=(const ClientUpdate& other) {
  item_grads = other.item_grads;
  interaction_grads = other.interaction_grads;
  g_client_update_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

int64_t ClientUpdate::CopyCount() {
  return g_client_update_copies.load(std::memory_order_relaxed);
}

InteractionGrads InteractionGrads::ZerosLike(const GlobalModel& model) {
  InteractionGrads g;
  if (!model.has_interaction_params()) return g;
  g.active = true;
  g.weights.reserve(model.mlp_weights.size());
  for (const Matrix& w : model.mlp_weights) {
    g.weights.emplace_back(w.rows(), w.cols(), 0.0);
  }
  g.biases.reserve(model.mlp_biases.size());
  for (const Vec& b : model.mlp_biases) {
    g.biases.push_back(Zeros(b.size()));
  }
  g.projection = Zeros(model.projection.size());
  return g;
}

void InteractionGrads::Axpy(double alpha, const InteractionGrads& other) {
  PIECK_CHECK(active && other.active);
  PIECK_CHECK(weights.size() == other.weights.size());
  for (size_t l = 0; l < weights.size(); ++l) {
    weights[l].Axpy(alpha, other.weights[l]);
    ::pieck::Axpy(alpha, other.biases[l], biases[l]);
  }
  ::pieck::Axpy(alpha, other.projection, projection);
}

double InteractionGrads::SquaredNorm() const {
  double s = 0.0;
  for (const Matrix& w : weights) {
    for (double v : w.data()) s += v * v;
  }
  for (const Vec& b : biases) s += SquaredNorm2(b);
  s += SquaredNorm2(projection);
  return s;
}

Vec InteractionGrads::Flatten() const {
  Vec flat;
  for (size_t l = 0; l < weights.size(); ++l) {
    flat.insert(flat.end(), weights[l].data().begin(),
                weights[l].data().end());
    flat.insert(flat.end(), biases[l].begin(), biases[l].end());
  }
  flat.insert(flat.end(), projection.begin(), projection.end());
  return flat;
}

void InteractionGrads::Unflatten(const Vec& flat) {
  size_t pos = 0;
  for (size_t l = 0; l < weights.size(); ++l) {
    std::vector<double>& wdata = weights[l].data();
    PIECK_CHECK(pos + wdata.size() <= flat.size());
    std::copy(flat.begin() + static_cast<ptrdiff_t>(pos),
              flat.begin() + static_cast<ptrdiff_t>(pos + wdata.size()),
              wdata.begin());
    pos += wdata.size();
    PIECK_CHECK(pos + biases[l].size() <= flat.size());
    std::copy(flat.begin() + static_cast<ptrdiff_t>(pos),
              flat.begin() + static_cast<ptrdiff_t>(pos + biases[l].size()),
              biases[l].begin());
    pos += biases[l].size();
  }
  PIECK_CHECK(pos + projection.size() == flat.size());
  std::copy(flat.begin() + static_cast<ptrdiff_t>(pos), flat.end(),
            projection.begin());
}

void ClientUpdate::AccumulateItemGrad(int item, const Vec& g) {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it != item_grads.end() && it->first == item) {
    ::pieck::Axpy(1.0, g, it->second);
  } else {
    item_grads.insert(it, {item, g});
  }
}

double* ClientUpdate::MutableItemGrad(int item, size_t dim) {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it == item_grads.end() || it->first != item) {
    it = item_grads.insert(it, {item, Zeros(dim)});
  }
  return it->second.data();
}

const Vec* ClientUpdate::FindItemGrad(int item) const {
  auto it = std::lower_bound(
      item_grads.begin(), item_grads.end(), item,
      [](const std::pair<int, Vec>& a, int b) { return a.first < b; });
  if (it != item_grads.end() && it->first == item) return &it->second;
  return nullptr;
}

}  // namespace pieck
