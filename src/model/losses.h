#ifndef PIECK_MODEL_LOSSES_H_
#define PIECK_MODEL_LOSSES_H_

#include <vector>

#include "data/negative_sampler.h"
#include "model/rec_model.h"

namespace pieck {

/// Training objective used by benign clients. The paper's default is BCE
/// (Eq. 2); BPR is evaluated in supplementary Table XI.
enum class LossKind { kBce, kBpr };

const char* LossKindToString(LossKind kind);

/// Computes the mean BCE loss over `batch` for user embedding `u` and
/// accumulates gradients into `grad_u`, per-item entries of `update`, and
/// (when active) `igrads`. Returns the mean loss. All gradient sinks may
/// be nullptr to skip them.
double BceBatchForwardBackward(const RecModel& model, const GlobalModel& g,
                               const Vec& u,
                               const std::vector<LabeledItem>& batch,
                               Vec* grad_u, ClientUpdate* update,
                               InteractionGrads* igrads);

/// BPR over all (positive, negative) pairs formed by zipping positives
/// with sampled negatives: L = -mean log σ(s_pos - s_neg). Returns the
/// mean loss; gradient semantics match BceBatchForwardBackward.
double BprBatchForwardBackward(const RecModel& model, const GlobalModel& g,
                               const Vec& u,
                               const std::vector<LabeledItem>& batch,
                               Vec* grad_u, ClientUpdate* update,
                               InteractionGrads* igrads);

}  // namespace pieck

#endif  // PIECK_MODEL_LOSSES_H_
