#ifndef PIECK_MODEL_GLOBAL_MODEL_H_
#define PIECK_MODEL_GLOBAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace pieck {

/// The shareable part of the federated model (§III-A).
///
/// For MF-FRS this is just the item embedding table. For DL-FRS it
/// additionally holds the learnable interaction function: L MLP layers
/// (weights + biases) and the projection vector h of Eq. (1).
struct GlobalModel {
  Matrix item_embeddings;  // num_items x dim

  // DL-FRS interaction function; all empty for MF-FRS.
  std::vector<Matrix> mlp_weights;  // W_l: rows = out dim, cols = in dim
  std::vector<Vec> mlp_biases;      // b_l
  Vec projection;                   // h

  int num_items() const { return static_cast<int>(item_embeddings.rows()); }
  int dim() const { return static_cast<int>(item_embeddings.cols()); }
  bool has_interaction_params() const { return !mlp_weights.empty(); }
};

/// Gradients of the DL-FRS interaction parameters. `active` is false for
/// MF-FRS (nothing to upload).
struct InteractionGrads {
  bool active = false;
  std::vector<Matrix> weights;
  std::vector<Vec> biases;
  Vec projection;

  /// Builds a zeroed gradient holder shaped like `model`'s interaction
  /// function; inactive when the model has none.
  static InteractionGrads ZerosLike(const GlobalModel& model);

  /// Makes this holder equal to ZerosLike(model) while reusing the
  /// existing tensors when the shapes already match — the arena round
  /// path calls this every round instead of reallocating.
  void ResetLike(const GlobalModel& model);

  /// this += alpha * other. Both must be shaped alike and active.
  void Axpy(double alpha, const InteractionGrads& other);

  /// Sum of squared entries across all tensors.
  double SquaredNorm() const;

  /// Total coordinate count across all tensors (the length Flatten
  /// produces).
  size_t FlattenedSize() const;

  /// Flattens all tensors into one vector (used by robust aggregators
  /// that operate coordinate-wise). Order: W_1, b_1, ..., W_L, b_L, h.
  Vec Flatten() const;

  /// Flatten into a caller-owned buffer (resized to FlattenedSize());
  /// once `out` reaches steady-state capacity this allocates nothing.
  /// The server's interaction-aggregation arena path uses this instead
  /// of Flatten's fresh Vec per client per round.
  void FlattenInto(Vec* out) const;

  /// Inverse of Flatten; `flat` must have exactly the right length.
  void Unflatten(const Vec& flat);
};

/// One client's upload for a communication round: per-item embedding
/// gradients (only items the client chooses to report) and, for DL-FRS,
/// interaction-function gradients.
struct ClientUpdate {
  /// Sorted-by-item list of (item, gradient) pairs.
  std::vector<std::pair<int, Vec>> item_grads;
  InteractionGrads interaction_grads;

  /// Global-model version this upload was trained against. The sentinel
  /// -1 means "the server's current model" (staleness 0) — the default,
  /// so every synchronous caller is untouched. The bounded-staleness
  /// pipeline stamps the snapshot version it handed the client, and the
  /// server weights (or drops) the upload by
  /// `staleness = version_at_apply - model_version`.
  int64_t model_version = -1;

  /// Borrowed view of `item_grads`: contiguous (item, gradient) pairs in
  /// ascending item order. The router's slice scanners walk this span;
  /// it is invalidated by any mutation of the upload.
  struct ItemGradSpan {
    const std::pair<int, Vec>* data = nullptr;
    size_t size = 0;
    const std::pair<int, Vec>* begin() const { return data; }
    const std::pair<int, Vec>* end() const { return data + size; }
  };
  ItemGradSpan item_span() const {
    return {item_grads.data(), item_grads.size()};
  }

  ClientUpdate() = default;
  // Copies are instrumented: the server's aggregation path is required
  // to borrow uploads (pointer spans / surviving indices), never to
  // deep-copy them, and `CopyCount` lets tests assert that. Moves stay
  // defaulted and uncounted — they are how uploads travel.
  ClientUpdate(const ClientUpdate& other);
  ClientUpdate& operator=(const ClientUpdate& other);
  ClientUpdate(ClientUpdate&&) = default;
  ClientUpdate& operator=(ClientUpdate&&) = default;

  /// Process-wide number of ClientUpdate copy constructions/assignments
  /// since startup (test instrumentation; monotone, thread-safe).
  static int64_t CopyCount();

  /// Adds `g` to the entry for `item` (creating it if absent).
  void AccumulateItemGrad(int item, const Vec& g);

  /// Finds-or-inserts the (zero-initialized) gradient entry for `item`
  /// and returns a mutable pointer to its `dim` doubles, letting hot
  /// loops accumulate through the kernel layer without a temporary.
  /// Invalidated by the next AccumulateItemGrad / MutableItemGrad call.
  double* MutableItemGrad(int item, size_t dim);

  /// Looks up the gradient for `item`; nullptr if absent.
  const Vec* FindItemGrad(int item) const;

  /// Logically empties the upload while keeping every heap buffer for
  /// reuse: the per-item gradient Vecs move onto an internal free list
  /// that MutableItemGrad / AccumulateItemGrad consume before touching
  /// the allocator, and `interaction_grads` keeps its tensors (callers
  /// re-zero them via InteractionGrads::ResetLike). After enough rounds
  /// to reach the client's steady-state batch shape, rebuilding an
  /// upload in place allocates nothing.
  void ResetForReuse();

  /// Resident capacity of this upload's buffers, free list included
  /// (round telemetry).
  int64_t CapacityBytes() const;

 private:
  std::vector<Vec> spare_;

  /// Pops a zeroed length-`dim` Vec, reusing a spare buffer when one
  /// is available.
  Vec TakeSpare(size_t dim);
};

}  // namespace pieck

#endif  // PIECK_MODEL_GLOBAL_MODEL_H_
