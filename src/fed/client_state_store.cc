#include "fed/client_state_store.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "tensor/vector_ops.h"

namespace pieck {

namespace {

// SplitMix64 finalizer: decorrelates derived per-user keys so adjacent
// user ids never get adjacent mt19937 seeds.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

InteractionCsr BuildCsr(const Dataset& train, const StorageConfig& storage,
                        const std::shared_ptr<StoreDir>& dir) {
  if (storage.kind != StorageKind::kMmap) return InteractionCsr(train);
  // Mmap storage streams the adjacency into the store directory so the
  // CSR pages are reclaimable too (and goldens exercise the mmap CSR).
  InteractionCsrBuilder builder(train.num_users(), train.num_items(),
                                dir->FilePath("csr_offsets.bin"),
                                dir->FilePath("csr_items.bin"));
  for (int u = 0; u < train.num_users(); ++u) {
    const std::vector<int>& row = train.ItemsOf(u);
    PIECK_CHECK_OK(builder.AddUser(row.data(), row.size()));
  }
  auto csr = builder.Finish();
  PIECK_CHECK(csr.ok()) << csr.status().ToString();
  return std::move(*csr);
}

std::shared_ptr<StoreDir> ResolveDirOrDie(const StorageConfig& storage) {
  if (storage.kind != StorageKind::kMmap) return nullptr;
  auto dir = StoreDir::Resolve(storage.dir);
  PIECK_CHECK(dir.ok()) << dir.status().ToString();
  return *dir;
}

}  // namespace

ClientStateStore::ClientStateStore(
    const RecModel& model, const Dataset& train,
    std::shared_ptr<const NegativeSampler> sampler, LossKind loss,
    double local_lr, const StorageConfig& storage)
    : model_(model),
      sampler_(std::move(sampler)),
      loss_(loss),
      local_lr_(local_lr),
      num_users_(train.num_users()),
      storage_(storage),
      store_dir_(ResolveDirOrDie(storage)),
      interactions_(BuildCsr(train, storage, store_dir_)) {
  PIECK_CHECK(sampler_ != nullptr);
  InitEmbeddingTier();
}

ClientStateStore::ClientStateStore(
    const RecModel& model, InteractionCsr interactions,
    std::shared_ptr<const NegativeSampler> sampler, LossKind loss,
    double local_lr, const StorageConfig& storage)
    : model_(model),
      sampler_(std::move(sampler)),
      loss_(loss),
      local_lr_(local_lr),
      num_users_(interactions.num_users()),
      storage_(storage),
      store_dir_(ResolveDirOrDie(storage)),
      interactions_(std::move(interactions)) {
  PIECK_CHECK(sampler_ != nullptr);
  InitEmbeddingTier();
}

void ClientStateStore::InitEmbeddingTier() {
  PIECK_CHECK_OK(embeddings_.Init(
      num_users_, static_cast<size_t>(model_.embedding_dim()), storage_,
      store_dir_, "rows.bin", [this](int64_t row, double* dst) {
        // First draws of the user's private stream, exactly as the
        // former BenignClient constructor consumed them. PrepareRound
        // replays the same draws when it materializes the persistent
        // engine, and an evicted clean row replays them again on
        // refault — every path yields the same bits.
        Rng rng(SeedOf(static_cast<int>(row)));
        const Vec e = model_.InitUserEmbedding(rng);
        std::copy(e.begin(), e.end(), dst);
      }));
}

uint64_t ClientStateStore::SeedOf(int user) const {
  const uint64_t u1 = static_cast<uint64_t>(user) + 1;
  switch (seed_mode_) {
    case SeedMode::kExplicit:
      return seeds_[static_cast<size_t>(user)];
    case SeedMode::kDerivedBase:
      return Mix64(seed_base_ + u1 * 0x9e3779b97f4a7c15ULL);
    case SeedMode::kFormula:
      break;
  }
  // The historical default: user index keyed off a fixed base.
  return 0x9e3779b97f4a7c15ULL * u1 ^ 42u;
}

void ClientStateStore::set_user_seeds(std::vector<uint64_t> seeds) {
  PIECK_CHECK(static_cast<int>(seeds.size()) == num_users_);
  PIECK_CHECK(engines_.empty() && !embeddings_.any_initialized())
      << "set_user_seeds after user state was touched";
  seeds_ = std::move(seeds);
  seed_mode_ = SeedMode::kExplicit;
}

void ClientStateStore::set_user_seed_base(uint64_t base) {
  PIECK_CHECK(engines_.empty() && !embeddings_.any_initialized())
      << "set_user_seed_base after user state was touched";
  seeds_.clear();
  seed_base_ = base;
  seed_mode_ = SeedMode::kDerivedBase;
}

void ClientStateStore::set_user_learning_rates(std::vector<double> lrs) {
  PIECK_CHECK(static_cast<int>(lrs.size()) == num_users_);
  user_lrs_ = std::move(lrs);
}

void ClientStateStore::set_defense_factory(
    std::function<std::unique_ptr<ClientDefense>()> factory) {
  defense_factory_ = std::move(factory);
}

const double* ClientStateStore::UserEmbedding(int user) {
  return embeddings_.Row(user);
}

double* ClientStateStore::MutableUserEmbedding(int user) {
  return embeddings_.MutableRow(user);
}

void ClientStateStore::EnsureAllEmbeddings(ThreadPool* pool) {
  // Distinct users write disjoint rows and flag bytes, so the RAM
  // fan-out needs no locks and the result is order-independent by
  // construction (the mmap tier materializes serially).
  embeddings_.EnsureAll(pool);
}

BenignEvalView ClientStateStore::EvalView(ThreadPool* pool) {
  if (!embeddings_.is_mmap()) {
    EnsureAllEmbeddings(pool);
    return BenignEvalView(&embeddings_.ram_matrix());
  }
  // Snapshot the logical table without faulting anything into the
  // cache or marking rows materialized: evaluation must not perturb
  // which rows the tier considers touched.
  embeddings_.SnapshotInto(&eval_matrix_);
  return BenignEvalView(&eval_matrix_);
}

void ClientStateStore::PrepareRound(const std::vector<int>& users) {
  if (embeddings_.is_mmap()) {
    // The pipelined engine reaches the next PrepareRound without a
    // server-side flush (the apply thread must not touch the tier); the
    // previous cohort is still pinned, so write it back here.
    embeddings_.FlushPinned(nullptr);
    embeddings_.PinRows(users);
    if (interactions_.is_mmap()) {
      // Spans are tiny but page-granular: estimate a page per user and
      // release the CSR's resident pages once the budget fills.
      csr_touched_bytes_ += static_cast<int64_t>(users.size()) * 4096;
      if (csr_touched_bytes_ >= storage_.resident_budget_bytes) {
        interactions_.ReleaseResidentPages();
        csr_touched_bytes_ = 0;
      }
    }
  }
  for (int user : users) {
    const int32_t u = static_cast<int32_t>(user);
    if (rng_slot_.find(u) == rng_slot_.end()) {
      engines_.emplace_back(SeedOf(user));
      rng_slot_.emplace(u, static_cast<int32_t>(engines_.size() - 1));
      // The engine's stream starts with the embedding-init draws;
      // replay them so participation continues the stream where the
      // row init left off. The row itself is initialized through the
      // tier (above for mmap, lazily here for RAM) from an identical
      // replay, so the drawn values are discarded.
      const Vec e = model_.InitUserEmbedding(engines_.back());
      (void)e;
    }
    if (!embeddings_.is_mmap()) embeddings_.Row(user);
    if (defense_factory_ != nullptr &&
        defense_slot_.find(u) == defense_slot_.end()) {
      defenses_.push_back(defense_factory_());
      defense_slot_.emplace(u, static_cast<int32_t>(defenses_.size() - 1));
    }
  }
}

void ClientStateStore::FlushDirtyRows(DirtyRowSet* out) {
  embeddings_.FlushPinned(out);
}

void ClientStateStore::PrefetchUsers(const std::vector<int>& users) {
  if (!embeddings_.is_mmap()) return;
  // Selection slots mix benign store users with malicious client
  // indices (>= num_users); only the former have rows to warm. Sort
  // once so both tiers can coalesce the cohort into ranged advice (or,
  // for the batched I/O engines, one staged read batch).
  prefetch_scratch_.clear();
  for (const int user : users) {
    if (user < 0 || user >= num_users_) continue;
    prefetch_scratch_.push_back(user);
  }
  if (prefetch_scratch_.empty()) return;
  std::sort(prefetch_scratch_.begin(), prefetch_scratch_.end());
  embeddings_.Prefetch(prefetch_scratch_);
  if (interactions_.is_mmap()) interactions_.PrefetchUsers(prefetch_scratch_);
}

Status ClientStateStore::Checkpoint() { return embeddings_.Checkpoint(); }

Rng& ClientStateStore::UserRng(int user) {
  const auto it = rng_slot_.find(static_cast<int32_t>(user));
  PIECK_CHECK(it != rng_slot_.end()) << "UserRng on unprepared user " << user;
  return engines_[static_cast<size_t>(it->second)];
}

ClientDefense* ClientStateStore::UserDefense(int user) {
  if (defense_factory_ == nullptr) return nullptr;
  const auto it = defense_slot_.find(static_cast<int32_t>(user));
  PIECK_CHECK(it != defense_slot_.end())
      << "UserDefense on unprepared user " << user;
  return defenses_[static_cast<size_t>(it->second)].get();
}

int64_t ClientStateStore::FootprintBytes() const {
  // Rough per-entry footprint of the node-based slot maps.
  constexpr int64_t kMapEntryBytes =
      static_cast<int64_t>(sizeof(int32_t) * 2 + sizeof(void*) * 2);
  int64_t bytes =
      embeddings_.ResidentBytes() +
      static_cast<int64_t>(eval_matrix_.data().capacity() * sizeof(double) +
                           seeds_.capacity() * sizeof(uint64_t) +
                           user_lrs_.capacity() * sizeof(double) +
                           engines_.size() * sizeof(Rng) +
                           defenses_.capacity() * sizeof(void*)) +
      static_cast<int64_t>(rng_slot_.size() + defense_slot_.size()) *
          kMapEntryBytes;
  bytes += interactions_.FootprintBytes();
  for (const auto& defense : defenses_) {
    if (defense != nullptr) bytes += defense->FootprintBytes();
  }
  if (sampler_->popularity() != nullptr) {
    bytes += sampler_->popularity()->FootprintBytes();
  }
  return bytes;
}

int64_t ClientStateStore::BackingBytes() const {
  return embeddings_.BackingBytes() + interactions_.BackingBytes();
}

double BenignClientLogic::ParticipateRound(ClientStateStore& store, int user,
                                           const GlobalModel& g, int /*round*/,
                                           RoundScratch& scratch,
                                           ClientUpdate* update) {
  ClientDefense* defense = store.UserDefense(user);
  if (defense != nullptr) defense->ObserveRound(g);

  Rng& rng = store.UserRng(user);
  const InteractionCsr::Span positives = store.interactions().ItemsOf(user);
  store.sampler().SampleBatchInto(positives.data, positives.size,
                                  store.interactions().num_items(), rng,
                                  &scratch.batch, &scratch.sampler);

  update->ResetForReuse();
  update->interaction_grads.ResetLike(g);
  InteractionGrads* igrads =
      update->interaction_grads.active ? &update->interaction_grads : nullptr;

  const double* row = store.UserEmbedding(user);
  const size_t d = static_cast<size_t>(store.dim());
  scratch.user_embedding.assign(row, row + d);
  scratch.grad_u.assign(d, 0.0);

  double loss = 0.0;
  switch (store.loss()) {
    case LossKind::kBce:
      loss = BceBatchForwardBackward(store.model(), g, scratch.user_embedding,
                                     scratch.batch, &scratch.grad_u, update,
                                     igrads);
      break;
    case LossKind::kBpr:
      loss = BprBatchForwardBackward(store.model(), g, scratch.user_embedding,
                                     scratch.batch, &scratch.grad_u, update,
                                     igrads);
      break;
  }

  if (defense != nullptr) {
    defense->ApplyRegularizers(g, scratch.user_embedding, scratch.batch,
                               &scratch.grad_u, update);
  }

  // Local personalized-model step: u_i = u_i − η_local ∇u_i (§III-A
  // step 3), written straight back into the store row.
  Axpy(-store.local_lr(user), scratch.grad_u, scratch.user_embedding);
  std::copy(scratch.user_embedding.begin(), scratch.user_embedding.end(),
            store.MutableUserEmbedding(user));
  return loss;
}

}  // namespace pieck
