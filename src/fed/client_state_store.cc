#include "fed/client_state_store.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/vector_ops.h"

namespace pieck {

ClientStateStore::ClientStateStore(
    const RecModel& model, const Dataset& train,
    std::shared_ptr<const NegativeSampler> sampler, LossKind loss,
    double local_lr)
    : model_(model),
      sampler_(std::move(sampler)),
      loss_(loss),
      local_lr_(local_lr),
      num_users_(train.num_users()),
      interactions_(train),
      embeddings_(static_cast<size_t>(train.num_users()),
                  static_cast<size_t>(model.embedding_dim())),
      initialized_(static_cast<size_t>(train.num_users()), 0),
      rng_slot_(static_cast<size_t>(train.num_users()), -1) {
  PIECK_CHECK(sampler_ != nullptr);
  // Default seeds: user index keyed off a fixed base; Simulation installs
  // protocol-accurate fork-derived seeds on top.
  seeds_.resize(static_cast<size_t>(num_users_));
  for (int u = 0; u < num_users_; ++u) {
    seeds_[static_cast<size_t>(u)] = 0x9e3779b97f4a7c15ULL * (u + 1) ^ 42u;
  }
}

void ClientStateStore::set_user_seeds(std::vector<uint64_t> seeds) {
  PIECK_CHECK(static_cast<int>(seeds.size()) == num_users_);
  PIECK_CHECK(engines_.empty() &&
              std::none_of(initialized_.begin(), initialized_.end(),
                           [](uint8_t b) { return b != 0; }))
      << "set_user_seeds after user state was touched";
  seeds_ = std::move(seeds);
}

void ClientStateStore::set_user_learning_rates(std::vector<double> lrs) {
  PIECK_CHECK(static_cast<int>(lrs.size()) == num_users_);
  user_lrs_ = std::move(lrs);
}

void ClientStateStore::set_defense_factory(
    std::function<std::unique_ptr<ClientDefense>()> factory) {
  defense_factory_ = std::move(factory);
  if (defense_factory_ != nullptr && defense_slot_.empty()) {
    defense_slot_.assign(static_cast<size_t>(num_users_), -1);
  }
}

void ClientStateStore::EnsureEmbedding(int user) {
  if (initialized_[static_cast<size_t>(user)]) return;
  // First draws of the user's private stream, exactly as the former
  // BenignClient constructor consumed them. PrepareRound replays the
  // same draws when it materializes the persistent engine, so whichever
  // happens first yields the same bits.
  Rng rng(seeds_[static_cast<size_t>(user)]);
  Vec e = model_.InitUserEmbedding(rng);
  embeddings_.SetRow(static_cast<size_t>(user), e);
  initialized_[static_cast<size_t>(user)] = 1;
}

const double* ClientStateStore::UserEmbedding(int user) {
  EnsureEmbedding(user);
  return embeddings_.RowPtr(static_cast<size_t>(user));
}

double* ClientStateStore::MutableUserEmbedding(int user) {
  EnsureEmbedding(user);
  return embeddings_.MutableRowPtr(static_cast<size_t>(user));
}

void ClientStateStore::EnsureAllEmbeddings(ThreadPool* pool) {
  // Distinct users write disjoint rows and flag bytes, so the fan-out
  // needs no locks and the result is order-independent by construction.
  ThreadPool::ParallelForOrSerial(
      pool, static_cast<size_t>(num_users_),
      [this](size_t u) { EnsureEmbedding(static_cast<int>(u)); });
}

BenignEvalView ClientStateStore::EvalView(ThreadPool* pool) {
  EnsureAllEmbeddings(pool);
  return BenignEvalView(&embeddings_);
}

void ClientStateStore::PrepareRound(const std::vector<int>& users) {
  for (int user : users) {
    const size_t u = static_cast<size_t>(user);
    if (rng_slot_[u] < 0) {
      engines_.emplace_back(seeds_[u]);
      rng_slot_[u] = static_cast<int32_t>(engines_.size() - 1);
      // The engine's stream starts with the embedding-init draws; replay
      // them so participation continues the stream where construction
      // left off (and initialize the row if evaluation has not already).
      Vec e = model_.InitUserEmbedding(engines_.back());
      if (!initialized_[u]) {
        embeddings_.SetRow(u, e);
        initialized_[u] = 1;
      }
    } else {
      EnsureEmbedding(user);
    }
    if (defense_factory_ != nullptr && defense_slot_[u] < 0) {
      defenses_.push_back(defense_factory_());
      defense_slot_[u] = static_cast<int32_t>(defenses_.size() - 1);
    }
  }
}

Rng& ClientStateStore::UserRng(int user) {
  const int32_t slot = rng_slot_[static_cast<size_t>(user)];
  PIECK_CHECK(slot >= 0) << "UserRng on unprepared user " << user;
  return engines_[static_cast<size_t>(slot)];
}

ClientDefense* ClientStateStore::UserDefense(int user) {
  if (defense_factory_ == nullptr) return nullptr;
  const int32_t slot = defense_slot_[static_cast<size_t>(user)];
  PIECK_CHECK(slot >= 0) << "UserDefense on unprepared user " << user;
  return defenses_[static_cast<size_t>(slot)].get();
}

int64_t ClientStateStore::FootprintBytes() const {
  int64_t bytes = static_cast<int64_t>(
      embeddings_.data().capacity() * sizeof(double) +
      seeds_.capacity() * sizeof(uint64_t) +
      initialized_.capacity() * sizeof(uint8_t) +
      user_lrs_.capacity() * sizeof(double) +
      rng_slot_.capacity() * sizeof(int32_t) +
      engines_.size() * sizeof(Rng) +
      defense_slot_.capacity() * sizeof(int32_t) +
      defenses_.capacity() * sizeof(void*));
  bytes += interactions_.FootprintBytes();
  for (const auto& defense : defenses_) {
    if (defense != nullptr) bytes += defense->FootprintBytes();
  }
  if (sampler_->popularity() != nullptr) {
    bytes += sampler_->popularity()->FootprintBytes();
  }
  return bytes;
}

double BenignClientLogic::ParticipateRound(ClientStateStore& store, int user,
                                           const GlobalModel& g, int /*round*/,
                                           RoundScratch& scratch,
                                           ClientUpdate* update) {
  ClientDefense* defense = store.UserDefense(user);
  if (defense != nullptr) defense->ObserveRound(g);

  Rng& rng = store.UserRng(user);
  const InteractionCsr::Span positives = store.interactions().ItemsOf(user);
  store.sampler().SampleBatchInto(positives.data, positives.size,
                                  store.interactions().num_items(), rng,
                                  &scratch.batch, &scratch.sampler);

  update->ResetForReuse();
  update->interaction_grads.ResetLike(g);
  InteractionGrads* igrads =
      update->interaction_grads.active ? &update->interaction_grads : nullptr;

  const double* row = store.UserEmbedding(user);
  const size_t d = static_cast<size_t>(store.dim());
  scratch.user_embedding.assign(row, row + d);
  scratch.grad_u.assign(d, 0.0);

  double loss = 0.0;
  switch (store.loss()) {
    case LossKind::kBce:
      loss = BceBatchForwardBackward(store.model(), g, scratch.user_embedding,
                                     scratch.batch, &scratch.grad_u, update,
                                     igrads);
      break;
    case LossKind::kBpr:
      loss = BprBatchForwardBackward(store.model(), g, scratch.user_embedding,
                                     scratch.batch, &scratch.grad_u, update,
                                     igrads);
      break;
  }

  if (defense != nullptr) {
    defense->ApplyRegularizers(g, scratch.user_embedding, scratch.batch,
                               &scratch.grad_u, update);
  }

  // Local personalized-model step: u_i = u_i − η_local ∇u_i (§III-A
  // step 3), written straight back into the store row.
  Axpy(-store.local_lr(user), scratch.grad_u, scratch.user_embedding);
  std::copy(scratch.user_embedding.begin(), scratch.user_embedding.end(),
            store.MutableUserEmbedding(user));
  return loss;
}

}  // namespace pieck
