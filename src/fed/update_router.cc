#include "fed/update_router.h"

#include <algorithm>

#include "common/logging.h"

namespace pieck {

int UpdateRouter::DefaultShardCount(int num_workers, int num_items) {
  if (num_workers <= 1) return 1;
  return std::max(1, std::min(num_items, 4 * num_workers));
}

void UpdateRouter::BeginRound(int num_items, int num_shards,
                              size_t num_workers) {
  PIECK_CHECK(num_items >= 0);
  PIECK_CHECK(num_workers >= 1);
  num_items_ = num_items;
  num_shards_ = std::max(1, std::min(num_shards, std::max(1, num_items)));
  items_per_shard_ = (std::max(1, num_items_) + num_shards_ - 1) / num_shards_;
  num_workers_ = num_workers;

  const size_t num_buckets = num_workers_ * static_cast<size_t>(num_shards_);
  if (buckets_.size() < num_buckets) buckets_.resize(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) buckets_[b].clear();
  if (shards_.size() < static_cast<size_t>(num_shards_)) {
    shards_.resize(static_cast<size_t>(num_shards_));
  }
}

void UpdateRouter::ScanSlice(size_t worker,
                             const std::vector<ClientUpdate>& uploads,
                             const std::vector<int>& surviving) {
  PIECK_CHECK(worker < num_workers_);
  const size_t n = surviving.size();
  const size_t lo = worker * n / num_workers_;
  const size_t hi = (worker + 1) * n / num_workers_;
  for (size_t i = lo; i < hi; ++i) {
    const int upload = surviving[i];
    const ClientUpdate& upd = uploads[static_cast<size_t>(upload)];
    ClientUpdate::ItemGradSpan span = upd.item_span();
    for (size_t e = 0; e < span.size; ++e) {
      const int item = span.data[e].first;
      PIECK_DCHECK(item >= 0 && item < num_items_);
      bucket(worker, shard_of(item))
          .push_back({item, &span.data[e].second, upload});
    }
  }
}

void UpdateRouter::BuildShard(int shard) {
  PIECK_CHECK(shard >= 0 && shard < num_shards_);
  ShardArena& arena = shards_[static_cast<size_t>(shard)];
  const int begin = shard * items_per_shard_;
  const int end = std::min(num_items_, begin + items_per_shard_);
  const size_t range = static_cast<size_t>(std::max(0, end - begin));

  // Count entries per item. `assign` reuses the arena's buffer once its
  // capacity covers the range (steady state: the geometry is stable).
  arena.counts.assign(range, 0);
  size_t total = 0;
  for (size_t w = 0; w < num_workers_; ++w) {
    const std::vector<Entry>& b = bucket(w, shard);
    for (const Entry& e : b) {
      ++arena.counts[static_cast<size_t>(e.item - begin)];
    }
    total += b.size();
  }

  // Turn counts into group starts; record the groups in ascending item
  // order. After this pass counts[local] is the group's write cursor.
  arena.items.clear();
  arena.offsets.clear();
  size_t cum = 0;
  for (size_t local = 0; local < range; ++local) {
    const size_t c = arena.counts[local];
    if (c == 0) continue;
    arena.items.push_back(begin + static_cast<int>(local));
    arena.offsets.push_back(cum);
    arena.counts[local] = cum;
    cum += c;
  }
  arena.offsets.push_back(cum);
  PIECK_DCHECK(cum == total);

  // Stable scatter: workers in index order traverse contiguous,
  // ascending slices of the surviving uploads, so visiting buckets in
  // worker order replays the survivors' original order — each group
  // ends up with its gradients exactly as the old map path pushed them.
  arena.grads.resize(cum);
  arena.uploads.resize(cum);
  for (size_t w = 0; w < num_workers_; ++w) {
    for (const Entry& e : bucket(w, shard)) {
      const size_t at = arena.counts[static_cast<size_t>(e.item - begin)]++;
      arena.grads[at] = e.grad;
      arena.uploads[at] = e.upload;
    }
  }
}

UpdateRouter::ShardView UpdateRouter::Shard(int shard) const {
  PIECK_CHECK(shard >= 0 && shard < num_shards_);
  const ShardArena& arena = shards_[static_cast<size_t>(shard)];
  ShardView view;
  view.items = arena.items.data();
  view.offsets = arena.offsets.data();
  view.grads = arena.grads.data();
  view.upload_ids = arena.uploads.data();
  view.num_groups = arena.items.size();
  return view;
}

int64_t UpdateRouter::total_groups() const {
  int64_t groups = 0;
  for (int s = 0; s < num_shards_; ++s) {
    groups +=
        static_cast<int64_t>(shards_[static_cast<size_t>(s)].items.size());
  }
  return groups;
}

int64_t UpdateRouter::total_entries() const {
  int64_t entries = 0;
  for (int s = 0; s < num_shards_; ++s) {
    const ShardArena& arena = shards_[static_cast<size_t>(s)];
    entries += static_cast<int64_t>(arena.grads.size());
  }
  return entries;
}

int64_t UpdateRouter::CapacityBytes() const {
  int64_t bytes = static_cast<int64_t>(
      buckets_.capacity() * sizeof(std::vector<Entry>) +
      shards_.capacity() * sizeof(ShardArena));
  for (const std::vector<Entry>& b : buckets_) {
    bytes += static_cast<int64_t>(b.capacity() * sizeof(Entry));
  }
  for (const ShardArena& arena : shards_) {
    bytes += static_cast<int64_t>(arena.counts.capacity() * sizeof(size_t) +
                                  arena.items.capacity() * sizeof(int) +
                                  arena.offsets.capacity() * sizeof(size_t) +
                                  arena.grads.capacity() * sizeof(const Vec*) +
                                  arena.uploads.capacity() * sizeof(int));
  }
  return bytes;
}

}  // namespace pieck
