#include "fed/server.h"

#include <chrono>
#include <numeric>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

FederatedServer::FederatedServer(const RecModel& model, GlobalModel initial,
                                 ServerConfig config,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::unique_ptr<UpdateFilter> filter)
    : global_(std::move(initial)),
      config_(config),
      aggregator_(std::move(aggregator)),
      filter_(std::move(filter)),
      workload_(config.workload) {
  PIECK_CHECK(aggregator_ != nullptr);
  PIECK_CHECK(config_.users_per_round > 0);
  PIECK_CHECK(config_.num_threads >= 0);
  PIECK_CHECK(config_.router_shards >= 0);
  if (Status st = config_.workload.Validate(); !st.ok()) {
    PIECK_CHECK(false) << st.ToString();
  }
  PIECK_CHECK(global_.item_embeddings.cols() ==
              static_cast<size_t>(model.embedding_dim()))
      << "GlobalModel shape does not match the RecModel";
  const int threads = config_.num_threads == 0
                          ? ThreadPool::DefaultThreadCount()
                          : config_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void FederatedServer::For(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool::ParallelForOrSerial(pool_.get(), n, fn);
}

int64_t FederatedServer::ArenaBytes() const {
  int64_t bytes = static_cast<int64_t>(
      selected_.capacity() * sizeof(int) +
      updates_.capacity() * sizeof(ClientUpdate) +
      scratch_.capacity() * sizeof(RoundScratch) +
      loss_slots_.capacity() * sizeof(double) +
      prepared_users_.capacity() * sizeof(int) +
      surviving_.capacity() * sizeof(int) +
      interaction_flat_slots_.capacity() * sizeof(Vec) +
      interaction_span_.capacity() * sizeof(const Vec*) +
      interaction_agg_.capacity() * sizeof(double));
  for (const ClientUpdate& u : updates_) bytes += u.CapacityBytes();
  for (const RoundScratch& s : scratch_) bytes += s.CapacityBytes();
  for (const Vec& v : interaction_flat_slots_) {
    bytes += static_cast<int64_t>(v.capacity() * sizeof(double));
  }
  bytes += router_.CapacityBytes();
  bytes += workload_.CapacityBytes();
  return bytes;
}

RoundStats FederatedServer::RunRound(
    ClientStateStore& store, const std::vector<ClientInterface*>& malicious,
    int round, Rng& rng) {
  RoundStats stats;
  stats.round = round;
  const SteadyClock::time_point t_select = SteadyClock::now();

  const int num_benign = store.num_users();
  PIECK_CHECK(num_benign + static_cast<int>(malicious.size()) > 0);
  const std::vector<int>& selected = SelectParticipants(
      num_benign, static_cast<int>(malicious.size()), round, rng);
  stats.num_selected = static_cast<int>(selected.size());
  stats.active_benign = workload_.active_benign();

  // Materialize the lazy per-user state (engine, defense) of this
  // round's benign participants before fanning out: PrepareRound grows
  // shared pools and must stay single-threaded.
  prepared_users_.clear();
  for (int idx : selected) {
    if (idx < num_benign) {
      prepared_users_.push_back(idx);
    } else {
      stats.num_malicious_selected++;
    }
  }
  store.PrepareRound(prepared_users_);
  const SteadyClock::time_point t_train = SteadyClock::now();
  stats.select_ms = MsSince(t_select, t_train);

  // Selection-slot arenas: slots (and the buffers inside them) persist
  // across rounds, so the steady state rebuilds uploads with no
  // client-side allocation. Slots keep selection order, making the
  // result bit-identical to the serial loop for any thread count.
  updates_.resize(selected.size());
  const size_t num_slots = pool_ ? pool_->max_slots() : 1;
  if (scratch_.size() < num_slots) scratch_.resize(num_slots);
  loss_slots_.assign(selected.size(), 0.0);

  ThreadPool::ParallelForOrSerialSlots(
      pool_.get(), selected.size(), [&](size_t slot, size_t i) {
        const int idx = selected[i];
        if (idx < num_benign) {
          loss_slots_[i] = BenignClientLogic::ParticipateRound(
              store, idx, global_, round, scratch_[slot], &updates_[i]);
        } else {
          updates_[i] = malicious[static_cast<size_t>(idx - num_benign)]
                            ->ParticipateRound(global_, round);
        }
      });

  double loss_sum = 0.0;
  int benign_selected = 0;
  for (size_t i = 0; i < selected.size(); ++i) {
    if (selected[i] < num_benign) {
      loss_sum += loss_slots_[i];
      ++benign_selected;
    }
  }
  if (benign_selected > 0) {
    stats.mean_benign_loss = loss_sum / benign_selected;
  }
  stats.train_ms = MsSince(t_train, SteadyClock::now());

  RouteAndApply(updates_, &stats);

  stats.uploads_built = static_cast<int>(selected.size());
  stats.scratch_bytes_in_use = ArenaBytes();
  stats.store_footprint_bytes = store.FootprintBytes();
  return stats;
}

RoundStats FederatedServer::RunRound(
    const std::vector<ClientInterface*>& clients, int round, Rng& rng) {
  RoundStats stats;
  stats.round = round;
  const SteadyClock::time_point t_select = SteadyClock::now();

  const int n = static_cast<int>(clients.size());
  PIECK_CHECK(n > 0);
  // The object path has no benign/malicious index split the driver
  // could pin, so the whole client population churns and skews as one.
  const std::vector<int>& selected = SelectParticipants(n, 0, round, rng);
  stats.num_selected = static_cast<int>(selected.size());
  stats.active_benign = workload_.active_benign();
  for (int idx : selected) {
    if (clients[static_cast<size_t>(idx)]->is_malicious()) {
      stats.num_malicious_selected++;
    }
  }
  const SteadyClock::time_point t_train = SteadyClock::now();
  stats.select_ms = MsSince(t_select, t_train);

  // Local training, fanned out over the pool. Sampling is without
  // replacement, so the tasks touch distinct clients; every client owns
  // an independent RNG stream (forked at construction), so its upload
  // does not depend on which worker runs it or in which order. Writing
  // into pre-sized slots keeps `updates` in selection order, making the
  // result bit-identical to the serial loop for any thread count.
  std::vector<ClientUpdate> updates(selected.size());
  For(selected.size(), [&](size_t i) {
    updates[i] = clients[static_cast<size_t>(selected[i])]->ParticipateRound(
        global_, round);
  });
  stats.train_ms = MsSince(t_train, SteadyClock::now());

  RouteAndApply(updates, &stats);
  return stats;
}

void FederatedServer::ApplyUpdates(const std::vector<ClientUpdate>& raw,
                                   RoundStats* stats) {
  RouteAndApply(raw, stats);
}

const std::vector<int>& FederatedServer::SelectParticipants(int num_benign,
                                                            int num_malicious,
                                                            int round,
                                                            Rng& rng) {
  workload_.BindPopulation(num_benign, num_malicious);
  workload_.SelectInto(round, config_.users_per_round, rng, &selected_);
  return selected_;
}

void FederatedServer::RouteAndApply(const std::vector<ClientUpdate>& raw,
                                    RoundStats* stats) {
  const SteadyClock::time_point t_route = SteadyClock::now();

  // Client-level defense stage (Krum family): keep only the surviving
  // *indices* — the uploads themselves are borrowed in place, never
  // deep-copied (ClientUpdate::CopyCount guards this in tests).
  if (filter_ != nullptr && !raw.empty()) {
    surviving_ = filter_->Select(raw);
  } else {
    surviving_.resize(raw.size());
    std::iota(surviving_.begin(), surviving_.end(), 0);
  }

  // Route: group per-item gradients — item -> gradients from the clients
  // that uploaded one for that item. This sparsity is the crux of the
  // paper's defense analysis (Eq. 11): a cold target item receives
  // mostly poisonous gradients, whatever robust rule runs below. The
  // sharded router replays the retired std::map path's exact group
  // order (ascending items; gradients in surviving-upload order) into
  // flat per-shard CSR buckets whose arenas persist across rounds —
  // borrowed pointers, not copies: the updates outlive this function.
  const int num_items = static_cast<int>(global_.item_embeddings.rows());
  const size_t workers = pool_ ? static_cast<size_t>(pool_->num_threads()) : 1;
  const int shards =
      config_.router_shards > 0
          ? config_.router_shards
          : UpdateRouter::DefaultShardCount(static_cast<int>(workers),
                                            num_items);
  router_.BeginRound(num_items, shards, workers);
  For(workers, [&](size_t w) { router_.ScanSlice(w, raw, surviving_); });
  For(static_cast<size_t>(router_.num_shards()),
      [&](size_t s) { router_.BuildShard(static_cast<int>(s)); });
  const SteadyClock::time_point t_apply = SteadyClock::now();

  // Apply: one worker per shard. Shards cover contiguous, disjoint item
  // ranges, so every embedding-row write is private to its shard; each
  // item's aggregate-and-apply step consumes its gradient group exactly
  // as the old per-item fan-out did.
  const KernelTable& kernels = ActiveKernels();
  const size_t dim = global_.item_embeddings.cols();
  For(static_cast<size_t>(router_.num_shards()), [&](size_t s) {
    const UpdateRouter::ShardView view = router_.Shard(static_cast<int>(s));
    for (size_t gi = 0; gi < view.num_groups; ++gi) {
      const Vec* const* grads = view.grads + view.offsets[gi];
      const size_t count = view.offsets[gi + 1] - view.offsets[gi];
      double* row = global_.item_embeddings.MutableRowPtr(
          static_cast<size_t>(view.items[gi]));
      // Linear rules (Sum, Mean) apply each client gradient as one
      // blocked axpy straight into the embedding row — no aggregate
      // temporary, and the kernels see one contiguous pass per gradient.
      if (std::optional<double> w = aggregator_->LinearWeight(count)) {
        const double step = -config_.learning_rate * *w;
        for (size_t i = 0; i < count; ++i) {
          PIECK_DCHECK(grads[i]->size() == dim);
          kernels.axpy(step, grads[i]->data(), row, dim);
        }
        continue;
      }
      // Robust rules aggregate the borrowed span straight into a
      // per-worker scratch row (reused across items and rounds), then
      // one axpy applies it — no gradient set is ever materialized.
      for (size_t i = 0; i < count; ++i) {
        PIECK_DCHECK(grads[i]->size() == dim);
      }
      thread_local Vec agg;
      agg.resize(dim);
      aggregator_->Aggregate(grads, count, agg.data());
      kernels.axpy(-config_.learning_rate, agg.data(), row, dim);
    }
  });
  const SteadyClock::time_point t_interaction = SteadyClock::now();

  double interaction_ms = 0.0;
  if (global_.has_interaction_params()) {
    ApplyInteractionUpdates(raw, surviving_);
    interaction_ms = MsSince(t_interaction, SteadyClock::now());
  }

  if (stats != nullptr) {
    stats->route_ms = MsSince(t_route, t_apply);
    stats->apply_ms = MsSince(t_apply, t_interaction);
    stats->interaction_ms = interaction_ms;
    stats->router_shards = router_.num_shards();
    stats->router_groups = router_.total_groups();
    stats->router_entries = router_.total_entries();
  }
}

void FederatedServer::ApplyInteractionUpdates(
    const std::vector<ClientUpdate>& raw, const std::vector<int>& surviving) {
  // DL-FRS: the interaction parameters Ψ aggregate once per round over
  // the selected clients. Coordinate-wise rules are defined on the
  // concatenated parameter space, and the per-layer tensors are not
  // contiguous anywhere, so flattening must *construct* each client's
  // vector — into per-slot scratch rows that persist across rounds, the
  // one aggregation input that cannot be borrowed.
  if (interaction_flat_slots_.size() < surviving.size()) {
    interaction_flat_slots_.resize(surviving.size());
  }
  interaction_span_.clear();
  size_t slot = 0;
  for (int idx : surviving) {
    const ClientUpdate& upd = raw[static_cast<size_t>(idx)];
    if (upd.interaction_grads.active) {
      Vec& flat = interaction_flat_slots_[slot++];
      upd.interaction_grads.FlattenInto(&flat);
      interaction_span_.push_back(&flat);
    }
  }
  if (interaction_span_.empty()) return;
  interaction_agg_.resize(interaction_span_[0]->size());
  aggregator_->Aggregate(interaction_span_.data(), interaction_span_.size(),
                         interaction_agg_.data());
  interaction_step_.ResetLike(global_);
  interaction_step_.Unflatten(interaction_agg_);
  for (size_t l = 0; l < global_.mlp_weights.size(); ++l) {
    global_.mlp_weights[l].Axpy(-config_.learning_rate,
                                interaction_step_.weights[l]);
    Axpy(-config_.learning_rate, interaction_step_.biases[l],
         global_.mlp_biases[l]);
  }
  Axpy(-config_.learning_rate, interaction_step_.projection,
       global_.projection);
}

}  // namespace pieck
