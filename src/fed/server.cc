#include "fed/server.h"

#include <map>
#include <numeric>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

FederatedServer::FederatedServer(const RecModel& model, GlobalModel initial,
                                 ServerConfig config,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::unique_ptr<UpdateFilter> filter)
    : model_(model),
      global_(std::move(initial)),
      config_(config),
      aggregator_(std::move(aggregator)),
      filter_(std::move(filter)) {
  PIECK_CHECK(aggregator_ != nullptr);
  PIECK_CHECK(config_.users_per_round > 0);
  PIECK_CHECK(config_.num_threads >= 0);
  const int threads = config_.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                               : config_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void FederatedServer::For(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool::ParallelForOrSerial(pool_.get(), n, fn);
}

int64_t FederatedServer::ArenaBytes() const {
  int64_t bytes = static_cast<int64_t>(
      updates_.capacity() * sizeof(ClientUpdate) +
      scratch_.capacity() * sizeof(RoundScratch) +
      loss_slots_.capacity() * sizeof(double) +
      prepared_users_.capacity() * sizeof(int));
  for (const ClientUpdate& u : updates_) bytes += u.CapacityBytes();
  for (const RoundScratch& s : scratch_) bytes += s.CapacityBytes();
  return bytes;
}

RoundStats FederatedServer::RunRound(
    ClientStateStore& store, const std::vector<ClientInterface*>& malicious,
    int round, Rng& rng) {
  RoundStats stats;
  stats.round = round;

  const int num_benign = store.num_users();
  const int n = num_benign + static_cast<int>(malicious.size());
  PIECK_CHECK(n > 0);
  std::vector<int> selected = rng.SampleWithoutReplacement(
      n, std::min(config_.users_per_round, n));
  stats.num_selected = static_cast<int>(selected.size());

  // Materialize the lazy per-user state (engine, defense) of this
  // round's benign participants before fanning out: PrepareRound grows
  // shared pools and must stay single-threaded.
  prepared_users_.clear();
  for (int idx : selected) {
    if (idx < num_benign) {
      prepared_users_.push_back(idx);
    } else {
      stats.num_malicious_selected++;
    }
  }
  store.PrepareRound(prepared_users_);

  // Selection-slot arenas: slots (and the buffers inside them) persist
  // across rounds, so the steady state rebuilds uploads with no
  // client-side allocation. Slots keep selection order, making the
  // result bit-identical to the serial loop for any thread count.
  updates_.resize(selected.size());
  const size_t num_slots = pool_ ? pool_->max_slots() : 1;
  if (scratch_.size() < num_slots) scratch_.resize(num_slots);
  loss_slots_.assign(selected.size(), 0.0);

  ThreadPool::ParallelForOrSerialSlots(
      pool_.get(), selected.size(), [&](size_t slot, size_t i) {
        const int idx = selected[i];
        if (idx < num_benign) {
          loss_slots_[i] = BenignClientLogic::ParticipateRound(
              store, idx, global_, round, scratch_[slot], &updates_[i]);
        } else {
          updates_[i] = malicious[static_cast<size_t>(idx - num_benign)]
                            ->ParticipateRound(global_, round);
        }
      });

  double loss_sum = 0.0;
  int benign_selected = 0;
  for (size_t i = 0; i < selected.size(); ++i) {
    if (selected[i] < num_benign) {
      loss_sum += loss_slots_[i];
      ++benign_selected;
    }
  }
  if (benign_selected > 0) {
    stats.mean_benign_loss = loss_sum / benign_selected;
  }

  ApplyUpdates(updates_);

  stats.uploads_built = static_cast<int>(selected.size());
  stats.scratch_bytes_in_use = ArenaBytes();
  stats.store_footprint_bytes = store.FootprintBytes();
  return stats;
}

RoundStats FederatedServer::RunRound(
    const std::vector<ClientInterface*>& clients, int round, Rng& rng) {
  RoundStats stats;
  stats.round = round;

  const int n = static_cast<int>(clients.size());
  PIECK_CHECK(n > 0);
  std::vector<int> selected = rng.SampleWithoutReplacement(
      n, std::min(config_.users_per_round, n));
  stats.num_selected = static_cast<int>(selected.size());
  for (int idx : selected) {
    if (clients[static_cast<size_t>(idx)]->is_malicious()) {
      stats.num_malicious_selected++;
    }
  }

  // Local training, fanned out over the pool. Sampling is without
  // replacement, so the tasks touch distinct clients; every client owns
  // an independent RNG stream (forked at construction), so its upload
  // does not depend on which worker runs it or in which order. Writing
  // into pre-sized slots keeps `updates` in selection order, making the
  // result bit-identical to the serial loop for any thread count.
  std::vector<ClientUpdate> updates(selected.size());
  For(selected.size(), [&](size_t i) {
    updates[i] = clients[static_cast<size_t>(selected[i])]->ParticipateRound(
        global_, round);
  });

  ApplyUpdates(updates);
  return stats;
}

void FederatedServer::ApplyUpdates(const std::vector<ClientUpdate>& raw) {
  // Client-level defense stage (Krum family): keep only the surviving
  // *indices* — the uploads themselves are borrowed in place, never
  // deep-copied (ClientUpdate::CopyCount guards this in tests).
  std::vector<int> surviving;
  if (filter_ != nullptr && !raw.empty()) {
    surviving = filter_->Select(raw);
  } else {
    surviving.resize(raw.size());
    std::iota(surviving.begin(), surviving.end(), 0);
  }

  // Group per-item gradients: item -> gradients from the clients that
  // uploaded one for that item. This sparsity is the crux of the paper's
  // defense analysis (Eq. 11): a cold target item receives mostly
  // poisonous gradients, whatever robust rule runs below. Borrowed
  // pointers, not copies: the updates outlive this function.
  std::map<int, std::vector<const Vec*>> per_item;
  for (int idx : surviving) {
    for (const auto& [item, grad] : raw[static_cast<size_t>(idx)].item_grads) {
      per_item[item].push_back(&grad);
    }
  }
  // The grouping above is order-sensitive (gradients appear in update
  // order), but each item's aggregate-and-apply step only reads its own
  // gradient list and writes its own embedding row, so the steps fan out
  // with no cross-item interaction.
  std::vector<std::pair<int, const std::vector<const Vec*>*>> work;
  work.reserve(per_item.size());
  for (const auto& [item, grads] : per_item) {
    work.emplace_back(item, &grads);
  }
  const KernelTable& kernels = ActiveKernels();
  For(work.size(), [&](size_t i) {
    const auto& [item, grads] = work[i];
    const size_t dim = global_.item_embeddings.cols();
    double* row =
        global_.item_embeddings.MutableRowPtr(static_cast<size_t>(item));
    // Linear rules (Sum, Mean) apply each client gradient as one blocked
    // axpy straight into the embedding row — no aggregate temporary, and
    // the kernels see one contiguous pass per gradient.
    if (std::optional<double> w = aggregator_->LinearWeight(grads->size())) {
      const double step = -config_.learning_rate * *w;
      for (const Vec* g : *grads) {
        PIECK_CHECK(g->size() == dim);
        kernels.axpy(step, g->data(), row, dim);
      }
      return;
    }
    // Robust rules aggregate the borrowed span straight into a
    // per-worker scratch row (reused across items and rounds), then one
    // axpy applies it — no gradient set is ever materialized.
    thread_local Vec agg;
    for (const Vec* g : *grads) PIECK_CHECK(g->size() == dim);
    agg.resize(dim);
    aggregator_->Aggregate(*grads, agg.data());
    kernels.axpy(-config_.learning_rate, agg.data(), row, dim);
  });

  if (global_.has_interaction_params()) {
    ApplyInteractionUpdates(raw, surviving);
  }
  (void)model_;
}

void FederatedServer::ApplyInteractionUpdates(
    const std::vector<ClientUpdate>& raw, const std::vector<int>& surviving) {
  // DL-FRS: the interaction parameters Ψ aggregate once per round over
  // the selected clients. Coordinate-wise rules are defined on the
  // concatenated parameter space, and the per-layer tensors are not
  // contiguous anywhere, so flattening must *construct* each client's
  // vector — this is the one aggregation input that cannot be borrowed.
  std::vector<Vec> flat_grads;
  for (int idx : surviving) {
    const ClientUpdate& upd = raw[static_cast<size_t>(idx)];
    if (upd.interaction_grads.active) {
      flat_grads.push_back(upd.interaction_grads.Flatten());
    }
  }
  if (flat_grads.empty()) return;
  Vec agg = aggregator_->Aggregate(flat_grads);
  InteractionGrads step = InteractionGrads::ZerosLike(global_);
  step.Unflatten(agg);
  for (size_t l = 0; l < global_.mlp_weights.size(); ++l) {
    global_.mlp_weights[l].Axpy(-config_.learning_rate, step.weights[l]);
    Axpy(-config_.learning_rate, step.biases[l], global_.mlp_biases[l]);
  }
  Axpy(-config_.learning_rate, step.projection, global_.projection);
}

}  // namespace pieck
