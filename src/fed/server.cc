#include "fed/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

FederatedServer::FederatedServer(const RecModel& model, GlobalModel initial,
                                 ServerConfig config,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::unique_ptr<UpdateFilter> filter)
    : global_(std::move(initial)),
      config_(config),
      aggregator_(std::move(aggregator)),
      filter_(std::move(filter)),
      workload_(config.workload) {
  PIECK_CHECK(aggregator_ != nullptr);
  PIECK_CHECK(config_.users_per_round > 0);
  PIECK_CHECK(config_.num_threads >= 0);
  PIECK_CHECK(config_.router_shards >= 0);
  PIECK_CHECK(config_.async.pipeline_depth >= 1)
      << "async.pipeline_depth must be >= 1";
  PIECK_CHECK(config_.async.staleness_decay > 0.0 &&
              config_.async.staleness_decay <= 1.0)
      << "async.staleness_decay must be in (0, 1]";
  PIECK_CHECK(config_.async.max_staleness >= -1)
      << "async.max_staleness must be -1 (never drop) or >= 0";
  if (Status st = config_.workload.Validate(); !st.ok()) {
    PIECK_CHECK(false) << st.ToString();
  }
  PIECK_CHECK(global_.item_embeddings.cols() ==
              static_cast<size_t>(model.embedding_dim()))
      << "GlobalModel shape does not match the RecModel";
  const int threads = config_.num_threads == 0
                          ? ThreadPool::DefaultThreadCount()
                          : config_.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void FederatedServer::For(size_t n, const std::function<void(size_t)>& fn) {
  ThreadPool::ParallelForOrSerial(pool_.get(), n, fn);
}

int64_t FederatedServer::ArenaBytes() const {
  int64_t bytes = static_cast<int64_t>(
      selected_.capacity() * sizeof(int) +
      updates_.capacity() * sizeof(ClientUpdate) +
      scratch_.capacity() * sizeof(RoundScratch) +
      loss_slots_.capacity() * sizeof(double) +
      prepared_users_.capacity() * sizeof(int) +
      surviving_.capacity() * sizeof(int) +
      interaction_flat_slots_.capacity() * sizeof(Vec) +
      interaction_span_.capacity() * sizeof(const Vec*) +
      interaction_agg_.capacity() * sizeof(double));
  for (const ClientUpdate& u : updates_) bytes += u.CapacityBytes();
  for (const RoundScratch& s : scratch_) bytes += s.CapacityBytes();
  for (const Vec& v : interaction_flat_slots_) {
    bytes += static_cast<int64_t>(v.capacity() * sizeof(double));
  }
  bytes += router_.CapacityBytes();
  bytes += workload_.CapacityBytes();
  // Pipelined-engine arenas (all empty until the first depth >= 2 block).
  bytes += static_cast<int64_t>(weight_by_upload_.capacity() *
                                sizeof(double)) +
           dirty_rows_.CapacityBytes() + store_dirty_.CapacityBytes();
  for (const std::vector<int>& sel : sel_ring_) {
    bytes += static_cast<int64_t>(sel.capacity() * sizeof(int));
  }
  for (const std::vector<ClientUpdate>& ring : updates_ring_) {
    bytes += static_cast<int64_t>(ring.capacity() * sizeof(ClientUpdate));
    for (const ClientUpdate& u : ring) bytes += u.CapacityBytes();
  }
  for (const std::vector<double>& ring : loss_ring_) {
    bytes += static_cast<int64_t>(ring.capacity() * sizeof(double));
  }
  bytes += ring_.CapacityBytes();
  return bytes;
}

RoundStats FederatedServer::RunRound(
    ClientStateStore& store, const std::vector<ClientInterface*>& malicious,
    int round, Rng& rng) {
  PIECK_DCHECK(!round_in_flight_) << "RunRound reentered";
  round_in_flight_ = true;
  RoundStats stats;
  stats.round = round;
  const SteadyClock::time_point t_select = SteadyClock::now();

  const int num_benign = store.num_users();
  PIECK_CHECK(num_benign + static_cast<int>(malicious.size()) > 0);
  const std::vector<int>& selected = SelectLocked(
      num_benign, static_cast<int>(malicious.size()), round, rng);
  stats.num_selected = static_cast<int>(selected.size());
  stats.active_benign = workload_.active_benign();

  // Materialize the lazy per-user state (engine, defense) of this
  // round's benign participants before fanning out: PrepareRound grows
  // shared pools and must stay single-threaded.
  prepared_users_.clear();
  for (int idx : selected) {
    if (idx < num_benign) {
      prepared_users_.push_back(idx);
    } else {
      stats.num_malicious_selected++;
    }
  }
  store.PrefetchUsers(prepared_users_);
  store.PrepareRound(prepared_users_);
  const SteadyClock::time_point t_train = SteadyClock::now();
  stats.select_ms = MsSince(t_select, t_train);

  // Selection-slot arenas: slots (and the buffers inside them) persist
  // across rounds, so the steady state rebuilds uploads with no
  // client-side allocation. Slots keep selection order, making the
  // result bit-identical to the serial loop for any thread count.
  updates_.resize(selected.size());
  const size_t num_slots = pool_ ? pool_->max_slots() : 1;
  if (scratch_.size() < num_slots) scratch_.resize(num_slots);
  loss_slots_.assign(selected.size(), 0.0);

  ThreadPool::ParallelForOrSerialSlots(
      pool_.get(), selected.size(), [&](size_t slot, size_t i) {
        const int idx = selected[i];
        if (idx < num_benign) {
          loss_slots_[i] = BenignClientLogic::ParticipateRound(
              store, idx, global_, round, scratch_[slot], &updates_[i]);
        } else {
          updates_[i] = malicious[static_cast<size_t>(idx - num_benign)]
                            ->ParticipateRound(global_, round);
        }
      });

  double loss_sum = 0.0;
  int benign_selected = 0;
  for (size_t i = 0; i < selected.size(); ++i) {
    if (selected[i] < num_benign) {
      loss_sum += loss_slots_[i];
      ++benign_selected;
    }
  }
  if (benign_selected > 0) {
    stats.mean_benign_loss = loss_sum / benign_selected;
  }
  stats.train_ms = MsSince(t_train, SteadyClock::now());

  RouteAndApply(updates_, &stats);

  // Storage write-back rides the Apply stage: the cohort's dirty rows
  // go to the backing file in one batch (no-op under RAM storage).
  const SteadyClock::time_point t_flush = SteadyClock::now();
  store_dirty_.Clear();
  store.FlushDirtyRows(&store_dirty_);
  stats.apply_ms += MsSince(t_flush, SteadyClock::now());

  stats.uploads_built = static_cast<int>(selected.size());
  stats.scratch_bytes_in_use = ArenaBytes();
  stats.store_footprint_bytes = store.FootprintBytes();
  stats.store_backing_bytes = store.BackingBytes();
  const StorageCounters sc = store.storage_counters();
  stats.store_cache_hits = sc.hits;
  stats.store_cache_misses = sc.misses;
  stats.store_cache_evictions = sc.evictions;
  stats.store_cache_writebacks = sc.writebacks;
  round_in_flight_ = false;
  return stats;
}

RoundStats FederatedServer::RunRound(
    const std::vector<ClientInterface*>& clients, int round, Rng& rng) {
  PIECK_DCHECK(!round_in_flight_) << "RunRound reentered";
  round_in_flight_ = true;
  RoundStats stats;
  stats.round = round;
  const SteadyClock::time_point t_select = SteadyClock::now();

  const int n = static_cast<int>(clients.size());
  PIECK_CHECK(n > 0);
  // The object path has no benign/malicious index split the driver
  // could pin, so the whole client population churns and skews as one.
  const std::vector<int>& selected = SelectLocked(n, 0, round, rng);
  stats.num_selected = static_cast<int>(selected.size());
  stats.active_benign = workload_.active_benign();
  for (int idx : selected) {
    if (clients[static_cast<size_t>(idx)]->is_malicious()) {
      stats.num_malicious_selected++;
    }
  }
  const SteadyClock::time_point t_train = SteadyClock::now();
  stats.select_ms = MsSince(t_select, t_train);

  // Local training, fanned out over the pool. Sampling is without
  // replacement, so the tasks touch distinct clients; every client owns
  // an independent RNG stream (forked at construction), so its upload
  // does not depend on which worker runs it or in which order. Writing
  // into pre-sized slots keeps `updates` in selection order, making the
  // result bit-identical to the serial loop for any thread count.
  std::vector<ClientUpdate> updates(selected.size());
  For(selected.size(), [&](size_t i) {
    updates[i] = clients[static_cast<size_t>(selected[i])]->ParticipateRound(
        global_, round);
  });
  stats.train_ms = MsSince(t_train, SteadyClock::now());

  RouteAndApply(updates, &stats);
  round_in_flight_ = false;
  return stats;
}

void FederatedServer::ApplyUpdates(const std::vector<ClientUpdate>& raw,
                                   RoundStats* stats) {
  RouteAndApply(raw, stats);
}

void FederatedServer::RunRounds(ClientStateStore& store,
                                const std::vector<ClientInterface*>& malicious,
                                int first_round, int num_rounds, Rng& rng,
                                std::vector<RoundStats>* stats) {
  PIECK_CHECK(num_rounds >= 0);
  if (num_rounds == 0) return;
  if (config_.async.pipeline_depth <= 1) {
    // Depth 1 is the synchronous engine: a plain RunRound loop,
    // bit-identical to the caller driving RunRound itself.
    for (int i = 0; i < num_rounds; ++i) {
      RoundStats rs = RunRound(store, malicious, first_round + i, rng);
      if (stats != nullptr) stats->push_back(rs);
    }
    return;
  }
  PIECK_DCHECK(!round_in_flight_) << "RunRounds reentered";
  round_in_flight_ = true;
  RunRoundsPipelined(store, malicious, first_round, num_rounds, rng, stats);
  round_in_flight_ = false;
}

void FederatedServer::RunRoundsPipelined(
    ClientStateStore& store, const std::vector<ClientInterface*>& malicious,
    int first_round, int num_rounds, Rng& rng,
    std::vector<RoundStats>* stats) {
  // Three stage threads over a *static* schedule:
  //
  //   select — samples cohort i into a ring of D+1 slots. Selection is
  //            model-independent, so running ahead cannot change the
  //            draws; consuming the round RNG in round order keeps the
  //            stream equal to the synchronous engine's, draw for draw.
  //   driver — (this thread) prepares the store (single-owner mutation)
  //            and fans local training out over the pool, always against
  //            the snapshot of version base + max(0, i - (D-1)).
  //   apply  — routes + staleness-weights + applies finished rounds in
  //            order on the live model, then publishes version base+j+1
  //            into the ring.
  //
  // Which version round i trains against depends only on (i, D) — never
  // on thread timing — so every upload's staleness is min(i, D-1) by
  // construction and the whole block is bit-deterministic for any
  // thread/shard/backend choice.
  //
  // Slot-reuse safety: the driver's wait `applies_done >= i - (D-1)`
  // covers both hazards at once — the snapshot it needs has been
  // published, and the updates slot i % D it overwrites was consumed by
  // apply(i - D). The select ring has one extra slot so sampling can
  // run a full depth ahead of training.
  const int D = config_.async.pipeline_depth;
  const int S = D + 1;
  const int64_t base = model_version_;
  const int num_benign = store.num_users();
  const int num_malicious = static_cast<int>(malicious.size());
  PIECK_CHECK(num_benign + num_malicious > 0);

  std::vector<RoundStats> local_stats;
  size_t out_base = 0;
  if (stats != nullptr) {
    out_base = stats->size();
    stats->resize(out_base + static_cast<size_t>(num_rounds));
  } else {
    local_stats.resize(static_cast<size_t>(num_rounds));
  }
  RoundStats* rs =
      stats != nullptr ? stats->data() + out_base : local_stats.data();

  if (static_cast<int>(sel_ring_.size()) < S) {
    sel_ring_.resize(static_cast<size_t>(S));
  }
  if (static_cast<int>(updates_ring_.size()) < D) {
    updates_ring_.resize(static_cast<size_t>(D));
  }
  if (static_cast<int>(loss_ring_.size()) < D) {
    loss_ring_.resize(static_cast<size_t>(D));
  }
  ring_.Reset(global_, base, D);
  const size_t num_slots = pool_ ? pool_->max_slots() : 1;
  if (scratch_.size() < num_slots) scratch_.resize(num_slots);

  std::mutex mu;
  std::condition_variable cv;
  int selects_done = 0;
  int trains_done = 0;
  int applies_done = 0;

  std::thread select_thread([&] {
    for (int i = 0; i < num_rounds; ++i) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return i - trains_done < S; });
      }
      const SteadyClock::time_point t0 = SteadyClock::now();
      workload_.BindPopulation(num_benign, num_malicious);
      std::vector<int>& slot = sel_ring_[static_cast<size_t>(i % S)];
      workload_.SelectInto(first_round + i, config_.users_per_round, rng,
                           &slot);
      // Advisory readahead of the cohort's rows and CSR spans while
      // earlier rounds train (madvise-only: no store state is touched,
      // so racing the driver thread is safe).
      store.PrefetchUsers(slot);
      rs[i].round = first_round + i;
      rs[i].num_selected = static_cast<int>(slot.size());
      rs[i].active_benign = workload_.active_benign();
      rs[i].select_ms = MsSince(t0, SteadyClock::now());
      {
        std::lock_guard<std::mutex> lock(mu);
        selects_done = i + 1;
      }
      cv.notify_all();
    }
  });

  std::thread apply_thread([&] {
    for (int j = 0; j < num_rounds; ++j) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return trains_done >= j + 1; });
      }
      std::vector<ClientUpdate>& updates =
          updates_ring_[static_cast<size_t>(j % D)];
      RouteAndApply(updates, &rs[j], /*serial=*/true);
      rs[j].pipeline_depth = D;
      rs[j].uploads_built = static_cast<int>(updates.size());
      // The rows this apply touched are exactly the router's group keys.
      dirty_rows_.Clear();
      for (int s = 0; s < router_.num_shards(); ++s) {
        const UpdateRouter::ShardView view = router_.Shard(s);
        for (size_t g = 0; g < view.num_groups; ++g) {
          dirty_rows_.Add(view.items[g]);
        }
      }
      ring_.Publish(global_, base + j + 1, dirty_rows_);
      {
        std::lock_guard<std::mutex> lock(mu);
        applies_done = j + 1;
      }
      cv.notify_all();
    }
  });

  for (int i = 0; i < num_rounds; ++i) {
    const SteadyClock::time_point t_wait = SteadyClock::now();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] {
        return selects_done >= i + 1 && applies_done >= i - (D - 1);
      });
    }
    const SteadyClock::time_point t_prep = SteadyClock::now();
    rs[i].stall_ms = MsSince(t_wait, t_prep);

    const std::vector<int>& selected = sel_ring_[static_cast<size_t>(i % S)];
    prepared_users_.clear();
    int malicious_selected = 0;
    for (int idx : selected) {
      if (idx < num_benign) {
        prepared_users_.push_back(idx);
      } else {
        ++malicious_selected;
      }
    }
    rs[i].num_malicious_selected = malicious_selected;
    store.PrepareRound(prepared_users_);
    const SteadyClock::time_point t_train = SteadyClock::now();
    rs[i].select_ms += MsSince(t_prep, t_train);

    const int64_t train_version = base + std::max(0, i - (D - 1));
    const GlobalModel& snap = ring_.Snapshot(train_version);
    std::vector<ClientUpdate>& updates =
        updates_ring_[static_cast<size_t>(i % D)];
    std::vector<double>& loss = loss_ring_[static_cast<size_t>(i % D)];
    updates.resize(selected.size());
    loss.assign(selected.size(), 0.0);
    const int round = first_round + i;
    ThreadPool::ParallelForOrSerialSlots(
        pool_.get(), selected.size(), [&](size_t slot, size_t k) {
          const int idx = selected[k];
          if (idx < num_benign) {
            loss[k] = BenignClientLogic::ParticipateRound(
                store, idx, snap, round, scratch_[slot], &updates[k]);
          } else {
            updates[k] = malicious[static_cast<size_t>(idx - num_benign)]
                             ->ParticipateRound(snap, round);
          }
          updates[k].model_version = train_version;
        });

    double loss_sum = 0.0;
    int benign_selected = 0;
    for (size_t k = 0; k < selected.size(); ++k) {
      if (selected[k] < num_benign) {
        loss_sum += loss[k];
        ++benign_selected;
      }
    }
    if (benign_selected > 0) {
      rs[i].mean_benign_loss = loss_sum / benign_selected;
    }
    rs[i].train_ms = MsSince(t_train, SteadyClock::now());
    {
      std::lock_guard<std::mutex> lock(mu);
      trains_done = i + 1;
    }
    cv.notify_all();
  }

  select_thread.join();
  apply_thread.join();

  // The last cohort is still pinned (the per-round write-back happens at
  // the *next* PrepareRound on this thread); flush it before returning.
  store_dirty_.Clear();
  store.FlushDirtyRows(&store_dirty_);

  const int64_t arena_bytes = ArenaBytes();
  const int64_t store_bytes = store.FootprintBytes();
  const int64_t backing_bytes = store.BackingBytes();
  const StorageCounters sc = store.storage_counters();
  for (int i = 0; i < num_rounds; ++i) {
    rs[i].scratch_bytes_in_use = arena_bytes;
    rs[i].store_footprint_bytes = store_bytes;
    rs[i].store_backing_bytes = backing_bytes;
    rs[i].store_cache_hits = sc.hits;
    rs[i].store_cache_misses = sc.misses;
    rs[i].store_cache_evictions = sc.evictions;
    rs[i].store_cache_writebacks = sc.writebacks;
  }
}

const std::vector<int>& FederatedServer::SelectParticipants(int num_benign,
                                                            int num_malicious,
                                                            int round,
                                                            Rng& rng) {
  PIECK_DCHECK(!round_in_flight_)
      << "SelectParticipants called while RunRound(s) is in flight — the "
         "workload driver and the selection arena are single-owner";
  return SelectLocked(num_benign, num_malicious, round, rng);
}

const std::vector<int>& FederatedServer::SelectLocked(int num_benign,
                                                      int num_malicious,
                                                      int round, Rng& rng) {
  workload_.BindPopulation(num_benign, num_malicious);
  workload_.SelectInto(round, config_.users_per_round, rng, &selected_);
  return selected_;
}

void FederatedServer::RouteAndApply(const std::vector<ClientUpdate>& raw,
                                    RoundStats* stats, bool serial) {
  const SteadyClock::time_point t_route = SteadyClock::now();

  // Stage fan-out: on the pool, or inline when `serial` (the pipelined
  // engine's apply thread must never share the train fan-out's pool —
  // its Wait is global).
  const auto fan = [&](size_t n, const std::function<void(size_t)>& fn) {
    if (serial) {
      for (size_t i = 0; i < n; ++i) fn(i);
    } else {
      For(n, fn);
    }
  };

  // Client-level defense stage (Krum family): keep only the surviving
  // *indices* — the uploads themselves are borrowed in place, never
  // deep-copied (ClientUpdate::CopyCount guards this in tests).
  if (filter_ != nullptr && !raw.empty()) {
    surviving_ = filter_->Select(raw);
  } else {
    surviving_.resize(raw.size());
    std::iota(surviving_.begin(), surviving_.end(), 0);
  }

  // Staleness stage: each upload's staleness is the number of applies
  // the live model is ahead of the version the client trained against
  // (the -1 sentinel means "current", i.e. staleness 0 — every
  // synchronous caller). Too-stale uploads are dropped before routing;
  // the rest get weight decay^s. w(0) == 1 exactly, so a round of
  // current uploads takes the identical unweighted code path below.
  const AsyncConfig& async = config_.async;
  weight_by_upload_.assign(raw.size(), 1.0);
  weights_active_ = false;
  int64_t dropped = 0;
  int64_t applied = 0;
  int64_t staleness_sum = 0;
  int max_staleness = 0;
  if (stats != nullptr) stats->staleness_counts.clear();
  size_t kept = 0;
  for (size_t i = 0; i < surviving_.size(); ++i) {
    const int idx = surviving_[i];
    const int64_t trained = raw[static_cast<size_t>(idx)].model_version;
    const int64_t s =
        trained < 0 ? 0 : std::max<int64_t>(0, model_version_ - trained);
    if (async.max_staleness >= 0 && s > async.max_staleness) {
      ++dropped;
      continue;
    }
    surviving_[kept++] = idx;
    ++applied;
    staleness_sum += s;
    max_staleness = std::max(max_staleness, static_cast<int>(s));
    if (s > 0 && async.staleness_decay != 1.0) {
      weight_by_upload_[static_cast<size_t>(idx)] =
          std::pow(async.staleness_decay, static_cast<double>(s));
      weights_active_ = true;
    }
    if (stats != nullptr) {
      if (static_cast<size_t>(s) >= stats->staleness_counts.size()) {
        stats->staleness_counts.resize(static_cast<size_t>(s) + 1, 0);
      }
      ++stats->staleness_counts[static_cast<size_t>(s)];
    }
  }
  surviving_.resize(kept);

  // Route: group per-item gradients — item -> gradients from the clients
  // that uploaded one for that item. This sparsity is the crux of the
  // paper's defense analysis (Eq. 11): a cold target item receives
  // mostly poisonous gradients, whatever robust rule runs below. The
  // sharded router replays the retired std::map path's exact group
  // order (ascending items; gradients in surviving-upload order) into
  // flat per-shard CSR buckets whose arenas persist across rounds —
  // borrowed pointers, not copies: the updates outlive this function.
  const int num_items = static_cast<int>(global_.item_embeddings.rows());
  const size_t workers =
      serial ? 1 : (pool_ ? static_cast<size_t>(pool_->num_threads()) : 1);
  const int shards =
      config_.router_shards > 0
          ? config_.router_shards
          : UpdateRouter::DefaultShardCount(static_cast<int>(workers),
                                            num_items);
  router_.BeginRound(num_items, shards, workers);
  fan(workers, [&](size_t w) { router_.ScanSlice(w, raw, surviving_); });
  fan(static_cast<size_t>(router_.num_shards()),
      [&](size_t s) { router_.BuildShard(static_cast<int>(s)); });
  const SteadyClock::time_point t_apply = SteadyClock::now();

  // Apply: one worker per shard. Shards cover contiguous, disjoint item
  // ranges, so every embedding-row write is private to its shard; each
  // item's aggregate-and-apply step consumes its gradient group exactly
  // as the old per-item fan-out did.
  const KernelTable& kernels = ActiveKernels();
  const size_t dim = global_.item_embeddings.cols();
  fan(static_cast<size_t>(router_.num_shards()), [&](size_t s) {
    const UpdateRouter::ShardView view = router_.Shard(static_cast<int>(s));
    for (size_t gi = 0; gi < view.num_groups; ++gi) {
      const Vec* const* grads = view.grads + view.offsets[gi];
      const int* uploads = view.upload_ids + view.offsets[gi];
      const size_t count = view.offsets[gi + 1] - view.offsets[gi];
      double* row = global_.item_embeddings.MutableRowPtr(
          static_cast<size_t>(view.items[gi]));
      // Linear rules (Sum, Mean) apply each client gradient as one
      // blocked axpy straight into the embedding row — no aggregate
      // temporary, and the kernels see one contiguous pass per gradient.
      // A staleness weight folds into the axpy scale exactly.
      if (std::optional<double> w = aggregator_->LinearWeight(count)) {
        const double step = -config_.learning_rate * *w;
        if (!weights_active_) {
          for (size_t i = 0; i < count; ++i) {
            PIECK_DCHECK(grads[i]->size() == dim);
            kernels.axpy(step, grads[i]->data(), row, dim);
          }
        } else {
          for (size_t i = 0; i < count; ++i) {
            PIECK_DCHECK(grads[i]->size() == dim);
            kernels.axpy(
                step * weight_by_upload_[static_cast<size_t>(uploads[i])],
                grads[i]->data(), row, dim);
          }
        }
        continue;
      }
      // Robust rules aggregate the borrowed span straight into a
      // per-worker scratch row (reused across items and rounds), then
      // one axpy applies it — no gradient set is ever materialized.
      // Staleness weights are not linear in the aggregate here, so a
      // weighted round first scales each gradient into per-worker
      // scratch rows and aggregates those; the unweighted round (every
      // synchronous caller) still borrows the originals untouched.
      for (size_t i = 0; i < count; ++i) {
        PIECK_DCHECK(grads[i]->size() == dim);
      }
      const Vec* const* agg_input = grads;
      if (weights_active_) {
        thread_local std::vector<Vec> scaled;
        thread_local std::vector<const Vec*> scaled_ptrs;
        if (scaled.size() < count) scaled.resize(count);
        scaled_ptrs.resize(count);
        for (size_t i = 0; i < count; ++i) {
          const double w =
              weight_by_upload_[static_cast<size_t>(uploads[i])];
          Vec& dst = scaled[i];
          dst.resize(dim);
          const double* src = grads[i]->data();
          for (size_t d = 0; d < dim; ++d) dst[d] = w * src[d];
          scaled_ptrs[i] = &dst;
        }
        agg_input = scaled_ptrs.data();
      }
      thread_local Vec agg;
      agg.resize(dim);
      aggregator_->Aggregate(agg_input, count, agg.data());
      kernels.axpy(-config_.learning_rate, agg.data(), row, dim);
    }
  });
  const SteadyClock::time_point t_interaction = SteadyClock::now();

  double interaction_ms = 0.0;
  if (global_.has_interaction_params()) {
    ApplyInteractionUpdates(raw, surviving_);
    interaction_ms = MsSince(t_interaction, SteadyClock::now());
  }
  ++model_version_;

  if (stats != nullptr) {
    stats->route_ms = MsSince(t_route, t_apply);
    stats->apply_ms = MsSince(t_apply, t_interaction);
    stats->interaction_ms = interaction_ms;
    stats->router_shards = router_.num_shards();
    stats->router_groups = router_.total_groups();
    stats->router_entries = router_.total_entries();
    stats->dropped_stale = dropped;
    stats->max_staleness = max_staleness;
    stats->mean_staleness =
        applied > 0 ? static_cast<double>(staleness_sum) /
                          static_cast<double>(applied)
                    : 0.0;
  }
}

void FederatedServer::ApplyInteractionUpdates(
    const std::vector<ClientUpdate>& raw, const std::vector<int>& surviving) {
  // DL-FRS: the interaction parameters Ψ aggregate once per round over
  // the selected clients. Coordinate-wise rules are defined on the
  // concatenated parameter space, and the per-layer tensors are not
  // contiguous anywhere, so flattening must *construct* each client's
  // vector — into per-slot scratch rows that persist across rounds, the
  // one aggregation input that cannot be borrowed.
  if (interaction_flat_slots_.size() < surviving.size()) {
    interaction_flat_slots_.resize(surviving.size());
  }
  interaction_span_.clear();
  size_t slot = 0;
  for (int idx : surviving) {
    const ClientUpdate& upd = raw[static_cast<size_t>(idx)];
    if (upd.interaction_grads.active) {
      Vec& flat = interaction_flat_slots_[slot++];
      upd.interaction_grads.FlattenInto(&flat);
      // The flat row is already a private copy, so a staleness weight
      // scales it in place; w == 1 skips the pass byte-identically.
      if (weights_active_) {
        const double w = weight_by_upload_[static_cast<size_t>(idx)];
        if (w != 1.0) {
          for (double& x : flat) x *= w;
        }
      }
      interaction_span_.push_back(&flat);
    }
  }
  if (interaction_span_.empty()) return;
  interaction_agg_.resize(interaction_span_[0]->size());
  aggregator_->Aggregate(interaction_span_.data(), interaction_span_.size(),
                         interaction_agg_.data());
  interaction_step_.ResetLike(global_);
  interaction_step_.Unflatten(interaction_agg_);
  for (size_t l = 0; l < global_.mlp_weights.size(); ++l) {
    global_.mlp_weights[l].Axpy(-config_.learning_rate,
                                interaction_step_.weights[l]);
    Axpy(-config_.learning_rate, interaction_step_.biases[l],
         global_.mlp_biases[l]);
  }
  Axpy(-config_.learning_rate, interaction_step_.projection,
       global_.projection);
}

}  // namespace pieck
