#include "fed/server.h"

#include <map>

#include "common/logging.h"

namespace pieck {

FederatedServer::FederatedServer(const RecModel& model, GlobalModel initial,
                                 ServerConfig config,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::unique_ptr<UpdateFilter> filter)
    : model_(model),
      global_(std::move(initial)),
      config_(config),
      aggregator_(std::move(aggregator)),
      filter_(std::move(filter)) {
  PIECK_CHECK(aggregator_ != nullptr);
  PIECK_CHECK(config_.users_per_round > 0);
}

RoundStats FederatedServer::RunRound(
    const std::vector<ClientInterface*>& clients, int round, Rng& rng) {
  RoundStats stats;
  stats.round = round;

  const int n = static_cast<int>(clients.size());
  PIECK_CHECK(n > 0);
  std::vector<int> selected = rng.SampleWithoutReplacement(
      n, std::min(config_.users_per_round, n));
  stats.num_selected = static_cast<int>(selected.size());

  std::vector<ClientUpdate> updates;
  updates.reserve(selected.size());
  for (int idx : selected) {
    ClientInterface* client = clients[static_cast<size_t>(idx)];
    if (client->is_malicious()) stats.num_malicious_selected++;
    updates.push_back(client->ParticipateRound(global_, round));
  }

  ApplyUpdates(updates);
  return stats;
}

void FederatedServer::ApplyUpdates(const std::vector<ClientUpdate>& raw) {
  // Client-level defense stage (Krum family): keep only the selected
  // uploads.
  std::vector<ClientUpdate> filtered;
  const std::vector<ClientUpdate>* updates_ptr = &raw;
  if (filter_ != nullptr && !raw.empty()) {
    for (int idx : filter_->Select(raw)) {
      filtered.push_back(raw[static_cast<size_t>(idx)]);
    }
    updates_ptr = &filtered;
  }
  const std::vector<ClientUpdate>& updates = *updates_ptr;

  // Group per-item gradients: item -> gradients from the clients that
  // uploaded one for that item. This sparsity is the crux of the paper's
  // defense analysis (Eq. 11): a cold target item receives mostly
  // poisonous gradients, whatever robust rule runs below.
  std::map<int, std::vector<Vec>> per_item;
  for (const ClientUpdate& upd : updates) {
    for (const auto& [item, grad] : upd.item_grads) {
      per_item[item].push_back(grad);
    }
  }
  for (auto& [item, grads] : per_item) {
    Vec agg = aggregator_->Aggregate(grads);
    global_.item_embeddings.AxpyRow(static_cast<size_t>(item),
                                    -config_.learning_rate, agg);
  }

  if (global_.has_interaction_params()) {
    std::vector<Vec> flat_grads;
    for (const ClientUpdate& upd : updates) {
      if (upd.interaction_grads.active) {
        flat_grads.push_back(upd.interaction_grads.Flatten());
      }
    }
    if (!flat_grads.empty()) {
      Vec agg = aggregator_->Aggregate(flat_grads);
      InteractionGrads step = InteractionGrads::ZerosLike(global_);
      step.Unflatten(agg);
      for (size_t l = 0; l < global_.mlp_weights.size(); ++l) {
        global_.mlp_weights[l].Axpy(-config_.learning_rate, step.weights[l]);
        Axpy(-config_.learning_rate, step.biases[l], global_.mlp_biases[l]);
      }
      Axpy(-config_.learning_rate, step.projection, global_.projection);
    }
  }
  (void)model_;
}

}  // namespace pieck
