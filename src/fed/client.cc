#include "fed/client.h"

#include "common/logging.h"

namespace pieck {

BenignClient::BenignClient(int user_id, const RecModel& model,
                           const Dataset& train, NegativeSampler sampler,
                           LossKind loss, double local_lr, Rng rng,
                           std::unique_ptr<ClientDefense> defense)
    : user_id_(user_id),
      model_(model),
      train_(train),
      sampler_(sampler),
      loss_(loss),
      local_lr_(local_lr),
      rng_(rng),
      defense_(std::move(defense)) {
  user_embedding_ = model_.InitUserEmbedding(rng_);
  user_initialized_ = true;
}

ClientUpdate BenignClient::ParticipateRound(const GlobalModel& g,
                                            int /*round*/) {
  if (defense_ != nullptr) defense_->ObserveRound(g);

  std::vector<LabeledItem> batch = sampler_.SampleBatch(train_, user_id_, rng_);

  ClientUpdate update;
  update.interaction_grads = InteractionGrads::ZerosLike(g);
  Vec grad_u = Zeros(user_embedding_.size());

  switch (loss_) {
    case LossKind::kBce:
      last_loss_ = BceBatchForwardBackward(
          model_, g, user_embedding_, batch, &grad_u, &update,
          update.interaction_grads.active ? &update.interaction_grads
                                          : nullptr);
      break;
    case LossKind::kBpr:
      last_loss_ = BprBatchForwardBackward(
          model_, g, user_embedding_, batch, &grad_u, &update,
          update.interaction_grads.active ? &update.interaction_grads
                                          : nullptr);
      break;
  }

  if (defense_ != nullptr) {
    defense_->ApplyRegularizers(g, user_embedding_, batch, &grad_u, &update);
  }

  // Local personalized-model step: u_i = u_i − η_local ∇u_i (§III-A step 3).
  Axpy(-local_lr_, grad_u, user_embedding_);

  return update;
}

}  // namespace pieck
