/// \file
/// Server-side aggregation interfaces.
///
/// Contracts: `Aggregate` receives a non-empty span of borrowed pointers
/// to equal-length gradient vectors and must not mutate them; the
/// pointees are owned by the caller (the round's `ClientUpdate`s) and
/// outlive the call. The virtual entry point is the raw pointer span
/// `(const Vec* const*, size_t)` so the server's sharded router can
/// hand each item's gradient group straight out of its CSR buckets; the
/// vector-based overloads are non-virtual conveniences that forward to
/// it. Aggregators are const and logically stateless; one instance is
/// shared across the server's worker threads, so implementations must
/// be safe for concurrent `Aggregate` calls — per-call scratch lives in
/// thread-local buffers, never in the object. Linear rules additionally
/// expose `LinearWeight` so the server can skip materializing the
/// aggregate and axpy each client gradient straight into the embedding
/// row.
#ifndef PIECK_FED_AGGREGATOR_H_
#define PIECK_FED_AGGREGATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/vector_ops.h"

namespace pieck {

/// Server-side gradient aggregation rule Agg(·) of §III-A step 4.
///
/// In FRS aggregation is per parameter group: for each item embedding the
/// server aggregates only the gradients of clients that uploaded one for
/// that item; interaction-function parameters aggregate over all selected
/// clients. Defense methods (§VI-C baselines) are alternative Aggregator
/// implementations.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  virtual std::string name() const = 0;

  /// Aggregates `num_grads` same-length gradient vectors into `out`
  /// (overwritten; `grads[0]->size()` doubles, must not alias any
  /// gradient). `num_grads` is never 0 and `grads` holds borrowed
  /// pointers — the zero-copy hot path: the server's router hands each
  /// item's gradient group as a contiguous pointer span straight from
  /// its shard buckets, and implementations that need scratch use
  /// thread-local buffers, so a round allocates nothing here.
  virtual void Aggregate(const Vec* const* grads, size_t num_grads,
                         double* out) const = 0;

  /// Convenience forwarding overload over an owned pointer vector.
  void Aggregate(const std::vector<const Vec*>& grads, double* out) const {
    Aggregate(grads.data(), grads.size(), out);
  }

  /// Convenience wrapper returning a fresh Vec (tests, benches —
  /// anywhere off the per-item hot loop).
  Vec Aggregate(const std::vector<const Vec*>& grads) const;

  /// Convenience wrapper over owned vectors; builds the pointer span and
  /// forwards. Bit-identical to the span overloads by construction.
  Vec Aggregate(const std::vector<Vec>& grads) const;

  /// For rules of the form Agg(g_1..g_k) = w(k) * sum_i g_i, returns
  /// w(k); nullopt otherwise. Lets the server apply each gradient with
  /// one kernel axpy per client instead of building the aggregate.
  virtual std::optional<double> LinearWeight(size_t /*num_grads*/) const {
    return std::nullopt;
  }
};

/// The no-defense default: a plain coordinate-wise sum (the paper's
/// "simple sum operation").
class SumAggregator : public Aggregator {
 public:
  using Aggregator::Aggregate;
  std::string name() const override { return "NoDefense"; }
  void Aggregate(const Vec* const* grads, size_t num_grads,
                 double* out) const override;
  std::optional<double> LinearWeight(size_t /*num_grads*/) const override {
    return 1.0;
  }
};

/// Coordinate-wise mean; provided for completeness / ablations.
class MeanAggregator : public Aggregator {
 public:
  using Aggregator::Aggregate;
  std::string name() const override { return "Mean"; }
  void Aggregate(const Vec* const* grads, size_t num_grads,
                 double* out) const override;
  std::optional<double> LinearWeight(size_t num_grads) const override {
    return 1.0 / static_cast<double>(num_grads);
  }
};

}  // namespace pieck

#include "model/global_model.h"

namespace pieck {

/// Client-level defense stage: inspects the whole set of uploads for a
/// round and returns the subset that will be aggregated. This is where
/// Krum-family defenses live — Blanchard et al. define them on entire
/// client updates, not on per-parameter groups.
class UpdateFilter {
 public:
  virtual ~UpdateFilter() = default;
  virtual std::string name() const = 0;
  /// Returns the surviving updates (indices into `updates`).
  virtual std::vector<int> Select(
      const std::vector<ClientUpdate>& updates) const = 0;
};

/// Squared L2 distance between two sparse client updates: the union of
/// their item gradients (absent = zero) plus interaction gradients.
double ClientUpdateSquaredDistance(const ClientUpdate& a,
                                   const ClientUpdate& b);

}  // namespace pieck

#endif  // PIECK_FED_AGGREGATOR_H_
