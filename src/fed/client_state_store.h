/// \file
/// Struct-of-arrays state for the benign client population.
///
/// The paper's protocol (§III-A) runs one client per user; materializing
/// that as one heap object per user caps the simulation far below
/// millions of users. `ClientStateStore` virtualizes the population
/// instead: all benign-client state lives in contiguous arrays — one
/// tiered rows x dim table of private user embeddings (RAM or
/// mmap-backed, see `TieredMatrix`), a CSR view of the training
/// interactions (likewise tiered), an 8-byte RNG key per user that is
/// usually *derived on the fly* rather than stored — and expensive
/// per-user state (the mt19937 engine, client-defense observers) is
/// materialized lazily, only for users that actually participate.
/// Benign client behavior itself is a stateless executor
/// (`BenignClientLogic`) writing into per-worker `RoundScratch` arenas,
/// so steady-state rounds allocate nothing on the client side.
///
/// Determinism contract: user `u`'s stream is `Rng(seed(u))`, whose
/// first draws initialize the private embedding and whose continuation
/// drives every batch the user ever samples — exactly the stream the
/// former per-user `BenignClient` objects owned. Embedding rows
/// initialize lazily from the same first draws, in whatever order users
/// are first touched (training or evaluation, any thread), and are
/// bit-identical either way. Because a row's init is a pure replay of
/// `Rng(seed(u))`, the mmap tier may evict a clean row and rebuild it on
/// refault with identical bits — storage choice never shows in results.
/// `PrepareRound` must run single-threaded (it grows the lazy
/// engine/defense pools and faults + pins the cohort's rows); everything
/// it prepares may then be used from the round fan-out without locks,
/// because distinct users own disjoint rows, engines, and defense slots.
#ifndef PIECK_FED_CLIENT_STATE_STORE_H_
#define PIECK_FED_CLIENT_STATE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/interaction_csr.h"
#include "data/negative_sampler.h"
#include "fed/client.h"
#include "model/losses.h"
#include "model/rec_model.h"
#include "storage/dirty_rows.h"
#include "storage/storage.h"
#include "storage/tiered_matrix.h"

namespace pieck {

/// Borrowed, read-only view of a benign population for evaluation: row
/// `i` of `*embeddings` is the private embedding of user `user_id(i)`.
/// The default (no explicit ids) is the identity mapping used by the
/// store; tests build views over hand-crafted matrices with arbitrary
/// ids. The referenced matrix must outlive the view.
class BenignEvalView {
 public:
  BenignEvalView() = default;
  explicit BenignEvalView(const Matrix* embeddings,
                          std::vector<int> user_ids = {})
      : embeddings_(embeddings), user_ids_(std::move(user_ids)) {}

  size_t size() const {
    return user_ids_.empty() ? (embeddings_ ? embeddings_->rows() : 0)
                             : user_ids_.size();
  }
  size_t dim() const { return embeddings_ ? embeddings_->cols() : 0; }
  int user_id(size_t i) const {
    return user_ids_.empty() ? static_cast<int>(i) : user_ids_[i];
  }
  const double* embedding(size_t i) const { return embeddings_->RowPtr(i); }
  /// Copying accessor for callers that need a Vec (diagnostics).
  Vec embedding_vec(size_t i) const { return embeddings_->Row(i); }

 private:
  const Matrix* embeddings_ = nullptr;
  std::vector<int> user_ids_;
};

/// Per-worker arena for the client side of a round: the working copy of
/// the user embedding, the gradient accumulator, the sampled batch, and
/// the negative-sampler scratch. One instance per worker slot, reused
/// across all clients that slot executes and across rounds.
struct RoundScratch {
  Vec user_embedding;
  Vec grad_u;
  std::vector<LabeledItem> batch;
  NegativeSampler::Scratch sampler;

  int64_t CapacityBytes() const {
    return static_cast<int64_t>(
               (user_embedding.capacity() + grad_u.capacity()) *
                   sizeof(double) +
               batch.capacity() * sizeof(LabeledItem)) +
           sampler.CapacityBytes();
  }
};

/// The struct-of-arrays benign population. See the file comment for the
/// memory model and determinism contract.
class ClientStateStore {
 public:
  /// `model`, `train`, and `*sampler` must outlive the store. `local_lr`
  /// is the default personalized-model rate for every user (overridable
  /// per user via set_user_learning_rates). `storage` selects the
  /// backing tier of the embedding table and the CSR (docs/STORAGE.md);
  /// the default is RAM, bit for bit the pre-storage behavior.
  ClientStateStore(const RecModel& model, const Dataset& train,
                   std::shared_ptr<const NegativeSampler> sampler,
                   LossKind loss, double local_lr,
                   const StorageConfig& storage = StorageConfig());

  /// Beyond-RAM construction path: the adjacency arrives as a
  /// pre-built CSR (typically streamed to mmap'd files by
  /// `InteractionCsrBuilder`) instead of a heap `Dataset`.
  ClientStateStore(const RecModel& model, InteractionCsr interactions,
                   std::shared_ptr<const NegativeSampler> sampler,
                   LossKind loss, double local_lr,
                   const StorageConfig& storage = StorageConfig());

  ClientStateStore(const ClientStateStore&) = delete;
  ClientStateStore& operator=(const ClientStateStore&) = delete;

  /// Installs the per-user RNG keys (`seeds.size()` must equal
  /// `num_users()`); seed `u` defines user `u`'s entire private stream.
  /// Must be called before any user state is touched in this process.
  void set_user_seeds(std::vector<uint64_t> seeds);

  /// O(1) alternative for huge populations: user `u`'s key becomes
  /// SplitMix64(base + (u+1) * golden-gamma) — derived on access, no
  /// 8 B/user array. Same touch-nothing-first rule as set_user_seeds.
  void set_user_seed_base(uint64_t base);

  /// Per-user local learning rates (Table X's dynamic-rate scenario);
  /// size must equal `num_users()`.
  void set_user_learning_rates(std::vector<double> lrs);

  /// Installs the factory for lazily-created per-user client defenses
  /// (null disables, the default). A user's defense is materialized on
  /// its first participation — identical to eager construction, because
  /// defense state only ever mutates during participation.
  void set_defense_factory(
      std::function<std::unique_ptr<ClientDefense>()> factory);

  int num_users() const { return num_users_; }
  int dim() const { return static_cast<int>(embeddings_.cols()); }
  const RecModel& model() const { return model_; }
  const InteractionCsr& interactions() const { return interactions_; }
  const NegativeSampler& sampler() const { return *sampler_; }
  LossKind loss() const { return loss_; }
  const StorageConfig& storage() const { return storage_; }
  double local_lr(int user) const {
    return user_lrs_.empty() ? local_lr_
                             : user_lrs_[static_cast<size_t>(user)];
  }

  /// The private embedding of `user`, lazily initialized on first
  /// access. Not thread-safe against other first-touches of the same
  /// user (distinct users are fine); under mmap storage, concurrent
  /// access is only safe for users pinned by the current PrepareRound.
  const double* UserEmbedding(int user);

  /// Mutable row for the local personalized-model step; same init and
  /// thread-safety rules as UserEmbedding. Marks the row dirty under
  /// mmap storage.
  double* MutableUserEmbedding(int user);

  /// Forces initialization of every user's embedding, fanning the
  /// first-touch draws out over `pool` (nullptr = serial). Bit-identical
  /// to any other initialization order.
  void EnsureAllEmbeddings(ThreadPool* pool = nullptr);

  /// Evaluation view over the whole population (initializes lazily
  /// first). RAM storage borrows the store's matrix; mmap storage
  /// snapshots the logical table (cache ∪ file ∪ init replay) into an
  /// internal matrix without disturbing tier state.
  BenignEvalView EvalView(ThreadPool* pool = nullptr);

  /// Materializes the RNG engines and defense slots of `users` ahead of
  /// a round's parallel fan-out; under mmap storage also write-backs the
  /// previous cohort (if still pinned) and faults + pins this one.
  /// Single-threaded by contract.
  void PrepareRound(const std::vector<int>& users);

  /// Writes back the current cohort's dirty rows to the backing file
  /// and unpins them; appends written rows to `out` when non-null. The
  /// server folds this into the round's Apply stage. No-op under RAM.
  void FlushDirtyRows(DirtyRowSet* out = nullptr);

  /// Read-ahead for the upcoming cohort: coalesced madvise(WILLNEED)
  /// over the embedding rows and CSR spans under the mmap-touch engine,
  /// or a staged batch read of the rows under the batched I/O engines.
  /// Advisory; at most one concurrent caller (the select thread calls
  /// this for round i+1 while round i trains); no-op under RAM.
  void PrefetchUsers(const std::vector<int>& users);

  /// Durable snapshot of the mmap tier (rows file + persisted-row
  /// bitmap); a later store can `StorageConfig::attach` to the same
  /// directory and resume bit-identically, given identical seeds.
  Status Checkpoint();

  /// The live RNG stream of a prepared user.
  Rng& UserRng(int user);

  /// The defense instance of a prepared user; nullptr when no defense
  /// factory is installed.
  ClientDefense* UserDefense(int user);

  /// Resident bytes of everything the store owns: embedding tier
  /// (cache, not backing file), CSR view, seed/flag/slot structures,
  /// materialized engines and defenses. This is the number the
  /// bytes-per-user CI gate bounds.
  int64_t FootprintBytes() const;

  /// Bytes of mmap backing-file address space (0 under RAM storage).
  /// Files are sparse: disk usage is at most this.
  int64_t BackingBytes() const;

  /// Hot-path counters of the embedding tier (zeros under RAM).
  StorageCounters storage_counters() const { return embeddings_.counters(); }

  /// Per-shard hot-row-cache counters (empty under RAM).
  std::vector<HotRowCache::ShardCounters> storage_shard_counters() const {
    return embeddings_.shard_counters();
  }

  /// The resolved I/O engine of the embedding tier (mmap only).
  IoEngineKind storage_io_engine() const { return embeddings_.io_engine(); }

  /// How many users have a live engine / defense (telemetry, tests).
  int64_t materialized_rngs() const {
    return static_cast<int64_t>(engines_.size());
  }
  int64_t materialized_defenses() const {
    return static_cast<int64_t>(defenses_.size());
  }

 private:
  enum class SeedMode { kFormula, kExplicit, kDerivedBase };

  void InitEmbeddingTier();
  uint64_t SeedOf(int user) const;

  const RecModel& model_;
  std::shared_ptr<const NegativeSampler> sampler_;
  LossKind loss_;
  double local_lr_;
  int num_users_;
  StorageConfig storage_;

  std::shared_ptr<StoreDir> store_dir_;  // mmap only
  InteractionCsr interactions_;
  TieredMatrix embeddings_;  // num_users x dim, rows lazy-init
  Matrix eval_matrix_;       // mmap EvalView snapshot target

  SeedMode seed_mode_ = SeedMode::kFormula;
  uint64_t seed_base_ = 0;
  std::vector<uint64_t> seeds_;  // kExplicit only: 8 B/user RNG key
  std::vector<double> user_lrs_;  // empty unless per-user rates

  // Only participants get entries — O(touched users), not O(users).
  std::unordered_map<int32_t, int32_t> rng_slot_;
  std::deque<Rng> engines_;  // stable refs; grows in PrepareRound
  std::function<std::unique_ptr<ClientDefense>()> defense_factory_;
  std::unordered_map<int32_t, int32_t> defense_slot_;
  std::vector<std::unique_ptr<ClientDefense>> defenses_;

  // Estimated resident CSR file bytes since the last release; bounded
  // by the storage resident budget (perf-only, never affects results).
  int64_t csr_touched_bytes_ = 0;

  // Select-thread scratch: the valid, sorted cohort PrefetchUsers hands
  // to the tiers.
  std::vector<int> prefetch_scratch_;
};

/// The benign client behavior of §III-A as a stateless executor over
/// the store: mines/observes for the client defense, samples the
/// private batch, runs the loss forward/backward, applies the local
/// personalized step, and rebuilds `*update` in place (buffers reused
/// across rounds). Returns the training loss. Thread-safe for distinct
/// prepared users with distinct scratch arenas.
struct BenignClientLogic {
  static double ParticipateRound(ClientStateStore& store, int user,
                                 const GlobalModel& g, int round,
                                 RoundScratch& scratch, ClientUpdate* update);
};

}  // namespace pieck

#endif  // PIECK_FED_CLIENT_STATE_STORE_H_
