/// \file
/// The federated-training server and round engine.
///
/// Contracts the code cannot express: `RunRound` may be called from one
/// thread only (the server owns the global model; the internal
/// ThreadPool fans work out but all mutation happens in row-disjoint
/// slots). Results are bit-identical for every `num_threads` value,
/// every `router_shards` value, and every SIMD kernel backend — clients
/// own independent RNG streams, uploads are stored in selection order,
/// the router preserves the map path's exact per-item group order, and
/// per-shard aggregation writes touch disjoint embedding rows. The
/// store / client pointers passed to `RunRound` must outlive the call;
/// the `RecModel` and the initial `GlobalModel` must be shape-consistent
/// (checked at construction).
///
/// A round runs as an explicit, individually timed pipeline:
///   Select  — sample participants through the `WorkloadDriver` (churn
///             advance, diurnal cohort scaling, uniform/Zipf/exponential
///             participation; the default traffic shape reproduces the
///             legacy uniform draw bit-for-bit), then materialize the
///             lazy benign state of the cohort;
///   Train   — client local training, fanned over the worker pool into
///             selection-slot upload arenas;
///   Route   — client-level filter + staleness drop, then the
///             `UpdateRouter` groups the survivors' sparse item
///             gradients into per-shard CSR buckets (workers scan
///             upload slices; shards merge in selection order);
///   Apply   — one worker per shard aggregates and applies each item's
///             staleness-weighted gradient group to its embedding row;
///   Interaction — DL-FRS only: the interaction-parameter aggregate.
/// `RoundStats` reports each stage's wall time plus router and
/// staleness telemetry.
///
/// `RunRound` executes the stages as one barrier per round. `RunRounds`
/// generalizes to bounded staleness (`AsyncConfig`): with pipeline
/// depth D >= 2, round i's Select/Train overlaps rounds i-D+1..i-1's
/// Route/Apply, training against an immutable `ModelVersionRing`
/// snapshot while the apply thread mutates the live model and then
/// publishes the next version. Every upload is stamped with the model
/// version it trained against; the apply stage weights it by
/// `staleness_decay^staleness` (dropping anything beyond
/// `max_staleness`) under *any* aggregator/defense combination. Depth 1
/// is the synchronous engine bit for bit.
///
/// The round path is arena-based end to end: upload slots, worker
/// scratch, router buckets, and the interaction flatten/aggregate
/// buffers all persist across rounds, so a steady-state round performs
/// no client-side and no routing heap allocation.
#ifndef PIECK_FED_SERVER_H_
#define PIECK_FED_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fed/aggregator.h"
#include "fed/client.h"
#include "fed/client_state_store.h"
#include "fed/update_router.h"
#include "model/global_model.h"
#include "model/rec_model.h"
#include "model/version_ring.h"
#include "workload/workload.h"

namespace pieck {

/// Bounded-staleness execution of the round engine (docs/ASYNC.md).
///
/// `RunRounds` keeps `pipeline_depth` rounds in flight: round i trains
/// against the immutable snapshot of model version
/// `base + max(0, i - depth + 1)` while earlier rounds' Route/Apply
/// stages mutate the live model. The schedule is *static* — which
/// version a round trains against depends only on its index and the
/// depth, never on thread timing — so any depth is bit-deterministic
/// for every thread count, and depth 1 is the synchronous barrier
/// engine, bit-identical to a `RunRound` loop.
struct AsyncConfig {
  /// Rounds in flight in `RunRounds`. 1 (the default) is the
  /// synchronous engine; D >= 2 overlaps Select/Train of round i with
  /// Route/Apply of rounds i-D+1..i-1, giving every upload staleness
  /// min(i, D-1) at apply time.
  int pipeline_depth = 1;
  /// Staleness weight w(s) = decay^s applied to an upload trained s
  /// versions behind the model it is applied to. w(0) == 1 exactly for
  /// every decay, so synchronous uploads are untouched bit for bit;
  /// 1.0 (the default) disables weighting entirely.
  double staleness_decay = 1.0;
  /// Uploads with staleness > max_staleness are discarded before
  /// routing (counted in RoundStats::dropped_stale). -1 (the default)
  /// never drops.
  int max_staleness = -1;

  bool enabled() const {
    return pipeline_depth > 1 || staleness_decay != 1.0 ||
           max_staleness >= 0;
  }
};

/// Server-side configuration of the federated training protocol.
struct ServerConfig {
  /// Unified learning rate η applied to aggregated gradients (and told to
  /// clients as the default local rate).
  double learning_rate = 1.0;
  /// |U_r|: number of clients sampled per communication round.
  int users_per_round = 256;
  /// Worker threads for the round loop: client local training, update
  /// routing, and per-shard gradient aggregation run on a ThreadPool of
  /// this size. 1 (the default) keeps the original serial path; 0 means
  /// "one per hardware thread". Results are bit-identical for every
  /// value — each client owns an independent RNG stream, the router
  /// preserves group order, and aggregation writes touch disjoint
  /// embedding rows.
  int num_threads = 1;
  /// Item shards for the routing/apply stages. 0 (the default) derives
  /// the count from the worker pool (UpdateRouter::DefaultShardCount);
  /// explicit values are clamped to the item count. Any value produces
  /// bit-identical results — sharding only changes work partitioning.
  int router_shards = 0;
  /// Traffic shape of the participant-selection stage: participation
  /// skew, diurnal arrival waves, and user churn (see
  /// workload/workload.h). The default is the trivial workload, whose
  /// selection stream is bit-identical to the pre-workload engine.
  WorkloadConfig workload;
  /// Bounded-staleness pipelining of `RunRounds` plus the
  /// staleness-weighted apply rule. The default (depth 1, decay 1,
  /// never drop) is the synchronous engine, bit for bit.
  AsyncConfig async;
};

/// Statistics from one communication round (diagnostics / cost analysis).
struct RoundStats {
  int round = 0;
  int num_selected = 0;
  int num_malicious_selected = 0;
  /// Benign users active under the workload's churn roster this round
  /// (the whole population for the trivial workload).
  int active_benign = 0;
  /// Mean training loss over the benign participants (store path only;
  /// 0 when no benign client was selected).
  double mean_benign_loss = 0.0;

  // --- per-stage wall time, milliseconds ---
  /// Participant sampling + lazy benign-state preparation.
  double select_ms = 0.0;
  /// Client local training fan-out (including the loss reduction).
  double train_ms = 0.0;
  /// Client-level filter + sharded item routing.
  double route_ms = 0.0;
  /// Per-shard aggregate-and-apply of the item-embedding gradients.
  double apply_ms = 0.0;
  /// DL-FRS interaction-parameter aggregation (0 for MF).
  double interaction_ms = 0.0;

  // --- router telemetry ---
  /// Item shards the routing/apply stages ran with.
  int router_shards = 0;
  /// Distinct items that received gradients this round.
  int64_t router_groups = 0;
  /// (item, gradient) entries routed this round.
  int64_t router_entries = 0;

  // --- bounded-staleness telemetry ---
  /// Rounds in flight when this round ran (1 = synchronous engine).
  int pipeline_depth = 1;
  /// Time the train stage spent blocked on its model snapshot /
  /// pipeline arena slot (0 in the synchronous engine).
  double stall_ms = 0.0;
  /// Mean staleness (versions behind the applying model) over the
  /// uploads actually applied this round.
  double mean_staleness = 0.0;
  /// Maximum staleness over the applied uploads.
  int max_staleness = 0;
  /// Uploads discarded because staleness > AsyncConfig::max_staleness.
  int64_t dropped_stale = 0;
  /// Applied uploads per staleness value: staleness_counts[s] uploads
  /// arrived s versions behind. Empty when nothing was applied.
  std::vector<int64_t> staleness_counts;

  // --- client-side cost telemetry (store path only) ---
  /// Uploads materialized this round (selection slots written).
  int uploads_built = 0;
  /// Resident bytes of the reusable round arenas: the selection-slot
  /// upload buffers, every worker's RoundScratch, the router's shard
  /// buckets, and the interaction-aggregation buffers.
  int64_t scratch_bytes_in_use = 0;
  /// Resident bytes of the ClientStateStore backing the benign
  /// population (cache + heap structures; excludes backing files).
  int64_t store_footprint_bytes = 0;
  /// Bytes of mmap backing-file address space behind the store (0 under
  /// RAM storage). Sparse files: disk usage is at most this.
  int64_t store_backing_bytes = 0;

  // --- storage-tier telemetry (cumulative counters, mmap only) ---
  /// Row accesses served from the hot-row cache.
  int64_t store_cache_hits = 0;
  /// Row faults (cache fill from file or init replay).
  int64_t store_cache_misses = 0;
  /// Frames reclaimed by the cache's CLOCK hand.
  int64_t store_cache_evictions = 0;
  /// Dirty rows written back to the backing file.
  int64_t store_cache_writebacks = 0;
};

/// The federation server of §III-A: samples a batch of clients each
/// round, hands them the current global model, aggregates their uploads
/// with the configured Agg(·), and applies the update with rate η.
class FederatedServer {
 public:
  /// `filter` (optional) is a client-level defense applied to the whole
  /// set of uploads before per-parameter aggregation (Krum family).
  /// `model` is only consulted for shape validation against `initial`.
  FederatedServer(const RecModel& model, GlobalModel initial,
                  ServerConfig config, std::unique_ptr<Aggregator> aggregator,
                  std::unique_ptr<UpdateFilter> filter = nullptr);

  /// Runs one communication round over the virtualized benign
  /// population in `store` plus the `malicious` client objects.
  /// Selection indices [0, store.num_users()) address store users;
  /// indices past that address `malicious` in order — the same combined
  /// index space (benign first) the object path used, so sampling is
  /// reproduction-identical.
  RoundStats RunRound(ClientStateStore& store,
                      const std::vector<ClientInterface*>& malicious,
                      int round, Rng& rng);

  /// Object-path round over explicit client instances (tests, attack
  /// harnesses, and the golden-equivalence suite).
  RoundStats RunRound(const std::vector<ClientInterface*>& clients, int round,
                      Rng& rng);

  /// Runs `num_rounds` consecutive store-path rounds starting at
  /// `first_round`, keeping `config().async.pipeline_depth` rounds in
  /// flight, and appends one RoundStats per round to `*stats` (may be
  /// null). Depth 1 executes a plain `RunRound` loop — bit-identical
  /// to calling it yourself. Depth D >= 2 runs the overlapped engine:
  /// a selection thread samples cohorts ahead (the selection stream is
  /// model-independent, so it equals the synchronous stream draw for
  /// draw), this thread prepares + trains round i against the snapshot
  /// of version `base + max(0, i-D+1)`, and an apply thread routes,
  /// staleness-weights, and applies finished rounds in order, then
  /// publishes the next snapshot. The static schedule makes any depth
  /// bit-deterministic for every `num_threads`/shard/backend choice;
  /// `rng` advances exactly as under the synchronous engine.
  void RunRounds(ClientStateStore& store,
                 const std::vector<ClientInterface*>& malicious,
                 int first_round, int num_rounds, Rng& rng,
                 std::vector<RoundStats>* stats);

  /// Applies a pre-collected set of updates (used by tests and by the
  /// defense analysis bench to study aggregation in isolation). Runs
  /// the Route → Apply → Interaction stages; pass `stats` to collect
  /// their timings and router telemetry.
  void ApplyUpdates(const std::vector<ClientUpdate>& updates,
                    RoundStats* stats = nullptr);

  /// Samples this round's cohort through the workload driver: advances
  /// churn to the round boundary, applies the diurnal wave to the
  /// `users_per_round` target, and draws via the configured
  /// ParticipationModel. The default (trivial) workload performs
  /// exactly the legacy `rng.SampleWithoutReplacement(n, k)` draw —
  /// bit-for-bit. The returned reference is an arena reused across
  /// rounds; RunRound calls this internally, tests call it directly.
  /// Must not be called while RunRound/RunRounds is in flight (the
  /// driver and its arenas are single-owner) — enforced by a
  /// PIECK_DCHECK on the engine's in-flight flag.
  const std::vector<int>& SelectParticipants(int num_benign,
                                             int num_malicious, int round,
                                             Rng& rng);

  /// Version of the live global model: the number of applies performed
  /// since construction. Uploads stamped with an older version are
  /// stale by the difference; the sentinel -1 stamp means "current".
  int64_t model_version() const { return model_version_; }

  const GlobalModel& global() const { return global_; }
  GlobalModel& mutable_global() { return global_; }
  const ServerConfig& config() const { return config_; }
  const Aggregator& aggregator() const { return *aggregator_; }
  /// The routing structure (telemetry / zero-allocation tests).
  const UpdateRouter& router() const { return router_; }
  /// The traffic-shape driver behind SelectParticipants.
  const WorkloadDriver& workload() const { return workload_; }
  /// Effective round-loop parallelism (1 when no pool was created).
  int num_threads() const { return pool_ ? pool_->num_threads() : 1; }
  /// The round loop's worker pool (nullptr when running serially). The
  /// evaluation layer borrows it between rounds to fan ER/HR/PKL out
  /// over users; never use it while RunRound is in flight.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  /// Runs fn(0..n-1) on the pool, or inline when running serially.
  void For(size_t n, const std::function<void(size_t)>& fn);

  /// Capacity of the reusable round arenas (telemetry).
  int64_t ArenaBytes() const;

  /// SelectParticipants without the in-flight DCHECK (the engine's own
  /// selection entry point).
  const std::vector<int>& SelectLocked(int num_benign, int num_malicious,
                                       int round, Rng& rng);

  /// The Route → Apply → Interaction stages over `raw`: filter to
  /// surviving indices, drop/weight by staleness, route the survivors'
  /// item gradients through the sharded router, aggregate-and-apply one
  /// worker per shard, then the DL-FRS interaction step; finally bumps
  /// `model_version_`. Fills the stage timings, router telemetry, and
  /// staleness telemetry of `stats` when non-null. `serial` forces the
  /// whole stage inline on the calling thread (the pipelined engine's
  /// apply thread must not share the train fan-out's pool).
  void RouteAndApply(const std::vector<ClientUpdate>& raw, RoundStats* stats,
                     bool serial = false);

  /// The depth >= 2 overlapped engine behind RunRounds.
  void RunRoundsPipelined(ClientStateStore& store,
                          const std::vector<ClientInterface*>& malicious,
                          int first_round, int num_rounds, Rng& rng,
                          std::vector<RoundStats>* stats);

  /// DL-FRS only: aggregates and applies the interaction-function
  /// gradients of the surviving uploads (one flattened aggregate per
  /// round, off the per-item hot path). Flattens into reusable per-slot
  /// scratch buffers — no per-round allocation at steady state.
  void ApplyInteractionUpdates(const std::vector<ClientUpdate>& raw,
                               const std::vector<int>& surviving);

  GlobalModel global_;
  ServerConfig config_;
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<UpdateFilter> filter_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1

  WorkloadDriver workload_;  // participant-selection traffic shape

  /// Applies performed since construction (the live model's version).
  int64_t model_version_ = 0;
  /// True while RunRound/RunRounds executes; guards the public
  /// SelectParticipants entry (satellite of the async refactor).
  bool round_in_flight_ = false;

  // Round arenas, reused across rounds.
  std::vector<int> selected_;           // this round's cohort
  std::vector<ClientUpdate> updates_;   // one slot per selected client
  std::vector<RoundScratch> scratch_;   // one arena per worker slot
  std::vector<double> loss_slots_;      // per-selection benign loss
  std::vector<int> prepared_users_;     // benign subset of the selection
  std::vector<int> surviving_;          // filter + staleness survivors
  std::vector<double> weight_by_upload_;  // staleness weight per upload
  bool weights_active_ = false;         // any weight != 1 this apply
  UpdateRouter router_;                 // sharded item-gradient routing
  std::vector<Vec> interaction_flat_slots_;  // per-survivor flatten rows
  std::vector<const Vec*> interaction_span_;
  Vec interaction_agg_;                 // aggregated flat gradient
  InteractionGrads interaction_step_;   // unflattened aggregate

  // Pipelined-engine arenas (allocated on first depth >= 2 block).
  ModelVersionRing ring_;               // immutable model snapshots
  std::vector<std::vector<int>> sel_ring_;  // depth+1 selection slots
  std::vector<std::vector<ClientUpdate>> updates_ring_;  // depth slots
  std::vector<std::vector<double>> loss_ring_;           // depth slots
  DirtyRowSet dirty_rows_;   // item rows touched by one apply (-> ring)
  DirtyRowSet store_dirty_;  // user rows written back by the store tier
};

}  // namespace pieck

#endif  // PIECK_FED_SERVER_H_
