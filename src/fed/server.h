/// \file
/// The federated-training server and round engine.
///
/// Contracts the code cannot express: `RunRound` may be called from one
/// thread only (the server owns the global model; the internal
/// ThreadPool fans work out but all mutation happens in row-disjoint
/// slots). Results are bit-identical for every `num_threads` value and
/// every SIMD kernel backend — clients own independent RNG streams,
/// uploads are stored in selection order, and per-item aggregation
/// writes touch disjoint embedding rows. The store / client pointers
/// passed to `RunRound` must outlive the call; the `RecModel` and the
/// initial `GlobalModel` must be shape-consistent.
///
/// The store-backed round path is arena-based: uploads land in a
/// selection-slot array of `ClientUpdate`s whose buffers persist across
/// rounds, and each worker owns one `RoundScratch`; once shapes reach
/// steady state, a round performs no client-side heap allocation.
#ifndef PIECK_FED_SERVER_H_
#define PIECK_FED_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fed/aggregator.h"
#include "fed/client.h"
#include "fed/client_state_store.h"
#include "model/global_model.h"
#include "model/rec_model.h"

namespace pieck {

/// Server-side configuration of the federated training protocol.
struct ServerConfig {
  /// Unified learning rate η applied to aggregated gradients (and told to
  /// clients as the default local rate).
  double learning_rate = 1.0;
  /// |U_r|: number of clients sampled per communication round.
  int users_per_round = 256;
  /// Worker threads for the round loop: client local training and
  /// per-item gradient aggregation run on a ThreadPool of this size.
  /// 1 (the default) keeps the original serial path; 0 means "one per
  /// hardware thread". Results are bit-identical for every value — each
  /// client owns an independent RNG stream and aggregation writes touch
  /// disjoint embedding rows.
  int num_threads = 1;
};

/// Statistics from one communication round (diagnostics / cost analysis).
struct RoundStats {
  int round = 0;
  int num_selected = 0;
  int num_malicious_selected = 0;
  /// Mean training loss over the benign participants (store path only;
  /// 0 when no benign client was selected).
  double mean_benign_loss = 0.0;

  // --- client-side cost telemetry (store path only) ---
  /// Uploads materialized this round (selection slots written).
  int uploads_built = 0;
  /// Resident bytes of the reusable round arenas: the selection-slot
  /// upload buffers plus every worker's RoundScratch.
  int64_t scratch_bytes_in_use = 0;
  /// Resident bytes of the ClientStateStore backing the benign
  /// population.
  int64_t store_footprint_bytes = 0;
};

/// The federation server of §III-A: samples a batch of clients each
/// round, hands them the current global model, aggregates their uploads
/// with the configured Agg(·), and applies the update with rate η.
class FederatedServer {
 public:
  /// `filter` (optional) is a client-level defense applied to the whole
  /// set of uploads before per-parameter aggregation (Krum family).
  FederatedServer(const RecModel& model, GlobalModel initial,
                  ServerConfig config, std::unique_ptr<Aggregator> aggregator,
                  std::unique_ptr<UpdateFilter> filter = nullptr);

  /// Runs one communication round over the virtualized benign
  /// population in `store` plus the `malicious` client objects.
  /// Selection indices [0, store.num_users()) address store users;
  /// indices past that address `malicious` in order — the same combined
  /// index space (benign first) the object path used, so sampling is
  /// reproduction-identical.
  RoundStats RunRound(ClientStateStore& store,
                      const std::vector<ClientInterface*>& malicious,
                      int round, Rng& rng);

  /// Object-path round over explicit client instances (tests, attack
  /// harnesses, and the golden-equivalence suite).
  RoundStats RunRound(const std::vector<ClientInterface*>& clients, int round,
                      Rng& rng);

  /// Applies a pre-collected set of updates (used by tests and by the
  /// defense analysis bench to study aggregation in isolation).
  void ApplyUpdates(const std::vector<ClientUpdate>& updates);

  const GlobalModel& global() const { return global_; }
  GlobalModel& mutable_global() { return global_; }
  const ServerConfig& config() const { return config_; }
  const Aggregator& aggregator() const { return *aggregator_; }
  /// Effective round-loop parallelism (1 when no pool was created).
  int num_threads() const { return pool_ ? pool_->num_threads() : 1; }
  /// The round loop's worker pool (nullptr when running serially). The
  /// evaluation layer borrows it between rounds to fan ER/HR/PKL out
  /// over users; never use it while RunRound is in flight.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  /// Runs fn(0..n-1) on the pool, or inline when running serially.
  void For(size_t n, const std::function<void(size_t)>& fn);

  /// Capacity of the reusable round arenas (telemetry).
  int64_t ArenaBytes() const;

  /// DL-FRS only: aggregates and applies the interaction-function
  /// gradients of the surviving uploads (one flattened aggregate per
  /// round, off the per-item hot path).
  void ApplyInteractionUpdates(const std::vector<ClientUpdate>& raw,
                               const std::vector<int>& surviving);

  const RecModel& model_;
  GlobalModel global_;
  ServerConfig config_;
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<UpdateFilter> filter_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1

  // Round arenas, reused across rounds (store path).
  std::vector<ClientUpdate> updates_;   // one slot per selected client
  std::vector<RoundScratch> scratch_;   // one arena per worker slot
  std::vector<double> loss_slots_;      // per-selection benign loss
  std::vector<int> prepared_users_;     // benign subset of the selection
};

}  // namespace pieck

#endif  // PIECK_FED_SERVER_H_
