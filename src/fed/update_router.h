/// \file
/// Item-sharded routing of sparse client uploads.
///
/// `UpdateRouter` replaces the per-round `std::map<int,
/// std::vector<const Vec*>>` the server used to rebuild in
/// `ApplyUpdates`: it groups the surviving uploads' per-item gradients
/// by item into flat, CSR-style per-shard buckets whose buffers are
/// arenas persisting across rounds — steady-state routing allocates
/// nothing and never touches a node-based container.
///
/// Sharding: the item space [0, num_items) splits into `num_shards`
/// contiguous ranges of equal width (the last may be shorter), so a
/// shard's groups cover disjoint embedding rows and the aggregate/apply
/// stage can run one worker per shard without locks.
///
/// Determinism contract — the router is *order-preserving*: within a
/// shard, groups are iterated in ascending item order, and within a
/// group, gradients appear in surviving-upload order. That is exactly
/// the iteration order of the old `std::map` build (ascending keys;
/// values pushed while scanning survivors in order), so the aggregation
/// downstream consumes gradient groups byte-for-byte identical to the
/// map path for every shard count, worker count, and upload mix
/// (tests/update_router_test.cc proves this bitwise).
///
/// Protocol per round (stages driven by the caller so fan-out stays on
/// the server's pool):
///   1. `BeginRound(num_items, num_shards, num_workers)` — fixes the
///      geometry and resets the arenas (single-threaded).
///   2. `ScanSlice(w, uploads, surviving)` for each worker w in
///      parallel — worker w walks its contiguous slice of the
///      surviving uploads and appends (item, grad) entries to its own
///      per-shard buckets. No sharing: worker w only writes buckets
///      (w, *).
///   3. `BuildShard(s)` for each shard s in parallel — merges the
///      workers' buckets for s in worker order (= surviving order,
///      because slices are contiguous and ascending) and groups them
///      by item with a stable counting sort over the shard's item
///      range. No sharing: shard s only writes its own arena.
///   4. `Shard(s)` hands the apply stage a borrowed CSR view.
///
/// The gradient pointers are borrowed from the round's `ClientUpdate`s,
/// which must outlive the views; the router never copies a gradient
/// (ClientUpdate::CopyCount stays untouched).
#ifndef PIECK_FED_UPDATE_ROUTER_H_
#define PIECK_FED_UPDATE_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/global_model.h"

namespace pieck {

class UpdateRouter {
 public:
  /// Picks the default shard count for a pool of `num_workers` round
  /// workers over `num_items` items: 1 when serial (sharding would only
  /// add bookkeeping), otherwise enough shards to load-balance the
  /// apply stage (4 per worker), clamped to the item count.
  static int DefaultShardCount(int num_workers, int num_items);

  /// Resets the round geometry. `num_shards` is clamped to
  /// [1, max(1, num_items)]; `num_workers` must be >= 1. Arenas are
  /// logically cleared but keep their capacity. Single-threaded.
  void BeginRound(int num_items, int num_shards, size_t num_workers);

  /// Worker `w`'s routing pass over its slice of `surviving` (indices
  /// into `uploads`). Slices are contiguous and cover `surviving`
  /// exactly once. Safe to run all workers concurrently.
  void ScanSlice(size_t worker, const std::vector<ClientUpdate>& uploads,
                 const std::vector<int>& surviving);

  /// Groups shard `s`'s entries by item (stable over upload order).
  /// Safe to run all shards concurrently, after every ScanSlice.
  void BuildShard(int shard);

  /// Borrowed CSR view of one routed shard: group g covers item
  /// `items[g]` with gradients `grads[offsets[g] .. offsets[g+1])`;
  /// `upload_ids[e]` is the upload index (into the round's `uploads`
  /// vector) that contributed gradient `grads[e]` — the apply stage
  /// looks per-upload staleness weights up through it.
  struct ShardView {
    const int* items = nullptr;
    const size_t* offsets = nullptr;  // num_groups + 1 entries
    const Vec* const* grads = nullptr;
    const int* upload_ids = nullptr;  // parallel to grads
    size_t num_groups = 0;
  };
  ShardView Shard(int shard) const;

  int num_shards() const { return num_shards_; }
  size_t num_workers() const { return num_workers_; }

  /// Gradient groups routed this round (telemetry).
  int64_t total_groups() const;
  /// (item, grad) entries routed this round (telemetry).
  int64_t total_entries() const;
  /// Resident capacity of every arena (telemetry / zero-alloc tests).
  int64_t CapacityBytes() const;

 private:
  struct Entry {
    int item;
    const Vec* grad;
    int upload;  // index into the round's uploads vector
  };

  /// One shard's output arena (plus its counting-sort scratch).
  struct ShardArena {
    std::vector<size_t> counts;     // per item in the shard's range
    std::vector<int> items;         // ascending unique items
    std::vector<size_t> offsets;    // group starts, + one end sentinel
    std::vector<const Vec*> grads;  // grouped, surviving order per item
    std::vector<int> uploads;       // upload index, parallel to grads
  };

  int shard_of(int item) const { return item / items_per_shard_; }
  std::vector<Entry>& bucket(size_t worker, int shard) {
    return buckets_[worker * static_cast<size_t>(num_shards_) +
                    static_cast<size_t>(shard)];
  }
  const std::vector<Entry>& bucket(size_t worker, int shard) const {
    return buckets_[worker * static_cast<size_t>(num_shards_) +
                    static_cast<size_t>(shard)];
  }

  int num_items_ = 0;
  int num_shards_ = 1;
  int items_per_shard_ = 1;
  size_t num_workers_ = 1;
  std::vector<std::vector<Entry>> buckets_;  // [worker][shard], flat
  std::vector<ShardArena> shards_;
};

}  // namespace pieck

#endif  // PIECK_FED_UPDATE_ROUTER_H_
