#include "fed/aggregator.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

Vec Aggregator::Aggregate(const std::vector<const Vec*>& grads) const {
  PIECK_CHECK(!grads.empty());
  Vec out(grads[0]->size());
  Aggregate(grads, out.data());
  return out;
}

Vec Aggregator::Aggregate(const std::vector<Vec>& grads) const {
  std::vector<const Vec*> spans;
  spans.reserve(grads.size());
  for (const Vec& g : grads) spans.push_back(&g);
  return Aggregate(spans);
}

void SumAggregator::Aggregate(const Vec* const* grads, size_t num_grads,
                              double* out) const {
  PIECK_CHECK(num_grads > 0);
  const size_t d = grads[0]->size();
  const KernelTable& k = ActiveKernels();
  std::fill(out, out + d, 0.0);
  for (size_t i = 0; i < num_grads; ++i) k.axpy(1.0, grads[i]->data(), out, d);
}

void MeanAggregator::Aggregate(const Vec* const* grads, size_t num_grads,
                               double* out) const {
  PIECK_CHECK(num_grads > 0);
  const size_t d = grads[0]->size();
  const KernelTable& k = ActiveKernels();
  std::fill(out, out + d, 0.0);
  for (size_t i = 0; i < num_grads; ++i) k.axpy(1.0, grads[i]->data(), out, d);
  k.scale(1.0 / static_cast<double>(num_grads), out, d);
}

double ClientUpdateSquaredDistance(const ClientUpdate& a,
                                   const ClientUpdate& b) {
  const KernelTable& k = ActiveKernels();
  double d2 = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.item_grads.size() || ib < b.item_grads.size()) {
    if (ib >= b.item_grads.size() ||
        (ia < a.item_grads.size() &&
         a.item_grads[ia].first < b.item_grads[ib].first)) {
      d2 += SquaredNorm2(a.item_grads[ia].second);
      ++ia;
    } else if (ia >= a.item_grads.size() ||
               b.item_grads[ib].first < a.item_grads[ia].first) {
      d2 += SquaredNorm2(b.item_grads[ib].second);
      ++ib;
    } else {
      const Vec& ga = a.item_grads[ia].second;
      const Vec& gb = b.item_grads[ib].second;
      d2 += k.squared_distance(ga.data(), gb.data(), ga.size());
      ++ia;
      ++ib;
    }
  }
  if (a.interaction_grads.active && b.interaction_grads.active) {
    Vec fa = a.interaction_grads.Flatten();
    Vec fb = b.interaction_grads.Flatten();
    d2 += k.squared_distance(fa.data(), fb.data(), fa.size());
  } else if (a.interaction_grads.active) {
    d2 += a.interaction_grads.SquaredNorm();
  } else if (b.interaction_grads.active) {
    d2 += b.interaction_grads.SquaredNorm();
  }
  return d2;
}

}  // namespace pieck
