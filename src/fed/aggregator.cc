#include "fed/aggregator.h"

#include "common/logging.h"

namespace pieck {

Vec SumAggregator::Aggregate(const std::vector<Vec>& grads) const {
  PIECK_CHECK(!grads.empty());
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) Axpy(1.0, g, out);
  return out;
}

Vec MeanAggregator::Aggregate(const std::vector<Vec>& grads) const {
  PIECK_CHECK(!grads.empty());
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) Axpy(1.0, g, out);
  Scale(1.0 / static_cast<double>(grads.size()), out);
  return out;
}

double ClientUpdateSquaredDistance(const ClientUpdate& a,
                                   const ClientUpdate& b) {
  double d2 = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.item_grads.size() || ib < b.item_grads.size()) {
    if (ib >= b.item_grads.size() ||
        (ia < a.item_grads.size() &&
         a.item_grads[ia].first < b.item_grads[ib].first)) {
      d2 += SquaredNorm2(a.item_grads[ia].second);
      ++ia;
    } else if (ia >= a.item_grads.size() ||
               b.item_grads[ib].first < a.item_grads[ia].first) {
      d2 += SquaredNorm2(b.item_grads[ib].second);
      ++ib;
    } else {
      const Vec& ga = a.item_grads[ia].second;
      const Vec& gb = b.item_grads[ib].second;
      for (size_t c = 0; c < ga.size(); ++c) {
        double diff = ga[c] - gb[c];
        d2 += diff * diff;
      }
      ++ia;
      ++ib;
    }
  }
  if (a.interaction_grads.active && b.interaction_grads.active) {
    Vec fa = a.interaction_grads.Flatten();
    Vec fb = b.interaction_grads.Flatten();
    for (size_t c = 0; c < fa.size(); ++c) {
      double diff = fa[c] - fb[c];
      d2 += diff * diff;
    }
  } else if (a.interaction_grads.active) {
    d2 += a.interaction_grads.SquaredNorm();
  } else if (b.interaction_grads.active) {
    d2 += b.interaction_grads.SquaredNorm();
  }
  return d2;
}

}  // namespace pieck
