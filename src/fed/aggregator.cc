#include "fed/aggregator.h"

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

Vec SumAggregator::Aggregate(const std::vector<Vec>& grads) const {
  PIECK_CHECK(!grads.empty());
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) Axpy(1.0, g, out);
  return out;
}

Vec MeanAggregator::Aggregate(const std::vector<Vec>& grads) const {
  PIECK_CHECK(!grads.empty());
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) Axpy(1.0, g, out);
  Scale(1.0 / static_cast<double>(grads.size()), out);
  return out;
}

double ClientUpdateSquaredDistance(const ClientUpdate& a,
                                   const ClientUpdate& b) {
  const KernelTable& k = ActiveKernels();
  double d2 = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.item_grads.size() || ib < b.item_grads.size()) {
    if (ib >= b.item_grads.size() ||
        (ia < a.item_grads.size() &&
         a.item_grads[ia].first < b.item_grads[ib].first)) {
      d2 += SquaredNorm2(a.item_grads[ia].second);
      ++ia;
    } else if (ia >= a.item_grads.size() ||
               b.item_grads[ib].first < a.item_grads[ia].first) {
      d2 += SquaredNorm2(b.item_grads[ib].second);
      ++ib;
    } else {
      const Vec& ga = a.item_grads[ia].second;
      const Vec& gb = b.item_grads[ib].second;
      d2 += k.squared_distance(ga.data(), gb.data(), ga.size());
      ++ia;
      ++ib;
    }
  }
  if (a.interaction_grads.active && b.interaction_grads.active) {
    Vec fa = a.interaction_grads.Flatten();
    Vec fb = b.interaction_grads.Flatten();
    d2 += k.squared_distance(fa.data(), fb.data(), fa.size());
  } else if (a.interaction_grads.active) {
    d2 += a.interaction_grads.SquaredNorm();
  } else if (b.interaction_grads.active) {
    d2 += b.interaction_grads.SquaredNorm();
  }
  return d2;
}

}  // namespace pieck
