/// \file
/// Client-side interfaces of the federation.
///
/// Contracts: `ParticipateRound` is invoked from the server's worker
/// threads, at most once per client per round — a client instance is
/// never called concurrently with itself, so per-client mutable state
/// (the private user embedding, the forked RNG stream) needs no
/// locking; sharing state *across* clients would. The `GlobalModel`
/// reference is read-only during the call and must not be retained.
/// Uploads must not alias server memory: gradients are owned by the
/// returned `ClientUpdate`.
#ifndef PIECK_FED_CLIENT_H_
#define PIECK_FED_CLIENT_H_

#include <memory>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/negative_sampler.h"
#include "model/global_model.h"
#include "model/losses.h"
#include "model/rec_model.h"

namespace pieck {

/// A participant in the federation. The server addresses every client
/// through this interface and cannot distinguish benign from malicious
/// participants (the `is_malicious` bit exists for evaluation bookkeeping
/// only and is never consulted by server-side code).
class ClientInterface {
 public:
  virtual ~ClientInterface() = default;

  virtual bool is_malicious() const = 0;

  /// Called when the server samples this client in round `round`. The
  /// client sees the current global model and returns its upload.
  virtual ClientUpdate ParticipateRound(const GlobalModel& g, int round) = 0;
};

/// Client-side defense hook (§V-B). Implemented by
/// `RegularizedClientDefense` in src/defense; declared here so the fed
/// layer does not depend on the defense library.
class ClientDefense {
 public:
  virtual ~ClientDefense() = default;

  /// Observes the item-embedding matrix the client received this round
  /// (benign clients mine popular items from consecutive observations,
  /// exactly like the attacker does).
  virtual void ObserveRound(const GlobalModel& g) = 0;

  /// Adds the defense regularizer gradients (−β∇Re1 − γ∇Re2 of Eq. 16)
  /// to the already-computed training gradients.
  virtual void ApplyRegularizers(const GlobalModel& g, const Vec& u,
                                 const std::vector<LabeledItem>& batch,
                                 Vec* grad_u, ClientUpdate* update) = 0;
};

/// A benign user: holds the private user embedding (the personalized
/// model), trains on its private batch each time it is sampled, updates
/// the user embedding locally, and uploads item-embedding (and, for
/// DL-FRS, interaction-function) gradients.
class BenignClient : public ClientInterface {
 public:
  /// `train` must outlive the client. `defense` may be null.
  BenignClient(int user_id, const RecModel& model, const Dataset& train,
               NegativeSampler sampler, LossKind loss, double local_lr,
               Rng rng, std::unique_ptr<ClientDefense> defense);

  bool is_malicious() const override { return false; }
  ClientUpdate ParticipateRound(const GlobalModel& g, int round) override;

  int user_id() const { return user_id_; }
  const Vec& user_embedding() const { return user_embedding_; }

  /// Last training loss observed by this client (diagnostics).
  double last_loss() const { return last_loss_; }

 private:
  int user_id_;
  const RecModel& model_;
  const Dataset& train_;
  NegativeSampler sampler_;
  LossKind loss_;
  double local_lr_;
  Rng rng_;
  std::unique_ptr<ClientDefense> defense_;
  Vec user_embedding_;
  bool user_initialized_ = false;
  double last_loss_ = 0.0;
};

}  // namespace pieck

#endif  // PIECK_FED_CLIENT_H_
