/// \file
/// Client-side interfaces of the federation.
///
/// Contracts: `ParticipateRound` is invoked from the server's worker
/// threads, at most once per client per round — a client instance is
/// never called concurrently with itself, so per-client mutable state
/// needs no locking; sharing state *across* clients would. The
/// `GlobalModel` reference is read-only during the call and must not be
/// retained. Uploads must not alias server memory: gradients are owned
/// by the returned `ClientUpdate`.
///
/// Benign users are no longer objects behind this interface: their
/// state lives in the struct-of-arrays `ClientStateStore`
/// (client_state_store.h) and their behavior in the stateless
/// `BenignClientLogic` executor. Only malicious clients (attack/) and
/// test doubles still implement `ClientInterface`.
#ifndef PIECK_FED_CLIENT_H_
#define PIECK_FED_CLIENT_H_

#include <cstdint>
#include <vector>

#include "data/negative_sampler.h"
#include "model/global_model.h"
#include "tensor/vector_ops.h"

namespace pieck {

/// A participant in the federation. The server addresses every client
/// through this interface and cannot distinguish benign from malicious
/// participants (the `is_malicious` bit exists for evaluation bookkeeping
/// only and is never consulted by server-side code).
class ClientInterface {
 public:
  virtual ~ClientInterface() = default;

  virtual bool is_malicious() const = 0;

  /// Called when the server samples this client in round `round`. The
  /// client sees the current global model and returns its upload.
  virtual ClientUpdate ParticipateRound(const GlobalModel& g, int round) = 0;
};

/// Client-side defense hook (§V-B). Implemented by
/// `RegularizedClientDefense` in src/defense; declared here so the fed
/// layer does not depend on the defense library.
class ClientDefense {
 public:
  virtual ~ClientDefense() = default;

  /// Observes the item-embedding matrix the client received this round
  /// (benign clients mine popular items from consecutive observations,
  /// exactly like the attacker does).
  virtual void ObserveRound(const GlobalModel& g) = 0;

  /// Adds the defense regularizer gradients (−β∇Re1 − γ∇Re2 of Eq. 16)
  /// to the already-computed training gradients.
  virtual void ApplyRegularizers(const GlobalModel& g, const Vec& u,
                                 const std::vector<LabeledItem>& batch,
                                 Vec* grad_u, ClientUpdate* update) = 0;

  /// Resident bytes of this defense instance's observer state (store
  /// footprint telemetry). Defenses without heavy state keep the 0
  /// default.
  virtual int64_t FootprintBytes() const { return 0; }
};

}  // namespace pieck

#endif  // PIECK_FED_CLIENT_H_
