#include "metrics/evaluation.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace pieck {

namespace {

/// Scores every item for one user; `scores[j]` is the predicted logit
/// (ranking is monotone in the logit, so σ is skipped).
Vec ScoreAllItems(const RecModel& model, const GlobalModel& g, const Vec& u) {
  Vec scores(static_cast<size_t>(g.num_items()));
  for (int j = 0; j < g.num_items(); ++j) {
    Vec v = g.item_embeddings.Row(static_cast<size_t>(j));
    scores[static_cast<size_t>(j)] = model.Forward(g, u, v, nullptr);
  }
  return scores;
}

}  // namespace

double ExposureRatioAtK(const RecModel& model, const GlobalModel& g,
                        const std::vector<const BenignClient*>& benign,
                        const Dataset& train,
                        const std::vector<int>& target_items, int k) {
  PIECK_CHECK(k > 0);
  if (target_items.empty() || benign.empty()) return 0.0;

  // For each user compute the top-K uninteracted items once, then test
  // membership for every target.
  std::vector<int64_t> hits(target_items.size(), 0);
  std::vector<int64_t> denom(target_items.size(), 0);

  std::vector<std::pair<double, int>> ranked;
  for (const BenignClient* client : benign) {
    const Vec scores = ScoreAllItems(model, g, client->user_embedding());
    const std::vector<int>& interacted = train.ItemsOf(client->user_id());

    ranked.clear();
    ranked.reserve(scores.size());
    size_t pi = 0;
    for (int j = 0; j < g.num_items(); ++j) {
      while (pi < interacted.size() && interacted[pi] < j) ++pi;
      if (pi < interacted.size() && interacted[pi] == j) continue;
      ranked.push_back({scores[static_cast<size_t>(j)], j});
    }
    size_t top = std::min(ranked.size(), static_cast<size_t>(k));
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<ptrdiff_t>(top),
                      ranked.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });

    for (size_t t = 0; t < target_items.size(); ++t) {
      int target = target_items[t];
      if (train.Interacted(client->user_id(), target)) continue;
      denom[t]++;
      for (size_t r = 0; r < top; ++r) {
        if (ranked[r].second == target) {
          hits[t]++;
          break;
        }
      }
    }
  }

  double er = 0.0;
  for (size_t t = 0; t < target_items.size(); ++t) {
    if (denom[t] > 0) {
      er += static_cast<double>(hits[t]) / static_cast<double>(denom[t]);
    }
  }
  return er / static_cast<double>(target_items.size());
}

double HitRatioAtK(const RecModel& model, const GlobalModel& g,
                   const std::vector<const BenignClient*>& benign,
                   const Dataset& train, const std::vector<int>& test_items,
                   int k, int num_negatives, uint64_t seed) {
  PIECK_CHECK(k > 0 && num_negatives > 0);
  Rng rng(seed);
  int64_t hits = 0;
  int64_t total = 0;
  for (const BenignClient* client : benign) {
    int user = client->user_id();
    if (user < 0 || user >= static_cast<int>(test_items.size())) continue;
    int test = test_items[static_cast<size_t>(user)];
    if (test < 0) continue;

    const Vec& u = client->user_embedding();
    Vec vt = g.item_embeddings.Row(static_cast<size_t>(test));
    double test_score = model.Forward(g, u, vt, nullptr);

    // Rank the test item against sampled uninteracted negatives; the
    // item lands in the top K iff fewer than K negatives outscore it.
    // Exact ties count as half an outscore so that a degenerate model
    // with all-equal scores gets chance-level (not perfect) HR.
    double outscored = 0.0;
    int sampled = 0;
    int guard = 0;
    while (sampled < num_negatives && guard < num_negatives * 50) {
      ++guard;
      int j = static_cast<int>(rng.UniformInt(0, train.num_items() - 1));
      if (j == test || train.Interacted(user, j)) continue;
      ++sampled;
      Vec v = g.item_embeddings.Row(static_cast<size_t>(j));
      double s = model.Forward(g, u, v, nullptr);
      if (s > test_score) {
        outscored += 1.0;
      } else if (s == test_score) {
        outscored += 0.5;
      }
    }
    ++total;
    if (outscored < static_cast<double>(k)) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double PairwiseKlDivergence(const GlobalModel& g,
                            const std::vector<const BenignClient*>& benign,
                            const Dataset& train,
                            const std::vector<int>& popular_items) {
  if (popular_items.empty() || benign.empty()) return 0.0;
  // U_P: users whose interactions include at least one popular item.
  std::vector<const Vec*> covered_users;
  for (const BenignClient* client : benign) {
    for (int item : popular_items) {
      if (train.Interacted(client->user_id(), item)) {
        covered_users.push_back(&client->user_embedding());
        break;
      }
    }
  }
  if (covered_users.empty()) return 0.0;

  double total = 0.0;
  for (int item : popular_items) {
    Vec vk = g.item_embeddings.Row(static_cast<size_t>(item));
    for (const Vec* u : covered_users) {
      total += SoftmaxKl(vk, *u);
    }
  }
  return total / (static_cast<double>(popular_items.size()) *
                  static_cast<double>(covered_users.size()));
}

double UserCoverageRatio(const Dataset& train,
                         const std::vector<int>& popular_items) {
  if (train.num_users() == 0) return 0.0;
  int64_t covered = 0;
  for (int u = 0; u < train.num_users(); ++u) {
    for (int item : popular_items) {
      if (train.Interacted(u, item)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(train.num_users());
}

std::vector<int> TopDeltaNormPopularityRanks(const Vec& delta_norm,
                                             const Dataset& train,
                                             int top_k) {
  std::vector<int> order(delta_norm.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return delta_norm[static_cast<size_t>(a)] >
           delta_norm[static_cast<size_t>(b)];
  });
  if (static_cast<size_t>(top_k) < order.size()) {
    order.resize(static_cast<size_t>(top_k));
  }
  std::vector<int> pop_rank = train.PopularityRank();
  std::vector<int> out;
  out.reserve(order.size());
  for (int item : order) {
    out.push_back(pop_rank[static_cast<size_t>(item)]);
  }
  return out;
}

double MeanScoreForItem(const RecModel& model, const GlobalModel& g,
                        const std::vector<const BenignClient*>& benign,
                        int item) {
  if (benign.empty()) return 0.0;
  Vec v = g.item_embeddings.Row(static_cast<size_t>(item));
  double s = 0.0;
  for (const BenignClient* client : benign) {
    s += model.ScoreProb(g, client->user_embedding(), v);
  }
  return s / static_cast<double>(benign.size());
}

}  // namespace pieck
