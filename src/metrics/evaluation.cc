#include "metrics/evaluation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <numeric>

#include "common/logging.h"
#include "serving/topk_server.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {

/// Runs fn(0..n-1) on the pool, or inline when none was provided. The
/// evaluation loops only write to disjoint per-user slots, so pool size
/// never changes a result.
void ForUsers(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn) {
  ThreadPool::ParallelForOrSerial(pool, n, fn);
}

/// SplitMix64 finalizer: derives a well-mixed per-user seed from the
/// metric seed, so each user owns an independent deterministic stream
/// regardless of which worker evaluates it.
uint64_t MixSeed(uint64_t seed, uint64_t user) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (user + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-worker score buffer: every metric scores whole item tables, and
/// each worker reuses one buffer across all its users.
Vec& ScoreScratch(size_t n) {
  thread_local Vec scores;
  scores.resize(n);
  return scores;
}

/// Per-worker copy of one user's embedding row (ScoreItems takes a Vec;
/// the view hands out borrowed rows). dim-sized copy, reused across all
/// of a worker's users.
const Vec& UserScratch(const BenignEvalView& benign, size_t ui) {
  thread_local Vec u;
  const double* row = benign.embedding(ui);
  u.assign(row, row + benign.dim());
  return u;
}

}  // namespace

double ExposureRatioAtK(const RecModel& model, const GlobalModel& g,
                        const BenignEvalView& benign, const Dataset& train,
                        const std::vector<int>& target_items, int k,
                        ThreadPool* pool) {
  PIECK_CHECK(k > 0);
  if (target_items.empty() || benign.size() == 0) return 0.0;

  // For each user serve the top-K uninteracted items once through the
  // TopKServer (fused gemv + partial-select, interacted items
  // excluded), then test membership for every target. Ties rank by the
  // serving order (lower item id first). Per-(user, target) outcomes
  // land in pre-sized slots; the reduction below runs serially in user
  // order.
  constexpr uint8_t kExcluded = 0, kMiss = 1, kHit = 2;
  const size_t num_targets = target_items.size();
  std::vector<uint8_t> outcome(benign.size() * num_targets, kExcluded);

  const serving::TopKServer server(model, g);
  ForUsers(pool, benign.size(), [&](size_t ui) {
    const int user = benign.user_id(ui);
    thread_local std::vector<serving::ScoredItem> top;
    server.Recommend(UserScratch(benign, ui), k, train.ItemsOf(user), &top);

    for (size_t t = 0; t < num_targets; ++t) {
      int target = target_items[t];
      if (train.Interacted(user, target)) continue;
      uint8_t& slot = outcome[ui * num_targets + t];
      slot = kMiss;
      for (const serving::ScoredItem& r : top) {
        if (r.item == target) {
          slot = kHit;
          break;
        }
      }
    }
  });

  std::vector<int64_t> hits(num_targets, 0);
  std::vector<int64_t> denom(num_targets, 0);
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    for (size_t t = 0; t < num_targets; ++t) {
      const uint8_t o = outcome[ui * num_targets + t];
      if (o == kExcluded) continue;
      denom[t]++;
      if (o == kHit) hits[t]++;
    }
  }
  double er = 0.0;
  for (size_t t = 0; t < num_targets; ++t) {
    if (denom[t] > 0) {
      er += static_cast<double>(hits[t]) / static_cast<double>(denom[t]);
    }
  }
  return er / static_cast<double>(num_targets);
}

double HitRatioAtK(const RecModel& model, const GlobalModel& g,
                   const BenignEvalView& benign, const Dataset& train,
                   const std::vector<int>& test_items, int k,
                   int num_negatives, uint64_t seed, ThreadPool* pool) {
  PIECK_CHECK(k > 0 && num_negatives > 0);

  // Per-user outcome slots: 0 = skipped, 1 = miss, 2 = hit.
  constexpr uint8_t kSkipped = 0, kMiss = 1, kHit = 2;
  std::vector<uint8_t> outcome(benign.size(), kSkipped);

  ForUsers(pool, benign.size(), [&](size_t ui) {
    int user = benign.user_id(ui);
    if (user < 0 || user >= static_cast<int>(test_items.size())) return;
    int test = test_items[static_cast<size_t>(user)];
    if (test < 0) return;
    // The score buffer spans the model's item table; sampled negatives
    // come from train. Both index it below, so both ranges must fit.
    PIECK_CHECK(test < g.num_items());
    PIECK_CHECK(train.num_items() <= g.num_items());

    // Sampled HR only ever compares the test item against
    // `num_negatives` (~10^2) negatives, so score single items through
    // ScoreItemsRange instead of materializing the whole table — each
    // one-row score is bitwise the full-scan value by the kernel
    // contract, so HR is unchanged while scoring work drops by the
    // table/negatives ratio.
    const Vec& u = UserScratch(benign, ui);
    auto score_one = [&](int j) {
      double s;
      model.ScoreItemsRange(g, u, j, 1, &s);
      return s;
    };
    const double test_score = score_one(test);

    // The test item lands in the top K iff fewer than K negatives
    // outscore it. Exact ties count as half an outscore so that a
    // degenerate model with all-equal scores gets chance-level (not
    // perfect) HR.
    auto outscore_value = [&](double s) {
      if (s > test_score) return 1.0;
      if (s == test_score) return 0.5;
      return 0.0;
    };

    // How many uninteracted negatives exist at all (the test item never
    // counts as a negative, whether or not it appears in train).
    const int64_t excluded =
        static_cast<int64_t>(train.ItemsOf(user).size()) +
        (train.Interacted(user, test) ? 0 : 1);
    const int64_t available = train.num_items() - excluded;

    double outscored = 0.0;
    bool scan_all = available <= num_negatives;
    if (!scan_all) {
      // Rank against `num_negatives` sampled uninteracted items, each
      // user on its own seed-derived stream (order/pool independent).
      Rng rng(MixSeed(seed, static_cast<uint64_t>(user)));
      int sampled = 0;
      int guard = 0;
      while (sampled < num_negatives && guard < num_negatives * 50) {
        ++guard;
        int j = static_cast<int>(rng.UniformInt(0, train.num_items() - 1));
        if (j == test || train.Interacted(user, j)) continue;
        ++sampled;
        outscored += outscore_value(score_one(j));
      }
      // Rejection sampling fell short (extremely dense user): discard
      // the partial sample rather than silently ranking against fewer
      // negatives than requested.
      scan_all = sampled < num_negatives;
    }
    if (scan_all) {
      // Deterministic fallback for dense users: rank against every
      // uninteracted item, scored by one whole-table pass.
      outscored = 0.0;
      Vec& scores = ScoreScratch(static_cast<size_t>(g.num_items()));
      model.ScoreItems(g, u, scores.data());
      const std::vector<int>& interacted = train.ItemsOf(user);
      size_t pi = 0;
      for (int j = 0; j < train.num_items(); ++j) {
        while (pi < interacted.size() && interacted[pi] < j) ++pi;
        if (pi < interacted.size() && interacted[pi] == j) continue;
        if (j == test) continue;
        outscored += outscore_value(scores[static_cast<size_t>(j)]);
      }
    }
    outcome[ui] = outscored < static_cast<double>(k) ? kHit : kMiss;
  });

  int64_t hits = 0;
  int64_t total = 0;
  for (uint8_t o : outcome) {
    if (o == kSkipped) continue;
    ++total;
    if (o == kHit) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double PairwiseKlDivergence(const GlobalModel& g,
                            const BenignEvalView& benign,
                            const Dataset& train,
                            const std::vector<int>& popular_items,
                            ThreadPool* pool) {
  if (popular_items.empty() || benign.size() == 0) return 0.0;
  // U_P: users whose interactions include at least one popular item.
  // Borrowed embedding rows straight out of the view's matrix.
  std::vector<const double*> covered_users;
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    for (int item : popular_items) {
      if (train.Interacted(benign.user_id(ui), item)) {
        covered_users.push_back(benign.embedding(ui));
        break;
      }
    }
  }
  if (covered_users.empty()) return 0.0;

  // KL(p_k || q_u) = Σ_i p_k[i]·log p_k[i] − dot(p_k, log q_u). The
  // item-side terms are shared by every user, so precompute the softmax
  // rows P (stacked, row-major) and self-terms once; each user then
  // costs one log-softmax plus one gemv against P.
  const size_t num_pop = popular_items.size();
  const size_t d = static_cast<size_t>(g.dim());
  Matrix p_rows(num_pop, d);
  Vec self_terms(num_pop);
  for (size_t t = 0; t < num_pop; ++t) {
    Vec p = Softmax(g.item_embeddings.Row(
        static_cast<size_t>(popular_items[t])));
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) s += p[i] * std::log(p[i]);
    self_terms[t] = s;
    p_rows.SetRow(t, p);
  }

  const KernelTable& kernels = ActiveKernels();
  PIECK_CHECK(benign.dim() == d);
  std::vector<double> partial(covered_users.size(), 0.0);
  ForUsers(pool, covered_users.size(), [&](size_t ui) {
    const double* u = covered_users[ui];
    // log softmax(u) without materializing the softmax.
    thread_local Vec log_q;
    log_q.resize(d);
    const double mx = *std::max_element(u, u + d);
    double z = 0.0;
    for (size_t i = 0; i < d; ++i) z += std::exp(u[i] - mx);
    const double lz = std::log(z);
    for (size_t i = 0; i < d; ++i) log_q[i] = u[i] - mx - lz;

    thread_local Vec dots;
    dots.resize(num_pop);
    kernels.gemv(p_rows.data().data(), num_pop, d, log_q.data(),
                 dots.data());
    double acc = 0.0;
    for (size_t t = 0; t < num_pop; ++t) acc += self_terms[t] - dots[t];
    partial[ui] = acc;
  });

  double total = 0.0;
  for (double p : partial) total += p;
  return total / (static_cast<double>(num_pop) *
                  static_cast<double>(covered_users.size()));
}

double UserCoverageRatio(const Dataset& train,
                         const std::vector<int>& popular_items) {
  if (train.num_users() == 0) return 0.0;
  int64_t covered = 0;
  for (int u = 0; u < train.num_users(); ++u) {
    for (int item : popular_items) {
      if (train.Interacted(u, item)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(train.num_users());
}

std::vector<int> TopDeltaNormPopularityRanks(const Vec& delta_norm,
                                             const Dataset& train,
                                             int top_k) {
  std::vector<int> order(delta_norm.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return delta_norm[static_cast<size_t>(a)] >
           delta_norm[static_cast<size_t>(b)];
  });
  if (static_cast<size_t>(top_k) < order.size()) {
    order.resize(static_cast<size_t>(top_k));
  }
  std::vector<int> pop_rank = train.PopularityRank();
  std::vector<int> out;
  out.reserve(order.size());
  for (int item : order) {
    out.push_back(pop_rank[static_cast<size_t>(item)]);
  }
  return out;
}

double MeanScoreForItem(const RecModel& model, const GlobalModel& g,
                        const BenignEvalView& benign, int item) {
  if (benign.size() == 0) return 0.0;
  Vec v = g.item_embeddings.Row(static_cast<size_t>(item));
  double s = 0.0;
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    s += model.ScoreProb(g, UserScratch(benign, ui), v);
  }
  return s / static_cast<double>(benign.size());
}

}  // namespace pieck
