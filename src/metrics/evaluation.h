#ifndef PIECK_METRICS_EVALUATION_H_
#define PIECK_METRICS_EVALUATION_H_

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "fed/client_state_store.h"
#include "model/global_model.h"
#include "model/rec_model.h"

namespace pieck {

// The three heavy metrics (ER@K, HR@K, PKL) score whole item tables per
// user through RecModel::ScoreItems (one batched gemv for MF) and fan
// out over users on the optional `pool` (nullptr = serial). Per-user
// results land in pre-sized slots and reduce in user order afterwards,
// so every metric is bit-identical for every pool size.
//
// The benign population enters as a `BenignEvalView`: contiguous
// embedding rows plus user ids, produced by `ClientStateStore::EvalView`
// (or built over a hand-crafted matrix in tests). The view is read-only
// here; lazy embedding initialization happens before the view exists.

/// Exposure Ratio at rank K (Eq. 3): the fraction of benign users whose
/// top-K recommendation lists (over their uninteracted items) contain a
/// target item, averaged over targets. Users that already interacted
/// with a target are excluded from its denominator.
double ExposureRatioAtK(const RecModel& model, const GlobalModel& g,
                        const BenignEvalView& benign, const Dataset& train,
                        const std::vector<int>& target_items, int k,
                        ThreadPool* pool = nullptr);

/// Hit Ratio at rank K following the NCF protocol: each user's held-out
/// test item is ranked against `num_negatives` sampled uninteracted
/// items; HR@K is the fraction of users whose test item lands in the
/// top K. Users without a test item are skipped. Deterministic in
/// `seed` (each user derives an independent stream from it, so the
/// result does not depend on user order or pool size). Dense users with
/// at most `num_negatives` uninteracted items — or whose rejection
/// sampling cannot fill the quota — are ranked against *every*
/// uninteracted item instead of a silently short sample.
double HitRatioAtK(const RecModel& model, const GlobalModel& g,
                   const BenignEvalView& benign, const Dataset& train,
                   const std::vector<int>& test_items, int k,
                   int num_negatives, uint64_t seed,
                   ThreadPool* pool = nullptr);

/// Average pairwise KL divergence (Eq. 9) between the embeddings of the
/// mined popular items and the embeddings of the users covered by them.
/// Computed as KL(p_k || q_u) = Σ_i p_k[i]·log p_k[i] − p_k·log q_u: the
/// per-item softmax terms are precomputed once, and each user's KLs
/// against all items are one batched gemv.
double PairwiseKlDivergence(const GlobalModel& g,
                            const BenignEvalView& benign,
                            const Dataset& train,
                            const std::vector<int>& popular_items,
                            ThreadPool* pool = nullptr);

/// User coverage ratio: the fraction of users whose interactions include
/// at least one item of `popular_items` (Table II).
double UserCoverageRatio(const Dataset& train,
                         const std::vector<int>& popular_items);

/// Popularity ranks (0 = most popular in `train`) of the top-`top_k`
/// items by `delta_norm`. Reproduces the y-axis points of Fig. 4.
std::vector<int> TopDeltaNormPopularityRanks(const Vec& delta_norm,
                                             const Dataset& train, int top_k);

/// Mean predicted score of `item` across benign users (diagnostics).
double MeanScoreForItem(const RecModel& model, const GlobalModel& g,
                        const BenignEvalView& benign, int item);

}  // namespace pieck

#endif  // PIECK_METRICS_EVALUATION_H_
