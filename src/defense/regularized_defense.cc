#include "defense/regularized_defense.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {

/// Borrowed views of the mined popular rows with their L2 norms
/// precomputed once per call — the cosine loops below touch every
/// (unpopular, popular) pair, so per-pair norm recomputation dominated
/// the seed implementation.
struct PopularRows {
  std::vector<const double*> ptr;
  std::vector<double> norm;
};

PopularRows MakePopularRows(const GlobalModel& g,
                            const std::vector<int>& popular) {
  const KernelTable& k = ActiveKernels();
  const size_t d = static_cast<size_t>(g.dim());
  PopularRows rows;
  rows.ptr.reserve(popular.size());
  rows.norm.reserve(popular.size());
  for (int item : popular) {
    const double* p = g.item_embeddings.RowPtr(static_cast<size_t>(item));
    rows.ptr.push_back(p);
    rows.norm.push_back(std::sqrt(k.squared_norm(p, d)));
  }
  return rows;
}

}  // namespace

RegularizedClientDefense::RegularizedClientDefense(
    const DefenseOptions& options)
    : options_(options),
      miner_(options.mining_rounds, options.mined_top_n) {
  PIECK_CHECK(options_.beta >= 0.0 && options_.gamma >= 0.0);
}

void RegularizedClientDefense::ObserveRound(const GlobalModel& g) {
  miner_.Observe(g.item_embeddings);
}

std::vector<double> RegularizedClientDefense::ExponentialRankWeights(
    size_t m) const {
  std::vector<double> w(m);
  double total = 0.0;
  for (size_t r = 0; r < m; ++r) {
    w[r] = std::exp(-static_cast<double>(r));
    total += w[r];
  }
  for (double& x : w) x /= total;
  return w;
}

std::vector<int> RegularizedClientDefense::UnpopularBatchItems(
    const std::vector<LabeledItem>& batch) const {
  const std::vector<int>& popular = miner_.MinedItems();
  std::unordered_set<int> popular_set(popular.begin(), popular.end());
  std::vector<int> out;
  out.reserve(batch.size());
  for (const LabeledItem& ex : batch) {
    if (popular_set.count(ex.item) == 0) out.push_back(ex.item);
  }
  return out;
}

double RegularizedClientDefense::ComputeRe1(
    const GlobalModel& g, const std::vector<LabeledItem>& batch) const {
  if (!miner_.Ready()) return 0.0;
  const std::vector<int>& popular = miner_.MinedItems();
  std::vector<int> unpopular = UnpopularBatchItems(batch);
  if (popular.empty() || unpopular.empty()) return 0.0;
  std::vector<double> kappa = ExponentialRankWeights(popular.size());

  const KernelTable& kern = ActiveKernels();
  const size_t d = static_cast<size_t>(g.dim());
  PopularRows rows = MakePopularRows(g, popular);

  double re1 = 0.0;
  for (int j : unpopular) {
    const double* vj = g.item_embeddings.RowPtr(static_cast<size_t>(j));
    const double nj = std::sqrt(kern.squared_norm(vj, d));
    if (nj == 0.0) continue;  // cos(vk, vj) := 0 for zero-norm vectors
    for (size_t k = 0; k < popular.size(); ++k) {
      if (rows.norm[k] == 0.0) continue;
      re1 += kappa[k] * (kern.dot(rows.ptr[k], vj, d) / (rows.norm[k] * nj));
    }
  }
  return re1 / static_cast<double>(unpopular.size());
}

double RegularizedClientDefense::ComputeRe2(const GlobalModel& g,
                                            const Vec& u) const {
  if (!miner_.Ready()) return 0.0;
  const std::vector<int>& popular = miner_.MinedItems();
  if (popular.empty()) return 0.0;
  std::vector<double> kappa = ExponentialRankWeights(popular.size());
  double re2 = 0.0;
  for (size_t k = 0; k < popular.size(); ++k) {
    Vec vk = g.item_embeddings.Row(static_cast<size_t>(popular[k]));
    re2 += kappa[k] * SoftmaxKl(vk, u);
  }
  return re2;
}

void RegularizedClientDefense::ApplyRegularizers(
    const GlobalModel& g, const Vec& u, const std::vector<LabeledItem>& batch,
    Vec* grad_u, ClientUpdate* update) {
  if (!miner_.Ready()) return;
  const std::vector<int>& popular = miner_.MinedItems();
  if (popular.empty()) return;
  std::vector<double> kappa = ExponentialRankWeights(popular.size());

  // Re1: L_def contains −β·Re1. Gradients flow into BOTH sides of each
  // cosine pair: the unpopular batch items v_j and the mined popular
  // items v_k. Pulling the two groups together is what blurs the
  // distinctive popular-item features the attacker relies on (F2).
  if (options_.enable_re1 && options_.beta > 0.0 && update != nullptr) {
    std::vector<int> unpopular = UnpopularBatchItems(batch);
    if (!unpopular.empty()) {
      const KernelTable& kern = ActiveKernels();
      const size_t d = static_cast<size_t>(g.dim());
      const double coeff =
          -options_.beta / static_cast<double>(unpopular.size());
      // Popular rows and norms are cached once; each (j, k) pair then
      // costs one dot plus four blocked axpys, instead of the seed's
      // two gradient allocations and six norm/dot recomputations.
      PopularRows rows = MakePopularRows(g, popular);
      std::vector<Vec> popular_grads(popular.size(), Zeros(d));
      Vec grad(d);
      for (int j : unpopular) {
        const double* vj = g.item_embeddings.RowPtr(static_cast<size_t>(j));
        const double nj = std::sqrt(kern.squared_norm(vj, d));
        std::fill(grad.begin(), grad.end(), 0.0);
        if (nj != 0.0) {
          for (size_t k = 0; k < popular.size(); ++k) {
            const double nk = rows.norm[k];
            if (nk == 0.0) continue;  // zero-norm rows contribute nothing
            const double* vk = rows.ptr[k];
            const double ab = kern.dot(vk, vj, d);
            const double inv = 1.0 / (nk * nj);
            // ∇_{v_j} cos(v_k, v_j) = v_k/(nk·nj) − ab·v_j/(nk·nj³).
            kern.axpy(kappa[k] * inv, vk, grad.data(), d);
            kern.axpy(-kappa[k] * (ab / (nk * nj * nj * nj)), vj,
                      grad.data(), d);
            // cos is symmetric; ∇_{v_k} cos(v_k, v_j) mirrors the roles.
            double* pg = popular_grads[k].data();
            kern.axpy(coeff * kappa[k] * inv, vj, pg, d);
            kern.axpy(-coeff * kappa[k] * (ab / (nj * nk * nk * nk)), vk, pg,
                      d);
          }
        }
        kern.axpy(coeff, grad.data(), update->MutableItemGrad(j, d), d);
      }
      for (size_t k = 0; k < popular.size(); ++k) {
        update->AccumulateItemGrad(popular[k], popular_grads[k]);
      }
    }
  }

  // Re2: L_def contains −γ·Re2 with Re2 = Σ_k κ'(v_k)·KL(v_k ∥ u).
  // Gradients flow into the user embedding (local) and into the popular
  // item embeddings (uploaded): separating the two distributions from
  // both sides is what invalidates user-embedding approximation (F3).
  if (options_.enable_re2 && options_.gamma > 0.0) {
    for (size_t k = 0; k < popular.size(); ++k) {
      Vec vk = g.item_embeddings.Row(static_cast<size_t>(popular[k]));
      if (grad_u != nullptr) {
        Vec dkl_u = SoftmaxKlGradWrtB(vk, u);
        Axpy(-options_.gamma * kappa[k], dkl_u, *grad_u);
      }
      if (update != nullptr) {
        Vec dkl_k = SoftmaxKlGradWrtA(vk, u);
        Vec grad = Zeros(vk.size());
        Axpy(-options_.gamma * kappa[k], dkl_k, grad);
        update->AccumulateItemGrad(popular[k], grad);
      }
    }
  }
}

std::unique_ptr<ClientDefense> MakeRegularizedDefense(
    const DefenseOptions& options) {
  return std::make_unique<RegularizedClientDefense>(options);
}

}  // namespace pieck
