#include "defense/defense.h"

namespace pieck {

const char* DefenseKindToString(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kNoDefense:
      return "NoDefense";
    case DefenseKind::kNormBound:
      return "NormBound";
    case DefenseKind::kMedian:
      return "Median";
    case DefenseKind::kTrimmedMean:
      return "TrimmedMean";
    case DefenseKind::kKrum:
      return "Krum";
    case DefenseKind::kMultiKrum:
      return "MultiKrum";
    case DefenseKind::kBulyan:
      return "Bulyan";
    case DefenseKind::kOurs:
      return "Ours";
    case DefenseKind::kOursPlusNormBound:
      return "Ours+NormBound";
  }
  return "?";
}

DefensePlan MakeDefensePlan(DefenseKind kind, const AggregatorParams& params) {
  DefensePlan plan;
  switch (kind) {
    case DefenseKind::kNoDefense:
    case DefenseKind::kOurs:
      plan.aggregator = std::make_unique<SumAggregator>();
      break;
    case DefenseKind::kNormBound:
    case DefenseKind::kOursPlusNormBound:
      plan.aggregator =
          std::make_unique<NormBoundAggregator>(params.norm_bound);
      break;
    case DefenseKind::kMedian:
      plan.aggregator = std::make_unique<MedianAggregator>();
      break;
    case DefenseKind::kTrimmedMean:
      plan.aggregator =
          std::make_unique<TrimmedMeanAggregator>(params.malicious_fraction);
      break;
    case DefenseKind::kKrum:
      plan.aggregator = std::make_unique<SumAggregator>();
      plan.filter = std::make_unique<KrumFilter>(params.malicious_fraction);
      break;
    case DefenseKind::kMultiKrum:
      plan.aggregator = std::make_unique<SumAggregator>();
      plan.filter =
          std::make_unique<MultiKrumFilter>(params.malicious_fraction);
      break;
    case DefenseKind::kBulyan:
      // Bulyan = MultiKrum selection followed by a coordinate-wise
      // trimmed mean over the survivors.
      plan.aggregator =
          std::make_unique<TrimmedMeanAggregator>(params.malicious_fraction);
      plan.filter =
          std::make_unique<MultiKrumFilter>(params.malicious_fraction);
      break;
  }
  return plan;
}

bool DefenseUsesClientRegularizers(DefenseKind kind) {
  return kind == DefenseKind::kOurs || kind == DefenseKind::kOursPlusNormBound;
}

}  // namespace pieck
