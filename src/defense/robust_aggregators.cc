#include "defense/robust_aggregators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

namespace {

/// Per-worker column scratch for the coordinate-wise rules. The server
/// fans per-item aggregation out over its pool, so each worker reuses
/// one buffer across all its items and rounds — zero allocations after
/// the first item per thread (capacity only ever grows).
std::vector<double>& ColumnScratch(size_t n) {
  thread_local std::vector<double> column;
  column.resize(n);
  return column;
}

}  // namespace

void NormBoundAggregator::Aggregate(const Vec* const* grads,
                                    size_t num_grads, double* out) const {
  PIECK_CHECK(num_grads > 0);
  const size_t d = grads[0]->size();
  const KernelTable& k = ActiveKernels();
  std::fill(out, out + d, 0.0);
  for (size_t i = 0; i < num_grads; ++i) {
    const Vec* g = grads[i];
    // scale = min(1, max_norm/||g||) folded into the axpy: bit-identical
    // to clipping a copy first (x*s then += equals += s*x per IEEE-754),
    // without the per-gradient temporary.
    const double norm = std::sqrt(k.squared_norm(g->data(), d));
    const double scale =
        norm > max_norm_ && norm > 0.0 ? max_norm_ / norm : 1.0;
    k.axpy(scale, g->data(), out, d);
  }
}

void MedianAggregator::Aggregate(const Vec* const* grads, size_t num_grads,
                                 double* out) const {
  PIECK_CHECK(num_grads > 0);
  const size_t n = num_grads;
  const size_t d = grads[0]->size();
  std::vector<double>& column = ColumnScratch(n);
  for (size_t c = 0; c < d; ++c) {
    for (size_t i = 0; i < n; ++i) column[i] = (*grads[i])[c];
    auto mid = column.begin() + static_cast<ptrdiff_t>(n / 2);
    std::nth_element(column.begin(), mid, column.end());
    double median;
    if (n % 2 == 1) {
      median = *mid;
    } else {
      double hi = *mid;
      double lo = *std::max_element(column.begin(), mid);
      median = 0.5 * (lo + hi);
    }
    // Sum-calibrated: estimate the sum of n honest gradients.
    out[c] = median * static_cast<double>(n);
  }
}

void TrimmedMeanAggregator::Aggregate(const Vec* const* grads,
                                      size_t num_grads, double* out) const {
  PIECK_CHECK(num_grads > 0);
  const size_t n = num_grads;
  const size_t d = grads[0]->size();
  size_t trim =
      static_cast<size_t>(std::ceil(trim_fraction_ * static_cast<double>(n)));
  if (2 * trim >= n) trim = (n - 1) / 2;  // keep at least one value

  std::vector<double>& column = ColumnScratch(n);
  for (size_t c = 0; c < d; ++c) {
    for (size_t i = 0; i < n; ++i) column[i] = (*grads[i])[c];
    std::sort(column.begin(), column.end());
    double s = 0.0;
    for (size_t i = trim; i < n - trim; ++i) s += column[i];
    // Sum-calibrated trimmed mean.
    out[c] = s / static_cast<double>(n - 2 * trim) * static_cast<double>(n);
  }
}

std::vector<double> KrumFilter::Scores(
    const std::vector<ClientUpdate>& updates) const {
  const int n = static_cast<int>(updates.size());
  int f = static_cast<int>(std::llround(fraction_ * n));
  int neighbors = std::max(1, n - f - 2);

  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d2 = ClientUpdateSquaredDistance(updates[static_cast<size_t>(i)],
                                              updates[static_cast<size_t>(j)]);
      dist[static_cast<size_t>(i)][static_cast<size_t>(j)] = d2;
      dist[static_cast<size_t>(j)][static_cast<size_t>(i)] = d2;
    }
  }

  std::vector<double> scores(static_cast<size_t>(n));
  std::vector<double> row;
  for (int i = 0; i < n; ++i) {
    row.clear();
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        row.push_back(dist[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    size_t k = std::min(row.size(), static_cast<size_t>(neighbors));
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(k),
                      row.end());
    scores[static_cast<size_t>(i)] =
        std::accumulate(row.begin(), row.begin() + static_cast<ptrdiff_t>(k),
                        0.0);
  }
  return scores;
}

std::vector<int> KrumFilter::Select(
    const std::vector<ClientUpdate>& updates) const {
  PIECK_CHECK(!updates.empty());
  if (updates.size() <= 2) {
    std::vector<int> all(updates.size());
    std::iota(all.begin(), all.end(), 0);
    return all;  // too few updates to score; pass through
  }
  std::vector<double> scores = Scores(updates);
  int best = static_cast<int>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  return {best};
}

std::vector<int> MultiKrumFilter::Select(
    const std::vector<ClientUpdate>& updates) const {
  PIECK_CHECK(!updates.empty());
  const int n = static_cast<int>(updates.size());
  if (n <= 2) {
    std::vector<int> all(updates.size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  int discard = static_cast<int>(std::ceil(2.0 * fraction_ * n));
  int keep = std::max(1, n - discard);
  // Equivalent to iteratively re-running Krum and removing the worst:
  // keep the `keep` lowest-scoring updates.
  std::vector<double> scores = Scores(updates);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<size_t>(a)] < scores[static_cast<size_t>(b)];
  });
  order.resize(static_cast<size_t>(keep));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace pieck
