#ifndef PIECK_DEFENSE_REGULARIZED_DEFENSE_H_
#define PIECK_DEFENSE_REGULARIZED_DEFENSE_H_

#include <memory>
#include <vector>

#include "attack/popular_item_miner.h"
#include "fed/client.h"

namespace pieck {

/// Options for the paper's new defense (§V-B, Eq. 16):
///   L_def = L_i − β·Re1 − γ·Re2.
/// `enable_re1` / `enable_re2` drive the Table VI (right) ablation.
struct DefenseOptions {
  double beta = 2.0;   // weight of Re1 (popular/unpopular feature confusion)
  double gamma = 1.0;  // weight of Re2 (user vs popular-item separation)
  int mining_rounds = 2;  // R̃ for the benign client's own miner
  int mined_top_n = 10;   // N
  bool enable_re1 = true;
  bool enable_re2 = true;
};

/// The client-side regularization defense. Each benign user mines
/// popular items exactly like the attacker would (Algorithm 1, finding
/// F1), then adds two regularizers to its training loss:
///
///  Re1 (Eq. 14): weighted mean pairwise cosine similarity between the
///  embeddings of the user's unpopular batch items ΔD_i and the mined
///  popular items P_i. Maximizing it (the −β sign in Eq. 16) blurs the
///  distinctive features of popular items, so a target item can no
///  longer be counterfeited as popular (counters PIECK-IPE, finding F2).
///
///  Re2 (Eq. 15): weighted KL divergence between the user's embedding
///  and the mined popular items' embeddings. Maximizing it separates the
///  user-embedding distribution from the popular-item distribution, so
///  approximating users by popular items becomes inaccurate (counters
///  PIECK-UEA, finding F3).
///
/// κ'(v_k) is the normalized *exponential* inverse rank exp(−r)/Σexp(−r'),
/// concentrating the defense on the most popular items (paper fn. 9).
class RegularizedClientDefense : public ClientDefense {
 public:
  explicit RegularizedClientDefense(const DefenseOptions& options);

  void ObserveRound(const GlobalModel& g) override;
  void ApplyRegularizers(const GlobalModel& g, const Vec& u,
                         const std::vector<LabeledItem>& batch, Vec* grad_u,
                         ClientUpdate* update) override;
  int64_t FootprintBytes() const override { return miner_.FootprintBytes(); }

  /// Current value of Re1 for a batch (tests / diagnostics).
  double ComputeRe1(const GlobalModel& g,
                    const std::vector<LabeledItem>& batch) const;
  /// Current value of Re2 for a user embedding (tests / diagnostics).
  double ComputeRe2(const GlobalModel& g, const Vec& u) const;

  const PopularItemMiner& miner() const { return miner_; }
  const DefenseOptions& options() const { return options_; }

 private:
  /// κ' weights over the mined list.
  std::vector<double> ExponentialRankWeights(size_t m) const;
  /// Batch items not in the mined popular set (ΔD_i = D_i \ P_i).
  std::vector<int> UnpopularBatchItems(
      const std::vector<LabeledItem>& batch) const;

  DefenseOptions options_;
  PopularItemMiner miner_;
};

/// Factory installed on the ClientStateStore as its defense factory
/// (one lazily-created instance per participating user).
std::unique_ptr<ClientDefense> MakeRegularizedDefense(
    const DefenseOptions& options);

}  // namespace pieck

#endif  // PIECK_DEFENSE_REGULARIZED_DEFENSE_H_
