#ifndef PIECK_DEFENSE_ROBUST_AGGREGATORS_H_
#define PIECK_DEFENSE_ROBUST_AGGREGATORS_H_

#include "fed/aggregator.h"

namespace pieck {

// In FRS the no-defense aggregation is a plain SUM of the uploaded
// gradients (§III-A). The coordinate-wise robust rules below therefore
// return a *sum-calibrated* estimate, n × robust-location, so that
// installing a defense does not silently change the server's effective
// learning rate. The Krum family operates on whole client updates
// (as defined by Blanchard et al.) and is implemented as UpdateFilters.

/// NormBound (Sun et al., 2019): clips every uploaded gradient to an L2
/// budget before summing. Zero-copy: each gradient's clip factor is
/// computed from its squared norm and applied as the axpy scale, so no
/// clipped temporary is ever materialized.
class NormBoundAggregator : public Aggregator {
 public:
  using Aggregator::Aggregate;
  explicit NormBoundAggregator(double max_norm) : max_norm_(max_norm) {}
  std::string name() const override { return "NormBound"; }
  void Aggregate(const Vec* const* grads, size_t num_grads,
                 double* out) const override;

 private:
  double max_norm_;
};

/// Median (Yin et al., ICML 2018): n × coordinate-wise median. The
/// per-coordinate column gathers into a thread-local scratch buffer, so
/// concurrent per-item calls from the server's workers allocate nothing
/// after warm-up.
class MedianAggregator : public Aggregator {
 public:
  using Aggregator::Aggregate;
  std::string name() const override { return "Median"; }
  void Aggregate(const Vec* const* grads, size_t num_grads,
                 double* out) const override;
};

/// TrimmedMean (Yin et al., ICML 2018): per coordinate, removes the
/// `trim_fraction` largest and smallest values, then returns
/// n × the mean of the rest. Same thread-local column scratch as Median.
class TrimmedMeanAggregator : public Aggregator {
 public:
  using Aggregator::Aggregate;
  explicit TrimmedMeanAggregator(double trim_fraction)
      : trim_fraction_(trim_fraction) {}
  std::string name() const override { return "TrimmedMean"; }
  void Aggregate(const Vec* const* grads, size_t num_grads,
                 double* out) const override;

 private:
  double trim_fraction_;
};

/// Krum (Blanchard et al., NeurIPS 2017): keeps the single client update
/// with the smallest sum of squared distances to its n−f−2 nearest
/// neighbors. `assumed_malicious_fraction` sets f = round(fraction·n).
class KrumFilter : public UpdateFilter {
 public:
  explicit KrumFilter(double assumed_malicious_fraction)
      : fraction_(assumed_malicious_fraction) {}
  std::string name() const override { return "Krum"; }
  std::vector<int> Select(
      const std::vector<ClientUpdate>& updates) const override;

 protected:
  /// Krum scores for every update (sum of the k nearest squared
  /// distances); shared with MultiKrum.
  std::vector<double> Scores(const std::vector<ClientUpdate>& updates) const;

  double fraction_;
};

/// MultiKrum: iteratively applies Krum selection, discarding the 2f
/// least-similar updates, and keeps the rest.
class MultiKrumFilter : public KrumFilter {
 public:
  explicit MultiKrumFilter(double assumed_malicious_fraction)
      : KrumFilter(assumed_malicious_fraction) {}
  std::string name() const override { return "MultiKrum"; }
  std::vector<int> Select(
      const std::vector<ClientUpdate>& updates) const override;
};

}  // namespace pieck

#endif  // PIECK_DEFENSE_ROBUST_AGGREGATORS_H_
