#ifndef PIECK_DEFENSE_DEFENSE_H_
#define PIECK_DEFENSE_DEFENSE_H_

#include <memory>

#include "defense/regularized_defense.h"
#include "defense/robust_aggregators.h"
#include "fed/aggregator.h"

namespace pieck {

/// The defenses compared in Table IV. All but kOurs are server-side
/// aggregation rules; kOurs keeps the plain sum aggregation and instead
/// installs the client-side regularizers on every benign client.
enum class DefenseKind {
  kNoDefense,
  kNormBound,
  kMedian,
  kTrimmedMean,
  kKrum,
  kMultiKrum,
  kBulyan,
  kOurs,
  /// Extension (the paper's future-work direction): collaborative
  /// defense combining the client-side regularizers with server-side
  /// norm bounding. Closes the DL-FRS gap where embedding-space
  /// regularizers alone cannot stop interaction-function saturation.
  kOursPlusNormBound,
};

const char* DefenseKindToString(DefenseKind kind);

/// Parameters for the server-side baselines.
struct AggregatorParams {
  double norm_bound = 0.005;  // NormBound clipping budget (tuned)
  /// Assumed malicious fraction used by TrimmedMean / Krum / MultiKrum /
  /// Bulyan (the paper tunes these to the true p̃).
  double malicious_fraction = 0.05;
};

/// Server-side defense: an optional client-level filter (Krum family)
/// plus the per-parameter-group aggregation rule.
struct DefensePlan {
  std::unique_ptr<UpdateFilter> filter;  // may be null
  std::unique_ptr<Aggregator> aggregator;
};

/// Builds the server-side defense for `kind`. kOurs and kNoDefense both
/// return the plain sum (our defense lives on the clients).
DefensePlan MakeDefensePlan(DefenseKind kind, const AggregatorParams& params);

/// True if `kind` installs the client-side regularizers.
bool DefenseUsesClientRegularizers(DefenseKind kind);

}  // namespace pieck

#endif  // PIECK_DEFENSE_DEFENSE_H_
