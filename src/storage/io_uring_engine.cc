/// \file
/// Raw-syscall io_uring fault engine (no liburing dependency).
///
/// The ring is created with `io_uring_setup`, its submission/completion
/// queues mapped with the standard three-mmap protocol, and driven with
/// `io_uring_enter`. Each offset-contiguous run of rows becomes one
/// IORING_OP_READV / IORING_OP_WRITEV submission whose iovec gathers
/// the scattered cache frames, so a 512-row cohort costs a handful of
/// `io_uring_enter` calls with up to kIoUringDepth extents in flight.
/// The split-phase BeginReads/FinishReads contract lets the caller run
/// init-replay CPU work while the kernel services the reads.
#include "storage/io_uring_engine.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PIECK_HAVE_IO_URING 1
#endif

#if defined(PIECK_HAVE_IO_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace pieck {

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

template <typename T>
T* RingPtr(void* base, uint32_t off) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

class IoUringEngine final : public FaultEngine {
 public:
  static std::unique_ptr<FaultEngine> TryCreate(const MmapFile* file,
                                                size_t row_bytes) {
    auto engine =
        std::unique_ptr<IoUringEngine>(new IoUringEngine(file, row_bytes));
    if (!engine->InitRing()) return nullptr;
    return engine;
  }

  ~IoUringEngine() override {
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  IoEngineKind kind() const override { return IoEngineKind::kIoUring; }

  void ReadBatch(std::vector<RowIo>* ops) override {
    BeginReads(ops);
    FinishReads();
  }

  void WriteBatch(std::vector<RowIo>* ops) override {
    Begin(ops, /*write=*/true);
    Finish();
  }

  void BeginReads(std::vector<RowIo>* ops) override {
    Begin(ops, /*write=*/false);
    Pump(/*wait_for_all=*/false);
  }

  void FinishReads() override { Finish(); }

 private:
  IoUringEngine(const MmapFile* file, size_t row_bytes)
      : file_(file), row_bytes_(row_bytes) {}

  bool InitRing() {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = SysIoUringSetup(kIoUringDepth, &p);
    if (ring_fd_ < 0) return false;
    sq_entries_ = p.sq_entries;
    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if (p.features & IORING_FEAT_SINGLE_MMAP) {
      sq_ring_bytes_ = cq_ring_bytes_ =
          sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return false;
    }
    if (p.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return false;
      }
    }
    sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }
    sq_head_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.head);
    sq_tail_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.tail);
    sq_mask_ = *RingPtr<uint32_t>(sq_ring_, p.sq_off.ring_mask);
    sq_array_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.array);
    cq_head_ = RingPtr<uint32_t>(cq_ring_, p.cq_off.head);
    cq_tail_ = RingPtr<uint32_t>(cq_ring_, p.cq_off.tail);
    cq_mask_ = *RingPtr<uint32_t>(cq_ring_, p.cq_off.ring_mask);
    cqes_ = RingPtr<io_uring_cqe>(cq_ring_, p.cq_off.cqes);
    return true;
  }

  /// Sorts + coalesces `ops` and arms the run cursor. Caller's vector
  /// must stay alive until Finish() returns.
  void Begin(std::vector<RowIo>* ops, bool write) {
    PIECK_CHECK(!pending()) << "io_uring engine: batch already in flight";
    ops_ = ops;
    write_ = write;
    CoalesceRuns(ops_, row_bytes_, &run_ends_);
    iov_.resize(ops_->size());
    for (size_t i = 0; i < ops_->size(); ++i) {
      iov_[i].iov_base = (*ops_)[i].buf;
      iov_[i].iov_len = row_bytes_;
    }
    next_run_ = 0;
    done_runs_ = 0;
    inflight_ = 0;
    failed_runs_.clear();
  }

  bool pending() const { return ops_ != nullptr; }

  /// Submits queued runs while the ring has room and drains whatever
  /// completed. With `wait_for_all`, loops until every run finished.
  void Pump(bool wait_for_all) {
    while (true) {
      // Fill the submission queue from the run cursor.
      uint32_t head =
          __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      uint32_t tail = *sq_tail_;
      unsigned to_submit = 0;
      while (tail - head < sq_entries_ && next_run_ < run_ends_.size()) {
        const size_t begin = next_run_ == 0 ? 0 : run_ends_[next_run_ - 1];
        const size_t end = run_ends_[next_run_];
        const uint32_t idx = tail & sq_mask_;
        io_uring_sqe* sqe = &sqes_[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = write_ ? IORING_OP_WRITEV : IORING_OP_READV;
        sqe->fd = file_->fd();
        sqe->off = static_cast<uint64_t>((*ops_)[begin].offset);
        sqe->addr = reinterpret_cast<uint64_t>(&iov_[begin]);
        sqe->len = static_cast<uint32_t>(end - begin);
        sqe->user_data = static_cast<uint64_t>(next_run_);
        sq_array_[idx] = idx;
        ++tail;
        ++to_submit;
        ++next_run_;
        ++inflight_;
      }
      __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);

      const bool all_submitted = next_run_ >= run_ends_.size();
      const bool want_wait =
          inflight_ > 0 && (wait_for_all || !all_submitted);
      if (to_submit > 0 || want_wait) {
        const int ret = SysIoUringEnter(
            ring_fd_, to_submit, want_wait ? 1 : 0,
            want_wait ? IORING_ENTER_GETEVENTS : 0);
        if (ret < 0) {
          PIECK_CHECK(errno == EINTR || errno == EAGAIN)
              << "io_uring_enter failed: " << std::strerror(errno);
        }
      }

      // Drain the completion queue.
      uint32_t chead = *cq_head_;
      const uint32_t ctail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (chead != ctail) {
        const io_uring_cqe* cqe = &cqes_[chead & cq_mask_];
        const size_t run = static_cast<size_t>(cqe->user_data);
        const size_t begin = run == 0 ? 0 : run_ends_[run - 1];
        const size_t expected = (run_ends_[run] - begin) * row_bytes_;
        if (cqe->res != static_cast<int32_t>(expected)) {
          // Short or failed transfer: redo this run synchronously.
          failed_runs_.push_back(run);
        }
        ++chead;
        --inflight_;
        ++done_runs_;
      }
      __atomic_store_n(cq_head_, chead, __ATOMIC_RELEASE);

      if (wait_for_all) {
        if (done_runs_ >= run_ends_.size()) return;
      } else if (all_submitted || inflight_ < sq_entries_) {
        // Begin-phase: everything is queued (or there is still ring
        // room for the next fill attempt) — hand the CPU back.
        return;
      }
    }
  }

  void Finish() {
    if (!pending()) return;
    Pump(/*wait_for_all=*/true);
    // Runs the ring could not serve (short transfer, -EAGAIN, opcode
    // pressure) are completed synchronously — same bytes, slower path.
    for (const size_t run : failed_runs_) {
      const size_t begin = run == 0 ? 0 : run_ends_[run - 1];
      SyncRunIo(file_->fd(), ops_->data() + begin, run_ends_[run] - begin,
                row_bytes_, write_);
    }
    (write_ ? stats_.write_rows : stats_.read_rows) +=
        static_cast<int64_t>(ops_->size());
    (write_ ? stats_.write_runs : stats_.read_runs) +=
        static_cast<int64_t>(run_ends_.size());
    ops_ = nullptr;
  }

  const MmapFile* file_;
  size_t row_bytes_;

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // In-flight batch state (valid between Begin and Finish).
  std::vector<RowIo>* ops_ = nullptr;
  bool write_ = false;
  std::vector<size_t> run_ends_;
  std::vector<struct iovec> iov_;
  size_t next_run_ = 0;
  size_t done_runs_ = 0;
  unsigned inflight_ = 0;
  std::vector<size_t> failed_runs_;
};

}  // namespace

bool IoUringProbe() {
  static const bool supported = [] {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    const int fd = SysIoUringSetup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

std::unique_ptr<FaultEngine> MakeIoUringEngine(const MmapFile* file,
                                               size_t row_bytes) {
  if (!IoUringProbe()) return nullptr;
  return IoUringEngine::TryCreate(file, row_bytes);
}

}  // namespace pieck

#else  // !PIECK_HAVE_IO_URING

namespace pieck {

bool IoUringProbe() { return false; }

std::unique_ptr<FaultEngine> MakeIoUringEngine(const MmapFile*, size_t) {
  return nullptr;
}

}  // namespace pieck

#endif  // PIECK_HAVE_IO_URING
