#include "storage/hot_row_cache.h"

#include "common/logging.h"

namespace pieck {

void HotRowCache::Init(int64_t capacity_rows, size_t row_width) {
  PIECK_CHECK(capacity_rows > 0) << "hot-row cache needs capacity > 0";
  PIECK_CHECK(row_width > 0) << "hot-row cache needs row_width > 0";
  capacity_ = capacity_rows;
  row_width_ = row_width;
  cached_ = 0;
  pinned_ = 0;
  frames_.assign(static_cast<size_t>(capacity_) * row_width_, 0.0);
  row_of_.assign(static_cast<size_t>(capacity_), -1);
  ref_.assign(static_cast<size_t>(capacity_), 0);
  dirty_.assign(static_cast<size_t>(capacity_), 0);
  pin_.assign(static_cast<size_t>(capacity_), 0);
  // Shards only split the index to keep per-map sizes sane on big
  // caches; small caches stay single-shard so tiny-capacity edge cases
  // (capacity 1) behave like a plain CLOCK.
  int shards = capacity_ >= 8192 ? 16 : 1;
  if (shards > capacity_) shards = static_cast<int>(capacity_);
  shard_base_.assign(static_cast<size_t>(shards) + 1, 0);
  const int64_t per = capacity_ / shards;
  const int64_t rem = capacity_ % shards;
  for (int s = 0; s < shards; ++s) {
    shard_base_[static_cast<size_t>(s) + 1] =
        shard_base_[static_cast<size_t>(s)] + per + (s < rem ? 1 : 0);
  }
  hand_.assign(static_cast<size_t>(shards), 0);
  for (int s = 0; s < shards; ++s) {
    hand_[static_cast<size_t>(s)] = shard_base_[static_cast<size_t>(s)];
  }
  index_.assign(static_cast<size_t>(shards), {});
  shard_hits_ = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shard_hits_[static_cast<size_t>(s)].store(0, std::memory_order_relaxed);
  }
  shard_misses_.assign(static_cast<size_t>(shards), 0);
  shard_evictions_.assign(static_cast<size_t>(shards), 0);
}

int64_t HotRowCache::FindFrame(int64_t row) const {
  const int shard = ShardOf(row);
  const auto& map = index_[static_cast<size_t>(shard)];
  const auto it = map.find(row);
  if (it == map.end()) return -1;
  ref_[static_cast<size_t>(it->second)] = 1;
  shard_hits_[static_cast<size_t>(shard)].fetch_add(
      1, std::memory_order_relaxed);
  return it->second;
}

int64_t HotRowCache::PeekFrame(int64_t row) const {
  const auto& map = index_[static_cast<size_t>(ShardOf(row))];
  const auto it = map.find(row);
  return it == map.end() ? -1 : it->second;
}

int64_t HotRowCache::Acquire(int64_t row, Eviction* ev) {
  const int shard = ShardOf(row);
  auto& map = index_[static_cast<size_t>(shard)];
  PIECK_DCHECK(map.find(row) == map.end()) << "Acquire on a cached row";
  ++shard_misses_[static_cast<size_t>(shard)];
  const int64_t lo = shard_base_[static_cast<size_t>(shard)];
  const int64_t hi = shard_base_[static_cast<size_t>(shard) + 1];
  const int64_t span = hi - lo;
  int64_t hand = hand_[static_cast<size_t>(shard)];
  int64_t frame = -1;
  // CLOCK sweep: skip pinned frames, give referenced frames a second
  // chance. Two full sweeps clear every ref bit, so a third pass (the
  // fallback below) cannot miss an unpinned frame if one exists.
  for (int64_t step = 0; step < 2 * span && frame < 0; ++step) {
    const size_t f = static_cast<size_t>(hand);
    if (pin_[f] == 0) {
      if (row_of_[f] < 0 || ref_[f] == 0) {
        frame = hand;
      } else {
        ref_[f] = 0;
      }
    }
    hand = hand + 1 == hi ? lo : hand + 1;
  }
  if (frame < 0) {
    for (int64_t step = 0; step < span && frame < 0; ++step) {
      if (pin_[static_cast<size_t>(hand)] == 0) frame = hand;
      hand = hand + 1 == hi ? lo : hand + 1;
    }
  }
  PIECK_CHECK(frame >= 0)
      << "hot-row cache: every frame in the shard is pinned; "
         "increase cache_rows beyond the round cohort size";
  hand_[static_cast<size_t>(shard)] = hand;

  const size_t f = static_cast<size_t>(frame);
  Eviction out;
  if (row_of_[f] >= 0) {
    out.row = row_of_[f];
    out.dirty = dirty_[f] != 0;
    map.erase(row_of_[f]);
    --cached_;
    ++shard_evictions_[static_cast<size_t>(shard)];
  }
  if (ev != nullptr) *ev = out;
  // The victim's bytes are still in the frame: the caller writes them
  // back (if dirty) before filling in the new row.
  row_of_[f] = row;
  ref_[f] = 1;
  dirty_[f] = 0;
  map.emplace(row, frame);
  ++cached_;
  return frame;
}

void HotRowCache::Evict(int64_t frame) {
  const size_t f = static_cast<size_t>(frame);
  PIECK_DCHECK(pin_[f] == 0) << "evicting a pinned frame";
  if (row_of_[f] < 0) return;
  index_[static_cast<size_t>(ShardOf(row_of_[f]))].erase(row_of_[f]);
  row_of_[f] = -1;
  ref_[f] = 0;
  dirty_[f] = 0;
  --cached_;
}

void HotRowCache::Pin(int64_t frame) {
  const size_t f = static_cast<size_t>(frame);
  PIECK_DCHECK(row_of_[f] >= 0) << "pinning a free frame";
  if (pin_[f] == 0) {
    pin_[f] = 1;
    ++pinned_;
  }
}

void HotRowCache::Unpin(int64_t frame) {
  const size_t f = static_cast<size_t>(frame);
  if (pin_[f] != 0) {
    pin_[f] = 0;
    --pinned_;
  }
}

HotRowCache::ShardCounters HotRowCache::shard_counters(int s) const {
  ShardCounters c;
  c.hits = shard_hits_[static_cast<size_t>(s)].load(std::memory_order_relaxed);
  c.misses = shard_misses_[static_cast<size_t>(s)];
  c.evictions = shard_evictions_[static_cast<size_t>(s)];
  return c;
}

int64_t HotRowCache::ResidentBytes() const {
  int64_t bytes = static_cast<int64_t>(frames_.capacity() * sizeof(double)) +
                  static_cast<int64_t>(row_of_.capacity() * sizeof(int64_t)) +
                  static_cast<int64_t>(ref_.capacity()) +
                  static_cast<int64_t>(dirty_.capacity()) +
                  static_cast<int64_t>(pin_.capacity());
  for (const auto& map : index_) {
    // Rough per-entry footprint of the node-based hash map.
    bytes += static_cast<int64_t>(map.size()) *
             static_cast<int64_t>(sizeof(int64_t) * 2 + sizeof(void*) * 2);
  }
  return bytes;
}

}  // namespace pieck
