/// \file
/// RAII wrapper around a file-backed shared memory mapping.
///
/// The tiered storage layer keeps its big tables in sparse files mapped
/// MAP_SHARED: writes land in the kernel page cache (the canonical
/// copy), `Sync` makes them durable, and `AdviseDontNeed` drops this
/// process's resident pages *without losing data* — dirty shared
/// file-backed pages stay in the page cache and refault on next access.
/// That last property is what bounds RSS on populations far larger than
/// memory while keeping every byte readable.
#ifndef PIECK_STORAGE_MMAP_FILE_H_
#define PIECK_STORAGE_MMAP_FILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/status_or.h"

namespace pieck {

class MmapFile {
 public:
  enum class Mode {
    kCreate,  // truncate fresh, then size to `bytes` (a sparse hole)
    kAttach,  // keep existing contents, extend to `bytes` if shorter
  };

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-write at exactly `bytes` bytes. `bytes` == 0 is
  /// allowed and yields a valid, empty mapping (data() == nullptr).
  static StatusOr<MmapFile> Map(const std::string& path, int64_t bytes,
                                Mode mode);

  /// Maps an existing file read-only at its current size.
  static StatusOr<MmapFile> MapReadOnly(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  void* data() { return data_; }
  const void* data() const { return data_; }
  int64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// The open file descriptor behind the mapping (-1 when invalid). The
  /// batched fault engines pread/pwrite through it; position-less I/O,
  /// so sharing the descriptor across threads is safe.
  int fd() const { return fd_; }

  /// msync(MS_SYNC): all written pages are durable on return.
  Status Sync();

  /// madvise(WILLNEED) on the page-aligned range covering
  /// [offset, offset + length). Advisory; safe from any thread.
  void AdviseWillNeed(int64_t offset, int64_t length) const;

  /// madvise(DONTNEED) on the whole mapping: drops this process's
  /// resident pages. Data is preserved (shared file-backed mapping);
  /// later accesses refault from the page cache / file.
  void AdviseDontNeed() const;

  /// Ranged DONTNEED on the page-aligned range covering
  /// [offset, offset + length): drops only those resident pages, so a
  /// caller that knows which pages it touched can trim them without
  /// walking the whole (possibly huge, sparse) mapping.
  void AdviseDontNeed(int64_t offset, int64_t length) const;

  /// Unmaps and closes. Idempotent.
  void Close();

 private:
  void* data_ = nullptr;
  int64_t size_ = 0;
  int fd_ = -1;
  std::string path_;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_MMAP_FILE_H_
