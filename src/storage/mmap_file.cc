#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pieck {

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      fd_(other.fd_),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.fd_ = -1;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    size_ = other.size_;
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.fd_ = -1;
  }
  return *this;
}

#if defined(_WIN32)

StatusOr<MmapFile> MmapFile::Map(const std::string&, int64_t, Mode) {
  return Status::Unimplemented("mmap storage is POSIX-only");
}
StatusOr<MmapFile> MmapFile::MapReadOnly(const std::string&) {
  return Status::Unimplemented("mmap storage is POSIX-only");
}
Status MmapFile::Sync() {
  return Status::Unimplemented("mmap storage is POSIX-only");
}
void MmapFile::AdviseWillNeed(int64_t, int64_t) const {}
void MmapFile::AdviseDontNeed() const {}
void MmapFile::AdviseDontNeed(int64_t, int64_t) const {}
void MmapFile::Close() {}

#else

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<MmapFile> MmapFile::Map(const std::string& path, int64_t bytes,
                                 Mode mode) {
  if (bytes < 0) return Status::InvalidArgument("negative mapping size");
  int flags = O_RDWR | O_CREAT;
  if (mode == Mode::kCreate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  MmapFile f;
  f.fd_ = fd;
  f.path_ = path;
  f.size_ = bytes;
  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat", path);
  // kCreate starts from zero length; kAttach keeps existing contents
  // and only grows the file (sparse) to the requested size.
  if (st.st_size < bytes && ::ftruncate(fd, bytes) != 0) {
    return Errno("ftruncate", path);
  }
  if (mode == Mode::kAttach && st.st_size > bytes) {
    return Status::InvalidArgument("attach: " + path +
                                   " is larger than the requested mapping");
  }
  if (bytes > 0) {
    void* p = ::mmap(nullptr, static_cast<size_t>(bytes),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) return Errno("mmap", path);
    f.data_ = p;
  }
  return StatusOr<MmapFile>(std::move(f));
}

StatusOr<MmapFile> MmapFile::MapReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  MmapFile f;
  f.fd_ = fd;
  f.path_ = path;
  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat", path);
  f.size_ = static_cast<int64_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, static_cast<size_t>(f.size_), PROT_READ,
                     MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) return Errno("mmap", path);
    f.data_ = p;
  }
  return StatusOr<MmapFile>(std::move(f));
}

Status MmapFile::Sync() {
  if (data_ == nullptr) return Status::OK();
  if (::msync(data_, static_cast<size_t>(size_), MS_SYNC) != 0) {
    return Errno("msync", path_);
  }
  return Status::OK();
}

void MmapFile::AdviseWillNeed(int64_t offset, int64_t length) const {
  if (data_ == nullptr || length <= 0) return;
  const int64_t page = static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
  int64_t lo = (offset / page) * page;
  int64_t hi = offset + length;
  if (lo < 0) lo = 0;
  if (hi > size_) hi = size_;
  if (hi <= lo) return;
  ::madvise(static_cast<char*>(data_) + lo, static_cast<size_t>(hi - lo),
            MADV_WILLNEED);
}

void MmapFile::AdviseDontNeed() const {
  if (data_ == nullptr) return;
  ::madvise(data_, static_cast<size_t>(size_), MADV_DONTNEED);
}

void MmapFile::AdviseDontNeed(int64_t offset, int64_t length) const {
  if (data_ == nullptr || length <= 0) return;
  const int64_t page = static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
  int64_t lo = (offset / page) * page;
  int64_t hi = ((offset + length + page - 1) / page) * page;
  if (lo < 0) lo = 0;
  if (hi > size_) hi = size_;
  if (hi <= lo) return;
  ::madvise(static_cast<char*>(data_) + lo, static_cast<size_t>(hi - lo),
            MADV_DONTNEED);
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

#endif  // _WIN32

}  // namespace pieck
