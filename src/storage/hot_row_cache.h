/// \file
/// Sharded CLOCK cache of fixed-width double rows.
///
/// The mmap storage backend keeps the working set of user-embedding
/// rows in this cache: one contiguous frame arena plus per-frame
/// metadata, partitioned into shards (row -> shard by modulo) each with
/// its own index map and CLOCK hand. Frames a round has *pinned* are
/// never evicted — the round fan-out reads and writes them lock-free
/// through stable pointers while no other cache mutation runs.
///
/// Thread-safety contract (mirrors ClientStateStore::PrepareRound):
/// every structural mutation — Acquire (fault/evict), Pin, Unpin — is
/// single-owner. `FindFrame` and the per-frame bit accessors may run
/// concurrently from the round fan-out for *distinct rows*: they touch
/// only the immutable index and that frame's own metadata bytes.
///
/// Eviction policy is deliberately decoupled from correctness: whatever
/// the CLOCK hand evicts, a refault restores the identical bytes (from
/// the backing file or the seed-keyed init replay), so the policy can
/// change freely without perturbing any simulation result.
#ifndef PIECK_STORAGE_HOT_ROW_CACHE_H_
#define PIECK_STORAGE_HOT_ROW_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace pieck {

class HotRowCache {
 public:
  /// What Acquire displaced (row == -1 when the frame was free).
  struct Eviction {
    int64_t row = -1;
    bool dirty = false;
  };

  /// Per-shard telemetry. Hits are counted in FindFrame (so the round
  /// fan-out's concurrent lookups are included), misses and evictions in
  /// Acquire; summed over shards they match the store-level counters. A
  /// skewed hit-rate across shards means the modulo placement is fighting
  /// the access pattern (tools/check_bench_json.py flags it).
  struct ShardCounters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// Arms the cache: `capacity_rows` frames of `row_width` doubles.
  /// Shard count is derived (1 for small caches, up to 16) — it only
  /// partitions the index, never changes behavior.
  void Init(int64_t capacity_rows, size_t row_width);

  int64_t capacity() const { return capacity_; }
  size_t row_width() const { return row_width_; }
  int num_shards() const { return static_cast<int>(shard_base_.size()) - 1; }
  int64_t cached_rows() const { return cached_; }
  int64_t pinned_rows() const { return pinned_; }

  /// Frame holding `row`, or -1. Sets the frame's CLOCK reference bit
  /// and counts a shard hit when found. Safe concurrently for distinct
  /// rows while no mutation runs.
  int64_t FindFrame(int64_t row) const;

  /// Like FindFrame but side-effect free: no reference bit, no counter.
  /// For scans (snapshot, ensure-all) that should not skew telemetry or
  /// the CLOCK state.
  int64_t PeekFrame(int64_t row) const;

  /// Single-owner: claims a frame for `row` (which must not be cached),
  /// evicting an unpinned victim if the shard is full. The victim's
  /// data is still in the frame on return so the caller can write it
  /// back before overwriting; its identity is reported in `*ev`. Aborts
  /// if every frame of the row's shard is pinned (cache_rows too small
  /// for the cohort).
  int64_t Acquire(int64_t row, Eviction* ev);

  /// Single-owner: removes `frame` from the index (its row refaults
  /// later). The caller handles write-back first.
  void Evict(int64_t frame);

  double* FrameData(int64_t frame) {
    return frames_.data() + static_cast<size_t>(frame) * row_width_;
  }
  const double* FrameData(int64_t frame) const {
    return frames_.data() + static_cast<size_t>(frame) * row_width_;
  }
  int64_t FrameRow(int64_t frame) const {
    return row_of_[static_cast<size_t>(frame)];
  }

  bool Dirty(int64_t frame) const {
    return dirty_[static_cast<size_t>(frame)] != 0;
  }
  /// Safe concurrently for distinct frames (one byte per frame).
  void SetDirty(int64_t frame) { dirty_[static_cast<size_t>(frame)] = 1; }
  void ClearDirty(int64_t frame) { dirty_[static_cast<size_t>(frame)] = 0; }

  bool Pinned(int64_t frame) const {
    return pin_[static_cast<size_t>(frame)] != 0;
  }
  void Pin(int64_t frame);
  void Unpin(int64_t frame);

  /// Heap bytes of the frame arena, metadata, and index (telemetry).
  int64_t ResidentBytes() const;

  ShardCounters shard_counters(int s) const;

  /// Shard owning `row` (exposed so callers can label per-shard stats).
  int ShardOfRow(int64_t row) const { return ShardOf(row); }

 private:
  int ShardOf(int64_t row) const {
    return static_cast<int>(row % static_cast<int64_t>(num_shards()));
  }

  int64_t capacity_ = 0;
  size_t row_width_ = 0;
  int64_t cached_ = 0;
  int64_t pinned_ = 0;
  std::vector<double> frames_;              // capacity x row_width
  std::vector<int64_t> row_of_;             // -1 = free frame
  mutable std::vector<uint8_t> ref_;        // CLOCK reference bits
  std::vector<uint8_t> dirty_;
  std::vector<uint8_t> pin_;
  std::vector<int64_t> shard_base_;         // shard s owns frames
                                            // [base[s], base[s+1])
  std::vector<int64_t> hand_;               // per-shard CLOCK hand
  std::vector<std::unordered_map<int64_t, int64_t>> index_;  // row -> frame
  // Hits are bumped from concurrent FindFrame calls → atomic; misses and
  // evictions only move under the single-owner Acquire.
  mutable std::unique_ptr<std::atomic<int64_t>[]> shard_hits_;
  std::vector<int64_t> shard_misses_;
  std::vector<int64_t> shard_evictions_;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_HOT_ROW_CACHE_H_
