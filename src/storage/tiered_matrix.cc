#include "storage/tiered_matrix.h"

#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/logging.h"

namespace pieck {

namespace {

// "PIECKTM1" little-endian: versions the rows.meta layout.
constexpr uint64_t kMetaMagic = 0x314d544b43454950ull;

bool TestBit(const std::vector<uint64_t>& bits, int64_t i) {
  return (bits[static_cast<size_t>(i >> 6)] >>
          (static_cast<uint64_t>(i) & 63)) &
         1;
}

void SetBit(std::vector<uint64_t>* bits, int64_t i) {
  (*bits)[static_cast<size_t>(i >> 6)] |= uint64_t{1}
                                          << (static_cast<uint64_t>(i) & 63);
}

}  // namespace

Status TieredMatrix::Init(int64_t rows, size_t cols,
                          const StorageConfig& config,
                          std::shared_ptr<StoreDir> dir,
                          const std::string& file_name, InitFn init_fn) {
  PIECK_CHECK(rows >= 0 && cols > 0) << "TieredMatrix: bad shape";
  if (Status st = config.Validate(); !st.ok()) return st;
  kind_ = config.kind;
  rows_ = rows;
  cols_ = cols;
  init_fn_ = std::move(init_fn);
  init_count_.store(0, std::memory_order_relaxed);

  if (kind_ == StorageKind::kRam) {
    ram_ = Matrix(static_cast<size_t>(rows_), cols_);
    ram_init_.assign(static_cast<size_t>(rows_), 0);
    return Status::OK();
  }

  PIECK_CHECK(dir != nullptr) << "mmap TieredMatrix needs a StoreDir";
  dir_ = std::move(dir);
  resident_budget_bytes_ = config.resident_budget_bytes;

  int64_t cache_rows = config.cache_rows > 0 ? config.cache_rows : 65536;
  if (cache_rows > rows_ && rows_ > 0) cache_rows = rows_;
  if (cache_rows < 1) cache_rows = 1;
  cache_.Init(cache_rows, cols_);
  pinned_frames_.reserve(static_cast<size_t>(cache_rows));

  const size_t words = static_cast<size_t>((rows_ + 63) >> 6);
  persisted_.assign(words, 0);
  materialized_.assign(words, 0);

  const int64_t bytes = rows_ * static_cast<int64_t>(cols_ * sizeof(double));
  auto mapped = MmapFile::Map(
      dir_->FilePath(file_name), bytes,
      config.attach ? MmapFile::Mode::kAttach : MmapFile::Mode::kCreate);
  if (!mapped.ok()) return mapped.status();
  file_ = std::move(*mapped);
  meta_path_ = dir_->FilePath(file_name + ".meta");
  if (config.attach) {
    if (Status st = LoadMeta(meta_path_); !st.ok()) return st;
  }
  return Status::OK();
}

Status TieredMatrix::LoadMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // fresh dir: nothing persisted yet
  uint64_t header[3] = {0, 0, 0};
  bool ok = std::fread(header, sizeof(uint64_t), 3, f) == 3;
  ok = ok && header[0] == kMetaMagic &&
       header[1] == static_cast<uint64_t>(rows_) &&
       header[2] == static_cast<uint64_t>(cols_);
  ok = ok && std::fread(persisted_.data(), sizeof(uint64_t),
                        persisted_.size(), f) == persisted_.size();
  std::fclose(f);
  if (!ok) {
    return Status::IoError("corrupt or mismatched store metadata: " + path);
  }
  return Status::OK();
}

void TieredMatrix::ReadFileRow(int64_t r, double* dst) const {
  const size_t row_bytes = cols_ * sizeof(double);
  std::memcpy(dst,
              static_cast<const char*>(file_.data()) +
                  static_cast<size_t>(r) * row_bytes,
              row_bytes);
  touched_file_bytes_ += static_cast<int64_t>(row_bytes);
  MaybeTrim();
}

void TieredMatrix::WriteFileRow(int64_t r, const double* src) {
  const size_t row_bytes = cols_ * sizeof(double);
  std::memcpy(static_cast<char*>(file_.data()) +
                  static_cast<size_t>(r) * row_bytes,
              src, row_bytes);
  touched_file_bytes_ += static_cast<int64_t>(row_bytes);
  MaybeTrim();
}

void TieredMatrix::MaybeTrim() const {
  if (touched_file_bytes_ < resident_budget_bytes_) return;
  file_.AdviseDontNeed();
  touched_file_bytes_ = 0;
}

void TieredMatrix::MaterializeInto(int64_t r, double* dst) {
  init_fn_(r, dst);
  ++rematerializations_;
  if (!TestBit(materialized_, r)) {
    SetBit(&materialized_, r);
    init_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

int64_t TieredMatrix::Fault(int64_t r) {
  int64_t frame = cache_.FindFrame(r);
  if (frame >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  ++misses_;
  HotRowCache::Eviction ev;
  frame = cache_.Acquire(r, &ev);
  double* data = cache_.FrameData(frame);
  if (ev.row >= 0) {
    ++evictions_;
    if (ev.dirty) {
      // Victim bytes are still in the frame; persist before overwrite.
      WriteFileRow(ev.row, data);
      SetPersisted(ev.row);
      ++writebacks_;
    }
  }
  if (Persisted(r)) {
    ReadFileRow(r, data);
  } else {
    MaterializeInto(r, data);
  }
  return frame;
}

const double* TieredMatrix::Row(int64_t r) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    if (ram_init_[i] == 0) {
      init_fn_(r, ram_.MutableRowPtr(i));
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return ram_.RowPtr(i);
  }
  return cache_.FrameData(Fault(r));
}

double* TieredMatrix::MutableRow(int64_t r) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    if (ram_init_[i] == 0) {
      init_fn_(r, ram_.MutableRowPtr(i));
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return ram_.MutableRowPtr(i);
  }
  const int64_t frame = Fault(r);
  cache_.SetDirty(frame);
  return cache_.FrameData(frame);
}

void TieredMatrix::SetRow(int64_t r, const double* v) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    std::memcpy(ram_.MutableRowPtr(i), v, cols_ * sizeof(double));
    if (ram_init_[i] == 0) {
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // The value is fully supplied, so skip the init replay: claim a frame
  // directly (still writing back any dirty victim) and overwrite.
  int64_t frame = cache_.FindFrame(r);
  if (frame >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++misses_;
    HotRowCache::Eviction ev;
    frame = cache_.Acquire(r, &ev);
    if (ev.row >= 0) {
      ++evictions_;
      if (ev.dirty) {
        WriteFileRow(ev.row, cache_.FrameData(frame));
        SetPersisted(ev.row);
        ++writebacks_;
      }
    }
  }
  std::memcpy(cache_.FrameData(frame), v, cols_ * sizeof(double));
  cache_.SetDirty(frame);
  if (!TestBit(materialized_, r)) {
    SetBit(&materialized_, r);
    init_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TieredMatrix::PinRows(const std::vector<int>& rows) {
  if (kind_ == StorageKind::kRam) {
    for (const int r : rows) Row(r);
    return;
  }
  PIECK_CHECK(static_cast<int64_t>(rows.size()) <= cache_.capacity())
      << "round cohort exceeds the hot-row cache; raise cache_rows";
  for (const int r : rows) {
    const int64_t frame = Fault(r);
    if (!cache_.Pinned(frame)) {
      cache_.Pin(frame);
      pinned_frames_.push_back(frame);
    }
  }
}

void TieredMatrix::FlushPinned(DirtyRowSet* out) {
  if (kind_ == StorageKind::kRam) return;
  for (const int64_t frame : pinned_frames_) {
    if (cache_.Dirty(frame)) {
      const int64_t r = cache_.FrameRow(frame);
      WriteFileRow(r, cache_.FrameData(frame));
      SetPersisted(r);
      cache_.ClearDirty(frame);
      ++writebacks_;
      if (out != nullptr) out->Add(static_cast<int>(r));
    }
    cache_.Unpin(frame);
  }
  pinned_frames_.clear();
}

void TieredMatrix::FlushAll(DirtyRowSet* out) {
  if (kind_ == StorageKind::kRam) return;
  for (int64_t frame = 0; frame < cache_.capacity(); ++frame) {
    if (cache_.FrameRow(frame) < 0 || !cache_.Dirty(frame)) continue;
    const int64_t r = cache_.FrameRow(frame);
    WriteFileRow(r, cache_.FrameData(frame));
    SetPersisted(r);
    cache_.ClearDirty(frame);
    ++writebacks_;
    if (out != nullptr) out->Add(static_cast<int>(r));
  }
}

Status TieredMatrix::Checkpoint() {
  if (kind_ == StorageKind::kRam) return Status::OK();
  FlushAll(nullptr);
  // Ordering: data durable first, then the metadata that claims it.
  if (Status st = file_.Sync(); !st.ok()) return st;
  const std::string tmp = meta_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open " + tmp);
  const uint64_t header[3] = {kMetaMagic, static_cast<uint64_t>(rows_),
                              static_cast<uint64_t>(cols_)};
  bool ok = std::fwrite(header, sizeof(uint64_t), 3, f) == 3;
  ok = ok && std::fwrite(persisted_.data(), sizeof(uint64_t),
                         persisted_.size(), f) == persisted_.size();
  ok = ok && std::fflush(f) == 0;
#if !defined(_WIN32)
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IoError("write " + tmp);
  if (std::rename(tmp.c_str(), meta_path_.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + meta_path_);
  }
  return Status::OK();
}

void TieredMatrix::Prefetch(const std::vector<int>& rows) {
  for (const int r : rows) PrefetchRow(r);
}

void TieredMatrix::PrefetchRow(int64_t row) {
  if (kind_ == StorageKind::kRam || row < 0 || row >= rows_) return;
  const int64_t row_bytes = static_cast<int64_t>(cols_ * sizeof(double));
  file_.AdviseWillNeed(row * row_bytes, row_bytes);
  prefetched_.fetch_add(1, std::memory_order_relaxed);
}

void TieredMatrix::SnapshotInto(Matrix* out) const {
  if (out->rows() != static_cast<size_t>(rows_) || out->cols() != cols_) {
    *out = Matrix(static_cast<size_t>(rows_), cols_);
  }
  if (kind_ == StorageKind::kRam) {
    for (int64_t r = 0; r < rows_; ++r) {
      const size_t i = static_cast<size_t>(r);
      if (ram_init_[i] != 0) {
        std::memcpy(out->MutableRowPtr(i), ram_.RowPtr(i),
                    cols_ * sizeof(double));
      } else {
        init_fn_(r, out->MutableRowPtr(i));
      }
    }
    return;
  }
  for (int64_t r = 0; r < rows_; ++r) {
    double* dst = out->MutableRowPtr(static_cast<size_t>(r));
    const int64_t frame = cache_.FindFrame(r);
    if (frame >= 0) {
      std::memcpy(dst, cache_.FrameData(frame), cols_ * sizeof(double));
    } else if (Persisted(r)) {
      ReadFileRow(r, dst);
    } else {
      init_fn_(r, dst);
    }
  }
}

void TieredMatrix::EnsureAll(ThreadPool* pool) {
  if (kind_ == StorageKind::kRam) {
    ThreadPool::ParallelForOrSerial(
        pool, static_cast<size_t>(rows_), [this](size_t i) {
          if (ram_init_[i] == 0) {
            init_fn_(static_cast<int64_t>(i), ram_.MutableRowPtr(i));
            ram_init_[i] = 1;
            init_count_.fetch_add(1, std::memory_order_relaxed);
          }
        });
    return;
  }
  std::vector<double> scratch(cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    if (Persisted(r) || cache_.FindFrame(r) >= 0) continue;
    MaterializeInto(r, scratch.data());
    WriteFileRow(r, scratch.data());
    SetPersisted(r);
  }
}

int64_t TieredMatrix::ResidentBytes() const {
  if (kind_ == StorageKind::kRam) {
    return static_cast<int64_t>(ram_.data().capacity() * sizeof(double)) +
           static_cast<int64_t>(ram_init_.capacity());
  }
  return cache_.ResidentBytes() +
         static_cast<int64_t>(persisted_.capacity() * sizeof(uint64_t)) +
         static_cast<int64_t>(materialized_.capacity() * sizeof(uint64_t)) +
         static_cast<int64_t>(pinned_frames_.capacity() * sizeof(int64_t));
}

int64_t TieredMatrix::BackingBytes() const {
  return kind_ == StorageKind::kMmap ? file_.size() : 0;
}

StorageCounters TieredMatrix::counters() const {
  StorageCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_;
  c.evictions = evictions_;
  c.writebacks = writebacks_;
  c.rematerializations = rematerializations_;
  c.prefetched_rows = prefetched_.load(std::memory_order_relaxed);
  return c;
}

bool TieredMatrix::initialized(int64_t r) const {
  if (kind_ == StorageKind::kRam) {
    return ram_init_[static_cast<size_t>(r)] != 0;
  }
  return TestBit(materialized_, r);
}

}  // namespace pieck
