#include "storage/tiered_matrix.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/logging.h"

namespace pieck {

namespace {

// "PIECKTM1" little-endian: versions the rows.meta layout.
constexpr uint64_t kMetaMagic = 0x314d544b43454950ull;

// Staging trust tracking: per-generation write sets saturate at this
// size; a saturated generation distrusts every staged row (correct,
// just slower for one round).
constexpr size_t kRecentWriteCap = 65536;

// mmap-touch trim tracking: beyond this many distinct touched pages the
// tracker falls back to a whole-mapping DONTNEED (the pre-ranged
// behavior).
constexpr size_t kTouchedPageCap = 65536;

bool TestBit(const std::vector<uint64_t>& bits, int64_t i) {
  return (bits[static_cast<size_t>(i >> 6)] >>
          (static_cast<uint64_t>(i) & 63)) &
         1;
}

void SetBit(std::vector<uint64_t>* bits, int64_t i) {
  (*bits)[static_cast<size_t>(i >> 6)] |= uint64_t{1}
                                          << (static_cast<uint64_t>(i) & 63);
}

}  // namespace

Status TieredMatrix::Init(int64_t rows, size_t cols,
                          const StorageConfig& config,
                          std::shared_ptr<StoreDir> dir,
                          const std::string& file_name, InitFn init_fn) {
  PIECK_CHECK(rows >= 0 && cols > 0) << "TieredMatrix: bad shape";
  if (Status st = config.Validate(); !st.ok()) return st;
  kind_ = config.kind;
  rows_ = rows;
  cols_ = cols;
  init_fn_ = std::move(init_fn);
  init_count_.store(0, std::memory_order_relaxed);

  if (kind_ == StorageKind::kRam) {
    ram_ = Matrix(static_cast<size_t>(rows_), cols_);
    ram_init_.assign(static_cast<size_t>(rows_), 0);
    return Status::OK();
  }

  PIECK_CHECK(dir != nullptr) << "mmap TieredMatrix needs a StoreDir";
  dir_ = std::move(dir);
  resident_budget_bytes_ = config.resident_budget_bytes;
#if !defined(_WIN32)
  page_bytes_ = static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
#endif

  int64_t cache_rows = config.cache_rows > 0 ? config.cache_rows : 65536;
  if (cache_rows > rows_ && rows_ > 0) cache_rows = rows_;
  if (cache_rows < 1) cache_rows = 1;
  cache_.Init(cache_rows, cols_);
  pinned_frames_.reserve(static_cast<size_t>(cache_rows));

  const size_t words = static_cast<size_t>((rows_ + 63) >> 6);
  persisted_.assign(words, 0);
  materialized_.assign(words, 0);

  const int64_t bytes = rows_ * static_cast<int64_t>(cols_ * sizeof(double));
  auto mapped = MmapFile::Map(
      dir_->FilePath(file_name), bytes,
      config.attach ? MmapFile::Mode::kAttach : MmapFile::Mode::kCreate);
  if (!mapped.ok()) return mapped.status();
  file_ = std::move(*mapped);
  meta_path_ = dir_->FilePath(file_name + ".meta");
  if (config.attach) {
    if (Status st = LoadMeta(meta_path_); !st.ok()) return st;
  }

  const size_t row_bytes = cols_ * sizeof(double);
  io_engine_ = ResolveIoEngine(config.io_engine);
  engine_ = MakeFaultEngine(io_engine_, &file_, row_bytes);
  // The select thread stages through its own engine (positioned reads
  // only, so sharing the fd with the driver's engine is safe). The
  // mmap-touch engine gets no staging: a cross-thread memcpy through
  // the shared mapping would race the driver's in-mapping writes.
  stage_engine_ = io_engine_ != IoEngineKind::kMmapTouch
                      ? MakeFaultEngine(IoEngineKind::kPreadBatch, &file_,
                                        row_bytes)
                      : nullptr;
  for (StageSlot& slot : stage_slots_) {
    slot.rows.clear();
    slot.bytes.clear();
    slot.armed_gen = 0;
    slot.full.store(false, std::memory_order_relaxed);
  }
  prepare_gen_.store(0, std::memory_order_relaxed);
  bulk_write_gen_ = 0;
  recent_writes_[0].clear();
  recent_writes_[1].clear();
  recent_saturated_[0] = recent_saturated_[1] = false;
  return Status::OK();
}

Status TieredMatrix::LoadMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // fresh dir: nothing persisted yet
  uint64_t header[3] = {0, 0, 0};
  bool ok = std::fread(header, sizeof(uint64_t), 3, f) == 3;
  ok = ok && header[0] == kMetaMagic &&
       header[1] == static_cast<uint64_t>(rows_) &&
       header[2] == static_cast<uint64_t>(cols_);
  ok = ok && std::fread(persisted_.data(), sizeof(uint64_t),
                        persisted_.size(), f) == persisted_.size();
  std::fclose(f);
  if (!ok) {
    return Status::IoError("corrupt or mismatched store metadata: " + path);
  }
  return Status::OK();
}

void TieredMatrix::NoteTouched(const std::vector<RowIo>& ops) const {
  if (io_engine_ != IoEngineKind::kMmapTouch || ops.empty()) return;
  const int64_t row_bytes = static_cast<int64_t>(cols_ * sizeof(double));
  touched_file_bytes_ += static_cast<int64_t>(ops.size()) * row_bytes;
  if (!touched_overflow_) {
    for (const RowIo& op : ops) {
      const int64_t first = op.offset / page_bytes_;
      const int64_t last = (op.offset + row_bytes - 1) / page_bytes_;
      for (int64_t p = first; p <= last; ++p) {
        touched_pages_.insert(p);
      }
      if (touched_pages_.size() > kTouchedPageCap) {
        touched_overflow_ = true;
        break;
      }
    }
  }
  MaybeTrim();
}

void TieredMatrix::MaybeTrim() const {
  if (touched_file_bytes_ < resident_budget_bytes_) return;
  if (touched_overflow_) {
    file_.AdviseDontNeed();
  } else {
    // Drop exactly the pages this process populated, as merged ranges,
    // instead of sweeping the whole multi-GB mapping.
    trim_pages_.assign(touched_pages_.begin(), touched_pages_.end());
    std::sort(trim_pages_.begin(), trim_pages_.end());
    size_t i = 0;
    while (i < trim_pages_.size()) {
      size_t j = i;
      while (j + 1 < trim_pages_.size() &&
             trim_pages_[j + 1] == trim_pages_[j] + 1) {
        ++j;
      }
      file_.AdviseDontNeed(trim_pages_[i] * page_bytes_,
                           (trim_pages_[j] - trim_pages_[i] + 1) *
                               page_bytes_);
      i = j + 1;
    }
  }
  ++trims_;
  touched_pages_.clear();
  touched_overflow_ = false;
  touched_file_bytes_ = 0;
}

void TieredMatrix::RecordWrite(int64_t r) {
  if (stage_engine_ == nullptr) return;
  const size_t p =
      static_cast<size_t>(prepare_gen_.load(std::memory_order_relaxed) & 1);
  if (recent_saturated_[p]) return;
  if (recent_writes_[p].size() >= kRecentWriteCap) {
    recent_saturated_[p] = true;
    return;
  }
  recent_writes_[p].insert(r);
}

void TieredMatrix::ReadFileRow(int64_t r, double* dst) const {
  single_ops_.assign(1, RowIo{OffsetOf(r), dst});
  engine_->ReadBatch(&single_ops_);
  NoteTouched(single_ops_);
}

void TieredMatrix::WriteFileRow(int64_t r, const double* src) {
  single_ops_.assign(1, RowIo{OffsetOf(r), const_cast<double*>(src)});
  engine_->WriteBatch(&single_ops_);
  NoteTouched(single_ops_);
  RecordWrite(r);
}

void TieredMatrix::MaterializeInto(int64_t r, double* dst) {
  init_fn_(r, dst);
  ++rematerializations_;
  if (!TestBit(materialized_, r)) {
    SetBit(&materialized_, r);
    init_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

int64_t TieredMatrix::Fault(int64_t r) {
  int64_t frame = cache_.FindFrame(r);
  if (frame >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return frame;
  }
  ++misses_;
  HotRowCache::Eviction ev;
  frame = cache_.Acquire(r, &ev);
  double* data = cache_.FrameData(frame);
  if (ev.row >= 0) {
    ++evictions_;
    if (ev.dirty) {
      // Victim bytes are still in the frame; persist before overwrite.
      WriteFileRow(ev.row, data);
      SetPersisted(ev.row);
      ++writebacks_;
    }
  }
  if (Persisted(r)) {
    ReadFileRow(r, data);
  } else {
    MaterializeInto(r, data);
  }
  return frame;
}

const double* TieredMatrix::Row(int64_t r) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    if (ram_init_[i] == 0) {
      init_fn_(r, ram_.MutableRowPtr(i));
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return ram_.RowPtr(i);
  }
  return cache_.FrameData(Fault(r));
}

double* TieredMatrix::MutableRow(int64_t r) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    if (ram_init_[i] == 0) {
      init_fn_(r, ram_.MutableRowPtr(i));
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return ram_.MutableRowPtr(i);
  }
  const int64_t frame = Fault(r);
  cache_.SetDirty(frame);
  return cache_.FrameData(frame);
}

void TieredMatrix::SetRow(int64_t r, const double* v) {
  PIECK_DCHECK(r >= 0 && r < rows_) << "row out of range";
  if (kind_ == StorageKind::kRam) {
    const size_t i = static_cast<size_t>(r);
    std::memcpy(ram_.MutableRowPtr(i), v, cols_ * sizeof(double));
    if (ram_init_[i] == 0) {
      ram_init_[i] = 1;
      init_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // The value is fully supplied, so skip the init replay: claim a frame
  // directly (still writing back any dirty victim) and overwrite.
  int64_t frame = cache_.FindFrame(r);
  if (frame >= 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ++misses_;
    HotRowCache::Eviction ev;
    frame = cache_.Acquire(r, &ev);
    if (ev.row >= 0) {
      ++evictions_;
      if (ev.dirty) {
        WriteFileRow(ev.row, cache_.FrameData(frame));
        SetPersisted(ev.row);
        ++writebacks_;
      }
    }
  }
  std::memcpy(cache_.FrameData(frame), v, cols_ * sizeof(double));
  cache_.SetDirty(frame);
  if (!TestBit(materialized_, r)) {
    SetBit(&materialized_, r);
    init_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TieredMatrix::PinRows(const std::vector<int>& rows) {
  if (kind_ == StorageKind::kRam) {
    for (const int r : rows) Row(r);
    return;
  }
  PIECK_CHECK(static_cast<int64_t>(rows.size()) <= cache_.capacity())
      << "round cohort exceeds the hot-row cache; raise cache_rows";

  // Open generation `gen`. Writes from here on are recorded against it;
  // the previous generation's write set decides which staged rows a
  // slot armed back then may serve.
  const uint64_t gen = prepare_gen_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const size_t cur = static_cast<size_t>(gen & 1);
  const size_t prev = cur ^ 1;
  recent_writes_[cur].clear();
  recent_saturated_[cur] = false;

  // Adopt trusted staged bytes. A slot is trusted only when it was
  // armed exactly one generation ago (so its reads could only have
  // raced writes the prev-generation set tracked) and no bulk write or
  // tracker saturation voided that window.
  staged_lookup_.clear();
  bool consumed[2] = {false, false};
  if (stage_engine_ != nullptr) {
    for (int s = 0; s < 2; ++s) {
      StageSlot& slot = stage_slots_[s];
      if (!slot.full.load(std::memory_order_acquire)) continue;
      if (slot.armed_gen + 1 == gen && slot.armed_gen > bulk_write_gen_ &&
          !recent_saturated_[prev]) {
        for (size_t i = 0; i < slot.rows.size(); ++i) {
          const int64_t r = slot.rows[i];
          if (recent_writes_[prev].count(r) != 0) continue;
          staged_lookup_.emplace(r, slot.bytes.data() + i * cols_);
        }
        consumed[s] = true;  // bytes stay live through the fill phase
      } else if (slot.armed_gen != gen) {
        // Stale or poisoned arming: recycle the slot. (armed_gen == gen
        // means the select thread is already staging for the *next*
        // round — leave that one armed.)
        slot.full.store(false, std::memory_order_release);
      }
    }
  }

  // Phase 1: pin the hits, collect the misses.
  miss_rows_.clear();
  for (const int r : rows) {
    const int64_t frame = cache_.FindFrame(r);
    if (frame >= 0) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (!cache_.Pinned(frame)) {
        cache_.Pin(frame);
        pinned_frames_.push_back(frame);
      }
    } else {
      miss_rows_.push_back(r);
    }
  }

  // Phase 2a: claim + pin a frame per miss. Pinning immediately keeps
  // the CLOCK hand off frames the batch already owns. Dirty victims'
  // bytes stay in their frames, so their write-back batch must run
  // before any fill overwrites them.
  miss_frames_.clear();
  write_ops_.clear();
  write_rows_.clear();
  size_t n = 0;
  for (size_t i = 0; i < miss_rows_.size(); ++i) {
    const int64_t r = miss_rows_[i];
    int64_t frame = cache_.FindFrame(r);
    if (frame >= 0) {
      // The cohort listed this row twice; the first copy claimed it.
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++misses_;
      HotRowCache::Eviction ev;
      frame = cache_.Acquire(r, &ev);
      if (ev.row >= 0) {
        ++evictions_;
        if (ev.dirty) {
          write_ops_.push_back(
              RowIo{OffsetOf(ev.row), cache_.FrameData(frame)});
          write_rows_.push_back(ev.row);
        }
      }
      miss_rows_[n] = static_cast<int>(r);
      miss_frames_.push_back(frame);
      ++n;
    }
    if (!cache_.Pinned(frame)) {
      cache_.Pin(frame);
      pinned_frames_.push_back(frame);
    }
  }
  miss_rows_.resize(n);

  // Phase 2b: one offset-sorted write-back batch for every dirty victim.
  if (!write_ops_.empty()) {
    engine_->WriteBatch(&write_ops_);
    NoteTouched(write_ops_);
    for (const int64_t r : write_rows_) {
      SetPersisted(r);
      RecordWrite(r);
      ++writebacks_;
    }
  }

  // Phase 2c: fill the claimed frames — staged memcpy, batched file
  // read, or init replay. The replays run between BeginReads and
  // FinishReads so io_uring overlaps them with the reads in flight.
  read_ops_.clear();
  init_rows_.clear();
  const size_t row_bytes = cols_ * sizeof(double);
  for (size_t i = 0; i < miss_rows_.size(); ++i) {
    const int64_t r = miss_rows_[i];
    double* data = cache_.FrameData(miss_frames_[i]);
    const auto staged = staged_lookup_.find(r);
    if (staged != staged_lookup_.end()) {
      std::memcpy(data, staged->second, row_bytes);
      ++staged_hits_;
    } else if (Persisted(r)) {
      read_ops_.push_back(RowIo{OffsetOf(r), data});
    } else {
      init_rows_.emplace_back(r, miss_frames_[i]);
    }
  }
  if (!read_ops_.empty()) engine_->BeginReads(&read_ops_);
  for (const auto& init : init_rows_) {
    MaterializeInto(init.first, cache_.FrameData(init.second));
  }
  if (!read_ops_.empty()) {
    engine_->FinishReads();
    NoteTouched(read_ops_);
  }

  for (int s = 0; s < 2; ++s) {
    if (consumed[s]) {
      stage_slots_[s].full.store(false, std::memory_order_release);
    }
  }
}

void TieredMatrix::FlushPinned(DirtyRowSet* out) {
  if (kind_ == StorageKind::kRam) return;
  write_ops_.clear();
  write_rows_.clear();
  for (const int64_t frame : pinned_frames_) {
    if (cache_.Dirty(frame)) {
      const int64_t r = cache_.FrameRow(frame);
      write_ops_.push_back(RowIo{OffsetOf(r), cache_.FrameData(frame)});
      write_rows_.push_back(r);
    }
  }
  if (!write_ops_.empty()) {
    engine_->WriteBatch(&write_ops_);
    NoteTouched(write_ops_);
  }
  for (const int64_t r : write_rows_) {
    SetPersisted(r);
    RecordWrite(r);
    ++writebacks_;
    if (out != nullptr) out->Add(static_cast<int>(r));
  }
  for (const int64_t frame : pinned_frames_) {
    cache_.ClearDirty(frame);
    cache_.Unpin(frame);
  }
  pinned_frames_.clear();
}

void TieredMatrix::FlushAll(DirtyRowSet* out) {
  if (kind_ == StorageKind::kRam) return;
  write_ops_.clear();
  write_rows_.clear();
  for (int64_t frame = 0; frame < cache_.capacity(); ++frame) {
    if (cache_.FrameRow(frame) < 0 || !cache_.Dirty(frame)) continue;
    const int64_t r = cache_.FrameRow(frame);
    write_ops_.push_back(RowIo{OffsetOf(r), cache_.FrameData(frame)});
    write_rows_.push_back(r);
    cache_.ClearDirty(frame);
  }
  if (!write_ops_.empty()) {
    engine_->WriteBatch(&write_ops_);
    NoteTouched(write_ops_);
    // Too many rows to track individually: void the staging window.
    bulk_write_gen_ = prepare_gen_.load(std::memory_order_relaxed);
  }
  for (const int64_t r : write_rows_) {
    SetPersisted(r);
    ++writebacks_;
    if (out != nullptr) out->Add(static_cast<int>(r));
  }
}

Status TieredMatrix::Checkpoint() {
  if (kind_ == StorageKind::kRam) return Status::OK();
  FlushAll(nullptr);
  // Ordering: data durable first, then the metadata that claims it.
  if (Status st = file_.Sync(); !st.ok()) return st;
  const std::string tmp = meta_path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("open " + tmp);
  const uint64_t header[3] = {kMetaMagic, static_cast<uint64_t>(rows_),
                              static_cast<uint64_t>(cols_)};
  bool ok = std::fwrite(header, sizeof(uint64_t), 3, f) == 3;
  ok = ok && std::fwrite(persisted_.data(), sizeof(uint64_t),
                         persisted_.size(), f) == persisted_.size();
  ok = ok && std::fflush(f) == 0;
#if !defined(_WIN32)
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IoError("write " + tmp);
  if (std::rename(tmp.c_str(), meta_path_.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + meta_path_);
  }
  return Status::OK();
}

void TieredMatrix::Prefetch(const std::vector<int>& rows) {
  if (kind_ == StorageKind::kRam || rows_ <= 0) return;
  if (stage_engine_ != nullptr) {
    StageRows(rows);
    return;
  }
  // mmap-touch: sort the cohort and merge page-adjacent rows into one
  // WILLNEED range each, instead of one madvise per row.
  prefetch_rows_.clear();
  for (const int r : rows) {
    if (r < 0 || static_cast<int64_t>(r) >= rows_) continue;
    prefetch_rows_.push_back(r);
  }
  if (prefetch_rows_.empty()) return;
  std::sort(prefetch_rows_.begin(), prefetch_rows_.end());
  const int64_t row_bytes = static_cast<int64_t>(cols_ * sizeof(double));
  int64_t ranges = 0;
  size_t i = 0;
  while (i < prefetch_rows_.size()) {
    size_t j = i;
    int64_t hi_page =
        (OffsetOf(prefetch_rows_[i]) + row_bytes - 1) / page_bytes_;
    while (j + 1 < prefetch_rows_.size()) {
      if (OffsetOf(prefetch_rows_[j + 1]) / page_bytes_ > hi_page + 1) break;
      ++j;
      const int64_t h =
          (OffsetOf(prefetch_rows_[j]) + row_bytes - 1) / page_bytes_;
      if (h > hi_page) hi_page = h;
    }
    const int64_t lo = OffsetOf(prefetch_rows_[i]);
    file_.AdviseWillNeed(lo, OffsetOf(prefetch_rows_[j]) + row_bytes - lo);
    ++ranges;
    i = j + 1;
  }
  prefetched_.fetch_add(static_cast<int64_t>(prefetch_rows_.size()),
                        std::memory_order_relaxed);
  prefetch_ranges_.fetch_add(ranges, std::memory_order_relaxed);
}

void TieredMatrix::PrefetchRow(int64_t row) {
  if (kind_ == StorageKind::kRam || row < 0 || row >= rows_) return;
  prefetched_.fetch_add(1, std::memory_order_relaxed);
  if (stage_engine_ != nullptr) return;  // staging is batch-only
  const int64_t row_bytes = static_cast<int64_t>(cols_ * sizeof(double));
  file_.AdviseWillNeed(row * row_bytes, row_bytes);
  prefetch_ranges_.fetch_add(1, std::memory_order_relaxed);
}

void TieredMatrix::StageRows(const std::vector<int>& rows) {
  int64_t valid = 0;
  for (const int r : rows) {
    if (r >= 0 && static_cast<int64_t>(r) < rows_) ++valid;
  }
  prefetched_.fetch_add(valid, std::memory_order_relaxed);
  for (StageSlot& slot : stage_slots_) {
    if (slot.full.load(std::memory_order_acquire)) continue;
    // The generation observed *before* the reads bounds which writes
    // could race them; PinRows rejects the slot unless it can prove
    // none did.
    const uint64_t gen = prepare_gen_.load(std::memory_order_acquire);
    slot.rows.clear();
    for (const int r : rows) {
      if (r < 0 || static_cast<int64_t>(r) >= rows_) continue;
      if (Persisted(r)) slot.rows.push_back(r);
    }
    if (slot.rows.empty()) return;  // nothing persisted: leave it free
    slot.bytes.resize(slot.rows.size() * cols_);
    stage_ops_.clear();
    for (size_t i = 0; i < slot.rows.size(); ++i) {
      stage_ops_.push_back(
          RowIo{OffsetOf(slot.rows[i]), slot.bytes.data() + i * cols_});
    }
    stage_engine_->ReadBatch(&stage_ops_);
    staged_rows_.fetch_add(static_cast<int64_t>(slot.rows.size()),
                           std::memory_order_relaxed);
    slot.armed_gen = gen;
    slot.full.store(true, std::memory_order_release);
    return;
  }
  // Both slots armed: the driver is behind; skip this read-ahead.
}

void TieredMatrix::SnapshotInto(Matrix* out) const {
  if (out->rows() != static_cast<size_t>(rows_) || out->cols() != cols_) {
    *out = Matrix(static_cast<size_t>(rows_), cols_);
  }
  if (kind_ == StorageKind::kRam) {
    for (int64_t r = 0; r < rows_; ++r) {
      const size_t i = static_cast<size_t>(r);
      if (ram_init_[i] != 0) {
        std::memcpy(out->MutableRowPtr(i), ram_.RowPtr(i),
                    cols_ * sizeof(double));
      } else {
        init_fn_(r, out->MutableRowPtr(i));
      }
    }
    return;
  }
  snapshot_ops_.clear();
  for (int64_t r = 0; r < rows_; ++r) {
    double* dst = out->MutableRowPtr(static_cast<size_t>(r));
    const int64_t frame = cache_.PeekFrame(r);
    if (frame >= 0) {
      std::memcpy(dst, cache_.FrameData(frame), cols_ * sizeof(double));
    } else if (Persisted(r)) {
      snapshot_ops_.push_back(RowIo{OffsetOf(r), dst});
    } else {
      init_fn_(r, dst);
    }
  }
  if (!snapshot_ops_.empty()) {
    engine_->ReadBatch(&snapshot_ops_);
    NoteTouched(snapshot_ops_);
  }
}

void TieredMatrix::EnsureAll(ThreadPool* pool) {
  if (kind_ == StorageKind::kRam) {
    ThreadPool::ParallelForOrSerial(
        pool, static_cast<size_t>(rows_), [this](size_t i) {
          if (ram_init_[i] == 0) {
            init_fn_(static_cast<int64_t>(i), ram_.MutableRowPtr(i));
            ram_init_[i] = 1;
            init_count_.fetch_add(1, std::memory_order_relaxed);
          }
        });
    return;
  }
  // Materialize into a chunk arena and write each chunk as one batch;
  // consecutive uncached rows coalesce into long contiguous runs.
  constexpr int64_t kChunkRows = 1024;
  std::vector<double> arena(static_cast<size_t>(kChunkRows) * cols_);
  write_ops_.clear();
  write_rows_.clear();
  int64_t used = 0;
  const auto flush_chunk = [&] {
    if (write_ops_.empty()) return;
    engine_->WriteBatch(&write_ops_);
    NoteTouched(write_ops_);
    for (const int64_t rr : write_rows_) SetPersisted(rr);
    write_ops_.clear();
    write_rows_.clear();
    used = 0;
  };
  for (int64_t r = 0; r < rows_; ++r) {
    if (Persisted(r) || cache_.PeekFrame(r) >= 0) continue;
    double* dst = arena.data() + static_cast<size_t>(used) * cols_;
    MaterializeInto(r, dst);
    write_ops_.push_back(RowIo{OffsetOf(r), dst});
    write_rows_.push_back(r);
    if (++used == kChunkRows) flush_chunk();
  }
  flush_chunk();
  bulk_write_gen_ = prepare_gen_.load(std::memory_order_relaxed);
}

int64_t TieredMatrix::ResidentBytes() const {
  if (kind_ == StorageKind::kRam) {
    return static_cast<int64_t>(ram_.data().capacity() * sizeof(double)) +
           static_cast<int64_t>(ram_init_.capacity());
  }
  return cache_.ResidentBytes() +
         static_cast<int64_t>(persisted_.capacity() * sizeof(uint64_t)) +
         static_cast<int64_t>(materialized_.capacity() * sizeof(uint64_t)) +
         static_cast<int64_t>(pinned_frames_.capacity() * sizeof(int64_t));
}

int64_t TieredMatrix::BackingBytes() const {
  return kind_ == StorageKind::kMmap ? file_.size() : 0;
}

StorageCounters TieredMatrix::counters() const {
  StorageCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_;
  c.evictions = evictions_;
  c.writebacks = writebacks_;
  c.rematerializations = rematerializations_;
  c.prefetched_rows = prefetched_.load(std::memory_order_relaxed);
  c.prefetch_ranges = prefetch_ranges_.load(std::memory_order_relaxed);
  c.staged_rows = staged_rows_.load(std::memory_order_relaxed);
  c.staged_hits = staged_hits_;
  c.trims = trims_;
  if (engine_ != nullptr) {
    // Driver-engine runs only: the stage engine's stats belong to the
    // select thread and are reflected in staged_rows instead.
    c.io_read_runs = engine_->stats().read_runs;
    c.io_write_runs = engine_->stats().write_runs;
  }
  return c;
}

std::vector<HotRowCache::ShardCounters> TieredMatrix::shard_counters() const {
  std::vector<HotRowCache::ShardCounters> out;
  if (kind_ != StorageKind::kMmap) return out;
  out.reserve(static_cast<size_t>(cache_.num_shards()));
  for (int s = 0; s < cache_.num_shards(); ++s) {
    out.push_back(cache_.shard_counters(s));
  }
  return out;
}

bool TieredMatrix::initialized(int64_t r) const {
  if (kind_ == StorageKind::kRam) {
    return ram_init_[static_cast<size_t>(r)] != 0;
  }
  return TestBit(materialized_, r);
}

}  // namespace pieck
