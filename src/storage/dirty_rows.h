/// \file
/// Shared dirty-row bookkeeping for the round engine's two consumers.
///
/// Two subsystems need to know which rows one round's Apply stage
/// touched: `ModelVersionRing::Publish` refreshes a snapshot slot by
/// copying exactly the rows dirtied since the previous version, and the
/// tiered storage layer writes a round's trained user rows back to the
/// backing file. Both now speak one `DirtyRowSet` — an arena-reused,
/// append-only row list — instead of maintaining parallel bookkeeping.
#ifndef PIECK_STORAGE_DIRTY_ROWS_H_
#define PIECK_STORAGE_DIRTY_ROWS_H_

#include <cstdint>
#include <vector>

namespace pieck {

/// Append-only set of row indices dirtied by one batch of work. "Set"
/// by usage, not enforcement: producers (the router's group keys, the
/// cache's pinned cohort) already emit each row at most once, so Add
/// does no dedup. Clear keeps capacity — steady-state rounds allocate
/// nothing.
class DirtyRowSet {
 public:
  void Clear() { rows_.clear(); }
  void Add(int row) { rows_.push_back(row); }

  bool empty() const { return rows_.empty(); }
  size_t size() const { return rows_.size(); }
  const std::vector<int>& rows() const { return rows_; }

  int64_t CapacityBytes() const {
    return static_cast<int64_t>(rows_.capacity() * sizeof(int));
  }

 private:
  std::vector<int> rows_;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_DIRTY_ROWS_H_
