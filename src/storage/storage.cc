#include "storage/storage.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace pieck {

const char* StorageKindToString(StorageKind kind) {
  switch (kind) {
    case StorageKind::kRam:
      return "ram";
    case StorageKind::kMmap:
      return "mmap";
  }
  return "?";
}

Status ParseStorageKind(const std::string& name, StorageKind* out) {
  if (name == "ram") {
    *out = StorageKind::kRam;
    return Status::OK();
  }
  if (name == "mmap") {
    *out = StorageKind::kMmap;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown storage kind '" + name +
                                 "' (expected ram|mmap)");
}

const char* IoEngineToString(IoEngineKind kind) {
  switch (kind) {
    case IoEngineKind::kMmapTouch:
      return "mmap-touch";
    case IoEngineKind::kPreadBatch:
      return "pread-batch";
    case IoEngineKind::kIoUring:
      return "io_uring";
  }
  return "?";
}

Status ParseIoEngine(const std::string& name, IoEngineKind* out) {
  if (name == "mmap-touch") {
    *out = IoEngineKind::kMmapTouch;
    return Status::OK();
  }
  if (name == "pread-batch") {
    *out = IoEngineKind::kPreadBatch;
    return Status::OK();
  }
  if (name == "io_uring") {
    *out = IoEngineKind::kIoUring;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown io engine '" + name +
      "' (expected mmap-touch|pread-batch|io_uring)");
}

Status StorageConfig::Validate() const {
  if (kind == StorageKind::kRam) {
    if (attach) {
      return Status::InvalidArgument("storage.attach requires the mmap kind");
    }
    return Status::OK();
  }
  if (attach && dir.empty()) {
    return Status::InvalidArgument(
        "storage.attach needs an explicit storage.dir to attach to");
  }
  if (resident_budget_bytes <= 0) {
    return Status::InvalidArgument("storage.resident_budget_bytes must be > 0");
  }
  return Status::OK();
}

#if defined(_WIN32)

StatusOr<std::shared_ptr<StoreDir>> StoreDir::Resolve(const std::string&) {
  return Status::Unimplemented("mmap storage is POSIX-only");
}

StoreDir::~StoreDir() = default;

std::string StoreDir::FilePath(const std::string& name) const {
  return path_ + "/" + name;
}

#else

namespace {

Status MakeDirs(const std::string& path) {
  // mkdir -p: create each component, tolerating ones that exist.
  std::string partial;
  size_t i = 0;
  while (i < path.size()) {
    size_t next = path.find('/', i);
    if (next == std::string::npos) next = path.size();
    partial.assign(path, 0, next);
    i = next + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + partial + ": " +
                             std::strerror(errno));
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError("store dir " + path + " is not a directory");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::shared_ptr<StoreDir>> StoreDir::Resolve(const std::string& dir) {
  if (!dir.empty()) {
    if (Status st = MakeDirs(dir); !st.ok()) return st;
    return std::shared_ptr<StoreDir>(new StoreDir(dir, /*owned=*/false));
  }
  const char* tmp = std::getenv("TMPDIR");
  std::string templ =
      std::string(tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp") +
      "/pieck-store-XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    return Status::IoError(std::string("mkdtemp: ") + std::strerror(errno));
  }
  return std::shared_ptr<StoreDir>(
      new StoreDir(std::string(buf.data()), /*owned=*/true));
}

StoreDir::~StoreDir() {
  if (!owned_) return;
  // Best-effort removal of the private temp directory and its files.
  if (DIR* d = ::opendir(path_.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((path_ + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(path_.c_str());
}

std::string StoreDir::FilePath(const std::string& name) const {
  return path_ + "/" + name;
}

#endif  // _WIN32

}  // namespace pieck
