/// \file
/// Storage-backend selection for the beyond-RAM client state tier.
///
/// `StorageConfig` picks where big per-user tables live: `kRam` keeps
/// today's dense in-memory arrays bit for bit, `kMmap` pages them
/// through a sparse backing file behind a pinned hot-row cache
/// (tiered_matrix.h). The determinism contract is that the choice is
/// invisible in every numeric result — a row's value is always either
/// the last value written to it or the seed-keyed init replay, whichever
/// is newer, regardless of eviction order (docs/STORAGE.md).
#ifndef PIECK_STORAGE_STORAGE_H_
#define PIECK_STORAGE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"

namespace pieck {

enum class StorageKind {
  kRam,   // dense in-memory arrays (the pre-storage behavior, bit for bit)
  kMmap,  // sparse backing file + pinned hot-row cache
};

const char* StorageKindToString(StorageKind kind);
Status ParseStorageKind(const std::string& name, StorageKind* out);

/// How cold rows move between the backing file and cache frames (mmap
/// kind only). Every engine fills the same frames with the same bytes —
/// a persisted row's file image or the seed-keyed init replay — so the
/// choice is pure mechanics and can never change a result bit
/// (docs/STORAGE.md, "I/O engine").
enum class IoEngineKind {
  kMmapTouch,   // demand paging: memcpy through the shared mapping
  kPreadBatch,  // offset-sorted batched preadv/pwritev into the frames
  kIoUring,     // Linux io_uring rings (falls back to kPreadBatch when
                // the kernel or sandbox lacks io_uring_setup)
};

const char* IoEngineToString(IoEngineKind kind);
Status ParseIoEngine(const std::string& name, IoEngineKind* out);

/// Configuration of the client-state storage tier.
struct StorageConfig {
  StorageKind kind = StorageKind::kRam;
  /// Hot-row cache capacity in rows (mmap only). Must be at least the
  /// round cohort size, since a round's participants stay pinned while
  /// the fan-out trains them. <= 0 resolves to a 65536-row default
  /// (clamped to the population).
  int64_t cache_rows = 0;
  /// Backing directory (mmap only). Explicit paths are created if
  /// missing and never deleted; empty resolves to a fresh private
  /// directory under $TMPDIR that is removed when the store dies.
  std::string dir;
  /// Attach to an existing checkpointed directory instead of truncating
  /// fresh backing files: rows persisted by a prior `Checkpoint()` are
  /// read back instead of re-initialized (mmap only).
  bool attach = false;
  /// Advisory ceiling on resident backing-file pages: after roughly
  /// this many file bytes have been touched, the mappings are
  /// madvise(DONTNEED)'d so RSS stays bounded on populations far larger
  /// than memory. Perf-only — never changes results.
  int64_t resident_budget_bytes = 256ll << 20;
  /// Cold-row transfer mechanics (mmap only): demand paging, batched
  /// pread/pwrite, or io_uring. Bit-invisible in results by contract.
  IoEngineKind io_engine = IoEngineKind::kPreadBatch;

  Status Validate() const;
};

/// Cumulative hot-path counters of one tiered store (telemetry; all
/// monotone since construction).
struct StorageCounters {
  int64_t hits = 0;              // row accesses served from the cache
  int64_t misses = 0;            // row faults (cache fill required)
  int64_t evictions = 0;         // frames reclaimed by the CLOCK hand
  int64_t writebacks = 0;        // dirty rows written to the backing file
  int64_t rematerializations = 0;  // faults replaying the seed-keyed init
  int64_t prefetched_rows = 0;   // rows madvise(WILLNEED)'d ahead of use
  int64_t prefetch_ranges = 0;   // coalesced WILLNEED ranges issued
  int64_t io_read_runs = 0;      // contiguous read runs the engine issued
  int64_t io_write_runs = 0;     // contiguous write runs the engine issued
  int64_t staged_rows = 0;       // rows the select thread read ahead
  int64_t staged_hits = 0;       // cohort misses served from staged bytes
  int64_t trims = 0;             // resident-budget page drops

  double hit_rate() const {
    const int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// The backing directory of an mmap store. Shared (shared_ptr) by every
/// component writing files into it — the row store and the CSR builder —
/// so cleanup happens exactly once, after the last user. Directories the
/// handle created itself (empty `StorageConfig::dir`) are removed with
/// their contents on destruction; caller-provided paths are left alone.
class StoreDir {
 public:
  /// Creates `dir` (and parents) if missing, or a fresh private temp
  /// directory when `dir` is empty.
  static StatusOr<std::shared_ptr<StoreDir>> Resolve(const std::string& dir);

  ~StoreDir();
  StoreDir(const StoreDir&) = delete;
  StoreDir& operator=(const StoreDir&) = delete;

  const std::string& path() const { return path_; }
  bool owned() const { return owned_; }
  std::string FilePath(const std::string& name) const;

 private:
  StoreDir(std::string path, bool owned)
      : path_(std::move(path)), owned_(owned) {}

  std::string path_;
  bool owned_;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_STORAGE_H_
