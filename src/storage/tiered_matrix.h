/// \file
/// A rows x cols double matrix whose backing tier is selected at
/// construction: dense RAM (today's behavior, bit for bit) or a sparse
/// mmap'd file behind a pinned hot-row cache.
///
/// The determinism contract both tiers satisfy: a row's value is the
/// last value written to it, or — if it was never written — the bytes
/// the seed-keyed `InitFn` produces for that row. In the mmap tier a
/// clean never-written row may be evicted and *re-materialized* by
/// replaying `InitFn` on the next fault; because `InitFn` is a pure
/// function of the row index (it seeds a fresh Rng from the row's
/// seed), the replay is bit-identical and eviction order can never
/// surface in results. Dirty rows are never dropped: every eviction of
/// a dirty frame writes the row to the backing file first.
///
/// Threading (mirrors the round engine): faults, pins, flushes and
/// snapshots are single-owner. During the round fan-out the cohort is
/// pinned, so concurrent `Row`/`MutableRow` calls for distinct rows
/// are pure cache hits touching distinct frames — no structural
/// mutation, no shared bytes. `Prefetch` is madvise-only and may run
/// from any thread.
#ifndef PIECK_STORAGE_TIERED_MATRIX_H_
#define PIECK_STORAGE_TIERED_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/dirty_rows.h"
#include "storage/hot_row_cache.h"
#include "storage/mmap_file.h"
#include "storage/storage.h"
#include "tensor/matrix.h"

namespace pieck {

class TieredMatrix {
 public:
  /// Materializes row `row` into `dst` (`cols` doubles). Must be a pure
  /// function of the row index so eviction replay is bit-identical.
  using InitFn = std::function<void(int64_t row, double* dst)>;

  TieredMatrix() = default;
  TieredMatrix(const TieredMatrix&) = delete;
  TieredMatrix& operator=(const TieredMatrix&) = delete;

  /// Arms the matrix. `dir` is required (non-null) only for the mmap
  /// kind; `file_name` names the backing file inside it. With
  /// `config.attach`, rows persisted by a prior Checkpoint() are read
  /// back instead of re-initialized.
  Status Init(int64_t rows, size_t cols, const StorageConfig& config,
              std::shared_ptr<StoreDir> dir, const std::string& file_name,
              InitFn init_fn);

  int64_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool is_mmap() const { return kind_ == StorageKind::kMmap; }

  /// Read access; faults + initializes on first touch. Single-owner
  /// unless the row is pinned (then it's a hit on a stable frame).
  const double* Row(int64_t r);

  /// Write access; same faulting rules, marks the row dirty.
  double* MutableRow(int64_t r);

  /// Overwrites row `r` (no init draw — the value is fully supplied).
  void SetRow(int64_t r, const double* v);

  /// Single-owner: faults + pins every row of the cohort so the round
  /// fan-out can hit them concurrently through stable frames. Aborts if
  /// the cohort exceeds the cache (raise StorageConfig::cache_rows).
  void PinRows(const std::vector<int>& rows);

  /// Single-owner: writes back every dirty pinned row, then unpins the
  /// cohort. Rows written back are appended to `out` when non-null.
  void FlushPinned(DirtyRowSet* out);

  /// Writes back every dirty cached row (pinned or not) without
  /// evicting or unpinning anything.
  void FlushAll(DirtyRowSet* out);

  /// Durable checkpoint: FlushAll, msync the data file, then publish
  /// the persisted-row bitmap via write-to-temp + rename. Data is on
  /// disk *before* the metadata claims it, so a crash between the two
  /// steps only loses the claim, never the bytes. No-op for RAM.
  Status Checkpoint();

  /// madvise(WILLNEED) the listed rows' file pages. Advisory and
  /// thread-safe; the select thread calls this for the upcoming round.
  void Prefetch(const std::vector<int>& rows);
  void PrefetchRow(int64_t row);

  /// Copies the full logical matrix into `*out` (resized to fit)
  /// without changing any tier state: cached rows come from their
  /// frames, persisted rows from the file, untouched rows from the
  /// init replay. Single-owner.
  void SnapshotInto(Matrix* out) const;

  /// Materializes every row. RAM: parallel first-touch (rows are
  /// independent). Mmap: serial, writing uncached rows straight to the
  /// backing file. Single-owner.
  void EnsureAll(ThreadPool* pool);

  /// Heap + cache bytes actually resident in this process. Excludes
  /// backing-file pages (those are reclaimable page cache).
  int64_t ResidentBytes() const;

  /// Bytes of backing file address space (0 for RAM). The file is
  /// sparse, so disk usage is at most this.
  int64_t BackingBytes() const;

  StorageCounters counters() const;

  /// Rows materialized *by this process* (attach-restored rows do not
  /// count). Gates seed installation in the client-state store.
  int64_t initialized_rows() const {
    return init_count_.load(std::memory_order_relaxed);
  }
  bool any_initialized() const { return initialized_rows() > 0; }
  bool initialized(int64_t r) const;

  /// RAM tier only: the dense matrix itself, for zero-copy views.
  const Matrix& ram_matrix() const { return ram_; }

 private:
  bool Persisted(int64_t r) const {
    return (persisted_[static_cast<size_t>(r >> 6)] >>
            (static_cast<uint64_t>(r) & 63)) &
           1;
  }
  void SetPersisted(int64_t r) {
    persisted_[static_cast<size_t>(r >> 6)] |= uint64_t{1}
                                               << (static_cast<uint64_t>(r) &
                                                   63);
  }
  void ReadFileRow(int64_t r, double* dst) const;
  void WriteFileRow(int64_t r, const double* src);
  /// Fault `r` into the cache (write-back of the victim included).
  int64_t Fault(int64_t r);
  void MaterializeInto(int64_t r, double* dst);
  /// Drops resident backing-file pages once the touched-byte budget is
  /// exceeded. Perf-only; data lives in the page cache / file.
  void MaybeTrim() const;
  Status LoadMeta(const std::string& path);

  StorageKind kind_ = StorageKind::kRam;
  int64_t rows_ = 0;
  size_t cols_ = 0;
  InitFn init_fn_;

  // RAM tier.
  Matrix ram_;
  std::vector<uint8_t> ram_init_;  // byte per row: parallel-safe flags

  // Mmap tier.
  std::shared_ptr<StoreDir> dir_;
  MmapFile file_;
  HotRowCache cache_;
  std::vector<uint64_t> persisted_;     // bit per row: file holds the value
  std::vector<uint64_t> materialized_;  // bit per row: inited this process
  std::vector<int64_t> pinned_frames_;  // cohort frames, Pin order
  std::string meta_path_;
  int64_t resident_budget_bytes_ = 0;
  mutable int64_t touched_file_bytes_ = 0;

  std::atomic<int64_t> init_count_{0};
  // hits/prefetched are bumped from the round fan-out / select thread;
  // the rest are single-owner.
  mutable std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> prefetched_{0};
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t writebacks_ = 0;
  int64_t rematerializations_ = 0;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_TIERED_MATRIX_H_
