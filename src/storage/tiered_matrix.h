/// \file
/// A rows x cols double matrix whose backing tier is selected at
/// construction: dense RAM (today's behavior, bit for bit) or a sparse
/// mmap'd file behind a pinned hot-row cache, filled through a
/// selectable fault engine (storage/fault_engine.h).
///
/// The determinism contract both tiers satisfy: a row's value is the
/// last value written to it, or — if it was never written — the bytes
/// the seed-keyed `InitFn` produces for that row. In the mmap tier a
/// clean never-written row may be evicted and *re-materialized* by
/// replaying `InitFn` on the next fault; because `InitFn` is a pure
/// function of the row index (it seeds a fresh Rng from the row's
/// seed), the replay is bit-identical and eviction order can never
/// surface in results. Dirty rows are never dropped: every eviction of
/// a dirty frame writes the row to the backing file first. The fault
/// engine only decides *how* bytes move between the file and the cache
/// frames, never *which* bytes — so every engine is bit-identical by
/// construction.
///
/// Threading (mirrors the round engine): faults, pins, flushes and
/// snapshots are single-owner (the driver). During the round fan-out
/// the cohort is pinned, so concurrent `Row`/`MutableRow` calls for
/// distinct rows are pure cache hits touching distinct frames — no
/// structural mutation, no shared bytes. `Prefetch` runs on at most one
/// other thread (the select thread): for the mmap-touch engine it is
/// madvise-only; for the batched engines it *stages* the upcoming
/// cohort's persisted rows into a double-buffered side arena with its
/// own positioned-I/O engine, overlapping round i+1's cold reads with
/// round i's Train/Apply. PinRows consumes a staged buffer only when a
/// generation handshake proves no write could have raced the staging
/// read, so staged bytes are always exactly the file bytes.
#ifndef PIECK_STORAGE_TIERED_MATRIX_H_
#define PIECK_STORAGE_TIERED_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/dirty_rows.h"
#include "storage/fault_engine.h"
#include "storage/hot_row_cache.h"
#include "storage/mmap_file.h"
#include "storage/storage.h"
#include "tensor/matrix.h"

namespace pieck {

class TieredMatrix {
 public:
  /// Materializes row `row` into `dst` (`cols` doubles). Must be a pure
  /// function of the row index so eviction replay is bit-identical.
  using InitFn = std::function<void(int64_t row, double* dst)>;

  TieredMatrix() = default;
  TieredMatrix(const TieredMatrix&) = delete;
  TieredMatrix& operator=(const TieredMatrix&) = delete;

  /// Arms the matrix. `dir` is required (non-null) only for the mmap
  /// kind; `file_name` names the backing file inside it. With
  /// `config.attach`, rows persisted by a prior Checkpoint() are read
  /// back instead of re-initialized. `config.io_engine` is resolved to
  /// what the host supports (io_uring degrades to pread-batch).
  Status Init(int64_t rows, size_t cols, const StorageConfig& config,
              std::shared_ptr<StoreDir> dir, const std::string& file_name,
              InitFn init_fn);

  int64_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool is_mmap() const { return kind_ == StorageKind::kMmap; }

  /// The engine actually in use after host-capability resolution
  /// (meaningful for the mmap kind only).
  IoEngineKind io_engine() const { return io_engine_; }

  /// Read access; faults + initializes on first touch. Single-owner
  /// unless the row is pinned (then it's a hit on a stable frame).
  const double* Row(int64_t r);

  /// Write access; same faulting rules, marks the row dirty.
  double* MutableRow(int64_t r);

  /// Overwrites row `r` (no init draw — the value is fully supplied).
  void SetRow(int64_t r, const double* v);

  /// Single-owner: faults + pins every row of the cohort so the round
  /// fan-out can hit them concurrently through stable frames. Aborts if
  /// the cohort exceeds the cache (raise StorageConfig::cache_rows).
  ///
  /// The fault is two-phase: hits are pinned first, then every miss
  /// claims (and pins) a frame, dirty victims are written back as one
  /// offset-sorted batch, and the misses are filled as one batch — from
  /// the staged arena when trusted, the file, or the init replay. With
  /// the io_uring engine, init replays run while the reads are in
  /// flight.
  void PinRows(const std::vector<int>& rows);

  /// Single-owner: writes back every dirty pinned row (one batch), then
  /// unpins the cohort. Rows written back are appended to `out` when
  /// non-null.
  void FlushPinned(DirtyRowSet* out);

  /// Writes back every dirty cached row (pinned or not) without
  /// evicting or unpinning anything.
  void FlushAll(DirtyRowSet* out);

  /// Durable checkpoint: FlushAll, msync the data file, then publish
  /// the persisted-row bitmap via write-to-temp + rename. Data is on
  /// disk *before* the metadata claims it, so a crash between the two
  /// steps only loses the claim, never the bytes. No-op for RAM.
  Status Checkpoint();

  /// Select-thread read-ahead for the upcoming cohort. mmap-touch:
  /// coalesced madvise(WILLNEED) over the rows' file pages (sorted,
  /// page-merged). Batched engines: stages the persisted rows' bytes
  /// into a free stage slot so PinRows can fill their frames with
  /// memcpys instead of reads. At most one concurrent caller.
  void Prefetch(const std::vector<int>& rows);
  void PrefetchRow(int64_t row);

  /// Copies the full logical matrix into `*out` (resized to fit)
  /// without changing any tier state: cached rows come from their
  /// frames, persisted rows from the file (one batched read), untouched
  /// rows from the init replay. Single-owner.
  void SnapshotInto(Matrix* out) const;

  /// Materializes every row. RAM: parallel first-touch (rows are
  /// independent). Mmap: serial, writing uncached rows straight to the
  /// backing file in chunked batches. Single-owner.
  void EnsureAll(ThreadPool* pool);

  /// Heap + cache bytes actually resident in this process. Excludes
  /// backing-file pages (those are reclaimable page cache).
  int64_t ResidentBytes() const;

  /// Bytes of backing file address space (0 for RAM). The file is
  /// sparse, so disk usage is at most this.
  int64_t BackingBytes() const;

  StorageCounters counters() const;

  /// Per-shard cache telemetry (mmap only; empty for RAM).
  std::vector<HotRowCache::ShardCounters> shard_counters() const;

  /// Rows materialized *by this process* (attach-restored rows do not
  /// count). Gates seed installation in the client-state store.
  int64_t initialized_rows() const {
    return init_count_.load(std::memory_order_relaxed);
  }
  bool any_initialized() const { return initialized_rows() > 0; }
  bool initialized(int64_t r) const;

  /// RAM tier only: the dense matrix itself, for zero-copy views.
  const Matrix& ram_matrix() const { return ram_; }

 private:
  /// One double-buffered read-ahead arena. The select thread owns a
  /// slot while `full` is false, the driver while it is true; the flag's
  /// release/acquire pair publishes the staged bytes.
  struct StageSlot {
    std::vector<int64_t> rows;
    std::vector<double> bytes;  // rows.size() x cols
    uint64_t armed_gen = 0;     // prepare_gen_ observed when arming began
    std::atomic<bool> full{false};
  };

  // The persisted bitmap is written by the driver (write-backs) while
  // the select thread polls it when staging, so the words go through
  // relaxed atomics. Any stale read is safe: a "not persisted" miss
  // just skips staging, a "persisted" race is rejected by the
  // generation handshake before the bytes are used.
  bool Persisted(int64_t r) const {
    const uint64_t word = __atomic_load_n(
        &persisted_[static_cast<size_t>(r >> 6)], __ATOMIC_RELAXED);
    return (word >> (static_cast<uint64_t>(r) & 63)) & 1;
  }
  void SetPersisted(int64_t r) {
    __atomic_fetch_or(&persisted_[static_cast<size_t>(r >> 6)],
                      uint64_t{1} << (static_cast<uint64_t>(r) & 63),
                      __ATOMIC_RELAXED);
  }
  int64_t OffsetOf(int64_t r) const {
    return r * static_cast<int64_t>(cols_ * sizeof(double));
  }
  void ReadFileRow(int64_t r, double* dst) const;
  void WriteFileRow(int64_t r, const double* src);
  /// Fault `r` into the cache (write-back of the victim included).
  int64_t Fault(int64_t r);
  void MaterializeInto(int64_t r, double* dst);
  /// Remembers `r` was written this generation so a staged copy that
  /// might have raced the write is distrusted at consumption.
  void RecordWrite(int64_t r);
  /// mmap-touch only: tracks which file pages the batch populated and
  /// drops them (ranged DONTNEED) once the resident budget is exceeded.
  /// The batched engines never fault file pages in, so they skip this.
  void NoteTouched(const std::vector<RowIo>& ops) const;
  void MaybeTrim() const;
  Status LoadMeta(const std::string& path);
  void StageRows(const std::vector<int>& rows);

  StorageKind kind_ = StorageKind::kRam;
  int64_t rows_ = 0;
  size_t cols_ = 0;
  InitFn init_fn_;

  // RAM tier.
  Matrix ram_;
  std::vector<uint8_t> ram_init_;  // byte per row: parallel-safe flags

  // Mmap tier.
  std::shared_ptr<StoreDir> dir_;
  MmapFile file_;
  HotRowCache cache_;
  IoEngineKind io_engine_ = IoEngineKind::kMmapTouch;  // resolved
  // The driver's engine. Mutable because const scans (SnapshotInto) read
  // through it; engine state is transfer scratch + telemetry, never
  // logical matrix state.
  mutable std::unique_ptr<FaultEngine> engine_;
  std::unique_ptr<FaultEngine> stage_engine_;  // select thread's reads
  std::vector<uint64_t> persisted_;     // bit per row: file holds the value
  std::vector<uint64_t> materialized_;  // bit per row: inited this process
  std::vector<int64_t> pinned_frames_;  // cohort frames, Pin order
  std::string meta_path_;
  int64_t resident_budget_bytes_ = 0;
  int64_t page_bytes_ = 4096;
  mutable int64_t touched_file_bytes_ = 0;
  mutable std::unordered_set<int64_t> touched_pages_;
  mutable bool touched_overflow_ = false;
  mutable std::vector<int64_t> trim_pages_;  // scratch for range merging

  // Batched-fault scratch (single-owner, reused across rounds).
  std::vector<int> miss_rows_;
  std::vector<int64_t> miss_frames_;
  std::vector<RowIo> read_ops_;
  mutable std::vector<RowIo> single_ops_;
  mutable std::vector<RowIo> snapshot_ops_;
  std::vector<RowIo> write_ops_;
  std::vector<int64_t> write_rows_;
  std::vector<std::pair<int64_t, int64_t>> init_rows_;  // (row, frame)
  std::unordered_map<int64_t, const double*> staged_lookup_;

  // Staged read-ahead (batched engines only; see class comment).
  StageSlot stage_slots_[2];
  std::vector<RowIo> stage_ops_;  // select-thread scratch
  std::atomic<uint64_t> prepare_gen_{0};
  uint64_t bulk_write_gen_ = 0;  // staging armed at/before this is void
  std::unordered_set<int64_t> recent_writes_[2];  // parity by generation
  bool recent_saturated_[2] = {false, false};

  // Select-thread prefetch scratch (mmap-touch range coalescing).
  std::vector<int64_t> prefetch_rows_;

  std::atomic<int64_t> init_count_{0};
  // hits/prefetch counters are bumped from the round fan-out / select
  // thread; the rest are single-owner.
  mutable std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> prefetched_{0};
  std::atomic<int64_t> prefetch_ranges_{0};
  std::atomic<int64_t> staged_rows_{0};
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t writebacks_ = 0;
  int64_t rematerializations_ = 0;
  int64_t staged_hits_ = 0;
  mutable int64_t trims_ = 0;
};

}  // namespace pieck

#endif  // PIECK_STORAGE_TIERED_MATRIX_H_
