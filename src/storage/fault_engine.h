/// \file
/// The I/O engine under the tiered store: how cold rows move between
/// the sparse backing file and hot-row-cache frames.
///
/// Three interchangeable backends implement the same row-batch
/// contract:
///
/// - `mmap-touch` — the reference: memcpy through the shared mapping,
///   each cold page served by a synchronous fault (the pre-engine
///   behavior, kept bit-for-bit and syscall-for-syscall).
/// - `pread-batch` — ops are offset-sorted, contiguous rows coalesce
///   into one `preadv`/`pwritev` run each (scattered frames gather into
///   one file extent via the iovec), and the batch is issued as a short
///   sequence of positioned syscalls that never touch the mapping — no
///   page-table churn, no fault storms.
/// - `io_uring` — the same sorted runs become submission-queue entries
///   on a raw io_uring (depth kIoUringDepth), so the kernel services
///   many extents concurrently while the caller's CPU work (init-replay
///   materialization of never-written rows) proceeds between
///   `BeginReads` and `FinishReads`.
///
/// The engines are pure byte movers: *what* bytes fill a frame (file
/// image vs seed-keyed init replay) is decided by `TieredMatrix`, so
/// every engine produces bit-identical models by construction. Engine
/// instances are single-owner; two instances may share one file because
/// all I/O is positioned (pread/pwrite, never lseek).
#ifndef PIECK_STORAGE_FAULT_ENGINE_H_
#define PIECK_STORAGE_FAULT_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "storage/mmap_file.h"
#include "storage/storage.h"

namespace pieck {

/// One fixed-width row transfer: `row_bytes` bytes at file `offset`,
/// from/to `buf` (a cache frame or staging slot).
struct RowIo {
  int64_t offset = 0;
  double* buf = nullptr;
};

/// io_uring submission-queue depth (the issue floor is 32). Also the
/// max in-flight run count before the engine drains completions.
inline constexpr unsigned kIoUringDepth = 64;

/// True when this kernel (and sandbox) can create io_uring rings.
/// Probed once per process with a throwaway `io_uring_setup`.
bool IoUringSupported();

/// Collapses `requested` onto an engine this host can run: `io_uring`
/// degrades to `pread-batch` when rings are unavailable; everything
/// else resolves to itself.
IoEngineKind ResolveIoEngine(IoEngineKind requested);

/// Sorts `ops` by offset and returns the end index of each maximal run
/// of offset-contiguous rows (stride `row_bytes`) in `*run_ends`:
/// run r covers ops [run_ends[r-1], run_ends[r]). Shared by the batched
/// engines and unit-tested directly.
void CoalesceRuns(std::vector<RowIo>* ops, size_t row_bytes,
                  std::vector<size_t>* run_ends);

class FaultEngine {
 public:
  /// Cumulative transfer telemetry (single-owner, like the engine).
  struct Stats {
    int64_t read_rows = 0;
    int64_t write_rows = 0;
    int64_t read_runs = 0;   // contiguous runs (== syscalls or SQEs)
    int64_t write_runs = 0;
  };

  virtual ~FaultEngine() = default;

  virtual IoEngineKind kind() const = 0;

  /// Reads every op's row from the file into its buffer. Blocking; ops
  /// may be reordered (rows are distinct, so order is unobservable).
  virtual void ReadBatch(std::vector<RowIo>* ops) = 0;

  /// Writes every op's buffer to its file offset. Blocking; same
  /// reordering license as ReadBatch.
  virtual void WriteBatch(std::vector<RowIo>* ops) = 0;

  /// Split-phase read for fault/compute overlap: `BeginReads` issues
  /// the batch, `FinishReads` blocks until every buffer is filled. The
  /// synchronous engines complete everything in `BeginReads`; io_uring
  /// keeps up to kIoUringDepth runs in flight across the gap so the
  /// caller can burn CPU (init replays) while the kernel reads.
  virtual void BeginReads(std::vector<RowIo>* ops) { ReadBatch(ops); }
  virtual void FinishReads() {}

  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

/// Builds the engine for `kind` (which must already be resolved via
/// ResolveIoEngine) over `file`'s mapping/descriptor. `row_bytes` is
/// the fixed transfer width. The file must outlive the engine.
std::unique_ptr<FaultEngine> MakeFaultEngine(IoEngineKind kind,
                                             const MmapFile* file,
                                             size_t row_bytes);

}  // namespace pieck

#endif  // PIECK_STORAGE_FAULT_ENGINE_H_
