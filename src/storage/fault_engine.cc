#include "storage/fault_engine.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if !defined(_WIN32)
#include <sys/uio.h>
#include <unistd.h>
#endif

#include "common/logging.h"
#include "storage/io_uring_engine.h"

namespace pieck {

namespace {

// One preadv/pwritev (or one SQE) carries at most this many rows: the
// POSIX iovec limit. CoalesceRuns splits longer runs so every run maps
// to exactly one vectored call.
constexpr size_t kMaxRunRows = 1024;  // == UIO_MAXIOV

}  // namespace

void CoalesceRuns(std::vector<RowIo>* ops, size_t row_bytes,
                  std::vector<size_t>* run_ends) {
  run_ends->clear();
  if (ops->empty()) return;
  std::sort(ops->begin(), ops->end(),
            [](const RowIo& a, const RowIo& b) { return a.offset < b.offset; });
  size_t run_len = 1;
  for (size_t i = 1; i < ops->size(); ++i) {
    const bool contiguous =
        (*ops)[i].offset ==
        (*ops)[i - 1].offset + static_cast<int64_t>(row_bytes);
    if (contiguous && run_len < kMaxRunRows) {
      ++run_len;
    } else {
      run_ends->push_back(i);
      run_len = 1;
    }
  }
  run_ends->push_back(ops->size());
}

#if defined(_WIN32)

void SyncRunIo(int, const RowIo*, size_t, size_t, bool) {
  PIECK_CHECK(false) << "batched row I/O is POSIX-only";
}

#else

/// One offset-contiguous run as a single preadv/pwritev, retrying
/// partial transfers (the file region always exists, so EOF shorts
/// cannot happen; partials only arise from signals or huge runs).
void SyncRunIo(int fd, const RowIo* ops, size_t count, size_t row_bytes,
               bool write) {
  struct iovec iov[kMaxRunRows];
  PIECK_CHECK(count <= kMaxRunRows) << "run exceeds the iovec limit";
  for (size_t i = 0; i < count; ++i) {
    iov[i].iov_base = ops[i].buf;
    iov[i].iov_len = row_bytes;
  }
  int64_t offset = ops[0].offset;
  size_t first = 0;
  size_t first_done = 0;  // bytes of iov[first] already transferred
  int64_t remaining = static_cast<int64_t>(count * row_bytes);
  while (remaining > 0) {
    iov[first].iov_base =
        reinterpret_cast<char*>(ops[first].buf) + first_done;
    iov[first].iov_len = row_bytes - first_done;
    const ssize_t n =
        write ? ::pwritev(fd, iov + first, static_cast<int>(count - first),
                          offset)
              : ::preadv(fd, iov + first, static_cast<int>(count - first),
                         offset);
    if (n < 0) {
      PIECK_CHECK(errno == EINTR)
          << (write ? "pwritev" : "preadv")
          << " failed: " << std::strerror(errno);
      continue;
    }
    PIECK_CHECK(n > 0) << (write ? "pwritev" : "preadv")
                       << " transferred 0 bytes inside the file";
    remaining -= n;
    offset += n;
    size_t done = first_done + static_cast<size_t>(n);
    first += done / row_bytes;
    first_done = done % row_bytes;
  }
}

#endif  // _WIN32

namespace {

/// The reference engine: today's demand-paged behavior, byte for byte.
/// Reads and writes memcpy through the shared mapping in the caller's
/// op order; cold pages are served by synchronous faults exactly as
/// before the engine layer existed.
class MmapTouchEngine final : public FaultEngine {
 public:
  MmapTouchEngine(const MmapFile* file, size_t row_bytes)
      : file_(file), row_bytes_(row_bytes) {}

  IoEngineKind kind() const override { return IoEngineKind::kMmapTouch; }

  void ReadBatch(std::vector<RowIo>* ops) override {
    const char* base = static_cast<const char*>(file_->data());
    for (const RowIo& op : *ops) {
      std::memcpy(op.buf, base + op.offset, row_bytes_);
    }
    stats_.read_rows += static_cast<int64_t>(ops->size());
    stats_.read_runs += static_cast<int64_t>(ops->size());
  }

  void WriteBatch(std::vector<RowIo>* ops) override {
    char* base = static_cast<char*>(const_cast<void*>(file_->data()));
    for (const RowIo& op : *ops) {
      std::memcpy(base + op.offset, op.buf, row_bytes_);
    }
    stats_.write_rows += static_cast<int64_t>(ops->size());
    stats_.write_runs += static_cast<int64_t>(ops->size());
  }

 private:
  const MmapFile* file_;
  size_t row_bytes_;
};

/// Offset-sorted batched positioned I/O: never touches the mapping, so
/// no page-table population, no fault storms, no DONTNEED churn.
class PreadBatchEngine final : public FaultEngine {
 public:
  PreadBatchEngine(const MmapFile* file, size_t row_bytes)
      : file_(file), row_bytes_(row_bytes) {}

  IoEngineKind kind() const override { return IoEngineKind::kPreadBatch; }

  void ReadBatch(std::vector<RowIo>* ops) override { Run(ops, false); }
  void WriteBatch(std::vector<RowIo>* ops) override { Run(ops, true); }

 private:
  void Run(std::vector<RowIo>* ops, bool write) {
    if (ops->empty()) return;
    CoalesceRuns(ops, row_bytes_, &run_ends_);
    size_t begin = 0;
    for (const size_t end : run_ends_) {
      SyncRunIo(file_->fd(), ops->data() + begin, end - begin, row_bytes_,
                write);
      begin = end;
    }
    (write ? stats_.write_rows : stats_.read_rows) +=
        static_cast<int64_t>(ops->size());
    (write ? stats_.write_runs : stats_.read_runs) +=
        static_cast<int64_t>(run_ends_.size());
  }

  const MmapFile* file_;
  size_t row_bytes_;
  std::vector<size_t> run_ends_;
};

}  // namespace

bool IoUringSupported() { return IoUringProbe(); }

IoEngineKind ResolveIoEngine(IoEngineKind requested) {
  if (requested == IoEngineKind::kIoUring && !IoUringSupported()) {
    return IoEngineKind::kPreadBatch;
  }
  return requested;
}

std::unique_ptr<FaultEngine> MakeFaultEngine(IoEngineKind kind,
                                             const MmapFile* file,
                                             size_t row_bytes) {
  PIECK_CHECK(file != nullptr && row_bytes > 0) << "fault engine needs a file";
  switch (kind) {
    case IoEngineKind::kMmapTouch:
      return std::make_unique<MmapTouchEngine>(file, row_bytes);
    case IoEngineKind::kPreadBatch:
      return std::make_unique<PreadBatchEngine>(file, row_bytes);
    case IoEngineKind::kIoUring: {
      auto ring = MakeIoUringEngine(file, row_bytes);
      PIECK_CHECK(ring != nullptr)
          << "io_uring engine requested on a host without io_uring; call "
             "ResolveIoEngine first";
      return ring;
    }
  }
  return nullptr;
}

}  // namespace pieck
