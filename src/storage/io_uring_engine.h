/// \file
/// Internal seam between the engine factory and the io_uring backend.
/// Not part of the storage API — include storage/fault_engine.h.
#ifndef PIECK_STORAGE_IO_URING_ENGINE_H_
#define PIECK_STORAGE_IO_URING_ENGINE_H_

#include <memory>

#include "storage/fault_engine.h"
#include "storage/mmap_file.h"

namespace pieck {

/// One setup/teardown round-trip against the kernel; cached. False on
/// non-Linux builds, kernels without io_uring, and sandboxes that block
/// io_uring_setup (ENOSYS/EPERM).
bool IoUringProbe();

/// Builds the ring-backed engine, or nullptr when IoUringProbe() is
/// false (callers resolve to pread-batch first).
std::unique_ptr<FaultEngine> MakeIoUringEngine(const MmapFile* file,
                                               size_t row_bytes);

/// Synchronous vectored transfer of one offset-contiguous run (shared
/// by pread-batch and the ring engine's degraded paths).
void SyncRunIo(int fd, const RowIo* ops, size_t count, size_t row_bytes,
               bool write);

}  // namespace pieck

#endif  // PIECK_STORAGE_IO_URING_ENGINE_H_
