/// \file
/// Int8-quantized item table for shortlist scoring.
///
/// The quantized serving path trades one cheap approximate pass for the
/// expensive exact one: score every item against a per-row symmetric
/// int8 quantization of the embedding table (8x smaller than the fp64
/// table, integer multiply-adds), keep a shortlist comfortably larger
/// than K, and rerank only the shortlist with exact fp64 dots. The
/// integer pass is **exactly deterministic**: int32 accumulation is
/// associative, so the scalar and AVX2 scorers produce bit-identical
/// approximate scores, and the whole quantized path is bit-identical
/// across backends and thread counts (only its *recall* against the
/// exact oracle is approximate; see docs/SERVING.md for the error
/// model and the tested shortlist margin).
#ifndef PIECK_SERVING_QUANT_TABLE_H_
#define PIECK_SERVING_QUANT_TABLE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace pieck::serving {

/// Per-row symmetric int8 quantization of an item-embedding table:
/// q[r][i] = round(v[r][i] / scale_r) with scale_r = max_i|v[r][i]|/127,
/// so every code lies in [-127, 127] (never -128 — required by the AVX2
/// scorer's saturating pairwise adds). An all-zero row gets scale 0 and
/// all-zero codes.
class Int8ItemTable {
 public:
  Int8ItemTable() = default;

  /// Quantizes `items` (rows x cols, row-major). cols must stay below
  /// 2^16 so the int32 row accumulator cannot overflow
  /// (|acc| <= cols * 127^2).
  static Int8ItemTable Build(const Matrix& items);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Approximate whole-table scores: out[r] ~= dot(row_r, u). The user
  /// vector is quantized the same way (scale max|u|/127), the integer
  /// dot runs in int32, and out[r] = (scale_r * scale_u) * idot_r with
  /// that exact expression order — bit-identical on every backend.
  /// `u` holds cols() doubles, `out` rows() doubles.
  void ScoreAll(const double* u, double* out) const;

  /// Resident bytes of the codes + scales (serving telemetry).
  int64_t FootprintBytes() const {
    return static_cast<int64_t>(q_.capacity() * sizeof(int8_t) +
                                row_scale_.capacity() * sizeof(double));
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int8_t> q_;  // row-major rows x cols codes
  Vec row_scale_;          // dequantization scale per row
};

namespace internal {

/// Integer row scores: iout[r] = sum_i q[r*cols + i] * uq[i], r in
/// [0, rows). The scalar reference; exact (no overflow by the cols
/// bound above).
void QuantScoresScalar(const int8_t* q, size_t rows, size_t cols,
                       const int8_t* uq, int32_t* iout);

#if defined(PIECK_HAVE_AVX2)
/// AVX2 scorer via the |row| x sign-adjusted-user maddubs identity;
/// bit-identical to the scalar reference (integer arithmetic is exact).
/// Only callable on CPUs with AVX2 (the caller dispatches through the
/// kernel layer's runtime backend selection).
void QuantScoresAvx2(const int8_t* q, size_t rows, size_t cols,
                     const int8_t* uq, int32_t* iout);
#endif

}  // namespace internal

}  // namespace pieck::serving

#endif  // PIECK_SERVING_QUANT_TABLE_H_
