#include "serving/quant_table.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck::serving {

namespace {

/// Quantizes `n` doubles into [-127, 127] codes with symmetric scale
/// max|x|/127. Returns the scale (0 for an all-zero vector). Rounding
/// is round-half-away-from-zero via llround — one fixed choice so codes
/// never depend on the caller's FP environment.
double QuantizeVector(const double* x, size_t n, int8_t* out) {
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double a = std::fabs(x[i]);
    if (a > max_abs) max_abs = a;
  }
  if (max_abs == 0.0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return 0.0;
  }
  const double scale = max_abs / 127.0;
  for (size_t i = 0; i < n; ++i) {
    long long code = std::llround(x[i] / scale);
    if (code > 127) code = 127;
    if (code < -127) code = -127;
    out[i] = static_cast<int8_t>(code);
  }
  return scale;
}

}  // namespace

Int8ItemTable Int8ItemTable::Build(const Matrix& items) {
  // cols < 2^16 keeps |sum q*u| <= cols * 127^2 < 2^31 (int32-exact);
  // embedding dims in this library are O(100).
  PIECK_CHECK(items.cols() < (1u << 16));
  Int8ItemTable table;
  table.rows_ = items.rows();
  table.cols_ = items.cols();
  table.q_.resize(items.rows() * items.cols());
  table.row_scale_.resize(items.rows());
  for (size_t r = 0; r < items.rows(); ++r) {
    table.row_scale_[r] = QuantizeVector(items.RowPtr(r), items.cols(),
                                         table.q_.data() + r * items.cols());
  }
  return table;
}

void Int8ItemTable::ScoreAll(const double* u, double* out) const {
  thread_local std::vector<int8_t> uq;
  thread_local std::vector<int32_t> idots;
  uq.resize(cols_);
  idots.resize(rows_);
  const double user_scale = QuantizeVector(u, cols_, uq.data());
  if (user_scale == 0.0) {
    // A zero user scores exactly 0 everywhere; so does the oracle.
    for (size_t r = 0; r < rows_; ++r) out[r] = 0.0;
    return;
  }

#if defined(PIECK_HAVE_AVX2)
  // Follow the kernel layer's runtime backend selection (PIECK_SIMD
  // honoured); scalar and AVX2 produce bit-identical integers, so this
  // only decides speed.
  if (ActiveKernels().backend == KernelBackend::kAvx2) {
    internal::QuantScoresAvx2(q_.data(), rows_, cols_, uq.data(),
                              idots.data());
  } else {
    internal::QuantScoresScalar(q_.data(), rows_, cols_, uq.data(),
                                idots.data());
  }
#else
  internal::QuantScoresScalar(q_.data(), rows_, cols_, uq.data(),
                              idots.data());
#endif

  for (size_t r = 0; r < rows_; ++r) {
    out[r] = (row_scale_[r] * user_scale) * static_cast<double>(idots[r]);
  }
}

namespace internal {

void QuantScoresScalar(const int8_t* q, size_t rows, size_t cols,
                       const int8_t* uq, int32_t* iout) {
  for (size_t r = 0; r < rows; ++r) {
    const int8_t* row = q + r * cols;
    int32_t acc = 0;
    for (size_t i = 0; i < cols; ++i) {
      acc += static_cast<int32_t>(row[i]) * static_cast<int32_t>(uq[i]);
    }
    iout[r] = acc;
  }
}

}  // namespace internal

}  // namespace pieck::serving
