// AVX2 int8 shortlist scorer. Compiled with -mavx2 only on x86-64 with
// PIECK_ENABLE_SIMD=ON; dispatched at runtime through the kernel
// layer's backend selection (quant_table.cc), so it never executes on a
// CPU without AVX2.
//
// Identity: row_i * u_i = |row_i| * sign(row_i) * u_i, so
// vpmaddubsw(|row| as u8, vpsignb(u, row) as s8) yields exact int16
// pairwise sums — |products| <= 127*127, so a pair is <= 32258 < 32767
// and the saturating add never saturates (codes are clamped to
// [-127, 127] at build time; -128 cannot occur). vpmaddwd against ones
// widens to int32 lanes. Integer addition is associative, so the result
// equals the scalar reference bit for bit.

#include "serving/quant_table.h"

#if defined(PIECK_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace pieck::serving {
namespace internal {

namespace {

/// Horizontal sum of 8 int32 lanes.
inline int32_t SumLanes(__m256i v) {
  const __m128i s =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  const __m128i s2 =
      _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  const __m128i s3 =
      _mm_add_epi32(s2, _mm_shuffle_epi32(s2, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s3);
}

}  // namespace

void QuantScoresAvx2(const int8_t* q, size_t rows, size_t cols,
                     const int8_t* uq, int32_t* iout) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  const size_t n32 = cols & ~static_cast<size_t>(31);
  for (size_t r = 0; r < rows; ++r) {
    const int8_t* row = q + r * cols;
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i < n32; i += 32) {
      const __m256i rv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
      const __m256i uv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(uq + i));
      const __m256i pairs = _mm256_maddubs_epi16(_mm256_abs_epi8(rv),
                                                 _mm256_sign_epi8(uv, rv));
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones16));
    }
    int32_t total = SumLanes(acc);
    for (; i < cols; ++i) {
      total += static_cast<int32_t>(row[i]) * static_cast<int32_t>(uq[i]);
    }
    iout[r] = total;
  }
}

}  // namespace internal
}  // namespace pieck::serving

#endif  // PIECK_HAVE_AVX2 && __AVX2__
