/// \file
/// Deterministic exact partial-select for the top-K serving path.
///
/// Every ranked surface in the library (ER@K membership, the serving
/// path's recommendation lists) reduces to "the K best (score, item)
/// pairs of a score array". This header fixes one total order for that
/// question and provides two exact selectors over it:
///
///   - `TopKSelector`: a bounded min-heap with a running threshold. The
///     common serving case (K ≪ n) offers candidates in blocks; once
///     the heap is full, candidates below `threshold()` are rejected
///     with a single compare, so a streamed scan does O(n) compares
///     plus O(K log K · log(n/K)) expected heap work.
///   - `FloydRivestSelect`: the classic Floyd–Rivest SELECT over the
///     same order, for the large-K regime (K a sizable fraction of n)
///     where a bounded heap degrades toward a full sort.
///
/// ## Tie-break contract
///
/// Candidate (s, i) ranks ahead of (s', i') iff `s > s'`, or `s == s'`
/// and `i < i'` — **lower item id wins exact ties**. This makes the
/// order total (ids are distinct), so the top-K *list* — not just the
/// set — is a pure function of the score array. Scores produced by the
/// kernel layer are bit-identical across SIMD backends and thread
/// counts (see tensor/kernels.h), hence so is every top-K list built
/// here. Scores must be NaN-free; comparisons with NaN would break the
/// total order (denormals, ±0.0 and infinities are fine).
#ifndef PIECK_SERVING_TOPK_SELECT_H_
#define PIECK_SERVING_TOPK_SELECT_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace pieck::serving {

/// One ranked candidate.
struct ScoredItem {
  double score = 0.0;
  int item = 0;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.score == b.score && a.item == b.item;
  }
};

/// The serving order: true iff `a` ranks strictly ahead of `b` (higher
/// score first; lower item id on exact score ties). A strict total
/// order for distinct items.
inline bool Better(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Bounded selector keeping the K best candidates seen so far under
/// `Better`, with a running rejection threshold. Not thread-safe;
/// serving code keeps one per worker and `Reset`s it between users.
class TopKSelector {
 public:
  /// Starts a fresh selection of the best `k` candidates (k >= 0).
  void Reset(int k);

  int k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return static_cast<int>(heap_.size()) == k_; }

  /// Once `full()`, any candidate with score strictly below this cannot
  /// enter the selection (candidates *at* the threshold still can, by
  /// the id tie-break). -inf until full, so nothing is rejected early.
  double threshold() const { return threshold_; }

  /// Offers one candidate.
  void Offer(double score, int item) {
    if (score < threshold_) return;
    OfferSlow(score, item);
  }

  /// Offers the contiguous score block for items
  /// [first_item, first_item + n); `scores[i]` belongs to item
  /// `first_item + i`. `exclude` is a sorted, strictly ascending id
  /// list (any ids; only those inside the block matter) whose items are
  /// skipped. Returns the number of exclusions consumed from the front
  /// of `exclude`, so a tiled caller can advance its exclusion cursor.
  size_t OfferBlock(const double* scores, int first_item, int n,
                    const int* exclude, size_t num_exclude);

  /// Moves the selection into `*out`, ranked best-first under `Better`.
  /// The selector is left empty (size() == 0) but keeps its k.
  void Drain(std::vector<ScoredItem>* out);

 private:
  void OfferSlow(double score, int item);

  std::vector<ScoredItem> heap_;  // min-heap under Better: root = worst
  int k_ = 0;
  double threshold_ = -std::numeric_limits<double>::infinity();
};

/// Floyd–Rivest SELECT: partitions `a[left..right]` (inclusive) so that
/// `a[k]` holds the element of rank k under `Better`, everything before
/// it ranks ahead of it, and everything after ranks behind. Expected
/// n + min(k, n-k) + o(n) comparisons. Exposed for the large-K serving
/// path and its tests.
void FloydRivestSelect(ScoredItem* a, int left, int right, int k);

/// Exact top-k of `candidates` (consumed as scratch), ranked best-first
/// into `*out`: Floyd–Rivest to cut the array down to k, then a sort of
/// the surviving prefix. k is clamped to the candidate count.
void SelectTopK(std::vector<ScoredItem>* candidates, int k,
                std::vector<ScoredItem>* out);

}  // namespace pieck::serving

#endif  // PIECK_SERVING_TOPK_SELECT_H_
