#include "serving/topk_select.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pieck::serving {

void TopKSelector::Reset(int k) {
  PIECK_CHECK(k >= 0);
  k_ = k;
  heap_.clear();
  if (static_cast<size_t>(k) > heap_.capacity()) {
    heap_.reserve(static_cast<size_t>(k));
  }
  threshold_ = k == 0 ? std::numeric_limits<double>::infinity()
                      : -std::numeric_limits<double>::infinity();
}

void TopKSelector::OfferSlow(double score, int item) {
  // The k == 0 selector keeps threshold_ at +inf, so Offer's fast
  // rejection already dropped everything except score == +inf; drop
  // that here too.
  if (k_ == 0) return;
  const ScoredItem cand{score, item};
  if (!full()) {
    heap_.push_back(cand);
    std::push_heap(heap_.begin(), heap_.end(), Better);
    if (full()) threshold_ = heap_.front().score;
    return;
  }
  // Equal-score candidates reach here (Offer only rejects strictly
  // below threshold); the id tie-break decides against the root.
  if (!Better(cand, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), Better);
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end(), Better);
  threshold_ = heap_.front().score;
}

size_t TopKSelector::OfferBlock(const double* scores, int first_item, int n,
                                const int* exclude, size_t num_exclude) {
  size_t e = 0;
  const int last = first_item + n;
  while (e < num_exclude && exclude[e] < first_item) ++e;
  if (e == num_exclude || exclude[e] >= last) {
    // No exclusions inside the block: tight threshold-reject loop.
    for (int i = 0; i < n; ++i) {
      const double s = scores[i];
      if (s >= threshold_) OfferSlow(s, first_item + i);
    }
    while (e < num_exclude && exclude[e] < last) ++e;  // unreachable ids
    return e;
  }
  for (int i = 0; i < n; ++i) {
    const int item = first_item + i;
    if (e < num_exclude && exclude[e] == item) {
      ++e;
      continue;
    }
    const double s = scores[i];
    if (s >= threshold_) OfferSlow(s, item);
  }
  while (e < num_exclude && exclude[e] < last) ++e;
  return e;
}

void TopKSelector::Drain(std::vector<ScoredItem>* out) {
  std::sort(heap_.begin(), heap_.end(), Better);
  out->assign(heap_.begin(), heap_.end());
  heap_.clear();
}

void FloydRivestSelect(ScoredItem* a, int left, int right, int k) {
  // Classic Floyd–Rivest SELECT (CACM 1975, Algorithm 489) over the
  // strict total order `Better`. The sampling step recursively selects
  // inside a small subrange around the expected position of rank k, so
  // the final partition pass runs against a near-median pivot.
  while (right > left) {
    if (right - left > 600) {
      const double n = static_cast<double>(right - left + 1);
      const double i = static_cast<double>(k - left + 1);
      const double z = std::log(n);
      const double s = 0.5 * std::exp(2.0 * z / 3.0);
      const double sd = 0.5 * std::sqrt(z * s * (n - s) / n) *
                        (i - n / 2.0 < 0.0 ? -1.0 : 1.0);
      const int new_left = std::max(
          left, static_cast<int>(k - i * s / n + sd));
      const int new_right = std::min(
          right, static_cast<int>(k + (n - i) * s / n + sd));
      FloydRivestSelect(a, new_left, new_right, k);
    }
    const ScoredItem t = a[k];
    int i = left;
    int j = right;
    std::swap(a[left], a[k]);
    if (Better(t, a[right])) std::swap(a[right], a[left]);
    while (i < j) {
      std::swap(a[i], a[j]);
      ++i;
      --j;
      while (Better(a[i], t)) ++i;
      while (Better(t, a[j])) --j;
    }
    if (a[left] == t) {
      std::swap(a[left], a[j]);
    } else {
      ++j;
      std::swap(a[j], a[right]);
    }
    if (j <= k) left = j + 1;
    if (k <= j) right = j - 1;
  }
}

void SelectTopK(std::vector<ScoredItem>* candidates, int k,
                std::vector<ScoredItem>* out) {
  PIECK_CHECK(k >= 0);
  const int n = static_cast<int>(candidates->size());
  if (k > n) k = n;
  if (k == 0) {
    out->clear();
    return;
  }
  if (k < n) {
    FloydRivestSelect(candidates->data(), 0, n - 1, k - 1);
  }
  std::sort(candidates->begin(), candidates->begin() + k, Better);
  out->assign(candidates->begin(), candidates->begin() + k);
}

}  // namespace pieck::serving
