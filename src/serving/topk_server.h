/// \file
/// Per-user top-K recommendation: fused scoring + exact partial-select.
///
/// `TopKServer` answers "this user's K best uninteracted items" the way
/// an inference server would, instead of the score-everything-then-sort
/// shape the evaluation layer used to run:
///
///   - **Fused tiles.** The item table is scored in tile-sized row
///     ranges (`RecModel::ScoreItemsRange` — one batched gemv per tile
///     for MF), and each tile's scores stream straight into a bounded
///     `TopKSelector`, so the working set is one tile, not the whole
///     score table, and most candidates die on a single threshold
///     compare.
///   - **Cached norm bounds (MF).** The constructor computes per-item
///     L2 norms and caches each tile's max. By Cauchy–Schwarz, a tile whose
///     `||u|| * max_norm` upper bound (inflated by `kNormBoundSlack`
///     to dominate the rounding of the cached norms) falls strictly
///     below the selector's running threshold cannot contain a top-K
///     item and is skipped without scoring — the win grows exactly when
///     an attack concentrates mass on a few boosted items. Rows whose
///     squared norm underflows to 0 while nonzero (denormal
///     embeddings) poison their tile's bound to +inf, never pruning.
///   - **Floyd–Rivest fallback.** When K is a sizable fraction of the
///     candidates a bounded heap degrades toward a full sort, so the
///     server materializes (score, id) pairs once and runs
///     Floyd–Rivest SELECT instead.
///   - **Optional int8 shortlist (MF).** `Options::quantized` scores
///     the whole table against an int8 copy (8x smaller, integer
///     multiply-adds), keeps a shortlist of `k * kShortlistOversample
///     + kShortlistSlack` candidates, and reranks only the shortlist
///     with exact fp64 dots. The reranked scores are bit-identical to
///     the full scan; only recall is approximate (>= 0.999 @10 on the
///     tested margin — see docs/SERVING.md and tests/serving_test.cc).
///
/// ## Determinism contract
///
/// Exact-mode results are **bit-identical to the fp64 full scan**: tile
/// scores come from the same kernel contract as `ScoreItems`, pruning
/// only skips tiles that provably cannot contribute, and selection uses
/// the total order of topk_select.h (ties -> lower item id). Hence the
/// top-K list is identical across SIMD backends (`PIECK_SIMD`), thread
/// counts, and tile sizes. The quantized path is equally deterministic
/// (integer scoring + the same total order); it differs from the full
/// scan only when the true top-K falls outside the shortlist.
#ifndef PIECK_SERVING_TOPK_SERVER_H_
#define PIECK_SERVING_TOPK_SERVER_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "model/rec_model.h"
#include "serving/quant_table.h"
#include "serving/topk_select.h"

namespace pieck::serving {

/// Shortlist size for the quantized path: k * oversample + slack,
/// clamped to the candidate count. The margin is a tested constant:
/// tests/serving_test.cc asserts recall@10 >= 0.999 against the exact
/// oracle with exactly these values.
inline constexpr int kShortlistOversample = 4;
inline constexpr int kShortlistSlack = 32;

/// Inflation applied to the cached Cauchy–Schwarz bound before pruning
/// a tile. The cached norms carry O(d) rounding (relative error well
/// under 1e-12); multiplying the bound by 1 + 1e-9 dominates it, so a
/// pruned tile provably contains no candidate at or above the
/// threshold.
inline constexpr double kNormBoundSlack = 1.0 + 1e-9;

struct TopKServerOptions {
  /// Item rows scored per fused tile. 512 rows x d=64 doubles = 256 KiB
  /// of streamed table per tile with a 4 KiB score scratch.
  int tile_items = 512;
  /// Enables the int8 shortlist + exact-rerank path (MF only; ignored
  /// for models without a dot-product interaction — check
  /// `quantized_active()`).
  bool quantized = false;
};

/// Serving telemetry for one Recommend call (optional out-param).
struct RecommendStats {
  int tiles_scored = 0;
  int tiles_pruned = 0;
  /// Candidates the exact rerank saw (quantized path only).
  int shortlist_size = 0;
};

/// The per-user top-K serving path over one (model, global) snapshot.
/// `model` and `g` must outlive the server; the constructor builds the
/// norm cache (and, if requested, the int8 table), so one server should
/// be reused for all users of an evaluation pass. All Recommend*
/// methods are const and thread-safe (per-thread scratch).
class TopKServer {
 public:
  TopKServer(const RecModel& model, const GlobalModel& g,
             TopKServerOptions options = {});

  /// True when the int8 shortlist path is built and will serve
  /// Recommend calls.
  bool quantized_active() const { return !quant_.empty(); }

  /// Resident bytes of the serving caches (norms + int8 table).
  int64_t FootprintBytes() const;

  /// Top-`k` items for `user` among items NOT in `exclude` (a sorted,
  /// strictly ascending id list — e.g. Dataset::ItemsOf). Fewer than k
  /// candidates (or k == 0) yield a short (or empty) list. `*out` is
  /// ranked best-first under the serving order.
  void Recommend(const Vec& user, int k, const int* exclude,
                 size_t num_exclude, std::vector<ScoredItem>* out,
                 RecommendStats* stats = nullptr) const;

  void Recommend(const Vec& user, int k, const std::vector<int>& exclude,
                 std::vector<ScoredItem>* out,
                 RecommendStats* stats = nullptr) const {
    Recommend(user, k, exclude.data(), exclude.size(), out, stats);
  }

  /// Top-`k` for every row of `users` (no exclusions), fanned over
  /// `pool` (nullptr = serial). Each user's result lands in its
  /// pre-sized slot, so the output is bit-identical for any pool size.
  void RecommendBatch(const Matrix& users, int k, ThreadPool* pool,
                      std::vector<std::vector<ScoredItem>>* out) const;

 private:
  /// Exact fused tile scan (the default path).
  void RecommendTiled(const Vec& user, int k, const int* exclude,
                      size_t num_exclude, std::vector<ScoredItem>* out,
                      RecommendStats* stats) const;
  /// Materialize-all + Floyd–Rivest (large K relative to candidates).
  void RecommendLargeK(const Vec& user, int k, const int* exclude,
                       size_t num_exclude, std::vector<ScoredItem>* out) const;
  /// int8 shortlist + exact rerank.
  void RecommendQuantized(const Vec& user, int k, const int* exclude,
                          size_t num_exclude, std::vector<ScoredItem>* out,
                          RecommendStats* stats) const;

  /// Exact score of one item, bitwise the full-scan value.
  double ExactScore(const Vec& user, int item) const;

  const RecModel& model_;
  const GlobalModel& g_;
  TopKServerOptions options_;
  /// Per-tile max L2 norm of the item rows (MF pruning bound); +inf for
  /// tiles holding a row whose squared norm underflowed. Empty for
  /// models without a dot-product interaction.
  Vec tile_max_norm_;
  Int8ItemTable quant_;
};

}  // namespace pieck::serving

#endif  // PIECK_SERVING_TOPK_SERVER_H_
