#include "serving/topk_server.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace pieck::serving {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// L2 norm of `x`, rounded-up-safe for pruning: a squared norm that
/// underflows to 0 while the vector is nonzero (denormal coordinates)
/// yields +inf, so the Cauchy–Schwarz bound built from it can never
/// wrongly prune.
double PruningNorm(const double* x, size_t n) {
  double sq = 0.0;
  bool nonzero = false;
  for (size_t i = 0; i < n; ++i) {
    sq += x[i] * x[i];
    nonzero = nonzero || x[i] != 0.0;
  }
  if (sq == 0.0 && nonzero) return kInf;
  return std::sqrt(sq);
}

/// Candidates the heap path would stream for this call; when K is this
/// large a fraction of the table, materialize-all + Floyd–Rivest wins
/// over a bounded heap that accepts nearly everything.
bool UseLargeKPath(int k, int num_items) {
  return static_cast<int64_t>(k) * 8 >= num_items;
}

}  // namespace

TopKServer::TopKServer(const RecModel& model, const GlobalModel& g,
                       TopKServerOptions options)
    : model_(model), g_(g), options_(options) {
  PIECK_CHECK(options_.tile_items > 0);
  const bool dot_interaction = model.kind() == ModelKind::kMatrixFactorization;
  if (dot_interaction) {
    const Matrix& items = g.item_embeddings;
    const int n = g.num_items();
    const int tile = options_.tile_items;
    const int num_tiles = n == 0 ? 0 : (n + tile - 1) / tile;
    tile_max_norm_.assign(static_cast<size_t>(num_tiles), 0.0);
    for (int j = 0; j < n; ++j) {
      const double norm =
          PruningNorm(items.RowPtr(static_cast<size_t>(j)), items.cols());
      double& tmax = tile_max_norm_[static_cast<size_t>(j / tile)];
      if (norm > tmax) tmax = norm;
    }
    if (options_.quantized) quant_ = Int8ItemTable::Build(items);
  }
}

int64_t TopKServer::FootprintBytes() const {
  return static_cast<int64_t>(tile_max_norm_.capacity() * sizeof(double)) +
         quant_.FootprintBytes();
}

double TopKServer::ExactScore(const Vec& user, int item) const {
  // One-row ScoreItemsRange: for MF this is a 1-row gemv, whose row
  // reduction is bitwise the full-scan gemv's row reduction — the
  // rerank reproduces full-scan scores exactly.
  double s;
  model_.ScoreItemsRange(g_, user, item, 1, &s);
  return s;
}

void TopKServer::Recommend(const Vec& user, int k, const int* exclude,
                           size_t num_exclude, std::vector<ScoredItem>* out,
                           RecommendStats* stats) const {
  if (stats != nullptr) *stats = RecommendStats{};
  if (k <= 0 || g_.num_items() == 0) {
    out->clear();
    return;
  }
  const int n = g_.num_items();
  if (quantized_active() &&
      k * kShortlistOversample + kShortlistSlack < n) {
    RecommendQuantized(user, k, exclude, num_exclude, out, stats);
    return;
  }
  if (UseLargeKPath(k, n)) {
    RecommendLargeK(user, k, exclude, num_exclude, out);
    return;
  }
  RecommendTiled(user, k, exclude, num_exclude, out, stats);
}

void TopKServer::RecommendTiled(const Vec& user, int k, const int* exclude,
                                size_t num_exclude,
                                std::vector<ScoredItem>* out,
                                RecommendStats* stats) const {
  const int n = g_.num_items();
  const int tile = options_.tile_items;
  const bool can_prune = !tile_max_norm_.empty();
  const double user_norm =
      can_prune ? PruningNorm(user.data(), user.size()) : 0.0;

  thread_local TopKSelector sel;
  thread_local Vec scores;
  sel.Reset(k);
  scores.resize(static_cast<size_t>(tile));

  size_t e = 0;
  for (int t0 = 0; t0 < n; t0 += tile) {
    const int tn = std::min(tile, n - t0);
    if (can_prune) {
      // Strict '<': a tile whose inflated bound ties the threshold may
      // still hold an id that wins the tie-break. A NaN bound
      // (inf * 0) compares false — conservative, never prunes.
      const double bound =
          user_norm * tile_max_norm_[static_cast<size_t>(t0 / tile)] *
          kNormBoundSlack;
      if (bound < sel.threshold()) {
        while (e < num_exclude && exclude[e] < t0 + tn) ++e;
        if (stats != nullptr) ++stats->tiles_pruned;
        continue;
      }
    }
    model_.ScoreItemsRange(g_, user, t0, tn, scores.data());
    e += sel.OfferBlock(scores.data(), t0, tn, exclude + e, num_exclude - e);
    if (stats != nullptr) ++stats->tiles_scored;
  }
  sel.Drain(out);
}

void TopKServer::RecommendLargeK(const Vec& user, int k, const int* exclude,
                                 size_t num_exclude,
                                 std::vector<ScoredItem>* out) const {
  const int n = g_.num_items();
  thread_local Vec scores;
  thread_local std::vector<ScoredItem> cands;
  scores.resize(static_cast<size_t>(n));
  model_.ScoreItems(g_, user, scores.data());
  cands.clear();
  cands.reserve(static_cast<size_t>(n));
  size_t e = 0;
  for (int j = 0; j < n; ++j) {
    if (e < num_exclude && exclude[e] == j) {
      ++e;
      continue;
    }
    cands.push_back(ScoredItem{scores[static_cast<size_t>(j)], j});
  }
  SelectTopK(&cands, k, out);
}

void TopKServer::RecommendQuantized(const Vec& user, int k,
                                    const int* exclude, size_t num_exclude,
                                    std::vector<ScoredItem>* out,
                                    RecommendStats* stats) const {
  const int n = g_.num_items();
  const int shortlist_k =
      std::min(k * kShortlistOversample + kShortlistSlack, n);

  thread_local Vec approx;
  thread_local TopKSelector sel;
  thread_local std::vector<ScoredItem> shortlist;
  thread_local std::vector<ScoredItem> cands;

  approx.resize(static_cast<size_t>(n));
  quant_.ScoreAll(user.data(), approx.data());

  sel.Reset(shortlist_k);
  sel.OfferBlock(approx.data(), 0, n, exclude, num_exclude);
  sel.Drain(&shortlist);
  if (stats != nullptr) stats->shortlist_size =
      static_cast<int>(shortlist.size());

  // Exact rerank: replace every approximate score with the fp64 score
  // the full scan would have produced, then re-select under the same
  // total order. Survivor scores (and hence ranks among survivors) are
  // bit-identical to the exact paths.
  cands.clear();
  cands.reserve(shortlist.size());
  for (const ScoredItem& c : shortlist) {
    cands.push_back(ScoredItem{ExactScore(user, c.item), c.item});
  }
  SelectTopK(&cands, k, out);
}

void TopKServer::RecommendBatch(
    const Matrix& users, int k, ThreadPool* pool,
    std::vector<std::vector<ScoredItem>>* out) const {
  const size_t num_users = users.rows();
  out->resize(num_users);
  PIECK_CHECK(users.cols() == static_cast<size_t>(g_.dim()) ||
              num_users == 0);
  ThreadPool::ParallelForOrSerial(pool, num_users, [&](size_t i) {
    // Each index writes only its own slot; results are a pure function
    // of (user row, k), so the fan-out order cannot change them.
    thread_local Vec row;
    row.assign(users.RowPtr(i), users.RowPtr(i) + users.cols());
    Recommend(row, k, nullptr, 0, &(*out)[i]);
  });
}

}  // namespace pieck::serving
