/// \file
/// Fixed-footprint latency histograms for the tail-latency harness.
///
/// Mean rounds/s hides exactly the behavior a production traffic model
/// exists to expose: a diurnal wave doubles the cohort for a few
/// rounds, churn makes a cold user fault in lazy state, and only the
/// p95/p99 of the affected stage moves. `LatencyHistogram` records
/// per-round stage times into geometric buckets (HdrHistogram-style:
/// bounded memory, bounded relative error) and reports quantiles;
/// `StageLatencies` is the per-stage bundle the benches accumulate from
/// `RoundStats` and emit as the `latency` section of their JSON.
#ifndef PIECK_WORKLOAD_LATENCY_H_
#define PIECK_WORKLOAD_LATENCY_H_

#include <cstdint>

namespace pieck {

/// Log-bucketed histogram over (0, ~4.7 h) of millisecond samples:
/// 64 octaves from 1 µs at 16 sub-buckets per octave gives a worst-case
/// relative quantile error of 2^(1/16) − 1 ≈ 4.4% per bucket, in 8 KB.
/// Exact min/max/sum/count ride along. Values at or below zero clamp
/// into the first bucket.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketsPerOctave = 16;
  static constexpr int kOctaves = 44;  // 1 µs · 2^44 ≈ 4.9 h
  static constexpr int kNumBuckets = kSubBucketsPerOctave * kOctaves;

  void Record(double ms);

  int64_t count() const { return count_; }
  double min_ms() const { return count_ > 0 ? min_ms_ : 0.0; }
  double max_ms() const { return count_ > 0 ? max_ms_ : 0.0; }
  double mean_ms() const {
    return count_ > 0 ? sum_ms_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile `q` in [0, 1] as the geometric midpoint of the bucket
  /// holding the ⌈q·count⌉-th sample (exact min/max at the ends).
  double Quantile(double q) const;

  void Reset();

 private:
  int64_t buckets_[kNumBuckets] = {};
  int64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// One histogram per round-pipeline stage plus the end-to-end round.
struct StageLatencies {
  enum Stage {
    kSelect = 0,
    kTrain,
    kRoute,
    kApply,
    kInteraction,
    kStall,  // pipelined engine: time the train stage waited for its
             // model snapshot / arena slot (0 in the barrier engine)
    kRound,  // sum of the stages: end-to-end round latency
    kNumStages,
  };

  static const char* StageName(int stage);

  LatencyHistogram stage[kNumStages];

  /// Records one round's stage times (milliseconds) and their sum.
  void RecordRound(double select_ms, double train_ms, double route_ms,
                   double apply_ms, double interaction_ms,
                   double stall_ms = 0.0);
};

}  // namespace pieck

#endif  // PIECK_WORKLOAD_LATENCY_H_
