#include "workload/latency.h"

#include <algorithm>
#include <cmath>

namespace pieck {

namespace {

constexpr double kFirstBucketMs = 1e-3;  // 1 µs

/// Bucket index of `ms`: sub-bucketed log2 of ms / 1 µs, clamped.
int BucketIndex(double ms) {
  if (!(ms > kFirstBucketMs)) return 0;
  const double octave = std::log2(ms / kFirstBucketMs);
  const int idx = static_cast<int>(octave *
                                   LatencyHistogram::kSubBucketsPerOctave);
  return std::min(idx, LatencyHistogram::kNumBuckets - 1);
}

/// Geometric midpoint of bucket `idx`.
double BucketMidMs(int idx) {
  const double lo =
      kFirstBucketMs *
      std::exp2(static_cast<double>(idx) /
                LatencyHistogram::kSubBucketsPerOctave);
  const double hi =
      kFirstBucketMs *
      std::exp2(static_cast<double>(idx + 1) /
                LatencyHistogram::kSubBucketsPerOctave);
  return std::sqrt(lo * hi);
}

}  // namespace

void LatencyHistogram::Record(double ms) {
  buckets_[BucketIndex(ms)]++;
  if (count_ == 0) {
    min_ms_ = max_ms_ = ms;
  } else {
    min_ms_ = std::min(min_ms_, ms);
    max_ms_ = std::max(max_ms_, ms);
  }
  ++count_;
  sum_ms_ += ms;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_ms_;
  if (q >= 1.0) return max_ms_;
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp the bucket estimate by the exact extremes so tiny sample
      // counts never report a quantile outside [min, max].
      return std::clamp(BucketMidMs(i), min_ms_, max_ms_);
    }
  }
  return max_ms_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

const char* StageLatencies::StageName(int s) {
  switch (s) {
    case kSelect:
      return "select";
    case kTrain:
      return "train";
    case kRoute:
      return "route";
    case kApply:
      return "apply";
    case kInteraction:
      return "interaction";
    case kStall:
      return "stall";
    case kRound:
      return "round";
  }
  return "?";
}

void StageLatencies::RecordRound(double select_ms, double train_ms,
                                 double route_ms, double apply_ms,
                                 double interaction_ms, double stall_ms) {
  stage[kSelect].Record(select_ms);
  stage[kTrain].Record(train_ms);
  stage[kRoute].Record(route_ms);
  stage[kApply].Record(apply_ms);
  stage[kInteraction].Record(interaction_ms);
  stage[kStall].Record(stall_ms);
  stage[kRound].Record(select_ms + train_ms + route_ms + apply_ms +
                       interaction_ms + stall_ms);
}

}  // namespace pieck
