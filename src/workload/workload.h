/// \file
/// Production-shaped traffic for the round engine: who shows up each
/// round, and how many.
///
/// Every experiment before this layer sampled participants uniformly
/// from a fixed population — the paper's protocol, but not production
/// reality, where per-user participation is heavily skewed, cohort
/// sizes wave with the clock, and users churn in and out. PIECK mines
/// *popularity*, so both the attack and the defenses behave differently
/// under skew; this layer makes that regime drivable from every bench.
///
/// Three composable pieces, configured by `WorkloadConfig`:
///   - a `ParticipationModel` (uniform, Zipf, exponential) drawing each
///     round's cohort from the currently active population;
///   - a diurnal arrival wave scaling the cohort target per round;
///   - user churn: at every round boundary a fraction of active users
///     leaves and a fraction of parked users (re)joins. Joins need no
///     eager state — `ClientStateStore` materializes a joining user's
///     embedding/engine lazily on its first participation.
///
/// Determinism contract: the default configuration (`IsTrivial()`) must
/// reproduce the legacy selection stream *bit-for-bit* — it performs
/// exactly one `rng.SampleWithoutReplacement(n, k)` call per round and
/// touches no other randomness, so every golden digest captured before
/// this layer existed still pins the engine. Non-trivial configurations
/// draw churn and skew randomness from a private stream seeded by
/// `WorkloadConfig::seed`, never from the round RNG, and are themselves
/// deterministic for any thread count (selection runs on the round
/// thread by contract).
#ifndef PIECK_WORKLOAD_WORKLOAD_H_
#define PIECK_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace pieck {

/// How per-user participation propensity is distributed.
enum class ParticipationKind {
  kUniform,      // every active user equally likely (the paper's protocol)
  kZipf,         // weight of the user at rank ρ is 1/(ρ+1)^s
  kExponential,  // weight of the user at rank ρ is exp(-rate·ρ/(n-1))
};

const char* ParticipationKindToString(ParticipationKind kind);

/// User churn at round boundaries. Leaves are processed before joins,
/// so a user parked at a boundary may rejoin at that same boundary (and
/// a user can never join and leave within one boundary). The active
/// population is clamped to at least one user.
struct ChurnConfig {
  /// Fraction of the *parked* population that joins per round.
  double join_rate = 0.0;
  /// Fraction of the *active* population that leaves per round.
  double leave_rate = 0.0;
  /// Fraction of users active at round 0 (the rest start parked).
  double initial_active = 1.0;

  bool enabled() const {
    return join_rate > 0.0 || leave_rate > 0.0 || initial_active < 1.0;
  }
};

/// Full description of one traffic shape. The default value is the
/// trivial workload: uniform participation, everyone always active,
/// flat arrivals — bit-identical to the pre-workload engine.
struct WorkloadConfig {
  ParticipationKind participation = ParticipationKind::kUniform;
  /// Zipf exponent s of the participation propensity (kZipf).
  double zipf_exponent = 1.0;
  /// Decay rate of the exponential propensity (kExponential).
  double exponential_rate = 4.0;

  /// Diurnal arrival wave: the cohort target of round r is scaled by
  /// 1 + amplitude·sin(2π·r/period). 0 disables; amplitude ≤ 1.
  double diurnal_amplitude = 0.0;
  int diurnal_period = 24;

  ChurnConfig churn;

  /// Hot-item interaction skew for synthetic data generators: a
  /// `hot_item_rate` fraction of interactions is redirected into the
  /// hottest `hot_item_fraction` slice of the item space. Consumed by
  /// the data-synthesis layer (bench_lib's scale sweep), not by the
  /// participation driver.
  double hot_item_fraction = 0.0;
  double hot_item_rate = 0.0;

  /// Seed of the private workload stream (rank permutation, churn).
  /// The round RNG is never used for workload randomness.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// True when this configuration is the legacy uniform path: no skew,
  /// no churn, no diurnal wave. `WorkloadDriver` then performs exactly
  /// the legacy selection draw.
  bool IsTrivial() const;

  /// Rejects out-of-range knobs (non-positive exponents/periods, rates
  /// outside [0, 1], amplitude outside [0, 1], hot-item knobs outside
  /// [0, 1], initial_active outside (0, 1]).
  Status Validate() const;
};

/// Draws one round's cohort from the active population. All randomness
/// comes from the caller's RNG, so a model is deterministic given its
/// construction parameters and the RNG state. Models advertising
/// `incremental()` additionally maintain the active roster themselves
/// (`BindRoster`/`SetActive`/`SampleActive`), so the driver never
/// re-materializes the active-id list per round.
class ParticipationModel {
 public:
  virtual ~ParticipationModel() = default;

  virtual const char* name() const = 0;

  /// Samples `k` distinct entries of `active` (ids in the combined
  /// population space) into `*out`, overwriting it. `k <= active.size()`
  /// by contract. One-shot: no prior `BindRoster` needed.
  virtual void SampleInto(const std::vector<int>& active, int k, Rng& rng,
                          std::vector<int>* out) = 0;

  /// True when the model keeps the roster incrementally; the driver then
  /// binds once, feeds churn events through `SetActive`, and samples
  /// O(k log n) per round via `SampleActive`.
  virtual bool incremental() const { return false; }
  /// (Re)binds the incremental roster: exactly the ids in `active` are
  /// selectable afterwards. O(n).
  virtual void BindRoster(const std::vector<int>& active);
  /// Marks one id (in)active. O(log n). Idempotent.
  virtual void SetActive(int id, bool active);
  /// Samples `k` distinct active ids into `*out`, `k <=` active count.
  virtual void SampleActive(int k, Rng& rng, std::vector<int>* out);

  /// Builds the model for `config` over a population of `n` combined
  /// ids. Skewed models assign propensity ranks by a permutation drawn
  /// from `Rng(config.seed)` so that user id carries no propensity hint.
  static std::unique_ptr<ParticipationModel> Create(
      const WorkloadConfig& config, int n);
};

/// Uniform participation: `SampleInto` over the identity-ordered full
/// population performs exactly `rng.SampleWithoutReplacement(n, k)`.
class UniformParticipation final : public ParticipationModel {
 public:
  const char* name() const override { return "uniform"; }
  void SampleInto(const std::vector<int>& active, int k, Rng& rng,
                  std::vector<int>* out) override;
};

/// Weighted participation (Zipf or exponential propensities) sampled by
/// k successive weighted draws without replacement over a Fenwick
/// (binary-indexed) tree of active propensities — O(k log n) per round
/// instead of the retired Efraimidis–Spirakis O(active) pass, with the
/// identical distribution (successive WOR draws are the *definition* of
/// weighted sampling without replacement; E–S keys reproduce it).
///
/// Fixed draw order (the determinism contract): for j = 0..k−1 the
/// sampler computes `total` as the tree's full prefix sum, draws one
/// `u = rng.Uniform()`, descends the tree for the smallest id whose
/// cumulative active weight exceeds `u·total`, removes that id's weight,
/// and appends the id to `*out`; after the k-th draw all k weights are
/// restored in draw order. Exactly k uniforms per round, consumed in
/// emission order — a pure function of the RNG stream and the roster,
/// independent of thread count. If floating-point rounding lands the
/// descent on an absent id (drawn earlier this round or inactive), the
/// next present id upward is taken (wrapping downward at the top end) —
/// still deterministic.
class SkewedParticipation final : public ParticipationModel {
 public:
  /// `weight_by_id[id]` is the propensity of combined id `id`; all
  /// weights must be positive.
  SkewedParticipation(std::string name, std::vector<double> weight_by_id);

  const char* name() const override { return name_.c_str(); }
  /// One-shot compatibility path: `BindRoster(active)` + `SampleActive`.
  void SampleInto(const std::vector<int>& active, int k, Rng& rng,
                  std::vector<int>* out) override;

  bool incremental() const override { return true; }
  void BindRoster(const std::vector<int>& active) override;
  void SetActive(int id, bool active) override;
  void SampleActive(int k, Rng& rng, std::vector<int>* out) override;

  const std::vector<double>& weights() const { return weight_by_id_; }
  int num_active() const { return num_active_; }
  /// Resident bytes of the weight/tree/roster arrays (telemetry).
  int64_t CapacityBytes() const;

 private:
  // Fenwick primitives over 0-based ids (1-based internally).
  void Add(int id, double delta);
  double TotalWeight() const;
  int FindPrefix(double target) const;

  std::string name_;
  std::vector<double> weight_by_id_;
  std::vector<double> tree_;      // Fenwick tree of active weights
  std::vector<uint8_t> in_tree_;  // id's weight currently in the tree
  std::vector<int> drawn_;        // scratch: this round's removals
  int n_ = 0;
  int top_bit_ = 0;  // largest power of two <= n_
  int num_active_ = 0;
};

/// Owns the per-run workload state: the participation model, the churn
/// roster, and the diurnal phase. One driver per server; `SelectInto`
/// is called once per round from the round thread.
class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadConfig config);

  /// Binds the driver to a population of `num_benign` churnable users
  /// plus `num_malicious` always-active tail ids (the attacker keeps
  /// its clients online). Called lazily by the first `SelectInto`;
  /// rebinding with a different split resets the churn roster.
  void BindPopulation(int num_benign, int num_malicious);

  /// Advances churn to the boundary of `round`, applies the diurnal
  /// wave to the `cohort_target`, and samples the round's cohort into
  /// `*out` (combined-population ids, distinct). The trivial
  /// configuration performs exactly the legacy
  /// `rng.SampleWithoutReplacement(n, min(k, n))` draw.
  void SelectInto(int round, int cohort_target, Rng& rng,
                  std::vector<int>* out);

  const WorkloadConfig& config() const { return config_; }
  bool trivial() const { return trivial_; }
  /// Currently active benign users (all of them for trivial configs).
  int active_benign() const;
  /// The cohort size the diurnal wave targets for `round` before
  /// clamping to the active population.
  int DiurnalCohort(int round, int cohort_target) const;

  /// Resident bytes of the roster/weight/scratch arrays (telemetry).
  int64_t CapacityBytes() const;

 private:
  void AdvanceChurn();

  WorkloadConfig config_;
  bool trivial_ = true;
  bool bound_ = false;
  int num_benign_ = 0;
  int num_malicious_ = 0;

  std::unique_ptr<ParticipationModel> model_;
  Rng churn_rng_{0};

  // Churn roster over benign ids; malicious ids never churn. Skewed
  // (incremental) models track the combined roster inside their Fenwick
  // tree and see churn as SetActive events; only the uniform non-trivial
  // path still materializes `active_ids_` (active benign + malicious)
  // each round.
  std::vector<int> active_benign_;
  std::vector<int> parked_;
  std::vector<int> active_ids_;
};

}  // namespace pieck

#endif  // PIECK_WORKLOAD_WORKLOAD_H_
