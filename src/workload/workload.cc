#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace pieck {

namespace {

// Sub-stream salts: the rank permutation and the churn roster draw from
// independent streams derived from WorkloadConfig::seed, so changing
// one knob never shifts the randomness of another.
constexpr uint64_t kRankSalt = 0x72616e6b5f70726dULL;   // "rank_prm"
constexpr uint64_t kChurnSalt = 0x636875726e5f7374ULL;  // "churn_st"

}  // namespace

const char* ParticipationKindToString(ParticipationKind kind) {
  switch (kind) {
    case ParticipationKind::kUniform:
      return "uniform";
    case ParticipationKind::kZipf:
      return "zipf";
    case ParticipationKind::kExponential:
      return "exponential";
  }
  return "?";
}

bool WorkloadConfig::IsTrivial() const {
  return participation == ParticipationKind::kUniform && !churn.enabled() &&
         diurnal_amplitude == 0.0;
}

Status WorkloadConfig::Validate() const {
  if (participation == ParticipationKind::kZipf && zipf_exponent <= 0.0) {
    return Status::InvalidArgument("workload: zipf_exponent must be > 0");
  }
  if (participation == ParticipationKind::kExponential &&
      exponential_rate <= 0.0) {
    return Status::InvalidArgument("workload: exponential_rate must be > 0");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    return Status::InvalidArgument(
        "workload: diurnal_amplitude must be in [0, 1]");
  }
  if (diurnal_amplitude > 0.0 && diurnal_period <= 0) {
    return Status::InvalidArgument("workload: diurnal_period must be > 0");
  }
  if (churn.join_rate < 0.0 || churn.join_rate > 1.0 ||
      churn.leave_rate < 0.0 || churn.leave_rate > 1.0) {
    return Status::InvalidArgument(
        "workload: churn rates must be in [0, 1]");
  }
  if (churn.initial_active <= 0.0 || churn.initial_active > 1.0) {
    return Status::InvalidArgument(
        "workload: churn.initial_active must be in (0, 1]");
  }
  if (hot_item_fraction < 0.0 || hot_item_fraction > 1.0 ||
      hot_item_rate < 0.0 || hot_item_rate > 1.0) {
    return Status::InvalidArgument(
        "workload: hot-item knobs must be in [0, 1]");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Participation models.

void ParticipationModel::BindRoster(const std::vector<int>& active) {
  (void)active;
  PIECK_CHECK(false) << "BindRoster: model '" << name()
                     << "' is not incremental";
}

void ParticipationModel::SetActive(int id, bool active) {
  (void)id;
  (void)active;
  PIECK_CHECK(false) << "SetActive: model '" << name()
                     << "' is not incremental";
}

void ParticipationModel::SampleActive(int k, Rng& rng, std::vector<int>* out) {
  (void)k;
  (void)rng;
  (void)out;
  PIECK_CHECK(false) << "SampleActive: model '" << name()
                     << "' is not incremental";
}

void UniformParticipation::SampleInto(const std::vector<int>& active, int k,
                                      Rng& rng, std::vector<int>* out) {
  const int n = static_cast<int>(active.size());
  PIECK_DCHECK(k <= n);
  // Over the identity-ordered full population this is *exactly* the
  // legacy rng.SampleWithoutReplacement(n, k) draw (same calls, same
  // order), which is what the bit-identity contract of the trivial
  // workload rests on.
  std::vector<int> positions = rng.SampleWithoutReplacement(n, k);
  out->resize(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    (*out)[i] = active[static_cast<size_t>(positions[i])];
  }
}

SkewedParticipation::SkewedParticipation(std::string name,
                                         std::vector<double> weight_by_id)
    : name_(std::move(name)), weight_by_id_(std::move(weight_by_id)) {
  for (double w : weight_by_id_) PIECK_CHECK(w > 0.0);
}

void SkewedParticipation::Add(int id, double delta) {
  for (int i = id + 1; i <= n_; i += i & -i) {
    tree_[static_cast<size_t>(i)] += delta;
  }
}

double SkewedParticipation::TotalWeight() const {
  double sum = 0.0;
  for (int i = n_; i > 0; i -= i & -i) sum += tree_[static_cast<size_t>(i)];
  return sum;
}

int SkewedParticipation::FindPrefix(double target) const {
  // Bitmask descent: on exit `pos` is the largest 1-based index whose
  // prefix sum is <= the original target, so `pos` as a 0-based id is
  // the smallest id whose cumulative active weight exceeds it.
  int pos = 0;
  for (int mask = top_bit_; mask > 0; mask >>= 1) {
    const int next = pos + mask;
    if (next <= n_ && tree_[static_cast<size_t>(next)] <= target) {
      pos = next;
      target -= tree_[static_cast<size_t>(next)];
    }
  }
  return pos;
}

void SkewedParticipation::BindRoster(const std::vector<int>& active) {
  n_ = static_cast<int>(weight_by_id_.size());
  top_bit_ = 1;
  while ((top_bit_ << 1) <= n_) top_bit_ <<= 1;
  tree_.assign(static_cast<size_t>(n_) + 1, 0.0);
  in_tree_.assign(static_cast<size_t>(n_), 0);
  num_active_ = 0;
  for (int id : active) {
    PIECK_DCHECK(id >= 0 && id < n_);
    if (in_tree_[static_cast<size_t>(id)]) continue;
    in_tree_[static_cast<size_t>(id)] = 1;
    tree_[static_cast<size_t>(id) + 1] = weight_by_id_[static_cast<size_t>(id)];
    ++num_active_;
  }
  // O(n) bottom-up build: fold every node into its Fenwick parent.
  for (int i = 1; i <= n_; ++i) {
    const int parent = i + (i & -i);
    if (parent <= n_) {
      tree_[static_cast<size_t>(parent)] += tree_[static_cast<size_t>(i)];
    }
  }
}

void SkewedParticipation::SetActive(int id, bool active) {
  PIECK_DCHECK(id >= 0 && id < n_);
  if (static_cast<bool>(in_tree_[static_cast<size_t>(id)]) == active) return;
  in_tree_[static_cast<size_t>(id)] = active ? 1 : 0;
  num_active_ += active ? 1 : -1;
  const double w = weight_by_id_[static_cast<size_t>(id)];
  Add(id, active ? w : -w);
}

void SkewedParticipation::SampleActive(int k, Rng& rng,
                                       std::vector<int>* out) {
  PIECK_DCHECK(k <= num_active_);
  out->clear();
  drawn_.clear();
  for (int j = 0; j < k; ++j) {
    const double total = TotalWeight();
    PIECK_CHECK(total > 0.0) << "skewed sampler: no active weight left";
    int id = FindPrefix(rng.Uniform() * total);
    if (id >= n_) id = n_ - 1;
    // Rounding guard: step to the next id whose weight is actually in
    // the tree (the descent can land on a removed/inactive id only via
    // floating-point edge cases). Deterministic either way.
    int probe = id;
    while (probe < n_ && !in_tree_[static_cast<size_t>(probe)]) ++probe;
    if (probe == n_) {
      probe = id - 1;
      while (probe >= 0 && !in_tree_[static_cast<size_t>(probe)]) --probe;
    }
    PIECK_CHECK(probe >= 0);
    in_tree_[static_cast<size_t>(probe)] = 0;
    Add(probe, -weight_by_id_[static_cast<size_t>(probe)]);
    drawn_.push_back(probe);
    out->push_back(probe);
  }
  // Restore the drawn weights so the tree again covers the full roster.
  for (int id : drawn_) {
    in_tree_[static_cast<size_t>(id)] = 1;
    Add(id, weight_by_id_[static_cast<size_t>(id)]);
  }
}

void SkewedParticipation::SampleInto(const std::vector<int>& active, int k,
                                     Rng& rng, std::vector<int>* out) {
  PIECK_DCHECK(k <= static_cast<int>(active.size()));
  BindRoster(active);
  SampleActive(std::min(k, num_active_), rng, out);
}

int64_t SkewedParticipation::CapacityBytes() const {
  return static_cast<int64_t>(
      (weight_by_id_.capacity() + tree_.capacity()) * sizeof(double) +
      in_tree_.capacity() * sizeof(uint8_t) + drawn_.capacity() * sizeof(int));
}

std::unique_ptr<ParticipationModel> ParticipationModel::Create(
    const WorkloadConfig& config, int n) {
  PIECK_CHECK(n > 0);
  if (config.participation == ParticipationKind::kUniform) {
    return std::make_unique<UniformParticipation>();
  }
  // Propensity ranks are a seeded permutation of the combined id space,
  // so user id carries no propensity hint (mirroring the synthetic
  // generator's permuted item popularity).
  Rng rank_rng(config.seed ^ kRankSalt);
  std::vector<int> by_rank = rank_rng.SampleWithoutReplacement(n, n);
  std::vector<double> weights(static_cast<size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    double w;
    if (config.participation == ParticipationKind::kZipf) {
      w = std::pow(static_cast<double>(rank) + 1.0, -config.zipf_exponent);
    } else {
      const double span = n > 1 ? static_cast<double>(n - 1) : 1.0;
      w = std::exp(-config.exponential_rate * static_cast<double>(rank) /
                   span);
    }
    weights[static_cast<size_t>(by_rank[static_cast<size_t>(rank)])] = w;
  }
  return std::make_unique<SkewedParticipation>(
      ParticipationKindToString(config.participation), std::move(weights));
}

// ---------------------------------------------------------------------
// Driver.

WorkloadDriver::WorkloadDriver(WorkloadConfig config)
    : config_(config),
      trivial_(config.IsTrivial()),
      churn_rng_(config.seed ^ kChurnSalt) {}

void WorkloadDriver::BindPopulation(int num_benign, int num_malicious) {
  PIECK_CHECK(num_benign + num_malicious > 0);
  if (bound_ && num_benign == num_benign_ && num_malicious == num_malicious_) {
    return;
  }
  bound_ = true;
  num_benign_ = num_benign;
  num_malicious_ = num_malicious;
  if (trivial_) return;

  model_ = ParticipationModel::Create(config_, num_benign + num_malicious);

  active_benign_.clear();
  parked_.clear();
  if (config_.churn.initial_active >= 1.0 || num_benign == 0) {
    active_benign_.resize(static_cast<size_t>(num_benign));
    for (int u = 0; u < num_benign; ++u) {
      active_benign_[static_cast<size_t>(u)] = u;
    }
  } else {
    const int count = std::clamp<int>(
        static_cast<int>(
            std::llround(config_.churn.initial_active * num_benign)),
        1, num_benign);
    active_benign_ = churn_rng_.SampleWithoutReplacement(num_benign, count);
    std::vector<uint8_t> is_active(static_cast<size_t>(num_benign), 0);
    for (int u : active_benign_) is_active[static_cast<size_t>(u)] = 1;
    parked_.reserve(static_cast<size_t>(num_benign - count));
    for (int u = 0; u < num_benign; ++u) {
      if (!is_active[static_cast<size_t>(u)]) parked_.push_back(u);
    }
  }

  if (model_->incremental()) {
    // Hand the combined roster (active benign + always-active malicious
    // tail) to the model once; churn arrives as SetActive events.
    active_ids_.clear();
    active_ids_.reserve(active_benign_.size() +
                        static_cast<size_t>(num_malicious_));
    active_ids_.insert(active_ids_.end(), active_benign_.begin(),
                       active_benign_.end());
    for (int m = 0; m < num_malicious_; ++m) {
      active_ids_.push_back(num_benign_ + m);
    }
    model_->BindRoster(active_ids_);
  }
}

int WorkloadDriver::active_benign() const {
  if (trivial_) return num_benign_;
  return static_cast<int>(active_benign_.size());
}

int WorkloadDriver::DiurnalCohort(int round, int cohort_target) const {
  if (config_.diurnal_amplitude <= 0.0) return cohort_target;
  constexpr double kTwoPi = 6.283185307179586;
  const double phase = kTwoPi * static_cast<double>(round) /
                       static_cast<double>(config_.diurnal_period);
  const double scale = 1.0 + config_.diurnal_amplitude * std::sin(phase);
  return std::max<int>(
      1, static_cast<int>(std::llround(cohort_target * scale)));
}

void WorkloadDriver::AdvanceChurn() {
  // Leaves first, then joins, both counted against the roster sizes at
  // this boundary: a user parked here may rejoin here (net no-op), but
  // no user both joins and leaves within one boundary. The active
  // population never drops below one user.
  const bool incremental = model_->incremental();
  const int active = static_cast<int>(active_benign_.size());
  const int leaves = std::min<int>(
      std::max(0, active - 1),
      static_cast<int>(std::llround(config_.churn.leave_rate * active)));
  for (int i = 0; i < leaves; ++i) {
    const size_t j = static_cast<size_t>(churn_rng_.UniformInt(
        0, static_cast<int64_t>(active_benign_.size()) - 1));
    const int user = active_benign_[j];
    parked_.push_back(user);
    active_benign_[j] = active_benign_.back();
    active_benign_.pop_back();
    if (incremental) model_->SetActive(user, false);
  }
  const int parked = static_cast<int>(parked_.size());
  const int joins = std::min<int>(
      parked,
      static_cast<int>(std::llround(config_.churn.join_rate * parked)));
  for (int i = 0; i < joins; ++i) {
    const size_t j = static_cast<size_t>(churn_rng_.UniformInt(
        0, static_cast<int64_t>(parked_.size()) - 1));
    const int user = parked_[j];
    active_benign_.push_back(user);
    parked_[j] = parked_.back();
    parked_.pop_back();
    if (incremental) model_->SetActive(user, true);
  }
}

void WorkloadDriver::SelectInto(int round, int cohort_target, Rng& rng,
                                std::vector<int>* out) {
  PIECK_CHECK(bound_) << "BindPopulation must precede SelectInto";
  PIECK_CHECK(cohort_target > 0);
  const int n = num_benign_ + num_malicious_;
  if (trivial_) {
    // The legacy path, draw for draw.
    *out = rng.SampleWithoutReplacement(n, std::min(cohort_target, n));
    return;
  }
  if (round > 0 && config_.churn.enabled()) AdvanceChurn();

  const int active_total =
      static_cast<int>(active_benign_.size()) + num_malicious_;
  const int k =
      std::min<int>(DiurnalCohort(round, cohort_target), active_total);
  if (model_->incremental()) {
    // Skewed path: the model's Fenwick tree already mirrors the roster
    // (bind + churn events) — O(k log n) per round, no roster rebuild.
    model_->SampleActive(k, rng, out);
    return;
  }

  // Uniform non-trivial path: materialize the roster (active benign
  // users plus the always-active malicious tail) and sample positions.
  active_ids_.clear();
  active_ids_.reserve(active_benign_.size() +
                      static_cast<size_t>(num_malicious_));
  active_ids_.insert(active_ids_.end(), active_benign_.begin(),
                     active_benign_.end());
  for (int m = 0; m < num_malicious_; ++m) {
    active_ids_.push_back(num_benign_ + m);
  }
  model_->SampleInto(active_ids_, k, rng, out);
}

int64_t WorkloadDriver::CapacityBytes() const {
  int64_t bytes = static_cast<int64_t>(
      (active_benign_.capacity() + parked_.capacity() +
       active_ids_.capacity()) *
      sizeof(int));
  if (const auto* skewed =
          dynamic_cast<const SkewedParticipation*>(model_.get())) {
    bytes += skewed->CapacityBytes();
  }
  return bytes;
}

}  // namespace pieck
