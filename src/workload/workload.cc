#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace pieck {

namespace {

// Sub-stream salts: the rank permutation and the churn roster draw from
// independent streams derived from WorkloadConfig::seed, so changing
// one knob never shifts the randomness of another.
constexpr uint64_t kRankSalt = 0x72616e6b5f70726dULL;   // "rank_prm"
constexpr uint64_t kChurnSalt = 0x636875726e5f7374ULL;  // "churn_st"

}  // namespace

const char* ParticipationKindToString(ParticipationKind kind) {
  switch (kind) {
    case ParticipationKind::kUniform:
      return "uniform";
    case ParticipationKind::kZipf:
      return "zipf";
    case ParticipationKind::kExponential:
      return "exponential";
  }
  return "?";
}

bool WorkloadConfig::IsTrivial() const {
  return participation == ParticipationKind::kUniform && !churn.enabled() &&
         diurnal_amplitude == 0.0;
}

Status WorkloadConfig::Validate() const {
  if (participation == ParticipationKind::kZipf && zipf_exponent <= 0.0) {
    return Status::InvalidArgument("workload: zipf_exponent must be > 0");
  }
  if (participation == ParticipationKind::kExponential &&
      exponential_rate <= 0.0) {
    return Status::InvalidArgument("workload: exponential_rate must be > 0");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0) {
    return Status::InvalidArgument(
        "workload: diurnal_amplitude must be in [0, 1]");
  }
  if (diurnal_amplitude > 0.0 && diurnal_period <= 0) {
    return Status::InvalidArgument("workload: diurnal_period must be > 0");
  }
  if (churn.join_rate < 0.0 || churn.join_rate > 1.0 ||
      churn.leave_rate < 0.0 || churn.leave_rate > 1.0) {
    return Status::InvalidArgument(
        "workload: churn rates must be in [0, 1]");
  }
  if (churn.initial_active <= 0.0 || churn.initial_active > 1.0) {
    return Status::InvalidArgument(
        "workload: churn.initial_active must be in (0, 1]");
  }
  if (hot_item_fraction < 0.0 || hot_item_fraction > 1.0 ||
      hot_item_rate < 0.0 || hot_item_rate > 1.0) {
    return Status::InvalidArgument(
        "workload: hot-item knobs must be in [0, 1]");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Participation models.

void UniformParticipation::SampleInto(const std::vector<int>& active, int k,
                                      Rng& rng, std::vector<int>* out) const {
  const int n = static_cast<int>(active.size());
  PIECK_DCHECK(k <= n);
  // Over the identity-ordered full population this is *exactly* the
  // legacy rng.SampleWithoutReplacement(n, k) draw (same calls, same
  // order), which is what the bit-identity contract of the trivial
  // workload rests on.
  std::vector<int> positions = rng.SampleWithoutReplacement(n, k);
  out->resize(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    (*out)[i] = active[static_cast<size_t>(positions[i])];
  }
}

SkewedParticipation::SkewedParticipation(std::string name,
                                         std::vector<double> weight_by_id)
    : name_(std::move(name)), weight_by_id_(std::move(weight_by_id)) {
  for (double w : weight_by_id_) PIECK_CHECK(w > 0.0);
}

void SkewedParticipation::SampleInto(const std::vector<int>& active, int k,
                                     Rng& rng, std::vector<int>* out) const {
  PIECK_DCHECK(k <= static_cast<int>(active.size()));
  // Efraimidis–Spirakis: key(id) = log(u)/w(id) with u ~ U(0,1); the k
  // largest keys win. One uniform per active user, drawn in active-list
  // order, so the result is a pure function of the RNG stream and the
  // roster — independent of thread count by construction.
  //
  // Min-heap of the current winners; ties (never observed in practice)
  // break toward the earlier roster position for determinism.
  using Entry = std::pair<double, int>;  // (key, id)
  thread_local std::vector<Entry> heap;
  heap.clear();
  heap.reserve(static_cast<size_t>(k));
  auto worse = [](const Entry& a, const Entry& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  for (int id : active) {
    const double u = rng.Uniform();
    const double key =
        std::log(std::max(u, 1e-300)) / weight_by_id_[static_cast<size_t>(id)];
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back({key, id});
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (k > 0 && key > heap.front().first) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = {key, id};
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  // Emit in descending key order (deterministic).
  std::sort(heap.begin(), heap.end(), [](const Entry& a, const Entry& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  out->resize(heap.size());
  for (size_t i = 0; i < heap.size(); ++i) (*out)[i] = heap[i].second;
}

std::unique_ptr<ParticipationModel> ParticipationModel::Create(
    const WorkloadConfig& config, int n) {
  PIECK_CHECK(n > 0);
  if (config.participation == ParticipationKind::kUniform) {
    return std::make_unique<UniformParticipation>();
  }
  // Propensity ranks are a seeded permutation of the combined id space,
  // so user id carries no propensity hint (mirroring the synthetic
  // generator's permuted item popularity).
  Rng rank_rng(config.seed ^ kRankSalt);
  std::vector<int> by_rank = rank_rng.SampleWithoutReplacement(n, n);
  std::vector<double> weights(static_cast<size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    double w;
    if (config.participation == ParticipationKind::kZipf) {
      w = std::pow(static_cast<double>(rank) + 1.0, -config.zipf_exponent);
    } else {
      const double span = n > 1 ? static_cast<double>(n - 1) : 1.0;
      w = std::exp(-config.exponential_rate * static_cast<double>(rank) /
                   span);
    }
    weights[static_cast<size_t>(by_rank[static_cast<size_t>(rank)])] = w;
  }
  return std::make_unique<SkewedParticipation>(
      ParticipationKindToString(config.participation), std::move(weights));
}

// ---------------------------------------------------------------------
// Driver.

WorkloadDriver::WorkloadDriver(WorkloadConfig config)
    : config_(config),
      trivial_(config.IsTrivial()),
      churn_rng_(config.seed ^ kChurnSalt) {}

void WorkloadDriver::BindPopulation(int num_benign, int num_malicious) {
  PIECK_CHECK(num_benign + num_malicious > 0);
  if (bound_ && num_benign == num_benign_ && num_malicious == num_malicious_) {
    return;
  }
  bound_ = true;
  num_benign_ = num_benign;
  num_malicious_ = num_malicious;
  if (trivial_) return;

  model_ = ParticipationModel::Create(config_, num_benign + num_malicious);

  active_benign_.clear();
  parked_.clear();
  if (config_.churn.initial_active >= 1.0 || num_benign == 0) {
    active_benign_.resize(static_cast<size_t>(num_benign));
    for (int u = 0; u < num_benign; ++u) {
      active_benign_[static_cast<size_t>(u)] = u;
    }
  } else {
    const int count = std::clamp<int>(
        static_cast<int>(
            std::llround(config_.churn.initial_active * num_benign)),
        1, num_benign);
    active_benign_ = churn_rng_.SampleWithoutReplacement(num_benign, count);
    std::vector<uint8_t> is_active(static_cast<size_t>(num_benign), 0);
    for (int u : active_benign_) is_active[static_cast<size_t>(u)] = 1;
    parked_.reserve(static_cast<size_t>(num_benign - count));
    for (int u = 0; u < num_benign; ++u) {
      if (!is_active[static_cast<size_t>(u)]) parked_.push_back(u);
    }
  }
}

int WorkloadDriver::active_benign() const {
  if (trivial_) return num_benign_;
  return static_cast<int>(active_benign_.size());
}

int WorkloadDriver::DiurnalCohort(int round, int cohort_target) const {
  if (config_.diurnal_amplitude <= 0.0) return cohort_target;
  constexpr double kTwoPi = 6.283185307179586;
  const double phase = kTwoPi * static_cast<double>(round) /
                       static_cast<double>(config_.diurnal_period);
  const double scale = 1.0 + config_.diurnal_amplitude * std::sin(phase);
  return std::max<int>(
      1, static_cast<int>(std::llround(cohort_target * scale)));
}

void WorkloadDriver::AdvanceChurn() {
  // Leaves first, then joins, both counted against the roster sizes at
  // this boundary: a user parked here may rejoin here (net no-op), but
  // no user both joins and leaves within one boundary. The active
  // population never drops below one user.
  const int active = static_cast<int>(active_benign_.size());
  const int leaves = std::min<int>(
      std::max(0, active - 1),
      static_cast<int>(std::llround(config_.churn.leave_rate * active)));
  for (int i = 0; i < leaves; ++i) {
    const size_t j = static_cast<size_t>(churn_rng_.UniformInt(
        0, static_cast<int64_t>(active_benign_.size()) - 1));
    parked_.push_back(active_benign_[j]);
    active_benign_[j] = active_benign_.back();
    active_benign_.pop_back();
  }
  const int parked = static_cast<int>(parked_.size());
  const int joins = std::min<int>(
      parked,
      static_cast<int>(std::llround(config_.churn.join_rate * parked)));
  for (int i = 0; i < joins; ++i) {
    const size_t j = static_cast<size_t>(churn_rng_.UniformInt(
        0, static_cast<int64_t>(parked_.size()) - 1));
    active_benign_.push_back(parked_[j]);
    parked_[j] = parked_.back();
    parked_.pop_back();
  }
}

void WorkloadDriver::SelectInto(int round, int cohort_target, Rng& rng,
                                std::vector<int>* out) {
  PIECK_CHECK(bound_) << "BindPopulation must precede SelectInto";
  PIECK_CHECK(cohort_target > 0);
  const int n = num_benign_ + num_malicious_;
  if (trivial_) {
    // The legacy path, draw for draw.
    *out = rng.SampleWithoutReplacement(n, std::min(cohort_target, n));
    return;
  }
  if (round > 0 && config_.churn.enabled()) AdvanceChurn();

  // Roster for this round: active benign users plus the always-active
  // malicious tail (the attacker keeps its clients online).
  active_ids_.clear();
  active_ids_.reserve(active_benign_.size() +
                      static_cast<size_t>(num_malicious_));
  active_ids_.insert(active_ids_.end(), active_benign_.begin(),
                     active_benign_.end());
  for (int m = 0; m < num_malicious_; ++m) {
    active_ids_.push_back(num_benign_ + m);
  }

  const int k = std::min<int>(DiurnalCohort(round, cohort_target),
                              static_cast<int>(active_ids_.size()));
  model_->SampleInto(active_ids_, k, rng, out);
}

int64_t WorkloadDriver::CapacityBytes() const {
  int64_t bytes = static_cast<int64_t>(
      (active_benign_.capacity() + parked_.capacity() +
       active_ids_.capacity()) *
      sizeof(int));
  if (const auto* skewed =
          dynamic_cast<const SkewedParticipation*>(model_.get())) {
    bytes += static_cast<int64_t>(skewed->weights().capacity() *
                                  sizeof(double));
  }
  return bytes;
}

}  // namespace pieck
