#include "attack/popular_item_miner.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace pieck {

PopularItemMiner::PopularItemMiner(int mining_rounds, int top_n)
    : mining_rounds_(mining_rounds), top_n_(top_n) {
  PIECK_CHECK(mining_rounds_ >= 1);
  PIECK_CHECK(top_n_ >= 1);
}

void PopularItemMiner::Observe(const Matrix& item_embeddings) {
  ++observations_;
  if (accumulated_.empty()) {
    accumulated_ = Zeros(item_embeddings.rows());
  }
  PIECK_CHECK(accumulated_.size() == item_embeddings.rows());

  if (observations_ == 1) {
    previous_ = item_embeddings;
    return;
  }
  if (deltas_seen_ >= mining_rounds_) return;  // mining already finished

  const size_t m = item_embeddings.rows();
  const size_t d = item_embeddings.cols();
  for (size_t j = 0; j < m; ++j) {
    double sq = 0.0;
    for (size_t c = 0; c < d; ++c) {
      double diff = item_embeddings.At(j, c) - previous_.At(j, c);
      sq += diff * diff;
    }
    accumulated_[j] += std::sqrt(sq);
  }
  previous_ = item_embeddings;
  ++deltas_seen_;

  if (Ready()) {
    mined_ = TopItems(top_n_);
  }
}

std::vector<int> PopularItemMiner::TopItems(int n) const {
  std::vector<int> order(accumulated_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return accumulated_[static_cast<size_t>(a)] >
           accumulated_[static_cast<size_t>(b)];
  });
  if (static_cast<size_t>(n) < order.size()) {
    order.resize(static_cast<size_t>(n));
  }
  return order;
}

}  // namespace pieck
