#ifndef PIECK_ATTACK_A_RA_H_
#define PIECK_ATTACK_A_RA_H_

#include "attack/attack.h"

namespace pieck {

/// A-RA (Rong et al., IJCAI 2022): random approximation.
///
/// Samples fresh random user embeddings each round and uploads gradients
/// that raise the target's score for them — poisoning the *learnable
/// interaction function* alongside the target embedding. The attack is
/// designed for DL-FRS; on MF-FRS there is no interaction function to
/// poison, and the paper applies it with "null parameters", so we upload
/// nothing there (Table III shows ~0 ER for A-RA on MF).
class ARaAttack : public Attack {
 public:
  ARaAttack(const RecModel& model, AttackConfig config)
      : model_(model), config_(std::move(config)) {}

  std::string name() const override { return "A-RA"; }

  ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                Rng& rng) override;

 private:
  const RecModel& model_;
  AttackConfig config_;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_A_RA_H_
