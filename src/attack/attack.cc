#include "attack/attack.h"

#include "attack/a_hum.h"
#include "attack/a_ra.h"
#include "attack/fedrec_attack.h"
#include "attack/no_attack.h"
#include "attack/pieck_ipe.h"
#include "attack/pieck_uea.h"
#include "attack/pip_attack.h"
#include "common/logging.h"

namespace pieck {

const char* AttackKindToString(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "NoAttack";
    case AttackKind::kFedRecAttack:
      return "FedRecAttack";
    case AttackKind::kPipAttack:
      return "PipAttack";
    case AttackKind::kARa:
      return "A-RA";
    case AttackKind::kAHum:
      return "A-HUM";
    case AttackKind::kPieckIpe:
      return "PIECK-IPE";
    case AttackKind::kPieckUea:
      return "PIECK-UEA";
  }
  return "?";
}

std::unique_ptr<Attack> MakeAttack(AttackKind kind, const RecModel& model,
                                   const AttackConfig& config,
                                   const Dataset* full_train, uint64_t seed) {
  if (kind != AttackKind::kNone) {
    PIECK_CHECK(!config.target_items.empty())
        << "targeted attacks need at least one target item";
  }
  switch (kind) {
    case AttackKind::kNone:
      return std::make_unique<NoAttack>();
    case AttackKind::kFedRecAttack:
      return std::make_unique<FedRecAttack>(model, config, full_train, seed);
    case AttackKind::kPipAttack:
      return std::make_unique<PipAttack>(model, config, full_train, seed);
    case AttackKind::kARa:
      return std::make_unique<ARaAttack>(model, config);
    case AttackKind::kAHum:
      return std::make_unique<AHumAttack>(model, config);
    case AttackKind::kPieckIpe:
      return std::make_unique<PieckIpeAttack>(model, config);
    case AttackKind::kPieckUea:
      return std::make_unique<PieckUeaAttack>(model, config);
  }
  return nullptr;
}

}  // namespace pieck
