#ifndef PIECK_ATTACK_PIECK_IPE_H_
#define PIECK_ATTACK_PIECK_IPE_H_

#include "attack/pieck_attack_base.h"

namespace pieck {

/// PIECK-IPE (§IV-C, Algorithm 2): item popularity enhancement.
///
/// Aligns the target item's embedding with the mined popular items by
/// minimizing the signed-subset weighted cosine loss of Eq. (8):
///
///   L_IPE = −(1/|T|) Σ_{v_j∈T} Σ_{*∈{+,−}}
///             Σ_{v_k∈P*_j} κ(v_k)·cos(v_k, v_j) / (λ^{−1}·|P*_j|)
///
/// where P+_j / P−_j split the mined set by the sign of cos(v_k, v_j),
/// κ(v_k) is the normalized inverse popularity rank within the subset,
/// and λ ∈ (0,1] regulates how strongly the dominant direction is
/// suppressed relative to the rare one.
///
/// Ablation switches (Table VI): `ipe_metric` swaps cosine (PCOS) for
/// softmax-KL (PKL); `ipe_use_rank_weights` disables κ;
/// `ipe_use_sign_partition` disables the P± split.
class PieckIpeAttack : public PieckAttackBase {
 public:
  PieckIpeAttack(const RecModel& model, AttackConfig config)
      : PieckAttackBase(model, std::move(config)) {}

  std::string name() const override { return "PIECK-IPE"; }

  /// Computes the current attack loss for diagnostics/tests.
  double AttackLoss(const GlobalModel& g, int target,
                    const std::vector<int>& popular) const;

 protected:
  Vec ComputePoisonGradient(const GlobalModel& g, int target,
                            const std::vector<int>& popular,
                            Rng& rng) override;
};

namespace internal_ipe {

/// Normalized inverse-rank weights: item at subset rank r (0 = most
/// popular) receives weight (M − r) / Σ_{r'}(M − r'). Uniform weights
/// when `use_rank_weights` is false.
std::vector<double> RankWeights(size_t m, bool use_rank_weights);

}  // namespace internal_ipe

}  // namespace pieck

#endif  // PIECK_ATTACK_PIECK_IPE_H_
