#ifndef PIECK_ATTACK_PIECK_ATTACK_BASE_H_
#define PIECK_ATTACK_PIECK_ATTACK_BASE_H_

#include <string>
#include <vector>

#include "attack/attack.h"
#include "attack/popular_item_miner.h"

namespace pieck {

/// Common machinery of the two PIECK solutions (Algorithms 2 and 3):
/// first mine popular items via Δ-Norm accumulation across the rounds
/// this malicious client is sampled; once mining completes, generate a
/// poisonous item-embedding gradient for the target(s) every round.
///
/// PIECK uploads *only* item-embedding gradients (never interaction-
/// function gradients), which is what makes it model-agnostic.
class PieckAttackBase : public Attack {
 public:
  ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                Rng& rng) final;

  const PopularItemMiner& miner() const { return miner_; }

 protected:
  PieckAttackBase(const RecModel& model, AttackConfig config);

  /// Returns ∂(attack loss)/∂v_target given the mined popular items,
  /// for a single target item. Called once mining is complete.
  virtual Vec ComputePoisonGradient(const GlobalModel& g, int target,
                                    const std::vector<int>& popular,
                                    Rng& rng) = 0;

  const RecModel& model_;
  AttackConfig config_;

 private:
  PopularItemMiner miner_;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_PIECK_ATTACK_BASE_H_
