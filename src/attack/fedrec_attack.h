#ifndef PIECK_ATTACK_FEDREC_ATTACK_H_
#define PIECK_ATTACK_FEDREC_ATTACK_H_

#include <vector>

#include "attack/attack.h"

namespace pieck {

/// FedRecAttack (Rong et al., ICDE 2022): approximates benign users'
/// embeddings from a *public* fraction of their historical interactions
/// and derives the ideal poison gradient of Eq. (5) on the approximated
/// users.
///
/// The prior knowledge is the public interaction set. Following the
/// paper's fair-comparison protocol (§VII-A3) the default config masks
/// it (`fedreca_public_ratio = 0`), which collapses the approximation to
/// zero vectors and the attack to a no-op — reproducing the ~NoAttack
/// rows of Table III. Set the ratio > 0 to study the unmasked attack.
class FedRecAttack : public Attack {
 public:
  FedRecAttack(const RecModel& model, AttackConfig config,
               const Dataset* full_train, uint64_t seed);

  std::string name() const override { return "FedRecAttack"; }

  ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                Rng& rng) override;

  /// Number of users with at least one public interaction.
  int num_visible_users() const { return static_cast<int>(visible_.size()); }

 private:
  struct VisibleUser {
    int user;
    std::vector<int> public_items;
    Vec approx_embedding;  // û, refined every participation round
  };

  const RecModel& model_;
  AttackConfig config_;
  std::vector<VisibleUser> visible_;
  bool approx_initialized_ = false;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_FEDREC_ATTACK_H_
