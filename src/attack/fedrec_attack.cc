#include "attack/fedrec_attack.h"

#include "common/logging.h"
#include "tensor/math.h"

namespace pieck {

namespace {
// Steps and rate for refreshing the approximated user embeddings each
// participation round.
constexpr int kApproxSteps = 2;
constexpr double kApproxLr = 0.1;
}  // namespace

FedRecAttack::FedRecAttack(const RecModel& model, AttackConfig config,
                           const Dataset* full_train, uint64_t seed)
    : model_(model), config_(std::move(config)) {
  if (full_train == nullptr || config_.fedreca_public_ratio <= 0.0) {
    return;  // prior knowledge masked: nothing is visible
  }
  Rng rng(seed);
  for (int u = 0; u < full_train->num_users(); ++u) {
    VisibleUser vu;
    vu.user = u;
    for (int item : full_train->ItemsOf(u)) {
      if (rng.Bernoulli(config_.fedreca_public_ratio)) {
        vu.public_items.push_back(item);
      }
    }
    if (!vu.public_items.empty()) visible_.push_back(std::move(vu));
  }
}

ClientUpdate FedRecAttack::ParticipateRound(const GlobalModel& g,
                                            int /*round*/, Rng& /*rng*/) {
  ClientUpdate update;
  if (visible_.empty()) return update;  // masked prior knowledge -> no-op

  if (!approx_initialized_) {
    for (VisibleUser& vu : visible_) {
      vu.approx_embedding = Zeros(static_cast<size_t>(g.dim()));
    }
    approx_initialized_ = true;
  }

  ForwardCache cache;
  // Refine û on the public positives (treating item embeddings and the
  // interaction function as fixed).
  for (VisibleUser& vu : visible_) {
    for (int step = 0; step < kApproxSteps; ++step) {
      Vec grad_u = Zeros(vu.approx_embedding.size());
      double inv = 1.0 / static_cast<double>(vu.public_items.size());
      for (int item : vu.public_items) {
        Vec v = g.item_embeddings.Row(static_cast<size_t>(item));
        double logit = model_.Forward(g, vu.approx_embedding, v, &cache);
        double dlogit = BceGradFromLogit(1.0, logit) * inv;
        model_.Backward(g, vu.approx_embedding, v, cache, dlogit, &grad_u,
                        nullptr, nullptr);
      }
      Axpy(-kApproxLr, grad_u, vu.approx_embedding);
    }
  }

  // Ideal poison gradient of Eq. (5) on the approximated users.
  const double inv_users = 1.0 / static_cast<double>(visible_.size());
  Vec grad = Zeros(static_cast<size_t>(g.dim()));
  int primary = config_.target_items[0];
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(primary));
  for (const VisibleUser& vu : visible_) {
    double logit = model_.Forward(g, vu.approx_embedding, vt, &cache);
    double dlogit = BceGradFromLogit(1.0, logit) * inv_users;
    model_.Backward(g, vu.approx_embedding, vt, cache, dlogit, nullptr,
                    &grad, nullptr);
  }
  Scale(config_.attack_scale, grad);
  for (int target : config_.target_items) {
    update.AccumulateItemGrad(target, grad);
  }
  return update;
}

}  // namespace pieck
