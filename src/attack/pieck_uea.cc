#include "attack/pieck_uea.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/math.h"

namespace pieck {

double PieckUeaAttack::AttackLoss(const GlobalModel& g, int target,
                                  const std::vector<int>& popular) const {
  if (popular.empty()) return 0.0;
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(target));
  double loss = 0.0;
  for (int k : popular) {
    Vec uk = g.item_embeddings.Row(static_cast<size_t>(k));
    double logit = model_.Forward(g, uk, vt, nullptr);
    loss += -LogSigmoid(logit);
  }
  return loss / static_cast<double>(popular.size());
}

Vec PieckUeaAttack::ComputePoisonGradient(const GlobalModel& g, int target,
                                          const std::vector<int>& popular,
                                          Rng& /*rng*/) {
  const Vec v0 = g.item_embeddings.Row(static_cast<size_t>(target));
  Vec v = v0;  // virtual local copy, optimized over several mini-steps

  // The virtual optimization uses a unit internal step so that the
  // uploaded quantity is an accumulated *loss gradient* of the same
  // scale a benign gradient has, rather than a displacement amplified by
  // 1/η (with DL-FRS's small η that would make the poison untouchable
  // by any η-scale counter-gradient and trivially detectable).
  const double eta = 1.0;
  const int batch = std::max(1, config_.uea_batch_size);
  const double inv_n = 1.0 / static_cast<double>(popular.size());

  ForwardCache cache;
  for (int r = 0; r < std::max(1, config_.uea_opt_rounds); ++r) {
    for (size_t begin = 0; begin < popular.size();
         begin += static_cast<size_t>(batch)) {
      size_t end =
          std::min(popular.size(), begin + static_cast<size_t>(batch));
      Vec grad = Zeros(v.size());
      for (size_t i = begin; i < end; ++i) {
        // The popular-item embedding acts as a constant approximated
        // user; only d/dv flows.
        Vec uk = g.item_embeddings.Row(static_cast<size_t>(popular[i]));
        double logit = model_.Forward(g, uk, v, &cache);
        double dlogit = BceGradFromLogit(/*y=*/1.0, logit) * inv_n;
        model_.Backward(g, uk, v, cache, dlogit, /*grad_u=*/nullptr, &grad,
                        /*igrads=*/nullptr);
      }
      Axpy(-eta, grad, v);  // virtual step with the known server rate
    }
  }

  // Convert the net displacement into the single uploaded gradient:
  // the server computes v_new = v_old − η·∇̃, so ∇̃ = (v_old − v_want)/η.
  Vec upload = Sub(v0, v);
  Scale(1.0 / eta, upload);
  return upload;
}

}  // namespace pieck
