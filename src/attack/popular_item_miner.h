#ifndef PIECK_ATTACK_POPULAR_ITEM_MINER_H_
#define PIECK_ATTACK_POPULAR_ITEM_MINER_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace pieck {

/// PIECK's core module (§IV-B, Algorithm 1): mines popular items from
/// the embedding changes a participant observes across the rounds it is
/// sampled.
///
/// The miner exploits Properties 1–2 of the paper: popular items have
/// larger and longer-lasting embedding changes (Δ-Norm, Eq. 7) because
/// far more loss terms pull on them each round. It accumulates
///   Δ-Norm_j += ||v_j^(r) − v_j^(r−1)||₂
/// over `mining_rounds` consecutive observations and reports the top-N.
///
/// Both the attacker (malicious clients) and the paper's defense (benign
/// clients, §V-B step 1) run this module; neither needs any prior
/// knowledge of item popularity.
class PopularItemMiner {
 public:
  /// `mining_rounds` is R̃ of Algorithm 1 (the paper uses 2);
  /// `top_n` is N, the number of popular items to report.
  PopularItemMiner(int mining_rounds, int top_n);

  /// Feeds the item-embedding matrix received in a round where this
  /// participant was sampled. Observations after mining completes are
  /// ignored (Algorithm 1 stops accumulating after R̃ deltas).
  void Observe(const Matrix& item_embeddings);

  /// True once R̃ deltas have been accumulated (observed R̃+1 matrices).
  bool Ready() const { return deltas_seen_ >= mining_rounds_; }

  /// Number of observations fed so far.
  int observations() const { return observations_; }

  /// The mined popular item set P, ordered by decreasing accumulated
  /// Δ-Norm (index 0 = most popular). Empty until Ready().
  const std::vector<int>& MinedItems() const { return mined_; }

  /// Accumulated Δ-Norm per item (diagnostics; drives the Fig. 4 bench).
  const Vec& AccumulatedDeltaNorm() const { return accumulated_; }

  /// Re-ranks with a different N without re-observing (defense tuning).
  std::vector<int> TopItems(int n) const;

  /// Resident bytes of the observer state (the previous-round embedding
  /// snapshot dominates). Drives client-defense footprint telemetry.
  int64_t FootprintBytes() const {
    return static_cast<int64_t>(
        (previous_.data().capacity() + accumulated_.capacity()) *
            sizeof(double) +
        mined_.capacity() * sizeof(int));
  }

 private:
  int mining_rounds_;
  int top_n_;
  int observations_ = 0;
  int deltas_seen_ = 0;
  Matrix previous_;
  Vec accumulated_;
  std::vector<int> mined_;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_POPULAR_ITEM_MINER_H_
