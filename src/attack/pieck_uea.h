#ifndef PIECK_ATTACK_PIECK_UEA_H_
#define PIECK_ATTACK_PIECK_UEA_H_

#include "attack/pieck_attack_base.h"

namespace pieck {

/// PIECK-UEA (§IV-D, Algorithm 3): user embedding approximation.
///
/// Exploits Property 3 — in the symmetric FRS model the embedding
/// distribution of popular items closely mirrors that of users — to
/// substitute the inaccessible benign user embeddings in the ideal
/// poison gradient (Eq. 5) with the mined popular item embeddings:
///
///   L_UEA = −(1/(N·|T|)) Σ_{v_k∈P} Σ_{v_j∈T} log Ψ(v_k, v_j)   (Eq. 10)
///
/// The approximated "users" v_k are constants (excluded from
/// backpropagation). Following §VI-F, the gradient is produced by a
/// short batched optimization (`uea_opt_rounds` passes over P in chunks
/// of `uea_batch_size`), and the net virtual displacement is converted
/// back into one uploaded gradient using the known server rate η.
class PieckUeaAttack : public PieckAttackBase {
 public:
  PieckUeaAttack(const RecModel& model, AttackConfig config)
      : PieckAttackBase(model, std::move(config)) {}

  std::string name() const override { return "PIECK-UEA"; }

  /// Current value of L_UEA for one target (diagnostics/tests).
  double AttackLoss(const GlobalModel& g, int target,
                    const std::vector<int>& popular) const;

 protected:
  Vec ComputePoisonGradient(const GlobalModel& g, int target,
                            const std::vector<int>& popular,
                            Rng& rng) override;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_PIECK_UEA_H_
