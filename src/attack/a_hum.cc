#include "attack/a_hum.h"

#include "common/logging.h"
#include "tensor/math.h"

namespace pieck {

Vec AHumAttack::MineHardUser(const GlobalModel& g, int target,
                             Rng& rng) const {
  Vec u(static_cast<size_t>(g.dim()));
  for (double& x : u) x = rng.Normal(0.0, 1.0);
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(target));

  ForwardCache cache;
  for (int step = 0; step < config_.hard_user_steps; ++step) {
    // Descend BCE with label 0: push the user's predicted score for the
    // target toward zero, i.e. make the user dislike the target.
    Vec grad_u = Zeros(u.size());
    double logit = model_.Forward(g, u, vt, &cache);
    double dlogit = BceGradFromLogit(/*y=*/0.0, logit);
    model_.Backward(g, u, vt, cache, dlogit, &grad_u, nullptr, nullptr);
    Axpy(-config_.hard_user_lr, grad_u, u);
  }
  return u;
}

ClientUpdate AHumAttack::ParticipateRound(const GlobalModel& g, int /*round*/,
                                          Rng& rng) {
  ClientUpdate update;
  if (model_.has_learnable_interaction()) {
    update.interaction_grads = InteractionGrads::ZerosLike(g);
  }

  const int m = std::max(1, config_.num_approx_users);
  const double inv_m = 1.0 / static_cast<double>(m);
  int primary = config_.target_items[0];
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(primary));
  Vec grad = Zeros(vt.size());

  ForwardCache cache;
  for (int i = 0; i < m; ++i) {
    Vec hard_user = MineHardUser(g, primary, rng);
    double logit = model_.Forward(g, hard_user, vt, &cache);
    double dlogit = BceGradFromLogit(/*y=*/1.0, logit) * inv_m;
    model_.Backward(g, hard_user, vt, cache, dlogit, nullptr, &grad,
                    update.interaction_grads.active
                        ? &update.interaction_grads
                        : nullptr);
  }

  Scale(config_.attack_scale, grad);
  for (int target : config_.target_items) {
    update.AccumulateItemGrad(target, grad);
  }
  return update;
}

}  // namespace pieck
