#ifndef PIECK_ATTACK_ATTACK_H_
#define PIECK_ATTACK_ATTACK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "fed/client.h"
#include "model/global_model.h"
#include "model/rec_model.h"

namespace pieck {

/// How an attacker promotes several target items at once (§VI-G2 and
/// supplementary Table IX).
enum class MultiTargetStrategy {
  /// Jointly optimize poisonous gradients for all targets.
  kTrainTogether,
  /// Optimize only the first target and upload copies of its gradient
  /// for every target (the paper's cheaper and stronger default).
  kTrainOneThenCopy,
};

/// Similarity metric used inside the IPE loss (ablated in Table VI).
enum class IpeMetric {
  kCosine,     // PCOS — the paper's choice
  kSoftmaxKl,  // PKL — the ablation alternative
};

/// Shared configuration for every attack in the library.
struct AttackConfig {
  /// Items the attacker wants exposed (set T).
  std::vector<int> target_items;

  /// Server learning rate η — attacker knowledge item (1) of §III-B.
  double server_learning_rate = 1.0;

  /// Multiplier applied to uploaded poisonous gradients. 1.0 keeps the
  /// raw loss gradients; benchmarks leave it at 1.0.
  double attack_scale = 1.0;

  MultiTargetStrategy multi_target = MultiTargetStrategy::kTrainOneThenCopy;

  // --- PIECK popular-item mining (Algorithm 1) ---
  int mining_rounds = 2;  // R̃
  int mined_top_n = 10;   // N

  // --- PIECK-IPE (Eq. 8) ---
  double ipe_lambda = 0.5;  // λ ∈ (0,1]: suppression of the dominant side
  /// Virtual optimization steps per round (the uploaded gradient is the
  /// net displacement over the known server rate, as in UEA).
  int ipe_opt_steps = 5;
  IpeMetric ipe_metric = IpeMetric::kCosine;
  bool ipe_use_rank_weights = true;  // κ(·) on/off (Table VI ablation)
  bool ipe_use_sign_partition = true;  // P+/- on/off (Table VI ablation)

  // --- PIECK-UEA (Eq. 10, §VI-F cost notes) ---
  int uea_opt_rounds = 3;  // "round size" of the batched optimization
  int uea_batch_size = 5;  // "batch size"

  // --- Baselines ---
  /// FedRecAttack: fraction of each benign user's interactions the
  /// attacker can see. The paper masks this prior knowledge (== 0).
  double fedreca_public_ratio = 0.0;
  /// PipAttack: whether true popularity levels are available. The paper
  /// masks them (false -> shuffled labels).
  bool pipa_true_popularity = false;
  /// Number of synthetic/approximated users used by A-RA, A-HUM, and
  /// PipAttack's explicit promotion component.
  int num_approx_users = 16;
  /// A-HUM: gradient steps used to mine each hard user.
  int hard_user_steps = 10;
  /// A-HUM: learning rate of the hard-user mining loop.
  double hard_user_lr = 0.5;
};

/// A targeted model-poisoning attack, executed independently by each
/// malicious client (the paper's threat model gives the attacker no
/// side channel other than the clients it controls).
class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string name() const = 0;

  /// Invoked when the controlling malicious client is sampled; returns
  /// the poisonous upload for this round.
  virtual ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                        Rng& rng) = 0;
};

/// The client wrapper the server sees; indistinguishable from a benign
/// client at the interface level.
class MaliciousClient : public ClientInterface {
 public:
  MaliciousClient(std::unique_ptr<Attack> attack, Rng rng)
      : attack_(std::move(attack)), rng_(rng) {}

  bool is_malicious() const override { return true; }
  ClientUpdate ParticipateRound(const GlobalModel& g, int round) override {
    return attack_->ParticipateRound(g, round, rng_);
  }

  const Attack& attack() const { return *attack_; }

 private:
  std::unique_ptr<Attack> attack_;
  Rng rng_;
};

/// Identifier for constructing attacks by name (benchmarks, examples).
enum class AttackKind {
  kNone,
  kFedRecAttack,
  kPipAttack,
  kARa,
  kAHum,
  kPieckIpe,
  kPieckUea,
};

const char* AttackKindToString(AttackKind kind);

/// Creates one attack instance for one malicious client.
/// `model` must outlive the attack. `full_train` is consulted only by
/// attacks whose published form assumes prior knowledge (FedRecAttack's
/// public interactions, PipAttack's popularity levels); pass the benign
/// training set so those baselines can be run unmasked for comparison.
std::unique_ptr<Attack> MakeAttack(AttackKind kind, const RecModel& model,
                                   const AttackConfig& config,
                                   const Dataset* full_train, uint64_t seed);

}  // namespace pieck

#endif  // PIECK_ATTACK_ATTACK_H_
