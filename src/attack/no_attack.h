#ifndef PIECK_ATTACK_NO_ATTACK_H_
#define PIECK_ATTACK_NO_ATTACK_H_

#include "attack/attack.h"

namespace pieck {

/// The NoAttack baseline: a "malicious" client that uploads nothing.
/// Benchmarks normally model NoAttack by injecting zero malicious
/// clients; this class exists so every AttackKind is constructible.
class NoAttack : public Attack {
 public:
  std::string name() const override { return "NoAttack"; }

  ClientUpdate ParticipateRound(const GlobalModel& /*g*/, int /*round*/,
                                Rng& /*rng*/) override {
    return ClientUpdate{};
  }
};

}  // namespace pieck

#endif  // PIECK_ATTACK_NO_ATTACK_H_
