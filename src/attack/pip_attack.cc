#include "attack/pip_attack.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/math.h"

namespace pieck {

namespace {
constexpr int kNumClasses = 3;
constexpr double kEstimatorLr = 0.05;
constexpr int kEstimatorBatch = 64;
// Relative weight of the popularity-enhancement component against the
// explicit-promotion component.
constexpr double kPopWeight = 5.0;
// Virtual steps for the popularity-enhancement push (net displacement is
// uploaded, mirroring the virtual-optimization device used by PIECK).
constexpr int kPopSteps = 5;

Vec SoftmaxLogits(const Matrix& w, const Vec& b, const Vec& v) {
  Vec logits = w.MatVec(v);
  Axpy(1.0, b, logits);
  return Softmax(logits);
}
}  // namespace

PipAttack::PipAttack(const RecModel& model, AttackConfig config,
                     const Dataset* full_train, uint64_t seed)
    : model_(model), config_(std::move(config)) {
  Rng rng(seed);
  if (full_train != nullptr) {
    // Popularity levels: top 10% -> class 0, next 30% -> class 1,
    // remainder -> class 2.
    std::vector<int> rank = full_train->PopularityRank();
    int m = full_train->num_items();
    labels_.resize(static_cast<size_t>(m));
    for (int item = 0; item < m; ++item) {
      double frac = static_cast<double>(rank[static_cast<size_t>(item)]) /
                    std::max(1, m);
      labels_[static_cast<size_t>(item)] =
          frac < 0.1 ? 0 : (frac < 0.4 ? 1 : 2);
    }
    if (!config_.pipa_true_popularity) {
      // Masked prior knowledge: the attacker has no popularity levels;
      // shuffled labels model its best blind guess.
      rng.Shuffle(labels_);
    }
  }
}

void PipAttack::TrainEstimatorStep(const GlobalModel& g, Rng& rng) {
  if (labels_.empty()) return;
  int m = g.num_items();
  for (int n = 0; n < kEstimatorBatch; ++n) {
    int item = static_cast<int>(rng.UniformInt(0, m - 1));
    Vec v = g.item_embeddings.Row(static_cast<size_t>(item));
    Vec probs = SoftmaxLogits(classifier_w_, classifier_b_, v);
    int y = labels_[static_cast<size_t>(item)];
    // Cross-entropy gradient: dL/dlogit_c = p_c − 1[c == y].
    for (int c = 0; c < kNumClasses; ++c) {
      double d = probs[static_cast<size_t>(c)] - (c == y ? 1.0 : 0.0);
      classifier_b_[static_cast<size_t>(c)] -= kEstimatorLr * d;
      for (size_t col = 0; col < v.size(); ++col) {
        classifier_w_.At(static_cast<size_t>(c), col) -=
            kEstimatorLr * d * v[col];
      }
    }
  }
}

Vec PipAttack::PopularityPushGradient(const Vec& v) const {
  // d/dv of CE(class 0 | classifier(v)) = Σ_c (p_c − 1[c==0]) w_c.
  Vec probs = SoftmaxLogits(classifier_w_, classifier_b_, v);
  Vec grad = Zeros(v.size());
  for (int c = 0; c < kNumClasses; ++c) {
    double d = probs[static_cast<size_t>(c)] - (c == 0 ? 1.0 : 0.0);
    for (size_t col = 0; col < v.size(); ++col) {
      grad[col] += d * classifier_w_.At(static_cast<size_t>(c), col);
    }
  }
  return grad;
}

ClientUpdate PipAttack::ParticipateRound(const GlobalModel& g, int /*round*/,
                                         Rng& rng) {
  if (!initialized_) {
    classifier_w_ = Matrix(kNumClasses, static_cast<size_t>(g.dim()));
    classifier_w_.RandomNormal(rng, 0.0, 0.1);
    classifier_b_ = Zeros(kNumClasses);
    profiles_.resize(
        static_cast<size_t>(std::max(1, config_.num_approx_users)));
    for (Vec& p : profiles_) p = model_.InitUserEmbedding(rng);
    initialized_ = true;
  }
  TrainEstimatorStep(g, rng);

  ClientUpdate update;
  update.interaction_grads = InteractionGrads::ZerosLike(g);

  int primary = config_.target_items[0];
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(primary));

  // Component 1: explicit promotion via fabricated user profiles (this
  // is ordinary training on fake positives, so DL-FRS interaction
  // parameters receive poison too).
  ForwardCache cache;
  Vec grad = Zeros(vt.size());
  const double inv_p = 1.0 / static_cast<double>(profiles_.size());
  for (Vec& profile : profiles_) {
    Vec grad_u = Zeros(profile.size());
    Vec grad_v = Zeros(vt.size());
    double logit = model_.Forward(g, profile, vt, &cache);
    double dlogit = BceGradFromLogit(1.0, logit);
    model_.Backward(g, profile, vt, cache, dlogit, &grad_u, &grad_v,
                    update.interaction_grads.active
                        ? &update.interaction_grads
                        : nullptr);
    Axpy(inv_p, grad_v, grad);
    Axpy(-0.1, grad_u, profile);  // local profile refinement
  }

  // Component 2: popularity enhancement through the estimator — a short
  // virtual optimization pushing the target toward the "popular" class.
  if (!labels_.empty()) {
    Vec v = vt;
    const double eta = 1.0;  // unit internal step (see pieck_uea.cc)
    for (int step = 0; step < kPopSteps; ++step) {
      Vec pop_grad = PopularityPushGradient(v);
      Axpy(-eta * kPopWeight, pop_grad, v);
    }
    Vec displacement = Sub(vt, v);
    Axpy(1.0 / eta, displacement, grad);
  }

  Scale(config_.attack_scale, grad);
  for (int target : config_.target_items) {
    update.AccumulateItemGrad(target, grad);
  }
  return update;
}

}  // namespace pieck
