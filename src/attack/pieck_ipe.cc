#include "attack/pieck_ipe.h"

#include "common/logging.h"

namespace pieck {

namespace internal_ipe {

std::vector<double> RankWeights(size_t m, bool use_rank_weights) {
  // κ(v_k): the inverse rank (m − r) normalized into (0, 1] by m, so the
  // most popular item gets weight 1 and the least gets 1/m. Uniform
  // weight 1 when the κ ablation is disabled.
  std::vector<double> w(m, 1.0);
  if (!use_rank_weights || m == 0) return w;
  for (size_t r = 0; r < m; ++r) {
    w[r] = static_cast<double>(m - r) / static_cast<double>(m);
  }
  return w;
}

namespace {

/// Splits `popular` (rank-ordered) into the subsets P+ / P− of Eq. (8)
/// by the sign of the similarity to the target. With partitioning
/// disabled, everything lands in the first subset.
void PartitionBySign(const GlobalModel& g, const Vec& vt,
                     const std::vector<int>& popular, bool use_partition,
                     std::vector<int>* positive, std::vector<int>* negative) {
  for (int k : popular) {
    Vec vk = g.item_embeddings.Row(static_cast<size_t>(k));
    if (!use_partition || CosineSimilarity(vk, vt) > 0.0) {
      positive->push_back(k);
    } else {
      negative->push_back(k);
    }
  }
}

}  // namespace
}  // namespace internal_ipe

double PieckIpeAttack::AttackLoss(const GlobalModel& g, int target,
                                  const std::vector<int>& popular) const {
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(target));
  std::vector<int> subsets[2];
  internal_ipe::PartitionBySign(g, vt, popular,
                                config_.ipe_use_sign_partition, &subsets[0],
                                &subsets[1]);
  double loss = 0.0;
  for (const auto& subset : subsets) {
    if (subset.empty()) continue;
    std::vector<double> kappa = internal_ipe::RankWeights(
        subset.size(), config_.ipe_use_rank_weights);
    double coeff =
        config_.ipe_lambda / static_cast<double>(subset.size());
    for (size_t i = 0; i < subset.size(); ++i) {
      Vec vk = g.item_embeddings.Row(static_cast<size_t>(subset[i]));
      double sim = config_.ipe_metric == IpeMetric::kCosine
                       ? CosineSimilarity(vk, vt)
                       : -SoftmaxKl(vk, vt);
      loss -= coeff * kappa[i] * sim;
    }
  }
  return loss;
}

namespace internal_ipe {
namespace {

/// ∂L_IPE/∂v evaluated at an arbitrary point `vt` (used by the virtual
/// multi-step optimization below).
Vec IpeGradientAt(const GlobalModel& g, const Vec& vt,
                  const std::vector<int>& popular,
                  const AttackConfig& config) {
  Vec grad = Zeros(vt.size());
  std::vector<int> subsets[2];
  PartitionBySign(g, vt, popular, config.ipe_use_sign_partition, &subsets[0],
                  &subsets[1]);
  for (const auto& subset : subsets) {
    if (subset.empty()) continue;
    std::vector<double> kappa =
        RankWeights(subset.size(), config.ipe_use_rank_weights);
    double coeff = config.ipe_lambda / static_cast<double>(subset.size());
    for (size_t i = 0; i < subset.size(); ++i) {
      Vec vk = g.item_embeddings.Row(static_cast<size_t>(subset[i]));
      if (config.ipe_metric == IpeMetric::kCosine) {
        // L contains −coeff·κ·cos(v_k, v_t): dL/dv_t = −coeff·κ·∇cos.
        Vec dcos = CosineSimilarityGradWrtB(vk, vt);
        Axpy(-coeff * kappa[i], dcos, grad);
      } else {
        // PKL variant: L contains +coeff·κ·KL(v_k || v_t).
        Vec dkl = SoftmaxKlGradWrtB(vk, vt);
        Axpy(coeff * kappa[i], dkl, grad);
      }
    }
  }
  return grad;
}

}  // namespace
}  // namespace internal_ipe

Vec PieckIpeAttack::ComputePoisonGradient(const GlobalModel& g, int target,
                                          const std::vector<int>& popular,
                                          Rng& /*rng*/) {
  // Short virtual optimization of L_IPE with the known server rate η;
  // the net displacement is uploaded as one gradient (same device as
  // UEA's batched optimization). The cosine objective is self-limiting:
  // once the virtual embedding aligns with the mined popular items the
  // gradient vanishes, so the upload cannot blow up.
  const Vec v0 = g.item_embeddings.Row(static_cast<size_t>(target));
  Vec v = v0;
  // Unit internal step: the upload is an accumulated loss gradient (see
  // the note in pieck_uea.cc), not a 1/η-amplified displacement.
  const double eta = 1.0;
  for (int step = 0; step < std::max(1, config_.ipe_opt_steps); ++step) {
    Vec grad = internal_ipe::IpeGradientAt(g, v, popular, config_);
    Axpy(-eta, grad, v);
  }
  Vec upload = Sub(v0, v);
  Scale(1.0 / eta, upload);
  return upload;
}

}  // namespace pieck
