#ifndef PIECK_ATTACK_A_HUM_H_
#define PIECK_ATTACK_A_HUM_H_

#include "attack/attack.h"

namespace pieck {

/// A-HUM (Rong et al., IJCAI 2022): A-RA extended with hard-user mining.
///
/// Instead of purely random users, the attack refines random initial
/// embeddings by gradient descent to find "hard" users that rate the
/// target poorly, then uploads gradients that flip exactly those users'
/// scores. Unlike A-RA, the hard users give the item-embedding gradient
/// a meaningful direction, so A-HUM retains partial strength even on
/// MF-FRS (Table III: ~31% ER on ML-100K) while fully poisoning DL-FRS.
class AHumAttack : public Attack {
 public:
  AHumAttack(const RecModel& model, AttackConfig config)
      : model_(model), config_(std::move(config)) {}

  std::string name() const override { return "A-HUM"; }

  ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                Rng& rng) override;

  /// Mines one hard user for `target`: starts from a random embedding
  /// and descends so that Ψ(u, v_target) is minimized. Exposed for tests.
  Vec MineHardUser(const GlobalModel& g, int target, Rng& rng) const;

 private:
  const RecModel& model_;
  AttackConfig config_;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_A_HUM_H_
