#ifndef PIECK_ATTACK_PIP_ATTACK_H_
#define PIECK_ATTACK_PIP_ATTACK_H_

#include <vector>

#include "attack/attack.h"
#include "tensor/matrix.h"

namespace pieck {

/// PipAttack (Zhang et al., WSDM 2022): explicit promotion plus item
/// popularity enhancement via a popularity estimator.
///
/// Two loss components drive the poison gradients:
///  1. explicit promotion — the malicious client trains its own user
///     profile to rate the target(s) highly (BCE with label 1), which
///     also poisons the interaction function in DL-FRS;
///  2. popularity enhancement — a small softmax classifier is trained
///     to predict an item's popularity level from its embedding, and the
///     target is pushed toward the "popular" class.
///
/// The popularity levels are prior knowledge. The paper masks them
/// (§VII-A3); our default (`pipa_true_popularity = false`) trains the
/// estimator on shuffled labels, neutering component 2 — reproducing
/// PIPA's mid-pack ER in Table III.
class PipAttack : public Attack {
 public:
  PipAttack(const RecModel& model, AttackConfig config,
            const Dataset* full_train, uint64_t seed);

  std::string name() const override { return "PipAttack"; }

  ClientUpdate ParticipateRound(const GlobalModel& g, int round,
                                Rng& rng) override;

  /// Popularity class of each item used for estimator training
  /// (0 = popular, 1 = mid, 2 = cold). Exposed for tests.
  const std::vector<int>& labels() const { return labels_; }

 private:
  /// Softmax-classifier gradient pushing `v` toward class 0 (popular).
  Vec PopularityPushGradient(const Vec& v) const;
  void TrainEstimatorStep(const GlobalModel& g, Rng& rng);

  const RecModel& model_;
  AttackConfig config_;
  std::vector<int> labels_;
  Matrix classifier_w_;  // 3 x dim
  Vec classifier_b_;     // 3
  std::vector<Vec> profiles_;  // fake user profiles for explicit promotion
  bool initialized_ = false;
};

}  // namespace pieck

#endif  // PIECK_ATTACK_PIP_ATTACK_H_
