#include "attack/a_ra.h"

#include "common/logging.h"
#include "tensor/math.h"

namespace pieck {

ClientUpdate ARaAttack::ParticipateRound(const GlobalModel& g, int /*round*/,
                                         Rng& rng) {
  ClientUpdate update;
  if (!model_.has_learnable_interaction()) {
    return update;  // null parameters on MF-FRS
  }
  update.interaction_grads = InteractionGrads::ZerosLike(g);

  const int m = std::max(1, config_.num_approx_users);
  const double inv_m = 1.0 / static_cast<double>(m);
  int primary = config_.target_items[0];
  Vec vt = g.item_embeddings.Row(static_cast<size_t>(primary));
  Vec grad = Zeros(vt.size());

  ForwardCache cache;
  for (int i = 0; i < m; ++i) {
    Vec u(static_cast<size_t>(g.dim()));
    for (double& x : u) x = rng.Normal(0.0, 1.0);
    double logit = model_.Forward(g, u, vt, &cache);
    double dlogit = BceGradFromLogit(1.0, logit) * inv_m;
    model_.Backward(g, u, vt, cache, dlogit, nullptr, &grad,
                    &update.interaction_grads);
  }

  Scale(config_.attack_scale, grad);
  for (int target : config_.target_items) {
    update.AccumulateItemGrad(target, grad);
  }
  return update;
}

}  // namespace pieck
