#include "attack/pieck_attack_base.h"

#include "common/logging.h"

namespace pieck {

PieckAttackBase::PieckAttackBase(const RecModel& model, AttackConfig config)
    : model_(model),
      config_(std::move(config)),
      miner_(config_.mining_rounds, config_.mined_top_n) {
  PIECK_CHECK(!config_.target_items.empty())
      << "PIECK needs at least one target item";
}

ClientUpdate PieckAttackBase::ParticipateRound(const GlobalModel& g,
                                               int /*round*/, Rng& rng) {
  miner_.Observe(g.item_embeddings);

  ClientUpdate update;  // inactive interaction grads: PIECK never poisons Ψ
  if (!miner_.Ready()) return update;  // Algorithm 2/3 line 1: still mining

  // The attacker's own poison inflates the targets' Δ-Norm, so they can
  // surface in the mined set; the attacker knows T and filters it out.
  std::vector<int> popular;
  popular.reserve(miner_.MinedItems().size());
  for (int item : miner_.MinedItems()) {
    bool is_target = false;
    for (int t : config_.target_items) is_target = is_target || item == t;
    if (!is_target) popular.push_back(item);
  }
  if (popular.empty()) return update;

  switch (config_.multi_target) {
    case MultiTargetStrategy::kTrainOneThenCopy: {
      // Optimize the first target only; upload |T| copies (§VI-G2).
      Vec grad =
          ComputePoisonGradient(g, config_.target_items[0], popular, rng);
      Scale(config_.attack_scale, grad);
      for (int target : config_.target_items) {
        update.AccumulateItemGrad(target, grad);
      }
      break;
    }
    case MultiTargetStrategy::kTrainTogether: {
      const double inv_t =
          1.0 / static_cast<double>(config_.target_items.size());
      for (int target : config_.target_items) {
        Vec grad = ComputePoisonGradient(g, target, popular, rng);
        Scale(config_.attack_scale * inv_t, grad);
        update.AccumulateItemGrad(target, grad);
      }
      break;
    }
  }
  return update;
}

}  // namespace pieck
