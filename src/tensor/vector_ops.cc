#include "tensor/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

double Dot(const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == b.size());
  return ActiveKernels().dot(a.data(), b.data(), a.size());
}

void Axpy(double alpha, const Vec& x, Vec& y) {
  PIECK_CHECK(x.size() == y.size());
  ActiveKernels().axpy(alpha, x.data(), y.data(), x.size());
}

void Scale(double alpha, Vec& x) {
  ActiveKernels().scale(alpha, x.data(), x.size());
}

Vec Add(const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double SquaredNorm2(const Vec& a) {
  return ActiveKernels().squared_norm(a.data(), a.size());
}

double Norm2(const Vec& a) { return std::sqrt(SquaredNorm2(a)); }

double L2Distance(const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == b.size());
  return std::sqrt(ActiveKernels().squared_distance(a.data(), b.data(),
                                                    a.size()));
}

double CosineSimilarity(const Vec& a, const Vec& b) {
  double na = Norm2(a);
  double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

Vec CosineSimilarityGradWrtB(const Vec& a, const Vec& b) {
  // d/db [ a.b / (|a||b|) ] = a / (|a||b|) - (a.b) b / (|a| |b|^3)
  double na = Norm2(a);
  double nb = Norm2(b);
  Vec grad = Zeros(b.size());
  if (na == 0.0 || nb == 0.0) return grad;
  double ab = Dot(a, b);
  double inv = 1.0 / (na * nb);
  double coef_b = ab / (na * nb * nb * nb);
  for (size_t i = 0; i < b.size(); ++i) {
    grad[i] = a[i] * inv - coef_b * b[i];
  }
  return grad;
}

Vec Softmax(const Vec& a) {
  PIECK_CHECK(!a.empty());
  double mx = *std::max_element(a.begin(), a.end());
  Vec out(a.size());
  double z = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = std::exp(a[i] - mx);
    z += out[i];
  }
  for (double& v : out) v /= z;
  return out;
}

double SoftmaxKl(const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == b.size());
  Vec p = Softmax(a);
  Vec q = Softmax(b);
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    // p[i] > 0 always holds for softmax outputs.
    kl += p[i] * (std::log(p[i]) - std::log(q[i]));
  }
  return kl;
}

Vec SoftmaxKlGradWrtB(const Vec& a, const Vec& b) {
  // KL(p || q(b)) with q = softmax(b): dKL/db_j = q_j - p_j.
  Vec p = Softmax(a);
  Vec q = Softmax(b);
  Vec grad(b.size());
  for (size_t i = 0; i < b.size(); ++i) grad[i] = q[i] - p[i];
  return grad;
}

Vec SoftmaxKlGradWrtA(const Vec& a, const Vec& b) {
  // KL(p(a) || q) with p = softmax(a):
  // dKL/da_j = p_j * (log p_j - log q_j - KL).
  Vec p = Softmax(a);
  Vec q = Softmax(b);
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    kl += p[i] * (std::log(p[i]) - std::log(q[i]));
  }
  Vec grad(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    grad[i] = p[i] * (std::log(p[i]) - std::log(q[i]) - kl);
  }
  return grad;
}

void ClipNorm(Vec& x, double max_norm) {
  PIECK_CHECK(max_norm >= 0.0);
  ActiveKernels().ProjectL2Ball(x.data(), x.size(), max_norm);
}

Vec Zeros(size_t dim) { return Vec(dim, 0.0); }

bool AllFinite(const Vec& a) {
  for (double v : a) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace pieck
