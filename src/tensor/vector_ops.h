/// \file
/// Vec-level wrappers over the dense math primitives.
///
/// Contracts: size mismatches abort via PIECK_CHECK. All functions are
/// pure (thread-safe for concurrent calls on distinct outputs; in-place
/// functions require exclusive access to their output). No alignment
/// requirements. The BLAS-shaped operations (Dot, Axpy, Scale, norms,
/// ClipNorm) dispatch through the runtime-selected SIMD kernel layer in
/// `tensor/kernels.h` and inherit its bit-exactness guarantee: results
/// do not depend on the selected backend. Hot loops that already hold
/// raw row pointers should call `ActiveKernels()` directly and skip the
/// Vec indirection.
#ifndef PIECK_TENSOR_VECTOR_OPS_H_
#define PIECK_TENSOR_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace pieck {

/// Dense embedding / gradient vector. All model parameters in the library
/// are `Vec`s or matrices of `Vec` rows; double precision keeps numeric
/// gradient checks tight.
using Vec = std::vector<double>;

/// Inner product. Requires a.size() == b.size().
double Dot(const Vec& a, const Vec& b);

/// y += alpha * x (BLAS axpy). Requires x.size() == y.size().
void Axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void Scale(double alpha, Vec& x);

/// Returns a + b.
Vec Add(const Vec& a, const Vec& b);

/// Returns a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Euclidean (L2) norm.
double Norm2(const Vec& a);

/// Squared L2 norm.
double SquaredNorm2(const Vec& a);

/// L2 distance ||a - b||_2; the Δ-Norm of Eq. (7) between two snapshots
/// of the same item embedding.
double L2Distance(const Vec& a, const Vec& b);

/// Cosine similarity; returns 0 when either vector has zero norm.
double CosineSimilarity(const Vec& a, const Vec& b);

/// Gradient of cos(a, b) with respect to `b` (treating `a` as constant).
/// Returns the zero vector if either norm is zero.
Vec CosineSimilarityGradWrtB(const Vec& a, const Vec& b);

/// Numerically stable softmax.
Vec Softmax(const Vec& a);

/// KL(softmax(a) || softmax(b)). The paper's PKL (Eq. 9) and Re2 (Eq. 15)
/// compare embedding vectors via KL divergence; embeddings are mapped to
/// the probability simplex with softmax first (see DESIGN.md §3).
double SoftmaxKl(const Vec& a, const Vec& b);

/// Gradient of SoftmaxKl(a, b) with respect to `b` (a constant).
Vec SoftmaxKlGradWrtB(const Vec& a, const Vec& b);

/// Gradient of SoftmaxKl(a, b) with respect to `a` (b constant).
Vec SoftmaxKlGradWrtA(const Vec& a, const Vec& b);

/// Clips `x` in place so its L2 norm does not exceed `max_norm`.
void ClipNorm(Vec& x, double max_norm);

/// Returns a zero vector of the given dimension.
Vec Zeros(size_t dim);

/// True if all entries are finite.
bool AllFinite(const Vec& a);

}  // namespace pieck

#endif  // PIECK_TENSOR_VECTOR_OPS_H_
