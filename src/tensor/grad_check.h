/// \file
/// Finite-difference gradient checking used by the model and loss
/// tests. Tolerances are loose enough (central differences, eps ~1e-5)
/// that the kernel layer's fixed reduction order never affects a
/// verdict. `f` may be called many times and must be deterministic;
/// not thread-safe if `f` mutates shared state.
#ifndef PIECK_TENSOR_GRAD_CHECK_H_
#define PIECK_TENSOR_GRAD_CHECK_H_

#include <functional>

#include "tensor/vector_ops.h"

namespace pieck {

/// Central-difference numeric gradient of `f` at `x`.
Vec NumericGradient(const std::function<double(const Vec&)>& f, const Vec& x,
                    double eps = 1e-5);

/// Maximum relative error between an analytic gradient and the numeric
/// gradient of `f` at `x`. The relative error of component i is
/// |a_i - n_i| / max(1, |a_i|, |n_i|).
double MaxRelativeGradError(const std::function<double(const Vec&)>& f,
                            const Vec& x, const Vec& analytic_grad,
                            double eps = 1e-5);

}  // namespace pieck

#endif  // PIECK_TENSOR_GRAD_CHECK_H_
