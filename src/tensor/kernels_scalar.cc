// Portable reference backend. Reductions use the blocked 8-lane order
// mandated by kernels.h so that the SIMD backends can match it lane for
// lane. This translation unit is compiled with -ffp-contract=off (no
// fused multiply-add) and with auto-vectorization disabled, so it is
// both the bit-exactness reference and an honest scalar baseline for
// the kernel benchmarks.

#include "tensor/kernels_internal.h"

namespace pieck {
namespace internal {

double DotScalar(const double* a, const double* b, std::size_t n) {
  double lanes[8] = {0.0};
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) lanes[j] += a[i + j] * b[i + j];
  }
  for (; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return CombineLanes(lanes);
}

void AxpyScalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(double alpha, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double SquaredNormScalar(const double* x, std::size_t n) {
  double lanes[8] = {0.0};
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) lanes[j] += x[i + j] * x[i + j];
  }
  for (; i < n; ++i) lanes[i - n8] += x[i] * x[i];
  return CombineLanes(lanes);
}

double SquaredDistanceScalar(const double* a, const double* b,
                             std::size_t n) {
  double lanes[8] = {0.0};
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double d = a[i + j] - b[i + j];
      lanes[j] += d * d;
    }
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return CombineLanes(lanes);
}

void GemvScalar(const double* m, std::size_t rows, std::size_t cols,
                const double* x, double* out) {
  // One blocked dot per row: out[r] is bitwise dot(row_r, x), which is
  // the whole contract — the SIMD backends may batch rows to share the
  // x loads but must reproduce exactly this per-row reduction.
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = DotScalar(m + r * cols, x, cols);
  }
}

void ReluScalar(const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluBackwardScalar(const double* pre, double* delta, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    delta[i] = pre[i] > 0.0 ? delta[i] : 0.0;
  }
}

}  // namespace internal
}  // namespace pieck
