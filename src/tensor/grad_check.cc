#include "tensor/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pieck {

Vec NumericGradient(const std::function<double(const Vec&)>& f, const Vec& x,
                    double eps) {
  Vec grad(x.size());
  Vec probe = x;
  for (size_t i = 0; i < x.size(); ++i) {
    probe[i] = x[i] + eps;
    double fp = f(probe);
    probe[i] = x[i] - eps;
    double fm = f(probe);
    probe[i] = x[i];
    grad[i] = (fp - fm) / (2.0 * eps);
  }
  return grad;
}

double MaxRelativeGradError(const std::function<double(const Vec&)>& f,
                            const Vec& x, const Vec& analytic_grad,
                            double eps) {
  PIECK_CHECK(x.size() == analytic_grad.size());
  Vec numeric = NumericGradient(f, x, eps);
  double worst = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double denom =
        std::max({1.0, std::fabs(analytic_grad[i]), std::fabs(numeric[i])});
    worst = std::max(worst, std::fabs(analytic_grad[i] - numeric[i]) / denom);
  }
  return worst;
}

}  // namespace pieck
