#include "tensor/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "tensor/kernels_internal.h"
#include "tensor/math.h"

namespace pieck {

namespace {

const KernelTable kScalarTable = {
    KernelBackend::kScalar,         internal::DotScalar,
    internal::AxpyScalar,           internal::ScaleScalar,
    internal::SquaredNormScalar,    internal::SquaredDistanceScalar,
    internal::ReluScalar,           internal::ReluBackwardScalar,
    internal::GemvScalar,
};

#if defined(PIECK_HAVE_AVX2)
const KernelTable kAvx2Table = {
    KernelBackend::kAvx2,         internal::DotAvx2,
    internal::AxpyAvx2,           internal::ScaleAvx2,
    internal::SquaredNormAvx2,    internal::SquaredDistanceAvx2,
    internal::ReluAvx2,           internal::ReluBackwardAvx2,
    internal::GemvAvx2,
};

bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
#endif  // PIECK_HAVE_AVX2

#if defined(PIECK_HAVE_NEON)
const KernelTable kNeonTable = {
    KernelBackend::kNeon,         internal::DotNeon,
    internal::AxpyNeon,           internal::ScaleNeon,
    internal::SquaredNormNeon,    internal::SquaredDistanceNeon,
    internal::ReluNeon,           internal::ReluBackwardNeon,
    internal::GemvNeon,
};
#endif  // PIECK_HAVE_NEON

/// Picks the startup backend: the PIECK_SIMD environment variable wins
/// (unknown or unavailable values fall back to auto-detection), then the
/// widest backend this CPU supports, then scalar.
const KernelTable* DetectBackend() {
  const char* env = std::getenv("PIECK_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return &kScalarTable;
    }
    if (std::strcmp(env, "avx2") == 0 && Avx2Kernels() != nullptr) {
      return Avx2Kernels();
    }
    if (std::strcmp(env, "neon") == 0 && NeonKernels() != nullptr) {
      return NeonKernels();
    }
  }
  if (Avx2Kernels() != nullptr) return Avx2Kernels();
  if (NeonKernels() != nullptr) return NeonKernels();
  return &kScalarTable;
}

const KernelTable*& ActiveTablePtr() {
  static const KernelTable* active = DetectBackend();
  return active;
}

}  // namespace

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "?";
}

const KernelTable& ScalarKernels() { return kScalarTable; }

const KernelTable* Avx2Kernels() {
#if defined(PIECK_HAVE_AVX2)
  static const bool supported = CpuHasAvx2();
  return supported ? &kAvx2Table : nullptr;
#else
  return nullptr;
#endif
}

const KernelTable* NeonKernels() {
#if defined(PIECK_HAVE_NEON)
  return &kNeonTable;
#else
  return nullptr;
#endif
}

std::vector<const KernelTable*> AvailableKernelTables() {
  std::vector<const KernelTable*> tables = {&kScalarTable};
  if (Avx2Kernels() != nullptr) tables.push_back(Avx2Kernels());
  if (NeonKernels() != nullptr) tables.push_back(NeonKernels());
  return tables;
}

const KernelTable& ActiveKernels() { return *ActiveTablePtr(); }

bool SetActiveKernelBackend(KernelBackend backend) {
  const KernelTable* table = nullptr;
  switch (backend) {
    case KernelBackend::kScalar:
      table = &kScalarTable;
      break;
    case KernelBackend::kAvx2:
      table = Avx2Kernels();
      break;
    case KernelBackend::kNeon:
      table = NeonKernels();
      break;
  }
  if (table == nullptr) return false;
  ActiveTablePtr() = table;
  return true;
}

double KernelTable::BceStep(double label, double weight, const double* u,
                            const double* v, double* grad_u, double* grad_v,
                            std::size_t n) const {
  const double logit = dot(u, v, n);
  const double loss = BceLossFromLogit(label, logit) * weight;
  const double dlogit = BceGradFromLogit(label, logit) * weight;
  if (grad_u != nullptr) axpy(dlogit, v, grad_u, n);
  if (grad_v != nullptr) axpy(dlogit, u, grad_v, n);
  return loss;
}

void KernelTable::ProjectL2Ball(double* x, std::size_t n,
                                double max_norm) const {
  const double norm = std::sqrt(squared_norm(x, n));
  if (norm > max_norm && norm > 0.0) {
    scale(max_norm / norm, x, n);
  }
}

}  // namespace pieck
