/// \file
/// Internal declarations of the per-backend kernel entry points. Each
/// backend translation unit (kernels_scalar.cc, kernels_avx2.cc,
/// kernels_neon.cc) defines its set; kernels.cc assembles them into
/// KernelTables. Not installed; include only from src/tensor.
#ifndef PIECK_TENSOR_KERNELS_INTERNAL_H_
#define PIECK_TENSOR_KERNELS_INTERNAL_H_

#include <cstddef>

namespace pieck {
namespace internal {

/// The reduction-combine order mandated by kernels.h, in one place so
/// every backend shares a single definition of the bit-exactness
/// contract: ((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7)).
inline double CombineLanes(const double* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

double DotScalar(const double* a, const double* b, std::size_t n);
void AxpyScalar(double alpha, const double* x, double* y, std::size_t n);
void ScaleScalar(double alpha, double* x, std::size_t n);
double SquaredNormScalar(const double* x, std::size_t n);
double SquaredDistanceScalar(const double* a, const double* b, std::size_t n);
void ReluScalar(const double* x, double* y, std::size_t n);
void ReluBackwardScalar(const double* pre, double* delta, std::size_t n);
void GemvScalar(const double* m, std::size_t rows, std::size_t cols,
                const double* x, double* out);

#if defined(PIECK_HAVE_AVX2)
double DotAvx2(const double* a, const double* b, std::size_t n);
void AxpyAvx2(double alpha, const double* x, double* y, std::size_t n);
void ScaleAvx2(double alpha, double* x, std::size_t n);
double SquaredNormAvx2(const double* x, std::size_t n);
double SquaredDistanceAvx2(const double* a, const double* b, std::size_t n);
void ReluAvx2(const double* x, double* y, std::size_t n);
void ReluBackwardAvx2(const double* pre, double* delta, std::size_t n);
void GemvAvx2(const double* m, std::size_t rows, std::size_t cols,
              const double* x, double* out);
#endif

#if defined(PIECK_HAVE_NEON)
double DotNeon(const double* a, const double* b, std::size_t n);
void AxpyNeon(double alpha, const double* x, double* y, std::size_t n);
void ScaleNeon(double alpha, double* x, std::size_t n);
double SquaredNormNeon(const double* x, std::size_t n);
double SquaredDistanceNeon(const double* a, const double* b, std::size_t n);
void ReluNeon(const double* x, double* y, std::size_t n);
void ReluBackwardNeon(const double* pre, double* delta, std::size_t n);
void GemvNeon(const double* m, std::size_t rows, std::size_t cols,
              const double* x, double* out);
#endif

}  // namespace internal
}  // namespace pieck

#endif  // PIECK_TENSOR_KERNELS_INTERNAL_H_
