#include "tensor/matrix.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/kernels.h"

namespace pieck {

Vec Matrix::Row(size_t r) const {
  PIECK_CHECK(r < rows_);
  return Vec(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

const double* Matrix::RowPtr(size_t r) const {
  PIECK_CHECK(r < rows_);
  return data_.data() + r * cols_;
}

double* Matrix::MutableRowPtr(size_t r) {
  PIECK_CHECK(r < rows_);
  return data_.data() + r * cols_;
}

void Matrix::SetRow(size_t r, const Vec& v) {
  PIECK_CHECK(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(),
            data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

void Matrix::AxpyRow(size_t r, double alpha, const Vec& v) {
  PIECK_CHECK(r < rows_ && v.size() == cols_);
  ActiveKernels().axpy(alpha, v.data(), data_.data() + r * cols_, cols_);
}

Vec Matrix::MatVec(const Vec& x) const {
  PIECK_CHECK(x.size() == cols_);
  // One batched gemv over the whole matrix; bit-identical to the per-row
  // dot loop by the kernel contract, but shares each load of x across a
  // block of rows.
  Vec y(rows_, 0.0);
  ActiveKernels().gemv(data_.data(), rows_, cols_, x.data(), y.data());
  return y;
}

Vec Matrix::MatTVec(const Vec& x) const {
  PIECK_CHECK(x.size() == rows_);
  const KernelTable& k = ActiveKernels();
  Vec y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    k.axpy(x[r], data_.data() + r * cols_, y.data(), cols_);
  }
  return y;
}

void Matrix::AddOuter(double alpha, const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == rows_ && b.size() == cols_);
  const KernelTable& k = ActiveKernels();
  for (size_t r = 0; r < rows_; ++r) {
    k.axpy(alpha * a[r], b.data(), data_.data() + r * cols_, cols_);
  }
}

void Matrix::RandomNormal(Rng& rng, double mean, double stddev) {
  for (double& v : data_) v = rng.Normal(mean, stddev);
}

void Matrix::RandomUniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.Uniform(lo, hi);
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::FrobeniusNorm() const {
  return std::sqrt(ActiveKernels().squared_norm(data_.data(), data_.size()));
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  PIECK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  ActiveKernels().axpy(alpha, other.data_.data(), data_.data(), data_.size());
}

}  // namespace pieck
