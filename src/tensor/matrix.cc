#include "tensor/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace pieck {

Vec Matrix::Row(size_t r) const {
  PIECK_CHECK(r < rows_);
  return Vec(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<ptrdiff_t>((r + 1) * cols_));
}

void Matrix::SetRow(size_t r, const Vec& v) {
  PIECK_CHECK(r < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(),
            data_.begin() + static_cast<ptrdiff_t>(r * cols_));
}

void Matrix::AxpyRow(size_t r, double alpha, const Vec& v) {
  PIECK_CHECK(r < rows_ && v.size() == cols_);
  double* row = data_.data() + r * cols_;
  for (size_t c = 0; c < cols_; ++c) row[c] += alpha * v[c];
}

Vec Matrix::MatVec(const Vec& x) const {
  PIECK_CHECK(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec Matrix::MatTVec(const Vec& x) const {
  PIECK_CHECK(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double xr = x[r];
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

void Matrix::AddOuter(double alpha, const Vec& a, const Vec& b) {
  PIECK_CHECK(a.size() == rows_ && b.size() == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    double* row = data_.data() + r * cols_;
    double ar = alpha * a[r];
    for (size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::RandomNormal(Rng& rng, double mean, double stddev) {
  for (double& v : data_) v = rng.Normal(mean, stddev);
}

void Matrix::RandomUniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.Uniform(lo, hi);
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  PIECK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

}  // namespace pieck
