/// \file
/// Runtime-dispatched SIMD kernels for the dense embedding hot path.
///
/// Every experiment in the library bottoms out in d-dimensional double
/// arithmetic over embedding rows (dot products, axpy gradient steps,
/// norms, the sigmoid/BCE update, and the clamped L2-ball projection of
/// the Δ-Norm defense). This layer provides those primitives as raw
/// pointer kernels behind a function table that is selected once at
/// runtime: AVX2 on x86-64, NEON on AArch64, and a portable scalar
/// fallback everywhere (also used when the build disables SIMD with
/// `-DPIECK_ENABLE_SIMD=OFF`).
///
/// ## Bit-exactness contract
///
/// All backends are required to produce **bit-identical** results (0 ULP)
/// for every kernel. Elementwise kernels (axpy, scale, relu) are exact
/// per IEEE-754 once floating-point contraction is disabled, which the
/// build enforces with `-ffp-contract=off` on every kernel translation
/// unit. Reductions (dot, squared_norm, squared_distance) follow a fixed
/// **8-lane blocked order**: element i accumulates into lane `i mod 8`,
/// and the lanes combine as
/// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`. Eight lanes give every
/// backend at least two independent accumulator chains (two 4-wide
/// vectors on AVX2, four 2-wide on NEON), hiding FP-add latency; the
/// scalar fallback implements exactly this order (and is compiled with
/// auto-vectorization off so it stays honestly scalar for benchmarking),
/// so SIMD on/off and cross-architecture runs agree bitwise.
/// `tests/tensor_kernels_test.cc` asserts the contract for every
/// compiled backend.
///
/// ## Alignment, aliasing, thread-safety
///
/// - Alignment: none required; all vector loads/stores are unaligned.
/// - Aliasing: input and output ranges must either coincide exactly
///   (x == y is allowed for the in-place kernels) or not overlap at all;
///   partially overlapping ranges are undefined behavior.
/// - Thread-safety: kernels are pure functions of their arguments and are
///   safe to call concurrently. `SetActiveKernelBackend` mutates the
///   process-wide dispatch pointer and must not race with concurrent
///   kernel dispatch; call it during startup or single-threaded test
///   setup only.
#ifndef PIECK_TENSOR_KERNELS_H_
#define PIECK_TENSOR_KERNELS_H_

#include <cstddef>
#include <vector>

namespace pieck {

/// Identifies one compiled kernel backend.
enum class KernelBackend {
  kScalar,  // portable blocked-scalar reference implementation
  kAvx2,    // x86-64 AVX2 (4 doubles per vector)
  kNeon,    // AArch64 NEON (2x2 doubles per vector)
};

const char* KernelBackendName(KernelBackend backend);

/// Function table of the core primitives for one backend. All pointers
/// are always non-null. Lengths may be zero; pointers may be null only
/// when the corresponding length is zero.
struct KernelTable {
  KernelBackend backend;

  /// Returns sum_i a[i]*b[i] in the blocked 8-lane order.
  double (*dot)(const double* a, const double* b, std::size_t n);

  /// y[i] += alpha * x[i]. x == y is allowed.
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);

  /// x[i] *= alpha.
  void (*scale)(double alpha, double* x, std::size_t n);

  /// Returns sum_i x[i]^2 in the blocked 8-lane order.
  double (*squared_norm)(const double* x, std::size_t n);

  /// Returns sum_i (a[i]-b[i])^2 in the blocked 8-lane order.
  double (*squared_distance)(const double* a, const double* b, std::size_t n);

  /// y[i] = x[i] > 0 ? x[i] : +0.0. x == y is allowed.
  void (*relu)(const double* x, double* y, std::size_t n);

  /// delta[i] = pre[i] > 0 ? delta[i] : +0.0 (in place). Note this is a
  /// *selection*, not a multiply by the ReLU subgradient: the masked
  /// entries are +0.0 regardless of the sign of delta[i].
  void (*relu_backward)(const double* pre, double* delta, std::size_t n);

  /// Batched row-major GEMV / multi-dot: out[r] = dot(m + r*cols, x) for
  /// r in [0, rows). `m` is a rows x cols row-major matrix (contiguous
  /// rows, e.g. `Matrix::data()` or any row range of it); `out` holds
  /// `rows` doubles and must not overlap `m` or `x`. Every row result is
  /// bit-identical to a `dot` call on that row (same blocked 8-lane
  /// order); the SIMD backends batch several rows per pass so each load
  /// of x is shared across rows. This is the evaluation hot path: scoring
  /// every item for one user is one gemv over the embedding table.
  void (*gemv)(const double* m, std::size_t rows, std::size_t cols,
               const double* x, double* out);

  // -- Composed helpers ----------------------------------------------
  // Implemented once on top of the primitives above (plus scalar libm
  // calls that are backend-independent), so their bit-exactness follows
  // from the primitives'.

  /// Fused BCE step for a dot-product (MF) interaction: computes the
  /// logit s = dot(u, v), the weighted loss w * BCE(label, σ(s)), and
  /// the weighted dlogit g = w * (σ(s) - label), then accumulates
  /// grad_u += g * v and grad_v += g * u (each skipped when null).
  /// Returns the weighted loss.
  double BceStep(double label, double weight, const double* u,
                 const double* v, double* grad_u, double* grad_v,
                 std::size_t n) const;

  /// Clamped L2-ball projection: if ||x||_2 > max_norm (> 0), rescales x
  /// by max_norm / ||x||_2; otherwise leaves x untouched. The Δ-Norm
  /// defense and FedRecAttack both clip update rows with this.
  void ProjectL2Ball(double* x, std::size_t n, double max_norm) const;
};

/// The portable reference backend (always available).
const KernelTable& ScalarKernels();

/// The AVX2 backend, or nullptr when it was not compiled in or the CPU
/// lacks AVX2.
const KernelTable* Avx2Kernels();

/// The NEON backend, or nullptr when it was not compiled in.
const KernelTable* NeonKernels();

/// Every backend usable on this machine, scalar first. The single
/// enumeration point for code that iterates backends (the 0-ULP
/// equivalence tests, the kernel benchmarks).
std::vector<const KernelTable*> AvailableKernelTables();

/// The table every math routine in the library dispatches through. On
/// first use this picks the best available backend, honouring the
/// `PIECK_SIMD` environment variable (`off`/`scalar`, `avx2`, `neon`;
/// unset or `auto` selects automatically).
const KernelTable& ActiveKernels();

/// Forces the active backend (benchmarks / tests). Returns false and
/// changes nothing when that backend is unavailable. Not safe to call
/// while other threads are dispatching kernels.
bool SetActiveKernelBackend(KernelBackend backend);

}  // namespace pieck

#endif  // PIECK_TENSOR_KERNELS_H_
