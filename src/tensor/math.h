/// \file
/// Scalar math helpers (sigmoid family, ReLU, BCE) shared by every
/// model and loss. All functions are pure, thread-safe, and numerically
/// stable over the full double range (the logit-space BCE variants
/// avoid overflow for large |s|). These are deliberately scalar: the
/// SIMD kernel layer composes them with vector primitives (e.g.
/// KernelTable::BceStep) rather than vectorizing transcendentals, so
/// their results are identical on every backend.
#ifndef PIECK_TENSOR_MATH_H_
#define PIECK_TENSOR_MATH_H_

namespace pieck {

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

/// Numerically stable log(sigmoid(x)).
double LogSigmoid(double x);

/// ReLU activation.
double Relu(double x);

/// Derivative of ReLU (sub-gradient 0 at x == 0).
double ReluGrad(double x);

/// Binary cross-entropy between label y in {0,1} and probability p,
/// clamped away from 0/1 for stability.
double BceLoss(double y, double p);

/// Binary cross-entropy expressed on the logit s (pre-sigmoid score):
/// -(y log σ(s) + (1-y) log(1-σ(s))). Stable for large |s|.
double BceLossFromLogit(double y, double s);

/// d BCE / d s where s is the logit: σ(s) - y.
double BceGradFromLogit(double y, double s);

/// Clamps `x` to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace pieck

#endif  // PIECK_TENSOR_MATH_H_
