// AArch64 NEON backend: 2 doubles per 128-bit vector, so each blocked
// iteration uses four vectors — accumulator p holds reduction lanes
// {2p, 2p+1} — reproducing the scalar reference's 8-lane order exactly
// with four independent add chains. Compiled with -ffp-contract=off and
// explicit mul-then-add intrinsics (no vfma), so every intermediate
// rounds like the scalar fallback. ReLU uses compare+bit-select rather
// than vmaxq_f64 because FMAX propagates NaN where the scalar selection
// returns +0.0.

#include "tensor/kernels_internal.h"

#if defined(PIECK_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace pieck {
namespace internal {

namespace {

inline void StoreLanes(double* lanes, float64x2_t a0, float64x2_t a1,
                       float64x2_t a2, float64x2_t a3) {
  vst1q_f64(lanes, a0);
  vst1q_f64(lanes + 2, a1);
  vst1q_f64(lanes + 4, a2);
  vst1q_f64(lanes + 6, a3);
}

}  // namespace

double DotNeon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc1 = vaddq_f64(acc1,
                     vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
    acc2 = vaddq_f64(acc2,
                     vmulq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4)));
    acc3 = vaddq_f64(acc3,
                     vmulq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6)));
  }
  double lanes[8];
  StoreLanes(lanes, acc0, acc1, acc2, acc3);
  for (; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return CombineLanes(lanes);
}

void AxpyNeon(double alpha, const double* x, double* y, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  const std::size_t n2 = n & ~static_cast<std::size_t>(1);
  std::size_t i = 0;
  for (; i < n2; i += 2) {
    const float64x2_t prod = vmulq_f64(va, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleNeon(double alpha, double* x, std::size_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  const std::size_t n2 = n & ~static_cast<std::size_t>(1);
  std::size_t i = 0;
  for (; i < n2; i += 2) {
    vst1q_f64(x + i, vmulq_f64(va, vld1q_f64(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

double SquaredNormNeon(const double* x, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const float64x2_t v0 = vld1q_f64(x + i);
    const float64x2_t v1 = vld1q_f64(x + i + 2);
    const float64x2_t v2 = vld1q_f64(x + i + 4);
    const float64x2_t v3 = vld1q_f64(x + i + 6);
    acc0 = vaddq_f64(acc0, vmulq_f64(v0, v0));
    acc1 = vaddq_f64(acc1, vmulq_f64(v1, v1));
    acc2 = vaddq_f64(acc2, vmulq_f64(v2, v2));
    acc3 = vaddq_f64(acc3, vmulq_f64(v3, v3));
  }
  double lanes[8];
  StoreLanes(lanes, acc0, acc1, acc2, acc3);
  for (; i < n; ++i) lanes[i - n8] += x[i] * x[i];
  return CombineLanes(lanes);
}

double SquaredDistanceNeon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  float64x2_t acc2 = vdupq_n_f64(0.0);
  float64x2_t acc3 = vdupq_n_f64(0.0);
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d1 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    const float64x2_t d2 =
        vsubq_f64(vld1q_f64(a + i + 4), vld1q_f64(b + i + 4));
    const float64x2_t d3 =
        vsubq_f64(vld1q_f64(a + i + 6), vld1q_f64(b + i + 6));
    acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
    acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
    acc2 = vaddq_f64(acc2, vmulq_f64(d2, d2));
    acc3 = vaddq_f64(acc3, vmulq_f64(d3, d3));
  }
  double lanes[8];
  StoreLanes(lanes, acc0, acc1, acc2, acc3);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return CombineLanes(lanes);
}

void GemvNeon(const double* m, std::size_t rows, std::size_t cols,
              const double* x, double* out) {
  // Batched multi-dot: pairs of rows share every load of x. Each row
  // keeps the four accumulators of DotNeon, so out[r] is bitwise
  // dot(m + r*cols, x, cols).
  const std::size_t n8 = cols & ~static_cast<std::size_t>(7);
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* m0 = m + r * cols;
    const double* m1 = m0 + cols;
    float64x2_t a00 = vdupq_n_f64(0.0), a01 = vdupq_n_f64(0.0);
    float64x2_t a02 = vdupq_n_f64(0.0), a03 = vdupq_n_f64(0.0);
    float64x2_t a10 = vdupq_n_f64(0.0), a11 = vdupq_n_f64(0.0);
    float64x2_t a12 = vdupq_n_f64(0.0), a13 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i < n8; i += 8) {
      const float64x2_t x0 = vld1q_f64(x + i);
      const float64x2_t x1 = vld1q_f64(x + i + 2);
      const float64x2_t x2 = vld1q_f64(x + i + 4);
      const float64x2_t x3 = vld1q_f64(x + i + 6);
      a00 = vaddq_f64(a00, vmulq_f64(vld1q_f64(m0 + i), x0));
      a01 = vaddq_f64(a01, vmulq_f64(vld1q_f64(m0 + i + 2), x1));
      a02 = vaddq_f64(a02, vmulq_f64(vld1q_f64(m0 + i + 4), x2));
      a03 = vaddq_f64(a03, vmulq_f64(vld1q_f64(m0 + i + 6), x3));
      a10 = vaddq_f64(a10, vmulq_f64(vld1q_f64(m1 + i), x0));
      a11 = vaddq_f64(a11, vmulq_f64(vld1q_f64(m1 + i + 2), x1));
      a12 = vaddq_f64(a12, vmulq_f64(vld1q_f64(m1 + i + 4), x2));
      a13 = vaddq_f64(a13, vmulq_f64(vld1q_f64(m1 + i + 6), x3));
    }
    double lanes[8];
    StoreLanes(lanes, a00, a01, a02, a03);
    for (std::size_t j = i; j < cols; ++j) lanes[j - n8] += m0[j] * x[j];
    out[r] = CombineLanes(lanes);
    StoreLanes(lanes, a10, a11, a12, a13);
    for (std::size_t j = i; j < cols; ++j) lanes[j - n8] += m1[j] * x[j];
    out[r + 1] = CombineLanes(lanes);
  }
  for (; r < rows; ++r) out[r] = DotNeon(m + r * cols, x, cols);
}

void ReluNeon(const double* x, double* y, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const std::size_t n2 = n & ~static_cast<std::size_t>(1);
  std::size_t i = 0;
  for (; i < n2; i += 2) {
    const float64x2_t v = vld1q_f64(x + i);
    const uint64x2_t mask = vcgtq_f64(v, zero);
    vst1q_f64(y + i, vbslq_f64(mask, v, zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluBackwardNeon(const double* pre, double* delta, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const std::size_t n2 = n & ~static_cast<std::size_t>(1);
  std::size_t i = 0;
  for (; i < n2; i += 2) {
    const uint64x2_t mask = vcgtq_f64(vld1q_f64(pre + i), zero);
    vst1q_f64(delta + i, vbslq_f64(mask, vld1q_f64(delta + i), zero));
  }
  for (; i < n; ++i) delta[i] = pre[i] > 0.0 ? delta[i] : 0.0;
}

}  // namespace internal
}  // namespace pieck

#endif  // PIECK_HAVE_NEON && __aarch64__
