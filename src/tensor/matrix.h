/// \file
/// Row-major dense matrix over contiguous `double` storage.
///
/// Contracts: rows are contiguous (`RowPtr(r)` spans `cols()` doubles),
/// so kernel-layer primitives apply directly to rows. No alignment
/// guarantee beyond `operator new`'s. Concurrent reads are safe;
/// concurrent writes are safe only to disjoint rows (the parallel
/// aggregation path in `fed/server.cc` relies on exactly this). The
/// dense loops (MatVec, AddOuter, ...) dispatch through
/// `tensor/kernels.h` and inherit its bit-exactness contract.
#ifndef PIECK_TENSOR_MATRIX_H_
#define PIECK_TENSOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/vector_ops.h"

namespace pieck {

/// Row-major dense matrix. Used for embedding tables (rows = item or user
/// embeddings) and MLP weight matrices.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Copies row `r` out as a Vec.
  Vec Row(size_t r) const;

  /// Borrows row `r` as a pointer to `cols()` contiguous doubles. Hot
  /// paths use this with the kernel layer to avoid the Row() copy. The
  /// pointer is invalidated by any resizing operation.
  const double* RowPtr(size_t r) const;
  double* MutableRowPtr(size_t r);

  /// Overwrites row `r` with `v` (v.size() must equal cols()).
  void SetRow(size_t r, const Vec& v);

  /// row[r] += alpha * v.
  void AxpyRow(size_t r, double alpha, const Vec& v);

  /// y = M x (y has rows() entries; x must have cols() entries).
  Vec MatVec(const Vec& x) const;

  /// y = M^T x (y has cols() entries; x must have rows() entries).
  Vec MatTVec(const Vec& x) const;

  /// M += alpha * a b^T  (a has rows() entries, b has cols() entries).
  /// The rank-1 update used by MLP weight gradients.
  void AddOuter(double alpha, const Vec& a, const Vec& b);

  /// Fills every entry with N(mean, stddev) draws.
  void RandomNormal(Rng& rng, double mean, double stddev);

  /// Fills every entry with U(lo, hi) draws.
  void RandomUniform(Rng& rng, double lo, double hi);

  /// Sets every entry to zero.
  void SetZero();

  /// Frobenius norm of the whole matrix.
  double FrobeniusNorm() const;

  /// Element-wise this += alpha * other; shapes must match.
  void Axpy(double alpha, const Matrix& other);

  /// Flat storage access (row-major). Exposed for aggregation code that
  /// treats parameters as flat gradient vectors.
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace pieck

#endif  // PIECK_TENSOR_MATRIX_H_
