// AVX2 backend: 4 doubles per 256-bit vector; reductions run two
// independent vector accumulators per the 8-lane order in kernels.h
// (acc0 = lanes 0-3, acc1 = lanes 4-7), which both matches the scalar
// reference lane for lane and hides the 4-cycle vaddpd latency.
// Compiled with -mavx2 (no -mfma) and -ffp-contract=off: without FMA
// available to the compiler, mul+add cannot be contracted, keeping every
// intermediate rounded exactly like the scalar fallback. Only added to
// the build on x86-64 with PIECK_ENABLE_SIMD=ON; callers must still
// check for AVX2 at runtime before dispatching here.

#include "tensor/kernels_internal.h"

#if defined(PIECK_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace pieck {
namespace internal {

namespace {

// In-register combine producing bitwise the same order as the shared
// CombineLanes (kernels_internal.h):
// hadd(acc0, acc1) = [l0+l1, l4+l5, l2+l3, l6+l7]; adding its low and
// high 128-bit halves gives [(l0+l1)+(l2+l3), (l4+l5)+(l6+l7)], and the
// final scalar add matches the outermost + exactly. Used on the no-tail
// fast path, where it replaces the lane store and seven scalar adds.
inline double CombineAcc(__m256d acc0, __m256d acc1) {
  const __m256d h = _mm256_hadd_pd(acc0, acc1);
  const __m128d s =
      _mm_add_pd(_mm256_castpd256_pd128(h), _mm256_extractf128_pd(h, 1));
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

}  // namespace

double DotAvx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + i + 4),
                                             _mm256_loadu_pd(b + i + 4)));
  }
  if (i == n) return CombineAcc(acc0, acc1);
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  for (; i < n; ++i) lanes[i - n8] += a[i] * b[i];
  return CombineLanes(lanes);
}

void AxpyAvx2(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(double alpha, double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

double SquaredNormAvx2(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, v0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, v1));
  }
  if (i == n) return CombineAcc(acc0, acc1);
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  for (; i < n; ++i) lanes[i - n8] += x[i] * x[i];
  return CombineLanes(lanes);
}

double SquaredDistanceAvx2(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const std::size_t n8 = n & ~static_cast<std::size_t>(7);
  std::size_t i = 0;
  for (; i < n8; i += 8) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
  }
  if (i == n) return CombineAcc(acc0, acc1);
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    lanes[i - n8] += d * d;
  }
  return CombineLanes(lanes);
}

void GemvAvx2(const double* m, std::size_t rows, std::size_t cols,
              const double* x, double* out) {
  // Batched multi-dot: blocks of 4 rows share every load of x, turning
  // the per-row two-load dot into 8 row loads + 2 x loads per 8 columns.
  // Each row keeps its own (acc0, acc1) pair and combines exactly like
  // DotAvx2, so out[r] is bitwise dot(m + r*cols, x, cols).
  const std::size_t n8 = cols & ~static_cast<std::size_t>(7);
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* m0 = m + r * cols;
    const double* m1 = m0 + cols;
    const double* m2 = m1 + cols;
    const double* m3 = m2 + cols;
    __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
    __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
    __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
    __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i < n8; i += 8) {
      const __m256d x0 = _mm256_loadu_pd(x + i);
      const __m256d x1 = _mm256_loadu_pd(x + i + 4);
      a00 = _mm256_add_pd(a00, _mm256_mul_pd(_mm256_loadu_pd(m0 + i), x0));
      a01 = _mm256_add_pd(a01, _mm256_mul_pd(_mm256_loadu_pd(m0 + i + 4), x1));
      a10 = _mm256_add_pd(a10, _mm256_mul_pd(_mm256_loadu_pd(m1 + i), x0));
      a11 = _mm256_add_pd(a11, _mm256_mul_pd(_mm256_loadu_pd(m1 + i + 4), x1));
      a20 = _mm256_add_pd(a20, _mm256_mul_pd(_mm256_loadu_pd(m2 + i), x0));
      a21 = _mm256_add_pd(a21, _mm256_mul_pd(_mm256_loadu_pd(m2 + i + 4), x1));
      a30 = _mm256_add_pd(a30, _mm256_mul_pd(_mm256_loadu_pd(m3 + i), x0));
      a31 = _mm256_add_pd(a31, _mm256_mul_pd(_mm256_loadu_pd(m3 + i + 4), x1));
    }
    if (i == cols) {
      out[r] = CombineAcc(a00, a01);
      out[r + 1] = CombineAcc(a10, a11);
      out[r + 2] = CombineAcc(a20, a21);
      out[r + 3] = CombineAcc(a30, a31);
      continue;
    }
    const double* row_ptrs[4] = {m0, m1, m2, m3};
    const __m256d accs[4][2] = {
        {a00, a01}, {a10, a11}, {a20, a21}, {a30, a31}};
    for (std::size_t b = 0; b < 4; ++b) {
      alignas(32) double lanes[8];
      _mm256_store_pd(lanes, accs[b][0]);
      _mm256_store_pd(lanes + 4, accs[b][1]);
      for (std::size_t j = n8; j < cols; ++j) {
        lanes[j - n8] += row_ptrs[b][j] * x[j];
      }
      out[r + b] = CombineLanes(lanes);
    }
  }
  for (; r < rows; ++r) out[r] = DotAvx2(m + r * cols, x, cols);
}

void ReluAvx2(const double* x, double* y, std::size_t n) {
  // maxpd(x, 0) computes x > 0 ? x : 0 per lane, matching the scalar
  // selection (including -0.0 -> +0.0 and NaN -> +0.0... NaN compares
  // unordered so the second operand, +0.0, is returned).
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluBackwardAvx2(const double* pre, double* delta, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const std::size_t n4 = n & ~static_cast<std::size_t>(3);
  std::size_t i = 0;
  for (; i < n4; i += 4) {
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(pre + i), zero, _CMP_GT_OQ);
    _mm256_storeu_pd(delta + i,
                     _mm256_and_pd(_mm256_loadu_pd(delta + i), mask));
  }
  for (; i < n; ++i) delta[i] = pre[i] > 0.0 ? delta[i] : 0.0;
}

}  // namespace internal
}  // namespace pieck

#endif  // PIECK_HAVE_AVX2 && __AVX2__
