#include "tensor/math.h"

#include <algorithm>
#include <cmath>

namespace pieck {

double Sigmoid(double x) {
  if (x >= 0.0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double LogSigmoid(double x) {
  // log σ(x) = -log(1 + e^{-x}) = x - log(1 + e^{x}); pick the stable branch.
  if (x >= 0.0) {
    return -std::log1p(std::exp(-x));
  }
  return x - std::log1p(std::exp(x));
}

double Relu(double x) { return x > 0.0 ? x : 0.0; }

double ReluGrad(double x) { return x > 0.0 ? 1.0 : 0.0; }

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double BceLoss(double y, double p) {
  constexpr double kEps = 1e-12;
  p = Clamp(p, kEps, 1.0 - kEps);
  return -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
}

double BceLossFromLogit(double y, double s) {
  // -(y log σ(s) + (1-y) log σ(-s))
  return -(y * LogSigmoid(s) + (1.0 - y) * LogSigmoid(-s));
}

double BceGradFromLogit(double y, double s) { return Sigmoid(s) - y; }

}  // namespace pieck
