#include "core/simulation.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "defense/regularized_defense.h"

namespace pieck {

namespace {

/// Picks `count` distinct targets per the selection policy.
std::vector<int> SelectTargets(const ExperimentConfig& config,
                               const Dataset& train, Rng& rng) {
  if (config.target_selection == TargetSelection::kExplicit) {
    PIECK_CHECK(!config.explicit_targets.empty())
        << "kExplicit target selection needs explicit_targets";
    return config.explicit_targets;
  }
  std::vector<int> pool;
  if (config.target_selection == TargetSelection::kColdRandom) {
    // Colder half of the popularity ranking: random yet never an
    // already-popular item, matching the paper's "extremely cold target"
    // analysis (§V-A).
    std::vector<int> order = train.ItemsByPopularity();
    pool.assign(order.begin() + static_cast<ptrdiff_t>(order.size() / 2),
                order.end());
  } else {
    pool.resize(static_cast<size_t>(train.num_items()));
    for (int j = 0; j < train.num_items(); ++j) {
      pool[static_cast<size_t>(j)] = j;
    }
  }
  rng.Shuffle(pool);
  int count = std::min<int>(config.num_targets, static_cast<int>(pool.size()));
  pool.resize(static_cast<size_t>(std::max(count, 0)));
  return pool;
}

}  // namespace

StatusOr<std::unique_ptr<Simulation>> Simulation::Create(
    ExperimentConfig config) {
  config.ApplyModelDefaults();
  if (Status st = config.Validate(); !st.ok()) return st;

  auto sim = std::unique_ptr<Simulation>(new Simulation());
  sim->config_ = config;

  Rng master(config.seed);

  // Data.
  PIECK_ASSIGN_OR_RETURN(Dataset full, GenerateSynthetic(config.dataset));
  sim->full_ = std::make_unique<Dataset>(std::move(full));
  Rng split_rng = master.Fork();
  PIECK_ASSIGN_OR_RETURN(LeaveOneOutSplit split,
                         MakeLeaveOneOutSplit(*sim->full_, split_rng));
  sim->train_ = std::make_unique<Dataset>(std::move(split.train));
  sim->split_test_items_ = std::move(split.test_item);

  // Model + server.
  sim->model_ = MakeModel(config.model_kind, config.embedding_dim, config.ncf);
  Rng init_rng = master.Fork();
  GlobalModel global =
      sim->model_->InitGlobalModel(sim->train_->num_items(), init_rng);
  ServerConfig server_config;
  server_config.learning_rate = config.learning_rate;
  server_config.users_per_round = config.users_per_round;
  server_config.num_threads = config.num_threads;
  server_config.router_shards = config.router_shards;
  server_config.workload = config.workload;
  server_config.async.pipeline_depth = config.pipeline_depth;
  server_config.async.staleness_decay = config.staleness_decay;
  server_config.async.max_staleness = config.max_staleness;
  // The workload's private stream (rank permutation, churn roster)
  // folds in the experiment seed without consuming a master fork — the
  // trivial workload draws nothing from it, so every pre-workload
  // golden digest is preserved.
  server_config.workload.seed ^= config.seed;
  DefensePlan plan = MakeDefensePlan(config.defense, config.aggregator_params);
  sim->server_ = std::make_unique<FederatedServer>(
      *sim->model_, std::move(global), server_config,
      std::move(plan.aggregator), std::move(plan.filter));

  // Targets.
  Rng target_rng = master.Fork();
  sim->targets_ = SelectTargets(config, *sim->train_, target_rng);

  // Benign population: one store row per user instead of one object per
  // user. The per-user RNG keys are forked from the master stream in
  // user order — the exact seeds the former per-user client objects
  // received — so every user's private stream (embedding init + batch
  // draws) is reproduction-identical to the object path.
  const double client_lr_base = config.client_learning_rate >= 0.0
                                    ? config.client_learning_rate
                                    : config.learning_rate;
  std::shared_ptr<const PopularityTable> popularity;
  if (config.negative_popularity_alpha > 0.0) {
    popularity = PopularityTable::Build(*sim->train_,
                                        config.negative_popularity_alpha);
  }
  // One immutable sampler shared by every client; per-call randomness
  // comes from each user's own stream.
  sim->sampler_ = std::make_shared<const NegativeSampler>(
      config.negative_ratio_q, std::move(popularity));
  sim->store_ = std::make_unique<ClientStateStore>(
      *sim->model_, *sim->train_, sim->sampler_, config.loss, client_lr_base,
      config.storage);

  const int num_users = sim->train_->num_users();
  Rng lr_rng = master.Fork();
  std::vector<double> user_lrs;
  if (config.client_lr_dynamic) {
    // Log-uniform draw in [dynamic_min, base] per user (Table X
    // scenario 2), drawn eagerly in user order to keep the lr stream
    // identical to the object path.
    user_lrs.resize(static_cast<size_t>(num_users));
    const double lo = std::log(config.client_lr_dynamic_min);
    const double hi =
        std::log(std::max(client_lr_base, config.client_lr_dynamic_min));
    for (int u = 0; u < num_users; ++u) {
      user_lrs[static_cast<size_t>(u)] = std::exp(lr_rng.Uniform(lo, hi));
    }
  }
  std::vector<uint64_t> seeds(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    seeds[static_cast<size_t>(u)] = master.ForkSeed();
  }
  sim->store_->set_user_seeds(std::move(seeds));
  if (!user_lrs.empty()) {
    sim->store_->set_user_learning_rates(std::move(user_lrs));
  }
  if (DefenseUsesClientRegularizers(config.defense)) {
    DefenseOptions options = config.defense_options;
    sim->store_->set_defense_factory(
        [options] { return MakeRegularizedDefense(options); });
  }

  // Malicious clients: p̃ = mal / (benign + mal)  =>  mal = benign·p̃/(1−p̃).
  if (config.attack != AttackKind::kNone && config.malicious_fraction > 0.0 &&
      !sim->targets_.empty()) {
    double p = config.malicious_fraction;
    int n_mal = static_cast<int>(std::llround(
        static_cast<double>(num_users) * p / (1.0 - p)));
    n_mal = std::max(n_mal, 1);
    sim->num_malicious_ = n_mal;

    AttackConfig attack_config = config.attack_config;
    attack_config.target_items = sim->targets_;
    attack_config.server_learning_rate = config.learning_rate;
    for (int i = 0; i < n_mal; ++i) {
      Rng attack_rng = master.Fork();
      auto attack = MakeAttack(config.attack, *sim->model_, attack_config,
                               sim->train_.get(), attack_rng.engine()());
      PIECK_CHECK(attack != nullptr);
      sim->malicious_.push_back(std::make_unique<MaliciousClient>(
          std::move(attack), master.Fork()));
    }
  }

  for (auto& client : sim->malicious_) {
    sim->malicious_ptrs_.push_back(client.get());
  }
  sim->round_rng_ = master.Fork();
  return sim;
}

RoundStats Simulation::RunRound() {
  RoundStats stats =
      server_->RunRound(*store_, malicious_ptrs_, rounds_run_, round_rng_);
  ++rounds_run_;
  return stats;
}

void Simulation::RunRounds(int n, std::vector<RoundStats>* stats) {
  server_->RunRounds(*store_, malicious_ptrs_, rounds_run_, n, round_rng_,
                     stats);
  rounds_run_ += n;
}

double Simulation::EvaluateEr(int k) const {
  return ExposureRatioAtK(*model_, server_->global(), benign_eval_view(),
                          *train_, targets_, k, eval_pool());
}

double Simulation::EvaluateHr(int k) const {
  return HitRatioAtK(*model_, server_->global(), benign_eval_view(), *train_,
                     split_test_items_, k, config_.hr_num_negatives,
                     config_.seed ^ 0x9e3779b97f4a7c15ULL, eval_pool());
}

StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  PIECK_ASSIGN_OR_RETURN(std::unique_ptr<Simulation> sim,
                         Simulation::Create(config));

  ExperimentResult result;
  result.target_items = sim->targets();

  // Rounds run in blocks between evaluation points so the bounded-
  // staleness engine can keep its pipeline full inside a block; a
  // boundary drains it (depth 1 degenerates to the old per-round loop).
  auto start = std::chrono::steady_clock::now();
  std::vector<RoundStats> round_stats;
  int r = 0;
  while (r < config.rounds) {
    int block = config.rounds - r;
    if (config.eval_every > 0) {
      block = std::min(block, config.eval_every - (r % config.eval_every));
    }
    round_stats.clear();
    sim->RunRounds(block, &round_stats);
    r += block;
    const bool last = r == config.rounds;
    for (const RoundStats& stats : round_stats) {
      result.dropped_stale += stats.dropped_stale;
      result.max_staleness =
          std::max(result.max_staleness, stats.max_staleness);
    }
    if (last && !round_stats.empty()) {
      const RoundStats& stats = round_stats.back();
      result.store_footprint_bytes = stats.store_footprint_bytes;
      result.scratch_bytes_in_use = stats.scratch_bytes_in_use;
      result.uploads_built = stats.uploads_built;
      result.select_ms = stats.select_ms;
      result.train_ms = stats.train_ms;
      result.route_ms = stats.route_ms;
      result.apply_ms = stats.apply_ms;
      result.interaction_ms = stats.interaction_ms;
      result.router_shards = stats.router_shards;
      result.pipeline_depth = stats.pipeline_depth;
      result.stall_ms = stats.stall_ms;
      result.mean_staleness = stats.mean_staleness;
    }
    if ((config.eval_every > 0 && r % config.eval_every == 0) || last) {
      double er = sim->EvaluateEr(config.top_k);
      double hr = sim->EvaluateHr(config.top_k);
      result.er_history.push_back({r, er});
      result.hr_history.push_back({r, hr});
      if (last) {
        result.er_at_k = er;
        result.hr_at_k = hr;
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  result.rounds_run = config.rounds;
  result.seconds_per_round =
      std::chrono::duration<double>(end - start).count() /
      std::max(1, config.rounds);
  return result;
}

}  // namespace pieck
