#include "core/simulation.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"

namespace pieck {

void ExperimentConfig::ApplyModelDefaults() {
  if (model_kind == ModelKind::kNeuralCf && learning_rate == 1.0) {
    learning_rate = 0.005;  // the paper's DL-FRS rate
  }
}

namespace {

/// Picks `count` distinct targets per the selection policy.
std::vector<int> SelectTargets(const ExperimentConfig& config,
                               const Dataset& train, Rng& rng) {
  if (config.target_selection == TargetSelection::kExplicit) {
    PIECK_CHECK(!config.explicit_targets.empty())
        << "kExplicit target selection needs explicit_targets";
    return config.explicit_targets;
  }
  std::vector<int> pool;
  if (config.target_selection == TargetSelection::kColdRandom) {
    // Colder half of the popularity ranking: random yet never an
    // already-popular item, matching the paper's "extremely cold target"
    // analysis (§V-A).
    std::vector<int> order = train.ItemsByPopularity();
    pool.assign(order.begin() + static_cast<ptrdiff_t>(order.size() / 2),
                order.end());
  } else {
    pool.resize(static_cast<size_t>(train.num_items()));
    for (int j = 0; j < train.num_items(); ++j) pool[static_cast<size_t>(j)] = j;
  }
  rng.Shuffle(pool);
  int count = std::min<int>(config.num_targets, static_cast<int>(pool.size()));
  pool.resize(static_cast<size_t>(std::max(count, 0)));
  return pool;
}

}  // namespace

StatusOr<std::unique_ptr<Simulation>> Simulation::Create(
    ExperimentConfig config) {
  config.ApplyModelDefaults();

  auto sim = std::unique_ptr<Simulation>(new Simulation());
  sim->config_ = config;

  Rng master(config.seed);

  // Data.
  PIECK_ASSIGN_OR_RETURN(Dataset full, GenerateSynthetic(config.dataset));
  sim->full_ = std::make_unique<Dataset>(std::move(full));
  Rng split_rng = master.Fork();
  PIECK_ASSIGN_OR_RETURN(LeaveOneOutSplit split,
                         MakeLeaveOneOutSplit(*sim->full_, split_rng));
  sim->train_ = std::make_unique<Dataset>(std::move(split.train));
  sim->split_test_items_ = std::move(split.test_item);

  // Model + server.
  sim->model_ = MakeModel(config.model_kind, config.embedding_dim, config.ncf);
  Rng init_rng = master.Fork();
  GlobalModel global =
      sim->model_->InitGlobalModel(sim->train_->num_items(), init_rng);
  ServerConfig server_config;
  server_config.learning_rate = config.learning_rate;
  server_config.users_per_round = config.users_per_round;
  server_config.num_threads = config.num_threads;
  DefensePlan plan = MakeDefensePlan(config.defense, config.aggregator_params);
  sim->server_ = std::make_unique<FederatedServer>(
      *sim->model_, std::move(global), server_config,
      std::move(plan.aggregator), std::move(plan.filter));

  // Targets.
  Rng target_rng = master.Fork();
  sim->targets_ = SelectTargets(config, *sim->train_, target_rng);

  // Benign clients: one per user.
  const double client_lr_base = config.client_learning_rate >= 0.0
                                    ? config.client_learning_rate
                                    : config.learning_rate;
  const bool with_defense = DefenseUsesClientRegularizers(config.defense);
  NegativeSampler sampler(config.negative_ratio_q);
  Rng lr_rng = master.Fork();
  for (int u = 0; u < sim->train_->num_users(); ++u) {
    std::unique_ptr<ClientDefense> defense;
    if (with_defense) {
      defense = MakeRegularizedDefense(config.defense_options);
    }
    double client_lr = client_lr_base;
    if (config.client_lr_dynamic) {
      // Log-uniform draw in [dynamic_min, base] (Table X scenario 2).
      double lo = std::log(config.client_lr_dynamic_min);
      double hi = std::log(std::max(client_lr_base,
                                    config.client_lr_dynamic_min));
      client_lr = std::exp(lr_rng.Uniform(lo, hi));
    }
    auto client = std::make_unique<BenignClient>(
        u, *sim->model_, *sim->train_, sampler, config.loss, client_lr,
        master.Fork(), std::move(defense));
    sim->benign_views_.push_back(client.get());
    sim->clients_.push_back(std::move(client));
  }

  // Malicious clients: p̃ = mal / (benign + mal)  =>  mal = benign·p̃/(1−p̃).
  if (config.attack != AttackKind::kNone && config.malicious_fraction > 0.0 &&
      !sim->targets_.empty()) {
    double p = config.malicious_fraction;
    if (p >= 1.0) {
      return Status::InvalidArgument("malicious_fraction must be < 1");
    }
    int n_mal = static_cast<int>(std::llround(
        static_cast<double>(sim->train_->num_users()) * p / (1.0 - p)));
    n_mal = std::max(n_mal, 1);
    sim->num_malicious_ = n_mal;

    AttackConfig attack_config = config.attack_config;
    attack_config.target_items = sim->targets_;
    attack_config.server_learning_rate = config.learning_rate;
    for (int i = 0; i < n_mal; ++i) {
      Rng attack_rng = master.Fork();
      auto attack = MakeAttack(config.attack, *sim->model_, attack_config,
                               sim->train_.get(), attack_rng.engine()());
      PIECK_CHECK(attack != nullptr);
      sim->clients_.push_back(std::make_unique<MaliciousClient>(
          std::move(attack), master.Fork()));
    }
  }

  for (auto& client : sim->clients_) {
    sim->client_ptrs_.push_back(client.get());
  }
  sim->round_rng_ = master.Fork();
  return sim;
}

RoundStats Simulation::RunRound() {
  RoundStats stats = server_->RunRound(client_ptrs_, rounds_run_, round_rng_);
  ++rounds_run_;
  return stats;
}

void Simulation::RunRounds(int n) {
  for (int i = 0; i < n; ++i) RunRound();
}

double Simulation::EvaluateEr(int k) const {
  return ExposureRatioAtK(*model_, server_->global(), benign_views_, *train_,
                          targets_, k, eval_pool());
}

double Simulation::EvaluateHr(int k) const {
  return HitRatioAtK(*model_, server_->global(), benign_views_, *train_,
                     split_test_items_, k, config_.hr_num_negatives,
                     config_.seed ^ 0x9e3779b97f4a7c15ULL, eval_pool());
}

StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  PIECK_ASSIGN_OR_RETURN(std::unique_ptr<Simulation> sim,
                         Simulation::Create(config));

  ExperimentResult result;
  result.target_items = sim->targets();

  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < config.rounds; ++r) {
    sim->RunRound();
    const bool last = r + 1 == config.rounds;
    if ((config.eval_every > 0 && (r + 1) % config.eval_every == 0) || last) {
      double er = sim->EvaluateEr(config.top_k);
      double hr = sim->EvaluateHr(config.top_k);
      result.er_history.push_back({r + 1, er});
      result.hr_history.push_back({r + 1, hr});
      if (last) {
        result.er_at_k = er;
        result.hr_at_k = hr;
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  result.rounds_run = config.rounds;
  result.seconds_per_round =
      std::chrono::duration<double>(end - start).count() /
      std::max(1, config.rounds);
  return result;
}

}  // namespace pieck
