#include "core/report.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace pieck {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PIECK_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      os << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  os << StrJoin(headers_, ",") << "\n";
  for (const auto& row : rows_) os << StrJoin(row, ",") << "\n";
  return os.str();
}

}  // namespace pieck
