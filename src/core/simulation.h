#ifndef PIECK_CORE_SIMULATION_H_
#define PIECK_CORE_SIMULATION_H_

#include <memory>
#include <vector>

#include "core/experiment_config.h"
#include "data/split.h"
#include "fed/client_state_store.h"
#include "fed/server.h"
#include "metrics/evaluation.h"

namespace pieck {

/// One fully wired federated attack/defense simulation: dataset, split,
/// model, server, the virtualized benign population, and injected
/// malicious clients.
///
/// Benign users are not objects: their state lives in a struct-of-arrays
/// `ClientStateStore` (one embedding row, one 8-byte RNG key, one CSR
/// interaction span per user; engines and client-defense observers
/// materialize lazily on first participation), and their behavior runs
/// through the stateless `BenignClientLogic` executor. Malicious clients
/// remain objects behind `ClientInterface`. The store path is
/// bit-identical to the former one-object-per-user path for every
/// thread count (tests/client_state_store_test.cc).
///
/// `Simulation` exposes round-level control so that benchmarks can
/// interleave training with measurements (Δ-Norm tracking for Fig. 4,
/// convergence curves for Fig. 6a, PKL/UCR probes for Table II);
/// `RunExperiment` below is the one-call wrapper used everywhere else.
class Simulation {
 public:
  /// Builds the simulation: validates `config`, generates the synthetic
  /// dataset, splits it leave-one-out, initializes the global model,
  /// builds the benign-population store (with client-side defense when
  /// configured) and p̃/(1−p̃)·|users| malicious clients running the
  /// configured attack.
  static StatusOr<std::unique_ptr<Simulation>> Create(ExperimentConfig config);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs one communication round; returns its stats.
  RoundStats RunRound();

  /// Runs `n` rounds back to back through the server's block engine:
  /// with `pipeline_depth` > 1 the rounds overlap under bounded
  /// staleness; depth 1 is a plain RunRound loop, bit-identical. Appends
  /// one RoundStats per round to `*stats` when non-null.
  void RunRounds(int n, std::vector<RoundStats>* stats = nullptr);

  /// ER@k over the configured targets (Eq. 3).
  double EvaluateEr(int k) const;

  /// HR@k with the NCF sampled-negative protocol.
  double EvaluateHr(int k) const;

  const ExperimentConfig& config() const { return config_; }
  const Dataset& full_data() const { return *full_; }
  const Dataset& train() const { return *train_; }
  const std::vector<int>& test_items() const { return split_test_items_; }
  const GlobalModel& global() const { return server_->global(); }
  const RecModel& model() const { return *model_; }
  const std::vector<int>& targets() const { return targets_; }
  int rounds_run() const { return rounds_run_; }
  int num_malicious() const { return num_malicious_; }

  /// The struct-of-arrays benign population.
  const ClientStateStore& store() const { return *store_; }
  ClientStateStore& mutable_store() { return *store_; }

  /// Evaluation view over every benign user (forces any pending lazy
  /// embedding initialization, fanned over the server pool).
  BenignEvalView benign_eval_view() const {
    return store_->EvalView(eval_pool());
  }

  /// Mutable access for white-box experiments (e.g. cost probes).
  FederatedServer& server() { return *server_; }

  /// The server's worker pool, reused by the evaluation layer between
  /// rounds (nullptr when the simulation runs serially). Benchmarks that
  /// call the metrics directly pass this through.
  ThreadPool* eval_pool() const { return server_->pool(); }

 private:
  Simulation() = default;

  ExperimentConfig config_;
  std::unique_ptr<Dataset> full_;
  std::unique_ptr<Dataset> train_;
  std::vector<int> split_test_items_;
  std::unique_ptr<RecModel> model_;
  std::unique_ptr<FederatedServer> server_;
  std::shared_ptr<const NegativeSampler> sampler_;
  std::unique_ptr<ClientStateStore> store_;
  std::vector<std::unique_ptr<ClientInterface>> malicious_;
  std::vector<ClientInterface*> malicious_ptrs_;
  std::vector<int> targets_;
  Rng round_rng_{0};
  int rounds_run_ = 0;
  int num_malicious_ = 0;
};

/// Runs `config` to completion and reports the summary metrics. Wall
/// time per round is measured over the whole run.
StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace pieck

#endif  // PIECK_CORE_SIMULATION_H_
