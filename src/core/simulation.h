#ifndef PIECK_CORE_SIMULATION_H_
#define PIECK_CORE_SIMULATION_H_

#include <memory>
#include <vector>

#include "core/experiment_config.h"
#include "data/split.h"
#include "fed/server.h"
#include "metrics/evaluation.h"

namespace pieck {

/// One fully wired federated attack/defense simulation: dataset, split,
/// model, server, benign clients, and injected malicious clients.
///
/// `Simulation` exposes round-level control so that benchmarks can
/// interleave training with measurements (Δ-Norm tracking for Fig. 4,
/// convergence curves for Fig. 6a, PKL/UCR probes for Table II);
/// `RunExperiment` below is the one-call wrapper used everywhere else.
class Simulation {
 public:
  /// Builds the simulation: generates the synthetic dataset, splits it
  /// leave-one-out, initializes the global model, constructs one benign
  /// client per user (with client-side defense when configured) and
  /// p̃/(1−p̃)·|users| malicious clients running the configured attack.
  static StatusOr<std::unique_ptr<Simulation>> Create(ExperimentConfig config);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs one communication round; returns its stats.
  RoundStats RunRound();

  /// Runs `n` rounds back to back.
  void RunRounds(int n);

  /// ER@k over the configured targets (Eq. 3).
  double EvaluateEr(int k) const;

  /// HR@k with the NCF sampled-negative protocol.
  double EvaluateHr(int k) const;

  const ExperimentConfig& config() const { return config_; }
  const Dataset& full_data() const { return *full_; }
  const Dataset& train() const { return *train_; }
  const std::vector<int>& test_items() const { return split_test_items_; }
  const GlobalModel& global() const { return server_->global(); }
  const RecModel& model() const { return *model_; }
  const std::vector<int>& targets() const { return targets_; }
  int rounds_run() const { return rounds_run_; }
  int num_malicious() const { return num_malicious_; }

  /// Benign clients as evaluation views.
  const std::vector<const BenignClient*>& benign_views() const {
    return benign_views_;
  }

  /// Mutable access for white-box experiments (e.g. cost probes).
  FederatedServer& server() { return *server_; }

  /// The server's worker pool, reused by the evaluation layer between
  /// rounds (nullptr when the simulation runs serially). Benchmarks that
  /// call the metrics directly pass this through.
  ThreadPool* eval_pool() const { return server_->pool(); }

 private:
  Simulation() = default;

  ExperimentConfig config_;
  std::unique_ptr<Dataset> full_;
  std::unique_ptr<Dataset> train_;
  std::vector<int> split_test_items_;
  std::unique_ptr<RecModel> model_;
  std::unique_ptr<FederatedServer> server_;
  std::vector<std::unique_ptr<ClientInterface>> clients_;
  std::vector<ClientInterface*> client_ptrs_;
  std::vector<const BenignClient*> benign_views_;
  std::vector<int> targets_;
  Rng round_rng_{0};
  int rounds_run_ = 0;
  int num_malicious_ = 0;
};

/// Runs `config` to completion and reports the summary metrics. Wall
/// time per round is measured over the whole run.
StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace pieck

#endif  // PIECK_CORE_SIMULATION_H_
