#include "core/experiment_config.h"

#include <sstream>

namespace pieck {

void ExperimentConfig::ApplyModelDefaults() {
  if (model_kind == ModelKind::kNeuralCf && learning_rate == 1.0) {
    learning_rate = 0.005;  // the paper's DL-FRS rate
  }
}

namespace {

Status Invalid(const std::string& message) {
  return Status::InvalidArgument("ExperimentConfig: " + message);
}

}  // namespace

Status ExperimentConfig::Validate() const {
  if (dataset.num_users <= 0 || dataset.num_items <= 0) {
    return Invalid("dataset needs positive user and item counts");
  }
  if (embedding_dim <= 0) {
    return Invalid("embedding_dim must be positive");
  }
  if (rounds < 0) {
    // 0 is allowed: benches and tests build a simulation and drive
    // RunRound themselves.
    return Invalid("rounds must be >= 0");
  }
  if (learning_rate <= 0.0) {
    return Invalid("learning_rate must be positive");
  }
  if (client_learning_rate == 0.0) {
    return Invalid(
        "client_learning_rate must be positive (or negative for "
        "\"same as server\")");
  }
  if (client_lr_dynamic && client_lr_dynamic_min <= 0.0) {
    return Invalid("client_lr_dynamic_min must be positive");
  }
  if (users_per_round <= 0) {
    return Invalid("users_per_round must be positive");
  }
  if (users_per_round > dataset.num_users) {
    std::ostringstream os;
    os << "users_per_round (" << users_per_round
       << ") exceeds the user population (" << dataset.num_users << ")";
    return Invalid(os.str());
  }
  if (negative_ratio_q < 0.0) {
    return Invalid("negative_ratio_q must be >= 0");
  }
  if (negative_popularity_alpha < 0.0) {
    return Invalid("negative_popularity_alpha must be >= 0");
  }
  if (num_threads < 0) {
    return Invalid("num_threads must be >= 0 (0 = hardware threads)");
  }
  if (router_shards < 0) {
    return Invalid(
        "router_shards must be >= 0 (0 = derived from the worker pool)");
  }
  if (Status st = workload.Validate(); !st.ok()) {
    return Invalid(st.message());
  }
  if (pipeline_depth < 1) {
    return Invalid("pipeline_depth must be >= 1 (1 = synchronous engine)");
  }
  if (staleness_decay <= 0.0 || staleness_decay > 1.0) {
    return Invalid("staleness_decay must lie in (0, 1]");
  }
  if (max_staleness < -1) {
    return Invalid("max_staleness must be -1 (never drop) or >= 0");
  }
  if (malicious_fraction < 0.0 || malicious_fraction >= 1.0) {
    return Invalid("malicious_fraction must lie in [0, 1)");
  }
  if (num_targets <= 0) {
    return Invalid("num_targets must be positive");
  }
  if (target_selection == TargetSelection::kExplicit) {
    if (explicit_targets.empty()) {
      return Invalid("kExplicit target selection needs explicit_targets");
    }
    for (int t : explicit_targets) {
      if (t < 0 || t >= dataset.num_items) {
        std::ostringstream os;
        os << "explicit target " << t << " outside the item range [0, "
           << dataset.num_items << ")";
        return Invalid(os.str());
      }
    }
  }
  if (top_k <= 0) {
    return Invalid("top_k must be positive");
  }
  if (eval_every < 0) {
    return Invalid("eval_every must be >= 0 (0 = final evaluation only)");
  }
  if (hr_num_negatives <= 0) {
    return Invalid("hr_num_negatives must be positive");
  }
  if (Status st = storage.Validate(); !st.ok()) {
    return st;
  }
  return Status::OK();
}

}  // namespace pieck
