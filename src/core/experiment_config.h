#ifndef PIECK_CORE_EXPERIMENT_CONFIG_H_
#define PIECK_CORE_EXPERIMENT_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "common/status.h"
#include "data/synthetic.h"
#include "defense/defense.h"
#include "model/losses.h"
#include "model/rec_model.h"
#include "storage/storage.h"
#include "workload/workload.h"

namespace pieck {

/// How the runner picks the attacker's target items when none are given
/// explicitly. The paper selects targets at random among recommendable
/// items; picking from the cold half avoids accidentally drawing an
/// already-popular item (which would inflate the NoAttack baseline).
enum class TargetSelection {
  kColdRandom,  // uniform over the colder half of the popularity ranking
  kUniform,     // uniform over all items
  kExplicit,    // use ExperimentConfig::explicit_targets
};

/// Full description of one federated attack/defense simulation. Every
/// bench binary builds one (or a sweep) of these and hands it to
/// Simulation / RunExperiment.
struct ExperimentConfig {
  // --- data ---
  SyntheticConfig dataset = MovieLens100KConfig(0.3);

  // --- model ---
  ModelKind model_kind = ModelKind::kMatrixFactorization;
  int embedding_dim = 16;
  NcfOptions ncf;

  // --- federated training (§III-A, §VII-A2) ---
  int rounds = 200;
  /// Server rate η; the paper uses 1.0 for MF-FRS and 0.005 for DL-FRS.
  double learning_rate = 1.0;
  /// Client-local rate for the personalized embedding; < 0 means "same
  /// as the server rate" (supplementary Table X studies mismatches).
  double client_learning_rate = -1.0;
  /// Table X row 3: each client draws its own rate log-uniformly from
  /// [client_lr_dynamic_min, client_learning_rate or learning_rate].
  bool client_lr_dynamic = false;
  double client_lr_dynamic_min = 0.01;
  int users_per_round = 256;
  double negative_ratio_q = 1.0;
  /// Popularity skew of the shared negative-sampling table: negatives
  /// are drawn ∝ popularity^alpha. 0 (the paper's protocol) keeps
  /// uniform draws and builds no table. One immutable table per
  /// simulation is shared by every client.
  double negative_popularity_alpha = 0.0;
  LossKind loss = LossKind::kBce;
  /// Round-loop worker threads (see ServerConfig::num_threads): 1 =
  /// serial, 0 = one per hardware thread. Bit-identical results for any
  /// value.
  int num_threads = 1;
  /// Item shards for the server's update-routing/apply stages (see
  /// ServerConfig::router_shards): 0 = derived from the worker pool,
  /// explicit values clamped to the item count. Bit-identical results
  /// for any value — sharding only partitions work.
  int router_shards = 0;
  /// Traffic shape of participant selection: uniform/Zipf/exponential
  /// participation, diurnal arrival waves, user churn (see
  /// workload/workload.h). The default (trivial) workload reproduces
  /// the paper's uniform sampling bit-for-bit; the simulation folds
  /// `seed` into the workload's private stream.
  WorkloadConfig workload;
  /// Bounded-staleness round pipelining (see AsyncConfig in
  /// fed/server.h): rounds kept in flight, the staleness weight decay,
  /// and the drop threshold. The defaults (1, 1.0, -1) are the
  /// synchronous engine, bit for bit.
  int pipeline_depth = 1;
  double staleness_decay = 1.0;
  int max_staleness = -1;
  /// Backing tier of the benign population's embedding table and CSR
  /// (see docs/STORAGE.md): RAM (the default, bit for bit the previous
  /// behavior) or an mmap'd store directory with a hot-row cache.
  /// Storage choice never changes results, only the memory footprint.
  StorageConfig storage;

  // --- attack ---
  AttackKind attack = AttackKind::kNone;
  /// p̃ = |Ũ| / |U| (malicious over all users).
  double malicious_fraction = 0.05;
  int num_targets = 1;
  TargetSelection target_selection = TargetSelection::kColdRandom;
  std::vector<int> explicit_targets;
  AttackConfig attack_config;  // targets + η are filled in by the runner

  // --- defense ---
  DefenseKind defense = DefenseKind::kNoDefense;
  AggregatorParams aggregator_params;
  DefenseOptions defense_options;

  // --- evaluation ---
  int top_k = 10;
  /// Evaluate ER/HR every this many rounds (0 = final evaluation only).
  int eval_every = 0;
  int hr_num_negatives = 99;

  uint64_t seed = 1234;

  /// Applies the paper's per-model defaults (η = 1.0 for MF, 0.005 for
  /// DL) unless the caller already set a custom rate.
  void ApplyModelDefaults();

  /// Rejects inconsistent configurations up front: non-positive
  /// dimensions/rounds/rates, `malicious_fraction` outside [0, 1),
  /// `users_per_round` exceeding the dataset's user population, explicit
  /// targets out of item range, and kin. `Simulation::Create` calls this
  /// before building anything, replacing the former late (or silent)
  /// failures deep inside the round loop.
  Status Validate() const;
};

/// Summary of one finished simulation.
struct ExperimentResult {
  double er_at_k = 0.0;
  double hr_at_k = 0.0;
  std::vector<int> target_items;
  /// (round, metric) samples when eval_every > 0; always includes the
  /// final round.
  std::vector<std::pair<int, double>> er_history;
  std::vector<std::pair<int, double>> hr_history;
  double seconds_per_round = 0.0;
  int rounds_run = 0;

  // Client-side cost telemetry sampled from the final round (see
  // RoundStats): resident bytes of the benign-population store, of the
  // reusable round arenas, and the uploads built per round.
  int64_t store_footprint_bytes = 0;
  int64_t scratch_bytes_in_use = 0;
  int uploads_built = 0;

  // Per-stage wall time of the final round, milliseconds (see
  // RoundStats): Select → Train → Route → Apply → Interaction.
  double select_ms = 0.0;
  double train_ms = 0.0;
  double route_ms = 0.0;
  double apply_ms = 0.0;
  double interaction_ms = 0.0;
  /// Item shards the final round's routing/apply stages ran with.
  int router_shards = 0;

  // Bounded-staleness telemetry (see RoundStats): the pipeline depth
  // the run executed with, the final round's snapshot-wait time, the
  // mean staleness of the final round's applied uploads, and the
  // max staleness / dropped-upload total over the whole run.
  int pipeline_depth = 1;
  double stall_ms = 0.0;
  double mean_staleness = 0.0;
  int max_staleness = 0;
  int64_t dropped_stale = 0;
};

}  // namespace pieck

#endif  // PIECK_CORE_EXPERIMENT_CONFIG_H_
