#ifndef PIECK_CORE_REPORT_H_
#define PIECK_CORE_REPORT_H_

#include <string>
#include <vector>

namespace pieck {

/// Plain-text aligned table used by the benchmark harness to print the
/// paper's tables. Cells are strings; columns auto-size.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header separator row.
  std::string ToString() const;

  /// Renders as CSV (for plotting figure data).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pieck

#endif  // PIECK_CORE_REPORT_H_
