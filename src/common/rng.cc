#include "common/rng.h"

#include <unordered_map>

#include <numeric>

#include "common/logging.h"

namespace pieck {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PIECK_CHECK(lo <= hi) << "UniformInt range is empty: [" << lo << ", " << hi
                        << "]";
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  PIECK_CHECK(n >= 0 && k >= 0);
  if (k > n) k = n;
  // Partial Fisher-Yates. Both branches consume the identical
  // UniformInt(i, n-1) draw stream and emit identical outputs; the
  // sparse branch just tracks the O(k) displaced entries in a hash map
  // instead of materializing the O(n) index vector, which is what makes
  // selection over 100M-user populations O(cohort) instead of O(n).
  if (n > 4096 && k < n / 2) {
    std::vector<int> out(static_cast<size_t>(k));
    std::unordered_map<int, int> displaced;
    displaced.reserve(static_cast<size_t>(2 * k));
    for (int i = 0; i < k; ++i) {
      const int j = static_cast<int>(UniformInt(i, n - 1));
      const auto at = [&displaced](int pos) {
        const auto it = displaced.find(pos);
        return it != displaced.end() ? it->second : pos;
      };
      out[static_cast<size_t>(i)] = at(j);
      // swap(idx[i], idx[j]): position i is never read again, so only
      // idx[j] = old idx[i] needs recording.
      displaced[j] = at(i);
    }
    return out;
  }
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    PIECK_CHECK(w >= 0.0) << "negative weight in SampleDiscrete";
    total += w;
  }
  if (total <= 0.0) return -1;
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() {
  // Derive a child seed from the parent stream.
  return Rng(ForkSeed());
}

}  // namespace pieck
