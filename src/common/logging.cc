#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pieck {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace pieck
