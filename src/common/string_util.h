#ifndef PIECK_COMMON_STRING_UTIL_H_
#define PIECK_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace pieck {

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Splits `s` on the character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Formats a double with fixed `precision` decimal places.
std::string FormatDouble(double value, int precision = 2);

/// Formats a fraction as a percentage string, e.g. 0.9339 -> "93.39".
std::string FormatPercent(double fraction, int precision = 2);

}  // namespace pieck

#endif  // PIECK_COMMON_STRING_UTIL_H_
