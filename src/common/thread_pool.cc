#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"

namespace pieck {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Drain: workers only exit once the queue is empty, so every task
    // submitted before destruction still runs.
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PIECK_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    PIECK_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
    ++inflight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return inflight_ == 0; });
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || num_threads() == 1) {
    // Inline fast path: no queue round-trip, exceptions propagate
    // directly.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t chunks = std::min(n, static_cast<size_t>(num_threads()));
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&next, &fn, n] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  // Blocks until the chunk tasks finish, so `next` and `fn` (stack
  // references) outlive every worker that touches them.
  Wait();
}

void ThreadPool::ParallelForSlots(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || num_threads() == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t chunks = std::min(n, static_cast<size_t>(num_threads()));
  for (size_t c = 0; c < chunks; ++c) {
    // One chunk task per slot: a slot's scratch is only ever touched by
    // the single task that owns it for the duration of this call.
    Submit([&next, &fn, n, c] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(c, i);
      }
    });
  }
  Wait();
}

int ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::ParallelForOrSerial(ThreadPool* pool, size_t n,
                                     const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

void ThreadPool::ParallelForOrSerialSlots(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t, size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelForSlots(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(0, i);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --inflight_;
      if (inflight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace pieck
