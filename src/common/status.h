#ifndef PIECK_COMMON_STATUS_H_
#define PIECK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pieck {

/// Error codes used throughout the library. Modeled after the
/// RocksDB/Arrow status idiom: the library does not use exceptions, all
/// fallible operations return a `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy in the OK case
/// (no allocation); the error case carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status from the current function.
#define PIECK_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::pieck::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace pieck

#endif  // PIECK_COMMON_STATUS_H_
