#include "common/string_util.h"

#include <cstdio>

namespace pieck {

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision);
}

}  // namespace pieck
