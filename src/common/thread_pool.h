#ifndef PIECK_COMMON_THREAD_POOL_H_
#define PIECK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pieck {

/// A fixed-size pool of worker threads over a single shared FIFO queue.
///
/// Deliberately simple (no work stealing, no futures): the federated
/// round loop needs fork-join parallelism over a few hundred uniform
/// client tasks, where one queue with a condition variable is enough and
/// keeps the scheduling easy to reason about. Tasks must not submit new
/// tasks into the pool they run on (the round loop never does).
///
/// Exceptions thrown by tasks are captured; the first one is rethrown
/// from the next Wait() or ParallelFor() call on the submitting thread.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Drains the queue (pending tasks still run), then joins the workers.
  /// Task exceptions that were never observed via Wait() are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void Wait();

  /// Runs fn(0) ... fn(n-1) across the pool and blocks until all are
  /// done. Indices are claimed dynamically from an atomic counter, so
  /// the assignment of index to worker is nondeterministic — callers
  /// must only write to disjoint, per-index state.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but hands each invocation a stable scratch slot
  /// id in [0, max_slots()): every slot is used by at most one task
  /// chain at a time, so fn may freely mutate slot-indexed scratch
  /// (arenas, buffers) without locking. Which indices land on which
  /// slot is nondeterministic — scratch contents must never influence
  /// results, only their allocation.
  void ParallelForSlots(size_t n,
                        const std::function<void(size_t, size_t)>& fn);

  /// Upper bound on the slot ids ParallelForSlots passes to fn.
  size_t max_slots() const { return workers_.size(); }

  /// max(1, std::thread::hardware_concurrency()).
  static int DefaultThreadCount();

  /// Runs fn(0..n-1) on `pool`, or inline on the calling thread when
  /// `pool` is null. The shared pool-or-serial fan-out shape used by the
  /// round engine and the evaluation layer; callers must only write to
  /// disjoint per-index state (see ParallelFor).
  static void ParallelForOrSerial(ThreadPool* pool, size_t n,
                                  const std::function<void(size_t)>& fn);

  /// Slotted variant of ParallelForOrSerial: every index runs with slot
  /// 0 when `pool` is null, otherwise slots come from ParallelForSlots.
  /// Callers size their scratch to `pool ? pool->max_slots() : 1`.
  static void ParallelForOrSerialSlots(
      ThreadPool* pool, size_t n,
      const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t inflight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace pieck

#endif  // PIECK_COMMON_THREAD_POOL_H_
