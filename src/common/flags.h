#ifndef PIECK_COMMON_FLAGS_H_
#define PIECK_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace pieck {

/// Minimal command-line flag parser for example and benchmark binaries.
///
/// Accepts `--name=value`, `--name value`, and bare boolean `--name`.
/// Anything not starting with "--" is collected as a positional argument.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed input.
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pieck

#endif  // PIECK_COMMON_FLAGS_H_
