#ifndef PIECK_COMMON_STATUS_OR_H_
#define PIECK_COMMON_STATUS_OR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pieck {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Accessing the value of a non-OK `StatusOr` aborts the process (the
/// library is exception-free), so callers must check `ok()` first or use
/// `PIECK_ASSIGN_OR_RETURN`.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an Internal error.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define PIECK_ASSIGN_OR_RETURN(lhs, rexpr)               \
  PIECK_ASSIGN_OR_RETURN_IMPL_(                          \
      PIECK_STATUS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define PIECK_STATUS_CONCAT_INNER_(a, b) a##b
#define PIECK_STATUS_CONCAT_(a, b) PIECK_STATUS_CONCAT_INNER_(a, b)
#define PIECK_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace pieck

#endif  // PIECK_COMMON_STATUS_OR_H_
