#ifndef PIECK_COMMON_LOGGING_H_
#define PIECK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pieck {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by PIECK_LOG. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by
/// PIECK_CHECK for unrecoverable invariant violations.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define PIECK_LOG(level)                                              \
  ::pieck::internal_logging::LogMessage(::pieck::LogLevel::k##level,  \
                                        __FILE__, __LINE__)           \
      .stream()

/// Aborts with a message when `cond` is false. For programmer errors
/// (broken invariants), not for user input validation — use Status there.
#define PIECK_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::pieck::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define PIECK_CHECK_OK(expr)                                               \
  if (::pieck::Status _st = (expr); !_st.ok())                             \
  ::pieck::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Status not OK: " << _st.ToString()

/// Debug-only PIECK_CHECK for hot-path invariants: full check in Debug
/// builds, compiled out (condition unevaluated, loop bodies dead) under
/// NDEBUG. The `false &&` form keeps the condition syntactically alive
/// so release builds raise no unused-variable warnings.
#ifdef NDEBUG
#define PIECK_DCHECK(cond)                                                 \
  if (false && (cond))                                                     \
  ::pieck::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "
#else
#define PIECK_DCHECK(cond) PIECK_CHECK(cond)
#endif

}  // namespace pieck

#endif  // PIECK_COMMON_LOGGING_H_
