#ifndef PIECK_COMMON_RNG_H_
#define PIECK_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace pieck {

/// Deterministic random source used by every stochastic component in the
/// library (dataset synthesis, user sampling, negative sampling, model
/// initialization, attacks). Two simulations constructed with the same
/// seed and config produce bit-identical results.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Gaussian with the given mean and stddev.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples `k` distinct values from {0, ..., n-1}. If k >= n returns a
  /// permutation of all n values. O(n) time.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j =
          static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws an index from an (unnormalized) non-negative weight vector.
  /// Returns -1 if all weights are zero or the vector is empty.
  int SampleDiscrete(const std::vector<double>& weights);

  /// Splits off an independent child generator; used to give each
  /// simulated client its own stream so that per-client behavior does not
  /// depend on scheduling order.
  Rng Fork();

  /// The seed Fork() would hand its child, without constructing it.
  /// Advances this stream exactly like Fork(); `Rng(ForkSeed())` is
  /// bit-identical to `Fork()`. Lets large populations store one
  /// 8-byte key per client and materialize the engine lazily.
  uint64_t ForkSeed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pieck

#endif  // PIECK_COMMON_RNG_H_
