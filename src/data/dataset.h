#ifndef PIECK_DATA_DATASET_H_
#define PIECK_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/status_or.h"

namespace pieck {

/// A single implicit-feedback interaction (user consumed item).
struct Interaction {
  int user;
  int item;
};

/// Immutable implicit-feedback dataset: for each user, the set of items
/// that user interacted with. This mirrors the paper's §III-A setting —
/// scores are binary (x_ij = 1 iff interacted).
class Dataset {
 public:
  Dataset() : num_items_(0) {}

  /// Builds a dataset from raw interactions; duplicates are ignored.
  /// Returns InvalidArgument if an interaction is out of range.
  static StatusOr<Dataset> FromInteractions(
      int num_users, int num_items, const std::vector<Interaction>& raw);

  int num_users() const { return static_cast<int>(by_user_.size()); }
  int num_items() const { return num_items_; }

  /// Total number of distinct (user, item) interactions.
  int64_t num_interactions() const { return num_interactions_; }

  /// Items interacted with by `user`, sorted ascending.
  const std::vector<int>& ItemsOf(int user) const { return by_user_[user]; }

  /// True if (user, item) is an interaction. O(log |D+_u|).
  bool Interacted(int user, int item) const;

  /// Per-item interaction counts (the paper's notion of popularity).
  const std::vector<int64_t>& ItemPopularity() const { return popularity_; }

  /// Item ids sorted by decreasing popularity (ties broken by item id).
  /// Index in the returned vector is the item's popularity rank (0 = most
  /// popular), matching the x-axes of Figs. 3 and 4.
  std::vector<int> ItemsByPopularity() const;

  /// Popularity rank of every item: rank[item] in [0, num_items).
  std::vector<int> PopularityRank() const;

  /// The top `fraction` of items by popularity (the paper's "popular"
  /// items use fraction = 0.15).
  std::vector<int> TopPopularItems(double fraction) const;

  /// Fraction of all interactions falling on the top `fraction` popular
  /// items. Fig. 3 shows this exceeds 0.5 at fraction 0.15.
  double InteractionShareOfTopItems(double fraction) const;

  /// 1 - interactions / (users * items); Table VIII's "Sparsity".
  double Sparsity() const;

  /// interactions / users; Table VIII's "Rate".
  double InteractionRate() const;

  /// Returns a copy with one interaction (user, item) removed.
  /// Used by the leave-one-out splitter.
  Dataset WithoutInteraction(int user, int item) const;

  std::string DebugString() const;

 private:
  int num_items_;
  int64_t num_interactions_ = 0;
  std::vector<std::vector<int>> by_user_;
  std::vector<int64_t> popularity_;

  void RecomputePopularity();
};

}  // namespace pieck

#endif  // PIECK_DATA_DATASET_H_
