#ifndef PIECK_DATA_IO_H_
#define PIECK_DATA_IO_H_

#include <string>

#include "common/status_or.h"
#include "data/dataset.h"

namespace pieck {

/// Options for parsing interaction files.
struct InteractionFileFormat {
  /// Field separator; MovieLens `u.data` uses '\t', ML-1M `ratings.dat`
  /// uses ':' (with "::" separators every other field is empty and is
  /// skipped), CSV exports use ','.
  char separator = '\t';
  /// 0-based column indices of the user and item ids.
  int user_column = 0;
  int item_column = 1;
  /// When >= 0, the rating column; rows with rating below
  /// `min_rating` are dropped (implicit-feedback thresholding).
  int rating_column = -1;
  double min_rating = 0.0;
  /// Ids in the file start at 1 (MovieLens convention) and are shifted
  /// down to 0-based.
  bool one_based_ids = true;
};

/// Loads an implicit-feedback dataset from a delimited text file such as
/// the real MovieLens `u.data`. User/item universes are sized by the
/// maximum ids seen. Lines that are empty or start with '#' are skipped.
///
/// Example (real ML-100K):
///   InteractionFileFormat format;             // defaults fit u.data
///   auto ds = LoadInteractionFile("u.data", format);
StatusOr<Dataset> LoadInteractionFile(const std::string& path,
                                      const InteractionFileFormat& format);

/// Writes `dataset` as "user<sep>item" lines (0-based ids); round-trips
/// through LoadInteractionFile with `one_based_ids = false`.
Status SaveInteractionFile(const Dataset& dataset, const std::string& path,
                           char separator = '\t');

}  // namespace pieck

#endif  // PIECK_DATA_IO_H_
