#include "data/dataset.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace pieck {

StatusOr<Dataset> Dataset::FromInteractions(
    int num_users, int num_items, const std::vector<Interaction>& raw) {
  if (num_users < 0 || num_items < 0) {
    return Status::InvalidArgument("negative user or item count");
  }
  Dataset ds;
  ds.num_items_ = num_items;
  ds.by_user_.assign(static_cast<size_t>(num_users), {});
  for (const Interaction& it : raw) {
    if (it.user < 0 || it.user >= num_users || it.item < 0 ||
        it.item >= num_items) {
      std::ostringstream msg;
      msg << "interaction out of range: user=" << it.user
          << " item=" << it.item << " (users=" << num_users
          << ", items=" << num_items << ")";
      return Status::InvalidArgument(msg.str());
    }
    ds.by_user_[static_cast<size_t>(it.user)].push_back(it.item);
  }
  for (auto& items : ds.by_user_) {
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  }
  ds.RecomputePopularity();
  return ds;
}

void Dataset::RecomputePopularity() {
  popularity_.assign(static_cast<size_t>(num_items_), 0);
  num_interactions_ = 0;
  for (const auto& items : by_user_) {
    num_interactions_ += static_cast<int64_t>(items.size());
    for (int item : items) popularity_[static_cast<size_t>(item)]++;
  }
}

bool Dataset::Interacted(int user, int item) const {
  PIECK_CHECK(user >= 0 && user < num_users());
  const auto& items = by_user_[static_cast<size_t>(user)];
  return std::binary_search(items.begin(), items.end(), item);
}

std::vector<int> Dataset::ItemsByPopularity() const {
  std::vector<int> order(static_cast<size_t>(num_items_));
  for (int i = 0; i < num_items_; ++i) order[static_cast<size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return popularity_[static_cast<size_t>(a)] >
           popularity_[static_cast<size_t>(b)];
  });
  return order;
}

std::vector<int> Dataset::PopularityRank() const {
  std::vector<int> order = ItemsByPopularity();
  std::vector<int> rank(static_cast<size_t>(num_items_));
  for (int r = 0; r < num_items_; ++r) {
    rank[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  return rank;
}

std::vector<int> Dataset::TopPopularItems(double fraction) const {
  PIECK_CHECK(fraction >= 0.0 && fraction <= 1.0);
  std::vector<int> order = ItemsByPopularity();
  size_t k = static_cast<size_t>(fraction * static_cast<double>(num_items_));
  order.resize(std::min(order.size(), k));
  return order;
}

double Dataset::InteractionShareOfTopItems(double fraction) const {
  if (num_interactions_ == 0) return 0.0;
  int64_t top = 0;
  for (int item : TopPopularItems(fraction)) {
    top += popularity_[static_cast<size_t>(item)];
  }
  return static_cast<double>(top) / static_cast<double>(num_interactions_);
}

double Dataset::Sparsity() const {
  double cells =
      static_cast<double>(num_users()) * static_cast<double>(num_items_);
  if (cells == 0.0) return 1.0;
  return 1.0 - static_cast<double>(num_interactions_) / cells;
}

double Dataset::InteractionRate() const {
  if (num_users() == 0) return 0.0;
  return static_cast<double>(num_interactions_) /
         static_cast<double>(num_users());
}

Dataset Dataset::WithoutInteraction(int user, int item) const {
  Dataset copy = *this;
  auto& items = copy.by_user_[static_cast<size_t>(user)];
  auto it = std::lower_bound(items.begin(), items.end(), item);
  if (it != items.end() && *it == item) {
    items.erase(it);
    copy.RecomputePopularity();
  }
  return copy;
}

std::string Dataset::DebugString() const {
  std::ostringstream os;
  os << "Dataset(users=" << num_users() << ", items=" << num_items_
     << ", interactions=" << num_interactions_
     << ", sparsity=" << Sparsity() << ")";
  return os.str();
}

}  // namespace pieck
