#ifndef PIECK_DATA_SPLIT_H_
#define PIECK_DATA_SPLIT_H_

#include <vector>

#include "common/rng.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace pieck {

/// Result of the leave-one-out protocol (§VII-A1, following He et al.):
/// for every user one interacted item is held out as that user's test
/// item; the remainder is the training set.
struct LeaveOneOutSplit {
  Dataset train;
  /// test_item[u] is the held-out item of user u, or -1 when the user has
  /// fewer than two interactions (such users are skipped by HR@K).
  std::vector<int> test_item;
};

/// Performs the leave-one-out split, choosing the held-out item uniformly
/// at random per user.
StatusOr<LeaveOneOutSplit> MakeLeaveOneOutSplit(const Dataset& full, Rng& rng);

}  // namespace pieck

#endif  // PIECK_DATA_SPLIT_H_
