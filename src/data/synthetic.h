#ifndef PIECK_DATA_SYNTHETIC_H_
#define PIECK_DATA_SYNTHETIC_H_

#include <string>

#include "common/rng.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace pieck {

/// Configuration of the synthetic implicit-feedback generator.
///
/// The paper evaluates on ML-100K, ML-1M, and Amazon Digital Music, which
/// are not redistributable here; the generator produces datasets with the
/// same first-order statistics (user/item counts, interaction volume,
/// Table VIII) and the long-tail popularity shape that PIECK's three
/// properties depend on (Fig. 3: the top 15% of items receive more than
/// half of all interactions).
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_users = 943;
  int num_items = 1682;
  int64_t num_interactions = 100000;
  /// Zipf exponent of the item popularity distribution; ~1.0 reproduces
  /// the MovieLens-like long tail of Fig. 3.
  double item_zipf_exponent = 1.0;
  /// Zipf exponent of per-user activity (how unevenly interactions are
  /// spread across users).
  double user_zipf_exponent = 0.6;
  /// Minimum interactions per user. MovieLens guarantees 20 ratings per
  /// user; without a floor, near-empty users produce outsized per-example
  /// gradients (1/|D_i|) that distort both training and Δ-Norm mining.
  int min_user_interactions = 2;
  uint64_t seed = 7;
};

/// Dataset presets calibrated to Table VIII. `scale` in (0, 1] shrinks
/// users/items/interactions proportionally so benchmarks fit small CPU
/// budgets while preserving density and tail shape.
SyntheticConfig MovieLens100KConfig(double scale = 1.0);
SyntheticConfig MovieLens1MConfig(double scale = 1.0);
SyntheticConfig AmazonDigitalMusicConfig(double scale = 1.0);

/// Generates a synthetic dataset:
///  1. item popularity weights ~ Zipf(item_zipf_exponent), randomly
///     permuted across item ids (so item id carries no popularity hint);
///  2. per-user activity ~ Zipf(user_zipf_exponent), scaled so the total
///     matches num_interactions, with every user receiving at least one
///     interaction (needed by leave-one-out evaluation);
///  3. each user draws its items without replacement from the item
///     distribution.
/// Deterministic given config.seed.
StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config);

}  // namespace pieck

#endif  // PIECK_DATA_SYNTHETIC_H_
