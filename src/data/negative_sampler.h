#ifndef PIECK_DATA_NEGATIVE_SAMPLER_H_
#define PIECK_DATA_NEGATIVE_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pieck {

/// One labeled training example for a client: item plus implicit label.
struct LabeledItem {
  int item;
  double label;  // 1.0 = interacted (D+), 0.0 = sampled negative (D-)
};

/// Builds a client's private training batch D_i = D+_i ∪ D-_i (§III-A):
/// all of the user's training interactions plus `q * |D+_i|` uniformly
/// sampled uninteracted items (the paper sets q = 1 by default and
/// studies larger q in the supplementary material).
class NegativeSampler {
 public:
  /// `q` is the ratio |D-| / |D+|; must be >= 0.
  explicit NegativeSampler(double q = 1.0) : q_(q) {}

  /// Samples a fresh batch for `user` from `train`. Negatives are drawn
  /// without replacement from the user's uninteracted items; if the user
  /// has interacted with nearly everything the negative set is smaller
  /// than requested.
  std::vector<LabeledItem> SampleBatch(const Dataset& train, int user,
                                       Rng& rng) const;

  double q() const { return q_; }

 private:
  double q_;
};

}  // namespace pieck

#endif  // PIECK_DATA_NEGATIVE_SAMPLER_H_
