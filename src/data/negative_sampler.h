#ifndef PIECK_DATA_NEGATIVE_SAMPLER_H_
#define PIECK_DATA_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace pieck {

/// One labeled training example for a client: item plus implicit label.
struct LabeledItem {
  int item;
  double label;  // 1.0 = interacted (D+), 0.0 = sampled negative (D-)
};

/// Immutable per-item popularity distribution, built once per dataset
/// and shared (read-only) by every client of a simulation. Holds the
/// CDF of popularity^alpha used by popularity-proportional negative
/// sampling; the table is never mutated after construction, so
/// concurrent SampleBatch calls need no synchronization.
struct PopularityTable {
  double alpha = 0.0;
  std::vector<double> cdf;  // cumulative popularity^alpha per item id

  /// Builds the table from `train`'s interaction counts. `alpha` skews
  /// draws toward popular items (word2vec-style); items with zero
  /// interactions keep a tiny floor weight so every item stays
  /// sampleable.
  static std::shared_ptr<const PopularityTable> Build(const Dataset& train,
                                                      double alpha);

  int64_t FootprintBytes() const {
    return static_cast<int64_t>(cdf.capacity() * sizeof(double));
  }
};

/// Builds a client's private training batch D_i = D+_i ∪ D-_i (§III-A):
/// all of the user's training interactions plus `q * |D+_i|` uniformly
/// sampled uninteracted items (the paper sets q = 1 by default and
/// studies larger q in the supplementary material).
///
/// One sampler instance is immutable after construction and shared by
/// every client (`Simulation` owns it through a shared_ptr); all
/// per-call randomness comes from the caller's `Rng` stream, so sharing
/// changes no draw sequence. When a `PopularityTable` is attached,
/// negatives are drawn proportionally to popularity^alpha instead of
/// uniformly.
class NegativeSampler {
 public:
  /// `q` is the ratio |D-| / |D+|; must be >= 0. `popularity` may be
  /// null (uniform negatives, the paper's protocol).
  explicit NegativeSampler(
      double q = 1.0,
      std::shared_ptr<const PopularityTable> popularity = nullptr)
      : q_(q), popularity_(std::move(popularity)) {}

  /// Reusable per-worker sampling scratch; SampleBatchInto touches no
  /// other memory, so steady-state rounds allocate nothing here.
  struct Scratch {
    std::vector<char> taken;
    std::vector<int> pool;

    int64_t CapacityBytes() const {
      return static_cast<int64_t>(taken.capacity() * sizeof(char) +
                                  pool.capacity() * sizeof(int));
    }
  };

  /// Samples a fresh batch for a user whose positives are `positives`
  /// (sorted ascending), over an item universe of `num_items`, into
  /// `*batch` (cleared first). Negatives are drawn without replacement
  /// from the uninteracted items; if the user has interacted with nearly
  /// everything the negative set is smaller than requested.
  void SampleBatchInto(const int* positives, size_t num_positives,
                       int num_items, Rng& rng,
                       std::vector<LabeledItem>* batch,
                       Scratch* scratch) const;

  /// Convenience wrapper over SampleBatchInto for callers holding a
  /// Dataset (tests, attacks); allocates its own scratch per call.
  std::vector<LabeledItem> SampleBatch(const Dataset& train, int user,
                                       Rng& rng) const;

  double q() const { return q_; }
  const PopularityTable* popularity() const { return popularity_.get(); }

 private:
  double q_;
  std::shared_ptr<const PopularityTable> popularity_;
};

}  // namespace pieck

#endif  // PIECK_DATA_NEGATIVE_SAMPLER_H_
