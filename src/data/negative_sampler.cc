#include "data/negative_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pieck {

std::shared_ptr<const PopularityTable> PopularityTable::Build(
    const Dataset& train, double alpha) {
  auto table = std::make_shared<PopularityTable>();
  table->alpha = alpha;
  const std::vector<int64_t>& counts = train.ItemPopularity();
  table->cdf.resize(counts.size());
  double acc = 0.0;
  for (size_t j = 0; j < counts.size(); ++j) {
    // Floor of 1 interaction so cold items keep nonzero mass and the
    // CDF is strictly increasing.
    const double w =
        std::pow(static_cast<double>(std::max<int64_t>(counts[j], 1)), alpha);
    acc += w;
    table->cdf[j] = acc;
  }
  return table;
}

namespace {

int SampleItemFromCdf(const std::vector<double>& cdf, Rng& rng) {
  const double r = rng.Uniform(0.0, cdf.back());
  auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) --it;
  return static_cast<int>(it - cdf.begin());
}

}  // namespace

void NegativeSampler::SampleBatchInto(const int* positives,
                                      size_t num_positives, int num_items,
                                      Rng& rng, std::vector<LabeledItem>* batch,
                                      Scratch* scratch) const {
  PIECK_CHECK(q_ >= 0.0);
  PIECK_CHECK(batch != nullptr && scratch != nullptr);
  batch->clear();
  batch->reserve(num_positives * static_cast<size_t>(1.0 + q_) + 1);
  for (size_t i = 0; i < num_positives; ++i) {
    batch->push_back({positives[i], 1.0});
  }

  int64_t want = static_cast<int64_t>(
      std::llround(q_ * static_cast<double>(num_positives)));
  const int64_t pool_size = num_items - static_cast<int64_t>(num_positives);
  want = std::min(want, pool_size);
  if (want <= 0) return;

  const bool weighted = popularity_ != nullptr && popularity_->alpha != 0.0;

  // For small sample counts rejection sampling is cheap (datasets are
  // sparse); fall back to an explicit pool when the user covers most items.
  if (weighted || static_cast<double>(num_positives) <
                      0.5 * static_cast<double>(num_items)) {
    std::vector<char>& taken = scratch->taken;
    taken.assign(static_cast<size_t>(num_items), 0);
    for (size_t i = 0; i < num_positives; ++i) {
      taken[static_cast<size_t>(positives[i])] = 1;
    }
    int64_t drawn = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = want * 50 + 100;
    while (drawn < want && (!weighted || attempts < max_attempts)) {
      ++attempts;
      const int item =
          weighted ? SampleItemFromCdf(popularity_->cdf, rng)
                   : static_cast<int>(rng.UniformInt(0, num_items - 1));
      if (!taken[static_cast<size_t>(item)]) {
        taken[static_cast<size_t>(item)] = 1;
        batch->push_back({item, 0.0});
        ++drawn;
      }
    }
    // Weighted rejection can stall on dense users; finish with the
    // first still-untaken items (deterministic, no further draws).
    for (int item = 0; drawn < want && item < num_items; ++item) {
      if (!taken[static_cast<size_t>(item)]) {
        taken[static_cast<size_t>(item)] = 1;
        batch->push_back({item, 0.0});
        ++drawn;
      }
    }
  } else {
    std::vector<int>& pool = scratch->pool;
    pool.clear();
    pool.reserve(static_cast<size_t>(pool_size));
    size_t pi = 0;
    for (int item = 0; item < num_items; ++item) {
      while (pi < num_positives && positives[pi] < item) ++pi;
      if (pi < num_positives && positives[pi] == item) continue;
      pool.push_back(item);
    }
    rng.Shuffle(pool);
    for (int64_t i = 0; i < want; ++i) {
      batch->push_back({pool[static_cast<size_t>(i)], 0.0});
    }
  }
}

std::vector<LabeledItem> NegativeSampler::SampleBatch(const Dataset& train,
                                                      int user,
                                                      Rng& rng) const {
  const std::vector<int>& positives = train.ItemsOf(user);
  std::vector<LabeledItem> batch;
  Scratch scratch;
  SampleBatchInto(positives.data(), positives.size(), train.num_items(), rng,
                  &batch, &scratch);
  return batch;
}

}  // namespace pieck
