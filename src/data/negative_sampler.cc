#include "data/negative_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pieck {

std::vector<LabeledItem> NegativeSampler::SampleBatch(const Dataset& train,
                                                      int user,
                                                      Rng& rng) const {
  PIECK_CHECK(q_ >= 0.0);
  const std::vector<int>& positives = train.ItemsOf(user);
  std::vector<LabeledItem> batch;
  batch.reserve(positives.size() * static_cast<size_t>(1.0 + q_) + 1);
  for (int item : positives) batch.push_back({item, 1.0});

  int64_t want = static_cast<int64_t>(
      std::llround(q_ * static_cast<double>(positives.size())));
  int64_t pool = train.num_items() - static_cast<int64_t>(positives.size());
  want = std::min(want, pool);
  if (want <= 0) return batch;

  // For small sample counts rejection sampling is cheap (datasets are
  // sparse); fall back to an explicit pool when the user covers most items.
  if (static_cast<double>(positives.size()) <
      0.5 * static_cast<double>(train.num_items())) {
    std::vector<char> taken(static_cast<size_t>(train.num_items()), 0);
    for (int item : positives) taken[static_cast<size_t>(item)] = 1;
    int64_t drawn = 0;
    while (drawn < want) {
      int item = static_cast<int>(rng.UniformInt(0, train.num_items() - 1));
      if (!taken[static_cast<size_t>(item)]) {
        taken[static_cast<size_t>(item)] = 1;
        batch.push_back({item, 0.0});
        ++drawn;
      }
    }
  } else {
    std::vector<int> pool_items;
    pool_items.reserve(static_cast<size_t>(pool));
    size_t pi = 0;
    for (int item = 0; item < train.num_items(); ++item) {
      while (pi < positives.size() && positives[pi] < item) ++pi;
      if (pi < positives.size() && positives[pi] == item) continue;
      pool_items.push_back(item);
    }
    rng.Shuffle(pool_items);
    for (int64_t i = 0; i < want; ++i) {
      batch.push_back({pool_items[static_cast<size_t>(i)], 0.0});
    }
  }
  return batch;
}

}  // namespace pieck
