/// \file
/// Compressed sparse row view of per-user training interactions.
///
/// `Dataset` stores one heap vector per user, which is convenient for
/// construction but costs a pointer chase plus ~48 bytes of allocator
/// overhead per user — prohibitive at millions of users. The round
/// engine instead walks an `InteractionCsr` built once from the
/// `Dataset`: all item ids packed into one array, per-user spans
/// addressed through an offsets table. Items within a span are sorted
/// ascending, exactly like `Dataset::ItemsOf`, so sampling and loss
/// code sees identical sequences through either view.
#ifndef PIECK_DATA_INTERACTION_CSR_H_
#define PIECK_DATA_INTERACTION_CSR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace pieck {

/// Immutable CSR snapshot of `Dataset`'s user→items adjacency.
class InteractionCsr {
 public:
  /// Borrowed, contiguous, ascending span of one user's item ids.
  struct Span {
    const int* data = nullptr;
    size_t size = 0;

    const int* begin() const { return data; }
    const int* end() const { return data + size; }
    bool empty() const { return size == 0; }
  };

  InteractionCsr() = default;
  explicit InteractionCsr(const Dataset& train);

  int num_users() const { return static_cast<int>(offsets_.size()) - 1; }
  int num_items() const { return num_items_; }
  int64_t num_interactions() const {
    return static_cast<int64_t>(items_.size());
  }

  /// Items of `user`, sorted ascending. Valid for the CSR's lifetime.
  Span ItemsOf(int user) const {
    const size_t lo = offsets_[static_cast<size_t>(user)];
    const size_t hi = offsets_[static_cast<size_t>(user) + 1];
    return {items_.data() + lo, hi - lo};
  }

  /// Resident bytes of the packed arrays (store telemetry).
  int64_t FootprintBytes() const {
    return static_cast<int64_t>(offsets_.capacity() * sizeof(uint64_t) +
                                items_.capacity() * sizeof(int));
  }

 private:
  int num_items_ = 0;
  std::vector<uint64_t> offsets_{0};  // |U| + 1 entries
  std::vector<int> items_;         // all interactions, user-major
};

}  // namespace pieck

#endif  // PIECK_DATA_INTERACTION_CSR_H_
