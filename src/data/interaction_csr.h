/// \file
/// Compressed sparse row view of per-user training interactions.
///
/// `Dataset` stores one heap vector per user, which is convenient for
/// construction but costs a pointer chase plus ~48 bytes of allocator
/// overhead per user — prohibitive at millions of users. The round
/// engine instead walks an `InteractionCsr` built once from the
/// `Dataset`: all item ids packed into one array, per-user spans
/// addressed through an offsets table. Items within a span are sorted
/// ascending, exactly like `Dataset::ItemsOf`, so sampling and loss
/// code sees identical sequences through either view.
///
/// The packed arrays live either in RAM vectors or in mmap'd read-only
/// files (the beyond-RAM storage tier): `ItemsOf` reads through raw
/// pointers that are identical in both cases, so the round engine never
/// branches on the backing. Mmap-backed CSRs are written *streaming* by
/// `InteractionCsrBuilder` — one user at a time through a small stdio
/// buffer — so building a 100M-user adjacency never holds it in memory.
#ifndef PIECK_DATA_INTERACTION_CSR_H_
#define PIECK_DATA_INTERACTION_CSR_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "data/dataset.h"
#include "storage/mmap_file.h"

namespace pieck {

/// Immutable CSR snapshot of a user→items adjacency.
class InteractionCsr {
 public:
  /// Borrowed, contiguous, ascending span of one user's item ids.
  struct Span {
    const int* data = nullptr;
    size_t size = 0;

    const int* begin() const { return data; }
    const int* end() const { return data + size; }
    bool empty() const { return size == 0; }
  };

  InteractionCsr();
  explicit InteractionCsr(const Dataset& train);
  InteractionCsr(InteractionCsr&&) = default;
  InteractionCsr& operator=(InteractionCsr&&) = default;
  InteractionCsr(const InteractionCsr&) = delete;
  InteractionCsr& operator=(const InteractionCsr&) = delete;

  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  int64_t num_interactions() const { return num_interactions_; }
  bool is_mmap() const { return items_file_.valid(); }

  /// Items of `user`, sorted ascending. Valid for the CSR's lifetime.
  /// Reads may refault released pages; that is transparent.
  Span ItemsOf(int user) const {
    const uint64_t lo = offsets_[static_cast<size_t>(user)];
    const uint64_t hi = offsets_[static_cast<size_t>(user) + 1];
    return {items_ + lo, static_cast<size_t>(hi - lo)};
  }

  /// Resident heap bytes (~0 when mmap-backed: spans read file pages
  /// that the kernel reclaims on pressure and we release on budget).
  int64_t FootprintBytes() const {
    return static_cast<int64_t>(offsets_vec_.capacity() * sizeof(uint64_t) +
                                items_vec_.capacity() * sizeof(int));
  }

  /// Bytes of mmap'd backing files (0 when RAM-backed).
  int64_t BackingBytes() const {
    return offsets_file_.size() + items_file_.size();
  }

  /// madvise(WILLNEED) `user`'s span ahead of its training step.
  /// Advisory and thread-safe; no-op when RAM-backed.
  void PrefetchUser(int user) const;

  /// Batched PrefetchUser over an ascending user list: page-adjacent
  /// spans merge into one WILLNEED range each, so a whole cohort costs
  /// a handful of madvise calls instead of one per user. `users` must
  /// be sorted ascending and in range.
  void PrefetchUsers(const std::vector<int>& sorted_users) const;

  /// madvise(DONTNEED) both mappings: drops this process's resident CSR
  /// pages (they refault from the page cache / file). Perf-only.
  void ReleaseResidentPages() const;

 private:
  friend class InteractionCsrBuilder;

  int num_users_ = 0;
  int num_items_ = 0;
  int64_t num_interactions_ = 0;
  // Exactly one of the two backings is populated; offsets_/items_
  // point into whichever it is (raw pointers survive vector moves).
  std::vector<uint64_t> offsets_vec_;  // |U| + 1 entries when RAM-backed
  std::vector<int> items_vec_;
  MmapFile offsets_file_;
  MmapFile items_file_;
  const uint64_t* offsets_ = nullptr;
  const int* items_ = nullptr;
};

/// Streaming CSR writer: feed users in id order, then Finish(). The
/// mmap flavor appends through stdio buffers and never materializes the
/// adjacency in RAM; the RAM flavor fills the usual vectors. Item lists
/// are sorted and deduplicated exactly like `Dataset::FromInteractions`,
/// so either construction path yields identical spans.
class InteractionCsrBuilder {
 public:
  /// RAM-backed builder.
  InteractionCsrBuilder(int num_users, int num_items);

  /// Mmap-backed builder writing the two packed arrays to files.
  InteractionCsrBuilder(int num_users, int num_items,
                        const std::string& offsets_path,
                        const std::string& items_path);

  ~InteractionCsrBuilder();
  InteractionCsrBuilder(const InteractionCsrBuilder&) = delete;
  InteractionCsrBuilder& operator=(const InteractionCsrBuilder&) = delete;

  /// Appends the next user's items (any order, duplicates tolerated).
  /// Must be called exactly `num_users` times, in user id order.
  Status AddUser(const int* items, size_t n);

  /// Seals the CSR. The builder is spent afterwards.
  StatusOr<InteractionCsr> Finish();

 private:
  int num_users_;
  int num_items_;
  int users_added_ = 0;
  uint64_t total_ = 0;
  bool finished_ = false;
  std::vector<int> scratch_;
  // RAM flavor.
  std::vector<uint64_t> offsets_vec_;
  std::vector<int> items_vec_;
  // Mmap flavor.
  std::string offsets_path_;
  std::string items_path_;
  std::FILE* offsets_f_ = nullptr;
  std::FILE* items_f_ = nullptr;
};

}  // namespace pieck

#endif  // PIECK_DATA_INTERACTION_CSR_H_
