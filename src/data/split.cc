#include "data/split.h"

namespace pieck {

StatusOr<LeaveOneOutSplit> MakeLeaveOneOutSplit(const Dataset& full,
                                                Rng& rng) {
  LeaveOneOutSplit split;
  split.test_item.assign(static_cast<size_t>(full.num_users()), -1);

  std::vector<Interaction> train_raw;
  train_raw.reserve(static_cast<size_t>(full.num_interactions()));
  for (int u = 0; u < full.num_users(); ++u) {
    const std::vector<int>& items = full.ItemsOf(u);
    int held_out = -1;
    if (items.size() >= 2) {
      held_out = items[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
      split.test_item[static_cast<size_t>(u)] = held_out;
    }
    for (int item : items) {
      if (item != held_out) train_raw.push_back({u, item});
    }
  }
  PIECK_ASSIGN_OR_RETURN(
      split.train, Dataset::FromInteractions(full.num_users(),
                                             full.num_items(), train_raw));
  return split;
}

}  // namespace pieck
