#include "data/io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace pieck {

namespace {

/// Splits on `sep`, dropping empty fields (handles ML-1M's "::").
std::vector<std::string> Fields(const std::string& line, char sep) {
  std::vector<std::string> raw = StrSplit(line, sep);
  std::vector<std::string> out;
  for (std::string& f : raw) {
    if (!f.empty()) out.push_back(std::move(f));
  }
  return out;
}

}  // namespace

StatusOr<Dataset> LoadInteractionFile(const std::string& path,
                                      const InteractionFileFormat& format) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open interaction file: " + path);
  }

  std::vector<Interaction> interactions;
  int max_user = -1;
  int max_item = -1;
  std::string line;
  int line_no = 0;
  const int offset = format.one_based_ids ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Fields(line, format.separator);
    int needed = std::max({format.user_column, format.item_column,
                           format.rating_column}) +
                 1;
    if (static_cast<int>(fields.size()) < needed) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": expected at least " << needed
          << " fields, got " << fields.size();
      return Status::InvalidArgument(msg.str());
    }
    if (format.rating_column >= 0) {
      double rating = std::strtod(
          fields[static_cast<size_t>(format.rating_column)].c_str(), nullptr);
      if (rating < format.min_rating) continue;
    }
    char* end = nullptr;
    long user = std::strtol(
        fields[static_cast<size_t>(format.user_column)].c_str(), &end, 10);
    long item = std::strtol(
        fields[static_cast<size_t>(format.item_column)].c_str(), nullptr, 10);
    user -= offset;
    item -= offset;
    if (user < 0 || item < 0) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": negative id after offset";
      return Status::InvalidArgument(msg.str());
    }
    interactions.push_back(
        {static_cast<int>(user), static_cast<int>(item)});
    max_user = std::max(max_user, static_cast<int>(user));
    max_item = std::max(max_item, static_cast<int>(item));
  }
  if (interactions.empty()) {
    return Status::InvalidArgument("no interactions in " + path);
  }
  return Dataset::FromInteractions(max_user + 1, max_item + 1, interactions);
}

Status SaveInteractionFile(const Dataset& dataset, const std::string& path,
                           char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (int u = 0; u < dataset.num_users(); ++u) {
    for (int item : dataset.ItemsOf(u)) {
      out << u << separator << item << "\n";
    }
  }
  if (!out.good()) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace pieck
