#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace pieck {

namespace {

/// Unnormalized Zipf weights w_r = 1 / (r+1)^s for r = 0..n-1.
std::vector<double> ZipfWeights(int n, double s) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    w[static_cast<size_t>(r)] = 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  return w;
}

/// Cumulative distribution for binary-search sampling.
std::vector<double> Cumulative(const std::vector<double>& w) {
  std::vector<double> c(w.size());
  double acc = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    acc += w[i];
    c[i] = acc;
  }
  return c;
}

int SampleFromCdf(const std::vector<double>& cdf, Rng& rng) {
  double r = rng.Uniform(0.0, cdf.back());
  auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
  if (it == cdf.end()) --it;
  return static_cast<int>(it - cdf.begin());
}

}  // namespace

SyntheticConfig MovieLens100KConfig(double scale) {
  SyntheticConfig c;
  c.name = "ml-100k";
  c.num_users = std::max(4, static_cast<int>(943 * scale));
  c.num_items = std::max(8, static_cast<int>(1682 * scale));
  c.num_interactions = std::max<int64_t>(
      c.num_users, static_cast<int64_t>(100000 * scale * scale));
  c.item_zipf_exponent = 1.0;
  c.user_zipf_exponent = 0.6;
  // ML-100K guarantees >= 20 ratings per user; scale the floor with the
  // per-user rate so reduced datasets keep the same gradient-magnitude
  // profile.
  c.min_user_interactions = std::max(
      2, static_cast<int>(20.0 * (static_cast<double>(c.num_interactions) /
                                  c.num_users) /
                          106.0));
  return c;
}

SyntheticConfig MovieLens1MConfig(double scale) {
  SyntheticConfig c;
  c.name = "ml-1m";
  c.num_users = std::max(4, static_cast<int>(6040 * scale));
  c.num_items = std::max(8, static_cast<int>(3706 * scale));
  c.num_interactions = std::max<int64_t>(
      c.num_users, static_cast<int64_t>(1000209 * scale * scale));
  c.item_zipf_exponent = 1.05;
  c.user_zipf_exponent = 0.7;
  c.min_user_interactions = std::max(
      2, static_cast<int>(20.0 * (static_cast<double>(c.num_interactions) /
                                  c.num_users) /
                          166.0));
  return c;
}

SyntheticConfig AmazonDigitalMusicConfig(double scale) {
  SyntheticConfig c;
  c.name = "az";
  c.num_users = std::max(4, static_cast<int>(16566 * scale));
  c.num_items = std::max(8, static_cast<int>(11797 * scale));
  c.num_interactions = std::max<int64_t>(
      c.num_users, static_cast<int64_t>(169781 * scale * scale));
  // AZ is far sparser (rate ~10); its tail is slightly heavier per Fig. 3.
  c.item_zipf_exponent = 1.1;
  c.user_zipf_exponent = 0.5;
  c.min_user_interactions = std::max(
      2, static_cast<int>(5.0 * (static_cast<double>(c.num_interactions) /
                                 c.num_users) /
                          10.0));
  return c;
}

StatusOr<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0) {
    return Status::InvalidArgument("synthetic config needs users and items");
  }
  if (config.num_interactions < config.num_users) {
    return Status::InvalidArgument(
        "need at least one interaction per user for leave-one-out");
  }
  const int64_t max_cells = static_cast<int64_t>(config.num_users) *
                            static_cast<int64_t>(config.num_items);
  if (config.num_interactions > max_cells) {
    return Status::InvalidArgument("more interactions than user-item cells");
  }

  Rng rng(config.seed);

  // Item popularity ranks -> Zipf weights; then a random permutation maps
  // popularity rank to item id so ids carry no information.
  std::vector<double> item_weights =
      ZipfWeights(config.num_items, config.item_zipf_exponent);
  std::vector<double> item_cdf = Cumulative(item_weights);
  std::vector<int> rank_to_item(static_cast<size_t>(config.num_items));
  std::iota(rank_to_item.begin(), rank_to_item.end(), 0);
  rng.Shuffle(rank_to_item);

  // Per-user activity: Zipf over a random user order, scaled to the
  // interaction budget with a floor of 1.
  std::vector<double> user_weights =
      ZipfWeights(config.num_users, config.user_zipf_exponent);
  rng.Shuffle(user_weights);
  double weight_sum =
      std::accumulate(user_weights.begin(), user_weights.end(), 0.0);
  const int64_t min_per_user = std::min<int64_t>(
      std::max(1, config.min_user_interactions), config.num_items);
  std::vector<int64_t> user_quota(static_cast<size_t>(config.num_users));
  int64_t assigned = 0;
  for (int u = 0; u < config.num_users; ++u) {
    double share = user_weights[static_cast<size_t>(u)] / weight_sum;
    int64_t n = std::max<int64_t>(
        min_per_user,
        static_cast<int64_t>(
            share * static_cast<double>(config.num_interactions)));
    n = std::min<int64_t>(n, config.num_items);
    user_quota[static_cast<size_t>(u)] = n;
    assigned += n;
  }
  // The floor may push the total above budget; shave the heaviest users.
  if (assigned > config.num_interactions) {
    std::vector<int> by_quota(static_cast<size_t>(config.num_users));
    std::iota(by_quota.begin(), by_quota.end(), 0);
    std::sort(by_quota.begin(), by_quota.end(), [&](int a, int b) {
      return user_quota[static_cast<size_t>(a)] >
             user_quota[static_cast<size_t>(b)];
    });
    size_t cursor = 0;
    while (assigned > config.num_interactions) {
      int u = by_quota[cursor];
      if (user_quota[static_cast<size_t>(u)] > min_per_user) {
        user_quota[static_cast<size_t>(u)]--;
        assigned--;
      }
      cursor = (cursor + 1) % by_quota.size();
      if (cursor == 0 &&
          *std::max_element(user_quota.begin(), user_quota.end()) <=
              min_per_user) {
        break;  // cannot shave further
      }
    }
  }
  // Distribute any remaining budget one interaction at a time over random
  // users that still have headroom.
  int64_t remaining = config.num_interactions - assigned;
  int guard = 0;
  while (remaining > 0 && guard < config.num_users * 64) {
    int u = static_cast<int>(rng.UniformInt(0, config.num_users - 1));
    if (user_quota[static_cast<size_t>(u)] < config.num_items) {
      user_quota[static_cast<size_t>(u)]++;
      remaining--;
    }
    ++guard;
  }

  std::vector<Interaction> interactions;
  interactions.reserve(static_cast<size_t>(config.num_interactions));
  std::vector<char> seen(static_cast<size_t>(config.num_items), 0);
  for (int u = 0; u < config.num_users; ++u) {
    int64_t quota = user_quota[static_cast<size_t>(u)];
    std::fill(seen.begin(), seen.end(), 0);
    int64_t drawn = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = quota * 50 + 100;
    while (drawn < quota && attempts < max_attempts) {
      ++attempts;
      int rank = SampleFromCdf(item_cdf, rng);
      int item = rank_to_item[static_cast<size_t>(rank)];
      if (!seen[static_cast<size_t>(item)]) {
        seen[static_cast<size_t>(item)] = 1;
        interactions.push_back({u, item});
        ++drawn;
      }
    }
    // Rejection sampling may stall for very active users; fill the rest
    // with the most popular unseen items to honor the quota.
    if (drawn < quota) {
      for (int rank = 0; rank < config.num_items && drawn < quota; ++rank) {
        int item = rank_to_item[static_cast<size_t>(rank)];
        if (!seen[static_cast<size_t>(item)]) {
          seen[static_cast<size_t>(item)] = 1;
          interactions.push_back({u, item});
          ++drawn;
        }
      }
    }
  }

  return Dataset::FromInteractions(config.num_users, config.num_items,
                                   interactions);
}

}  // namespace pieck
