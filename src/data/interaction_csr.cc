#include "data/interaction_csr.h"

namespace pieck {

InteractionCsr::InteractionCsr(const Dataset& train)
    : num_items_(train.num_items()) {
  const int num_users = train.num_users();
  offsets_.assign(static_cast<size_t>(num_users) + 1, 0);
  items_.reserve(static_cast<size_t>(train.num_interactions()));
  for (int u = 0; u < num_users; ++u) {
    const std::vector<int>& row = train.ItemsOf(u);
    items_.insert(items_.end(), row.begin(), row.end());
    offsets_[static_cast<size_t>(u) + 1] = items_.size();
  }
}

}  // namespace pieck
