#include "data/interaction_csr.h"

#include <algorithm>
#include <cstring>

namespace pieck {

InteractionCsr::InteractionCsr() : offsets_vec_(1, 0) {
  offsets_ = offsets_vec_.data();
  items_ = items_vec_.data();
}

InteractionCsr::InteractionCsr(const Dataset& train)
    : num_users_(train.num_users()), num_items_(train.num_items()) {
  offsets_vec_.assign(static_cast<size_t>(num_users_) + 1, 0);
  items_vec_.reserve(static_cast<size_t>(train.num_interactions()));
  for (int u = 0; u < num_users_; ++u) {
    const std::vector<int>& row = train.ItemsOf(u);
    items_vec_.insert(items_vec_.end(), row.begin(), row.end());
    offsets_vec_[static_cast<size_t>(u) + 1] = items_vec_.size();
  }
  num_interactions_ = static_cast<int64_t>(items_vec_.size());
  offsets_ = offsets_vec_.data();
  items_ = items_vec_.data();
}

void InteractionCsr::PrefetchUser(int user) const {
  if (!is_mmap()) return;
  const uint64_t lo = offsets_[static_cast<size_t>(user)];
  const uint64_t hi = offsets_[static_cast<size_t>(user) + 1];
  items_file_.AdviseWillNeed(static_cast<int64_t>(lo * sizeof(int)),
                             static_cast<int64_t>((hi - lo) * sizeof(int)));
}

void InteractionCsr::PrefetchUsers(const std::vector<int>& sorted_users) const {
  if (!is_mmap() || sorted_users.empty()) return;
  // Sorted users have ascending spans (items are packed in user order),
  // so a single forward sweep can merge page-adjacent spans.
  constexpr int64_t kPage = 4096;  // merge heuristic; advise() aligns itself
  int64_t range_lo = -1;
  int64_t range_hi = -1;
  for (const int user : sorted_users) {
    const uint64_t lo = offsets_[static_cast<size_t>(user)];
    const uint64_t hi = offsets_[static_cast<size_t>(user) + 1];
    if (lo == hi) continue;
    const int64_t blo = static_cast<int64_t>(lo * sizeof(int));
    const int64_t bhi = static_cast<int64_t>(hi * sizeof(int));
    if (range_lo >= 0 && blo / kPage <= range_hi / kPage + 1) {
      if (bhi > range_hi) range_hi = bhi;
      continue;
    }
    if (range_lo >= 0) {
      items_file_.AdviseWillNeed(range_lo, range_hi - range_lo);
    }
    range_lo = blo;
    range_hi = bhi;
  }
  if (range_lo >= 0) {
    items_file_.AdviseWillNeed(range_lo, range_hi - range_lo);
  }
}

void InteractionCsr::ReleaseResidentPages() const {
  offsets_file_.AdviseDontNeed();
  items_file_.AdviseDontNeed();
}

InteractionCsrBuilder::InteractionCsrBuilder(int num_users, int num_items)
    : num_users_(num_users), num_items_(num_items) {
  offsets_vec_.reserve(static_cast<size_t>(num_users_) + 1);
  offsets_vec_.push_back(0);
}

InteractionCsrBuilder::InteractionCsrBuilder(int num_users, int num_items,
                                             const std::string& offsets_path,
                                             const std::string& items_path)
    : num_users_(num_users),
      num_items_(num_items),
      offsets_path_(offsets_path),
      items_path_(items_path) {
  offsets_f_ = std::fopen(offsets_path_.c_str(), "wb");
  items_f_ = std::fopen(items_path_.c_str(), "wb");
  if (offsets_f_ != nullptr) {
    const uint64_t zero = 0;
    std::fwrite(&zero, sizeof(zero), 1, offsets_f_);
  }
}

InteractionCsrBuilder::~InteractionCsrBuilder() {
  if (offsets_f_ != nullptr) std::fclose(offsets_f_);
  if (items_f_ != nullptr) std::fclose(items_f_);
}

Status InteractionCsrBuilder::AddUser(const int* items, size_t n) {
  if (finished_) return Status::InvalidArgument("builder already finished");
  if (users_added_ >= num_users_) {
    return Status::InvalidArgument("more AddUser calls than num_users");
  }
  if (!offsets_path_.empty() &&
      (offsets_f_ == nullptr || items_f_ == nullptr)) {
    return Status::IoError("could not open CSR backing files for writing");
  }
  // Match Dataset::FromInteractions: ascending, duplicates collapsed.
  scratch_.assign(items, items + n);
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  for (const int item : scratch_) {
    if (item < 0 || item >= num_items_) {
      return Status::InvalidArgument("item id out of range in CSR builder");
    }
  }
  total_ += scratch_.size();
  ++users_added_;
  if (offsets_f_ != nullptr) {
    if (!scratch_.empty() &&
        std::fwrite(scratch_.data(), sizeof(int), scratch_.size(),
                    items_f_) != scratch_.size()) {
      return Status::IoError("write " + items_path_);
    }
    if (std::fwrite(&total_, sizeof(total_), 1, offsets_f_) != 1) {
      return Status::IoError("write " + offsets_path_);
    }
  } else {
    items_vec_.insert(items_vec_.end(), scratch_.begin(), scratch_.end());
    offsets_vec_.push_back(total_);
  }
  return Status::OK();
}

StatusOr<InteractionCsr> InteractionCsrBuilder::Finish() {
  if (finished_) return Status::InvalidArgument("builder already finished");
  if (users_added_ != num_users_) {
    return Status::InvalidArgument("CSR builder finished early: got " +
                                   std::to_string(users_added_) + " of " +
                                   std::to_string(num_users_) + " users");
  }
  finished_ = true;
  InteractionCsr csr;
  csr.num_users_ = num_users_;
  csr.num_items_ = num_items_;
  csr.num_interactions_ = static_cast<int64_t>(total_);
  if (offsets_f_ != nullptr || items_f_ != nullptr) {
    const bool ok = std::fclose(offsets_f_) == 0;
    const bool ok2 = std::fclose(items_f_) == 0;
    offsets_f_ = nullptr;
    items_f_ = nullptr;
    if (!ok || !ok2) return Status::IoError("flush CSR backing files");
    auto offsets = MmapFile::MapReadOnly(offsets_path_);
    if (!offsets.ok()) return offsets.status();
    auto items = MmapFile::MapReadOnly(items_path_);
    if (!items.ok()) return items.status();
    const int64_t want_offsets =
        static_cast<int64_t>((num_users_ + 1) * sizeof(uint64_t));
    const int64_t want_items = static_cast<int64_t>(total_ * sizeof(int));
    if (offsets->size() != want_offsets || items->size() != want_items) {
      return Status::IoError("CSR backing files have unexpected sizes");
    }
    csr.offsets_file_ = std::move(*offsets);
    csr.items_file_ = std::move(*items);
    csr.offsets_vec_.clear();
    csr.offsets_ =
        static_cast<const uint64_t*>(csr.offsets_file_.data());
    csr.items_ = static_cast<const int*>(csr.items_file_.data());
  } else {
    csr.offsets_vec_ = std::move(offsets_vec_);
    csr.items_vec_ = std::move(items_vec_);
    csr.offsets_ = csr.offsets_vec_.data();
    csr.items_ = csr.items_vec_.data();
  }
  return StatusOr<InteractionCsr>(std::move(csr));
}

}  // namespace pieck
