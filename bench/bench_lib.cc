#include "bench/bench_lib.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace pieck::bench {

const char* DatasetName(BenchDataset d) {
  switch (d) {
    case BenchDataset::kMl100k:
      return "ML-100K";
    case BenchDataset::kMl1m:
      return "ML-1M";
    case BenchDataset::kAz:
      return "AZ";
  }
  return "?";
}

ExperimentConfig MakeBenchConfig(BenchDataset dataset, ModelKind model,
                                 const FlagParser& flags) {
  ExperimentConfig config;
  const bool full = flags.GetBool("full", false);

  double scale;
  double participation = 0.27;  // paper's users-per-round / total users
  switch (dataset) {
    case BenchDataset::kMl100k:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.3);
      config.dataset = MovieLens100KConfig(scale);
      participation = 256.0 / 943.0;
      break;
    case BenchDataset::kMl1m:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.12);
      config.dataset = MovieLens1MConfig(scale);
      participation = 256.0 / 6040.0;
      break;
    case BenchDataset::kAz:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.12);
      config.dataset = AmazonDigitalMusicConfig(scale);
      // AZ interactions scale with users to preserve the paper's
      // per-user rate of ~10 (sparsity stays ~99%).
      config.dataset.num_interactions = static_cast<int64_t>(
          169781.0 * scale);
      participation = (model == ModelKind::kMatrixFactorization
                           ? 1024.0
                           : 256.0) /
                      16566.0;
      break;
  }

  config.model_kind = model;
  config.embedding_dim = static_cast<int>(flags.GetInt("dim", 16));
  config.learning_rate =
      model == ModelKind::kMatrixFactorization ? 1.0 : 0.005;
  config.users_per_round = std::max(
      8, static_cast<int>(participation * config.dataset.num_users));
  // DL-FRS converges more slowly at the same participation.
  int default_rounds =
      model == ModelKind::kMatrixFactorization ? 150 : 300;
  config.rounds = static_cast<int>(flags.GetInt("rounds", default_rounds));
  config.malicious_fraction = flags.GetDouble("malicious", 0.05);
  config.aggregator_params.malicious_fraction = config.malicious_fraction;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  return config;
}

void ApplyAttackCalibration(ExperimentConfig& config, AttackKind attack) {
  config.attack = attack;
  switch (attack) {
    case AttackKind::kPieckUea:
      // UEA needs a larger mined set than IPE so the popular span covers
      // the embedding space (§VI-D; the paper likewise tunes N upward
      // for UEA in Tables VII and IX).
      config.attack_config.mined_top_n = 20;
      break;
    case AttackKind::kPieckIpe:
      config.attack_config.mined_top_n = 10;
      break;
    default:
      break;
  }
}

ExperimentResult MustRun(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

std::string Pct(double fraction) { return FormatPercent(fraction); }

}  // namespace pieck::bench
