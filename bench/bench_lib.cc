#include "bench/bench_lib.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/string_util.h"
#include "data/interaction_csr.h"
#include "fed/client_state_store.h"

namespace pieck::bench {

const char* DatasetName(BenchDataset d) {
  switch (d) {
    case BenchDataset::kMl100k:
      return "ML-100K";
    case BenchDataset::kMl1m:
      return "ML-1M";
    case BenchDataset::kAz:
      return "AZ";
  }
  return "?";
}

ExperimentConfig MakeBenchConfig(BenchDataset dataset, ModelKind model,
                                 const FlagParser& flags) {
  ExperimentConfig config;
  const bool full = flags.GetBool("full", false);

  double scale;
  double participation = 0.27;  // paper's users-per-round / total users
  switch (dataset) {
    case BenchDataset::kMl100k:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.3);
      config.dataset = MovieLens100KConfig(scale);
      participation = 256.0 / 943.0;
      break;
    case BenchDataset::kMl1m:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.12);
      config.dataset = MovieLens1MConfig(scale);
      participation = 256.0 / 6040.0;
      break;
    case BenchDataset::kAz:
      scale = flags.GetDouble("scale", full ? 1.0 : 0.12);
      config.dataset = AmazonDigitalMusicConfig(scale);
      // AZ interactions scale with users to preserve the paper's
      // per-user rate of ~10 (sparsity stays ~99%).
      config.dataset.num_interactions = static_cast<int64_t>(
          169781.0 * scale);
      participation = (model == ModelKind::kMatrixFactorization
                           ? 1024.0
                           : 256.0) /
                      16566.0;
      break;
  }

  config.model_kind = model;
  config.embedding_dim = static_cast<int>(flags.GetInt("dim", 16));
  config.learning_rate =
      model == ModelKind::kMatrixFactorization ? 1.0 : 0.005;
  config.users_per_round = std::min(
      std::max(8, static_cast<int>(participation * config.dataset.num_users)),
      config.dataset.num_users);
  // DL-FRS converges more slowly at the same participation.
  int default_rounds =
      model == ModelKind::kMatrixFactorization ? 150 : 300;
  config.rounds = static_cast<int>(flags.GetInt("rounds", default_rounds));
  config.malicious_fraction = flags.GetDouble("malicious", 0.05);
  config.aggregator_params.malicious_fraction = config.malicious_fraction;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  return config;
}

void ApplyAttackCalibration(ExperimentConfig& config, AttackKind attack) {
  config.attack = attack;
  switch (attack) {
    case AttackKind::kPieckUea:
      // UEA needs a larger mined set than IPE so the popular span covers
      // the embedding space (§VI-D; the paper likewise tunes N upward
      // for UEA in Tables VII and IX).
      config.attack_config.mined_top_n = 20;
      break;
    case AttackKind::kPieckIpe:
      config.attack_config.mined_top_n = 10;
      break;
    default:
      break;
  }
}

ExperimentResult MustRun(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

std::string Pct(double fraction) { return FormatPercent(fraction); }

WorkloadConfig ParseWorkloadFlags(const FlagParser& flags) {
  WorkloadConfig w;
  const std::string participation =
      flags.GetString("workload", "uniform");
  if (participation == "uniform") {
    w.participation = ParticipationKind::kUniform;
  } else if (participation == "zipf") {
    w.participation = ParticipationKind::kZipf;
  } else if (participation == "exponential") {
    w.participation = ParticipationKind::kExponential;
  } else {
    std::fprintf(stderr,
                 "unknown --workload '%s' (uniform|zipf|exponential)\n",
                 participation.c_str());
    std::exit(1);
  }
  w.zipf_exponent = flags.GetDouble("zipf_s", w.zipf_exponent);
  w.exponential_rate = flags.GetDouble("exp_rate", w.exponential_rate);
  w.diurnal_amplitude = flags.GetDouble("diurnal_amp", w.diurnal_amplitude);
  w.diurnal_period =
      static_cast<int>(flags.GetInt("diurnal_period", w.diurnal_period));
  w.churn.join_rate = flags.GetDouble("churn_join", w.churn.join_rate);
  w.churn.leave_rate = flags.GetDouble("churn_leave", w.churn.leave_rate);
  w.churn.initial_active =
      flags.GetDouble("churn_initial", w.churn.initial_active);
  w.hot_item_fraction = flags.GetDouble("hot_frac", w.hot_item_fraction);
  w.hot_item_rate = flags.GetDouble("hot_rate", w.hot_item_rate);
  if (Status st = w.Validate(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(1);
  }
  return w;
}

namespace {

/// SplitMix64: cheap, well-mixed per-user hash for synthetic adjacency.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashDoubles(uint64_t h, const double* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV fold of the final global model (the fingerprint
/// --backend_compare matches bitwise between RAM and mmap runs).
uint64_t GlobalModelDigest(const GlobalModel& g) {
  uint64_t h = HashDoubles(0xcbf29ce484222325ULL,
                           g.item_embeddings.data().data(),
                           g.item_embeddings.data().size());
  for (size_t l = 0; l < g.mlp_weights.size(); ++l) {
    h = HashDoubles(h, g.mlp_weights[l].data().data(),
                    g.mlp_weights[l].data().size());
    h = HashDoubles(h, g.mlp_biases[l].data(), g.mlp_biases[l].size());
  }
  return HashDoubles(h, g.projection.data(), g.projection.size());
}

}  // namespace

int64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

ScaleSweepResult RunScaleSweep(const ScaleSweepConfig& config) {
  using Clock = std::chrono::steady_clock;
  if (config.num_users <= 0 || config.num_items < 2 || config.dim <= 0 ||
      config.interactions_per_user <= 0 || config.rounds <= 0 ||
      config.users_per_round <= 0 || config.num_threads < 0) {
    std::fprintf(stderr,
                 "scale sweep config invalid: users=%d items=%d (need >= 2) "
                 "ipu=%d dim=%d rounds=%d batch=%d threads=%d\n",
                 config.num_users, config.num_items,
                 config.interactions_per_user, config.dim, config.rounds,
                 config.users_per_round, config.num_threads);
    std::exit(1);
  }
  ScaleSweepResult result;
  result.config = config;
  const auto t_setup = Clock::now();

  // The store directory (mmap storage only) must outlive the store; an
  // empty --store_dir resolves to an owned temp dir deleted on return.
  StorageConfig storage = config.storage;
  std::shared_ptr<StoreDir> store_dir;
  if (storage.kind == StorageKind::kMmap) {
    auto resolved = StoreDir::Resolve(storage.dir);
    if (!resolved.ok()) {
      std::fprintf(stderr, "scale sweep store dir failed: %s\n",
                   resolved.status().ToString().c_str());
      std::exit(1);
    }
    store_dir = *resolved;
    storage.dir = store_dir->path();
  }

  // Hash-derived sparse adjacency: each user interacts with
  // `interactions_per_user` stride-spaced items, streamed user by user
  // into the CSR builder (the builder drops duplicate pairs, which are
  // possible when the stride wraps) — never materialized as an
  // interaction list, so setup stays O(population) in time and O(1) in
  // heap under mmap storage. With hot-item skew configured, a
  // `hot_item_rate` fraction of interactions is redirected (per-pair
  // hash decision) into the hottest `hot_item_fraction` slice of the
  // item space — the long-tail regime PIECK's popularity mining feeds
  // on, at hash-generator cost.
  const bool hot_skew = config.workload.hot_item_rate > 0.0 &&
                        config.workload.hot_item_fraction > 0.0;
  const int hot_count =
      hot_skew ? std::max(1, static_cast<int>(std::llround(
                                 config.workload.hot_item_fraction *
                                 config.num_items)))
               : 0;
  auto builder =
      storage.kind == StorageKind::kMmap
          ? std::make_unique<InteractionCsrBuilder>(
                config.num_users, config.num_items,
                store_dir->FilePath("csr_offsets.bin"),
                store_dir->FilePath("csr_items.bin"))
          : std::make_unique<InteractionCsrBuilder>(config.num_users,
                                                    config.num_items);
  std::vector<int> user_items(
      static_cast<size_t>(config.interactions_per_user));
  for (int u = 0; u < config.num_users; ++u) {
    const uint64_t h = Mix(config.seed ^ static_cast<uint64_t>(u));
    const int base =
        static_cast<int>(h % static_cast<uint64_t>(config.num_items));
    const int step = 1 + static_cast<int>((h >> 32) % static_cast<uint64_t>(
                                              config.num_items - 1));
    for (int j = 0; j < config.interactions_per_user; ++j) {
      int item = static_cast<int>(
          (static_cast<int64_t>(base) + static_cast<int64_t>(j) * step) %
          config.num_items);
      if (hot_skew) {
        const uint64_t hj = Mix(h ^ (static_cast<uint64_t>(j) + 1));
        if (static_cast<double>(hj % 1000000) <
            config.workload.hot_item_rate * 1000000.0) {
          item = static_cast<int>((hj >> 20) %
                                  static_cast<uint64_t>(hot_count));
        }
      }
      user_items[static_cast<size_t>(j)] = item;
    }
    if (Status st = builder->AddUser(user_items.data(), user_items.size());
        !st.ok()) {
      std::fprintf(stderr, "scale sweep adjacency failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  auto csr = builder->Finish();
  if (!csr.ok()) {
    std::fprintf(stderr, "scale sweep CSR failed: %s\n",
                 csr.status().ToString().c_str());
    std::exit(1);
  }
  builder.reset();
  result.num_interactions = csr->num_interactions();

  auto model = MakeModel(ModelKind::kMatrixFactorization, config.dim);
  Rng master(config.seed);
  Rng init_rng = master.Fork();
  GlobalModel global = model->InitGlobalModel(config.num_items, init_rng);

  ClientStateStore store(*model, std::move(*csr),
                         std::make_shared<const NegativeSampler>(1.0),
                         LossKind::kBce, 1.0, storage);
  // One derived seed base instead of an 8 B/user key array: user u's
  // stream is SplitMix64-derived on access, identical for RAM and mmap
  // runs of the same seed (which --backend_compare relies on).
  store.set_user_seed_base(master.ForkSeed());

  ServerConfig server_config;
  server_config.learning_rate = 1.0;
  server_config.users_per_round = config.users_per_round;
  server_config.num_threads = config.num_threads;
  server_config.workload = config.workload;
  server_config.workload.seed ^= config.seed;
  server_config.async = config.async;
  FederatedServer server(*model, std::move(global), server_config,
                         std::make_unique<SumAggregator>());
  result.setup_seconds =
      std::chrono::duration<double>(Clock::now() - t_setup).count();

  Rng round_rng = master.Fork();
  const std::vector<ClientInterface*> no_malicious;
  std::vector<RoundStats> round_stats;
  round_stats.reserve(static_cast<size_t>(config.rounds));
  const auto t_rounds = Clock::now();
  server.RunRounds(store, no_malicious, 0, config.rounds, round_rng,
                   &round_stats);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t_rounds).count();

  for (const RoundStats& s : round_stats) {
    result.latencies.RecordRound(s.select_ms, s.train_ms, s.route_ms,
                                 s.apply_ms, s.interaction_ms, s.stall_ms);
    result.dropped_stale += s.dropped_stale;
    result.max_staleness = std::max(result.max_staleness, s.max_staleness);
    if (s.staleness_counts.size() > result.staleness_hist.size()) {
      result.staleness_hist.resize(s.staleness_counts.size(), 0);
    }
    for (size_t i = 0; i < s.staleness_counts.size(); ++i) {
      result.staleness_hist[i] += s.staleness_counts[i];
    }
  }
  int64_t stale_total = 0;
  int64_t stale_weighted = 0;
  for (size_t s = 0; s < result.staleness_hist.size(); ++s) {
    stale_total += result.staleness_hist[s];
    stale_weighted += static_cast<int64_t>(s) * result.staleness_hist[s];
  }
  if (stale_total > 0) {
    result.mean_staleness =
        static_cast<double>(stale_weighted) / static_cast<double>(stale_total);
  }
  result.pipeline_depth = config.async.pipeline_depth;
  const RoundStats last = round_stats.back();

  result.rounds_per_sec = config.rounds / seconds;
  result.clients_per_sec =
      static_cast<double>(last.uploads_built) * config.rounds / seconds;
  result.store_bytes = last.store_footprint_bytes;
  result.arena_bytes = last.scratch_bytes_in_use;
  result.select_ms = last.select_ms;
  result.train_ms = last.train_ms;
  result.route_ms = last.route_ms;
  result.apply_ms = last.apply_ms;
  result.router_shards = last.router_shards;
  result.router_entries = last.router_entries;
  result.active_benign_final = last.active_benign;
  result.num_selected_final = last.num_selected;
  result.bytes_per_user =
      static_cast<double>(result.store_bytes) / config.num_users;
  result.peak_rss_bytes = PeakRssBytes();

  result.store_backing_bytes = last.store_backing_bytes;
  const StorageCounters counters = store.storage_counters();
  result.cache_hits = counters.hits;
  result.cache_misses = counters.misses;
  result.cache_evictions = counters.evictions;
  result.cache_writebacks = counters.writebacks;
  result.cache_hit_rate = counters.hit_rate();
  if (config.storage.kind == StorageKind::kMmap) {
    result.io_engine = IoEngineToString(store.storage_io_engine());
    result.io_read_runs = counters.io_read_runs;
    result.io_write_runs = counters.io_write_runs;
    result.staged_rows = counters.staged_rows;
    result.staged_hits = counters.staged_hits;
    result.prefetched_rows = counters.prefetched_rows;
    result.prefetch_ranges = counters.prefetch_ranges;
    result.trims = counters.trims;
    result.shard_counters = store.storage_shard_counters();
  }
  result.round_losses.reserve(round_stats.size());
  for (const RoundStats& s : round_stats) {
    result.round_losses.push_back(s.mean_benign_loss);
  }
  result.model_digest = GlobalModelDigest(server.global());
  return result;
}

}  // namespace pieck::bench
