// Supplementary Table XI: generality across client loss functions — the
// PIECK attacks and the regularization defense under BCE vs BPR training
// (MF-FRS, ML-100K-like). Paper shape: both attacks remain effective and
// the defense remains protective under BPR.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  struct Case {
    AttackKind attack;
    DefenseKind defense;
  };
  const std::vector<Case> cases = {
      {AttackKind::kNone, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kOurs},
      {AttackKind::kPieckUea, DefenseKind::kNoDefense},
      {AttackKind::kPieckUea, DefenseKind::kOurs},
  };

  std::printf("== Table XI: BCE vs BPR client loss (MF, ML-100K-like) ==\n");
  TablePrinter table({"Attack", "Defense", "BCE ER@10", "BCE HR@10",
                      "BPR ER@10", "BPR HR@10"});
  for (const Case& c : cases) {
    std::vector<std::string> row = {AttackKindToString(c.attack),
                                    DefenseKindToString(c.defense)};
    for (LossKind loss : {LossKind::kBce, LossKind::kBpr}) {
      ExperimentConfig config = MakeBenchConfig(
          BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
      ApplyAttackCalibration(config, c.attack);
      config.defense = c.defense;
      config.loss = loss;
      ExperimentResult result = MustRun(config);
      row.push_back(Pct(result.er_at_k));
      row.push_back(Pct(result.hr_at_k));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
