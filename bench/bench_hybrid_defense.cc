// Extension bench (the paper's §VII future-work direction): a
// collaborative defense combining the client-side regularizers (Re1/Re2)
// with server-side norm bounding. On DL-FRS the embedding-space
// regularizers alone cannot stop poison that saturates the learnable
// interaction function; adding a mild server-side clip (0.05 — an order
// of magnitude looser than the clip NormBound alone needs on MF-FRS)
// closes that gap with HR intact.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double dl_norm_bound = flags.GetDouble("norm-bound", 0.05);

  std::printf("== Extension: collaborative (client+server) defense, DL-FRS "
              "ML-100K-like ==\n");
  TablePrinter table({"Attack", "NoDefense ER/HR", "Ours ER/HR",
                      "Ours+NormBound ER/HR"});
  for (AttackKind attack : {AttackKind::kPieckIpe, AttackKind::kPieckUea,
                            AttackKind::kAHum}) {
    std::vector<std::string> row = {AttackKindToString(attack)};
    for (DefenseKind defense :
         {DefenseKind::kNoDefense, DefenseKind::kOurs,
          DefenseKind::kOursPlusNormBound}) {
      ExperimentConfig config =
          MakeBenchConfig(BenchDataset::kMl100k, ModelKind::kNeuralCf, flags);
      ApplyAttackCalibration(config, attack);
      config.defense = defense;
      config.aggregator_params.norm_bound = dl_norm_bound;
      ExperimentResult result = MustRun(config);
      row.push_back(Pct(result.er_at_k) + " / " + Pct(result.hr_at_k));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
