// Fig. 4: popularity ranks of the top-50 items by per-round Δ-Norm at
// rounds 4, 8, 20, and 80, for MF-FRS and DL-FRS. The paper's claim:
// early on a few unpopular items sneak into the top-50, but from ~round
// 20 the top-50 is dominated by popular items (Properties 1-2).

#include <cstdio>
#include <set>

#include "bench/bench_lib.h"
#include "metrics/evaluation.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void RunModel(ModelKind kind, const FlagParser& flags) {
  ExperimentConfig config = MakeBenchConfig(BenchDataset::kMl100k, kind, flags);
  config.attack = AttackKind::kNone;
  auto sim_or = Simulation::Create(config);
  if (!sim_or.ok()) {
    std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
    std::exit(1);
  }
  auto sim = std::move(sim_or).value();

  std::printf("== Fig. 4 (%s) ==\n", ModelKindToString(kind));
  const std::set<int> checkpoints = {4, 8, 20, 80};
  const int top_k = 50;
  const int popular_cutoff =
      static_cast<int>(0.15 * sim->train().num_items());

  Matrix previous = sim->global().item_embeddings;
  for (int r = 1; r <= 80; ++r) {
    sim->RunRound();
    const Matrix& current = sim->global().item_embeddings;
    if (checkpoints.count(r) > 0) {
      Vec delta(current.rows());
      for (size_t j = 0; j < current.rows(); ++j) {
        double sq = 0.0;
        for (size_t c = 0; c < current.cols(); ++c) {
          double d = current.At(j, c) - previous.At(j, c);
          sq += d * d;
        }
        delta[j] = std::sqrt(sq);
      }
      std::vector<int> ranks =
          TopDeltaNormPopularityRanks(delta, sim->train(), top_k);
      int popular_hits = 0;
      for (int rank : ranks) popular_hits += rank < popular_cutoff ? 1 : 0;
      std::printf("round %2d: %d/%d of top-%d Δ-Norm items are popular "
                  "(top-15%%); sample ranks:",
                  r, popular_hits, top_k, top_k);
      for (size_t i = 0; i < ranks.size(); i += 5) {
        std::printf(" %d", ranks[i]);
      }
      std::printf("\n");
    }
    previous = current;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  RunModel(ModelKind::kMatrixFactorization, flags);
  RunModel(ModelKind::kNeuralCf, flags);
  return 0;
}
