// Table II: PKL (average pairwise KL divergence between mined popular
// item embeddings and covered user embeddings, Eq. 9) and UCR (user
// coverage ratio) for N ∈ {1, 10, 50, 150} after convergence, for both
// MF-FRS and DL-FRS on the ML-100K-like dataset without malicious users.
// Paper shape: UCR ≈ 0.98+ from N = 10; PKL small and fairly flat.

#include <cstdio>

#include "attack/popular_item_miner.h"
#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"
#include "metrics/evaluation.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::vector<int> sizes = {1, 10, 50, 150};

  TablePrinter pkl_table({"Metric", "Model", "N=1", "N=10", "N=50", "N=150"});
  std::vector<std::string> ucr_row;

  for (ModelKind kind :
       {ModelKind::kMatrixFactorization, ModelKind::kNeuralCf}) {
    ExperimentConfig config =
        MakeBenchConfig(BenchDataset::kMl100k, kind, flags);
    config.rounds = static_cast<int>(flags.GetInt("rounds", 200));
    auto sim_or = Simulation::Create(config);
    if (!sim_or.ok()) {
      std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
      return 1;
    }
    auto sim = std::move(sim_or).value();

    // Mine with a generously sized top-N, then re-rank per N.
    PopularItemMiner miner(/*mining_rounds=*/2, /*top_n=*/150);
    for (int r = 0; r < config.rounds; ++r) {
      sim->RunRound();
      if (r < 3) miner.Observe(sim->global().item_embeddings);
    }

    std::vector<std::string> row = {"PKL", ModelKindToString(kind)};
    std::vector<std::string> ucr = {"UCR", ModelKindToString(kind)};
    for (int n : sizes) {
      std::vector<int> popular = miner.TopItems(n);
      double pkl = PairwiseKlDivergence(sim->global(),
                                        sim->benign_eval_view(),
                                        sim->train(), popular,
                                        sim->eval_pool());
      double cov = UserCoverageRatio(sim->train(), popular);
      row.push_back(FormatDouble(pkl, 4));
      ucr.push_back(FormatDouble(cov, 4));
    }
    pkl_table.AddRow(row);
    pkl_table.AddRow(ucr);
  }

  std::printf("== Table II: PKL and UCR vs mined popular set size N ==\n%s",
              pkl_table.ToString().c_str());
  return 0;
}
