// Fig. 5: effect of the malicious-user ratio p̃ ∈ {1, 5, 10, 15}% and of
// the mined popular item number N ∈ {5, 10, 50, 250} on the PIECK
// attacks, with and without the regularization defense (MF-FRS,
// ML-100K-like). Paper shape: ER grows with p̃ and degrades for
// excessive N; the defense keeps ER near zero everywhere with HR close
// to the NoAttack level.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void SweepRatio(const FlagParser& flags) {
  std::printf("== Fig. 5(a)/(b): attacks and defense vs p~ ==\n");
  TablePrinter table({"p~ (%)", "Attack", "NoDef ER@10", "NoDef HR@10",
                      "Ours ER@10", "Ours HR@10"});
  for (double ratio : {0.01, 0.05, 0.10, 0.15}) {
    for (AttackKind attack :
         {AttackKind::kPieckIpe, AttackKind::kPieckUea}) {
      std::vector<std::string> row = {FormatDouble(ratio * 100, 0),
                                      AttackKindToString(attack)};
      for (DefenseKind defense :
           {DefenseKind::kNoDefense, DefenseKind::kOurs}) {
        ExperimentConfig config = MakeBenchConfig(
            BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
        ApplyAttackCalibration(config, attack);
        config.malicious_fraction = ratio;
        config.aggregator_params.malicious_fraction = ratio;
        config.defense = defense;
        ExperimentResult result = MustRun(config);
        row.push_back(Pct(result.er_at_k));
        row.push_back(Pct(result.hr_at_k));
      }
      table.AddRow(row);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SweepMinedN(const FlagParser& flags) {
  std::printf("== Fig. 5(c)/(d): attacks and defense vs N ==\n");
  TablePrinter table({"N", "Attack", "NoDef ER@10", "NoDef HR@10",
                      "Ours ER@10", "Ours HR@10"});
  for (int n : {5, 10, 50, 250}) {
    for (AttackKind attack :
         {AttackKind::kPieckIpe, AttackKind::kPieckUea}) {
      std::vector<std::string> row = {std::to_string(n),
                                      AttackKindToString(attack)};
      for (DefenseKind defense :
           {DefenseKind::kNoDefense, DefenseKind::kOurs}) {
        ExperimentConfig config = MakeBenchConfig(
            BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
        ApplyAttackCalibration(config, attack);
        config.attack_config.mined_top_n = n;
        config.defense = defense;
        ExperimentResult result = MustRun(config);
        row.push_back(Pct(result.er_at_k));
        row.push_back(Pct(result.hr_at_k));
      }
      table.AddRow(row);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  SweepRatio(flags);
  SweepMinedN(flags);
  return 0;
}
