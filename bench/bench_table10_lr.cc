// Supplementary Table X: inconsistent client/server learning rates —
// (1) consistent η = 1.0 everywhere, (2) clients fixed at η_i = 0.01,
// (3) clients drawing dynamic η_i ∈ [0.01, 1.0]. Paper shape: mismatch
// degrades HR (severely in the dynamic case) while PIECK stays effective
// in well-configured systems.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  struct Scenario {
    const char* name;
    double client_lr;  // < 0 -> same as server
    bool dynamic;
  };
  const std::vector<Scenario> scenarios = {
      {"eta_i = 1.0 (consistent)", -1.0, false},
      {"eta_i = 0.01 (fixed mismatch)", 0.01, false},
      {"eta_i ~ [0.01, 1.0] (dynamic)", -1.0, true},
  };

  std::printf("== Table X: inconsistent learning rates (MF, ML-100K-like) "
              "==\n");
  TablePrinter table({"Client rate", "Attack", "ER@10", "HR@10"});
  for (const Scenario& s : scenarios) {
    for (AttackKind attack : {AttackKind::kNone, AttackKind::kPieckIpe,
                              AttackKind::kPieckUea}) {
      ExperimentConfig config = MakeBenchConfig(
          BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
      ApplyAttackCalibration(config, attack);
      config.client_learning_rate = s.client_lr;
      config.client_lr_dynamic = s.dynamic;
      ExperimentResult result = MustRun(config);
      table.AddRow({s.name, AttackKindToString(attack), Pct(result.er_at_k),
                    Pct(result.hr_at_k)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
