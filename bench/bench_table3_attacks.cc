// Table III: ER@10 / HR@10 of all seven attacks on MF-FRS and DL-FRS
// with no defense (p̃ = 5%). Paper shape on MF: PIECK-UEA ≥ PIECK-IPE ≫
// A-HUM > PIPA > {A-RA, FedRecA, NoAttack} ≈ 0, HR unaffected; on DL all
// PIECK/PIPA/A-RA/A-HUM reach ~100%.
//
// Defaults to the ML-100K-like dataset; pass --all-datasets for the full
// three-dataset sweep (slower).

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::vector<BenchDataset> datasets = {BenchDataset::kMl100k};
  if (flags.GetBool("all-datasets", false)) {
    datasets = {BenchDataset::kMl100k, BenchDataset::kMl1m, BenchDataset::kAz};
  }
  const std::vector<AttackKind> attacks = {
      AttackKind::kNone,      AttackKind::kFedRecAttack,
      AttackKind::kPipAttack, AttackKind::kARa,
      AttackKind::kAHum,      AttackKind::kPieckIpe,
      AttackKind::kPieckUea};

  for (ModelKind kind :
       {ModelKind::kMatrixFactorization, ModelKind::kNeuralCf}) {
    std::printf("== Table III (%s, no defense, p~=5%%) ==\n",
                ModelKindToString(kind));
    std::vector<std::string> header = {"Attack"};
    for (BenchDataset d : datasets) {
      header.push_back(std::string(DatasetName(d)) + " ER@10");
      header.push_back(std::string(DatasetName(d)) + " HR@10");
    }
    TablePrinter table(header);

    for (AttackKind attack : attacks) {
      std::vector<std::string> row = {AttackKindToString(attack)};
      for (BenchDataset d : datasets) {
        ExperimentConfig config = MakeBenchConfig(d, kind, flags);
        ApplyAttackCalibration(config, attack);
        ExperimentResult result = MustRun(config);
        row.push_back(Pct(result.er_at_k));
        row.push_back(Pct(result.hr_at_k));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
