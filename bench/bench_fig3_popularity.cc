// Fig. 3: item popularity follows a long-tail distribution. For the
// ML-100K-like and AZ-like datasets, prints the interaction counts along
// the popularity ranking and the two paper callouts: the share of
// interactions held by the top-15% items (> 50%) and the number of items
// needed to cover half of all interactions.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void Report(const char* name, const Dataset& ds) {
  std::printf("== Fig. 3 (%s): %s ==\n", name, ds.DebugString().c_str());

  std::vector<int> order = ds.ItemsByPopularity();
  const auto& pop = ds.ItemPopularity();

  TablePrinter table({"pop-rank", "#interactions"});
  for (size_t r = 0; r < order.size();
       r += std::max<size_t>(1, order.size() / 12)) {
    table.AddRow({std::to_string(r),
                  std::to_string(pop[static_cast<size_t>(order[r])])});
  }
  std::printf("%s", table.ToString().c_str());

  // Items needed to reach 50% of interactions.
  int64_t half = ds.num_interactions() / 2;
  int64_t acc = 0;
  size_t needed = 0;
  while (needed < order.size() && acc < half) {
    acc += pop[static_cast<size_t>(order[needed])];
    ++needed;
  }
  double top15 = ds.InteractionShareOfTopItems(0.15);
  std::printf(
      "top-15%% items (%d of %d) hold %s%% of interactions (paper: >50%%)\n",
      static_cast<int>(0.15 * ds.num_items()), ds.num_items(),
      Pct(top15).c_str());
  std::printf("items covering 50%% of interactions: %zu (%.1f%% of items)\n\n",
              needed, 100.0 * static_cast<double>(needed) /
                          static_cast<double>(ds.num_items()));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  ExperimentConfig ml =
      MakeBenchConfig(BenchDataset::kMl100k, ModelKind::kMatrixFactorization,
                      flags);
  ExperimentConfig az = MakeBenchConfig(
      BenchDataset::kAz, ModelKind::kMatrixFactorization, flags);

  auto ml_ds = GenerateSynthetic(ml.dataset);
  auto az_ds = GenerateSynthetic(az.dataset);
  if (!ml_ds.ok() || !az_ds.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  Report("MovieLens-100K synthetic", *ml_ds);
  Report("Amazon Digital Music synthetic", *az_ds);
  return 0;
}
