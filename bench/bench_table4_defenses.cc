// Table IV: every defense against the top-3 attacks (A-HUM, PIECK-IPE,
// PIECK-UEA) on the ML-100K-like dataset, MF-FRS and DL-FRS. Paper
// shape: classical robust aggregation cannot reliably stop PIECK (the
// poisonous gradients dominate the cold target, §V-A), while the
// regularization defense ("Ours") drives ER to ~0 with HR intact.
//
// Pass --skip-dl to run the MF half only (DL rounds are slower).

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const std::vector<DefenseKind> defenses = {
      DefenseKind::kNoDefense, DefenseKind::kNormBound,
      DefenseKind::kMedian,    DefenseKind::kTrimmedMean,
      DefenseKind::kKrum,      DefenseKind::kMultiKrum,
      DefenseKind::kBulyan,    DefenseKind::kOurs};
  const std::vector<AttackKind> attacks = {
      AttackKind::kAHum, AttackKind::kPieckIpe, AttackKind::kPieckUea};

  std::vector<ModelKind> models = {ModelKind::kMatrixFactorization,
                                   ModelKind::kNeuralCf};
  if (flags.GetBool("skip-dl", false)) models.pop_back();

  for (ModelKind kind : models) {
    std::printf("== Table IV (%s, ML-100K-like, p~=5%%) ==\n",
                ModelKindToString(kind));
    std::vector<std::string> header = {"Defense"};
    for (AttackKind a : attacks) {
      header.push_back(std::string(AttackKindToString(a)) + " ER@10");
      header.push_back(std::string(AttackKindToString(a)) + " HR@10");
    }
    TablePrinter table(header);

    for (DefenseKind defense : defenses) {
      std::vector<std::string> row = {DefenseKindToString(defense)};
      for (AttackKind attack : attacks) {
        ExperimentConfig config =
            MakeBenchConfig(BenchDataset::kMl100k, kind, flags);
        ApplyAttackCalibration(config, attack);
        config.defense = defense;
        ExperimentResult result = MustRun(config);
        row.push_back(Pct(result.er_at_k));
        row.push_back(Pct(result.hr_at_k));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  return 0;
}
