// Table V: effect of the recommendation list length K ∈ {5, 20} on the
// PIECK attacks and the defense (MF-FRS, ML-100K-like). Paper shape:
// the attacks stay effective and the defense stays protective across K.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  struct Case {
    AttackKind attack;
    DefenseKind defense;
  };
  const std::vector<Case> cases = {
      {AttackKind::kNone, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kOurs},
      {AttackKind::kPieckUea, DefenseKind::kNoDefense},
      {AttackKind::kPieckUea, DefenseKind::kOurs},
  };

  std::printf("== Table V: effect of K (MF-FRS, ML-100K-like) ==\n");
  TablePrinter table({"Attack", "Defense", "ER@5", "HR@5", "ER@20", "HR@20"});
  for (const Case& c : cases) {
    std::vector<std::string> row = {AttackKindToString(c.attack),
                                    DefenseKindToString(c.defense)};
    for (int k : {5, 20}) {
      ExperimentConfig config = MakeBenchConfig(
          BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
      ApplyAttackCalibration(config, c.attack);
      config.defense = c.defense;
      config.top_k = k;
      ExperimentResult result = MustRun(config);
      row.push_back(Pct(result.er_at_k));
      row.push_back(Pct(result.hr_at_k));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
