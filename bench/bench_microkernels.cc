// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// simulation: embedding math, model forward/backward, Δ-Norm mining,
// robust aggregation, and the full federated round loop. These bound
// the per-round costs reported in Fig. 6(b).
//
// The round-loop benchmark compares the serial and threaded engines:
//   bench_microkernels --threads=8 --benchmark_filter=FederatedRound
// registers BM_FederatedRound at 1 thread and at the requested count
// (default: one per hardware thread).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "attack/popular_item_miner.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/simulation.h"
#include "defense/robust_aggregators.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/math.h"

namespace pieck {
namespace {

void BM_Dot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a, b));
  }
}
BENCHMARK(BM_Dot)->Arg(16)->Arg(64)->Arg(256);

void BM_CosineGrad(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarityGradWrtB(a, b));
  }
}
BENCHMARK(BM_CosineGrad)->Arg(16)->Arg(64);

void BM_MfForwardBackward(benchmark::State& state) {
  MfModel model(static_cast<int>(state.range(0)));
  Rng rng(3);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   nullptr);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_MfForwardBackward)->Arg(16)->Arg(64);

void BM_NcfForwardBackward(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  NcfModel model(dim, {dim, dim / 2});
  Rng rng(4);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  InteractionGrads igrads = InteractionGrads::ZerosLike(g);
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   &igrads);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_NcfForwardBackward)->Arg(16)->Arg(32);

void BM_MinerObserve(benchmark::State& state) {
  const size_t items = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix snapshot(items, 16);
  snapshot.RandomNormal(rng, 0, 0.1);
  PopularItemMiner miner(1 << 20, 10);  // never stops accumulating
  miner.Observe(snapshot);
  for (auto _ : state) {
    snapshot.At(0, 0) += 0.001;
    miner.Observe(snapshot);
  }
}
BENCHMARK(BM_MinerObserve)->Arg(512)->Arg(2048);

void BM_MedianAggregate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<Vec> grads;
  for (int i = 0; i < n; ++i) {
    Vec g(16);
    for (double& v : g) v = rng.Normal(0, 1);
    grads.push_back(std::move(g));
  }
  MedianAggregator agg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Aggregate(grads));
  }
}
BENCHMARK(BM_MedianAggregate)->Arg(8)->Arg(64)->Arg(256);

void BM_FederatedRound(benchmark::State& state, int num_threads) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.25);
  config.embedding_dim = 16;
  config.users_per_round = 128;
  config.num_threads = num_threads;
  config.seed = 7;
  StatusOr<std::unique_ptr<Simulation>> sim = Simulation::Create(config);
  if (!sim.ok()) {
    state.SkipWithError(sim.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    (*sim)->RunRound();
  }
  state.counters["clients/s"] = benchmark::Counter(
      static_cast<double>(config.users_per_round),
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Parses a --threads value; exits with a message on anything that is
/// not a non-negative integer.
int ParseThreadsValue(const char* text) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "error: invalid --threads value: %s\n", text);
    std::exit(1);
  }
  return static_cast<int>(value);
}

/// Strips `--threads=N` / `--threads N` from argv (google-benchmark
/// rejects flags it does not know) and returns N. Absent or 0 means
/// one thread per hardware thread, matching ServerConfig::num_threads.
int ExtractThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = ParseThreadsValue(arg.c_str() + std::strlen("--threads="));
    } else if (arg == "--threads" && i + 1 < *argc && argv[i + 1][0] != '-') {
      threads = ParseThreadsValue(argv[++i]);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads == 0 ? ThreadPool::DefaultThreadCount() : threads;
}

}  // namespace
}  // namespace pieck

int main(int argc, char** argv) {
  const int threads = pieck::ExtractThreadsFlag(&argc, argv);
  // UseRealTime: the point is wall-clock speedup, and CPU-time rates
  // would overstate the threaded engine.
  benchmark::RegisterBenchmark("BM_FederatedRound/threads:1",
                               pieck::BM_FederatedRound, 1)
      ->UseRealTime();
  if (threads > 1) {
    benchmark::RegisterBenchmark(
        ("BM_FederatedRound/threads:" + std::to_string(threads)).c_str(),
        pieck::BM_FederatedRound, threads)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
