// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// simulation: embedding math, model forward/backward, Δ-Norm mining,
// robust aggregation, and the full federated round loop. These bound
// the per-round costs reported in Fig. 6(b).
//
// The round-loop benchmark compares the serial and threaded engines:
//   bench_microkernels --threads=8 --benchmark_filter=FederatedRound
// registers BM_FederatedRound at 1 thread and at the requested count
// (default: one per hardware thread).
//
// The SIMD kernel layer (src/tensor/kernels.h) is benchmarked per
// backend and dimension (`--benchmark_filter=Kernel`), and
//   bench_microkernels --kernels_json=BENCH_kernels.json
// runs a self-timed scalar-vs-SIMD sweep over d ∈ {8,16,32,64,128} and
// writes a machine-readable report (ns/op per kernel/backend/dim plus
// speedups) that later PRs regress against.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "attack/popular_item_miner.h"
#include "bench/bench_lib.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/simulation.h"
#include "defense/robust_aggregators.h"
#include "fed/update_router.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/kernels.h"
#include "tensor/math.h"

namespace pieck {
namespace {

void BM_Dot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a, b));
  }
}
BENCHMARK(BM_Dot)->Arg(16)->Arg(64)->Arg(256);

void BM_CosineGrad(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarityGradWrtB(a, b));
  }
}
BENCHMARK(BM_CosineGrad)->Arg(16)->Arg(64);

void BM_MfForwardBackward(benchmark::State& state) {
  MfModel model(static_cast<int>(state.range(0)));
  Rng rng(3);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   nullptr);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_MfForwardBackward)->Arg(16)->Arg(64);

void BM_NcfForwardBackward(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  NcfModel model(dim, {dim, dim / 2});
  Rng rng(4);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  InteractionGrads igrads = InteractionGrads::ZerosLike(g);
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   &igrads);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_NcfForwardBackward)->Arg(16)->Arg(32);

void BM_MinerObserve(benchmark::State& state) {
  const size_t items = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix snapshot(items, 16);
  snapshot.RandomNormal(rng, 0, 0.1);
  PopularItemMiner miner(1 << 20, 10);  // never stops accumulating
  miner.Observe(snapshot);
  for (auto _ : state) {
    snapshot.At(0, 0) += 0.001;
    miner.Observe(snapshot);
  }
}
BENCHMARK(BM_MinerObserve)->Arg(512)->Arg(2048);

void BM_MedianAggregate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<Vec> grads;
  for (int i = 0; i < n; ++i) {
    Vec g(16);
    for (double& v : g) v = rng.Normal(0, 1);
    grads.push_back(std::move(g));
  }
  MedianAggregator agg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Aggregate(grads));
  }
}
BENCHMARK(BM_MedianAggregate)->Arg(8)->Arg(64)->Arg(256);

void BM_MedianAggregateSpan(benchmark::State& state) {
  // The server's hot path: borrowed pointer span in, pre-sized scratch
  // row out — zero allocations per call (contrast BM_MedianAggregate,
  // which pays the convenience wrapper's output Vec).
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<Vec> grads;
  for (int i = 0; i < n; ++i) {
    Vec g(16);
    for (double& v : g) v = rng.Normal(0, 1);
    grads.push_back(std::move(g));
  }
  std::vector<const Vec*> span;
  for (const Vec& g : grads) span.push_back(&g);
  Vec out(16);
  MedianAggregator agg;
  for (auto _ : state) {
    agg.Aggregate(span, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MedianAggregateSpan)->Arg(8)->Arg(64)->Arg(256);

void BM_ScoreAllItemsRowCopy(benchmark::State& state) {
  // The pre-GEMV evaluation scoring loop: one Row() copy + one dot per
  // item per user.
  const size_t items = static_cast<size_t>(state.range(0));
  MfModel model(32);
  Rng rng(8);
  GlobalModel g = model.InitGlobalModel(static_cast<int>(items), rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec scores(items);
  const KernelTable& k = ActiveKernels();
  for (auto _ : state) {
    for (size_t j = 0; j < items; ++j) {
      Vec v = g.item_embeddings.Row(j);
      scores[j] = k.dot(u.data(), v.data(), v.size());
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(items));
}
BENCHMARK(BM_ScoreAllItemsRowCopy)->Arg(512)->Arg(2048);

void BM_ScoreAllItemsGemv(benchmark::State& state) {
  const size_t items = static_cast<size_t>(state.range(0));
  MfModel model(32);
  Rng rng(8);
  GlobalModel g = model.InitGlobalModel(static_cast<int>(items), rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec scores(items);
  for (auto _ : state) {
    model.ScoreItems(g, u, scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(items));
}
BENCHMARK(BM_ScoreAllItemsGemv)->Arg(512)->Arg(2048);

void BM_FederatedRound(benchmark::State& state, int num_threads) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.25);
  config.embedding_dim = 16;
  config.users_per_round = 128;
  config.num_threads = num_threads;
  config.seed = 7;
  StatusOr<std::unique_ptr<Simulation>> sim = Simulation::Create(config);
  if (!sim.ok()) {
    state.SkipWithError(sim.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    (*sim)->RunRound();
  }
  state.counters["clients/s"] = benchmark::Counter(
      static_cast<double>(config.users_per_round),
      benchmark::Counter::kIsIterationInvariantRate);
}

// ---------------------------------------------------------------------
// SIMD kernel layer: per-backend, per-dimension micro-benchmarks and the
// --kernels_json self-timed sweep.

constexpr size_t kKernelDims[] = {8, 16, 32, 64, 128};
const char* const kKernelNames[] = {
    "dot",  "axpy",          "scale",    "squared_norm", "squared_distance",
    "relu", "relu_backward", "gemv",     "bce_step",     "project_l2ball"};

/// Each timed thunk sweeps the kernel over this many contiguous rows,
/// matching the blocked per-client passes in the rewritten hot loops
/// and amortizing the thunk-call overhead out of the measurement.
constexpr size_t kRowsPerOp = 16;

/// Bundles the working rows one kernel thunk touches (kRowsPerOp rows
/// of dimension d, stored contiguously like embedding-table rows).
struct KernelOperands {
  Vec a, b, y, gu, gv, out;
  explicit KernelOperands(size_t d)
      : a(kRowsPerOp * d), b(kRowsPerOp * d), y(kRowsPerOp * d), gu(d),
        gv(d), out(kRowsPerOp) {
    Rng rng(11);
    for (double& v : a) v = rng.Normal(0, 1);
    for (double& v : b) v = rng.Normal(0, 1);
    for (double& v : y) v = rng.Normal(0, 1);
  }
};

/// Returns a thunk running `kernel` on `t` over kRowsPerOp rows; the
/// thunk owns its operands via the shared_ptr so it can outlive this
/// scope.
std::function<void()> MakeKernelOp(const KernelTable* t,
                                   const std::string& kernel, size_t d) {
  auto ops = std::make_shared<KernelOperands>(d);
  // Reductions store per-row results (like the per-example logits in
  // the training loop) so successive rows stay independent and the
  // measurement is throughput, not exposed latency.
  if (kernel == "dot") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        ops->out[r] = t->dot(ops->a.data() + r * d, ops->b.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->out.data());
    };
  }
  if (kernel == "axpy") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        t->axpy(1e-9, ops->a.data() + r * d, ops->y.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->y.data());
    };
  }
  if (kernel == "scale") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        t->scale(1.0000000001, ops->y.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->y.data());
    };
  }
  if (kernel == "squared_norm") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        ops->out[r] = t->squared_norm(ops->a.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->out.data());
    };
  }
  if (kernel == "squared_distance") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        ops->out[r] = t->squared_distance(ops->a.data() + r * d,
                                          ops->b.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->out.data());
    };
  }
  if (kernel == "relu") {
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        t->relu(ops->a.data() + r * d, ops->y.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->y.data());
    };
  }
  if (kernel == "relu_backward") {
    // In-place mask; idempotent after the first pass, so every timed
    // iteration does identical work.
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        t->relu_backward(ops->a.data() + r * d, ops->y.data() + r * d, d);
      }
      benchmark::DoNotOptimize(ops->y.data());
    };
  }
  if (kernel == "gemv") {
    // The batched multi-dot over kRowsPerOp contiguous rows: the same
    // work as the "dot" thunk, in one call that shares the x loads.
    return [t, ops, d] {
      t->gemv(ops->a.data(), kRowsPerOp, d, ops->b.data(), ops->out.data());
      benchmark::DoNotOptimize(ops->out.data());
    };
  }
  if (kernel == "bce_step") {
    // The fused MF hot-path op (dot + sigmoid + two axpys).
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        ops->out[r] = t->BceStep(1.0, 0.01, ops->a.data() + r * d,
                                 ops->b.data() + r * d, ops->gu.data(),
                                 ops->gv.data(), d);
      }
      benchmark::DoNotOptimize(ops->out.data());
    };
  }
  if (kernel == "project_l2ball") {
    // max_norm far above any row norm: times the dominant no-clip path
    // (norm + compare), the common case in the Δ-norm defense.
    return [t, ops, d] {
      for (size_t r = 0; r < kRowsPerOp; ++r) {
        t->ProjectL2Ball(ops->y.data() + r * d, d, 1e30);
      }
      benchmark::DoNotOptimize(ops->y.data());
    };
  }
  std::fprintf(stderr, "error: unknown kernel benchmark '%s'\n",
               kernel.c_str());
  std::exit(1);
}

void BM_Kernel(benchmark::State& state, const KernelTable* t,
               std::string kernel, size_t d) {
  std::function<void()> op = MakeKernelOp(t, kernel, d);
  for (auto _ : state) op();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRowsPerOp));
}

void RegisterKernelBenchmarks() {
  for (const KernelTable* t : AvailableKernelTables()) {
    for (const char* kernel : kKernelNames) {
      for (size_t d : kKernelDims) {
        std::string name = std::string("BM_Kernel/") + kernel + "/" +
                           KernelBackendName(t->backend) + "/" +
                           std::to_string(d);
        benchmark::RegisterBenchmark(name.c_str(), BM_Kernel, t,
                                     std::string(kernel), d);
      }
    }
  }
}

/// Best-of-5 ns/op for `op`, each trial growing the batch until it runs
/// >= 10 ms so clock granularity is negligible. Best-of (not mean)
/// because on shared/1-vCPU machines the noise is one-sided: trials
/// only ever get slower from preemption, never faster than the code.
/// The std::function call overhead is included identically for every
/// backend, so speedups are mildly understated at small d — never
/// overstated.
double MeasureNsPerOp(const std::function<void()>& op) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < 1000; ++i) op();  // warmup
  double best = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    size_t iters = 2000;
    for (;;) {
      const auto t0 = Clock::now();
      for (size_t i = 0; i < iters; ++i) op();
      const double ns =
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
      if (ns >= 1e7) {
        best = std::min(best, ns / static_cast<double>(iters));
        break;
      }
      iters *= 4;
    }
  }
  return best;
}

/// ER@K-style scoring sweep operands: an item table and one user row.
struct ScoringOperands {
  Matrix items;
  Vec u;
  Vec scores;
  ScoringOperands(size_t rows, size_t d) : items(rows, d), u(d), scores(rows) {
    Rng rng(13);
    items.RandomNormal(rng, 0.0, 1.0);
    for (double& v : u) v = rng.Normal(0.0, 1.0);
  }
};

/// Thunk for the pre-GEMV evaluation path: Row() copy + dot per item.
std::function<void()> MakeRowCopyScoringOp(const KernelTable* t,
                                           size_t rows, size_t d) {
  auto ops = std::make_shared<ScoringOperands>(rows, d);
  return [t, ops, rows] {
    for (size_t j = 0; j < rows; ++j) {
      Vec v = ops->items.Row(j);
      ops->scores[j] = t->dot(ops->u.data(), v.data(), v.size());
    }
    benchmark::DoNotOptimize(ops->scores.data());
  };
}

/// Thunk for the batched path: one gemv over the whole table.
std::function<void()> MakeGemvScoringOp(const KernelTable* t, size_t rows,
                                        size_t d) {
  auto ops = std::make_shared<ScoringOperands>(rows, d);
  return [t, ops, rows, d] {
    t->gemv(ops->items.data().data(), rows, d, ops->u.data(),
            ops->scores.data());
    benchmark::DoNotOptimize(ops->scores.data());
  };
}

/// Span-aggregation sweep operands: one per-item gradient group.
struct AggregationOperands {
  std::vector<Vec> grads;
  std::vector<const Vec*> span;
  Vec out;
  AggregationOperands(size_t n, size_t d) : out(d) {
    Rng rng(17);
    for (size_t i = 0; i < n; ++i) {
      Vec g(d);
      for (double& v : g) v = rng.Normal(0.0, 1.0);
      grads.push_back(std::move(g));
    }
    for (const Vec& g : grads) span.push_back(&g);
  }
};

/// Thunk reproducing the pre-span server path: materialize a
/// vector<Vec> copy of the gradient group, then aggregate it.
std::function<void()> MakeCopyAggregationOp(
    std::shared_ptr<const Aggregator> agg, size_t n, size_t d) {
  auto ops = std::make_shared<AggregationOperands>(n, d);
  return [agg, ops] {
    std::vector<Vec> copies;
    copies.reserve(ops->span.size());
    for (const Vec* g : ops->span) copies.push_back(*g);
    benchmark::DoNotOptimize(agg->Aggregate(copies));
  };
}

/// Thunk for the zero-copy server path: borrowed span in, scratch out.
std::function<void()> MakeSpanAggregationOp(
    std::shared_ptr<const Aggregator> agg, size_t n, size_t d) {
  auto ops = std::make_shared<AggregationOperands>(n, d);
  return [agg, ops] {
    agg->Aggregate(ops->span, ops->out.data());
    benchmark::DoNotOptimize(ops->out.data());
  };
}

/// Routing sweep operands: one synthetic round's uploads (each with
/// `items_per_upload` sorted item gradients over `num_items` items) and
/// the identity surviving set, shared by the map and router thunks.
struct RoutingOperands {
  std::vector<ClientUpdate> uploads;
  std::vector<int> surviving;
  int num_items;
  RoutingOperands(size_t num_uploads, size_t items_per_upload, int items,
                  size_t d)
      : num_items(items) {
    Rng rng(23);
    Vec grad(d, 0.125);  // routing never reads gradient values
    uploads.resize(num_uploads);
    for (ClientUpdate& upd : uploads) {
      for (size_t e = 0; e < items_per_upload; ++e) {
        upd.AccumulateItemGrad(
            static_cast<int>(rng.UniformInt(0, num_items - 1)), grad);
      }
    }
    surviving.resize(num_uploads);
    std::iota(surviving.begin(), surviving.end(), 0);
  }
};

/// Thunk reproducing the retired per-round grouping: rebuild the
/// item -> gradient-pointer std::map plus the flat work list the old
/// ApplyUpdates fanned out over.
std::function<void()> MakeMapRoutingOp(std::shared_ptr<RoutingOperands> ops) {
  return [ops] {
    std::map<int, std::vector<const Vec*>> per_item;
    for (int idx : ops->surviving) {
      for (const auto& [item, grad] :
           ops->uploads[static_cast<size_t>(idx)].item_grads) {
        per_item[item].push_back(&grad);
      }
    }
    std::vector<std::pair<int, const std::vector<const Vec*>*>> work;
    work.reserve(per_item.size());
    for (const auto& [item, grads] : per_item) {
      work.emplace_back(item, &grads);
    }
    benchmark::DoNotOptimize(work.data());
  };
}

/// Thunk for the arena-reused sharded router over the same uploads
/// (single scan worker: MeasureNsPerOp times serial cost, so both
/// thunks are compared thread-free).
std::function<void()> MakeRouterRoutingOp(std::shared_ptr<RoutingOperands> ops,
                                          int shards) {
  auto router = std::make_shared<UpdateRouter>();
  return [ops, router, shards] {
    router->BeginRound(ops->num_items, shards, /*num_workers=*/1);
    router->ScanSlice(0, ops->uploads, ops->surviving);
    for (int s = 0; s < router->num_shards(); ++s) router->BuildShard(s);
    benchmark::DoNotOptimize(router->Shard(0).grads);
  };
}

/// Runs the scalar-vs-SIMD sweep and writes `path` (JSON). Returns 0,
/// or 1 when the file cannot be written.
int RunKernelSweep(const std::string& path) {
  std::vector<const KernelTable*> tables = AvailableKernelTables();
  // ns[kernel][table][dim]
  std::vector<std::vector<std::vector<double>>> ns;
  for (const char* kernel : kKernelNames) {
    std::vector<std::vector<double>> per_table;
    for (const KernelTable* t : tables) {
      std::vector<double> per_dim;
      for (size_t d : kKernelDims) {
        per_dim.push_back(MeasureNsPerOp(MakeKernelOp(t, kernel, d)) /
                          static_cast<double>(kRowsPerOp));
      }
      per_table.push_back(std::move(per_dim));
    }
    ns.push_back(std::move(per_table));
    std::fprintf(stderr, "  measured %s\n", kernel);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"default_backend\": \"%s\",\n",
               KernelBackendName(ActiveKernels().backend));
  std::fprintf(f, "  \"dims\": [");
  for (size_t di = 0; di < std::size(kKernelDims); ++di) {
    std::fprintf(f, "%s%zu", di ? ", " : "", kKernelDims[di]);
  }
  std::fprintf(f, "],\n  \"ns_per_op\": {\n");
  for (size_t ki = 0; ki < std::size(kKernelNames); ++ki) {
    std::fprintf(f, "    \"%s\": {", kKernelNames[ki]);
    for (size_t ti = 0; ti < tables.size(); ++ti) {
      std::fprintf(f, "%s\"%s\": [", ti ? ", " : "",
                   KernelBackendName(tables[ti]->backend));
      for (size_t di = 0; di < std::size(kKernelDims); ++di) {
        std::fprintf(f, "%s%.3f", di ? ", " : "", ns[ki][ti][di]);
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}%s\n", ki + 1 < std::size(kKernelNames) ? "," : "");
  }
  std::fprintf(f, "  },\n  \"speedup_vs_scalar\": {\n");
  for (size_t ki = 0; ki < std::size(kKernelNames); ++ki) {
    std::fprintf(f, "    \"%s\": {", kKernelNames[ki]);
    for (size_t ti = 1; ti < tables.size(); ++ti) {
      std::fprintf(f, "%s\"%s\": [", ti > 1 ? ", " : "",
                   KernelBackendName(tables[ti]->backend));
      for (size_t di = 0; di < std::size(kKernelDims); ++di) {
        std::fprintf(f, "%s%.2f", di ? ", " : "",
                     ns[ki][0][di] / ns[ki][ti][di]);
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}%s\n", ki + 1 < std::size(kKernelNames) ? "," : "");
  }
  std::fprintf(f, "  },\n");

  // ER@K-style scoring: the per-item Row()-copy + dot loop this PR
  // replaced, against one batched gemv over the same table, per backend.
  const size_t kScoreRows = 2048;
  const size_t kScoreDim = 32;
  std::fprintf(f, "  \"er_scoring\": {\n");
  std::fprintf(f, "    \"rows\": %zu, \"dim\": %zu,\n", kScoreRows,
               kScoreDim);
  for (size_t ti = 0; ti < tables.size(); ++ti) {
    const char* name = KernelBackendName(tables[ti]->backend);
    const double copy_ns =
        MeasureNsPerOp(MakeRowCopyScoringOp(tables[ti], kScoreRows,
                                            kScoreDim));
    const double gemv_ns =
        MeasureNsPerOp(MakeGemvScoringOp(tables[ti], kScoreRows, kScoreDim));
    std::fprintf(f,
                 "    \"%s\": {\"row_copy_dot_ns\": %.1f, \"gemv_ns\": "
                 "%.1f, \"speedup\": %.2f}%s\n",
                 name, copy_ns, gemv_ns, copy_ns / gemv_ns,
                 ti + 1 < tables.size() ? "," : "");
    std::fprintf(stderr, "er_scoring %-6s: row_copy %.0f ns, gemv %.0f ns, "
                 "%.2fx\n", name, copy_ns, gemv_ns, copy_ns / gemv_ns);
  }
  std::fprintf(f, "  },\n");

  // Span aggregation: the pre-span vector<Vec> materialization against
  // the borrowed-pointer path, per robust rule (active backend).
  const size_t kAggN = 64;
  const size_t kAggDim = 32;
  struct RuleCase {
    const char* name;
    std::shared_ptr<const Aggregator> agg;
  };
  const RuleCase rules[] = {
      {"median", std::make_shared<MedianAggregator>()},
      {"trimmed_mean", std::make_shared<TrimmedMeanAggregator>(0.1)},
      {"norm_bound", std::make_shared<NormBoundAggregator>(1.0)},
  };
  std::fprintf(f, "  \"span_aggregation\": {\n");
  std::fprintf(f, "    \"num_grads\": %zu, \"dim\": %zu,\n", kAggN, kAggDim);
  for (size_t ri = 0; ri < std::size(rules); ++ri) {
    const double copy_ns =
        MeasureNsPerOp(MakeCopyAggregationOp(rules[ri].agg, kAggN, kAggDim));
    const double span_ns =
        MeasureNsPerOp(MakeSpanAggregationOp(rules[ri].agg, kAggN, kAggDim));
    std::fprintf(f,
                 "    \"%s\": {\"copy_ns\": %.1f, \"span_ns\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 rules[ri].name, copy_ns, span_ns, copy_ns / span_ns,
                 ri + 1 < std::size(rules) ? "," : "");
    std::fprintf(stderr, "span_aggregation %-12s: copy %.0f ns, span %.0f "
                 "ns, %.2fx\n", rules[ri].name, copy_ns, span_ns,
                 copy_ns / span_ns);
  }
  std::fprintf(f, "  },\n");

  // Routing: the retired per-round std::map grouping against the
  // arena-reused sharded router, over an uploads x items-per-upload
  // grid. CI regresses the 512-upload scale point (the default round
  // batch of bench_scale_users) via tools/check_routing_speedup.py.
  {
    const int kRouteItems = 50000;
    const size_t kRouteDim = 16;
    const int kRouteShards = 8;
    const size_t upload_counts[] = {64, 256, 512};
    const size_t items_per_upload[] = {16, 64};
    std::fprintf(f, "  \"routing\": {\n");
    std::fprintf(f, "    \"num_items\": %d, \"shards\": %d,\n", kRouteItems,
                 kRouteShards);
    std::fprintf(f, "    \"sweep\": [\n");
    for (size_t ui = 0; ui < std::size(upload_counts); ++ui) {
      for (size_t ii = 0; ii < std::size(items_per_upload); ++ii) {
        auto ops = std::make_shared<RoutingOperands>(
            upload_counts[ui], items_per_upload[ii], kRouteItems, kRouteDim);
        const double map_ns = MeasureNsPerOp(MakeMapRoutingOp(ops));
        const double router_ns =
            MeasureNsPerOp(MakeRouterRoutingOp(ops, kRouteShards));
        const bool last = ui + 1 == std::size(upload_counts) &&
                          ii + 1 == std::size(items_per_upload);
        std::fprintf(f,
                     "      {\"uploads\": %zu, \"items_per_upload\": %zu, "
                     "\"map_ns\": %.1f, \"router_ns\": %.1f, "
                     "\"speedup\": %.2f}%s\n",
                     upload_counts[ui], items_per_upload[ii], map_ns,
                     router_ns, map_ns / router_ns, last ? "" : ",");
        std::fprintf(stderr,
                     "routing uploads=%-4zu ipu=%-3zu: map %.0f ns, router "
                     "%.0f ns, %.2fx\n",
                     upload_counts[ui], items_per_upload[ii], map_ns,
                     router_ns, map_ns / router_ns);
      }
    }
    std::fprintf(f, "    ]\n  },\n");
  }

  // Population scale: store-backed rounds at a reduced population (the
  // full ≥1M sweep lives in bench_scale_users; this keeps a comparable
  // bytes/user + throughput sample in the kernel artifact).
  {
    bench::ScaleSweepConfig scale_config;
    scale_config.num_users = 50000;
    scale_config.num_items = 20000;
    scale_config.rounds = 4;
    scale_config.num_threads = 0;
    bench::ScaleSweepResult scale = bench::RunScaleSweep(scale_config);
    std::fprintf(f,
                 "  \"scale_users\": {\n"
                 "    \"users\": %d, \"items\": %d, \"dim\": %d, "
                 "\"users_per_round\": %d,\n"
                 "    \"bytes_per_user\": %.1f, \"rounds_per_sec\": %.2f, "
                 "\"clients_per_sec\": %.0f\n  }\n",
                 scale.config.num_users, scale.config.num_items,
                 scale.config.dim, scale.config.users_per_round,
                 scale.bytes_per_user, scale.rounds_per_sec,
                 scale.clients_per_sec);
    std::fprintf(stderr,
                 "scale_users: %d users, %.1f B/user, %.1f rounds/s\n",
                 scale.config.num_users, scale.bytes_per_user,
                 scale.rounds_per_sec);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);

  for (size_t ti = 1; ti < tables.size(); ++ti) {
    for (size_t ki = 0; ki < std::size(kKernelNames); ++ki) {
      std::fprintf(stderr, "%-18s %-6s:", kKernelNames[ki],
                   KernelBackendName(tables[ti]->backend));
      for (size_t di = 0; di < std::size(kKernelDims); ++di) {
        std::fprintf(stderr, "  d=%zu %.2fx", kKernelDims[di],
                     ns[ki][0][di] / ns[ki][ti][di]);
      }
      std::fprintf(stderr, "\n");
    }
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

/// Parses a --threads value; exits with a message on anything that is
/// not a non-negative integer.
int ParseThreadsValue(const char* text) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "error: invalid --threads value: %s\n", text);
    std::exit(1);
  }
  return static_cast<int>(value);
}

/// Strips `--threads=N` / `--threads N` from argv (google-benchmark
/// rejects flags it does not know) and returns N. Absent or 0 means
/// one thread per hardware thread, matching ServerConfig::num_threads.
int ExtractThreadsFlag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = ParseThreadsValue(arg.c_str() + std::strlen("--threads="));
    } else if (arg == "--threads" && i + 1 < *argc && argv[i + 1][0] != '-') {
      threads = ParseThreadsValue(argv[++i]);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads == 0 ? ThreadPool::DefaultThreadCount() : threads;
}

/// Strips `--kernels_json=PATH` from argv; empty when absent.
std::string ExtractKernelsJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--kernels_json=", 0) == 0) {
      path = arg.substr(std::strlen("--kernels_json="));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace
}  // namespace pieck

int main(int argc, char** argv) {
  const std::string kernels_json = pieck::ExtractKernelsJsonFlag(&argc, argv);
  if (!kernels_json.empty()) {
    // Dedicated mode: run the scalar-vs-SIMD sweep and nothing else, so
    // CI can emit BENCH_kernels.json without paying for the full suite.
    return pieck::RunKernelSweep(kernels_json);
  }
  const int threads = pieck::ExtractThreadsFlag(&argc, argv);
  pieck::RegisterKernelBenchmarks();
  // UseRealTime: the point is wall-clock speedup, and CPU-time rates
  // would overstate the threaded engine.
  benchmark::RegisterBenchmark("BM_FederatedRound/threads:1",
                               pieck::BM_FederatedRound, 1)
      ->UseRealTime();
  if (threads > 1) {
    benchmark::RegisterBenchmark(
        ("BM_FederatedRound/threads:" + std::to_string(threads)).c_str(),
        pieck::BM_FederatedRound, threads)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
