// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// simulation: embedding math, model forward/backward, Δ-Norm mining,
// and robust aggregation. These bound the per-round costs reported in
// Fig. 6(b).

#include <benchmark/benchmark.h>

#include "attack/popular_item_miner.h"
#include "common/rng.h"
#include "defense/robust_aggregators.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/math.h"

namespace pieck {
namespace {

void BM_Dot(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a, b));
  }
}
BENCHMARK(BM_Dot)->Arg(16)->Arg(64)->Arg(256);

void BM_CosineGrad(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  Vec a(dim), b(dim);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineSimilarityGradWrtB(a, b));
  }
}
BENCHMARK(BM_CosineGrad)->Arg(16)->Arg(64);

void BM_MfForwardBackward(benchmark::State& state) {
  MfModel model(static_cast<int>(state.range(0)));
  Rng rng(3);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   nullptr);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_MfForwardBackward)->Arg(16)->Arg(64);

void BM_NcfForwardBackward(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  NcfModel model(dim, {dim, dim / 2});
  Rng rng(4);
  GlobalModel g = model.InitGlobalModel(128, rng);
  Vec u = model.InitUserEmbedding(rng);
  Vec v = g.item_embeddings.Row(0);
  ForwardCache cache;
  Vec gu = Zeros(u.size());
  Vec gv = Zeros(v.size());
  InteractionGrads igrads = InteractionGrads::ZerosLike(g);
  for (auto _ : state) {
    double logit = model.Forward(g, u, v, &cache);
    model.Backward(g, u, v, cache, BceGradFromLogit(1.0, logit), &gu, &gv,
                   &igrads);
    benchmark::DoNotOptimize(gv);
  }
}
BENCHMARK(BM_NcfForwardBackward)->Arg(16)->Arg(32);

void BM_MinerObserve(benchmark::State& state) {
  const size_t items = static_cast<size_t>(state.range(0));
  Rng rng(5);
  Matrix snapshot(items, 16);
  snapshot.RandomNormal(rng, 0, 0.1);
  PopularItemMiner miner(1 << 20, 10);  // never stops accumulating
  miner.Observe(snapshot);
  for (auto _ : state) {
    snapshot.At(0, 0) += 0.001;
    miner.Observe(snapshot);
  }
}
BENCHMARK(BM_MinerObserve)->Arg(512)->Arg(2048);

void BM_MedianAggregate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<Vec> grads;
  for (int i = 0; i < n; ++i) {
    Vec g(16);
    for (double& v : g) v = rng.Normal(0, 1);
    grads.push_back(std::move(g));
  }
  MedianAggregator agg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(agg.Aggregate(grads));
  }
}
BENCHMARK(BM_MedianAggregate)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace pieck

BENCHMARK_MAIN();
