// Attack/defense behavior under production-shaped traffic: the paper
// (and every defense evaluation in PAPERS.md) measures PIECK with
// uniform participation over a fixed population. This sweep reruns the
// attack under skewed participation, churn, and diurnal arrival waves
// and reports, per traffic shape:
//   - ER@K      attack success over the benign population (Eq. 3),
//   - HR@K      recommendation utility (NCF protocol),
//   - PKL       Eq. 9 over the miner's popular set,
//   - IdentRate |mined top-N ∩ true top-N| / N — how well PIECK's
//               Δ-Norm miner identifies the truly popular items when
//               the observation stream itself is skewed.
//
// Usage:
//   bench_workloads                       # full shape × defense sweep
//   bench_workloads --rounds 40           # reduced (CI smoke)
//   bench_workloads --json workloads.json # machine-readable output
//
// CI runs the reduced form in the workload-smoke job and uploads the
// JSON as a build artifact; see .github/workflows/ci.yml.

#include <cstdio>
#include <string>
#include <vector>

#include "attack/popular_item_miner.h"
#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"
#include "metrics/evaluation.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

struct TrafficShape {
  const char* name;
  WorkloadConfig workload;
};

std::vector<TrafficShape> MakeShapes() {
  std::vector<TrafficShape> shapes;
  shapes.push_back({"uniform", {}});

  WorkloadConfig zipf;
  zipf.participation = ParticipationKind::kZipf;
  zipf.zipf_exponent = 1.1;
  shapes.push_back({"zipf", zipf});

  WorkloadConfig expo;
  expo.participation = ParticipationKind::kExponential;
  expo.exponential_rate = 4.0;
  shapes.push_back({"exponential", expo});

  WorkloadConfig churn = zipf;
  churn.churn.join_rate = 0.05;
  churn.churn.leave_rate = 0.05;
  churn.churn.initial_active = 0.8;
  shapes.push_back({"zipf_churn", churn});

  WorkloadConfig diurnal;
  diurnal.diurnal_amplitude = 0.5;
  diurnal.diurnal_period = 24;
  shapes.push_back({"diurnal", diurnal});
  return shapes;
}

struct ShapeResult {
  std::string shape;
  std::string defense;
  double er = 0.0;
  double hr = 0.0;
  double pkl = 0.0;
  double ident_rate = 0.0;
  int active_final = 0;
  int rounds = 0;
};

/// |mined top-N ∩ true top-N| / N over the training popularity ranking.
double IdentificationRate(const PopularItemMiner& miner,
                          const Dataset& train, int n) {
  const std::vector<int> mined = miner.TopItems(n);
  std::vector<int> truth = train.ItemsByPopularity();
  if (truth.size() > static_cast<size_t>(n)) {
    truth.resize(static_cast<size_t>(n));
  }
  int hits = 0;
  for (int item : mined) {
    for (int t : truth) {
      if (item == t) {
        ++hits;
        break;
      }
    }
  }
  return n > 0 ? static_cast<double>(hits) / n : 0.0;
}

int WriteJson(const std::string& path,
              const std::vector<ShapeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(f,
                 "    {\"shape\": \"%s\", \"defense\": \"%s\", "
                 "\"rounds\": %d, \"er_at_k\": %.4f, \"hr_at_k\": %.4f, "
                 "\"pkl\": %.4f, \"pieck_ident_rate\": %.4f, "
                 "\"active_benign_final\": %d}%s\n",
                 r.shape.c_str(), r.defense.c_str(), r.rounds, r.er, r.hr,
                 r.pkl, r.ident_rate,
                 r.active_final, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string json = flags.GetString("json", "");
  const int mined_n = static_cast<int>(flags.GetInt("mined_n", 10));

  std::vector<ShapeResult> results;
  TablePrinter table({"Shape", "Defense", "ER@10", "HR@10", "PKL",
                      "IdentRate", "Active"});
  for (const TrafficShape& shape : MakeShapes()) {
    for (DefenseKind defense :
         {DefenseKind::kNoDefense, DefenseKind::kOurs}) {
      ExperimentConfig config = MakeBenchConfig(
          BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
      ApplyAttackCalibration(config, AttackKind::kPieckIpe);
      config.defense = defense;
      config.workload = shape.workload;

      auto sim_or = Simulation::Create(config);
      if (!sim_or.ok()) {
        std::fprintf(stderr, "%s\n", sim_or.status().ToString().c_str());
        return 1;
      }
      auto sim = std::move(sim_or).value();

      // A benign-perspective miner observing the first rounds' global
      // tables (Algorithm 1, R̃ = 2), exactly what both the attacker
      // and the paper's defense run — under this traffic shape.
      PopularItemMiner miner(/*mining_rounds=*/2, /*top_n=*/150);
      RoundStats last;
      for (int r = 0; r < config.rounds; ++r) {
        last = sim->RunRound();
        if (r < 3) miner.Observe(sim->global().item_embeddings);
      }

      ShapeResult res;
      res.shape = shape.name;
      res.defense = DefenseKindToString(defense);
      res.rounds = config.rounds;
      res.er = sim->EvaluateEr(config.top_k);
      res.hr = sim->EvaluateHr(config.top_k);
      res.pkl = PairwiseKlDivergence(sim->global(), sim->benign_eval_view(),
                                     sim->train(), miner.TopItems(mined_n),
                                     sim->eval_pool());
      res.ident_rate = IdentificationRate(miner, sim->train(), mined_n);
      res.active_final = last.active_benign;
      results.push_back(res);

      table.AddRow({res.shape, res.defense, FormatDouble(res.er, 4),
                    FormatDouble(res.hr, 4), FormatDouble(res.pkl, 4),
                    FormatDouble(res.ident_rate, 2),
                    std::to_string(res.active_final)});
    }
  }

  std::printf(
      "== PIECK-IPE attack/defense under production traffic shapes ==\n%s",
      table.ToString().c_str());
  if (!json.empty() && WriteJson(json, results) != 0) return 1;
  return 0;
}
