// Table VI: ablations. Left half — the techniques inside L_IPE (Eq. 8):
// similarity metric (PKL vs PCOS), the rank weighting κ(·), and the
// sign-partitioning P±. Right half — the two defense regularizers Re1 /
// Re2 in L_def (Eq. 16) against both PIECK attacks. Paper shape: PCOS >
// PKL, κ and P± each add attack strength; both regularizers are needed
// jointly for a defense that is both protective and HR-preserving.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void AblateIpe(const FlagParser& flags) {
  std::printf("== Table VI (left): L_IPE ablation (MF, ML-100K-like) ==\n");
  struct Variant {
    const char* name;
    IpeMetric metric;
    bool rank_weights;
    bool partition;
  };
  const std::vector<Variant> variants = {
      {"PKL metric", IpeMetric::kSoftmaxKl, false, false},
      {"PCOS", IpeMetric::kCosine, false, false},
      {"PCOS + k(.)", IpeMetric::kCosine, true, false},
      {"PCOS + k(.) + P+/-", IpeMetric::kCosine, true, true},
  };
  TablePrinter table({"L_IPE variant", "ER@10", "HR@10"});
  for (const Variant& v : variants) {
    ExperimentConfig config = MakeBenchConfig(
        BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
    ApplyAttackCalibration(config, AttackKind::kPieckIpe);
    config.attack_config.ipe_metric = v.metric;
    config.attack_config.ipe_use_rank_weights = v.rank_weights;
    config.attack_config.ipe_use_sign_partition = v.partition;
    ExperimentResult result = MustRun(config);
    table.AddRow({v.name, Pct(result.er_at_k), Pct(result.hr_at_k)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void AblateDefense(const FlagParser& flags) {
  std::printf("== Table VI (right): L_def ablation (MF, ML-100K-like) ==\n");
  struct Variant {
    const char* name;
    bool re1;
    bool re2;
  };
  const std::vector<Variant> variants = {
      {"no defense", false, false},
      {"Re1 only", true, false},
      {"Re2 only", false, true},
      {"Re1 + Re2", true, true},
  };
  TablePrinter table({"L_def variant", "IPE ER@10", "IPE HR@10",
                      "UEA ER@10", "UEA HR@10"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (AttackKind attack :
         {AttackKind::kPieckIpe, AttackKind::kPieckUea}) {
      ExperimentConfig config = MakeBenchConfig(
          BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
      ApplyAttackCalibration(config, attack);
      config.defense =
          (v.re1 || v.re2) ? DefenseKind::kOurs : DefenseKind::kNoDefense;
      config.defense_options.enable_re1 = v.re1;
      config.defense_options.enable_re2 = v.re2;
      ExperimentResult result = MustRun(config);
      row.push_back(Pct(result.er_at_k));
      row.push_back(Pct(result.hr_at_k));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  AblateIpe(flags);
  AblateDefense(flags);
  return 0;
}
