// Supplementary Fig. 7: recommendation performance (HR@10) as the
// negative-sampling ratio q grows, MF-FRS on the ML-100K-like dataset,
// no attack. Paper shape: HR peaks at moderate q and deteriorates for
// large q.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Fig. 7: HR@10 vs sample ratio q (MF, ML-100K-like) ==\n");
  TablePrinter table({"q", "HR@10"});
  for (double q : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    ExperimentConfig config = MakeBenchConfig(
        BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
    config.negative_ratio_q = q;
    ExperimentResult result = MustRun(config);
    table.AddRow({FormatDouble(q, 0), Pct(result.hr_at_k)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
