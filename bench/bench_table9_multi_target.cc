// Supplementary Table IX: multi-target attacks — |T| ∈ {2, 5} under the
// Train-Together and Train-One-Then-Copy strategies, with and without
// the defense (MF-FRS, ML-100K-like). Paper shape: Train-Together
// degrades as |T| grows (targets interfere); Train-One-Then-Copy keeps
// the attack strong; the defense holds in all cases.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("== Table IX: multi-target strategies (MF, ML-100K-like) ==\n");
  TablePrinter table({"Strategy", "|T|", "Attack", "NoDef ER@10",
                      "NoDef HR@10", "Ours ER@10", "Ours HR@10"});
  struct Strategy {
    const char* name;
    MultiTargetStrategy value;
  };
  for (const Strategy& strategy :
       {Strategy{"TrainTogether", MultiTargetStrategy::kTrainTogether},
        Strategy{"TrainOneThenCopy",
                 MultiTargetStrategy::kTrainOneThenCopy}}) {
    for (int num_targets : {2, 5}) {
      for (AttackKind attack :
           {AttackKind::kPieckIpe, AttackKind::kPieckUea}) {
        std::vector<std::string> row = {strategy.name,
                                        std::to_string(num_targets),
                                        AttackKindToString(attack)};
        for (DefenseKind defense :
             {DefenseKind::kNoDefense, DefenseKind::kOurs}) {
          ExperimentConfig config = MakeBenchConfig(
              BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
          ApplyAttackCalibration(config, attack);
          config.defense = defense;
          config.num_targets = num_targets;
          config.attack_config.multi_target = strategy.value;
          ExperimentResult result = MustRun(config);
          row.push_back(Pct(result.er_at_k));
          row.push_back(Pct(result.hr_at_k));
        }
        table.AddRow(row);
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
