// Table VII: system-setting stress tests on MF-FRS / ML-100K-like —
// (1) a large negative-sampling ratio q = 10 and (2) multiple target
// items |T| = 3 with the Train-One-Then-Copy strategy. Paper shape: the
// attacks remain effective (UEA more than IPE at q = 10) and the defense
// keeps ER near zero in both settings.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void RunScenario(const char* title, const FlagParser& flags, double q,
                 int num_targets) {
  std::printf("== Table VII: %s ==\n", title);
  struct Case {
    AttackKind attack;
    DefenseKind defense;
  };
  const std::vector<Case> cases = {
      {AttackKind::kNone, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kNoDefense},
      {AttackKind::kPieckIpe, DefenseKind::kOurs},
      {AttackKind::kPieckUea, DefenseKind::kNoDefense},
      {AttackKind::kPieckUea, DefenseKind::kOurs},
  };
  TablePrinter table({"Attack", "Defense", "ER@10", "HR@10"});
  for (const Case& c : cases) {
    ExperimentConfig config = MakeBenchConfig(
        BenchDataset::kMl100k, ModelKind::kMatrixFactorization, flags);
    ApplyAttackCalibration(config, c.attack);
    config.defense = c.defense;
    config.negative_ratio_q = q;
    config.num_targets = num_targets;
    config.attack_config.multi_target =
        MultiTargetStrategy::kTrainOneThenCopy;
    ExperimentResult result = MustRun(config);
    table.AddRow({AttackKindToString(c.attack),
                  DefenseKindToString(c.defense), Pct(result.er_at_k),
                  Pct(result.hr_at_k)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  RunScenario("large sample ratio q = 10, |T| = 1", flags, /*q=*/10.0,
              /*num_targets=*/1);
  RunScenario("multiple targets |T| = 3, q = 1", flags, /*q=*/1.0,
              /*num_targets=*/3);
  return 0;
}
