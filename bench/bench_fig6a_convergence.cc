// Fig. 6(a): ER@10 of PIECK-IPE and PIECK-UEA over communication rounds
// on the ML-1M-like dataset (MF-FRS, no defense). Paper shape: both
// reach high exposure early; IPE decays more as the recommender
// personalizes, UEA stays more robust.

#include <cstdio>

#include "bench/bench_lib.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const int rounds = static_cast<int>(flags.GetInt("rounds", 600));
  const int every = static_cast<int>(flags.GetInt("eval-every", 50));

  std::printf("== Fig. 6(a): ER@10 trend over rounds (MF, ML-1M-like) ==\n");
  std::vector<std::pair<AttackKind, ExperimentResult>> results;
  for (AttackKind attack : {AttackKind::kPieckIpe, AttackKind::kPieckUea}) {
    ExperimentConfig config = MakeBenchConfig(
        BenchDataset::kMl1m, ModelKind::kMatrixFactorization, flags);
    ApplyAttackCalibration(config, attack);
    config.rounds = rounds;
    config.eval_every = every;
    results.push_back({attack, MustRun(config)});
  }

  TablePrinter table({"round", "PIECK-IPE ER@10", "PIECK-UEA ER@10"});
  const auto& ipe = results[0].second.er_history;
  const auto& uea = results[1].second.er_history;
  for (size_t i = 0; i < ipe.size() && i < uea.size(); ++i) {
    table.AddRow({std::to_string(ipe[i].first), Pct(ipe[i].second),
                  Pct(uea[i].second)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
