// Throughput + exactness benchmark for the top-K serving path
// (src/serving/): how many users per second one process can serve
// top-K recommendations for, across three scoring modes over the same
// MF item table:
//
//   full_scan  score every item (batched gemv), materialize all
//              (score, id) pairs, Floyd–Rivest select — the oracle.
//   fused      TopKServer tiled path: per-tile gemv streamed into the
//              bounded selector, Cauchy–Schwarz tile pruning.
//   quantized  TopKServer int8 shortlist + exact fp64 rerank.
//
// Exactness is asserted in-run, not sampled offline: every verified
// user's fused list must be bit-identical to full_scan, and the
// quantized shortlist recall against full_scan is measured and gated.
// A benchmark that serves wrong lists fast must fail, not win.
//
// Usage:
//   bench_serving                              # default 50k items, d=64
//   bench_serving --users 20000 --k 10 --threads 0
//   bench_serving --json serving.json          # machine-readable output
//   bench_serving --min_users_per_sec 100000   # CI throughput floor
//                                              # (applied to `fused`)
//
// CI runs the Release serving-smoke job with the floor from
// .github/workflows/ci.yml, gated through
// `tools/check_bench_json.py serving`.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_lib.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/report.h"
#include "serving/topk_server.h"
#include "tensor/kernels.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeResult {
  std::string mode;
  double users_per_sec = 0.0;
  double elapsed_s = 0.0;
  int64_t users_served = 0;
  bool exact = true;           // fused: bitwise equality with full_scan
  double recall_at_k = 1.0;    // quantized: shortlist recall
  double tiles_pruned_frac = 0.0;
  double footprint_mb = 0.0;
};

/// The full-scan oracle for one user (score everything + exact select).
void FullScanTopK(const RecModel& model, const GlobalModel& g, const Vec& u,
                  int k, Vec* scores, std::vector<serving::ScoredItem>* cands,
                  std::vector<serving::ScoredItem>* out) {
  const int n = g.num_items();
  scores->resize(static_cast<size_t>(n));
  model.ScoreItems(g, u, scores->data());
  cands->clear();
  for (int j = 0; j < n; ++j) {
    cands->push_back(serving::ScoredItem{(*scores)[static_cast<size_t>(j)], j});
  }
  serving::SelectTopK(cands, k, out);
}

bool SameList(const std::vector<serving::ScoredItem>& a,
              const std::vector<serving::ScoredItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise score equality: memcmp catches even a -0.0 vs 0.0 drift.
    if (a[i].item != b[i].item ||
        std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

int WriteJson(const std::string& path, const std::vector<ModeResult>& modes,
              int users, int items, int dim, int k, int threads,
              const char* backend) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"serving\": [\n");
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"users\": %d, \"items\": %d, \"dim\": %d, "
        "\"k\": %d, \"threads\": %d, \"backend\": \"%s\", "
        "\"users_per_sec\": %.1f, \"users_served\": %lld, "
        "\"elapsed_s\": %.3f, \"exact\": %s, \"recall_at_k\": %.6f, "
        "\"tiles_pruned_frac\": %.4f, \"footprint_mb\": %.2f, "
        "\"peak_rss_mb\": %.1f}%s\n",
        m.mode.c_str(), users, items, dim, k, threads, backend,
        m.users_per_sec, static_cast<long long>(m.users_served),
        m.elapsed_s, m.exact ? "true" : "false", m.recall_at_k,
        m.tiles_pruned_frac, m.footprint_mb,
        PeakRssBytes() / 1048576.0, i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int users = static_cast<int>(flags.GetInt("users", 8192));
  const int items = static_cast<int>(flags.GetInt("items", 50000));
  const int dim = static_cast<int>(flags.GetInt("dim", 64));
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const int tile_items = static_cast<int>(flags.GetInt("tile", 512));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double min_duration_s = flags.GetDouble("min_duration", 0.5);
  const int verify_users =
      static_cast<int>(flags.GetInt("verify_users", 256));
  const double min_users_per_sec = flags.GetDouble("min_users_per_sec", 0.0);
  const double min_recall = flags.GetDouble("min_recall", 0.999);
  const std::string json = flags.GetString("json", "");

  std::unique_ptr<RecModel> model =
      MakeModel(ModelKind::kMatrixFactorization, dim);
  Rng rng(seed);
  GlobalModel g = model->InitGlobalModel(items, rng);
  Matrix user_rows(static_cast<size_t>(users), static_cast<size_t>(dim));
  user_rows.RandomNormal(rng, 0.0, 0.5);

  // --boost N builds the attack-shaped distribution from the paper's
  // threat model: N popular items with hugely inflated embeddings that
  // dominate every user's list (a shared taste coordinate keeps the
  // boosted scores positive for everyone). This is the regime the
  // fused path's Cauchy–Schwarz tile pruning targets — once the
  // selector fills on a boosted tile, nearly every other tile is
  // skipped on a single bound compare, so exact serving throughput is
  // decoupled from the full table scan. Exactness is still verified
  // against the oracle below.
  const int boost = static_cast<int>(flags.GetInt("boost", 0));
  if (boost > 0) {
    for (int i = 0; i < users; ++i) user_rows.MutableRowPtr(
        static_cast<size_t>(i))[0] += 2.0;
    for (int j = 0; j < std::min(boost, items); ++j) {
      double* row = g.item_embeddings.MutableRowPtr(static_cast<size_t>(j));
      std::fill(row, row + dim, 0.0);
      row[0] = 50.0 + 0.5 * j;  // distinct magnitudes: no degenerate ties
    }
  }

  const int pool_threads =
      threads > 0 ? threads : ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool;
  if (pool_threads > 1) pool = std::make_unique<ThreadPool>(pool_threads);

  serving::TopKServerOptions fused_opt;
  fused_opt.tile_items = tile_items;
  const serving::TopKServer fused(*model, g, fused_opt);
  serving::TopKServerOptions quant_opt = fused_opt;
  quant_opt.quantized = true;
  const serving::TopKServer quantized(*model, g, quant_opt);

  std::printf("== Top-K serving: %d users x %d items, d=%d, k=%d, "
              "threads=%d, backend=%s ==\n",
              users, items, dim, k, pool_threads,
              KernelBackendName(ActiveKernels().backend));

  // ---- In-run exactness: fused vs full_scan bitwise, quantized recall.
  const int nverify = std::min(verify_users, users);
  bool fused_exact = true;
  int64_t recall_hits = 0;
  int64_t recall_total = 0;
  {
    Vec scores;
    std::vector<serving::ScoredItem> cands, oracle, got;
    Vec u(static_cast<size_t>(dim));
    for (int i = 0; i < nverify; ++i) {
      const double* row = user_rows.RowPtr(static_cast<size_t>(i));
      u.assign(row, row + dim);
      FullScanTopK(*model, g, u, k, &scores, &cands, &oracle);
      fused.Recommend(u, k, nullptr, 0, &got);
      if (!SameList(got, oracle)) fused_exact = false;
      quantized.Recommend(u, k, nullptr, 0, &got);
      for (const serving::ScoredItem& o : oracle) {
        ++recall_total;
        for (const serving::ScoredItem& q : got) {
          if (q.item == o.item) {
            ++recall_hits;
            break;
          }
        }
      }
    }
  }
  const double recall =
      recall_total > 0
          ? static_cast<double>(recall_hits) / static_cast<double>(recall_total)
          : 1.0;
  if (!fused_exact) {
    std::fprintf(stderr,
                 "FAIL: fused serving diverged from the full-scan oracle\n");
    return 1;
  }
  std::printf("exactness: fused bit-identical on %d users; quantized "
              "recall@%d %.5f\n", nverify, k, recall);

  // ---- Throughput: repeat whole batches until the clock budget is met.
  auto run_mode = [&](const std::string& name,
                      const std::function<void()>& serve_batch,
                      const serving::TopKServer* server) {
    ModeResult r;
    r.mode = name;
    int64_t served = 0;
    const double start = NowSeconds();
    double elapsed = 0.0;
    do {
      serve_batch();
      served += users;
      elapsed = NowSeconds() - start;
    } while (elapsed < min_duration_s);
    r.users_served = served;
    r.elapsed_s = elapsed;
    r.users_per_sec = static_cast<double>(served) / elapsed;
    r.exact = name != "quantized";
    r.recall_at_k = name == "quantized" ? recall : 1.0;
    if (server != nullptr) {
      r.footprint_mb =
          static_cast<double>(server->FootprintBytes()) / 1048576.0;
      // Pruning telemetry from one representative user (the batch API
      // does not aggregate stats).
      Vec u(static_cast<size_t>(dim));
      const double* row = user_rows.RowPtr(0);
      u.assign(row, row + dim);
      std::vector<serving::ScoredItem> got;
      serving::RecommendStats stats;
      server->Recommend(u, k, nullptr, 0, &got, &stats);
      const int total = stats.tiles_scored + stats.tiles_pruned;
      if (total > 0) {
        r.tiles_pruned_frac =
            static_cast<double>(stats.tiles_pruned) / total;
      }
    }
    return r;
  };

  std::vector<std::vector<serving::ScoredItem>> batch_out;
  std::vector<ModeResult> modes;
  modes.push_back(run_mode(
      "full_scan",
      [&] {
        ThreadPool::ParallelForOrSerial(
            pool.get(), static_cast<size_t>(users), [&](size_t i) {
              thread_local Vec scores, u;
              thread_local std::vector<serving::ScoredItem> cands, out;
              const double* row = user_rows.RowPtr(i);
              u.assign(row, row + dim);
              FullScanTopK(*model, g, u, k, &scores, &cands, &out);
            });
      },
      nullptr));
  modes.push_back(run_mode(
      "fused", [&] { fused.RecommendBatch(user_rows, k, pool.get(),
                                          &batch_out); },
      &fused));
  modes.push_back(run_mode(
      "quantized",
      [&] { quantized.RecommendBatch(user_rows, k, pool.get(), &batch_out); },
      &quantized));

  TablePrinter table({"Mode", "Users/s", "Served", "Elapsed s", "Exact",
                      "Recall@K", "Pruned %", "Cache MB"});
  for (const ModeResult& m : modes) {
    table.AddRow({m.mode, FormatDouble(m.users_per_sec, 0),
                  std::to_string(m.users_served), FormatDouble(m.elapsed_s, 2),
                  m.exact ? "yes" : "approx", FormatDouble(m.recall_at_k, 5),
                  FormatDouble(100.0 * m.tiles_pruned_frac, 1),
                  FormatDouble(m.footprint_mb, 2)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!json.empty() &&
      WriteJson(json, modes, users, items, dim, k, pool_threads,
                KernelBackendName(ActiveKernels().backend)) != 0) {
    return 1;
  }

  if (recall < min_recall) {
    std::fprintf(stderr, "FAIL: quantized recall@%d %.5f below %.5f\n", k,
                 recall, min_recall);
    return 1;
  }
  if (min_users_per_sec > 0.0) {
    const double fused_rate = modes[1].users_per_sec;
    if (fused_rate < min_users_per_sec) {
      std::fprintf(stderr,
                   "FAIL: fused serving %.0f users/s below floor %.0f\n",
                   fused_rate, min_users_per_sec);
      return 1;
    }
    std::printf("fused %.0f users/s within floor (%.0f)\n", fused_rate,
                min_users_per_sec);
  }
  return 0;
}
