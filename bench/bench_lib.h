#ifndef PIECK_BENCH_BENCH_LIB_H_
#define PIECK_BENCH_BENCH_LIB_H_

#include <string>

#include "common/flags.h"
#include "core/simulation.h"

namespace pieck::bench {

/// Calibrated reduced-scale configurations for the benchmark harness.
///
/// Each benchmark defaults to a scale that fits a single CPU core in
/// seconds to minutes while preserving the paper's qualitative shape
/// (see EXPERIMENTS.md). Every binary accepts:
///   --full          run at the paper's dataset scale
///   --scale <f>     custom dataset scale factor
///   --rounds <n>    custom round count
///   --seed <n>      custom seed
enum class BenchDataset { kMl100k, kMl1m, kAz };

const char* DatasetName(BenchDataset d);

/// Builds a calibrated experiment config for (dataset, model). The
/// returned config has NoAttack/NoDefense; benches then set the attack
/// and defense fields. `flags` applies the common overrides above.
ExperimentConfig MakeBenchConfig(BenchDataset dataset, ModelKind model,
                                 const FlagParser& flags);

/// Applies the per-attack hyperparameters used throughout the harness
/// (mined-set size N differs between IPE and UEA, as in the paper's
/// per-experiment tuning).
void ApplyAttackCalibration(ExperimentConfig& config, AttackKind attack);

/// Runs the experiment, aborting the binary with a message on error.
ExperimentResult MustRun(const ExperimentConfig& config);

/// "12.34" formatting of a fraction as percent.
std::string Pct(double fraction);

}  // namespace pieck::bench

#endif  // PIECK_BENCH_BENCH_LIB_H_
