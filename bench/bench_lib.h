#ifndef PIECK_BENCH_BENCH_LIB_H_
#define PIECK_BENCH_BENCH_LIB_H_

#include <string>
#include <vector>

#include "common/flags.h"
#include "core/simulation.h"
#include "storage/hot_row_cache.h"
#include "storage/storage.h"
#include "workload/latency.h"
#include "workload/workload.h"

namespace pieck::bench {

/// Calibrated reduced-scale configurations for the benchmark harness.
///
/// Each benchmark defaults to a scale that fits a single CPU core in
/// seconds to minutes while preserving the paper's qualitative shape
/// (see EXPERIMENTS.md). Every binary accepts:
///   --full          run at the paper's dataset scale
///   --scale <f>     custom dataset scale factor
///   --rounds <n>    custom round count
///   --seed <n>      custom seed
enum class BenchDataset { kMl100k, kMl1m, kAz };

const char* DatasetName(BenchDataset d);

/// Builds a calibrated experiment config for (dataset, model). The
/// returned config has NoAttack/NoDefense; benches then set the attack
/// and defense fields. `flags` applies the common overrides above.
ExperimentConfig MakeBenchConfig(BenchDataset dataset, ModelKind model,
                                 const FlagParser& flags);

/// Applies the per-attack hyperparameters used throughout the harness
/// (mined-set size N differs between IPE and UEA, as in the paper's
/// per-experiment tuning).
void ApplyAttackCalibration(ExperimentConfig& config, AttackKind attack);

/// Runs the experiment, aborting the binary with a message on error.
ExperimentResult MustRun(const ExperimentConfig& config);

/// Parses the shared traffic-shape flags into a WorkloadConfig and
/// validates it, aborting the binary on bad input:
///   --workload uniform|zipf|exponential   participation model
///   --zipf_s / --exp_rate                 skew strength
///   --diurnal_amp / --diurnal_period      arrival wave
///   --churn_join / --churn_leave / --churn_initial
///   --hot_frac / --hot_rate               hot-item interaction skew
WorkloadConfig ParseWorkloadFlags(const FlagParser& flags);

/// "12.34" formatting of a fraction as percent.
std::string Pct(double fraction);

// ---------------------------------------------------------------------
// Population-scale sweep (bench_scale_users, and the "scale_users"
// section of bench_microkernels --kernels_json): builds a synthetic
// sparse population directly (hash-derived interactions — the Zipf
// generator's per-user O(|I|) reset is itself a bottleneck at millions
// of users), wraps it in a ClientStateStore, and drives store-backed
// rounds through the real FederatedServer.

struct ScaleSweepConfig {
  int num_users = 1'000'000;
  int num_items = 50'000;
  int interactions_per_user = 8;
  int dim = 16;
  int rounds = 3;
  int users_per_round = 512;
  int num_threads = 0;  // 0 = one per hardware thread
  uint64_t seed = 1234;
  /// Traffic shape: participation skew / churn / diurnal wave drive the
  /// server's Select stage; the hot-item knobs skew the synthetic
  /// adjacency (a `hot_item_rate` fraction of each user's interactions
  /// is redirected into the hottest `hot_item_fraction` item slice).
  WorkloadConfig workload;
  /// Bounded-staleness round pipelining (depth 1 = the synchronous
  /// engine): the sweep drives the server's block engine either way.
  AsyncConfig async;
  /// Backing tier of the store (docs/STORAGE.md): RAM, or an mmap'd
  /// store directory with a hot-row cache for beyond-RAM populations.
  /// Either way the adjacency is streamed (never materialized as an
  /// interaction list), so setup is O(population), not O(heap).
  StorageConfig storage;
};

struct ScaleSweepResult {
  ScaleSweepConfig config;
  int64_t num_interactions = 0;
  double setup_seconds = 0.0;       // dataset + store + server build
  double rounds_per_sec = 0.0;
  double clients_per_sec = 0.0;     // uploads processed per second
  int64_t store_bytes = 0;          // ClientStateStore footprint
  int64_t arena_bytes = 0;          // reusable round arenas
  double bytes_per_user = 0.0;      // store_bytes / num_users
  int64_t peak_rss_bytes = 0;       // VmHWM (0 where unsupported)

  // Per-stage wall time of the last round, ms (see RoundStats), plus
  // the router telemetry behind the route/apply stages.
  double select_ms = 0.0;
  double train_ms = 0.0;
  double route_ms = 0.0;
  double apply_ms = 0.0;
  int router_shards = 0;
  int64_t router_entries = 0;       // (item, gradient) pairs routed

  // Tail-latency harness: per-stage histograms over *every* round (the
  // first round's lazy materialization and each churn fault are part of
  // the tail, not noise), plus workload telemetry from the last round.
  StageLatencies latencies;
  int active_benign_final = 0;
  int num_selected_final = 0;

  // Bounded-staleness telemetry over the whole run: the pipeline depth
  // the rounds executed with, uploads applied per staleness value
  // (staleness_hist[s] uploads arrived s versions behind), their mean /
  // max staleness, and how many uploads the max_staleness bound
  // discarded.
  int pipeline_depth = 1;
  std::vector<int64_t> staleness_hist;
  double mean_staleness = 0.0;
  int max_staleness = 0;
  int64_t dropped_stale = 0;

  // Storage-tier telemetry (zeros under RAM storage): mmap backing-file
  // bytes behind the store (resident bytes are `store_bytes`) and the
  // hot-row cache counters accumulated over the whole run.
  int64_t store_backing_bytes = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_writebacks = 0;
  double cache_hit_rate = 0.0;

  // I/O-engine telemetry (mmap only): the engine the run resolved to
  // (io_uring may fall back to pread-batch), coalesced-run counts, the
  // select thread's staged read-ahead, WILLNEED/DONTNEED batching, and
  // the per-shard cache counters for imbalance checks.
  std::string io_engine;
  int64_t io_read_runs = 0;
  int64_t io_write_runs = 0;
  int64_t staged_rows = 0;
  int64_t staged_hits = 0;
  int64_t prefetched_rows = 0;
  int64_t prefetch_ranges = 0;
  int64_t trims = 0;
  std::vector<HotRowCache::ShardCounters> shard_counters;

  // Bitwise run fingerprints for --backend_compare: an FNV fold of the
  // final global model and the per-round mean benign losses. RAM and
  // mmap runs of the same config must agree on both exactly.
  uint64_t model_digest = 0;
  std::vector<double> round_losses;
};

/// Runs the sweep; aborts the binary on (unexpected) construction
/// failure.
ScaleSweepResult RunScaleSweep(const ScaleSweepConfig& config);

/// Linux VmHWM in bytes; 0 on other platforms.
int64_t PeakRssBytes();

}  // namespace pieck::bench

#endif  // PIECK_BENCH_BENCH_LIB_H_
