// Fig. 6(b): average wall-clock time per communication round for the
// vanilla system, the two PIECK attacks, and the regularization defense,
// on MF-FRS and DL-FRS (ML-1M-like). Paper shape: DL-FRS costs more
// than MF-FRS; attacks add negligible time; the defense adds a modest
// per-round overhead.

#include <cstdio>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int rounds = static_cast<int>(flags.GetInt("rounds", 40));

  struct Scenario {
    const char* name;
    AttackKind attack;
    DefenseKind defense;
  };
  const std::vector<Scenario> scenarios = {
      {"No(Att.&Def.)", AttackKind::kNone, DefenseKind::kNoDefense},
      {"PIECK-IPE", AttackKind::kPieckIpe, DefenseKind::kNoDefense},
      {"PIECK-UEA", AttackKind::kPieckUea, DefenseKind::kNoDefense},
      {"DEFENSE(ours)", AttackKind::kPieckUea, DefenseKind::kOurs},
  };

  std::printf("== Fig. 6(b): time per round, seconds (ML-1M-like) ==\n");
  TablePrinter table({"Scenario", "MF-FRS", "DL-FRS"});
  // Client-side cost telemetry from the final round of each run: how
  // many uploads a round builds, the resident size of the reusable
  // round arenas, and the benign-population store footprint.
  TablePrinter cost({"Scenario", "Model", "Uploads/round", "Arena KB",
                     "Store KB"});
  // The round pipeline's per-stage wall times (Select → Train → Route →
  // Apply → Interaction, final round), plus the shard count the routing
  // and apply stages ran with.
  TablePrinter stages({"Scenario", "Model", "Select ms", "Train ms",
                       "Route ms", "Apply ms", "Interact ms", "Shards"});
  for (const Scenario& s : scenarios) {
    std::vector<std::string> row = {s.name};
    for (ModelKind kind :
         {ModelKind::kMatrixFactorization, ModelKind::kNeuralCf}) {
      ExperimentConfig config = MakeBenchConfig(BenchDataset::kMl1m, kind,
                                                flags);
      ApplyAttackCalibration(config, s.attack);
      config.defense = s.defense;
      config.rounds = rounds;
      ExperimentResult result = MustRun(config);
      row.push_back(FormatDouble(result.seconds_per_round, 4));
      cost.AddRow({s.name, ModelKindToString(kind),
                   std::to_string(result.uploads_built),
                   FormatDouble(result.scratch_bytes_in_use / 1024.0, 1),
                   FormatDouble(result.store_footprint_bytes / 1024.0, 1)});
      stages.AddRow({s.name, ModelKindToString(kind),
                     FormatDouble(result.select_ms, 3),
                     FormatDouble(result.train_ms, 3),
                     FormatDouble(result.route_ms, 3),
                     FormatDouble(result.apply_ms, 3),
                     FormatDouble(result.interaction_ms, 3),
                     std::to_string(result.router_shards)});
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n== Client-side cost (final round) ==\n%s",
              cost.ToString().c_str());
  std::printf("\n== Round pipeline stages (final round) ==\n%s",
              stages.ToString().c_str());
  return 0;
}
