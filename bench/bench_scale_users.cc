// Population-scale sweep for the virtualized client state: drives
// store-backed federated rounds over populations up to (and beyond) one
// million simulated users and reports the store's bytes/user footprint,
// round throughput, per-stage tail latency (p50/p95/p99 histograms over
// every round), and peak RSS. The former one-object-per-user design
// topped out orders of magnitude below this on the same hardware.
//
// The traffic shape is configurable (see docs/WORKLOADS.md): skewed
// participation, user churn, diurnal arrival waves, and hot-item
// interaction skew all run through the same store-backed engine.
//
// Usage:
//   bench_scale_users                         # sweep up to 1M users
//   bench_scale_users --users 2000000         # single run at 2M
//   bench_scale_users --workload zipf --zipf_s 1.1
//       --churn_join 0.02 --churn_leave 0.02  # production-shaped traffic
//   bench_scale_users --pipeline_depth 2      # bounded-staleness engine
//       --staleness_decay 0.8 --max_staleness 4
//   bench_scale_users --depth_compare         # depth 1 vs depth D at each
//                                             # population; emits an "async"
//                                             # JSON section with the
//                                             # overlap speedup
//   bench_scale_users --storage mmap          # beyond-RAM populations: the
//       --cache_rows 65536 --store_dir /x     # store's embedding table and
//                                             # CSR live in mmap'd files
//                                             # behind a hot-row cache
//   bench_scale_users --storage mmap          # cold-row transfer engine:
//       --io_engine io_uring                  # mmap-touch | pread-batch |
//                                             # io_uring (degrades to
//                                             # pread-batch if unsupported)
//   bench_scale_users --backend_compare       # RAM vs mmap under every
//                                             # available I/O engine; FAILs
//                                             # unless the model digest and
//                                             # per-round losses match
//                                             # bitwise across all of them
//   bench_scale_users --engine_compare        # mmap-touch baseline vs the
//                                             # batched engines; emits an
//                                             # "io_engine_compare" JSON
//                                             # section with the speedups
//   bench_scale_users --max_rss_mb 1500       # fail if VmHWM exceeds
//   bench_scale_users --json scale.json       # machine-readable output
//
// CI runs three reduced forms as Release smoke tests (uniform, Zipf +
// churn under the workload-smoke job, and a --depth_compare run under
// the async-smoke job, all gated through tools/check_bench_json.py);
// see .github/workflows/ci.yml.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"
#include "storage/fault_engine.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void WriteLatencyJson(std::FILE* f, const StageLatencies& latencies) {
  std::fprintf(f, "\"latency_ms\": {");
  for (int s = 0; s < StageLatencies::kNumStages; ++s) {
    const LatencyHistogram& h = latencies.stage[s];
    std::fprintf(f,
                 "\"%s\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
                 "\"mean\": %.4f, \"max\": %.4f, \"count\": %lld}%s",
                 StageLatencies::StageName(s), h.Quantile(0.5),
                 h.Quantile(0.95), h.Quantile(0.99), h.mean_ms(), h.max_ms(),
                 static_cast<long long>(h.count()),
                 s + 1 < StageLatencies::kNumStages ? ", " : "");
  }
  std::fprintf(f, "}");
}

void WriteWorkloadJson(std::FILE* f, const ScaleSweepResult& r) {
  const WorkloadConfig& w = r.config.workload;
  std::fprintf(
      f,
      "\"workload\": {\"participation\": \"%s\", \"zipf_exponent\": %.3f, "
      "\"exponential_rate\": %.3f, \"diurnal_amplitude\": %.3f, "
      "\"diurnal_period\": %d, \"churn_join_rate\": %.4f, "
      "\"churn_leave_rate\": %.4f, \"churn_initial_active\": %.4f, "
      "\"hot_item_fraction\": %.4f, \"hot_item_rate\": %.4f, "
      "\"active_benign_final\": %d, \"num_selected_final\": %d}",
      ParticipationKindToString(w.participation), w.zipf_exponent,
      w.exponential_rate, w.diurnal_amplitude, w.diurnal_period,
      w.churn.join_rate, w.churn.leave_rate, w.churn.initial_active,
      w.hot_item_fraction, w.hot_item_rate, r.active_benign_final,
      r.num_selected_final);
}

void WriteStalenessHistJson(std::FILE* f, const std::vector<int64_t>& hist) {
  std::fprintf(f, "\"staleness_hist\": [");
  for (size_t s = 0; s < hist.size(); ++s) {
    std::fprintf(f, "%lld%s", static_cast<long long>(hist[s]),
                 s + 1 < hist.size() ? ", " : "");
  }
  std::fprintf(f, "]");
}

void WriteStorageJson(std::FILE* f, const ScaleSweepResult& r) {
  std::fprintf(
      f,
      "\"storage\": {\"backend\": \"%s\", \"io_engine\": \"%s\", "
      "\"cache_rows\": %lld, "
      "\"backing_mb\": %.1f, \"cache_hits\": %lld, \"cache_misses\": %lld, "
      "\"cache_evictions\": %lld, \"cache_writebacks\": %lld, "
      "\"cache_hit_rate\": %.4f, \"io_read_runs\": %lld, "
      "\"io_write_runs\": %lld, \"staged_rows\": %lld, "
      "\"staged_hits\": %lld, \"prefetched_rows\": %lld, "
      "\"prefetch_ranges\": %lld, \"trims\": %lld",
      StorageKindToString(r.config.storage.kind), r.io_engine.c_str(),
      static_cast<long long>(r.config.storage.cache_rows),
      r.store_backing_bytes / 1048576.0,
      static_cast<long long>(r.cache_hits),
      static_cast<long long>(r.cache_misses),
      static_cast<long long>(r.cache_evictions),
      static_cast<long long>(r.cache_writebacks), r.cache_hit_rate,
      static_cast<long long>(r.io_read_runs),
      static_cast<long long>(r.io_write_runs),
      static_cast<long long>(r.staged_rows),
      static_cast<long long>(r.staged_hits),
      static_cast<long long>(r.prefetched_rows),
      static_cast<long long>(r.prefetch_ranges),
      static_cast<long long>(r.trims));
  if (!r.shard_counters.empty()) {
    // Per-shard hit rates plus the max/min ratio the imbalance gate
    // reads (tools/check_bench_json.py storage --max-shard-imbalance).
    // ratio is 0 when undefined (no traffic, or a fully-cold shard).
    double min_rate = 1.0;
    double max_rate = 0.0;
    int active = 0;
    for (const HotRowCache::ShardCounters& s : r.shard_counters) {
      const int64_t total = s.hits + s.misses;
      if (total == 0) continue;
      const double rate =
          static_cast<double>(s.hits) / static_cast<double>(total);
      min_rate = std::min(min_rate, rate);
      max_rate = std::max(max_rate, rate);
      ++active;
    }
    const double ratio =
        active >= 2 && min_rate > 0.0 ? max_rate / min_rate : 0.0;
    std::fprintf(f,
                 ", \"shard_hit_rate_min\": %.4f, \"shard_hit_rate_max\": "
                 "%.4f, \"shard_hit_rate_ratio\": %.4f, \"shards\": [",
                 active > 0 ? min_rate : 0.0, max_rate, ratio);
    for (size_t s = 0; s < r.shard_counters.size(); ++s) {
      const HotRowCache::ShardCounters& c = r.shard_counters[s];
      std::fprintf(f,
                   "{\"hits\": %lld, \"misses\": %lld, \"evictions\": "
                   "%lld}%s",
                   static_cast<long long>(c.hits),
                   static_cast<long long>(c.misses),
                   static_cast<long long>(c.evictions),
                   s + 1 < r.shard_counters.size() ? ", " : "");
    }
    std::fprintf(f, "]");
  }
  std::fprintf(f, "}");
}

/// RAM vs one mmap engine comparison at one population
/// (--backend_compare runs one of these per available I/O engine).
struct BackendCompare {
  int users = 0;
  std::string engine;  // resolved engine of the mmap run
  bool identical = false;
  uint64_t ram_digest = 0;
  uint64_t mmap_digest = 0;
  double rounds_per_sec_ram = 0.0;
  double rounds_per_sec_mmap = 0.0;
};

/// mmap-touch vs one batched engine at one population (--engine_compare).
struct EngineCompare {
  int users = 0;
  std::string engine;  // resolved engine of the candidate run
  double rounds_per_sec_mmap_touch = 0.0;
  double rounds_per_sec = 0.0;
  double speedup = 0.0;  // candidate throughput / mmap-touch
};

/// Depth-1 vs depth-D comparison at one population (--depth_compare).
struct AsyncCompare {
  int users = 0;
  int depth = 1;
  double rounds_per_sec_depth1 = 0.0;
  double rounds_per_sec = 0.0;   // at `depth`
  double overlap_speedup = 0.0;  // depth-D throughput / depth-1
  const ScaleSweepResult* deep = nullptr;  // the depth-D run
};

int WriteJson(const std::string& path,
              const std::vector<ScaleSweepResult>& results,
              const std::vector<AsyncCompare>& compares,
              const std::vector<BackendCompare>& backend_compares,
              const std::vector<EngineCompare>& engine_compares) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"scale_users\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleSweepResult& r = results[i];
    std::fprintf(
        f,
        "    {\"users\": %d, \"items\": %d, \"dim\": %d, \"threads\": %d, "
        "\"users_per_round\": %d, \"rounds\": %d, \"bytes_per_user\": %.1f, "
        "\"store_mb\": %.1f, \"arena_kb\": %.1f, \"rounds_per_sec\": %.2f, "
        "\"clients_per_sec\": %.0f, \"setup_s\": %.2f, "
        "\"peak_rss_mb\": %.1f, \"select_ms\": %.3f, \"train_ms\": %.3f, "
        "\"route_ms\": %.3f, \"apply_ms\": %.3f, \"router_shards\": %d, "
        "\"router_entries\": %lld, \"pipeline_depth\": %d, "
        "\"mean_staleness\": %.4f, \"max_staleness\": %d, "
        "\"dropped_stale\": %lld,\n     ",
        r.config.num_users, r.config.num_items, r.config.dim,
        r.config.num_threads, r.config.users_per_round, r.config.rounds,
        r.bytes_per_user, r.store_bytes / 1048576.0, r.arena_bytes / 1024.0,
        r.rounds_per_sec, r.clients_per_sec, r.setup_seconds,
        r.peak_rss_bytes / 1048576.0, r.select_ms, r.train_ms, r.route_ms,
        r.apply_ms, r.router_shards,
        static_cast<long long>(r.router_entries), r.pipeline_depth,
        r.mean_staleness, r.max_staleness,
        static_cast<long long>(r.dropped_stale));
    WriteStalenessHistJson(f, r.staleness_hist);
    std::fprintf(f, ",\n     ");
    WriteStorageJson(f, r);
    std::fprintf(f, ",\n     ");
    WriteWorkloadJson(f, r);
    std::fprintf(f, ",\n     ");
    WriteLatencyJson(f, r.latencies);
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (!compares.empty()) {
    std::fprintf(f, ",\n  \"async\": [\n");
    for (size_t i = 0; i < compares.size(); ++i) {
      const AsyncCompare& c = compares[i];
      std::fprintf(f,
                   "    {\"users\": %d, \"depth\": %d, "
                   "\"rounds_per_sec_depth1\": %.2f, \"rounds_per_sec\": "
                   "%.2f, \"overlap_speedup\": %.3f, \"mean_staleness\": "
                   "%.4f, \"max_staleness\": %d, \"dropped_stale\": %lld, ",
                   c.users, c.depth, c.rounds_per_sec_depth1, c.rounds_per_sec,
                   c.overlap_speedup, c.deep->mean_staleness,
                   c.deep->max_staleness,
                   static_cast<long long>(c.deep->dropped_stale));
      WriteStalenessHistJson(f, c.deep->staleness_hist);
      std::fprintf(f, "}%s\n", i + 1 < compares.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
  }
  if (!backend_compares.empty()) {
    std::fprintf(f, ",\n  \"storage_compare\": [\n");
    for (size_t i = 0; i < backend_compares.size(); ++i) {
      const BackendCompare& c = backend_compares[i];
      std::fprintf(f,
                   "    {\"users\": %d, \"engine\": \"%s\", \"identical\": "
                   "%s, \"ram_digest\": "
                   "\"%016llx\", \"mmap_digest\": \"%016llx\", "
                   "\"rounds_per_sec_ram\": %.2f, \"rounds_per_sec_mmap\": "
                   "%.2f}%s\n",
                   c.users, c.engine.c_str(), c.identical ? "true" : "false",
                   static_cast<unsigned long long>(c.ram_digest),
                   static_cast<unsigned long long>(c.mmap_digest),
                   c.rounds_per_sec_ram, c.rounds_per_sec_mmap,
                   i + 1 < backend_compares.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
  }
  if (!engine_compares.empty()) {
    std::fprintf(f, ",\n  \"io_engine_compare\": [\n");
    for (size_t i = 0; i < engine_compares.size(); ++i) {
      const EngineCompare& c = engine_compares[i];
      std::fprintf(f,
                   "    {\"users\": %d, \"engine\": \"%s\", "
                   "\"rounds_per_sec_mmap_touch\": %.2f, "
                   "\"rounds_per_sec\": %.2f, \"speedup\": %.3f}%s\n",
                   c.users, c.engine.c_str(), c.rounds_per_sec_mmap_touch,
                   c.rounds_per_sec, c.speedup,
                   i + 1 < engine_compares.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ScaleSweepConfig base;
  base.num_items = static_cast<int>(flags.GetInt("items", 50000));
  base.interactions_per_user = static_cast<int>(flags.GetInt("ipu", 8));
  base.dim = static_cast<int>(flags.GetInt("dim", 16));
  base.rounds = static_cast<int>(flags.GetInt("rounds", 3));
  base.users_per_round = static_cast<int>(flags.GetInt("batch", 512));
  base.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  base.workload = ParseWorkloadFlags(flags);
  const bool depth_compare = flags.GetBool("depth_compare", false);
  base.async.pipeline_depth = static_cast<int>(
      flags.GetInt("pipeline_depth", depth_compare ? 2 : 1));
  base.async.staleness_decay = flags.GetDouble("staleness_decay", 1.0);
  base.async.max_staleness =
      static_cast<int>(flags.GetInt("max_staleness", -1));
  if (base.async.pipeline_depth < 1 || base.async.staleness_decay <= 0.0 ||
      base.async.staleness_decay > 1.0 || base.async.max_staleness < -1) {
    std::fprintf(stderr,
                 "error: need --pipeline_depth >= 1, --staleness_decay in "
                 "(0, 1], --max_staleness >= -1\n");
    return 1;
  }
  if (depth_compare && base.async.pipeline_depth < 2) {
    std::fprintf(stderr,
                 "error: --depth_compare needs --pipeline_depth >= 2\n");
    return 1;
  }
  const bool backend_compare = flags.GetBool("backend_compare", false);
  const bool engine_compare = flags.GetBool("engine_compare", false);
  const std::string storage_name = flags.GetString(
      "storage", backend_compare || engine_compare ? "mmap" : "ram");
  if (Status st = ParseStorageKind(storage_name, &base.storage.kind);
      !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  base.storage.cache_rows = flags.GetInt("cache_rows", 0);
  base.storage.dir = flags.GetString("store_dir", "");
  if (const std::string name = flags.GetString("io_engine", "");
      !name.empty()) {
    if (Status st = ParseIoEngine(name, &base.storage.io_engine); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (Status st = base.storage.Validate(); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if ((backend_compare || engine_compare) && depth_compare) {
    std::fprintf(stderr,
                 "error: the compare modes are mutually exclusive\n");
    return 1;
  }
  if (backend_compare && engine_compare) {
    std::fprintf(stderr,
                 "error: --backend_compare and --engine_compare are "
                 "mutually exclusive\n");
    return 1;
  }
  if ((backend_compare || engine_compare) &&
      base.storage.kind != StorageKind::kMmap) {
    std::fprintf(stderr, "error: the compare modes need --storage mmap\n");
    return 1;
  }
  const int64_t max_rss_mb = flags.GetInt("max_rss_mb", 0);
  const std::string json = flags.GetString("json", "");

  std::vector<int> populations;
  if (flags.GetInt("users", 0) > 0) {
    populations.push_back(static_cast<int>(flags.GetInt("users", 0)));
  } else {
    populations = {100000, 300000, 1000000};
  }

  std::printf("== Population scale: struct-of-arrays client store ==\n");
  std::printf("workload: %s, pipeline depth %d%s, storage %s%s\n",
              ParticipationKindToString(base.workload.participation),
              base.async.pipeline_depth, depth_compare ? " (vs depth 1)" : "",
              StorageKindToString(base.storage.kind),
              backend_compare ? " (vs ram)" : "");
  TablePrinter table({"Users", "Backend", "Depth", "Active", "Bytes/user",
                      "Store MB", "Hit%", "Rounds/s", "Clients/s",
                      "Round p50", "Round p99", "Stall p99", "MeanStale",
                      "Dropped", "Peak RSS MB"});
  std::vector<ScaleSweepResult> results;
  std::vector<AsyncCompare> compares;
  std::vector<BackendCompare> backend_compares;
  std::vector<EngineCompare> engine_compares;
  const auto add_row = [&table](int users, const ScaleSweepResult& r) {
    const LatencyHistogram& round = r.latencies.stage[StageLatencies::kRound];
    const LatencyHistogram& stall = r.latencies.stage[StageLatencies::kStall];
    const bool mmap = r.config.storage.kind == StorageKind::kMmap;
    table.AddRow({std::to_string(users),
                  mmap ? "mmap:" + r.io_engine : std::string("ram"),
                  std::to_string(r.pipeline_depth),
                  std::to_string(r.active_benign_final),
                  FormatDouble(r.bytes_per_user, 1),
                  FormatDouble(r.store_bytes / 1048576.0, 1),
                  mmap ? Pct(r.cache_hit_rate) : "-",
                  FormatDouble(r.rounds_per_sec, 2),
                  FormatDouble(r.clients_per_sec, 0),
                  FormatDouble(round.Quantile(0.5), 3),
                  FormatDouble(round.Quantile(0.99), 3),
                  FormatDouble(stall.Quantile(0.99), 3),
                  FormatDouble(r.mean_staleness, 2),
                  std::to_string(r.dropped_stale),
                  FormatDouble(r.peak_rss_bytes / 1048576.0, 1)});
  };
  // Engines the compare modes sweep: the mmap-touch reference first,
  // then the batched engines this host can run (io_uring only where the
  // kernel/sandbox allows rings, so the sweep never silently tests the
  // fallback twice).
  std::vector<IoEngineKind> sweep_engines = {IoEngineKind::kMmapTouch,
                                             IoEngineKind::kPreadBatch};
  if (IoUringSupported()) sweep_engines.push_back(IoEngineKind::kIoUring);

  for (int users : populations) {
    ScaleSweepConfig config = base;
    config.num_users = users;
    if (backend_compare) {
      // One RAM reference, then every available engine against it.
      ScaleSweepConfig ram_config = config;
      ram_config.storage = StorageConfig();
      ScaleSweepResult ram = RunScaleSweep(ram_config);
      results.push_back(ram);
      add_row(users, ram);
      for (IoEngineKind engine : sweep_engines) {
        ScaleSweepConfig mmap_config = config;
        mmap_config.storage.io_engine = engine;
        ScaleSweepResult r = RunScaleSweep(mmap_config);
        results.push_back(r);
        add_row(users, r);
        BackendCompare c;
        c.users = users;
        c.engine = r.io_engine;
        c.ram_digest = ram.model_digest;
        c.mmap_digest = r.model_digest;
        c.rounds_per_sec_ram = ram.rounds_per_sec;
        c.rounds_per_sec_mmap = r.rounds_per_sec;
        c.identical = ram.model_digest == r.model_digest &&
                      ram.round_losses == r.round_losses;
        backend_compares.push_back(c);
      }
      continue;
    }
    if (engine_compare) {
      double mmap_touch_rps = 0.0;
      for (IoEngineKind engine : sweep_engines) {
        ScaleSweepConfig mmap_config = config;
        mmap_config.storage.io_engine = engine;
        ScaleSweepResult r = RunScaleSweep(mmap_config);
        results.push_back(r);
        add_row(users, r);
        if (engine == IoEngineKind::kMmapTouch) {
          mmap_touch_rps = r.rounds_per_sec;
          continue;
        }
        EngineCompare c;
        c.users = users;
        c.engine = r.io_engine;
        c.rounds_per_sec_mmap_touch = mmap_touch_rps;
        c.rounds_per_sec = r.rounds_per_sec;
        c.speedup = mmap_touch_rps > 0.0
                        ? r.rounds_per_sec / mmap_touch_rps
                        : 0.0;
        engine_compares.push_back(c);
      }
      continue;
    }
    if (depth_compare) {
      ScaleSweepConfig sync_config = config;
      sync_config.async.pipeline_depth = 1;
      ScaleSweepResult sync = RunScaleSweep(sync_config);
      results.push_back(sync);
      add_row(users, sync);
    }
    ScaleSweepResult r = RunScaleSweep(config);
    results.push_back(r);
    add_row(users, r);
    if (depth_compare) {
      const ScaleSweepResult& sync = results[results.size() - 2];
      AsyncCompare c;
      c.users = users;
      c.depth = base.async.pipeline_depth;
      c.rounds_per_sec_depth1 = sync.rounds_per_sec;
      c.rounds_per_sec = r.rounds_per_sec;
      c.overlap_speedup =
          sync.rounds_per_sec > 0.0 ? r.rounds_per_sec / sync.rounds_per_sec
                                    : 0.0;
      compares.push_back(c);
    }
  }
  // Resolve the deep-run pointers only once `results` stops growing.
  for (size_t i = 0; i < compares.size(); ++i) {
    compares[i].deep = &results[2 * i + 1];
  }
  std::printf("%s", table.ToString().c_str());
  for (const AsyncCompare& c : compares) {
    std::printf("overlap speedup at %d users: %.3fx (depth %d %.2f rounds/s "
                "vs depth 1 %.2f rounds/s)\n",
                c.users, c.overlap_speedup, c.depth, c.rounds_per_sec,
                c.rounds_per_sec_depth1);
  }
  bool backend_mismatch = false;
  for (const BackendCompare& c : backend_compares) {
    std::printf("backend compare at %d users [%s]: %s (model digest ram "
                "%016llx vs mmap %016llx; ram %.2f rounds/s, mmap %.2f "
                "rounds/s)\n",
                c.users, c.engine.c_str(),
                c.identical ? "bit-identical" : "MISMATCH",
                static_cast<unsigned long long>(c.ram_digest),
                static_cast<unsigned long long>(c.mmap_digest),
                c.rounds_per_sec_ram, c.rounds_per_sec_mmap);
    backend_mismatch = backend_mismatch || !c.identical;
  }
  for (const EngineCompare& c : engine_compares) {
    std::printf("engine compare at %d users: %s %.2f rounds/s vs mmap-touch "
                "%.2f rounds/s (%.3fx)\n",
                c.users, c.engine.c_str(), c.rounds_per_sec,
                c.rounds_per_sec_mmap_touch, c.speedup);
  }

  if (!json.empty() && WriteJson(json, results, compares, backend_compares,
                                 engine_compares) != 0) {
    return 1;
  }
  if (backend_mismatch) {
    std::fprintf(stderr,
                 "FAIL: mmap run diverged from the RAM run (storage must "
                 "never change results)\n");
    return 1;
  }

  if (max_rss_mb > 0) {
    const int64_t peak_mb = PeakRssBytes() / (1024 * 1024);
    if (peak_mb > max_rss_mb) {
      std::fprintf(stderr,
                   "FAIL: peak RSS %lld MB exceeds --max_rss_mb %lld\n",
                   static_cast<long long>(peak_mb),
                   static_cast<long long>(max_rss_mb));
      return 1;
    }
    std::printf("peak RSS %lld MB within budget (%lld MB)\n",
                static_cast<long long>(peak_mb),
                static_cast<long long>(max_rss_mb));
  }
  return 0;
}
