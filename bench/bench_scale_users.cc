// Population-scale sweep for the virtualized client state: drives
// store-backed federated rounds over populations up to (and beyond) one
// million simulated users and reports the store's bytes/user footprint,
// round throughput, per-stage tail latency (p50/p95/p99 histograms over
// every round), and peak RSS. The former one-object-per-user design
// topped out orders of magnitude below this on the same hardware.
//
// The traffic shape is configurable (see docs/WORKLOADS.md): skewed
// participation, user churn, diurnal arrival waves, and hot-item
// interaction skew all run through the same store-backed engine.
//
// Usage:
//   bench_scale_users                         # sweep up to 1M users
//   bench_scale_users --users 2000000         # single run at 2M
//   bench_scale_users --workload zipf --zipf_s 1.1
//       --churn_join 0.02 --churn_leave 0.02  # production-shaped traffic
//   bench_scale_users --max_rss_mb 1500       # fail if VmHWM exceeds
//   bench_scale_users --json scale.json       # machine-readable output
//
// CI runs two reduced forms as Release smoke tests (uniform, and
// Zipf + churn under the workload-smoke job, gated through
// tools/check_bench_json.py); see .github/workflows/ci.yml.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_lib.h"
#include "common/string_util.h"
#include "core/report.h"

using namespace pieck;
using namespace pieck::bench;

namespace {

void WriteLatencyJson(std::FILE* f, const StageLatencies& latencies) {
  std::fprintf(f, "\"latency_ms\": {");
  for (int s = 0; s < StageLatencies::kNumStages; ++s) {
    const LatencyHistogram& h = latencies.stage[s];
    std::fprintf(f,
                 "\"%s\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
                 "\"mean\": %.4f, \"max\": %.4f, \"count\": %lld}%s",
                 StageLatencies::StageName(s), h.Quantile(0.5),
                 h.Quantile(0.95), h.Quantile(0.99), h.mean_ms(), h.max_ms(),
                 static_cast<long long>(h.count()),
                 s + 1 < StageLatencies::kNumStages ? ", " : "");
  }
  std::fprintf(f, "}");
}

void WriteWorkloadJson(std::FILE* f, const ScaleSweepResult& r) {
  const WorkloadConfig& w = r.config.workload;
  std::fprintf(
      f,
      "\"workload\": {\"participation\": \"%s\", \"zipf_exponent\": %.3f, "
      "\"exponential_rate\": %.3f, \"diurnal_amplitude\": %.3f, "
      "\"diurnal_period\": %d, \"churn_join_rate\": %.4f, "
      "\"churn_leave_rate\": %.4f, \"churn_initial_active\": %.4f, "
      "\"hot_item_fraction\": %.4f, \"hot_item_rate\": %.4f, "
      "\"active_benign_final\": %d, \"num_selected_final\": %d}",
      ParticipationKindToString(w.participation), w.zipf_exponent,
      w.exponential_rate, w.diurnal_amplitude, w.diurnal_period,
      w.churn.join_rate, w.churn.leave_rate, w.churn.initial_active,
      w.hot_item_fraction, w.hot_item_rate, r.active_benign_final,
      r.num_selected_final);
}

int WriteJson(const std::string& path,
              const std::vector<ScaleSweepResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"scale_users\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleSweepResult& r = results[i];
    std::fprintf(
        f,
        "    {\"users\": %d, \"items\": %d, \"dim\": %d, \"threads\": %d, "
        "\"users_per_round\": %d, \"rounds\": %d, \"bytes_per_user\": %.1f, "
        "\"store_mb\": %.1f, \"arena_kb\": %.1f, \"rounds_per_sec\": %.2f, "
        "\"clients_per_sec\": %.0f, \"setup_s\": %.2f, "
        "\"peak_rss_mb\": %.1f, \"select_ms\": %.3f, \"train_ms\": %.3f, "
        "\"route_ms\": %.3f, \"apply_ms\": %.3f, \"router_shards\": %d, "
        "\"router_entries\": %lld,\n     ",
        r.config.num_users, r.config.num_items, r.config.dim,
        r.config.num_threads, r.config.users_per_round, r.config.rounds,
        r.bytes_per_user, r.store_bytes / 1048576.0, r.arena_bytes / 1024.0,
        r.rounds_per_sec, r.clients_per_sec, r.setup_seconds,
        r.peak_rss_bytes / 1048576.0, r.select_ms, r.train_ms, r.route_ms,
        r.apply_ms, r.router_shards,
        static_cast<long long>(r.router_entries));
    WriteWorkloadJson(f, r);
    std::fprintf(f, ",\n     ");
    WriteLatencyJson(f, r.latencies);
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ScaleSweepConfig base;
  base.num_items = static_cast<int>(flags.GetInt("items", 50000));
  base.interactions_per_user = static_cast<int>(flags.GetInt("ipu", 8));
  base.dim = static_cast<int>(flags.GetInt("dim", 16));
  base.rounds = static_cast<int>(flags.GetInt("rounds", 3));
  base.users_per_round = static_cast<int>(flags.GetInt("batch", 512));
  base.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  base.workload = ParseWorkloadFlags(flags);
  const int64_t max_rss_mb = flags.GetInt("max_rss_mb", 0);
  const std::string json = flags.GetString("json", "");

  std::vector<int> populations;
  if (flags.GetInt("users", 0) > 0) {
    populations.push_back(static_cast<int>(flags.GetInt("users", 0)));
  } else {
    populations = {100000, 300000, 1000000};
  }

  std::printf("== Population scale: struct-of-arrays client store ==\n");
  std::printf("workload: %s\n",
              ParticipationKindToString(base.workload.participation));
  TablePrinter table({"Users", "Active", "Bytes/user", "Store MB",
                      "Rounds/s", "Clients/s", "Round p50", "Round p99",
                      "Train p99", "Setup s", "Peak RSS MB"});
  std::vector<ScaleSweepResult> results;
  for (int users : populations) {
    ScaleSweepConfig config = base;
    config.num_users = users;
    ScaleSweepResult r = RunScaleSweep(config);
    results.push_back(r);
    const LatencyHistogram& round =
        r.latencies.stage[StageLatencies::kRound];
    const LatencyHistogram& train =
        r.latencies.stage[StageLatencies::kTrain];
    table.AddRow({std::to_string(users),
                  std::to_string(r.active_benign_final),
                  FormatDouble(r.bytes_per_user, 1),
                  FormatDouble(r.store_bytes / 1048576.0, 1),
                  FormatDouble(r.rounds_per_sec, 2),
                  FormatDouble(r.clients_per_sec, 0),
                  FormatDouble(round.Quantile(0.5), 3),
                  FormatDouble(round.Quantile(0.99), 3),
                  FormatDouble(train.Quantile(0.99), 3),
                  FormatDouble(r.setup_seconds, 2),
                  FormatDouble(r.peak_rss_bytes / 1048576.0, 1)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!json.empty() && WriteJson(json, results) != 0) return 1;

  if (max_rss_mb > 0) {
    const int64_t peak_mb = PeakRssBytes() / (1024 * 1024);
    if (peak_mb > max_rss_mb) {
      std::fprintf(stderr,
                   "FAIL: peak RSS %lld MB exceeds --max_rss_mb %lld\n",
                   static_cast<long long>(peak_mb),
                   static_cast<long long>(max_rss_mb));
      return 1;
    }
    std::printf("peak RSS %lld MB within budget (%lld MB)\n",
                static_cast<long long>(peak_mb),
                static_cast<long long>(max_rss_mb));
  }
  return 0;
}
