#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/math.h"
#include "tensor/matrix.h"
#include "tensor/vector_ops.h"

namespace pieck {
namespace {

TEST(VectorOpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  Vec y = {1, 1};
  Axpy(2.0, {3, 4}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(VectorOpsTest, ScaleAddSub) {
  Vec x = {2, -4};
  Scale(0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  Vec s = Add({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  Vec d = Sub({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(d[0], -2.0);
}

TEST(VectorOpsTest, Norms) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredNorm2({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(L2Distance({1, 1}, {4, 5}), 5.0);
}

TEST(VectorOpsTest, CosineSimilarityBasics) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

TEST(VectorOpsTest, CosineGradMatchesNumeric) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(5), b(5);
    for (double& v : a) v = rng.Normal(0, 1);
    for (double& v : b) v = rng.Normal(0, 1);
    Vec analytic = CosineSimilarityGradWrtB(a, b);
    double err = MaxRelativeGradError(
        [&](const Vec& x) { return CosineSimilarity(a, x); }, b, analytic);
    EXPECT_LT(err, 1e-5);
  }
}

TEST(VectorOpsTest, CosineGradOrthogonalToB) {
  // The cosine gradient w.r.t. b has no radial component.
  Rng rng(4);
  Vec a(6), b(6);
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  Vec grad = CosineSimilarityGradWrtB(a, b);
  EXPECT_NEAR(Dot(grad, b), 0.0, 1e-10);
}

TEST(VectorOpsTest, SoftmaxSumsToOne) {
  Vec p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(VectorOpsTest, SoftmaxStableForLargeInputs) {
  Vec p = Softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_TRUE(AllFinite(p));
}

TEST(VectorOpsTest, SoftmaxKlProperties) {
  Vec a = {0.3, -1.0, 2.0};
  EXPECT_NEAR(SoftmaxKl(a, a), 0.0, 1e-12);
  // Shift invariance of softmax: KL(a, a + c) == 0.
  Vec shifted = {1.3, 0.0, 3.0};
  EXPECT_NEAR(SoftmaxKl(a, shifted), 0.0, 1e-12);
  EXPECT_GT(SoftmaxKl(a, {2.0, -1.0, 0.3}), 0.0);
}

TEST(VectorOpsTest, SoftmaxKlGradWrtBMatchesNumeric) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(4), b(4);
    for (double& v : a) v = rng.Normal(0, 1);
    for (double& v : b) v = rng.Normal(0, 1);
    Vec analytic = SoftmaxKlGradWrtB(a, b);
    double err = MaxRelativeGradError(
        [&](const Vec& x) { return SoftmaxKl(a, x); }, b, analytic);
    EXPECT_LT(err, 1e-5);
  }
}

TEST(VectorOpsTest, SoftmaxKlGradWrtAMatchesNumeric) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a(4), b(4);
    for (double& v : a) v = rng.Normal(0, 1);
    for (double& v : b) v = rng.Normal(0, 1);
    Vec analytic = SoftmaxKlGradWrtA(a, b);
    double err = MaxRelativeGradError(
        [&](const Vec& x) { return SoftmaxKl(x, b); }, a, analytic);
    EXPECT_LT(err, 1e-5);
  }
}

TEST(VectorOpsTest, ClipNormOnlyShrinks) {
  Vec x = {3, 4};
  ClipNorm(x, 10.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);  // under the bound: unchanged
  ClipNorm(x, 1.0);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-12);
  EXPECT_NEAR(x[0] / x[1], 3.0 / 4.0, 1e-12);  // direction preserved
}

TEST(VectorOpsTest, AllFiniteDetectsNanInf) {
  EXPECT_TRUE(AllFinite({1.0, -2.0}));
  EXPECT_FALSE(AllFinite({1.0, std::nan("")}));
  EXPECT_FALSE(AllFinite({1.0, INFINITY}));
}

TEST(MathTest, SigmoidRangeAndSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(5.0) + Sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(Sigmoid(100.0), 0.999999);
  EXPECT_LT(Sigmoid(-100.0), 1e-6);
  EXPECT_TRUE(std::isfinite(Sigmoid(1000.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1000.0)));
}

TEST(MathTest, LogSigmoidStable) {
  EXPECT_NEAR(LogSigmoid(0.0), std::log(0.5), 1e-12);
  EXPECT_TRUE(std::isfinite(LogSigmoid(-1000.0)));
  EXPECT_NEAR(LogSigmoid(-1000.0), -1000.0, 1e-9);
  EXPECT_NEAR(LogSigmoid(50.0), 0.0, 1e-9);
}

TEST(MathTest, ReluAndGrad) {
  EXPECT_DOUBLE_EQ(Relu(3.0), 3.0);
  EXPECT_DOUBLE_EQ(Relu(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(ReluGrad(3.0), 1.0);
  EXPECT_DOUBLE_EQ(ReluGrad(-3.0), 0.0);
}

TEST(MathTest, BceConsistencyBetweenForms) {
  for (double y : {0.0, 1.0}) {
    for (double s : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
      EXPECT_NEAR(BceLossFromLogit(y, s), BceLoss(y, Sigmoid(s)), 1e-9);
    }
  }
}

TEST(MathTest, BceGradMatchesNumeric) {
  for (double y : {0.0, 1.0}) {
    for (double s : {-2.0, 0.0, 1.7}) {
      double eps = 1e-6;
      double numeric = (BceLossFromLogit(y, s + eps) -
                        BceLossFromLogit(y, s - eps)) /
                       (2 * eps);
      EXPECT_NEAR(BceGradFromLogit(y, s), numeric, 1e-6);
    }
  }
}

TEST(MatrixTest, RowAccessors) {
  Matrix m(3, 2);
  m.SetRow(1, {5, 6});
  EXPECT_DOUBLE_EQ(m.At(1, 0), 5.0);
  Vec r = m.Row(1);
  EXPECT_DOUBLE_EQ(r[1], 6.0);
  m.AxpyRow(1, 2.0, {1, 1});
  EXPECT_DOUBLE_EQ(m.At(1, 0), 7.0);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  m.SetRow(0, {1, 2, 3});
  m.SetRow(1, {4, 5, 6});
  Vec y = m.MatVec({1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  Vec z = m.MatTVec({1, 1});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(MatrixTest, AddOuterIsRankOneUpdate) {
  Matrix m(2, 2);
  m.AddOuter(2.0, {1, 3}, {4, 5});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 30.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m.SetRow(0, {3, 4});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, RandomInitIsDeterministic) {
  Rng a(11), b(11);
  Matrix m1(4, 4), m2(4, 4);
  m1.RandomNormal(a, 0, 1);
  m2.RandomNormal(b, 0, 1);
  EXPECT_TRUE(m1 == m2);
}

TEST(MatrixTest, SetZeroAndAxpy) {
  Matrix m(2, 2, 1.0);
  Matrix other(2, 2, 3.0);
  m.Axpy(2.0, other);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  m.SetZero();
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(GradCheckTest, NumericGradientOfQuadratic) {
  auto f = [](const Vec& x) { return x[0] * x[0] + 3.0 * x[1]; };
  Vec g = NumericGradient(f, {2.0, 5.0});
  EXPECT_NEAR(g[0], 4.0, 1e-6);
  EXPECT_NEAR(g[1], 3.0, 1e-6);
}

TEST(GradCheckTest, DetectsWrongGradient) {
  auto f = [](const Vec& x) { return x[0] * x[0]; };
  double err = MaxRelativeGradError(f, {2.0}, {1.0});  // true grad is 4
  EXPECT_GT(err, 0.5);
}

/// Property-style sweep: cosine gradient correctness across dimensions.
class CosineGradDims : public ::testing::TestWithParam<int> {};

TEST_P(CosineGradDims, MatchesNumericAtDim) {
  Rng rng(100 + GetParam());
  Vec a(static_cast<size_t>(GetParam())), b(static_cast<size_t>(GetParam()));
  for (double& v : a) v = rng.Normal(0, 1);
  for (double& v : b) v = rng.Normal(0, 1);
  Vec analytic = CosineSimilarityGradWrtB(a, b);
  double err = MaxRelativeGradError(
      [&](const Vec& x) { return CosineSimilarity(a, x); }, b, analytic);
  EXPECT_LT(err, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, CosineGradDims,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace pieck
