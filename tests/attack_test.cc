#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "attack/a_hum.h"
#include "attack/a_ra.h"
#include "attack/attack.h"
#include "attack/fedrec_attack.h"
#include "attack/no_attack.h"
#include "attack/pieck_ipe.h"
#include "attack/pieck_uea.h"
#include "attack/pip_attack.h"
#include "attack/popular_item_miner.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "model/mf_model.h"
#include "model/ncf_model.h"
#include "tensor/math.h"

namespace pieck {
namespace {

constexpr int kDim = 8;

/// Builds a global model where the embeddings of `moving` items change a
/// lot between observations and the rest barely move; then checks the
/// miner recovers exactly the moving set.
TEST(PopularItemMinerTest, RecoversItemsWithLargeDeltaNorm) {
  Rng rng(7);
  Matrix snapshot(20, kDim);
  snapshot.RandomNormal(rng, 0.0, 0.1);
  std::set<int> moving = {3, 7, 11, 15};

  PopularItemMiner miner(/*mining_rounds=*/2, /*top_n=*/4);
  miner.Observe(snapshot);
  for (int step = 0; step < 2; ++step) {
    for (int j = 0; j < 20; ++j) {
      double scale = moving.count(j) ? 1.0 : 0.001;
      for (int c = 0; c < kDim; ++c) {
        snapshot.At(static_cast<size_t>(j), static_cast<size_t>(c)) +=
            rng.Normal(0.0, scale);
      }
    }
    miner.Observe(snapshot);
  }
  ASSERT_TRUE(miner.Ready());
  std::set<int> mined(miner.MinedItems().begin(), miner.MinedItems().end());
  EXPECT_EQ(mined, moving);
}

TEST(PopularItemMinerTest, NotReadyBeforeEnoughObservations) {
  PopularItemMiner miner(2, 3);
  Matrix m(5, kDim);
  miner.Observe(m);
  EXPECT_FALSE(miner.Ready());
  miner.Observe(m);
  EXPECT_FALSE(miner.Ready());  // one delta seen, needs two
  miner.Observe(m);
  EXPECT_TRUE(miner.Ready());
  EXPECT_EQ(miner.observations(), 3);
}

TEST(PopularItemMinerTest, FreezesAfterMiningCompletes) {
  Rng rng(9);
  Matrix m(6, kDim);
  m.RandomNormal(rng, 0, 0.1);
  PopularItemMiner miner(1, 2);
  miner.Observe(m);
  m.At(0, 0) += 10.0;  // item 0 moves hugely during mining
  miner.Observe(m);
  ASSERT_TRUE(miner.Ready());
  std::vector<int> first = miner.MinedItems();
  // Subsequent huge movement of a different item must not change mining.
  m.At(5, 0) += 100.0;
  miner.Observe(m);
  EXPECT_EQ(miner.MinedItems(), first);
  EXPECT_EQ(first[0], 0);
}

TEST(PopularItemMinerTest, TopItemsReRanksWithDifferentN) {
  Rng rng(10);
  Matrix m(6, kDim);
  m.RandomNormal(rng, 0, 0.1);
  PopularItemMiner miner(1, 2);
  miner.Observe(m);
  for (int j = 0; j < 6; ++j) {
    m.At(static_cast<size_t>(j), 0) += static_cast<double>(j);  // Δ ∝ j
  }
  miner.Observe(m);
  std::vector<int> top4 = miner.TopItems(4);
  ASSERT_EQ(top4.size(), 4u);
  EXPECT_EQ(top4[0], 5);
  EXPECT_EQ(top4[1], 4);
}

TEST(IpeRankWeightsTest, NormalizedInverseRank) {
  auto w = internal_ipe::RankWeights(4, true);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[3], 0.25);
  EXPECT_GT(w[0], w[1]);
  auto uniform = internal_ipe::RankWeights(4, false);
  for (double x : uniform) EXPECT_DOUBLE_EQ(x, 1.0);
}

class PieckFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<MfModel>(kDim);
    Rng rng(21);
    global_ = model_->InitGlobalModel(30, rng);
    config_.target_items = {29};
    config_.mining_rounds = 1;
    config_.mined_top_n = 5;
    config_.server_learning_rate = 1.0;
  }

  /// Observes twice with items 0..4 moving most, completing mining.
  template <typename AttackT>
  void CompleteMining(AttackT& attack, Rng& rng) {
    attack.ParticipateRound(global_, 0, rng);
    for (int j = 0; j < 5; ++j) {
      for (int c = 0; c < kDim; ++c) {
        global_.item_embeddings.At(static_cast<size_t>(j),
                                   static_cast<size_t>(c)) +=
            rng.Normal(0.0, 1.0);
      }
    }
  }

  std::unique_ptr<MfModel> model_;
  GlobalModel global_;
  AttackConfig config_;
};

TEST_F(PieckFixture, NoUploadDuringMining) {
  PieckUeaAttack attack(*model_, config_);
  Rng rng(23);
  ClientUpdate upd = attack.ParticipateRound(global_, 0, rng);
  EXPECT_TRUE(upd.item_grads.empty());
}

TEST_F(PieckFixture, UeaUploadsOnlyTargetGradients) {
  PieckUeaAttack attack(*model_, config_);
  Rng rng(23);
  CompleteMining(attack, rng);
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  ASSERT_EQ(upd.item_grads.size(), 1u);
  EXPECT_EQ(upd.item_grads[0].first, 29);
  EXPECT_FALSE(upd.interaction_grads.active);
}

TEST_F(PieckFixture, UeaPoisonRaisesTargetScoreForPopularProxies) {
  PieckUeaAttack attack(*model_, config_);
  Rng rng(23);
  CompleteMining(attack, rng);
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  const Vec* grad = upd.FindItemGrad(29);
  ASSERT_NE(grad, nullptr);

  // Applying the poison (server step v -= η·∇̃) must increase the mean
  // score of the target under the mined popular items as users.
  const std::vector<int>& popular = attack.miner().MinedItems();
  double before = attack.AttackLoss(global_, 29, popular);
  GlobalModel poisoned = global_;
  poisoned.item_embeddings.AxpyRow(29, -1.0, *grad);
  double after = attack.AttackLoss(poisoned, 29, popular);
  EXPECT_LT(after, before);
}

TEST_F(PieckFixture, IpePoisonReducesIpeLoss) {
  PieckIpeAttack attack(*model_, config_);
  Rng rng(29);
  CompleteMining(attack, rng);
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  const Vec* grad = upd.FindItemGrad(29);
  ASSERT_NE(grad, nullptr);

  const std::vector<int>& popular = attack.miner().MinedItems();
  double before = attack.AttackLoss(global_, 29, popular);
  GlobalModel poisoned = global_;
  poisoned.item_embeddings.AxpyRow(29, -1.0, *grad);
  double after = attack.AttackLoss(poisoned, 29, popular);
  EXPECT_LT(after, before);
}

TEST_F(PieckFixture, IpeAblationsChangeGradient) {
  Rng rng(31);
  AttackConfig base = config_;
  PieckIpeAttack cosine(*model_, base);
  CompleteMining(cosine, rng);
  ClientUpdate upd_cos = cosine.ParticipateRound(global_, 1, rng);

  AttackConfig pkl_config = config_;
  pkl_config.ipe_metric = IpeMetric::kSoftmaxKl;
  PieckIpeAttack pkl(*model_, pkl_config);
  Rng rng2(31);
  CompleteMining(pkl, rng2);
  ClientUpdate upd_pkl = pkl.ParticipateRound(global_, 1, rng2);

  const Vec* g_cos = upd_cos.FindItemGrad(29);
  const Vec* g_pkl = upd_pkl.FindItemGrad(29);
  ASSERT_NE(g_cos, nullptr);
  ASSERT_NE(g_pkl, nullptr);
  EXPECT_NE(*g_cos, *g_pkl);
}

TEST_F(PieckFixture, TargetsExcludedFromMinedAnchors) {
  // Make the target itself the biggest mover during mining; the attack
  // must not use it as its own anchor (the poison would self-amplify).
  PieckUeaAttack attack(*model_, config_);
  Rng rng(37);
  attack.ParticipateRound(global_, 0, rng);
  for (int c = 0; c < kDim; ++c) {
    global_.item_embeddings.At(29, static_cast<size_t>(c)) += 5.0;
    global_.item_embeddings.At(1, static_cast<size_t>(c)) += 1.0;
  }
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  // Mining now complete with target ranked first; upload must still be
  // produced using the remaining anchors.
  ASSERT_TRUE(attack.miner().Ready());
  EXPECT_EQ(attack.miner().MinedItems()[0], 29);
  EXPECT_NE(upd.FindItemGrad(29), nullptr);
}

TEST_F(PieckFixture, TrainOneThenCopyDuplicatesGradient) {
  config_.target_items = {27, 28, 29};
  config_.multi_target = MultiTargetStrategy::kTrainOneThenCopy;
  PieckUeaAttack attack(*model_, config_);
  Rng rng(41);
  CompleteMining(attack, rng);
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  ASSERT_EQ(upd.item_grads.size(), 3u);
  EXPECT_EQ(*upd.FindItemGrad(27), *upd.FindItemGrad(28));
  EXPECT_EQ(*upd.FindItemGrad(28), *upd.FindItemGrad(29));
}

TEST_F(PieckFixture, TrainTogetherProducesPerTargetGradients) {
  config_.target_items = {27, 29};
  config_.multi_target = MultiTargetStrategy::kTrainTogether;
  PieckUeaAttack attack(*model_, config_);
  Rng rng(43);
  CompleteMining(attack, rng);
  ClientUpdate upd = attack.ParticipateRound(global_, 1, rng);
  ASSERT_EQ(upd.item_grads.size(), 2u);
  EXPECT_NE(*upd.FindItemGrad(27), *upd.FindItemGrad(29));
}

TEST(NoAttackTest, UploadsNothing) {
  NoAttack attack;
  Rng rng(47);
  GlobalModel g;
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_TRUE(upd.item_grads.empty());
  EXPECT_FALSE(upd.interaction_grads.active);
}

TEST(FedRecAttackTest, MaskedPriorKnowledgeIsNoOp) {
  MfModel model(kDim);
  Rng rng(53);
  GlobalModel g = model.InitGlobalModel(10, rng);
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());

  AttackConfig config;
  config.target_items = {0};
  config.fedreca_public_ratio = 0.0;  // the paper's masking
  FedRecAttack attack(model, config, &*ds, 99);
  EXPECT_EQ(attack.num_visible_users(), 0);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_TRUE(upd.item_grads.empty());
}

TEST(FedRecAttackTest, UnmaskedProducesTargetGradient) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  MfModel model(kDim);
  Rng rng(59);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);

  AttackConfig config;
  config.target_items = {1};
  config.fedreca_public_ratio = 0.5;
  FedRecAttack attack(model, config, &*ds, 99);
  EXPECT_GT(attack.num_visible_users(), 0);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_NE(upd.FindItemGrad(1), nullptr);
}

TEST(PipAttackTest, MaskedLabelsAreShuffled) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  MfModel model(kDim);
  AttackConfig masked_config;
  masked_config.target_items = {0};
  masked_config.pipa_true_popularity = false;
  PipAttack masked(model, masked_config, &*ds, 7);

  AttackConfig true_config = masked_config;
  true_config.pipa_true_popularity = true;
  PipAttack unmasked(model, true_config, &*ds, 7);

  EXPECT_EQ(masked.labels().size(), unmasked.labels().size());
  EXPECT_NE(masked.labels(), unmasked.labels());
  // Same multiset of labels either way.
  auto a = masked.labels();
  auto b = unmasked.labels();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(PipAttackTest, UploadsTargetAndInteractionGradsOnDl) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  NcfModel model(kDim, {kDim, kDim / 2});
  Rng rng(61);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);
  AttackConfig config;
  config.target_items = {2};
  PipAttack attack(model, config, &*ds, 7);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_NE(upd.FindItemGrad(2), nullptr);
  EXPECT_TRUE(upd.interaction_grads.active);
}

TEST(ARaTest, NullParametersOnMf) {
  MfModel model(kDim);
  Rng rng(67);
  GlobalModel g = model.InitGlobalModel(5, rng);
  AttackConfig config;
  config.target_items = {0};
  ARaAttack attack(model, config);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_TRUE(upd.item_grads.empty());
}

TEST(ARaTest, PoisonsInteractionFunctionOnDl) {
  NcfModel model(kDim, {kDim});
  Rng rng(71);
  GlobalModel g = model.InitGlobalModel(5, rng);
  AttackConfig config;
  config.target_items = {0};
  ARaAttack attack(model, config);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  EXPECT_NE(upd.FindItemGrad(0), nullptr);
  ASSERT_TRUE(upd.interaction_grads.active);
  EXPECT_GT(upd.interaction_grads.SquaredNorm(), 0.0);
}

TEST(AHumTest, HardUserDislikesTarget) {
  MfModel model(kDim);
  Rng rng(73);
  GlobalModel g = model.InitGlobalModel(5, rng);
  AttackConfig config;
  config.target_items = {0};
  config.hard_user_steps = 30;
  AHumAttack attack(model, config);
  // Average over several mined hard users: each must rate the target
  // below neutral, and clearly below a random user's expected score.
  Vec vt = g.item_embeddings.Row(0);
  double mean_score = 0.0;
  const int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    Vec hard = attack.MineHardUser(g, 0, rng);
    mean_score += Sigmoid(Dot(hard, vt)) / kTrials;
  }
  EXPECT_LT(mean_score, 0.45);
}

TEST(AHumTest, PoisonIncreasesHardUserScore) {
  MfModel model(kDim);
  Rng rng(79);
  GlobalModel g = model.InitGlobalModel(5, rng);
  AttackConfig config;
  config.target_items = {0};
  AHumAttack attack(model, config);
  ClientUpdate upd = attack.ParticipateRound(g, 0, rng);
  const Vec* grad = upd.FindItemGrad(0);
  ASSERT_NE(grad, nullptr);
  EXPECT_GT(Norm2(*grad), 0.0);
}

TEST(AttackFactoryTest, BuildsEveryKind) {
  MfModel model(kDim);
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  AttackConfig config;
  config.target_items = {0};
  for (AttackKind kind :
       {AttackKind::kNone, AttackKind::kFedRecAttack, AttackKind::kPipAttack,
        AttackKind::kARa, AttackKind::kAHum, AttackKind::kPieckIpe,
        AttackKind::kPieckUea}) {
    auto attack = MakeAttack(kind, model, config, &*ds, 7);
    ASSERT_NE(attack, nullptr) << AttackKindToString(kind);
    EXPECT_FALSE(attack->name().empty());
  }
}

TEST(AttackFactoryTest, KindNames) {
  EXPECT_STREQ(AttackKindToString(AttackKind::kPieckIpe), "PIECK-IPE");
  EXPECT_STREQ(AttackKindToString(AttackKind::kPieckUea), "PIECK-UEA");
  EXPECT_STREQ(AttackKindToString(AttackKind::kNone), "NoAttack");
}

}  // namespace
}  // namespace pieck
