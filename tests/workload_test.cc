// The workload layer's two contracts (src/workload/workload.h):
//   1. the trivial configuration is bit-identical to the legacy
//      uniform draw — the engine's golden digests rest on it;
//   2. every non-trivial configuration is deterministic for any thread
//      count, draws skew/churn randomness only from its private
//      stream, and keeps the statistical shape it advertises.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "fed/server.h"
#include "workload/latency.h"
#include "workload/workload.h"

namespace pieck {
namespace {

WorkloadConfig ZipfConfig(double s) {
  WorkloadConfig w;
  w.participation = ParticipationKind::kZipf;
  w.zipf_exponent = s;
  return w;
}

// -------------------------------------------------------------------
// Bit-identity of the trivial workload.

TEST(WorkloadDriverTest, TrivialSelectionMatchesLegacyDrawBitForBit) {
  WorkloadDriver driver{WorkloadConfig{}};
  ASSERT_TRUE(driver.trivial());
  driver.BindPopulation(/*num_benign=*/100, /*num_malicious=*/5);

  Rng rng(42);
  Rng legacy(42);
  std::vector<int> selected;
  for (int round = 0; round < 6; ++round) {
    driver.SelectInto(round, /*cohort_target=*/32, rng, &selected);
    EXPECT_EQ(selected, legacy.SampleWithoutReplacement(105, 32))
        << "round " << round;
  }
  // The driver consumed nothing beyond the legacy draws: both streams
  // are still aligned.
  EXPECT_EQ(rng.SampleWithoutReplacement(10, 3),
            legacy.SampleWithoutReplacement(10, 3));
}

TEST(WorkloadDriverTest, TrivialSelectionClampsCohortToPopulation) {
  WorkloadDriver driver{WorkloadConfig{}};
  driver.BindPopulation(7, 0);
  Rng rng(1);
  std::vector<int> selected;
  driver.SelectInto(0, 100, rng, &selected);
  EXPECT_EQ(selected.size(), 7u);
}

TEST(WorkloadServerTest, DefaultServerSelectionMatchesLegacyDraw) {
  auto model = MakeModel(ModelKind::kMatrixFactorization, 4);
  Rng init(7);
  ServerConfig config;
  config.users_per_round = 16;
  FederatedServer server(*model, model->InitGlobalModel(30, init), config,
                         std::make_unique<SumAggregator>());

  Rng rng(99);
  Rng legacy(99);
  for (int round = 0; round < 4; ++round) {
    const std::vector<int>& selected =
        server.SelectParticipants(/*num_benign=*/50, /*num_malicious=*/3,
                                  round, rng);
    EXPECT_EQ(selected, legacy.SampleWithoutReplacement(53, 16))
        << "round " << round;
  }
}

// Uniform participation restricted to a churned roster still draws
// positions exactly like the legacy sampler over the roster size.
TEST(WorkloadDriverTest, UniformOverRosterMapsLegacyPositions) {
  const std::vector<int> roster = {4, 9, 13, 21, 30, 31, 44};
  UniformParticipation model;
  Rng rng(5);
  Rng legacy(5);
  std::vector<int> out;
  model.SampleInto(roster, 4, rng, &out);
  const std::vector<int> positions = legacy.SampleWithoutReplacement(7, 4);
  ASSERT_EQ(out.size(), positions.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], roster[static_cast<size_t>(positions[i])]);
  }
}

// -------------------------------------------------------------------
// Skewed participation statistics.

TEST(WorkloadParticipationTest, ZipfFrequencyFollowsRankSlope) {
  const int n = 50;
  const double s = 1.0;
  WorkloadConfig config = ZipfConfig(s);
  auto model = ParticipationModel::Create(config, n);
  const auto* skewed = dynamic_cast<const SkewedParticipation*>(model.get());
  ASSERT_NE(skewed, nullptr);
  ASSERT_EQ(skewed->weights().size(), static_cast<size_t>(n));

  // With k = 1 Efraimidis–Spirakis reduces to exact weighted sampling:
  // P(id) = w(id)/Σw. Empirical frequencies over many draws must match
  // each user's weight share.
  std::vector<int> active(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<size_t>(i)] = i;
  const int kDraws = 40000;
  std::vector<int> freq(static_cast<size_t>(n), 0);
  Rng rng(1234);
  std::vector<int> out;
  for (int d = 0; d < kDraws; ++d) {
    model->SampleInto(active, 1, rng, &out);
    ASSERT_EQ(out.size(), 1u);
    ++freq[static_cast<size_t>(out[0])];
  }

  double weight_sum = 0.0;
  for (double w : skewed->weights()) weight_sum += w;
  for (int id = 0; id < n; ++id) {
    const double expected =
        kDraws * skewed->weights()[static_cast<size_t>(id)] / weight_sum;
    // 5σ binomial band, floored for the rare tail users.
    const double tol = std::max(5.0 * std::sqrt(expected), 12.0);
    EXPECT_NEAR(freq[static_cast<size_t>(id)], expected, tol) << "id " << id;
  }

  // Log-log regression of frequency against propensity rank recovers
  // the configured exponent. Use the 15 hottest ranks (the tail is too
  // rare to estimate at this sample size).
  std::vector<double> by_rank(skewed->weights().begin(),
                              skewed->weights().end());
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return by_rank[static_cast<size_t>(a)] > by_rank[static_cast<size_t>(b)];
  });
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int kRanks = 15;
  for (int r = 0; r < kRanks; ++r) {
    const double x = std::log(static_cast<double>(r) + 1.0);
    const double y = std::log(
        std::max(1.0, static_cast<double>(
                          freq[static_cast<size_t>(order[static_cast<size_t>(
                              r)])])));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope =
      (kRanks * sxy - sx * sy) / (kRanks * sxx - sx * sx);
  EXPECT_NEAR(slope, -s, 0.2);
}

TEST(WorkloadParticipationTest, ExponentialWeightsDecayAcrossRanks) {
  const int n = 40;
  WorkloadConfig config;
  config.participation = ParticipationKind::kExponential;
  config.exponential_rate = 4.0;
  auto model = ParticipationModel::Create(config, n);
  const auto* skewed = dynamic_cast<const SkewedParticipation*>(model.get());
  ASSERT_NE(skewed, nullptr);

  std::vector<double> weights(skewed->weights());
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  // exp(-rate·ρ/(n-1)): top weight 1, bottom weight exp(-rate), and the
  // sorted sequence decays geometrically.
  EXPECT_DOUBLE_EQ(weights.front(), 1.0);
  EXPECT_NEAR(weights.back(), std::exp(-4.0), 1e-12);
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LT(weights[i], weights[i - 1]);
  }
}

TEST(WorkloadParticipationTest, SampleIsDistinctAndDeterministic) {
  const int n = 64;
  WorkloadConfig config = ZipfConfig(1.2);
  auto model = ParticipationModel::Create(config, n);
  std::vector<int> active(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<size_t>(i)] = i;

  Rng a(77), b(77);
  std::vector<int> out_a, out_b;
  model->SampleInto(active, 20, a, &out_a);
  model->SampleInto(active, 20, b, &out_b);
  EXPECT_EQ(out_a, out_b);
  std::vector<int> sorted = out_a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "selection repeated an id";
  EXPECT_EQ(out_a.size(), 20u);
}

// -------------------------------------------------------------------
// Churn.

TEST(WorkloadChurnTest, LeaveEverythingClampsToOneActiveUser) {
  WorkloadConfig config = ZipfConfig(1.0);
  config.churn.leave_rate = 1.0;
  WorkloadDriver driver{config};
  driver.BindPopulation(/*num_benign=*/20, /*num_malicious=*/2);
  Rng rng(3);
  std::vector<int> selected;

  driver.SelectInto(0, 8, rng, &selected);
  EXPECT_EQ(driver.active_benign(), 20);
  driver.SelectInto(1, 8, rng, &selected);
  EXPECT_EQ(driver.active_benign(), 1);
  // Selection still works over the one survivor + malicious tail, and
  // malicious ids (20, 21) remain selectable.
  driver.SelectInto(2, 8, rng, &selected);
  EXPECT_EQ(selected.size(), 3u);
  std::sort(selected.begin(), selected.end());
  EXPECT_EQ(selected[1], 20);
  EXPECT_EQ(selected[2], 21);
}

TEST(WorkloadChurnTest, FullRejoinRestoresPopulationAtSameBoundary) {
  // Half the active population parks at each boundary, then *every*
  // parked user (including the just-parked) rejoins: the active count
  // returns to the full population at the very same boundary.
  WorkloadConfig config = ZipfConfig(1.0);
  config.churn.leave_rate = 0.5;
  config.churn.join_rate = 1.0;
  config.churn.initial_active = 0.5;
  WorkloadDriver driver{config};
  driver.BindPopulation(40, 0);
  Rng rng(11);
  std::vector<int> selected;

  driver.SelectInto(0, 4, rng, &selected);
  EXPECT_EQ(driver.active_benign(), 20);
  driver.SelectInto(1, 4, rng, &selected);
  EXPECT_EQ(driver.active_benign(), 40);
}

TEST(WorkloadChurnTest, RosterConservedAndSelectionsStayActive) {
  WorkloadConfig config = ZipfConfig(1.0);
  config.churn.leave_rate = 0.3;
  config.churn.join_rate = 0.2;
  config.churn.initial_active = 0.6;
  WorkloadDriver driver{config};
  const int n = 100;
  driver.BindPopulation(n, 0);
  Rng rng(8);
  std::vector<int> selected;
  for (int round = 0; round < 30; ++round) {
    driver.SelectInto(round, 10, rng, &selected);
    EXPECT_GE(driver.active_benign(), 1);
    EXPECT_LE(driver.active_benign(), n);
    EXPECT_EQ(selected.size(),
              static_cast<size_t>(std::min(10, driver.active_benign())));
    for (int id : selected) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, n);
    }
  }
}

// -------------------------------------------------------------------
// Diurnal wave.

TEST(WorkloadDiurnalTest, CohortFollowsTheWaveAndClampsToOne) {
  WorkloadConfig config;
  config.diurnal_amplitude = 0.5;
  config.diurnal_period = 4;
  WorkloadDriver driver{config};
  ASSERT_FALSE(config.IsTrivial());
  EXPECT_EQ(driver.DiurnalCohort(0, 100), 100);  // sin(0) = 0
  EXPECT_EQ(driver.DiurnalCohort(1, 100), 150);  // peak
  EXPECT_EQ(driver.DiurnalCohort(3, 100), 50);   // trough
  EXPECT_EQ(driver.DiurnalCohort(4, 100), 100);  // next period

  WorkloadConfig deep;
  deep.diurnal_amplitude = 1.0;
  deep.diurnal_period = 4;
  WorkloadDriver driver_deep{deep};
  EXPECT_EQ(driver_deep.DiurnalCohort(3, 1), 1);  // clamp: never empty
}

// -------------------------------------------------------------------
// Thread-count independence of the full engine under a non-trivial
// workload (selection runs on the round thread by contract).

TEST(WorkloadDeterminismTest, SkewedChurningRunBitIdenticalAcrossThreads) {
  ExperimentConfig base;
  base.dataset = MovieLens100KConfig(0.05);
  base.embedding_dim = 8;
  base.rounds = 6;
  base.users_per_round = 16;
  base.attack = AttackKind::kPieckIpe;
  base.malicious_fraction = 0.1;
  base.seed = 20240731;
  base.workload = ZipfConfig(1.1);
  base.workload.churn.leave_rate = 0.1;
  base.workload.churn.join_rate = 0.1;
  base.workload.diurnal_amplitude = 0.3;
  base.workload.diurnal_period = 3;

  ExperimentConfig wide = base;
  wide.num_threads = 4;
  base.num_threads = 1;

  auto serial_or = Simulation::Create(base);
  auto threaded_or = Simulation::Create(wide);
  ASSERT_TRUE(serial_or.ok()) << serial_or.status().ToString();
  ASSERT_TRUE(threaded_or.ok()) << threaded_or.status().ToString();
  auto serial = std::move(serial_or).value();
  auto threaded = std::move(threaded_or).value();

  for (int r = 0; r < base.rounds; ++r) {
    RoundStats a = serial->RunRound();
    RoundStats b = threaded->RunRound();
    EXPECT_EQ(a.num_selected, b.num_selected) << "round " << r;
    EXPECT_EQ(a.active_benign, b.active_benign) << "round " << r;
    ASSERT_EQ(serial->global().item_embeddings,
              threaded->global().item_embeddings)
        << "diverged at round " << r;
  }
  EXPECT_DOUBLE_EQ(serial->EvaluateEr(10), threaded->EvaluateEr(10));
}

// A skewed run must differ from the uniform run (the knob is real) yet
// stay reproducible for a fixed seed.
TEST(WorkloadDeterminismTest, SkewChangesSelectionButStaysReproducible) {
  WorkloadDriver uniform{WorkloadConfig{}};
  WorkloadDriver zipf_a{ZipfConfig(1.5)};
  WorkloadDriver zipf_b{ZipfConfig(1.5)};
  for (WorkloadDriver* d : {&uniform, &zipf_a, &zipf_b}) {
    d->BindPopulation(200, 0);
  }
  Rng r1(5), r2(5), r3(5);
  std::vector<int> u, a, b;
  uniform.SelectInto(0, 32, r1, &u);
  zipf_a.SelectInto(0, 32, r2, &a);
  zipf_b.SelectInto(0, 32, r3, &b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, u);
}

// -------------------------------------------------------------------
// Latency histogram.

TEST(LatencyHistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 500.5);
  // Bucket geometry bounds the relative error at 2^(1/16) − 1 ≈ 4.4%.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 * 0.05);
  // The extremes are exact, not bucket midpoints.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, NonPositiveAndHugeSamplesClampIntoRange) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(1e12);  // beyond the last octave
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.max_ms(), 1e12);
  EXPECT_LE(h.Quantile(0.01), h.Quantile(0.99));
}

TEST(LatencyHistogramTest, StageLatenciesRecordRoundSumsStages) {
  StageLatencies stages;
  stages.RecordRound(1.0, 10.0, 2.0, 3.0, 4.0);
  stages.RecordRound(2.0, 20.0, 4.0, 6.0, 8.0);
  EXPECT_EQ(stages.stage[StageLatencies::kTrain].count(), 2);
  EXPECT_DOUBLE_EQ(stages.stage[StageLatencies::kRound].max_ms(), 40.0);
  EXPECT_DOUBLE_EQ(stages.stage[StageLatencies::kRound].min_ms(), 20.0);
  EXPECT_STREQ(StageLatencies::StageName(StageLatencies::kSelect), "select");
  EXPECT_STREQ(StageLatencies::StageName(StageLatencies::kRound), "round");
}

// -------------------------------------------------------------------
// Validation.

TEST(WorkloadConfigTest, ValidateRejectsOutOfRangeKnobs) {
  EXPECT_TRUE(WorkloadConfig{}.Validate().ok());
  {
    WorkloadConfig c = ZipfConfig(0.0);
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.participation = ParticipationKind::kExponential;
    c.exponential_rate = -1.0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.diurnal_amplitude = 1.5;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.diurnal_amplitude = 0.5;
    c.diurnal_period = 0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.churn.leave_rate = 1.5;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.churn.initial_active = 0.0;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    WorkloadConfig c;
    c.hot_item_rate = -0.1;
    EXPECT_FALSE(c.Validate().ok());
  }
}

TEST(WorkloadConfigTest, ExperimentConfigValidatePropagatesWorkloadErrors) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.05);
  config.rounds = 5;
  config.users_per_round = 8;
  EXPECT_TRUE(config.Validate().ok());
  config.workload = ZipfConfig(-1.0);
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace pieck
