// Property-style suites: invariants that must hold across parameter
// sweeps rather than single examples — aggregation-rule algebra, attack
// upload well-formedness across models and attack kinds, miner
// statistics across dataset presets, and simulation-level conservation
// properties.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "attack/attack.h"
#include "attack/popular_item_miner.h"
#include "common/rng.h"
#include "core/simulation.h"
#include "defense/robust_aggregators.h"
#include "fed/aggregator.h"

namespace pieck {
namespace {

// ---------------------------------------------------------------------
// Aggregator algebra, swept over group sizes.

class AggregatorProperties : public ::testing::TestWithParam<int> {
 protected:
  std::vector<Vec> RandomGrads(int n, size_t dim, uint64_t seed) {
    Rng rng(seed);
    std::vector<Vec> grads;
    for (int i = 0; i < n; ++i) {
      Vec g(dim);
      for (double& v : g) v = rng.Normal(0.0, 1.0);
      grads.push_back(std::move(g));
    }
    return grads;
  }
};

TEST_P(AggregatorProperties, SumEqualsNTimesMean) {
  auto grads = RandomGrads(GetParam(), 6, 11);
  SumAggregator sum;
  MeanAggregator mean;
  Vec s = sum.Aggregate(grads);
  Vec m = mean.Aggregate(grads);
  for (size_t c = 0; c < s.size(); ++c) {
    EXPECT_NEAR(s[c], m[c] * GetParam(), 1e-9);
  }
}

TEST_P(AggregatorProperties, RobustRulesArePermutationInvariant) {
  auto grads = RandomGrads(GetParam(), 5, 13);
  auto shuffled = grads;
  Rng rng(17);
  rng.Shuffle(shuffled);

  MedianAggregator median;
  TrimmedMeanAggregator trimmed(0.2);
  NormBoundAggregator nb(0.5);
  for (Aggregator* agg :
       std::vector<Aggregator*>{&median, &trimmed, &nb}) {
    Vec a = agg->Aggregate(grads);
    Vec b = agg->Aggregate(shuffled);
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_NEAR(a[c], b[c], 1e-9) << agg->name();
    }
  }
}

TEST_P(AggregatorProperties, IdenticalInputsAggregateToNTimesInput) {
  Vec g = {0.5, -1.0, 2.0};
  std::vector<Vec> grads(static_cast<size_t>(GetParam()), g);
  MedianAggregator median;
  TrimmedMeanAggregator trimmed(0.1);
  for (Aggregator* agg : std::vector<Aggregator*>{&median, &trimmed}) {
    Vec out = agg->Aggregate(grads);
    for (size_t c = 0; c < g.size(); ++c) {
      EXPECT_NEAR(out[c], g[c] * GetParam(), 1e-9) << agg->name();
    }
  }
}

TEST_P(AggregatorProperties, MedianBoundedByExtremesTimesN) {
  auto grads = RandomGrads(GetParam(), 4, 19);
  MedianAggregator median;
  Vec out = median.Aggregate(grads);
  for (size_t c = 0; c < out.size(); ++c) {
    double lo = grads[0][c];
    double hi = grads[0][c];
    for (const Vec& g : grads) {
      lo = std::min(lo, g[c]);
      hi = std::max(hi, g[c]);
    }
    EXPECT_GE(out[c] / GetParam(), lo - 1e-12);
    EXPECT_LE(out[c] / GetParam(), hi + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AggregatorProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

// ---------------------------------------------------------------------
// Attack upload well-formedness across (model, attack) combinations.

struct AttackModelCase {
  AttackKind attack;
  ModelKind model;
};

class AttackUploadProperties
    : public ::testing::TestWithParam<AttackModelCase> {};

TEST_P(AttackUploadProperties, UploadsAreFiniteAndTargetOnlyForPieck) {
  const AttackModelCase param = GetParam();
  auto model = MakeModel(param.model, 8);
  Rng rng(23);
  GlobalModel g = model->InitGlobalModel(40, rng);
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());

  AttackConfig config;
  config.target_items = {39};
  config.mining_rounds = 1;
  config.mined_top_n = 5;
  auto attack = MakeAttack(param.attack, *model, config, &*ds, 7);
  ASSERT_NE(attack, nullptr);

  // Several rounds with drifting embeddings (completes any mining).
  for (int r = 0; r < 4; ++r) {
    ClientUpdate upd = attack->ParticipateRound(g, r, rng);
    for (const auto& [item, grad] : upd.item_grads) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, g.num_items());
      EXPECT_TRUE(AllFinite(grad)) << attack->name() << " round " << r;
    }
    if (upd.interaction_grads.active) {
      EXPECT_TRUE(AllFinite(upd.interaction_grads.Flatten()));
    }
    const bool is_pieck = param.attack == AttackKind::kPieckIpe ||
                          param.attack == AttackKind::kPieckUea;
    if (is_pieck) {
      // PIECK uploads only target-item gradients, never Ψ gradients.
      EXPECT_FALSE(upd.interaction_grads.active);
      for (const auto& [item, grad] : upd.item_grads) {
        EXPECT_EQ(item, 39);
      }
    }
    // Drift all embeddings a little between rounds.
    for (size_t j = 0; j < g.item_embeddings.rows(); ++j) {
      double scale = j < 5 ? 0.3 : 0.003;  // items 0..4 "popular"
      for (size_t c = 0; c < g.item_embeddings.cols(); ++c) {
        g.item_embeddings.At(j, c) += rng.Normal(0.0, scale);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AttackUploadProperties,
    ::testing::Values(
        AttackModelCase{AttackKind::kPieckIpe,
                        ModelKind::kMatrixFactorization},
        AttackModelCase{AttackKind::kPieckIpe, ModelKind::kNeuralCf},
        AttackModelCase{AttackKind::kPieckUea,
                        ModelKind::kMatrixFactorization},
        AttackModelCase{AttackKind::kPieckUea, ModelKind::kNeuralCf},
        AttackModelCase{AttackKind::kAHum, ModelKind::kMatrixFactorization},
        AttackModelCase{AttackKind::kAHum, ModelKind::kNeuralCf},
        AttackModelCase{AttackKind::kARa, ModelKind::kNeuralCf},
        AttackModelCase{AttackKind::kPipAttack,
                        ModelKind::kMatrixFactorization},
        AttackModelCase{AttackKind::kPipAttack, ModelKind::kNeuralCf}));

// ---------------------------------------------------------------------
// Miner quality across dataset presets: after real federated training,
// the mined top-10 must be dominated by genuinely popular items.

class MinerQualityAcrossPresets
    : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(MinerQualityAcrossPresets, MinedItemsAreMostlyPopular) {
  ExperimentConfig config;
  config.dataset = GetParam();
  config.rounds = 0;
  config.users_per_round =
      std::max(8, static_cast<int>(0.27 * config.dataset.num_users));
  auto sim_or = Simulation::Create(config);
  ASSERT_TRUE(sim_or.ok());
  auto sim = std::move(sim_or).value();

  PopularItemMiner miner(2, 10);
  for (int r = 0; r < 5; ++r) {
    sim->RunRound();
    if (r >= 2) miner.Observe(sim->global().item_embeddings);
  }
  ASSERT_TRUE(miner.Ready());

  std::vector<int> rank = sim->train().PopularityRank();
  int cutoff = static_cast<int>(0.15 * sim->train().num_items());
  int popular_hits = 0;
  for (int item : miner.MinedItems()) {
    popular_hits += rank[static_cast<size_t>(item)] < cutoff ? 1 : 0;
  }
  EXPECT_GE(popular_hits, 7) << "mined set not dominated by popular items";
}

INSTANTIATE_TEST_SUITE_P(Presets, MinerQualityAcrossPresets,
                         ::testing::Values(MovieLens100KConfig(0.2),
                                           MovieLens100KConfig(0.35),
                                           MovieLens1MConfig(0.08)));

// ---------------------------------------------------------------------
// Simulation conservation properties.

TEST(SimulationProperties, BenignOnlyRoundsTouchOnlySampledItems) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.08);
  config.users_per_round = 4;  // tiny batch: most items untouched
  auto sim_or = Simulation::Create(config);
  ASSERT_TRUE(sim_or.ok());
  auto sim = std::move(sim_or).value();

  Matrix before = sim->global().item_embeddings;
  sim->RunRound();
  const Matrix& after = sim->global().item_embeddings;
  int changed = 0;
  for (size_t j = 0; j < after.rows(); ++j) {
    if (after.Row(j) != before.Row(j)) ++changed;
  }
  // 4 users with |D_i| = 2|D+_i| items each is a hard upper bound.
  int bound = 0;
  for (int u = 0; u < sim->train().num_users(); ++u) {
    bound = std::max(bound,
                     2 * static_cast<int>(sim->train().ItemsOf(u).size()));
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 4 * bound);
}

TEST(SimulationProperties, EmbeddingsStayFiniteUnderAttackAndDefense) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.08);
  config.users_per_round = 20;
  config.attack = AttackKind::kPieckUea;
  config.defense = DefenseKind::kOurs;
  auto sim_or = Simulation::Create(config);
  ASSERT_TRUE(sim_or.ok());
  auto sim = std::move(sim_or).value();
  sim->RunRounds(40);
  for (size_t j = 0; j < sim->global().item_embeddings.rows(); ++j) {
    EXPECT_TRUE(AllFinite(sim->global().item_embeddings.Row(j)));
  }
  BenignEvalView view = sim->benign_eval_view();
  for (size_t ui = 0; ui < view.size(); ++ui) {
    EXPECT_TRUE(AllFinite(view.embedding_vec(ui)));
  }
}

TEST(SimulationProperties, ErAndHrAlwaysInUnitInterval) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    ExperimentConfig config;
    config.dataset = MovieLens100KConfig(0.08);
    config.rounds = 20;
    config.users_per_round = 20;
    config.attack = AttackKind::kPieckIpe;
    config.seed = seed;
    auto result = RunExperiment(config);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->er_at_k, 0.0);
    EXPECT_LE(result->er_at_k, 1.0);
    EXPECT_GE(result->hr_at_k, 0.0);
    EXPECT_LE(result->hr_at_k, 1.0);
  }
}

}  // namespace
}  // namespace pieck
