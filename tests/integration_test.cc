// End-to-end simulations at reduced scale: federated training converges,
// PIECK raises exposure, the regularization defense suppresses it, and
// everything is deterministic in the seed. Configurations are kept tiny
// so the whole suite stays fast on one core.

#include <gtest/gtest.h>

#include "core/simulation.h"

namespace pieck {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.12);  // ~113 users, ~200 items
  config.model_kind = ModelKind::kMatrixFactorization;
  config.embedding_dim = 8;
  config.rounds = 60;
  config.users_per_round = 30;
  config.attack = AttackKind::kNone;
  config.seed = 4242;
  return config;
}

TEST(SimulationTest, CreateWiresEverything) {
  auto sim = Simulation::Create(TinyConfig());
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ((*sim)->train().num_users(), (*sim)->store().num_users());
  EXPECT_EQ((*sim)->train().num_users(),
            static_cast<int>((*sim)->benign_eval_view().size()));
  EXPECT_EQ((*sim)->num_malicious(), 0);  // NoAttack
  EXPECT_EQ((*sim)->targets().size(), 1u);
}

TEST(SimulationTest, MaliciousPopulationMatchesFraction) {
  ExperimentConfig config = TinyConfig();
  config.attack = AttackKind::kPieckUea;
  config.malicious_fraction = 0.10;
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok());
  int benign = (*sim)->train().num_users();
  int mal = (*sim)->num_malicious();
  double fraction = static_cast<double>(mal) / (benign + mal);
  EXPECT_NEAR(fraction, 0.10, 0.02);
}

TEST(SimulationTest, TrainingImprovesHitRatio) {
  auto sim = Simulation::Create(TinyConfig());
  ASSERT_TRUE(sim.ok());
  double hr_before = (*sim)->EvaluateHr(10);
  (*sim)->RunRounds(60);
  double hr_after = (*sim)->EvaluateHr(10);
  EXPECT_GT(hr_after, hr_before + 0.1);
}

TEST(SimulationTest, ExplicitTargetsRespected) {
  ExperimentConfig config = TinyConfig();
  config.target_selection = TargetSelection::kExplicit;
  config.explicit_targets = {5, 9};
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ((*sim)->targets(), (std::vector<int>{5, 9}));
}

TEST(SimulationTest, ColdTargetsComeFromColdHalf) {
  ExperimentConfig config = TinyConfig();
  config.num_targets = 3;
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok());
  std::vector<int> rank = (*sim)->train().PopularityRank();
  for (int t : (*sim)->targets()) {
    EXPECT_GE(rank[static_cast<size_t>(t)],
              (*sim)->train().num_items() / 2);
  }
}

TEST(SimulationTest, RejectsBadConfigs) {
  ExperimentConfig config = TinyConfig();
  config.malicious_fraction = 1.0;
  config.attack = AttackKind::kPieckIpe;
  EXPECT_FALSE(Simulation::Create(config).ok());
}

// ExperimentConfig::Validate runs before anything is built: formerly
// these configs failed late (mid-round CHECK) or silently clamped.
TEST(SimulationTest, ValidateRejectsInconsistentConfigs) {
  EXPECT_TRUE(TinyConfig().Validate().ok());
  {
    ExperimentConfig c = TinyConfig();
    c.embedding_dim = 0;
    EXPECT_FALSE(Simulation::Create(c).ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.rounds = -3;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.users_per_round = c.dataset.num_users + 1;
    EXPECT_FALSE(Simulation::Create(c).ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.malicious_fraction = -0.1;
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.target_selection = TargetSelection::kExplicit;
    c.explicit_targets = {c.dataset.num_items + 5};
    EXPECT_FALSE(Simulation::Create(c).ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.target_selection = TargetSelection::kExplicit;
    c.explicit_targets.clear();
    EXPECT_FALSE(c.Validate().ok());
  }
  {
    ExperimentConfig c = TinyConfig();
    c.negative_ratio_q = -1.0;
    EXPECT_FALSE(c.Validate().ok());
  }
}

TEST(RunExperimentTest, DeterministicInSeed) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 25;
  config.attack = AttackKind::kPieckUea;
  auto a = RunExperiment(config);
  auto b = RunExperiment(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->er_at_k, b->er_at_k);
  EXPECT_DOUBLE_EQ(a->hr_at_k, b->hr_at_k);
  EXPECT_EQ(a->target_items, b->target_items);
}

TEST(RunExperimentTest, HistoryRecordedAtEvalCadence) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 30;
  config.eval_every = 10;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->er_history.size(), 3u);
  EXPECT_EQ(result->er_history[0].first, 10);
  EXPECT_EQ(result->er_history[2].first, 30);
  EXPECT_EQ(result->rounds_run, 30);
  EXPECT_GT(result->seconds_per_round, 0.0);
}

TEST(AttackIntegrationTest, UeaRaisesExposureOverNoAttack) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 80;
  auto baseline = RunExperiment(config);
  ASSERT_TRUE(baseline.ok());

  config.attack = AttackKind::kPieckUea;
  config.attack_config.mined_top_n = 10;
  auto attacked = RunExperiment(config);
  ASSERT_TRUE(attacked.ok());

  EXPECT_GT(attacked->er_at_k, baseline->er_at_k + 0.3);
  // Recommendation performance must stay comparable (stealthiness).
  EXPECT_GT(attacked->hr_at_k, baseline->hr_at_k - 0.15);
}

TEST(AttackIntegrationTest, IpeRaisesExposureOverNoAttack) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 80;
  auto baseline = RunExperiment(config);
  ASSERT_TRUE(baseline.ok());

  config.attack = AttackKind::kPieckIpe;
  auto attacked = RunExperiment(config);
  ASSERT_TRUE(attacked.ok());
  EXPECT_GT(attacked->er_at_k, baseline->er_at_k + 0.3);
}

TEST(DefenseIntegrationTest, OursSuppressesUea) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 80;
  config.attack = AttackKind::kPieckUea;
  auto undefended = RunExperiment(config);
  ASSERT_TRUE(undefended.ok());

  config.defense = DefenseKind::kOurs;
  auto defended = RunExperiment(config);
  ASSERT_TRUE(defended.ok());

  EXPECT_LT(defended->er_at_k, undefended->er_at_k * 0.3);
  // The defense must not destroy recommendation quality.
  EXPECT_GT(defended->hr_at_k, 0.2);
}

TEST(DefenseIntegrationTest, KrumTrainsSlowlyButFiltersPoison) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 60;
  config.attack = AttackKind::kPieckUea;
  config.defense = DefenseKind::kKrum;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->er_at_k, 0.2);
}

TEST(DlIntegrationTest, NcfTrainsAndUeaSucceeds) {
  ExperimentConfig config = TinyConfig();
  config.model_kind = ModelKind::kNeuralCf;
  config.rounds = 80;
  config.attack = AttackKind::kPieckUea;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->er_at_k, 0.5);
  EXPECT_GT(result->hr_at_k, 0.2);
}

TEST(BprIntegrationTest, AttackWorksUnderBprLoss) {
  ExperimentConfig config = TinyConfig();
  config.loss = LossKind::kBpr;
  config.rounds = 80;
  config.attack = AttackKind::kPieckUea;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->er_at_k, 0.3);
}

TEST(MultiTargetIntegrationTest, TrainOneThenCopyPromotesAllTargets) {
  ExperimentConfig config = TinyConfig();
  config.rounds = 80;
  config.attack = AttackKind::kPieckUea;
  config.num_targets = 3;
  config.attack_config.multi_target = MultiTargetStrategy::kTrainOneThenCopy;
  auto result = RunExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target_items.size(), 3u);
  EXPECT_GT(result->er_at_k, 0.3);
}

}  // namespace
}  // namespace pieck
