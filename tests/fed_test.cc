#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "defense/robust_aggregators.h"
#include "fed/aggregator.h"
#include "fed/client.h"
#include "fed/client_state_store.h"
#include "fed/server.h"
#include "model/mf_model.h"

namespace pieck {
namespace {

TEST(SumAggregatorTest, SumsCoordinateWise) {
  SumAggregator agg;
  Vec out = agg.Aggregate({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(MeanAggregatorTest, Averages) {
  MeanAggregator agg;
  Vec out = agg.Aggregate({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(ClientUpdateDistanceTest, DisjointItemsSumNorms) {
  ClientUpdate a, b;
  a.AccumulateItemGrad(0, {3, 0});
  b.AccumulateItemGrad(1, {0, 4});
  EXPECT_DOUBLE_EQ(ClientUpdateSquaredDistance(a, b), 25.0);
}

TEST(ClientUpdateDistanceTest, SharedItemsDiff) {
  ClientUpdate a, b;
  a.AccumulateItemGrad(0, {1, 1});
  b.AccumulateItemGrad(0, {4, 5});
  EXPECT_DOUBLE_EQ(ClientUpdateSquaredDistance(a, b), 9.0 + 16.0);
}

TEST(ClientUpdateDistanceTest, IdenticalIsZero) {
  ClientUpdate a;
  a.AccumulateItemGrad(0, {1, 2});
  a.AccumulateItemGrad(7, {3, 4});
  EXPECT_DOUBLE_EQ(ClientUpdateSquaredDistance(a, a), 0.0);
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<MfModel>(4);
    Rng rng(71);
    GlobalModel g = model_->InitGlobalModel(5, rng);
    ServerConfig config;
    config.learning_rate = 1.0;
    config.users_per_round = 2;
    server_ = std::make_unique<FederatedServer>(
        *model_, std::move(g), config, std::make_unique<SumAggregator>());
  }

  std::unique_ptr<MfModel> model_;
  std::unique_ptr<FederatedServer> server_;
};

TEST_F(ServerFixture, ApplyUpdatesMovesOnlyUploadedItems) {
  GlobalModel before = server_->global();
  ClientUpdate upd;
  upd.AccumulateItemGrad(2, {1, 0, 0, 0});
  server_->ApplyUpdates({upd});

  const GlobalModel& after = server_->global();
  EXPECT_DOUBLE_EQ(after.item_embeddings.At(2, 0),
                   before.item_embeddings.At(2, 0) - 1.0);
  // Untouched items identical.
  for (int j : {0, 1, 3, 4}) {
    EXPECT_EQ(after.item_embeddings.Row(static_cast<size_t>(j)),
              before.item_embeddings.Row(static_cast<size_t>(j)));
  }
}

TEST_F(ServerFixture, SumAggregationAcrossClients) {
  GlobalModel before = server_->global();
  ClientUpdate a, b;
  a.AccumulateItemGrad(0, {1, 0, 0, 0});
  b.AccumulateItemGrad(0, {2, 0, 0, 0});
  server_->ApplyUpdates({a, b});
  EXPECT_DOUBLE_EQ(server_->global().item_embeddings.At(0, 0),
                   before.item_embeddings.At(0, 0) - 3.0);
}

/// An UpdateFilter that keeps only the first update; verifies the
/// filter stage is honored.
class KeepFirstFilter : public UpdateFilter {
 public:
  std::string name() const override { return "KeepFirst"; }
  std::vector<int> Select(
      const std::vector<ClientUpdate>& updates) const override {
    return updates.empty() ? std::vector<int>{} : std::vector<int>{0};
  }
};

TEST(ServerFilterTest, FilterStageDropsUpdates) {
  MfModel model(4);
  Rng rng(73);
  GlobalModel g = model.InitGlobalModel(3, rng);
  GlobalModel before = g;
  ServerConfig config;
  FederatedServer server(model, std::move(g), config,
                         std::make_unique<SumAggregator>(),
                         std::make_unique<KeepFirstFilter>());
  ClientUpdate a, b;
  a.AccumulateItemGrad(0, {1, 0, 0, 0});
  b.AccumulateItemGrad(0, {100, 0, 0, 0});  // must be filtered out
  server.ApplyUpdates({a, b});
  EXPECT_DOUBLE_EQ(server.global().item_embeddings.At(0, 0),
                   before.item_embeddings.At(0, 0) - 1.0);
}

// The filter path must borrow surviving updates through indices: a
// Krum round may not invoke the ClientUpdate copy constructor (the
// pre-span implementation deep-copied every survivor).
TEST(ServerFilterTest, KrumRoundRunsWithoutClientUpdateCopies) {
  MfModel model(4);
  Rng rng(101);
  GlobalModel g = model.InitGlobalModel(6, rng);
  ServerConfig config;
  config.num_threads = 2;  // exercise the parallel per-item fan-out too
  FederatedServer server(model, std::move(g), config,
                         std::make_unique<SumAggregator>(),
                         std::make_unique<KrumFilter>(0.2));

  std::vector<ClientUpdate> updates(5);
  for (int i = 0; i < 5; ++i) {
    Vec grad(4);
    for (double& v : grad) v = rng.Normal(0.0, i == 4 ? 10.0 : 0.01);
    updates[static_cast<size_t>(i)].AccumulateItemGrad(i % 3,
                                                       std::move(grad));
  }

  const int64_t copies_before = ClientUpdate::CopyCount();
  server.ApplyUpdates(updates);
  EXPECT_EQ(ClientUpdate::CopyCount(), copies_before)
      << "ApplyUpdates deep-copied a surviving ClientUpdate";
}

// Same guarantee for a robust (non-linear) aggregator without a filter:
// the whole span path must stay copy-free.
TEST(ServerFilterTest, MedianAggregationRunsWithoutClientUpdateCopies) {
  MfModel model(4);
  Rng rng(103);
  GlobalModel g = model.InitGlobalModel(3, rng);
  ServerConfig config;
  FederatedServer server(model, std::move(g), config,
                         std::make_unique<MedianAggregator>());
  std::vector<ClientUpdate> updates(3);
  for (int i = 0; i < 3; ++i) {
    updates[static_cast<size_t>(i)].AccumulateItemGrad(
        0, {1.0 * i, 0.0, 0.0, 0.0});
  }
  const int64_t copies_before = ClientUpdate::CopyCount();
  server.ApplyUpdates(updates);
  EXPECT_EQ(ClientUpdate::CopyCount(), copies_before);
}

/// A scripted client used to observe server-side sampling behavior.
class ScriptedClient : public ClientInterface {
 public:
  explicit ScriptedClient(bool malicious = false) : malicious_(malicious) {}
  bool is_malicious() const override { return malicious_; }
  ClientUpdate ParticipateRound(const GlobalModel&, int) override {
    ++participations_;
    return {};
  }
  int participations() const { return participations_; }

 private:
  bool malicious_;
  int participations_ = 0;
};

TEST_F(ServerFixture, RunRoundSamplesRequestedCount) {
  std::vector<ScriptedClient> clients(10);
  std::vector<ClientInterface*> ptrs;
  for (auto& c : clients) ptrs.push_back(&c);
  Rng rng(79);
  RoundStats stats = server_->RunRound(ptrs, 0, rng);
  EXPECT_EQ(stats.num_selected, 2);
  int total = 0;
  for (const auto& c : clients) total += c.participations();
  EXPECT_EQ(total, 2);
}

TEST_F(ServerFixture, RunRoundCountsMalicious) {
  ScriptedClient benign(false);
  ScriptedClient malicious(true);
  std::vector<ClientInterface*> ptrs = {&benign, &malicious};
  Rng rng(83);
  RoundStats stats = server_->RunRound(ptrs, 0, rng);
  EXPECT_EQ(stats.num_selected, 2);
  EXPECT_EQ(stats.num_malicious_selected, 1);
}

/// Builds a one-user-deep store over `ds` with the given loss; the
/// user's stream is seeded exactly like the former object path
/// (embedding init draws first, batch draws after).
std::unique_ptr<ClientStateStore> MakeStore(const MfModel& model,
                                            const Dataset& ds, LossKind loss,
                                            Rng& rng) {
  auto store = std::make_unique<ClientStateStore>(
      model, ds, std::make_shared<const NegativeSampler>(1.0), loss,
      /*local_lr=*/1.0);
  std::vector<uint64_t> seeds(static_cast<size_t>(ds.num_users()));
  for (uint64_t& s : seeds) s = rng.ForkSeed();
  store->set_user_seeds(std::move(seeds));
  return store;
}

TEST(BenignClientLogicTest, TrainsUserEmbeddingLocally) {
  SyntheticConfig dconf = MovieLens100KConfig(0.05);
  auto ds = GenerateSynthetic(dconf);
  ASSERT_TRUE(ds.ok());
  MfModel model(8);
  Rng rng(89);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);

  auto store = MakeStore(model, *ds, LossKind::kBce, rng);
  const double* row = store->UserEmbedding(0);
  Vec before(row, row + 8);
  store->PrepareRound({0});
  RoundScratch scratch;
  ClientUpdate upd;
  double loss =
      BenignClientLogic::ParticipateRound(*store, 0, g, 0, scratch, &upd);
  Vec after(store->UserEmbedding(0), store->UserEmbedding(0) + 8);
  EXPECT_NE(after, before);  // local personalized step
  EXPECT_FALSE(upd.item_grads.empty());
  EXPECT_GT(loss, 0.0);
}

TEST(BenignClientLogicTest, UploadsGradsOnlyForBatchItems) {
  SyntheticConfig dconf = MovieLens100KConfig(0.05);
  auto ds = GenerateSynthetic(dconf);
  ASSERT_TRUE(ds.ok());
  MfModel model(8);
  Rng rng(97);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);

  auto store = MakeStore(model, *ds, LossKind::kBce, rng);
  store->PrepareRound({3});
  RoundScratch scratch;
  ClientUpdate upd;
  BenignClientLogic::ParticipateRound(*store, 3, g, 0, scratch, &upd);
  // All positives of the user must be present in the upload.
  for (int item : ds->ItemsOf(3)) {
    EXPECT_NE(upd.FindItemGrad(item), nullptr) << "positive " << item;
  }
  // Upload size is |D+| + |D-| with q = 1 (up to pool limits).
  EXPECT_LE(upd.item_grads.size(), 2 * ds->ItemsOf(3).size());
  EXPECT_FALSE(upd.interaction_grads.active);  // MF has no Ψ params
}

TEST(BenignClientLogicTest, BprLossAlsoTrains) {
  SyntheticConfig dconf = MovieLens100KConfig(0.05);
  auto ds = GenerateSynthetic(dconf);
  ASSERT_TRUE(ds.ok());
  MfModel model(8);
  Rng rng(101);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);
  auto store = MakeStore(model, *ds, LossKind::kBpr, rng);
  store->PrepareRound({0});
  RoundScratch scratch;
  ClientUpdate upd;
  BenignClientLogic::ParticipateRound(*store, 0, g, 0, scratch, &upd);
  EXPECT_FALSE(upd.item_grads.empty());
}

// Rebuilding an upload in the same slot must not allocate once shapes
// reach steady state: the ClientUpdate recycles its per-item gradient
// buffers through the internal free list.
TEST(BenignClientLogicTest, SteadyStateUploadRebuildKeepsCapacity) {
  SyntheticConfig dconf = MovieLens100KConfig(0.05);
  auto ds = GenerateSynthetic(dconf);
  ASSERT_TRUE(ds.ok());
  MfModel model(8);
  Rng rng(103);
  GlobalModel g = model.InitGlobalModel(ds->num_items(), rng);
  auto store = MakeStore(model, *ds, LossKind::kBce, rng);
  store->PrepareRound({0});
  RoundScratch scratch;
  ClientUpdate upd;
  BenignClientLogic::ParticipateRound(*store, 0, g, 0, scratch, &upd);
  BenignClientLogic::ParticipateRound(*store, 0, g, 1, scratch, &upd);
  const int64_t capacity_after_two = upd.CapacityBytes();
  for (int round = 2; round < 6; ++round) {
    BenignClientLogic::ParticipateRound(*store, 0, g, round, scratch, &upd);
    EXPECT_EQ(upd.CapacityBytes(), capacity_after_two) << "round " << round;
  }
}

}  // namespace
}  // namespace pieck
