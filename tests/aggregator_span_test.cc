// Equivalence tests for the zero-copy span Aggregate API: for every
// aggregation rule, aggregating a span of borrowed pointers must be
// bit-identical to the pre-span reference semantics (the vector-of-Vec
// implementations this API replaced), which the reference functions
// below reproduce verbatim. Swept over group sizes (even/odd n for the
// Median middle-pair average) and over trim fractions including the
// 2*trim >= n clamp boundary for TrimmedMean.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "defense/robust_aggregators.h"
#include "fed/aggregator.h"
#include "tensor/vector_ops.h"

namespace pieck {
namespace {

std::uint64_t Bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

::testing::AssertionResult BitEqualVec(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (Bits(a[i]) != Bits(b[i])) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " != " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------
// Reference implementations: the exact pre-span semantics, operating on
// owned vectors.

Vec RefSum(const std::vector<Vec>& grads) {
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) Axpy(1.0, g, out);
  return out;
}

Vec RefMean(const std::vector<Vec>& grads) {
  Vec out = RefSum(grads);
  Scale(1.0 / static_cast<double>(grads.size()), out);
  return out;
}

Vec RefNormBound(const std::vector<Vec>& grads, double max_norm) {
  Vec out = Zeros(grads[0].size());
  for (const Vec& g : grads) {
    Vec clipped = g;  // the per-gradient deep copy the span API deletes
    ClipNorm(clipped, max_norm);
    Axpy(1.0, clipped, out);
  }
  return out;
}

Vec RefMedian(const std::vector<Vec>& grads) {
  const size_t n = grads.size();
  const size_t d = grads[0].size();
  Vec out(d);
  std::vector<double> column(n);
  for (size_t c = 0; c < d; ++c) {
    for (size_t i = 0; i < n; ++i) column[i] = grads[i][c];
    auto mid = column.begin() + static_cast<ptrdiff_t>(n / 2);
    std::nth_element(column.begin(), mid, column.end());
    double median;
    if (n % 2 == 1) {
      median = *mid;
    } else {
      double hi = *mid;
      double lo = *std::max_element(column.begin(), mid);
      median = 0.5 * (lo + hi);
    }
    out[c] = median * static_cast<double>(n);
  }
  return out;
}

Vec RefTrimmedMean(const std::vector<Vec>& grads, double trim_fraction) {
  const size_t n = grads.size();
  const size_t d = grads[0].size();
  size_t trim =
      static_cast<size_t>(std::ceil(trim_fraction * static_cast<double>(n)));
  if (2 * trim >= n) trim = (n - 1) / 2;
  Vec out(d);
  std::vector<double> column(n);
  for (size_t c = 0; c < d; ++c) {
    for (size_t i = 0; i < n; ++i) column[i] = grads[i][c];
    std::sort(column.begin(), column.end());
    double s = 0.0;
    for (size_t i = trim; i < n - trim; ++i) s += column[i];
    out[c] = s / static_cast<double>(n - 2 * trim) * static_cast<double>(n);
  }
  return out;
}

// ---------------------------------------------------------------------

std::vector<Vec> RandomGrads(int n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> grads;
  for (int i = 0; i < n; ++i) {
    Vec g(dim);
    // Mix magnitudes so NormBound both clips and passes gradients, and
    // reduction/rounding order differences would show up.
    double scale = i % 3 == 0 ? 10.0 : 0.1;
    for (double& v : g) v = rng.Normal(0.0, scale);
    grads.push_back(std::move(g));
  }
  return grads;
}

std::vector<const Vec*> SpanOf(const std::vector<Vec>& grads) {
  std::vector<const Vec*> span;
  for (const Vec& g : grads) span.push_back(&g);
  return span;
}

// Covers odd and even group sizes, including n=1 and a size where
// Median's even-n middle-pair average differs from nth_element alone.
class AggregatorSpanEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AggregatorSpanEquivalence, SumMatchesReference) {
  auto grads = RandomGrads(GetParam(), 9, 101);
  SumAggregator agg;
  EXPECT_TRUE(BitEqualVec(agg.Aggregate(SpanOf(grads)), RefSum(grads)));
}

TEST_P(AggregatorSpanEquivalence, MeanMatchesReference) {
  auto grads = RandomGrads(GetParam(), 9, 103);
  MeanAggregator agg;
  EXPECT_TRUE(BitEqualVec(agg.Aggregate(SpanOf(grads)), RefMean(grads)));
}

TEST_P(AggregatorSpanEquivalence, NormBoundMatchesClippedCopyReference) {
  for (double max_norm : {0.1, 1.0, 1e6}) {
    auto grads = RandomGrads(GetParam(), 9, 107);
    NormBoundAggregator agg(max_norm);
    EXPECT_TRUE(BitEqualVec(agg.Aggregate(SpanOf(grads)),
                            RefNormBound(grads, max_norm)))
        << "max_norm=" << max_norm;
  }
}

TEST_P(AggregatorSpanEquivalence, MedianMatchesReference) {
  auto grads = RandomGrads(GetParam(), 9, 109);
  MedianAggregator agg;
  EXPECT_TRUE(BitEqualVec(agg.Aggregate(SpanOf(grads)), RefMedian(grads)));
}

TEST_P(AggregatorSpanEquivalence, TrimmedMeanMatchesReference) {
  // 0.0 trims nothing; 0.2/0.4 trim interior amounts; 0.5 and 0.9 hit
  // the 2*trim >= n clamp (degenerate-to-median boundary).
  for (double trim : {0.0, 0.2, 0.4, 0.5, 0.9}) {
    auto grads = RandomGrads(GetParam(), 9, 113);
    TrimmedMeanAggregator agg(trim);
    EXPECT_TRUE(BitEqualVec(agg.Aggregate(SpanOf(grads)),
                            RefTrimmedMean(grads, trim)))
        << "trim_fraction=" << trim;
  }
}

TEST_P(AggregatorSpanEquivalence, OwnedVectorOverloadForwardsToSpan) {
  auto grads = RandomGrads(GetParam(), 5, 127);
  MedianAggregator median;
  TrimmedMeanAggregator trimmed(0.2);
  NormBoundAggregator nb(0.5);
  for (const Aggregator* agg :
       std::vector<const Aggregator*>{&median, &trimmed, &nb}) {
    EXPECT_TRUE(BitEqualVec(agg->Aggregate(grads),
                            agg->Aggregate(SpanOf(grads))))
        << agg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AggregatorSpanEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16, 33));

// The raw out-span entry point overwrites (never accumulates into) out.
TEST(AggregatorSpanTest, OutBufferIsOverwritten) {
  auto grads = RandomGrads(4, 6, 131);
  auto span = SpanOf(grads);
  SumAggregator agg;
  Vec expected = agg.Aggregate(span);
  Vec out(6, 1e9);  // poisoned
  agg.Aggregate(span, out.data());
  EXPECT_TRUE(BitEqualVec(out, expected));
}

}  // namespace
}  // namespace pieck
