#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/io.h"
#include "data/synthetic.h"

namespace pieck {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/pieck_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, LoadsMovieLensStyleTsv) {
  std::string path = TempPath("u.data");
  // user item rating timestamp, 1-based ids (real u.data layout).
  WriteFile(path,
            "1\t3\t5\t881250949\n"
            "1\t2\t3\t881250950\n"
            "2\t3\t4\t881250951\n");
  InteractionFileFormat format;  // defaults fit u.data
  auto ds = LoadInteractionFile(path, format);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->num_users(), 2);
  EXPECT_EQ(ds->num_items(), 3);
  EXPECT_EQ(ds->num_interactions(), 3);
  EXPECT_TRUE(ds->Interacted(0, 2));
  EXPECT_TRUE(ds->Interacted(1, 2));
}

TEST_F(IoTest, RatingThresholdFiltersRows) {
  std::string path = TempPath("rated.tsv");
  WriteFile(path,
            "1\t1\t5\n"
            "1\t2\t1\n"
            "2\t1\t2\n");
  InteractionFileFormat format;
  format.rating_column = 2;
  format.min_rating = 3.0;
  auto ds = LoadInteractionFile(path, format);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 1);
  EXPECT_TRUE(ds->Interacted(0, 0));
}

TEST_F(IoTest, HandlesMl1mDoubleColonSeparator) {
  std::string path = TempPath("ratings.dat");
  WriteFile(path, "1::10::4::978300760\n2::11::5::978300761\n");
  InteractionFileFormat format;
  format.separator = ':';  // "::" yields empty fields that are dropped
  auto ds = LoadInteractionFile(path, format);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->num_interactions(), 2);
  EXPECT_TRUE(ds->Interacted(0, 9));
  EXPECT_TRUE(ds->Interacted(1, 10));
}

TEST_F(IoTest, SkipsCommentsAndBlankLines) {
  std::string path = TempPath("commented.tsv");
  WriteFile(path, "# header\n\n1\t1\t5\t0\n");
  auto ds = LoadInteractionFile(path, InteractionFileFormat{});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 1);
}

TEST_F(IoTest, ErrorsOnMissingFile) {
  auto ds = LoadInteractionFile(TempPath("missing.tsv"),
                                InteractionFileFormat{});
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, ErrorsOnTooFewFields) {
  std::string path = TempPath("short.tsv");
  WriteFile(path, "1\n");
  auto ds = LoadInteractionFile(path, InteractionFileFormat{});
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, ErrorsOnEmptyFile) {
  std::string path = TempPath("empty.tsv");
  WriteFile(path, "# nothing but comments\n");
  auto ds = LoadInteractionFile(path, InteractionFileFormat{});
  EXPECT_FALSE(ds.ok());
}

TEST_F(IoTest, SaveLoadRoundTrip) {
  auto original = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("roundtrip.tsv");
  ASSERT_TRUE(SaveInteractionFile(*original, path).ok());

  InteractionFileFormat format;
  format.one_based_ids = false;
  auto loaded = LoadInteractionFile(path, format);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_interactions(), original->num_interactions());
  for (int u = 0; u < loaded->num_users(); ++u) {
    EXPECT_EQ(loaded->ItemsOf(u), original->ItemsOf(u)) << "user " << u;
  }
}

TEST_F(IoTest, ErrorsOnZeroIdWithOneBasedConvention) {
  std::string path = TempPath("zero_id.tsv");
  WriteFile(path, "0\t1\t5\t0\n");
  auto ds = LoadInteractionFile(path, InteractionFileFormat{});
  EXPECT_FALSE(ds.ok());
}

}  // namespace
}  // namespace pieck
