#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "defense/defense.h"
#include "defense/regularized_defense.h"
#include "defense/robust_aggregators.h"
#include "model/mf_model.h"

namespace pieck {
namespace {

constexpr int kDim = 6;

TEST(NormBoundTest, ClipsLargeGradientsBeforeSumming) {
  NormBoundAggregator agg(1.0);
  // One benign small gradient, one oversized poison gradient.
  Vec out = agg.Aggregate({{0.3, 0.0}, {100.0, 0.0}});
  EXPECT_NEAR(out[0], 0.3 + 1.0, 1e-12);
}

TEST(NormBoundTest, LeavesSmallGradientsAlone) {
  NormBoundAggregator agg(10.0);
  Vec out = agg.Aggregate({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(MedianTest, SumCalibratedMedian) {
  MedianAggregator agg;
  Vec out = agg.Aggregate({{1.0}, {2.0}, {100.0}});
  // median 2.0 scaled by n = 3.
  EXPECT_DOUBLE_EQ(out[0], 6.0);
}

TEST(MedianTest, EvenCountAveragesMiddlePair) {
  MedianAggregator agg;
  Vec out = agg.Aggregate({{1.0}, {2.0}, {3.0}, {100.0}});
  EXPECT_DOUBLE_EQ(out[0], 2.5 * 4.0);
}

TEST(MedianTest, FiltersMinorityOutliers) {
  MedianAggregator agg;
  // 3 benign near zero, 2 identical poison at 50: median is benign.
  Vec out = agg.Aggregate({{0.1}, {0.0}, {-0.1}, {50.0}, {50.0}});
  EXPECT_NEAR(out[0] / 5.0, 0.0, 0.11);
}

TEST(MedianTest, MajorityPoisonWins) {
  // The paper's Eq. 11 scenario: poison outnumbers benign for a cold
  // target item, so the median lands inside the poison cluster.
  MedianAggregator agg;
  Vec out = agg.Aggregate({{0.1}, {0.0}, {50.0}, {50.0}, {50.0}});
  EXPECT_NEAR(out[0] / 5.0, 50.0, 1e-9);
}

TEST(TrimmedMeanTest, TrimsExtremes) {
  TrimmedMeanAggregator agg(0.2);
  // n = 5, trim ceil(1) from each side: {-100, 100} dropped.
  Vec out = agg.Aggregate({{-100.0}, {1.0}, {2.0}, {3.0}, {100.0}});
  EXPECT_DOUBLE_EQ(out[0], 2.0 * 5.0);
}

TEST(TrimmedMeanTest, SmallClusterOfPoisonSurvivesTrim) {
  // Poison fraction far above the trim rate survives (the paper's point
  // about TrimmedMean failing against PIECK).
  TrimmedMeanAggregator agg(0.1);
  std::vector<Vec> grads = {{0.0}, {0.1}, {-0.1}, {20.0}, {20.0}, {20.0}};
  Vec out = agg.Aggregate(grads);
  EXPECT_GT(out[0], 20.0);  // poison leaks into the aggregate
}

TEST(TrimmedMeanTest, DegeneratesToMedianWhenOverTrimmed) {
  TrimmedMeanAggregator agg(0.9);
  Vec out = agg.Aggregate({{1.0}, {5.0}, {9.0}});
  EXPECT_DOUBLE_EQ(out[0], 5.0 * 3.0);
}

ClientUpdate MakeUpdate(int item, Vec grad) {
  ClientUpdate upd;
  upd.AccumulateItemGrad(item, std::move(grad));
  return upd;
}

TEST(KrumFilterTest, SelectsFromDenseBenignCluster) {
  // 5 similar benign updates + 2 mutually-identical but huge poison
  // updates. Krum must select a benign one: the poison pair is close to
  // each other but far from everything else, and with f = 2 its
  // neighbor set must include benign updates.
  std::vector<ClientUpdate> updates;
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    Vec g(4);
    for (double& x : g) x = rng.Normal(0.0, 0.01);
    updates.push_back(MakeUpdate(0, g));
  }
  updates.push_back(MakeUpdate(1, {30, 30, 30, 30}));
  updates.push_back(MakeUpdate(1, {30, 30, 30, 30}));

  KrumFilter krum(2.0 / 7.0);
  std::vector<int> kept = krum.Select(updates);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_LT(kept[0], 5);  // a benign index
}

TEST(KrumFilterTest, PassThroughForTinyGroups) {
  std::vector<ClientUpdate> updates = {MakeUpdate(0, {1.0}),
                                       MakeUpdate(0, {2.0})};
  KrumFilter krum(0.05);
  EXPECT_EQ(krum.Select(updates).size(), 2u);
}

TEST(MultiKrumFilterTest, DiscardsTwoFWorst) {
  std::vector<ClientUpdate> updates;
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    Vec g(4);
    for (double& x : g) x = rng.Normal(0.0, 0.01);
    updates.push_back(MakeUpdate(0, g));
  }
  updates.push_back(MakeUpdate(1, {50, 50, 50, 50}));
  updates.push_back(MakeUpdate(1, {50, 50, 50, 50}));

  MultiKrumFilter multi(0.1);  // f = 1, discard 2
  std::vector<int> kept = multi.Select(updates);
  EXPECT_EQ(kept.size(), 8u);
  for (int idx : kept) EXPECT_LT(idx, 8);  // both poison updates dropped
}

TEST(MultiKrumFilterTest, KeepsOrderSorted) {
  std::vector<ClientUpdate> updates;
  for (int i = 0; i < 6; ++i) {
    updates.push_back(MakeUpdate(0, {static_cast<double>(i) * 0.001}));
  }
  MultiKrumFilter multi(0.05);
  std::vector<int> kept = multi.Select(updates);
  EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end()));
}

TEST(DefensePlanTest, BuildsEveryKind) {
  AggregatorParams params;
  for (DefenseKind kind :
       {DefenseKind::kNoDefense, DefenseKind::kNormBound, DefenseKind::kMedian,
        DefenseKind::kTrimmedMean, DefenseKind::kKrum, DefenseKind::kMultiKrum,
        DefenseKind::kBulyan, DefenseKind::kOurs,
        DefenseKind::kOursPlusNormBound}) {
    DefensePlan plan = MakeDefensePlan(kind, params);
    ASSERT_NE(plan.aggregator, nullptr) << DefenseKindToString(kind);
  }
}

TEST(DefensePlanTest, KrumFamilyHasFilters) {
  AggregatorParams params;
  EXPECT_EQ(MakeDefensePlan(DefenseKind::kNoDefense, params).filter, nullptr);
  EXPECT_NE(MakeDefensePlan(DefenseKind::kKrum, params).filter, nullptr);
  EXPECT_NE(MakeDefensePlan(DefenseKind::kMultiKrum, params).filter, nullptr);
  EXPECT_NE(MakeDefensePlan(DefenseKind::kBulyan, params).filter, nullptr);
}

TEST(DefensePlanTest, OnlyOursUsesClientRegularizers) {
  EXPECT_TRUE(DefenseUsesClientRegularizers(DefenseKind::kOurs));
  EXPECT_TRUE(DefenseUsesClientRegularizers(DefenseKind::kOursPlusNormBound));
  EXPECT_FALSE(DefenseUsesClientRegularizers(DefenseKind::kMedian));
  EXPECT_FALSE(DefenseUsesClientRegularizers(DefenseKind::kNoDefense));
}

TEST(DefensePlanTest, HybridCombinesRegularizersWithNormBound) {
  AggregatorParams params;
  DefensePlan plan = MakeDefensePlan(DefenseKind::kOursPlusNormBound, params);
  ASSERT_NE(plan.aggregator, nullptr);
  EXPECT_EQ(plan.aggregator->name(), "NormBound");
  EXPECT_EQ(plan.filter, nullptr);
}

class RegularizedDefenseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<MfModel>(kDim);
    Rng rng(91);
    global_ = model_->InitGlobalModel(12, rng);
    user_ = model_->InitUserEmbedding(rng);
    options_.mining_rounds = 1;
    options_.mined_top_n = 3;
  }

  /// Feeds two observations with items 0..2 moving most so the defense's
  /// miner completes with P = {0, 1, 2}.
  void CompleteMining(RegularizedClientDefense& defense) {
    defense.ObserveRound(global_);
    Rng rng(93);
    for (int j = 0; j < 3; ++j) {
      for (int c = 0; c < kDim; ++c) {
        global_.item_embeddings.At(static_cast<size_t>(j),
                                   static_cast<size_t>(c)) +=
            rng.Normal(0.0, 1.0);
      }
    }
    defense.ObserveRound(global_);
  }

  std::unique_ptr<MfModel> model_;
  GlobalModel global_;
  Vec user_;
  DefenseOptions options_;
};

TEST_F(RegularizedDefenseFixture, NoOpBeforeMiningCompletes) {
  RegularizedClientDefense defense(options_);
  defense.ObserveRound(global_);
  std::vector<LabeledItem> batch = {{5, 1.0}};
  Vec grad_u = Zeros(static_cast<size_t>(kDim));
  ClientUpdate upd;
  defense.ApplyRegularizers(global_, user_, batch, &grad_u, &upd);
  EXPECT_TRUE(upd.item_grads.empty());
  EXPECT_DOUBLE_EQ(Norm2(grad_u), 0.0);
}

TEST_F(RegularizedDefenseFixture, MinerIdentifiesMovingItems) {
  RegularizedClientDefense defense(options_);
  CompleteMining(defense);
  ASSERT_TRUE(defense.miner().Ready());
  std::vector<int> mined = defense.miner().MinedItems();
  std::sort(mined.begin(), mined.end());
  EXPECT_EQ(mined, (std::vector<int>{0, 1, 2}));
}

TEST_F(RegularizedDefenseFixture, Re1GradientIncreasesRe1) {
  RegularizedClientDefense defense(options_);
  CompleteMining(defense);
  std::vector<LabeledItem> batch = {{5, 1.0}, {7, 0.0}};

  double re1_before = defense.ComputeRe1(global_, batch);
  ClientUpdate upd;
  defense.ApplyRegularizers(global_, user_, batch, nullptr, &upd);
  // Apply the uploaded gradients as the server would (lr 1, sum).
  GlobalModel after = global_;
  for (const auto& [item, grad] : upd.item_grads) {
    after.item_embeddings.AxpyRow(static_cast<size_t>(item), -1.0, grad);
  }
  double re1_after = defense.ComputeRe1(after, batch);
  // L_def = L − β·Re1: the defense step must raise Re1 (more confusion
  // between popular and unpopular features).
  EXPECT_GT(re1_after, re1_before);
}

TEST_F(RegularizedDefenseFixture, Re2GradientIncreasesRe2) {
  RegularizedClientDefense defense(options_);
  CompleteMining(defense);
  std::vector<LabeledItem> batch = {{5, 1.0}};

  double re2_before = defense.ComputeRe2(global_, user_);
  Vec grad_u = Zeros(user_.size());
  defense.ApplyRegularizers(global_, user_, batch, &grad_u, nullptr);
  Vec user_after = user_;
  Axpy(-1.0, grad_u, user_after);
  double re2_after = defense.ComputeRe2(global_, user_after);
  // The user step must push the user away from popular items (larger KL).
  EXPECT_GT(re2_after, re2_before);
}

TEST_F(RegularizedDefenseFixture, AblationSwitchesDisableTerms) {
  options_.enable_re1 = false;
  RegularizedClientDefense defense(options_);
  CompleteMining(defense);
  std::vector<LabeledItem> batch = {{5, 1.0}};
  ClientUpdate upd;
  Vec grad_u = Zeros(user_.size());
  defense.ApplyRegularizers(global_, user_, batch, &grad_u, &upd);
  // Re1 off: no gradient for the unpopular batch item; Re2 still
  // uploads separation gradients for the mined popular items.
  EXPECT_EQ(upd.FindItemGrad(5), nullptr);
  EXPECT_GT(Norm2(grad_u), 0.0);  // Re2 still active on the user side

  options_.enable_re1 = true;
  options_.enable_re2 = false;
  RegularizedClientDefense defense2(options_);
  Rng fresh(91);
  global_ = model_->InitGlobalModel(12, fresh);  // fresh model
  CompleteMining(defense2);
  ClientUpdate upd2;
  Vec grad_u2 = Zeros(user_.size());
  defense2.ApplyRegularizers(global_, user_, batch, &grad_u2, &upd2);
  EXPECT_NE(upd2.FindItemGrad(5), nullptr);  // Re1 active on batch item
  EXPECT_DOUBLE_EQ(Norm2(grad_u2), 0.0);  // Re2 off: user grad untouched
}

TEST_F(RegularizedDefenseFixture, ZeroWeightsAreNoOps) {
  options_.beta = 0.0;
  options_.gamma = 0.0;
  RegularizedClientDefense defense(options_);
  CompleteMining(defense);
  std::vector<LabeledItem> batch = {{5, 1.0}};
  ClientUpdate upd;
  Vec grad_u = Zeros(user_.size());
  defense.ApplyRegularizers(global_, user_, batch, &grad_u, &upd);
  EXPECT_TRUE(upd.item_grads.empty());
  EXPECT_DOUBLE_EQ(Norm2(grad_u), 0.0);
}

TEST(DefenseNameTest, AllKindsNamed) {
  EXPECT_STREQ(DefenseKindToString(DefenseKind::kOurs), "Ours");
  EXPECT_STREQ(DefenseKindToString(DefenseKind::kBulyan), "Bulyan");
  EXPECT_STREQ(DefenseKindToString(DefenseKind::kNoDefense), "NoDefense");
}

}  // namespace
}  // namespace pieck
