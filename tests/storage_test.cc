// The beyond-RAM storage tier: proves the mmap backend (hot-row cache,
// eviction, write-back, seed-keyed rematerialization) is bit-identical
// to the RAM backend for full simulations across models, defenses,
// thread counts, and pipeline depths; that every cold-row I/O engine
// (mmap-touch, pread-batch, io_uring) produces bit-identical models and
// per-round losses, with io_uring degrading gracefully where the kernel
// lacks rings; that eviction followed by refault replays the exact init
// bits; that the cache behaves at its capacity edges; and that the
// checkpoint/attach path orders data before metadata (a store that
// claims a row persisted can always read it back).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulation.h"
#include "data/interaction_csr.h"
#include "data/synthetic.h"
#include "fed/client_state_store.h"
#include "fed/server.h"
#include "storage/dirty_rows.h"
#include "storage/fault_engine.h"
#include "storage/hot_row_cache.h"
#include "storage/storage.h"
#include "storage/tiered_matrix.h"

namespace pieck {
namespace {

// ---------------------------------------------------------------------
// Digest plumbing (same FNV fold the golden tests pin).

uint64_t HashDoubles(uint64_t h, const double* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t GlobalModelDigest(uint64_t h, const GlobalModel& g) {
  h = HashDoubles(h, g.item_embeddings.data().data(),
                  g.item_embeddings.data().size());
  for (size_t l = 0; l < g.mlp_weights.size(); ++l) {
    h = HashDoubles(h, g.mlp_weights[l].data().data(),
                    g.mlp_weights[l].data().size());
    h = HashDoubles(h, g.mlp_biases[l].data(), g.mlp_biases[l].size());
  }
  return HashDoubles(h, g.projection.data(), g.projection.size());
}

uint64_t SimulationDigest(const Simulation& sim) {
  uint64_t h = GlobalModelDigest(0xcbf29ce484222325ULL, sim.global());
  BenignEvalView view = sim.benign_eval_view();
  for (size_t ui = 0; ui < view.size(); ++ui) {
    Vec u = view.embedding_vec(ui);
    h = HashDoubles(h, u.data(), u.size());
  }
  return h;
}

StorageConfig MmapConfig(int64_t cache_rows = 0, std::string dir = "") {
  StorageConfig storage;
  storage.kind = StorageKind::kMmap;
  storage.cache_rows = cache_rows;
  storage.dir = std::move(dir);
  return storage;
}

ExperimentConfig GoldenStyleConfig(ModelKind model_kind, LossKind loss,
                                   AttackKind attack, DefenseKind defense,
                                   int num_threads, int pipeline_depth) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.05);
  config.embedding_dim = 8;
  config.users_per_round = 16;
  config.num_threads = num_threads;
  config.pipeline_depth = pipeline_depth;
  config.model_kind = model_kind;
  config.loss = loss;
  config.attack = attack;
  config.malicious_fraction = attack == AttackKind::kNone ? 0.0 : 0.1;
  config.defense = defense;
  config.seed = 20260731;
  return config;
}

uint64_t RunDigest(const ExperimentConfig& config, int rounds) {
  auto sim = Simulation::Create(config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  (*sim)->RunRounds(rounds);
  return SimulationDigest(**sim);
}

// ---------------------------------------------------------------------
// RAM <-> mmap bit-identity over the model x defense x threads x
// pipeline-depth grid. Unconditional (no strict gate): both backends
// run on this machine's libm, so their bits must agree everywhere —
// including a cache barely larger than the cohort, where every round
// evicts, writes back, and refaults.

struct BackendCase {
  const char* name;
  ModelKind model_kind;
  LossKind loss;
  AttackKind attack;
  DefenseKind defense;
  int num_threads;
  int pipeline_depth;
  int64_t cache_rows;  // 0 = default
  int rounds;
};

class StorageBackendEquivalence
    : public ::testing::TestWithParam<BackendCase> {};

TEST_P(StorageBackendEquivalence, MmapMatchesRamBitwise) {
  const BackendCase& c = GetParam();
  ExperimentConfig config =
      GoldenStyleConfig(c.model_kind, c.loss, c.attack, c.defense,
                        c.num_threads, c.pipeline_depth);
  const uint64_t ram = RunDigest(config, c.rounds);
  config.storage = MmapConfig(c.cache_rows);
  const uint64_t mmap = RunDigest(config, c.rounds);
  EXPECT_EQ(mmap, ram) << c.name << ": mmap diverged from RAM";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StorageBackendEquivalence,
    ::testing::Values(
        BackendCase{"mf_bce_ipe", ModelKind::kMatrixFactorization,
                    LossKind::kBce, AttackKind::kPieckIpe,
                    DefenseKind::kNoDefense, 1, 1, 0, 4},
        BackendCase{"mf_bce_ipe_tiny_cache", ModelKind::kMatrixFactorization,
                    LossKind::kBce, AttackKind::kPieckIpe,
                    DefenseKind::kNoDefense, 1, 1, 17, 4},
        BackendCase{"mf_bce_ipe_mt_piped", ModelKind::kMatrixFactorization,
                    LossKind::kBce, AttackKind::kPieckIpe,
                    DefenseKind::kNoDefense, 0, 2, 17, 5},
        BackendCase{"mf_bpr_ipe_piped", ModelKind::kMatrixFactorization,
                    LossKind::kBpr, AttackKind::kPieckIpe,
                    DefenseKind::kNoDefense, 1, 2, 16, 4},
        BackendCase{"mf_bce_uea_defense_mt", ModelKind::kMatrixFactorization,
                    LossKind::kBce, AttackKind::kPieckUea, DefenseKind::kOurs,
                    0, 1, 17, 4},
        BackendCase{"ncf_bce_ipe", ModelKind::kNeuralCf, LossKind::kBce,
                    AttackKind::kPieckIpe, DefenseKind::kNoDefense, 1, 1, 0,
                    3},
        BackendCase{"ncf_bce_uea_defense_piped", ModelKind::kNeuralCf,
                    LossKind::kBce, AttackKind::kPieckUea, DefenseKind::kOurs,
                    0, 2, 17, 3},
        BackendCase{"mf_bce_noattack", ModelKind::kMatrixFactorization,
                    LossKind::kBce, AttackKind::kNone,
                    DefenseKind::kNoDefense, 1, 1, 16, 4}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// The pre-refactor golden digests must keep holding through the mmap
// tier (strict on glibc x86-64, like the RAM golden test); RAM == mmap
// is asserted unconditionally either way.

TEST(StorageGolden, MmapReproducesPreRefactorDigests) {
  struct GoldenCase {
    const char* name;
    ModelKind model_kind;
    LossKind loss;
    AttackKind attack;
    DefenseKind defense;
    int rounds;
    uint64_t digest;
  };
  const GoldenCase cases[] = {
      {"mf_bce_ipe", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 5,
       0xb72a8d8c1b6417a5ULL},
      {"ncf_bce_ipe", ModelKind::kNeuralCf, LossKind::kBce,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 3,
       0xaf2ea0581f71d8c2ULL},
      {"mf_bce_uea_defense", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kPieckUea, DefenseKind::kOurs, 4, 0x5712cd6b31b27c81ULL},
      {"mf_bpr_ipe", ModelKind::kMatrixFactorization, LossKind::kBpr,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 4,
       0xa7dc8e12c984615dULL},
      {"mf_bce_noattack", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kNone, DefenseKind::kNoDefense, 5, 0xf8c295331becc4a8ULL},
      {"ncf_bce_uea_defense", ModelKind::kNeuralCf, LossKind::kBce,
       AttackKind::kPieckUea, DefenseKind::kOurs, 3, 0xc9c00d271d190dc8ULL},
  };
  const bool strict = std::getenv("PIECK_GOLDEN_STRICT") != nullptr;

  for (const GoldenCase& c : cases) {
    ExperimentConfig config = GoldenStyleConfig(c.model_kind, c.loss,
                                                c.attack, c.defense, 1, 1);
    const uint64_t ram = RunDigest(config, c.rounds);
    config.storage = MmapConfig(17);  // cohort + 1: maximal eviction churn
    const uint64_t mmap = RunDigest(config, c.rounds);
    EXPECT_EQ(mmap, ram) << c.name << ": mmap diverged from RAM";
    if (strict) {
      EXPECT_EQ(mmap, c.digest) << c.name;
    } else if (mmap != c.digest) {
      GTEST_SKIP() << c.name << ": digest " << std::hex << mmap
                   << " != pre-refactor " << c.digest
                   << " (expected on non-glibc/x86-64 libm; set "
                      "PIECK_GOLDEN_STRICT=1 to enforce)";
    }
  }
}

// ---------------------------------------------------------------------
// TieredMatrix: eviction then refault replays the exact init bits, and
// dirty rows survive eviction via write-back.

TieredMatrix::InitFn PatternInit(size_t cols) {
  return [cols](int64_t row, double* dst) {
    for (size_t c = 0; c < cols; ++c) {
      dst[c] = static_cast<double>(row) * 1000.0 + static_cast<double>(c);
    }
  };
}

TEST(TieredMatrixTest, EvictionThenRefaultReplaysInitBits) {
  constexpr int64_t kRows = 16;
  constexpr size_t kCols = 4;
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();

  TieredMatrix m;
  ASSERT_TRUE(m.Init(kRows, kCols, MmapConfig(2), *dir, "rows.bin",
                     PatternInit(kCols))
                  .ok());
  // Sweep every row through the 2-frame cache: 14 of the 16 clean rows
  // are evicted without ever touching the file.
  for (int64_t r = 0; r < kRows; ++r) {
    const double* row = m.Row(r);
    EXPECT_EQ(row[0], static_cast<double>(r) * 1000.0);
    EXPECT_EQ(row[kCols - 1],
              static_cast<double>(r) * 1000.0 + kCols - 1);
  }
  // Refault an evicted clean row: rebuilt from the init replay, same
  // bits, no file read (it was never persisted).
  const double* again = m.Row(0);
  for (size_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(again[c], static_cast<double>(c));
  }
  const StorageCounters counters = m.counters();
  EXPECT_GE(counters.rematerializations, kRows + 1);
  EXPECT_GE(counters.evictions, kRows - 2);
  EXPECT_EQ(counters.writebacks, 0);  // nothing was ever dirty
}

TEST(TieredMatrixTest, DirtyRowSurvivesEvictionViaWriteback) {
  constexpr int64_t kRows = 16;
  constexpr size_t kCols = 4;
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();

  TieredMatrix m;
  ASSERT_TRUE(m.Init(kRows, kCols, MmapConfig(2), *dir, "rows.bin",
                     PatternInit(kCols))
                  .ok());
  double* row3 = m.MutableRow(3);
  for (size_t c = 0; c < kCols; ++c) row3[c] = -7.25 * (c + 1);
  // Evict row 3 by sweeping the rest of the table through the cache.
  for (int64_t r = 0; r < kRows; ++r) {
    if (r != 3) m.Row(r);
  }
  const double* back = m.Row(3);
  for (size_t c = 0; c < kCols; ++c) {
    EXPECT_EQ(back[c], -7.25 * (c + 1)) << "col " << c;
  }
  EXPECT_GE(m.counters().writebacks, 1);
}

// ---------------------------------------------------------------------
// Cache capacity edges: a single frame still yields correct values, and
// a zero (auto) capacity clamps to the population.

TEST(TieredMatrixTest, SingleFrameCacheIsCorrect) {
  constexpr int64_t kRows = 8;
  constexpr size_t kCols = 3;
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());

  TieredMatrix m;
  ASSERT_TRUE(m.Init(kRows, kCols, MmapConfig(1), *dir, "rows.bin",
                     PatternInit(kCols))
                  .ok());
  // Two full passes: every access after the first frame fill is a
  // miss + eviction, interleaving dirty write-backs with clean drops.
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t r = 0; r < kRows; ++r) {
      double* row = m.MutableRow(r);
      EXPECT_EQ(row[0], pass == 0 ? static_cast<double>(r) * 1000.0
                                  : static_cast<double>(r) * 1000.0 + 0.5);
      if (pass == 0) row[0] += 0.5;
    }
  }
  EXPECT_GE(m.counters().writebacks, kRows);
}

TEST(TieredMatrixTest, AutoCapacityClampsToPopulation) {
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());
  TieredMatrix m;
  ASSERT_TRUE(m.Init(5, 2, MmapConfig(0), *dir, "rows.bin", PatternInit(2))
                  .ok());
  for (int64_t r = 0; r < 5; ++r) m.Row(r);
  EXPECT_EQ(m.counters().evictions, 0);  // 5 rows fit the clamped cache
  EXPECT_EQ(m.counters().rematerializations, 5);
}

// Working set larger than the cache: the EvalView snapshot must cover
// cached, persisted, and never-touched rows without disturbing the
// tier, and must equal the RAM backend's view bitwise.
TEST(StorageTest, EvalViewSnapshotsWorkingSetLargerThanCache) {
  ExperimentConfig config = GoldenStyleConfig(
      ModelKind::kMatrixFactorization, LossKind::kBce, AttackKind::kPieckIpe,
      DefenseKind::kNoDefense, 1, 1);
  auto ram_sim = Simulation::Create(config);
  ASSERT_TRUE(ram_sim.ok());
  (*ram_sim)->RunRounds(3);

  config.storage = MmapConfig(16);  // population is ~3x the cache
  auto mmap_sim = Simulation::Create(config);
  ASSERT_TRUE(mmap_sim.ok());
  (*mmap_sim)->RunRounds(3);

  BenignEvalView ram_view = (*ram_sim)->benign_eval_view();
  BenignEvalView mmap_view = (*mmap_sim)->benign_eval_view();
  ASSERT_EQ(ram_view.size(), mmap_view.size());
  ASSERT_GT(static_cast<int64_t>(ram_view.size()), 16);
  for (size_t ui = 0; ui < ram_view.size(); ++ui) {
    ASSERT_EQ(ram_view.embedding_vec(ui), mmap_view.embedding_vec(ui))
        << "user " << ui;
  }
  // Snapshotting is read-only: a second view is identical and the
  // cohort counters don't move.
  const StorageCounters before = (*mmap_sim)->store().storage_counters();
  BenignEvalView view2 = (*mmap_sim)->benign_eval_view();
  for (size_t ui = 0; ui < mmap_view.size(); ++ui) {
    ASSERT_EQ(view2.embedding_vec(ui), mmap_view.embedding_vec(ui));
  }
  const StorageCounters after = (*mmap_sim)->store().storage_counters();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

// ---------------------------------------------------------------------
// Crash-safe write-back ordering: Checkpoint persists data before the
// metadata that claims it, an attached store resumes bit-identically,
// and corrupt metadata is rejected instead of trusted.

TEST(StorageTest, CheckpointThenAttachResumesBitIdentically) {
  const std::string dir = ::testing::TempDir() + "pieck_attach_test";
  ExperimentConfig config = GoldenStyleConfig(
      ModelKind::kMatrixFactorization, LossKind::kBce, AttackKind::kPieckIpe,
      DefenseKind::kNoDefense, 1, 1);
  config.storage = MmapConfig(17, dir);

  uint64_t trained = 0;
  {
    auto sim = Simulation::Create(config);
    ASSERT_TRUE(sim.ok()) << sim.status().ToString();
    (*sim)->RunRounds(4);
    BenignEvalView view = (*sim)->benign_eval_view();
    for (size_t ui = 0; ui < view.size(); ++ui) {
      Vec u = view.embedding_vec(ui);
      trained = HashDoubles(trained, u.data(), u.size());
    }
    ASSERT_TRUE((*sim)->mutable_store().Checkpoint().ok());
  }
  // Data durable before metadata claims it: the checkpoint leaves the
  // final bitmap and no half-written temp behind.
  EXPECT_EQ(std::remove((dir + "/rows.bin.meta.tmp").c_str()), -1)
      << "checkpoint left a temp metadata file";
  std::FILE* meta = std::fopen((dir + "/rows.bin.meta").c_str(), "rb");
  ASSERT_NE(meta, nullptr);
  std::fclose(meta);

  // A second process attaches: same config derives the same per-user
  // seeds, untrained rows replay their init, trained rows read back
  // from the store — the population is bitwise what we left.
  config.storage.attach = true;
  auto resumed = Simulation::Create(config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  uint64_t attached = 0;
  BenignEvalView view = (*resumed)->benign_eval_view();
  for (size_t ui = 0; ui < view.size(); ++ui) {
    Vec u = view.embedding_vec(ui);
    attached = HashDoubles(attached, u.data(), u.size());
  }
  EXPECT_EQ(attached, trained);
}

TEST(TieredMatrixTest, AttachRejectsCorruptMetadata) {
  const std::string dir = ::testing::TempDir() + "pieck_corrupt_meta_test";
  StorageConfig storage = MmapConfig(4, dir);
  auto store_dir = StoreDir::Resolve(dir);
  ASSERT_TRUE(store_dir.ok());
  {
    TieredMatrix m;
    ASSERT_TRUE(
        m.Init(8, 2, storage, *store_dir, "rows.bin", PatternInit(2)).ok());
    m.MutableRow(1);
    ASSERT_TRUE(m.Checkpoint().ok());
  }
  // Flip the magic: the attach must fail loudly, not resume silently.
  std::FILE* f = std::fopen((dir + "/rows.bin.meta").c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const uint64_t garbage = 0xdeadbeefdeadbeefULL;
  ASSERT_EQ(std::fwrite(&garbage, sizeof(garbage), 1, f), 1u);
  std::fclose(f);

  storage.attach = true;
  TieredMatrix m2;
  const Status st =
      m2.Init(8, 2, storage, *store_dir, "rows.bin", PatternInit(2));
  EXPECT_FALSE(st.ok());
}

// ---------------------------------------------------------------------
// The streamed (mmap) CSR is span-for-span the heap CSR.

TEST(StorageTest, StreamedCsrMatchesHeapCsr) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  InteractionCsr heap(*ds);

  const std::string dir = ::testing::TempDir() + "pieck_csr_test";
  auto store_dir = StoreDir::Resolve(dir);
  ASSERT_TRUE(store_dir.ok());
  InteractionCsrBuilder builder(ds->num_users(), ds->num_items(),
                                (*store_dir)->FilePath("offsets.bin"),
                                (*store_dir)->FilePath("items.bin"));
  for (int u = 0; u < ds->num_users(); ++u) {
    const std::vector<int>& row = ds->ItemsOf(u);
    ASSERT_TRUE(builder.AddUser(row.data(), row.size()).ok());
  }
  auto streamed = builder.Finish();
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  ASSERT_TRUE(streamed->is_mmap());
  ASSERT_FALSE(heap.is_mmap());
  ASSERT_EQ(streamed->num_users(), heap.num_users());
  ASSERT_EQ(streamed->num_interactions(), heap.num_interactions());
  for (int u = 0; u < heap.num_users(); ++u) {
    const auto a = heap.ItemsOf(u);
    const auto b = streamed->ItemsOf(u);
    ASSERT_EQ(a.size, b.size) << "user " << u;
    for (size_t i = 0; i < a.size; ++i) {
      ASSERT_EQ(a.data[i], b.data[i]) << "user " << u << " slot " << i;
    }
  }
  // The mapped CSR's resident cost is the view structs, not the data.
  EXPECT_GT(streamed->BackingBytes(), 0);
  EXPECT_LT(streamed->FootprintBytes(), heap.FootprintBytes());
  streamed->PrefetchUser(0);         // advisory, must not crash
  streamed->ReleaseResidentPages();  // drops pages, not data
  const auto span = streamed->ItemsOf(0);
  const auto want = heap.ItemsOf(0);
  ASSERT_EQ(span.size, want.size);
  for (size_t i = 0; i < span.size; ++i) EXPECT_EQ(span.data[i], want.data[i]);
}

// ---------------------------------------------------------------------
// Hot-row cache mechanics: second-chance eviction respects pins and
// reports the victim's dirty bit.

TEST(HotRowCacheTest, EvictionSkipsPinnedAndReportsDirtyVictims) {
  HotRowCache cache;
  cache.Init(2, 4);
  HotRowCache::Eviction ev;

  const int64_t f0 = cache.Acquire(100, &ev);
  EXPECT_EQ(ev.row, -1);
  const int64_t f1 = cache.Acquire(200, &ev);
  EXPECT_EQ(ev.row, -1);
  EXPECT_EQ(cache.cached_rows(), 2);
  cache.Pin(f0);
  cache.SetDirty(f1);

  // Only the unpinned frame is evictable; its dirty bit comes back so
  // the caller can write the bytes (still in the frame) to the file.
  const int64_t f2 = cache.Acquire(300, &ev);
  EXPECT_EQ(f2, f1);
  EXPECT_EQ(ev.row, 200);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(cache.FindFrame(200), -1);
  EXPECT_EQ(cache.FindFrame(100), f0);
  EXPECT_EQ(cache.FindFrame(300), f2);

  cache.Unpin(f0);
  cache.Evict(f0);
  EXPECT_EQ(cache.FindFrame(100), -1);
  EXPECT_EQ(cache.cached_rows(), 1);
}

// ---------------------------------------------------------------------
// DirtyRowSet: append-only rounds, capacity survives Clear.

TEST(DirtyRowSetTest, ClearKeepsCapacity) {
  DirtyRowSet set;
  EXPECT_TRUE(set.empty());
  set.Add(5);
  set.Add(9);
  set.Add(5);  // append-only by design; dedup is the consumer's job
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.rows()[0], 5);
  EXPECT_EQ(set.rows()[2], 5);
  const int64_t bytes = set.CapacityBytes();
  EXPECT_GT(bytes, 0);
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.CapacityBytes(), bytes);
}

// ---------------------------------------------------------------------
// Prefetch is advisory and tolerant of the raw selection slot, which
// mixes benign store users with malicious indices past the population.

TEST(StorageTest, PrefetchToleratesOutOfRangeSelectionIndices) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  auto model = MakeModel(ModelKind::kMatrixFactorization, 8);
  auto sampler = std::make_shared<const NegativeSampler>(1.0);
  ClientStateStore store(*model, *ds, sampler, LossKind::kBce, 1.0,
                         MmapConfig(8));
  store.PrefetchUsers({0, 1, ds->num_users(), ds->num_users() + 17, -1});
  EXPECT_GE(store.storage_counters().prefetched_rows, 2);
}

// ---------------------------------------------------------------------
// The sparse Fisher-Yates branch consumes the identical draw stream and
// emits the identical cohort as the dense reference.

TEST(SparseSamplingTest, SparseBranchMatchesDenseReference) {
  const struct {
    int n;
    int k;
  } cases[] = {{10000, 1}, {10000, 37}, {10000, 512}, {100000, 16}};
  for (const auto& c : cases) {
    Rng sparse_rng(0x5eedULL + static_cast<uint64_t>(c.n) + c.k);
    const std::vector<int> got = sparse_rng.SampleWithoutReplacement(c.n, c.k);

    // Dense reference: the textbook partial Fisher-Yates over a
    // materialized index vector, same UniformInt(i, n-1) stream.
    Rng dense_rng(0x5eedULL + static_cast<uint64_t>(c.n) + c.k);
    std::vector<int> idx(static_cast<size_t>(c.n));
    std::iota(idx.begin(), idx.end(), 0);
    for (int i = 0; i < c.k; ++i) {
      const int j = static_cast<int>(dense_rng.UniformInt(i, c.n - 1));
      std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
    }
    ASSERT_EQ(got.size(), static_cast<size_t>(c.k));
    for (int i = 0; i < c.k; ++i) {
      ASSERT_EQ(got[static_cast<size_t>(i)], idx[static_cast<size_t>(i)])
          << "n=" << c.n << " k=" << c.k << " slot " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Cold-row I/O engines: mmap-touch, pread-batch and io_uring are pure
// byte movers and must be interchangeable without moving a single bit —
// in full simulations (model digest AND per-round losses) across
// pipeline depths, and in raw TieredMatrix traffic at the cache's
// capacity edges (down to a single frame).

StorageConfig EngineMmapConfig(IoEngineKind engine, int64_t cache_rows = 0) {
  StorageConfig storage = MmapConfig(cache_rows);
  storage.io_engine = engine;
  return storage;
}

std::pair<uint64_t, std::vector<double>> RunDigestAndLosses(
    const ExperimentConfig& config, int rounds) {
  auto sim = Simulation::Create(config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  std::vector<RoundStats> stats;
  (*sim)->RunRounds(rounds, &stats);
  std::vector<double> losses;
  losses.reserve(stats.size());
  for (const RoundStats& s : stats) losses.push_back(s.mean_benign_loss);
  return {SimulationDigest(**sim), losses};
}

TEST(IoEngineEquivalence, EnginesBitIdenticalAcrossDepths) {
  for (int depth : {1, 2}) {
    ExperimentConfig config = GoldenStyleConfig(
        ModelKind::kMatrixFactorization, LossKind::kBce,
        AttackKind::kPieckIpe, DefenseKind::kNoDefense, 1, depth);
    // cohort + 1 frames: every round evicts, writes back and refaults,
    // and (at depth 2) the select thread stages against live traffic.
    config.storage = EngineMmapConfig(IoEngineKind::kMmapTouch, 17);
    const auto [ref_digest, ref_losses] = RunDigestAndLosses(config, 4);
    ASSERT_EQ(ref_losses.size(), 4u);
    for (IoEngineKind engine :
         {IoEngineKind::kPreadBatch, IoEngineKind::kIoUring}) {
      config.storage.io_engine = engine;
      const auto [digest, losses] = RunDigestAndLosses(config, 4);
      EXPECT_EQ(digest, ref_digest)
          << IoEngineToString(engine) << " diverged from mmap-touch at "
          << "depth " << depth;
      EXPECT_EQ(losses, ref_losses)
          << IoEngineToString(engine) << " losses diverged at depth "
          << depth;
    }
  }
}

// Mixed write/evict/flush/refault traffic through one engine; returns a
// digest of the final logical matrix.
uint64_t ExerciseEngine(IoEngineKind engine, int64_t cache_rows) {
  constexpr int64_t kRows = 24;
  constexpr size_t kCols = 5;
  auto dir = StoreDir::Resolve("");
  EXPECT_TRUE(dir.ok());
  TieredMatrix m;
  EXPECT_TRUE(m.Init(kRows, kCols, EngineMmapConfig(engine, cache_rows),
                     *dir, "rows.bin", PatternInit(kCols))
                  .ok());
  for (int64_t r = 0; r < kRows; r += 2) {
    double* row = m.MutableRow(r);
    for (size_t c = 0; c < kCols; ++c) {
      row[c] += 0.25 * static_cast<double>(r + 1);
    }
  }
  for (int64_t r = 0; r < kRows; ++r) m.Row(r);
  m.FlushAll(nullptr);
  for (int64_t r = kRows - 1; r >= 0; --r) m.Row(r);
  Matrix snap;
  m.SnapshotInto(&snap);
  return HashDoubles(0xcbf29ce484222325ULL, snap.data().data(),
                     snap.data().size());
}

TEST(IoEngineEquivalence, EnginesByteIdenticalAtCacheEdges) {
  for (int64_t cache_rows : {int64_t{1}, int64_t{3}}) {
    const uint64_t ref =
        ExerciseEngine(IoEngineKind::kMmapTouch, cache_rows);
    EXPECT_EQ(ExerciseEngine(IoEngineKind::kPreadBatch, cache_rows), ref)
        << "pread-batch, " << cache_rows << " frame(s)";
    EXPECT_EQ(ExerciseEngine(IoEngineKind::kIoUring, cache_rows), ref)
        << "io_uring, " << cache_rows << " frame(s)";
  }
}

// io_uring must degrade to pread-batch (never fail) on kernels or
// sandboxes without rings, and a store asked for io_uring must come up
// working either way.
TEST(IoEngineTest, IoUringResolvesOrDegradesGracefully) {
  EXPECT_EQ(ResolveIoEngine(IoEngineKind::kMmapTouch),
            IoEngineKind::kMmapTouch);
  EXPECT_EQ(ResolveIoEngine(IoEngineKind::kPreadBatch),
            IoEngineKind::kPreadBatch);
  const IoEngineKind resolved = ResolveIoEngine(IoEngineKind::kIoUring);
  if (IoUringSupported()) {
    EXPECT_EQ(resolved, IoEngineKind::kIoUring);
  } else {
    EXPECT_EQ(resolved, IoEngineKind::kPreadBatch);
  }

  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());
  TieredMatrix m;
  ASSERT_TRUE(m.Init(8, 3, EngineMmapConfig(IoEngineKind::kIoUring, 2),
                     *dir, "rows.bin", PatternInit(3))
                  .ok());
  EXPECT_EQ(m.io_engine(), resolved);
  for (int64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(m.Row(r)[0], static_cast<double>(r) * 1000.0);
  }
}

TEST(IoEngineTest, CoalesceRunsSortsAndSplitsAtGaps) {
  constexpr size_t kRowBytes = 32;
  // Offsets (pre-sort): one 3-row run at 0, a lone row at 128, a 2-row
  // run at 256.
  std::vector<RowIo> ops = {{256, nullptr}, {0, nullptr},  {64, nullptr},
                            {128, nullptr}, {288, nullptr}, {32, nullptr}};
  std::vector<size_t> run_ends;
  CoalesceRuns(&ops, kRowBytes, &run_ends);
  ASSERT_EQ(ops.size(), 6u);
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LT(ops[i - 1].offset, ops[i].offset);
  }
  ASSERT_EQ(run_ends.size(), 3u);
  EXPECT_EQ(run_ends[0], 3u);  // 0, 32, 64
  EXPECT_EQ(run_ends[1], 4u);  // 128
  EXPECT_EQ(run_ends[2], 6u);  // 256, 288
}

// ---------------------------------------------------------------------
// Per-shard cache counters partition the store totals exactly.

TEST(HotRowCacheTest, ShardCountersPartitionStoreTotals) {
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());
  TieredMatrix m;
  ASSERT_TRUE(m.Init(32, 4, EngineMmapConfig(IoEngineKind::kPreadBatch, 4),
                     *dir, "rows.bin", PatternInit(4))
                  .ok());
  for (int pass = 0; pass < 2; ++pass) {
    for (int64_t r = 0; r < 32; ++r) m.MutableRow(r);
    for (int64_t r = 0; r < 4; ++r) m.Row(r);  // some genuine hits
  }
  const StorageCounters totals = m.counters();
  EXPECT_GT(totals.hits, 0);
  EXPECT_GT(totals.misses, 0);
  EXPECT_GT(totals.evictions, 0);
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  const std::vector<HotRowCache::ShardCounters> shards = m.shard_counters();
  ASSERT_FALSE(shards.empty());
  for (const HotRowCache::ShardCounters& s : shards) {
    hits += s.hits;
    misses += s.misses;
    evictions += s.evictions;
  }
  EXPECT_EQ(hits, totals.hits);
  EXPECT_EQ(misses, totals.misses);
  EXPECT_EQ(evictions, totals.evictions);
}

// ---------------------------------------------------------------------
// Staged read-ahead: under a batched engine, Prefetch reads persisted
// cold rows into a stage slot and the next PinRows consumes them as
// memcpy fills (staged_hits) with the exact written bytes.

TEST(TieredMatrixTest, PrefetchStagesPersistedRowsForPinRows) {
  constexpr size_t kCols = 4;
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());
  TieredMatrix m;
  ASSERT_TRUE(m.Init(8, kCols, EngineMmapConfig(IoEngineKind::kPreadBatch, 2),
                     *dir, "rows.bin", PatternInit(kCols))
                  .ok());
  // Dirty rows 0..3 through the 2-frame cache: 0 and 1 are evicted with
  // write-back, 2 and 3 stay dirty until FlushAll persists them.
  for (int64_t r = 0; r < 4; ++r) {
    double* row = m.MutableRow(r);
    for (size_t c = 0; c < kCols; ++c) {
      row[c] = static_cast<double>(100 * r + static_cast<int64_t>(c));
    }
  }
  m.FlushAll(nullptr);
  // One pin/flush cycle opens a staging window past the FlushAll poison
  // (staging armed at or before a bulk write is distrusted by design).
  m.PinRows({2, 3});
  m.FlushPinned(nullptr);

  m.Prefetch({0, 1});  // select thread's read-ahead for the next cohort
  EXPECT_GE(m.counters().staged_rows, 2);
  m.PinRows({0, 1});
  EXPECT_EQ(m.counters().staged_hits, 2);
  for (int64_t r = 0; r < 2; ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(row[c], static_cast<double>(100 * r + static_cast<int64_t>(c)))
          << "row " << r << " col " << c;
    }
  }
  m.FlushPinned(nullptr);
}

// ---------------------------------------------------------------------
// Resident-budget trims: the mmap-touch engine tracks the file pages it
// populates and drops them in ranged DONTNEED batches once the budget
// is exceeded. (The batched engines never fault file pages, so they
// have nothing to trim.)

TEST(TieredMatrixTest, ResidentBudgetTrimsTouchedPages) {
  constexpr int64_t kRows = 256;
  constexpr size_t kCols = 64;  // 512 B/row -> 128 KB file
  auto dir = StoreDir::Resolve("");
  ASSERT_TRUE(dir.ok());
  StorageConfig config = EngineMmapConfig(IoEngineKind::kMmapTouch, 2);
  config.resident_budget_bytes = 4096;
  TieredMatrix m;
  ASSERT_TRUE(
      m.Init(kRows, kCols, config, *dir, "rows.bin", PatternInit(kCols))
          .ok());
  for (int64_t r = 0; r < kRows; ++r) m.MutableRow(r);  // evict + write back
  m.FlushAll(nullptr);
  EXPECT_GT(m.counters().trims, 0);
  // Trimming is perf-only: the bytes still read back exactly.
  for (int64_t r = 0; r < kRows; r += 37) {
    EXPECT_EQ(m.Row(r)[1], static_cast<double>(r) * 1000.0 + 1.0);
  }
}

// ---------------------------------------------------------------------
// Round telemetry distinguishes resident from backing bytes.

TEST(StorageTest, RoundStatsReportResidentAndBackingBytes) {
  ExperimentConfig config = GoldenStyleConfig(
      ModelKind::kMatrixFactorization, LossKind::kBce, AttackKind::kPieckIpe,
      DefenseKind::kNoDefense, 1, 1);
  config.storage = MmapConfig(17);
  auto sim = Simulation::Create(config);
  ASSERT_TRUE(sim.ok());
  std::vector<RoundStats> stats;
  (*sim)->RunRounds(3, &stats);
  ASSERT_EQ(stats.size(), 3u);
  const RoundStats& last = stats.back();
  EXPECT_GT(last.store_footprint_bytes, 0);
  EXPECT_GT(last.store_backing_bytes, 0);
  EXPECT_GT(last.store_cache_misses, 0);
  EXPECT_GT(last.store_cache_writebacks, 0);
  // The cache (17 rows x 8 doubles) is far smaller than the backing
  // table, and the store's resident side never includes the file.
  EXPECT_LT((*sim)->store().FootprintBytes(),
            (*sim)->store().BackingBytes() +
                static_cast<int64_t>(1) * 1024 * 1024);

  config.storage = StorageConfig();  // RAM: no backing tier, no counters
  auto ram = Simulation::Create(config);
  ASSERT_TRUE(ram.ok());
  std::vector<RoundStats> ram_stats;
  (*ram)->RunRounds(1, &ram_stats);
  EXPECT_EQ(ram_stats.back().store_backing_bytes, 0);
  EXPECT_EQ(ram_stats.back().store_cache_misses, 0);
}

}  // namespace
}  // namespace pieck
