/// \file
/// Exactness harness for the top-K serving path (src/serving/).
///
/// The central claim under test: for every model kind, SIMD backend,
/// thread count, tile size, and K, `TopKServer::Recommend` returns
/// **bit-identically** the list a brute-force full scan + total-order
/// sort would return (score desc, then item id asc). The harness pits
/// the serving path against that oracle on structured adversarial score
/// distributions (all-equal ties, denormal embeddings, attacker-boosted
/// popular items) and on thousands of seeded random tables, then locks
/// the evaluation metrics (ER/HR/PKL) against verbatim copies of their
/// pre-serving full-scan implementations.
///
/// The quantized path is exempt from list-identity only: its shortlist
/// recall against the oracle is bounded below (>= 0.999 @10 with the
/// shipped margin constants), while the scores it reports must still be
/// bitwise full-scan values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "fed/client_state_store.h"
#include "metrics/evaluation.h"
#include "model/rec_model.h"
#include "serving/topk_select.h"
#include "serving/topk_server.h"
#include "tensor/kernels.h"
#include "tensor/math.h"

namespace pieck {
namespace {

using serving::Better;
using serving::RecommendStats;
using serving::ScoredItem;
using serving::TopKServer;
using serving::TopKServerOptions;

uint64_t Bits(double x) {
  uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// Restores the kernel backend active at construction when destroyed,
/// so backend-sweeping tests cannot leak state into later tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveKernels().backend) {}
  ~BackendGuard() { SetActiveKernelBackend(saved_); }

 private:
  KernelBackend saved_;
};

/// Brute-force oracle: score EVERY item with the model's full-scan
/// path, drop exclusions, sort the whole candidate list under the
/// serving order, truncate to k. O(n log n) per call and obviously
/// correct — every serving shortcut is measured against this.
std::vector<ScoredItem> OracleTopK(const RecModel& model,
                                   const GlobalModel& g, const Vec& u, int k,
                                   const std::vector<int>& exclude = {}) {
  const int n = g.num_items();
  Vec scores(static_cast<size_t>(n));
  if (n > 0) model.ScoreItems(g, u, scores.data());
  std::vector<ScoredItem> cands;
  cands.reserve(static_cast<size_t>(n));
  size_t e = 0;
  for (int j = 0; j < n; ++j) {
    if (e < exclude.size() && exclude[e] == j) {
      ++e;
      continue;
    }
    cands.push_back(ScoredItem{scores[static_cast<size_t>(j)], j});
  }
  std::sort(cands.begin(), cands.end(), Better);
  if (k < 0) k = 0;
  if (static_cast<size_t>(k) < cands.size()) {
    cands.resize(static_cast<size_t>(k));
  }
  return cands;
}

/// Bitwise list equality: same length, same ids in the same order, and
/// score doubles identical down to the sign of zero.
void ExpectSameList(const std::vector<ScoredItem>& got,
                    const std::vector<ScoredItem>& want,
                    const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << what << " rank " << i;
    EXPECT_EQ(Bits(got[i].score), Bits(want[i].score))
        << what << " rank " << i << " item " << got[i].item;
  }
}

Vec RandomUser(int dim, uint64_t seed) {
  Rng rng(seed);
  Vec u(static_cast<size_t>(dim));
  for (double& x : u) x = rng.Normal(0.0, 0.5);
  return u;
}

struct World {
  std::unique_ptr<RecModel> model;
  GlobalModel global;
};

World MakeWorld(ModelKind kind, int n_items, int dim, uint64_t seed) {
  World w;
  w.model = MakeModel(kind, dim);
  Rng rng(seed);
  w.global = w.model->InitGlobalModel(n_items, rng);
  return w;
}

/// Asserts Recommend == oracle on every compiled backend. The oracle is
/// computed once on the scalar backend; the kernel bit-exactness
/// contract makes it valid bitwise for all of them.
void CheckAllBackends(const RecModel& model, const GlobalModel& g,
                      const TopKServer& server, const Vec& u, int k,
                      const std::vector<int>& exclude,
                      const std::string& what) {
  BackendGuard guard;
  ASSERT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  const std::vector<ScoredItem> want = OracleTopK(model, g, u, k, exclude);
  for (const KernelTable* table : AvailableKernelTables()) {
    ASSERT_TRUE(SetActiveKernelBackend(table->backend));
    std::vector<ScoredItem> got;
    server.Recommend(u, k, exclude, &got);
    ExpectSameList(got, want,
                   what + " backend=" + KernelBackendName(table->backend));
  }
}

// ---------------------------------------------------------------------
// TopKSelector / Floyd–Rivest unit coverage.
// ---------------------------------------------------------------------

TEST(TopKSelectorTest, KeepsBestKWithIdTieBreak) {
  serving::TopKSelector sel;
  sel.Reset(3);
  const double scores[] = {1.0, 5.0, 5.0, 0.0, 5.0, 2.0};
  sel.OfferBlock(scores, 0, 6, nullptr, 0);
  std::vector<ScoredItem> out;
  sel.Drain(&out);
  ASSERT_EQ(out.size(), 3u);
  // Three items tie at 5.0; lower ids win and order ascending.
  EXPECT_EQ(out[0].item, 1);
  EXPECT_EQ(out[1].item, 2);
  EXPECT_EQ(out[2].item, 4);
}

TEST(TopKSelectorTest, OfferBlockSkipsExclusionsAndAdvancesCursor) {
  serving::TopKSelector sel;
  sel.Reset(2);
  const double scores[] = {9.0, 8.0, 7.0, 6.0};
  // 1 is inside the block; -3 is before it; 7 and 9 are after it (only
  // 7 < last item id of the next block).
  const int exclude[] = {-3, 1, 7, 9};
  size_t used = sel.OfferBlock(scores, 0, 4, exclude, 4);
  EXPECT_EQ(used, 2u);  // consumed -3 and 1
  std::vector<ScoredItem> out;
  sel.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item, 0);
  EXPECT_EQ(out[1].item, 2);  // item 1 was excluded
}

TEST(TopKSelectorTest, ZeroKRejectsEverythingIncludingInfinity) {
  serving::TopKSelector sel;
  sel.Reset(0);
  sel.Offer(std::numeric_limits<double>::infinity(), 0);
  sel.Offer(1.0, 1);
  EXPECT_EQ(sel.size(), 0u);
  std::vector<ScoredItem> out;
  sel.Drain(&out);
  EXPECT_TRUE(out.empty());
}

TEST(TopKSelectorTest, ThresholdTracksWorstKept) {
  serving::TopKSelector sel;
  sel.Reset(2);
  EXPECT_EQ(sel.threshold(), -std::numeric_limits<double>::infinity());
  sel.Offer(3.0, 0);
  EXPECT_EQ(sel.threshold(), -std::numeric_limits<double>::infinity());
  sel.Offer(5.0, 1);
  EXPECT_EQ(sel.threshold(), 3.0);
  sel.Offer(4.0, 2);  // evicts 3.0
  EXPECT_EQ(sel.threshold(), 4.0);
  sel.Offer(3.9, 3);  // below threshold: rejected
  std::vector<ScoredItem> out;
  sel.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item, 1);
  EXPECT_EQ(out[1].item, 2);
}

TEST(FloydRivestTest, SelectMatchesFullSortAcrossSizesAndDuplicates) {
  // Sizes above 600 exercise the recursive sampling branch.
  for (int n : {1, 2, 17, 100, 601, 2500}) {
    Rng rng(static_cast<uint64_t>(n) * 77 + 1);
    std::vector<ScoredItem> base;
    base.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      // Coarse integer scores: plenty of exact duplicates.
      base.push_back(
          ScoredItem{static_cast<double>(rng.UniformInt(-5, 5)), i});
    }
    std::vector<ScoredItem> sorted = base;
    std::sort(sorted.begin(), sorted.end(), Better);
    for (int k : {1, 2, n / 3, n - 1, n, n + 4}) {
      if (k < 1) continue;
      std::vector<ScoredItem> scratch = base;
      std::vector<ScoredItem> out;
      serving::SelectTopK(&scratch, k, &out);
      const size_t want = std::min(static_cast<size_t>(k), sorted.size());
      ASSERT_EQ(out.size(), want) << "n=" << n << " k=" << k;
      for (size_t i = 0; i < want; ++i) {
        EXPECT_EQ(out[i].item, sorted[i].item)
            << "n=" << n << " k=" << k << " rank " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Serving vs oracle: model kinds x backends x K x distributions.
// ---------------------------------------------------------------------

struct ExactnessCase {
  ModelKind kind;
  int k;
};

class ServingExactnessTest
    : public ::testing::TestWithParam<ExactnessCase> {};

TEST_P(ServingExactnessTest, MatchesOracleOnRandomTables) {
  const ExactnessCase& tc = GetParam();
  // n chosen so the K sweep crosses the heap->Floyd–Rivest switch
  // (k * 8 >= n) and K == n_items degenerates to "rank everything".
  const int n = 230;
  const int dim = 16;
  World w = MakeWorld(tc.kind, n, dim, /*seed=*/101);
  TopKServerOptions opt;
  opt.tile_items = 64;  // several tiles + a ragged tail tile
  const TopKServer server(*w.model, w.global, opt);
  const int k = tc.k > 0 ? tc.k : n;  // k == 0 encodes "n_items" here

  for (uint64_t us = 0; us < 4; ++us) {
    const Vec u = RandomUser(dim, 500 + us);
    CheckAllBackends(*w.model, w.global, server, u, k, {},
                     "random/no-exclude");
    // A sorted exclusion list shaped like an interacted-items list,
    // including the table edges.
    std::vector<int> exclude = {0, 1, 5, 63, 64, 65, 128, n - 1};
    CheckAllBackends(*w.model, w.global, server, u, k, exclude,
                     "random/exclude");
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndK, ServingExactnessTest,
    ::testing::Values(ExactnessCase{ModelKind::kMatrixFactorization, 1},
                      ExactnessCase{ModelKind::kMatrixFactorization, 10},
                      ExactnessCase{ModelKind::kMatrixFactorization, 100},
                      ExactnessCase{ModelKind::kMatrixFactorization, 0},
                      ExactnessCase{ModelKind::kNeuralCf, 1},
                      ExactnessCase{ModelKind::kNeuralCf, 10},
                      ExactnessCase{ModelKind::kNeuralCf, 100},
                      ExactnessCase{ModelKind::kNeuralCf, 0}),
    [](const ::testing::TestParamInfo<ExactnessCase>& info) {
      std::string name = info.param.kind == ModelKind::kMatrixFactorization
                             ? "mf_k"
                             : "ncf_k";
      return name + (info.param.k > 0 ? std::to_string(info.param.k)
                                      : std::string("all"));
    });

TEST(ServingAdversarialTest, AllEqualScoresRankByItemId) {
  // Every item row identical -> every score an exact tie -> the top-K
  // list must be the K lowest uninteracted item ids, in order.
  const int n = 100;
  const int dim = 8;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 7);
  const Vec proto = RandomUser(dim, 9);
  for (int j = 0; j < n; ++j) {
    w.global.item_embeddings.SetRow(static_cast<size_t>(j), proto);
  }
  TopKServerOptions opt;
  opt.tile_items = 16;
  const TopKServer server(*w.model, w.global, opt);
  const Vec u = RandomUser(dim, 11);

  const std::vector<int> exclude = {0, 2, 3};
  std::vector<ScoredItem> got;
  server.Recommend(u, 5, exclude, &got);
  ASSERT_EQ(got.size(), 5u);
  const int want_ids[] = {1, 4, 5, 6, 7};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i].item, want_ids[i]);
  CheckAllBackends(*w.model, w.global, server, u, 5, exclude, "all-equal");
  // Large-K path on the same fully tied table.
  CheckAllBackends(*w.model, w.global, server, u, n - 1, exclude,
                   "all-equal/large-k");
}

TEST(ServingAdversarialTest, DenormalEmbeddingsNeverMisprune) {
  // Most rows hold denormal coordinates: their squared norms underflow
  // to 0.0, so a naive Cauchy–Schwarz bound would be 0 and prune tiles
  // whose true (denormal) scores can still beat a denormal threshold.
  // The norm cache poisons such tiles to +inf; results must stay exact.
  const int n = 96;
  const int dim = 4;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 21);
  const double denorm = 5e-324;  // smallest positive double
  for (int j = 0; j < n; ++j) {
    Vec row(static_cast<size_t>(dim), 0.0);
    row[static_cast<size_t>(j % dim)] = (j % 2 == 0 ? denorm : -denorm) *
                                        static_cast<double>(1 + j % 7);
    w.global.item_embeddings.SetRow(static_cast<size_t>(j), row);
  }
  TopKServerOptions opt;
  opt.tile_items = 8;
  const TopKServer server(*w.model, w.global, opt);

  // A huge user magnifies denormal differences back into normal range;
  // a denormal user keeps every score (and threshold) denormal or zero.
  for (uint64_t s : {1u, 2u}) {
    Vec u = RandomUser(dim, 30 + s);
    if (s == 2u) {
      for (double& x : u) x = std::copysign(denorm, x);
    }
    CheckAllBackends(*w.model, w.global, server, u, 7, {}, "denormal");
  }
}

TEST(ServingAdversarialTest, BoostedPopularItemsTriggerPruningExactly) {
  // The attacker shape from the paper: a handful of items with hugely
  // inflated embeddings dominate every list. Once the selector fills on
  // the boosted tile, the norm bound must prune most remaining tiles —
  // and the result must still match the oracle bitwise.
  const int n = 4096;
  const int dim = 16;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 77);
  const Vec u = RandomUser(dim, 78);
  for (int j = 0; j < 12; ++j) {
    Vec row(static_cast<size_t>(dim));
    for (size_t c = 0; c < row.size(); ++c) row[c] = 50.0 * u[c];
    w.global.item_embeddings.SetRow(static_cast<size_t>(j), row);
  }
  TopKServerOptions opt;
  opt.tile_items = 256;
  const TopKServer server(*w.model, w.global, opt);

  std::vector<ScoredItem> got;
  RecommendStats stats;
  server.Recommend(u, 10, nullptr, 0, &got, &stats);
  ExpectSameList(got, OracleTopK(*w.model, w.global, u, 10), "boosted");
  EXPECT_GT(stats.tiles_pruned, 0) << "norm bound never fired";
  EXPECT_EQ(stats.tiles_scored + stats.tiles_pruned, n / opt.tile_items);
  CheckAllBackends(*w.model, w.global, server, u, 10, {}, "boosted");
}

TEST(ServingEdgeTest, KZeroAndKBeyondTableAndEmptyTable) {
  const int n = 40;
  const int dim = 6;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 3);
  const TopKServer server(*w.model, w.global);
  const Vec u = RandomUser(dim, 4);

  std::vector<ScoredItem> got;
  server.Recommend(u, 0, nullptr, 0, &got);
  EXPECT_TRUE(got.empty());

  // k far beyond the table: every candidate, fully ranked.
  CheckAllBackends(*w.model, w.global, server, u, n + 50, {}, "k>n");
  std::vector<int> all_but_three;
  for (int j = 0; j < n; ++j) {
    if (j != 7 && j != 8 && j != 39) all_but_three.push_back(j);
  }
  CheckAllBackends(*w.model, w.global, server, u, n, all_but_three,
                   "k>candidates");

  World empty = MakeWorld(ModelKind::kMatrixFactorization, 0, dim, 5);
  const TopKServer empty_server(*empty.model, empty.global);
  empty_server.Recommend(u, 3, nullptr, 0, &got);
  EXPECT_TRUE(got.empty());
}

// Randomized property sweep: thousands of seeded tables across sizes,
// dimensions, K, tile sizes, and exclusion patterns; every fourth table
// is near-tied (coarse discrete coordinates force exact score ties).
TEST(ServingPropertyTest, ThousandsOfSeededTablesMatchOracle) {
  BackendGuard guard;
  ASSERT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  const int kTables = 2000;
  for (int t = 0; t < kTables; ++t) {
    Rng rng(static_cast<uint64_t>(t) + 1000);
    const int n = static_cast<int>(rng.UniformInt(1, 48));
    const int dim = static_cast<int>(rng.UniformInt(1, 8));
    const int k = static_cast<int>(rng.UniformInt(0, n + 2));
    World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim,
                        static_cast<uint64_t>(t) * 13 + 5);
    if (t % 4 == 0) {
      // Near-tied: coordinates from a 5-value lattice; dot products
      // collide constantly, so the id tie-break decides most ranks.
      for (int j = 0; j < n; ++j) {
        Vec row(static_cast<size_t>(dim));
        for (double& x : row) {
          x = 0.5 * static_cast<double>(rng.UniformInt(-2, 2));
        }
        w.global.item_embeddings.SetRow(static_cast<size_t>(j), row);
      }
    }
    std::vector<int> exclude;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.2)) exclude.push_back(j);
    }
    TopKServerOptions opt;
    const int tiles[] = {1, 3, 16, 512};
    opt.tile_items = tiles[t % 4];
    const TopKServer server(*w.model, w.global, opt);
    Vec u(static_cast<size_t>(dim));
    for (double& x : u) x = rng.Normal(0.0, 1.0);

    std::vector<ScoredItem> got;
    server.Recommend(u, k, exclude, &got);
    ExpectSameList(got, OracleTopK(*w.model, w.global, u, k, exclude),
                   "property table " + std::to_string(t));
    if (HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------
// Satellite: thread-count and backend bit-identity on tied tables.
// ---------------------------------------------------------------------

// Pool sizes {serial, 1, 4} x every compiled backend (the programmatic
// equivalent of PIECK_SIMD in {scalar, native}) must produce the same
// bits, on a table built to maximize exact score ties.
TEST(ServingBitIdentityTest, BatchIdenticalAcrossPoolsAndBackends) {
  BackendGuard guard;
  const int n = 600;
  const int dim = 8;
  const int k = 17;
  const int num_users = 40;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 55);
  Rng rng(56);
  for (int j = 0; j < n; ++j) {
    // Half the table on a coarse lattice (exact ties), half continuous
    // (near-ties): both regimes in one batch.
    Vec row(static_cast<size_t>(dim));
    for (double& x : row) {
      x = j % 2 == 0 ? 0.25 * static_cast<double>(rng.UniformInt(-2, 2))
                     : rng.Normal(0.0, 0.3);
    }
    w.global.item_embeddings.SetRow(static_cast<size_t>(j), row);
  }
  Matrix users(static_cast<size_t>(num_users), static_cast<size_t>(dim));
  for (int i = 0; i < num_users; ++i) {
    users.SetRow(static_cast<size_t>(i),
                 RandomUser(dim, 600 + static_cast<uint64_t>(i)));
  }
  TopKServerOptions opt;
  opt.tile_items = 128;
  const TopKServer server(*w.model, w.global, opt);

  ASSERT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  std::vector<std::vector<ScoredItem>> want;
  server.RecommendBatch(users, k, nullptr, &want);
  ASSERT_EQ(want.size(), static_cast<size_t>(num_users));

  for (const KernelTable* table : AvailableKernelTables()) {
    ASSERT_TRUE(SetActiveKernelBackend(table->backend));
    for (int threads : {0, 1, 4}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
      std::vector<std::vector<ScoredItem>> got;
      server.RecommendBatch(users, k, pool.get(), &got);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        ExpectSameList(got[i], want[i],
                       std::string("batch user ") + std::to_string(i) +
                           " backend=" + KernelBackendName(table->backend) +
                           " threads=" + std::to_string(threads));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Satellite: quantized shortlist error bound + exact rerank.
// ---------------------------------------------------------------------

TEST(QuantTableTest, CodesBoundedAndReconstructionWithinHalfScale) {
  Rng rng(91);
  Matrix items(64, 24);
  items.RandomNormal(rng, 0.0, 2.0);
  items.SetRow(5, Vec(24, 0.0));  // an all-zero row
  const auto table = serving::Int8ItemTable::Build(items);
  EXPECT_EQ(table.rows(), 64u);
  EXPECT_EQ(table.cols(), 24u);
  EXPECT_GT(table.FootprintBytes(), 0);
  // Indirect reconstruction check through ScoreAll against unit basis
  // users: the dequantized code must sit within scale/2 of the input.
  // (Quantizing e_c is exact: codes 0 everywhere except 127 at c.)
  Vec out(64);
  for (size_t c = 0; c < 4; ++c) {
    Vec basis(24, 0.0);
    basis[c] = 1.0;
    table.ScoreAll(basis.data(), out.data());
    for (size_t r = 0; r < 64; ++r) {
      double max_abs = 0.0;
      for (size_t i = 0; i < 24; ++i) {
        max_abs = std::max(max_abs, std::fabs(items.RowPtr(r)[i]));
      }
      const double scale = max_abs / 127.0;
      EXPECT_LE(std::fabs(out[r] - items.RowPtr(r)[c]), scale / 2.0 + 1e-12)
          << "row " << r << " coord " << c;
    }
  }
}

TEST(QuantTableTest, ScalarAndSimdScoresBitIdentical) {
  BackendGuard guard;
  Rng rng(92);
  // 37 columns: exercises the 32-wide SIMD block plus a scalar tail.
  Matrix items(50, 37);
  items.RandomNormal(rng, 0.0, 1.0);
  const auto table = serving::Int8ItemTable::Build(items);
  Vec u(37);
  for (double& x : u) x = rng.Normal(0.0, 1.0);

  ASSERT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  Vec scalar_scores(50);
  table.ScoreAll(u.data(), scalar_scores.data());
  for (const KernelTable* kt : AvailableKernelTables()) {
    ASSERT_TRUE(SetActiveKernelBackend(kt->backend));
    Vec scores(50);
    table.ScoreAll(u.data(), scores.data());
    for (size_t r = 0; r < 50; ++r) {
      EXPECT_EQ(Bits(scores[r]), Bits(scalar_scores[r]))
          << "row " << r << " backend " << KernelBackendName(kt->backend);
    }
  }
}

TEST(QuantServingTest, RecallAt10AtLeast999PerMilleWithShippedMargin) {
  // The documented error-bound contract for the shipped shortlist
  // margin (k * kShortlistOversample + kShortlistSlack): over many
  // users on a realistic random table, at least 99.9% of the oracle's
  // top-10 items must survive the int8 shortlist.
  const int n = 1000;
  const int dim = 32;
  const int k = 10;
  const int num_users = 300;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 201);
  TopKServerOptions opt;
  opt.quantized = true;
  const TopKServer server(*w.model, w.global, opt);
  ASSERT_TRUE(server.quantized_active());

  int64_t matched = 0;
  int64_t total = 0;
  for (int i = 0; i < num_users; ++i) {
    const Vec u = RandomUser(dim, 7000 + static_cast<uint64_t>(i));
    const std::vector<ScoredItem> want = OracleTopK(*w.model, w.global, u, k);
    std::vector<ScoredItem> got;
    RecommendStats stats;
    server.Recommend(u, k, nullptr, 0, &got, &stats);
    EXPECT_EQ(stats.shortlist_size,
              k * serving::kShortlistOversample + serving::kShortlistSlack);
    ASSERT_EQ(got.size(), want.size());
    for (const ScoredItem& o : want) {
      ++total;
      for (const ScoredItem& q : got) {
        if (q.item == o.item) {
          // Shortlist survivors carry bitwise full-scan scores.
          EXPECT_EQ(Bits(q.score), Bits(o.score)) << "item " << q.item;
          ++matched;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(matched) / static_cast<double>(total);
  EXPECT_GE(recall, 0.999) << matched << "/" << total;
}

TEST(QuantServingTest, QuantizedPathBitIdenticalAcrossBackends) {
  BackendGuard guard;
  const int n = 400;
  const int dim = 24;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, dim, 301);
  TopKServerOptions opt;
  opt.quantized = true;
  const TopKServer server(*w.model, w.global, opt);
  ASSERT_TRUE(server.quantized_active());
  const Vec u = RandomUser(dim, 302);
  const std::vector<int> exclude = {3, 50, 51, 399};

  ASSERT_TRUE(SetActiveKernelBackend(KernelBackend::kScalar));
  std::vector<ScoredItem> want;
  server.Recommend(u, 10, exclude, &want);
  ASSERT_EQ(want.size(), 10u);
  for (const ScoredItem& s : want) {
    EXPECT_TRUE(std::find(exclude.begin(), exclude.end(), s.item) ==
                exclude.end());
  }
  for (const KernelTable* kt : AvailableKernelTables()) {
    ASSERT_TRUE(SetActiveKernelBackend(kt->backend));
    std::vector<ScoredItem> got;
    server.Recommend(u, 10, exclude, &got);
    ExpectSameList(got, want, std::string("quantized backend=") +
                                  KernelBackendName(kt->backend));
  }
}

TEST(QuantServingTest, QuantizationInactiveForNcfFallsBackExactly) {
  const int n = 120;
  const int dim = 8;
  World w = MakeWorld(ModelKind::kNeuralCf, n, dim, 401);
  TopKServerOptions opt;
  opt.quantized = true;  // requested, but NCF has no dot interaction
  const TopKServer server(*w.model, w.global, opt);
  EXPECT_FALSE(server.quantized_active());
  const Vec u = RandomUser(dim, 402);
  CheckAllBackends(*w.model, w.global, server, u, 10, {}, "ncf-quant-off");
}

// ---------------------------------------------------------------------
// Satellite: metric regression against verbatim pre-serving references.
// ---------------------------------------------------------------------

// The three reference implementations below are the full-scan metric
// paths exactly as they stood before the serving path existed (modulo
// running serially — pool-independence is covered by metrics_test).
// They pin the serving rewiring: any drift in ER/HR/PKL values is a
// bug, not a tolerance.

uint64_t ReferenceMixSeed(uint64_t seed, uint64_t user) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (user + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ReferenceEr(const RecModel& model, const GlobalModel& g,
                   const BenignEvalView& benign, const Dataset& train,
                   const std::vector<int>& target_items, int k) {
  if (target_items.empty() || benign.size() == 0) return 0.0;
  constexpr uint8_t kExcluded = 0, kMiss = 1, kHit = 2;
  const size_t num_targets = target_items.size();
  std::vector<uint8_t> outcome(benign.size() * num_targets, kExcluded);
  Vec scores(static_cast<size_t>(g.num_items()));
  Vec u;
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    const int user = benign.user_id(ui);
    const double* row = benign.embedding(ui);
    u.assign(row, row + benign.dim());
    model.ScoreItems(g, u, scores.data());
    const std::vector<int>& interacted = train.ItemsOf(user);
    std::vector<std::pair<double, int>> ranked;
    size_t pi = 0;
    for (int j = 0; j < g.num_items(); ++j) {
      while (pi < interacted.size() && interacted[pi] < j) ++pi;
      if (pi < interacted.size() && interacted[pi] == j) continue;
      ranked.push_back({scores[static_cast<size_t>(j)], j});
    }
    size_t top = std::min(ranked.size(), static_cast<size_t>(k));
    std::partial_sort(
        ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(top),
        ranked.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t t = 0; t < num_targets; ++t) {
      int target = target_items[t];
      if (train.Interacted(user, target)) continue;
      uint8_t& slot = outcome[ui * num_targets + t];
      slot = kMiss;
      for (size_t r = 0; r < top; ++r) {
        if (ranked[r].second == target) {
          slot = kHit;
          break;
        }
      }
    }
  }
  std::vector<int64_t> hits(num_targets, 0);
  std::vector<int64_t> denom(num_targets, 0);
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    for (size_t t = 0; t < num_targets; ++t) {
      const uint8_t o = outcome[ui * num_targets + t];
      if (o == kExcluded) continue;
      denom[t]++;
      if (o == kHit) hits[t]++;
    }
  }
  double er = 0.0;
  for (size_t t = 0; t < num_targets; ++t) {
    if (denom[t] > 0) {
      er += static_cast<double>(hits[t]) / static_cast<double>(denom[t]);
    }
  }
  return er / static_cast<double>(num_targets);
}

double ReferenceHr(const RecModel& model, const GlobalModel& g,
                   const BenignEvalView& benign, const Dataset& train,
                   const std::vector<int>& test_items, int k,
                   int num_negatives, uint64_t seed) {
  constexpr uint8_t kSkipped = 0, kMiss = 1, kHit = 2;
  std::vector<uint8_t> outcome(benign.size(), kSkipped);
  Vec scores(static_cast<size_t>(g.num_items()));
  Vec u;
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    int user = benign.user_id(ui);
    if (user < 0 || user >= static_cast<int>(test_items.size())) continue;
    int test = test_items[static_cast<size_t>(user)];
    if (test < 0) continue;
    const double* row = benign.embedding(ui);
    u.assign(row, row + benign.dim());
    model.ScoreItems(g, u, scores.data());
    const double test_score = scores[static_cast<size_t>(test)];
    auto outscore = [&](int j) {
      double s = scores[static_cast<size_t>(j)];
      if (s > test_score) return 1.0;
      if (s == test_score) return 0.5;
      return 0.0;
    };
    const int64_t excluded =
        static_cast<int64_t>(train.ItemsOf(user).size()) +
        (train.Interacted(user, test) ? 0 : 1);
    const int64_t available = train.num_items() - excluded;
    double outscored = 0.0;
    bool scan_all = available <= num_negatives;
    if (!scan_all) {
      Rng rng(ReferenceMixSeed(seed, static_cast<uint64_t>(user)));
      int sampled = 0;
      int guard = 0;
      while (sampled < num_negatives && guard < num_negatives * 50) {
        ++guard;
        int j = static_cast<int>(rng.UniformInt(0, train.num_items() - 1));
        if (j == test || train.Interacted(user, j)) continue;
        ++sampled;
        outscored += outscore(j);
      }
      scan_all = sampled < num_negatives;
    }
    if (scan_all) {
      outscored = 0.0;
      const std::vector<int>& interacted = train.ItemsOf(user);
      size_t pi = 0;
      for (int j = 0; j < train.num_items(); ++j) {
        while (pi < interacted.size() && interacted[pi] < j) ++pi;
        if (pi < interacted.size() && interacted[pi] == j) continue;
        if (j == test) continue;
        outscored += outscore(j);
      }
    }
    outcome[ui] = outscored < static_cast<double>(k) ? kHit : kMiss;
  }
  int64_t hits = 0;
  int64_t total = 0;
  for (uint8_t o : outcome) {
    if (o == kSkipped) continue;
    ++total;
    if (o == kHit) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double ReferencePkl(const GlobalModel& g, const BenignEvalView& benign,
                    const Dataset& train,
                    const std::vector<int>& popular_items) {
  if (popular_items.empty() || benign.size() == 0) return 0.0;
  std::vector<const double*> covered_users;
  for (size_t ui = 0; ui < benign.size(); ++ui) {
    for (int item : popular_items) {
      if (train.Interacted(benign.user_id(ui), item)) {
        covered_users.push_back(benign.embedding(ui));
        break;
      }
    }
  }
  if (covered_users.empty()) return 0.0;
  const size_t num_pop = popular_items.size();
  const size_t d = static_cast<size_t>(g.dim());
  Matrix p_rows(num_pop, d);
  Vec self_terms(num_pop);
  for (size_t t = 0; t < num_pop; ++t) {
    Vec p =
        Softmax(g.item_embeddings.Row(static_cast<size_t>(popular_items[t])));
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) s += p[i] * std::log(p[i]);
    self_terms[t] = s;
    p_rows.SetRow(t, p);
  }
  const KernelTable& kernels = ActiveKernels();
  std::vector<double> partial(covered_users.size(), 0.0);
  for (size_t ui = 0; ui < covered_users.size(); ++ui) {
    const double* uptr = covered_users[ui];
    Vec log_q(d);
    const double mx = *std::max_element(uptr, uptr + d);
    double z = 0.0;
    for (size_t i = 0; i < d; ++i) z += std::exp(uptr[i] - mx);
    const double lz = std::log(z);
    for (size_t i = 0; i < d; ++i) log_q[i] = uptr[i] - mx - lz;
    Vec dots(num_pop);
    kernels.gemv(p_rows.data().data(), num_pop, d, log_q.data(),
                 dots.data());
    double acc = 0.0;
    for (size_t t = 0; t < num_pop; ++t) acc += self_terms[t] - dots[t];
    partial[ui] = acc;
  }
  double total = 0.0;
  for (double p : partial) total += p;
  return total / (static_cast<double>(num_pop) *
                  static_cast<double>(covered_users.size()));
}

struct RegressionWorld {
  World w;
  std::unique_ptr<Dataset> train;
  Matrix embeddings;
  // NOTE: build a BenignEvalView over `embeddings` at the use site; a
  // view stored here would dangle if the struct were moved.
};

RegressionWorld MakeRegressionWorld(ModelKind kind, int num_users,
                                    int n_items, int dim, uint64_t seed) {
  RegressionWorld rw;
  rw.w = MakeWorld(kind, n_items, dim, seed);
  Rng rng(seed + 1);
  std::vector<Interaction> raw;
  for (int u = 0; u < num_users; ++u) {
    for (int j : rng.SampleWithoutReplacement(n_items, n_items / 4)) {
      raw.push_back({u, j});
    }
  }
  auto ds = Dataset::FromInteractions(num_users, n_items, raw);
  EXPECT_TRUE(ds.ok());
  rw.train = std::make_unique<Dataset>(std::move(*ds));
  rw.embeddings =
      Matrix(static_cast<size_t>(num_users), static_cast<size_t>(dim));
  for (int u = 0; u < num_users; ++u) {
    Rng fork = rng.Fork();
    rw.embeddings.SetRow(static_cast<size_t>(u),
                         rw.w.model->InitUserEmbedding(fork));
  }
  return rw;
}

// PIECK_GOLDEN_STRICT=0 downgrades the golden comparison from bitwise
// to a tolerance (for exotic platforms whose libm produces different
// embeddings at init). Default is strict: the serving rewiring must not
// move any metric value by even one ULP relative to the full scan.
bool GoldenStrict() {
  const char* env = std::getenv("PIECK_GOLDEN_STRICT");
  return env == nullptr || std::string(env) != "0";
}

void ExpectGoldenEq(double got, double want, const std::string& what) {
  if (GoldenStrict()) {
    EXPECT_EQ(Bits(got), Bits(want)) << what << " got=" << got
                                     << " want=" << want;
  } else {
    EXPECT_NEAR(got, want, 1e-12) << what;
  }
}

class MetricRegressionTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(MetricRegressionTest, ServingPathReproducesFullScanMetricsBitwise) {
  RegressionWorld rw =
      MakeRegressionWorld(GetParam(), /*num_users=*/14, /*n_items=*/60,
                          /*dim=*/8, /*seed=*/71);
  const RecModel& model = *rw.w.model;
  const GlobalModel& g = rw.w.global;
  const BenignEvalView view(&rw.embeddings);
  const std::vector<int> targets = {0, 7, 31, 59};
  for (int k : {1, 5, 20, 60, 75}) {
    ExpectGoldenEq(ExposureRatioAtK(model, g, view, *rw.train, targets, k),
                   ReferenceEr(model, g, view, *rw.train, targets, k),
                   "ER@" + std::to_string(k));
  }
  std::vector<int> test_items(14);
  Rng rng(72);
  for (int u = 0; u < 14; ++u) {
    test_items[static_cast<size_t>(u)] =
        u % 5 == 0 ? -1 : static_cast<int>(rng.UniformInt(0, 59));
  }
  for (int k : {1, 3, 10}) {
    ExpectGoldenEq(
        HitRatioAtK(model, g, view, *rw.train, test_items, k,
                    /*num_negatives=*/8, /*seed=*/99),
        ReferenceHr(model, g, view, *rw.train, test_items, k, 8, 99),
        "HR@" + std::to_string(k));
  }
  ExpectGoldenEq(PairwiseKlDivergence(g, view, *rw.train, {0, 1, 2}),
                 ReferencePkl(g, view, *rw.train, {0, 1, 2}), "PKL");
}

INSTANTIATE_TEST_SUITE_P(Models, MetricRegressionTest,
                         ::testing::Values(ModelKind::kMatrixFactorization,
                                           ModelKind::kNeuralCf),
                         [](const ::testing::TestParamInfo<ModelKind>& i) {
                           return i.param == ModelKind::kMatrixFactorization
                                      ? "mf"
                                      : "ncf";
                         });

TEST(MetricRegressionTest, DenseUserHrFallbackUnchanged) {
  // A user so dense that rejection sampling cannot fill the negative
  // sample: HR must take the full-scan fallback on both sides and
  // agree bitwise.
  const int n = 12;
  World w = MakeWorld(ModelKind::kMatrixFactorization, n, 6, 81);
  std::vector<Interaction> raw;
  for (int j = 0; j < 10; ++j) raw.push_back({0, j});
  raw.push_back({1, 0});  // a sparse user alongside, sampled normally
  auto ds = Dataset::FromInteractions(2, n, raw);
  ASSERT_TRUE(ds.ok());
  Matrix embeddings(2, 6);
  Rng rng(82);
  for (int u = 0; u < 2; ++u) {
    Rng fork = rng.Fork();
    embeddings.SetRow(static_cast<size_t>(u),
                      w.model->InitUserEmbedding(fork));
  }
  BenignEvalView view(&embeddings);
  const std::vector<int> test_items = {10, 5};
  for (uint64_t seed : {7u, 99u}) {
    ExpectGoldenEq(
        HitRatioAtK(*w.model, w.global, view, *ds, test_items, 2,
                    /*num_negatives=*/5, seed),
        ReferenceHr(*w.model, w.global, view, *ds, test_items, 2, 5, seed),
        "dense HR seed=" + std::to_string(seed));
  }
}

TEST(ServingFootprintTest, ReportsCachesAndScalesWithQuantization) {
  World w = MakeWorld(ModelKind::kMatrixFactorization, 256, 16, 90);
  const TopKServer plain(*w.model, w.global);
  TopKServerOptions opt;
  opt.quantized = true;
  const TopKServer quant(*w.model, w.global, opt);
  EXPECT_GT(plain.FootprintBytes(), 0);
  // The int8 table adds rows * cols codes plus per-row scales.
  EXPECT_GE(quant.FootprintBytes(),
            plain.FootprintBytes() + 256 * 16 + 256 * 8);
}

}  // namespace
}  // namespace pieck
