// Bounded-staleness round engine (fed/server.h, AsyncConfig).
//
// The contracts under test:
//   - depth 1 `RunRounds` is the synchronous engine bit for bit (a
//     plain RunRound loop), for both MF and DL-FRS;
//   - any pipeline depth is bit-deterministic across thread counts,
//     with and without staleness weighting, for linear and robust
//     aggregators (the static schedule fixes which model version every
//     round trains against);
//   - the staleness telemetry follows that static schedule exactly
//     (round i's uploads apply with staleness min(i, depth-1));
//   - the staleness-weighted apply rule w(s) = decay^s matches hand
//     math for linear and robust rules, and `max_staleness` drops (and
//     counts) too-stale uploads without touching the model.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulation.h"
#include "defense/robust_aggregators.h"
#include "fed/aggregator.h"
#include "fed/server.h"
#include "model/mf_model.h"

namespace pieck {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.05);
  config.embedding_dim = 8;
  config.rounds = 6;
  config.users_per_round = 16;
  config.attack = AttackKind::kPieckIpe;
  config.malicious_fraction = 0.1;
  config.seed = 20240808;
  return config;
}

std::unique_ptr<Simulation> MustCreate(const ExperimentConfig& config) {
  StatusOr<std::unique_ptr<Simulation>> sim = Simulation::Create(config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return std::move(sim).value();
}

// --- depth 1 == synchronous engine, bit for bit -----------------------

TEST(AsyncEngineTest, Depth1RunRoundsBitIdenticalToRunRoundLoop) {
  ExperimentConfig config = SmallConfig();
  std::unique_ptr<Simulation> loop = MustCreate(config);
  config.pipeline_depth = 1;  // explicit, for the reader
  std::unique_ptr<Simulation> block = MustCreate(config);

  std::vector<RoundStats> loop_stats;
  for (int r = 0; r < 6; ++r) loop_stats.push_back(loop->RunRound());
  std::vector<RoundStats> block_stats;
  block->RunRounds(6, &block_stats);

  ASSERT_EQ(block_stats.size(), 6u);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(loop_stats[r].num_selected, block_stats[r].num_selected);
    EXPECT_EQ(block_stats[r].pipeline_depth, 1);
    EXPECT_DOUBLE_EQ(block_stats[r].mean_staleness, 0.0);
    EXPECT_EQ(block_stats[r].dropped_stale, 0);
  }
  ASSERT_EQ(loop->global().item_embeddings, block->global().item_embeddings);
  EXPECT_EQ(loop->server().model_version(), block->server().model_version());
}

TEST(AsyncEngineTest, Depth1DlfrsAlsoBitIdentical) {
  ExperimentConfig config = SmallConfig();
  config.model_kind = ModelKind::kNeuralCf;
  std::unique_ptr<Simulation> loop = MustCreate(config);
  std::unique_ptr<Simulation> block = MustCreate(config);

  for (int r = 0; r < 4; ++r) loop->RunRound();
  block->RunRounds(4);

  const GlobalModel& a = loop->global();
  const GlobalModel& b = block->global();
  ASSERT_EQ(a.item_embeddings, b.item_embeddings);
  for (size_t l = 0; l < a.mlp_weights.size(); ++l) {
    EXPECT_EQ(a.mlp_weights[l], b.mlp_weights[l]) << "layer " << l;
    EXPECT_EQ(a.mlp_biases[l], b.mlp_biases[l]) << "layer " << l;
  }
  EXPECT_EQ(a.projection, b.projection);
}

// --- pipelined depths are deterministic across thread counts ----------

TEST(AsyncEngineTest, PipelinedDepthsDeterministicAcrossThreadCounts) {
  for (int depth : {2, 4}) {
    ExperimentConfig base = SmallConfig();
    base.pipeline_depth = depth;
    base.staleness_decay = 0.8;  // exercises the weighted linear path
    base.num_threads = 1;
    ExperimentConfig wide = base;
    wide.num_threads = 0;  // one worker per hardware thread

    std::unique_ptr<Simulation> serial = MustCreate(base);
    std::unique_ptr<Simulation> threaded = MustCreate(wide);
    serial->RunRounds(6);
    threaded->RunRounds(6);
    ASSERT_EQ(serial->global().item_embeddings,
              threaded->global().item_embeddings)
        << "depth " << depth;
    EXPECT_DOUBLE_EQ(serial->EvaluateEr(10), threaded->EvaluateEr(10))
        << "depth " << depth;
  }
}

TEST(AsyncEngineTest, PipelinedRobustAggregatorDeterministicWithWeights) {
  for (DefenseKind defense : {DefenseKind::kMedian, DefenseKind::kTrimmedMean,
                              DefenseKind::kNormBound}) {
    ExperimentConfig base = SmallConfig();
    base.defense = defense;
    base.pipeline_depth = 2;
    base.staleness_decay = 0.5;  // exercises the scaled-copy robust path
    base.num_threads = 1;
    ExperimentConfig wide = base;
    wide.num_threads = 4;

    std::unique_ptr<Simulation> serial = MustCreate(base);
    std::unique_ptr<Simulation> threaded = MustCreate(wide);
    serial->RunRounds(5);
    threaded->RunRounds(5);
    ASSERT_EQ(serial->global().item_embeddings,
              threaded->global().item_embeddings)
        << "defense kind " << DefenseKindToString(defense);
  }
}

TEST(AsyncEngineTest, PipelinedRunIsReproducibleRunToRun) {
  ExperimentConfig config = SmallConfig();
  config.pipeline_depth = 3;
  config.num_threads = 0;
  std::unique_ptr<Simulation> a = MustCreate(config);
  std::unique_ptr<Simulation> b = MustCreate(config);
  a->RunRounds(6);
  b->RunRounds(6);
  ASSERT_EQ(a->global().item_embeddings, b->global().item_embeddings);
}

// --- the static staleness schedule ------------------------------------

TEST(AsyncEngineTest, StalenessTelemetryFollowsStaticSchedule) {
  ExperimentConfig config = SmallConfig();
  config.pipeline_depth = 2;
  std::unique_ptr<Simulation> sim = MustCreate(config);
  std::vector<RoundStats> stats;
  sim->RunRounds(5, &stats);

  ASSERT_EQ(stats.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    // Round i trains against version base + max(0, i - 1) and applies
    // at version base + i: staleness min(i, depth-1) for every upload.
    const int expected = std::min(i, 1);
    EXPECT_EQ(stats[i].pipeline_depth, 2) << "round " << i;
    EXPECT_DOUBLE_EQ(stats[i].mean_staleness, expected) << "round " << i;
    EXPECT_EQ(stats[i].max_staleness, expected) << "round " << i;
    EXPECT_EQ(stats[i].dropped_stale, 0) << "round " << i;
    ASSERT_EQ(stats[i].staleness_counts.size(),
              static_cast<size_t>(expected) + 1)
        << "round " << i;
    EXPECT_EQ(stats[i].staleness_counts[static_cast<size_t>(expected)],
              stats[i].num_selected)
        << "round " << i;
  }
  EXPECT_EQ(sim->server().model_version(), 5);
}

// --- the staleness-weighted apply rule, against hand math -------------

class AsyncServerFixture : public ::testing::Test {
 protected:
  void Build(AsyncConfig async, std::unique_ptr<Aggregator> aggregator) {
    model_ = std::make_unique<MfModel>(2);
    Rng rng(71);
    GlobalModel g = model_->InitGlobalModel(4, rng);
    ServerConfig config;
    config.learning_rate = 1.0;
    config.users_per_round = 2;
    config.async = async;
    server_ = std::make_unique<FederatedServer>(*model_, std::move(g), config,
                                                std::move(aggregator));
  }

  /// Advances the live model version without touching any row.
  void BumpVersion() { server_->ApplyUpdates({}); }

  std::unique_ptr<MfModel> model_;
  std::unique_ptr<FederatedServer> server_;
};

TEST_F(AsyncServerFixture, LinearRuleScalesStaleUploadByDecayPower) {
  AsyncConfig async;
  async.staleness_decay = 0.5;
  Build(async, std::make_unique<SumAggregator>());
  BumpVersion();
  BumpVersion();
  ASSERT_EQ(server_->model_version(), 2);
  const GlobalModel before = server_->global();

  ClientUpdate current, stale, older;
  current.AccumulateItemGrad(1, {1.0, 0.0});
  current.model_version = 2;  // staleness 0 -> weight 1
  stale.AccumulateItemGrad(1, {1.0, 0.0});
  stale.model_version = 1;  // staleness 1 -> weight 0.5
  older.AccumulateItemGrad(1, {1.0, 0.0});
  older.model_version = 0;  // staleness 2 -> weight 0.25

  RoundStats stats;
  server_->ApplyUpdates({current, stale, older}, &stats);
  EXPECT_DOUBLE_EQ(server_->global().item_embeddings.At(1, 0),
                   before.item_embeddings.At(1, 0) - (1.0 + 0.5 + 0.25));
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 1.0);
  EXPECT_EQ(stats.max_staleness, 2);
  ASSERT_EQ(stats.staleness_counts.size(), 3u);
  EXPECT_EQ(stats.staleness_counts[0], 1);
  EXPECT_EQ(stats.staleness_counts[1], 1);
  EXPECT_EQ(stats.staleness_counts[2], 1);
}

TEST_F(AsyncServerFixture, SentinelVersionMeansCurrentEverywhere) {
  AsyncConfig async;
  async.staleness_decay = 0.5;
  async.max_staleness = 0;
  Build(async, std::make_unique<SumAggregator>());
  BumpVersion();
  BumpVersion();
  const GlobalModel before = server_->global();

  ClientUpdate upd;  // model_version stays -1: "current", never stale
  upd.AccumulateItemGrad(0, {2.0, 0.0});
  RoundStats stats;
  server_->ApplyUpdates({upd}, &stats);
  EXPECT_DOUBLE_EQ(server_->global().item_embeddings.At(0, 0),
                   before.item_embeddings.At(0, 0) - 2.0);
  EXPECT_EQ(stats.dropped_stale, 0);
}

TEST_F(AsyncServerFixture, RobustRuleAggregatesScaledGradients) {
  AsyncConfig async;
  async.staleness_decay = 0.5;
  Build(async, std::make_unique<MedianAggregator>());
  BumpVersion();
  const GlobalModel before = server_->global();

  // Coordinate 0 values 4, 10, 6 — but the third upload is one version
  // stale, so the (sum-calibrated, n x median) rule runs over
  // {4, 10, 3}: n x median = 12. Scaling after aggregation instead
  // would give n x median{4, 10, 6} = 18 — the stale gradient must be
  // scaled *before* aggregation.
  ClientUpdate a, b, c;
  a.AccumulateItemGrad(2, {4.0, 0.0});
  a.model_version = 1;
  b.AccumulateItemGrad(2, {10.0, 0.0});
  b.model_version = 1;
  c.AccumulateItemGrad(2, {6.0, 0.0});
  c.model_version = 0;  // staleness 1 -> scaled to 3.0

  server_->ApplyUpdates({a, b, c});
  EXPECT_DOUBLE_EQ(server_->global().item_embeddings.At(2, 0),
                   before.item_embeddings.At(2, 0) - 12.0);
}

TEST_F(AsyncServerFixture, MaxStalenessDropsAndCountsWithoutApplying) {
  AsyncConfig async;
  async.max_staleness = 0;
  Build(async, std::make_unique<SumAggregator>());
  BumpVersion();
  ASSERT_EQ(server_->model_version(), 1);
  const GlobalModel before = server_->global();

  ClientUpdate fresh, expired;
  fresh.AccumulateItemGrad(0, {1.0, 0.0});
  fresh.model_version = 1;  // staleness 0: applied
  expired.AccumulateItemGrad(3, {5.0, 0.0});
  expired.model_version = 0;  // staleness 1 > max 0: dropped

  RoundStats stats;
  server_->ApplyUpdates({fresh, expired}, &stats);
  EXPECT_EQ(stats.dropped_stale, 1);
  EXPECT_EQ(stats.max_staleness, 0);
  ASSERT_EQ(stats.staleness_counts.size(), 1u);
  EXPECT_EQ(stats.staleness_counts[0], 1);
  // The dropped upload's item row is untouched; the fresh one applied.
  EXPECT_EQ(server_->global().item_embeddings.Row(3),
            before.item_embeddings.Row(3));
  EXPECT_DOUBLE_EQ(server_->global().item_embeddings.At(0, 0),
                   before.item_embeddings.At(0, 0) - 1.0);
}

TEST_F(AsyncServerFixture, DropEverythingStillAdvancesTheVersion) {
  AsyncConfig async;
  async.max_staleness = 0;
  Build(async, std::make_unique<SumAggregator>());
  BumpVersion();
  const GlobalModel before = server_->global();

  ClientUpdate expired;
  expired.AccumulateItemGrad(1, {5.0, 0.0});
  expired.model_version = 0;
  RoundStats stats;
  server_->ApplyUpdates({expired}, &stats);
  EXPECT_EQ(stats.dropped_stale, 1);
  EXPECT_DOUBLE_EQ(stats.mean_staleness, 0.0);
  EXPECT_TRUE(stats.staleness_counts.empty());
  EXPECT_EQ(server_->global().item_embeddings, before.item_embeddings);
  EXPECT_EQ(server_->model_version(), 2);
}

// Pipelined rounds with a drop bound tighter than the schedule's
// staleness: every post-warmup upload exceeds max_staleness and must be
// discarded — the model only moves in the rounds that train current.
TEST(AsyncEngineTest, PipelineDropStaleEdgeCase) {
  ExperimentConfig config = SmallConfig();
  config.pipeline_depth = 3;  // steady-state staleness 2
  config.max_staleness = 1;   // ... which exceeds the bound
  std::unique_ptr<Simulation> sim = MustCreate(config);
  std::vector<RoundStats> stats;
  sim->RunRounds(5, &stats);

  ASSERT_EQ(stats.size(), 5u);
  // Rounds 0 and 1 train at staleness 0 and 1 (pipeline fill): applied.
  EXPECT_EQ(stats[0].dropped_stale, 0);
  EXPECT_EQ(stats[1].dropped_stale, 0);
  // From round 2 on the static schedule pins staleness at 2: dropped.
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(stats[i].dropped_stale, stats[i].num_selected)
        << "round " << i;
    EXPECT_TRUE(stats[i].staleness_counts.empty()) << "round " << i;
  }
}

}  // namespace
}  // namespace pieck
