#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/negative_sampler.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace pieck {
namespace {

Dataset TinyDataset() {
  // 3 users, 4 items. Item 0 popular (3 hits), item 1 two hits,
  // item 2 one hit, item 3 cold.
  auto ds = Dataset::FromInteractions(
      3, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(ds.ok());
  return *ds;
}

TEST(DatasetTest, BasicCounts) {
  Dataset ds = TinyDataset();
  EXPECT_EQ(ds.num_users(), 3);
  EXPECT_EQ(ds.num_items(), 4);
  EXPECT_EQ(ds.num_interactions(), 6);
  EXPECT_DOUBLE_EQ(ds.InteractionRate(), 2.0);
}

TEST(DatasetTest, DeduplicatesInteractions) {
  auto ds = Dataset::FromInteractions(1, 2, {{0, 1}, {0, 1}, {0, 1}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_interactions(), 1);
}

TEST(DatasetTest, RejectsOutOfRange) {
  EXPECT_FALSE(Dataset::FromInteractions(1, 1, {{0, 5}}).ok());
  EXPECT_FALSE(Dataset::FromInteractions(1, 1, {{2, 0}}).ok());
  EXPECT_FALSE(Dataset::FromInteractions(1, 1, {{-1, 0}}).ok());
}

TEST(DatasetTest, InteractedLookup) {
  Dataset ds = TinyDataset();
  EXPECT_TRUE(ds.Interacted(0, 1));
  EXPECT_FALSE(ds.Interacted(0, 2));
  EXPECT_FALSE(ds.Interacted(2, 3));
}

TEST(DatasetTest, PopularityCounts) {
  Dataset ds = TinyDataset();
  const auto& pop = ds.ItemPopularity();
  EXPECT_EQ(pop[0], 3);
  EXPECT_EQ(pop[1], 2);
  EXPECT_EQ(pop[2], 1);
  EXPECT_EQ(pop[3], 0);
}

TEST(DatasetTest, PopularityOrderAndRank) {
  Dataset ds = TinyDataset();
  std::vector<int> order = ds.ItemsByPopularity();
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[3], 3);
  std::vector<int> rank = ds.PopularityRank();
  EXPECT_EQ(rank[0], 0);
  EXPECT_EQ(rank[3], 3);
}

TEST(DatasetTest, TopPopularItemsFraction) {
  Dataset ds = TinyDataset();
  std::vector<int> top = ds.TopPopularItems(0.5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0);
  EXPECT_EQ(top[1], 1);
  EXPECT_TRUE(ds.TopPopularItems(0.0).empty());
}

TEST(DatasetTest, InteractionShare) {
  Dataset ds = TinyDataset();
  // Top 25% = item 0 with 3 of 6 interactions.
  EXPECT_DOUBLE_EQ(ds.InteractionShareOfTopItems(0.25), 0.5);
}

TEST(DatasetTest, Sparsity) {
  Dataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(ds.Sparsity(), 1.0 - 6.0 / 12.0);
}

TEST(DatasetTest, WithoutInteraction) {
  Dataset ds = TinyDataset();
  Dataset smaller = ds.WithoutInteraction(1, 2);
  EXPECT_EQ(smaller.num_interactions(), 5);
  EXPECT_FALSE(smaller.Interacted(1, 2));
  // Removing a non-existent interaction is a no-op.
  Dataset same = ds.WithoutInteraction(2, 3);
  EXPECT_EQ(same.num_interactions(), 6);
}

TEST(SyntheticTest, RespectsConfiguredCounts) {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 80;
  config.num_interactions = 600;
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 50);
  EXPECT_EQ(ds->num_items(), 80);
  EXPECT_NEAR(static_cast<double>(ds->num_interactions()), 600.0, 60.0);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto a = GenerateSynthetic(config);
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_interactions(), b->num_interactions());
  for (int u = 0; u < a->num_users(); ++u) {
    EXPECT_EQ(a->ItemsOf(u), b->ItemsOf(u));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto a = GenerateSynthetic(config);
  config.seed += 1;
  auto b = GenerateSynthetic(config);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (int u = 0; u < a->num_users() && !any_diff; ++u) {
    any_diff = a->ItemsOf(u) != b->ItemsOf(u);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, EveryUserHasMinimumInteractions) {
  SyntheticConfig config = MovieLens100KConfig(0.2);
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  for (int u = 0; u < ds->num_users(); ++u) {
    EXPECT_GE(static_cast<int>(ds->ItemsOf(u).size()),
              config.min_user_interactions)
        << "user " << u;
  }
}

TEST(SyntheticTest, RejectsInvalidConfigs) {
  SyntheticConfig config;
  config.num_users = 0;
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig();
  config.num_interactions = config.num_users - 1;  // below 1 per user
  EXPECT_FALSE(GenerateSynthetic(config).ok());
  config = SyntheticConfig();
  config.num_users = 2;
  config.num_items = 2;
  config.num_interactions = 100;  // more than cells
  EXPECT_FALSE(GenerateSynthetic(config).ok());
}

/// Fig. 3's long-tail property must hold for every dataset preset: the
/// top 15% of items receive more than half of all interactions.
class SyntheticLongTail
    : public ::testing::TestWithParam<SyntheticConfig> {};

TEST_P(SyntheticLongTail, Top15PercentHoldsMajorityOfInteractions) {
  auto ds = GenerateSynthetic(GetParam());
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(ds->InteractionShareOfTopItems(0.15), 0.5);
}

TEST_P(SyntheticLongTail, SparsityIsHigh) {
  auto ds = GenerateSynthetic(GetParam());
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(ds->Sparsity(), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Presets, SyntheticLongTail,
                         ::testing::Values(MovieLens100KConfig(0.3),
                                           MovieLens100KConfig(1.0),
                                           MovieLens1MConfig(0.1),
                                           AmazonDigitalMusicConfig(0.15)));

TEST(SplitTest, HoldsOutOneItemPerEligibleUser) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto full = GenerateSynthetic(config);
  ASSERT_TRUE(full.ok());
  Rng rng(5);
  auto split = MakeLeaveOneOutSplit(*full, rng);
  ASSERT_TRUE(split.ok());
  for (int u = 0; u < full->num_users(); ++u) {
    int held = split->test_item[static_cast<size_t>(u)];
    if (full->ItemsOf(u).size() >= 2) {
      ASSERT_GE(held, 0);
      EXPECT_TRUE(full->Interacted(u, held));
      EXPECT_FALSE(split->train.Interacted(u, held));
      EXPECT_EQ(split->train.ItemsOf(u).size(), full->ItemsOf(u).size() - 1);
    } else {
      EXPECT_EQ(held, -1);
    }
  }
}

TEST(SplitTest, TrainPlusTestEqualsFull) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto full = GenerateSynthetic(config);
  ASSERT_TRUE(full.ok());
  Rng rng(6);
  auto split = MakeLeaveOneOutSplit(*full, rng);
  ASSERT_TRUE(split.ok());
  int64_t held_out = 0;
  for (int t : split->test_item) held_out += t >= 0 ? 1 : 0;
  EXPECT_EQ(split->train.num_interactions() + held_out,
            full->num_interactions());
}

TEST(NegativeSamplerTest, LabelsAndRatio) {
  Dataset ds = TinyDataset();
  NegativeSampler sampler(1.0);
  Rng rng(7);
  auto batch = sampler.SampleBatch(ds, 1, rng);  // user 1 has 3 positives
  int pos = 0, neg = 0;
  for (const auto& ex : batch) (ex.label > 0.5 ? pos : neg)++;
  EXPECT_EQ(pos, 3);
  // Only one uninteracted item exists for user 1.
  EXPECT_EQ(neg, 1);
}

TEST(NegativeSamplerTest, NegativesAreUninteractedAndDistinct) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  NegativeSampler sampler(2.0);
  Rng rng(8);
  auto batch = sampler.SampleBatch(*ds, 0, rng);
  std::set<int> negatives;
  int pos = 0;
  for (const auto& ex : batch) {
    if (ex.label > 0.5) {
      ++pos;
      EXPECT_TRUE(ds->Interacted(0, ex.item));
    } else {
      EXPECT_FALSE(ds->Interacted(0, ex.item));
      EXPECT_TRUE(negatives.insert(ex.item).second) << "duplicate negative";
    }
  }
  EXPECT_EQ(pos, static_cast<int>(ds->ItemsOf(0).size()));
  EXPECT_EQ(static_cast<int>(negatives.size()), 2 * pos);
}

TEST(NegativeSamplerTest, ZeroRatioMeansNoNegatives) {
  Dataset ds = TinyDataset();
  NegativeSampler sampler(0.0);
  Rng rng(9);
  auto batch = sampler.SampleBatch(ds, 0, rng);
  for (const auto& ex : batch) EXPECT_GT(ex.label, 0.5);
}

TEST(NegativeSamplerTest, LargeQSaturatesAtPool) {
  Dataset ds = TinyDataset();
  NegativeSampler sampler(100.0);
  Rng rng(10);
  // User 0: 2 positives, 2 uninteracted items.
  auto batch = sampler.SampleBatch(ds, 0, rng);
  int neg = 0;
  for (const auto& ex : batch) neg += ex.label < 0.5 ? 1 : 0;
  EXPECT_EQ(neg, 2);
}

// The span entry point reused by the store's round path must sample
// draw-for-draw identically to the Dataset convenience wrapper, and its
// scratch must be reusable across calls without influencing results.
TEST(NegativeSamplerTest, SpanPathMatchesDatasetPathBitForBit) {
  SyntheticConfig config = MovieLens100KConfig(0.1);
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  NegativeSampler sampler(1.5);
  NegativeSampler::Scratch scratch;
  std::vector<LabeledItem> batch;
  for (int user : {0, 3, 7}) {
    Rng rng_a(41);
    Rng rng_b(41);
    auto reference = sampler.SampleBatch(*ds, user, rng_a);
    const std::vector<int>& positives = ds->ItemsOf(user);
    sampler.SampleBatchInto(positives.data(), positives.size(),
                            ds->num_items(), rng_b, &batch, &scratch);
    ASSERT_EQ(batch.size(), reference.size()) << "user " << user;
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].item, reference[i].item);
      EXPECT_EQ(batch[i].label, reference[i].label);
    }
  }
}

// One immutable popularity table shared by any number of samplers: the
// callers' Rng streams carry all per-call state, so concurrent sharing
// changes nothing, and popularity-proportional draws favor the head of
// the distribution.
TEST(PopularityTableTest, SharedTableSkewsNegativesTowardPopularItems) {
  SyntheticConfig config = MovieLens100KConfig(0.15);
  auto ds = GenerateSynthetic(config);
  ASSERT_TRUE(ds.ok());
  auto table = PopularityTable::Build(*ds, /*alpha=*/1.0);
  EXPECT_GT(table->FootprintBytes(), 0);
  ASSERT_EQ(static_cast<int>(table->cdf.size()), ds->num_items());

  // Two samplers sharing the one table; determinism is per caller-Rng.
  NegativeSampler a(2.0, table);
  NegativeSampler b(2.0, table);
  Rng rng_a(5);
  Rng rng_b(5);
  auto batch_a = a.SampleBatch(*ds, 2, rng_a);
  auto batch_b = b.SampleBatch(*ds, 2, rng_b);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i].item, batch_b[i].item);
  }

  // Weighted negatives concentrate on popular items: their mean
  // popularity rank must clearly beat uniform sampling's.
  std::vector<int> rank = ds->PopularityRank();
  auto mean_negative_rank = [&](const NegativeSampler& sampler) {
    Rng rng(17);
    double total = 0.0;
    int count = 0;
    for (int user = 0; user < 40; ++user) {
      auto batch = sampler.SampleBatch(*ds, user, rng);
      for (const auto& ex : batch) {
        if (ex.label < 0.5) {
          total += rank[static_cast<size_t>(ex.item)];
          ++count;
        }
      }
    }
    return total / count;
  };
  NegativeSampler uniform(2.0);
  EXPECT_LT(mean_negative_rank(a), 0.8 * mean_negative_rank(uniform));
}

}  // namespace
}  // namespace pieck
