// Verifies the tentpole guarantee of the threaded round engine: a
// simulation run with a ThreadPool of any size produces a global model
// that is bit-identical to the serial path, round for round.

#include <memory>

#include <gtest/gtest.h>

#include "core/simulation.h"

namespace pieck {
namespace {

ExperimentConfig SmallConfig(int num_threads) {
  ExperimentConfig config;
  config.dataset = MovieLens100KConfig(0.05);
  config.embedding_dim = 8;
  config.rounds = 5;
  config.users_per_round = 16;
  config.num_threads = num_threads;
  config.attack = AttackKind::kPieckIpe;
  config.malicious_fraction = 0.1;
  config.seed = 20240731;
  return config;
}

std::unique_ptr<Simulation> MustCreate(const ExperimentConfig& config) {
  StatusOr<std::unique_ptr<Simulation>> sim = Simulation::Create(config);
  EXPECT_TRUE(sim.ok()) << sim.status().ToString();
  return std::move(sim).value();
}

TEST(FedDeterminismTest, RunRoundBitIdenticalForOneVsManyThreads) {
  std::unique_ptr<Simulation> serial = MustCreate(SmallConfig(1));
  std::unique_ptr<Simulation> threaded = MustCreate(SmallConfig(4));

  for (int r = 0; r < 5; ++r) {
    RoundStats a = serial->RunRound();
    RoundStats b = threaded->RunRound();
    EXPECT_EQ(a.num_selected, b.num_selected) << "round " << r;
    EXPECT_EQ(a.num_malicious_selected, b.num_malicious_selected)
        << "round " << r;
    ASSERT_EQ(serial->global().item_embeddings,
              threaded->global().item_embeddings)
        << "item embeddings diverged at round " << r;
  }
  // The evaluation layer fans out over the server pool (4 workers in the
  // threaded run, none in the serial run): metrics must agree bitwise.
  EXPECT_DOUBLE_EQ(serial->EvaluateEr(10), threaded->EvaluateEr(10));
  EXPECT_DOUBLE_EQ(serial->EvaluateHr(10), threaded->EvaluateHr(10));
}

// Robust (non-linear) aggregation exercises the span Aggregate path and
// its thread-local scratch: the model must stay bit-identical across
// thread counts for every aggregator family.
TEST(FedDeterminismTest, RobustAggregatorsBitIdenticalAcrossThreadCounts) {
  for (DefenseKind defense :
       {DefenseKind::kMedian, DefenseKind::kTrimmedMean, DefenseKind::kKrum,
        DefenseKind::kNormBound}) {
    ExperimentConfig base = SmallConfig(1);
    base.defense = defense;
    ExperimentConfig wide = base;
    wide.num_threads = 4;
    std::unique_ptr<Simulation> serial = MustCreate(base);
    std::unique_ptr<Simulation> threaded = MustCreate(wide);
    serial->RunRounds(3);
    threaded->RunRounds(3);
    ASSERT_EQ(serial->global().item_embeddings,
              threaded->global().item_embeddings)
        << "defense kind " << DefenseKindToString(defense);
    EXPECT_DOUBLE_EQ(serial->EvaluateEr(10), threaded->EvaluateEr(10));
  }
}

TEST(FedDeterminismTest, DlfrsInteractionParamsAlsoBitIdentical) {
  ExperimentConfig base = SmallConfig(1);
  base.model_kind = ModelKind::kNeuralCf;
  ExperimentConfig wide = base;
  wide.num_threads = 3;

  std::unique_ptr<Simulation> serial = MustCreate(base);
  std::unique_ptr<Simulation> threaded = MustCreate(wide);
  for (int r = 0; r < 3; ++r) {
    serial->RunRound();
    threaded->RunRound();
  }
  const GlobalModel& a = serial->global();
  const GlobalModel& b = threaded->global();
  ASSERT_EQ(a.item_embeddings, b.item_embeddings);
  ASSERT_EQ(a.mlp_weights.size(), b.mlp_weights.size());
  for (size_t l = 0; l < a.mlp_weights.size(); ++l) {
    EXPECT_EQ(a.mlp_weights[l], b.mlp_weights[l]) << "layer " << l;
    EXPECT_EQ(a.mlp_biases[l], b.mlp_biases[l]) << "layer " << l;
  }
  EXPECT_EQ(a.projection, b.projection);
}

TEST(FedDeterminismTest, ZeroMeansHardwareThreadsAndStaysDeterministic) {
  std::unique_ptr<Simulation> serial = MustCreate(SmallConfig(1));
  std::unique_ptr<Simulation> automatic = MustCreate(SmallConfig(0));
  serial->RunRounds(3);
  automatic->RunRounds(3);
  EXPECT_EQ(serial->global().item_embeddings,
            automatic->global().item_embeddings);
}

}  // namespace
}  // namespace pieck
