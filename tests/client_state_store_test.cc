// The virtualized benign population: proves the struct-of-arrays
// ClientStateStore round path is bit-identical to the pre-refactor
// one-object-per-user path, that lazy embedding initialization is
// order-independent, and that the CSR interaction view matches the
// Dataset on degenerate users.
//
// The object path is reproduced here verbatim as `LegacyBenignClient` —
// the exact BenignClient implementation this refactor removed — so the
// equivalence holds in every build type and on every libm, not just the
// machine that recorded the golden constants below.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "defense/regularized_defense.h"
#include "fed/client_state_store.h"
#include "fed/server.h"

namespace pieck {
namespace {

// ---------------------------------------------------------------------
// Digest plumbing.

uint64_t HashDoubles(uint64_t h, const double* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    h ^= bits;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t GlobalModelDigest(uint64_t h, const GlobalModel& g) {
  h = HashDoubles(h, g.item_embeddings.data().data(),
                  g.item_embeddings.data().size());
  for (size_t l = 0; l < g.mlp_weights.size(); ++l) {
    h = HashDoubles(h, g.mlp_weights[l].data().data(),
                    g.mlp_weights[l].data().size());
    h = HashDoubles(h, g.mlp_biases[l].data(), g.mlp_biases[l].size());
  }
  return HashDoubles(h, g.projection.data(), g.projection.size());
}

// ---------------------------------------------------------------------
// The pre-refactor benign client, verbatim (fed/client.cc at commit
// "PR 3"), kept here as the reference implementation the store must
// match bit for bit.

class LegacyBenignClient : public ClientInterface {
 public:
  LegacyBenignClient(int user_id, const RecModel& model, const Dataset& train,
                     NegativeSampler sampler, LossKind loss, double local_lr,
                     Rng rng, std::unique_ptr<ClientDefense> defense)
      : user_id_(user_id),
        model_(model),
        train_(train),
        sampler_(std::move(sampler)),
        loss_(loss),
        local_lr_(local_lr),
        rng_(rng),
        defense_(std::move(defense)) {
    user_embedding_ = model_.InitUserEmbedding(rng_);
  }

  bool is_malicious() const override { return false; }

  ClientUpdate ParticipateRound(const GlobalModel& g, int /*round*/) override {
    if (defense_ != nullptr) defense_->ObserveRound(g);
    std::vector<LabeledItem> batch =
        sampler_.SampleBatch(train_, user_id_, rng_);

    ClientUpdate update;
    update.interaction_grads = InteractionGrads::ZerosLike(g);
    Vec grad_u = Zeros(user_embedding_.size());
    InteractionGrads* igrads =
        update.interaction_grads.active ? &update.interaction_grads : nullptr;
    switch (loss_) {
      case LossKind::kBce:
        BceBatchForwardBackward(model_, g, user_embedding_, batch, &grad_u,
                                &update, igrads);
        break;
      case LossKind::kBpr:
        BprBatchForwardBackward(model_, g, user_embedding_, batch, &grad_u,
                                &update, igrads);
        break;
    }
    if (defense_ != nullptr) {
      defense_->ApplyRegularizers(g, user_embedding_, batch, &grad_u, &update);
    }
    Axpy(-local_lr_, grad_u, user_embedding_);
    return update;
  }

  const Vec& user_embedding() const { return user_embedding_; }

 private:
  int user_id_;
  const RecModel& model_;
  const Dataset& train_;
  NegativeSampler sampler_;
  LossKind loss_;
  double local_lr_;
  Rng rng_;
  std::unique_ptr<ClientDefense> defense_;
  Vec user_embedding_;
};

// ---------------------------------------------------------------------
// Object-path vs store-path equivalence.

struct EquivalenceCase {
  const char* name;
  ModelKind model_kind;
  LossKind loss;
  bool with_defense;
  bool with_malicious;
};

class StoreEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

/// One self-contained world both paths share: dataset, model, initial
/// global model, per-user seeds, malicious seeds, round seed.
struct World {
  std::unique_ptr<Dataset> train;
  std::unique_ptr<RecModel> model;
  GlobalModel initial;
  std::vector<uint64_t> user_seeds;
  std::vector<uint64_t> attack_seeds;   // MakeAttack seeds
  std::vector<uint64_t> client_seeds;   // MaliciousClient rng seeds
  double local_lr = 1.0;
  AttackConfig attack_config;
  uint64_t round_seed = 0;

  static World Build(const EquivalenceCase& c) {
    World w;
    auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
    EXPECT_TRUE(ds.ok());
    w.train = std::make_unique<Dataset>(std::move(*ds));
    w.model = MakeModel(c.model_kind, 8);
    w.local_lr = c.model_kind == ModelKind::kNeuralCf ? 0.005 : 1.0;

    Rng master(0xfeedULL);
    Rng init = master.Fork();
    w.initial = w.model->InitGlobalModel(w.train->num_items(), init);
    for (int u = 0; u < w.train->num_users(); ++u) {
      w.user_seeds.push_back(master.ForkSeed());
    }
    if (c.with_malicious) {
      w.attack_config.target_items = {1, 5};
      w.attack_config.server_learning_rate = w.local_lr;
      for (int i = 0; i < 3; ++i) {
        w.attack_seeds.push_back(master.ForkSeed());
        w.client_seeds.push_back(master.ForkSeed());
      }
    }
    w.round_seed = master.ForkSeed();
    return w;
  }

  std::unique_ptr<ClientDefense> MakeDefense(bool enabled) const {
    if (!enabled) return nullptr;
    return MakeRegularizedDefense(DefenseOptions{});
  }

  std::vector<std::unique_ptr<ClientInterface>> MakeMalicious() const {
    std::vector<std::unique_ptr<ClientInterface>> out;
    for (size_t i = 0; i < attack_seeds.size(); ++i) {
      auto attack = MakeAttack(AttackKind::kPieckIpe, *model, attack_config,
                               train.get(), attack_seeds[i]);
      out.push_back(std::make_unique<MaliciousClient>(std::move(attack),
                                                      Rng(client_seeds[i])));
    }
    return out;
  }

  FederatedServer MakeServer(int num_threads) const {
    ServerConfig config;
    config.learning_rate = local_lr;
    config.users_per_round = 16;
    config.num_threads = num_threads;
    return FederatedServer(*model, initial, config,
                           std::make_unique<SumAggregator>());
  }
};

TEST_P(StoreEquivalence, BitIdenticalToObjectPathForEveryThreadCount) {
  const EquivalenceCase c = GetParam();
  World w = World::Build(c);
  constexpr int kRounds = 4;

  // Reference: the pre-refactor object path, serial.
  std::vector<std::unique_ptr<ClientInterface>> legacy;
  std::vector<const LegacyBenignClient*> legacy_views;
  NegativeSampler sampler(1.0);
  for (int u = 0; u < w.train->num_users(); ++u) {
    auto client = std::make_unique<LegacyBenignClient>(
        u, *w.model, *w.train, sampler, c.loss, w.local_lr,
        Rng(w.user_seeds[static_cast<size_t>(u)]),
        w.MakeDefense(c.with_defense));
    legacy_views.push_back(client.get());
    legacy.push_back(std::move(client));
  }
  std::vector<std::unique_ptr<ClientInterface>> legacy_mal = w.MakeMalicious();
  for (auto& m : legacy_mal) legacy.push_back(std::move(m));
  std::vector<ClientInterface*> legacy_ptrs;
  for (auto& client : legacy) legacy_ptrs.push_back(client.get());

  FederatedServer legacy_server = w.MakeServer(/*num_threads=*/1);
  Rng legacy_rng(w.round_seed);
  for (int r = 0; r < kRounds; ++r) {
    legacy_server.RunRound(legacy_ptrs, r, legacy_rng);
  }
  uint64_t reference = GlobalModelDigest(0xcbf29ce484222325ULL,
                                         legacy_server.global());
  for (const LegacyBenignClient* v : legacy_views) {
    reference = HashDoubles(reference, v->user_embedding().data(),
                            v->user_embedding().size());
  }

  // Store path, serial and with a hardware-sized pool.
  for (int num_threads : {1, 0}) {
    ClientStateStore store(*w.model, *w.train,
                           std::make_shared<const NegativeSampler>(1.0),
                           c.loss, w.local_lr);
    store.set_user_seeds(w.user_seeds);
    if (c.with_defense) {
      store.set_defense_factory(
          [] { return MakeRegularizedDefense(DefenseOptions{}); });
    }
    std::vector<std::unique_ptr<ClientInterface>> malicious =
        w.MakeMalicious();
    std::vector<ClientInterface*> malicious_ptrs;
    for (auto& m : malicious) malicious_ptrs.push_back(m.get());

    FederatedServer server = w.MakeServer(num_threads);
    Rng rng(w.round_seed);
    for (int r = 0; r < kRounds; ++r) {
      RoundStats stats = server.RunRound(store, malicious_ptrs, r, rng);
      EXPECT_EQ(stats.uploads_built, stats.num_selected);
      EXPECT_GT(stats.store_footprint_bytes, 0);
    }
    uint64_t digest =
        GlobalModelDigest(0xcbf29ce484222325ULL, server.global());
    BenignEvalView view = store.EvalView();
    for (size_t ui = 0; ui < view.size(); ++ui) {
      digest = HashDoubles(digest, view.embedding(ui), view.dim());
    }
    EXPECT_EQ(digest, reference)
        << c.name << " diverged from the object path (num_threads="
        << num_threads << ")";

    // Only this round's participants ever materialized engines; the
    // rest of the population stayed at 8 bytes of RNG key.
    EXPECT_LE(store.materialized_rngs(), int64_t{16} * kRounds);
    if (c.with_defense) {
      EXPECT_EQ(store.materialized_defenses(), store.materialized_rngs());
    } else {
      EXPECT_EQ(store.materialized_defenses(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, StoreEquivalence,
    ::testing::Values(
        EquivalenceCase{"mf_bce", ModelKind::kMatrixFactorization,
                        LossKind::kBce, false, false},
        EquivalenceCase{"mf_bce_attack", ModelKind::kMatrixFactorization,
                        LossKind::kBce, false, true},
        EquivalenceCase{"mf_bce_defense", ModelKind::kMatrixFactorization,
                        LossKind::kBce, true, false},
        EquivalenceCase{"mf_bpr", ModelKind::kMatrixFactorization,
                        LossKind::kBpr, false, false},
        EquivalenceCase{"ncf_bce", ModelKind::kNeuralCf, LossKind::kBce,
                        false, false},
        EquivalenceCase{"ncf_bce_defense", ModelKind::kNeuralCf,
                        LossKind::kBce, true, true}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Golden round digests captured from the actual pre-refactor tree
// (commit 1528e41, Release, x86-64). The full Simulation pipeline —
// dataset, split, targets, attack population, round sampling — must
// keep producing these exact bits through the store path. Bit-level
// digests of transcendental-heavy runs can legitimately differ across
// libm implementations, so the hard assert is gated behind
// PIECK_GOLDEN_STRICT=1 (set it when running on glibc x86-64); without
// it the test still runs everything and reports, but skips on mismatch.

struct GoldenCase {
  const char* name;
  ModelKind model_kind;
  LossKind loss;
  AttackKind attack;
  DefenseKind defense;
  int rounds;
  uint64_t digest;
};

uint64_t SimulationDigest(const Simulation& sim) {
  uint64_t h = GlobalModelDigest(0xcbf29ce484222325ULL, sim.global());
  BenignEvalView view = sim.benign_eval_view();
  for (size_t ui = 0; ui < view.size(); ++ui) {
    Vec u = view.embedding_vec(ui);
    h = HashDoubles(h, u.data(), u.size());
  }
  return h;
}

TEST(ClientStateStoreGolden, SimulationMatchesPreRefactorDigests) {
  const GoldenCase cases[] = {
      {"mf_bce_ipe", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 5,
       0xb72a8d8c1b6417a5ULL},
      {"ncf_bce_ipe", ModelKind::kNeuralCf, LossKind::kBce,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 3,
       0xaf2ea0581f71d8c2ULL},
      {"mf_bce_uea_defense", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kPieckUea, DefenseKind::kOurs, 4, 0x5712cd6b31b27c81ULL},
      {"mf_bpr_ipe", ModelKind::kMatrixFactorization, LossKind::kBpr,
       AttackKind::kPieckIpe, DefenseKind::kNoDefense, 4,
       0xa7dc8e12c984615dULL},
      {"mf_bce_noattack", ModelKind::kMatrixFactorization, LossKind::kBce,
       AttackKind::kNone, DefenseKind::kNoDefense, 5, 0xf8c295331becc4a8ULL},
      {"ncf_bce_uea_defense", ModelKind::kNeuralCf, LossKind::kBce,
       AttackKind::kPieckUea, DefenseKind::kOurs, 3, 0xc9c00d271d190dc8ULL},
  };
  const bool strict = std::getenv("PIECK_GOLDEN_STRICT") != nullptr;

  for (const GoldenCase& c : cases) {
    ExperimentConfig config;
    config.dataset = MovieLens100KConfig(0.05);
    config.embedding_dim = 8;
    config.users_per_round = 16;
    config.num_threads = 1;
    config.model_kind = c.model_kind;
    config.loss = c.loss;
    config.attack = c.attack;
    config.malicious_fraction = c.attack == AttackKind::kNone ? 0.0 : 0.1;
    config.defense = c.defense;
    config.seed = 20260731;
    auto sim = Simulation::Create(config);
    ASSERT_TRUE(sim.ok()) << sim.status().ToString();
    (*sim)->RunRounds(c.rounds);
    const uint64_t digest = SimulationDigest(**sim);
    if (strict) {
      EXPECT_EQ(digest, c.digest) << c.name;
    } else if (digest != c.digest) {
      GTEST_SKIP() << c.name << ": digest " << std::hex << digest
                   << " != pre-refactor " << c.digest
                   << " (expected on non-glibc/x86-64 libm; set "
                      "PIECK_GOLDEN_STRICT=1 to enforce)";
    }
  }
}

// ---------------------------------------------------------------------
// Lazy initialization is order-independent.

TEST(ClientStateStoreTest, LazyInitOrderDoesNotChangeEmbeddings) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  auto model = MakeModel(ModelKind::kMatrixFactorization, 8);
  auto sampler = std::make_shared<const NegativeSampler>(1.0);

  Rng master(99);
  std::vector<uint64_t> seeds(static_cast<size_t>(ds->num_users()));
  for (uint64_t& s : seeds) s = master.ForkSeed();
  Rng ginit = master.Fork();
  GlobalModel g = model->InitGlobalModel(ds->num_items(), ginit);

  // Path A: evaluate first (forces every row), then train user 3.
  ClientStateStore eval_first(*model, *ds, sampler, LossKind::kBce, 1.0);
  eval_first.set_user_seeds(seeds);
  eval_first.EnsureAllEmbeddings();
  eval_first.PrepareRound({3});
  RoundScratch scratch;
  ClientUpdate upd;
  BenignClientLogic::ParticipateRound(eval_first, 3, g, 0, scratch, &upd);

  // Path B: train user 3 first, then force the remaining rows — and
  // force them through a pool, so first-touch order is nondeterministic.
  ClientStateStore train_first(*model, *ds, sampler, LossKind::kBce, 1.0);
  train_first.set_user_seeds(seeds);
  train_first.PrepareRound({3});
  BenignClientLogic::ParticipateRound(train_first, 3, g, 0, scratch, &upd);
  ThreadPool pool(4);
  train_first.EnsureAllEmbeddings(&pool);

  BenignEvalView a = eval_first.EvalView();
  BenignEvalView b = train_first.EvalView();
  ASSERT_EQ(a.size(), b.size());
  for (size_t ui = 0; ui < a.size(); ++ui) {
    ASSERT_EQ(a.embedding_vec(ui), b.embedding_vec(ui)) << "user " << ui;
  }
}

// A user first touched by evaluation must continue its stream correctly
// when it later participates: engine materialization replays the init
// draws, so training after evaluation equals training without it.
TEST(ClientStateStoreTest, EvaluationBeforeParticipationKeepsStream) {
  auto ds = GenerateSynthetic(MovieLens100KConfig(0.05));
  ASSERT_TRUE(ds.ok());
  auto model = MakeModel(ModelKind::kMatrixFactorization, 8);
  auto sampler = std::make_shared<const NegativeSampler>(1.0);
  Rng master(7);
  std::vector<uint64_t> seeds(static_cast<size_t>(ds->num_users()));
  for (uint64_t& s : seeds) s = master.ForkSeed();
  Rng ginit = master.Fork();
  GlobalModel g = model->InitGlobalModel(ds->num_items(), ginit);

  RoundScratch scratch;
  ClientUpdate upd_a, upd_b;

  ClientStateStore plain(*model, *ds, sampler, LossKind::kBce, 1.0);
  plain.set_user_seeds(seeds);
  plain.PrepareRound({5});
  BenignClientLogic::ParticipateRound(plain, 5, g, 0, scratch, &upd_a);

  ClientStateStore evaled(*model, *ds, sampler, LossKind::kBce, 1.0);
  evaled.set_user_seeds(seeds);
  evaled.EnsureAllEmbeddings();  // touch user 5 before it participates
  evaled.PrepareRound({5});
  BenignClientLogic::ParticipateRound(evaled, 5, g, 0, scratch, &upd_b);

  ASSERT_EQ(upd_a.item_grads.size(), upd_b.item_grads.size());
  for (size_t i = 0; i < upd_a.item_grads.size(); ++i) {
    EXPECT_EQ(upd_a.item_grads[i].first, upd_b.item_grads[i].first);
    EXPECT_EQ(upd_a.item_grads[i].second, upd_b.item_grads[i].second);
  }
}

// ---------------------------------------------------------------------
// CSR view correctness on degenerate users.

TEST(InteractionCsrTest, HandlesUsersWithZeroAndOneInteractions) {
  // User 0: two items; user 1: none; user 2: exactly one.
  auto ds = Dataset::FromInteractions(3, 4, {{0, 1}, {0, 3}, {2, 2}});
  ASSERT_TRUE(ds.ok());
  InteractionCsr csr(*ds);
  EXPECT_EQ(csr.num_users(), 3);
  EXPECT_EQ(csr.num_items(), 4);
  EXPECT_EQ(csr.num_interactions(), 3);

  InteractionCsr::Span u0 = csr.ItemsOf(0);
  ASSERT_EQ(u0.size, 2u);
  EXPECT_EQ(u0.data[0], 1);
  EXPECT_EQ(u0.data[1], 3);

  InteractionCsr::Span u1 = csr.ItemsOf(1);
  EXPECT_EQ(u1.size, 0u);
  EXPECT_TRUE(u1.empty());

  InteractionCsr::Span u2 = csr.ItemsOf(2);
  ASSERT_EQ(u2.size, 1u);
  EXPECT_EQ(u2.data[0], 2);

  // Spans agree with the Dataset adjacency for every user.
  for (int u = 0; u < ds->num_users(); ++u) {
    const std::vector<int>& expected = ds->ItemsOf(u);
    InteractionCsr::Span span = csr.ItemsOf(u);
    ASSERT_EQ(span.size, expected.size());
    EXPECT_TRUE(std::equal(span.begin(), span.end(), expected.begin()));
  }
}

TEST(ClientStateStoreTest, ZeroInteractionUserParticipatesWithEmptyUpload) {
  auto ds = Dataset::FromInteractions(2, 4, {{0, 1}});
  ASSERT_TRUE(ds.ok());
  auto model = MakeModel(ModelKind::kMatrixFactorization, 4);
  Rng rng(3);
  GlobalModel g = model->InitGlobalModel(4, rng);
  ClientStateStore store(*model, *ds,
                         std::make_shared<const NegativeSampler>(1.0),
                         LossKind::kBce, 1.0);
  store.PrepareRound({1});  // user 1 has no interactions
  RoundScratch scratch;
  ClientUpdate upd;
  double loss =
      BenignClientLogic::ParticipateRound(store, 1, g, 0, scratch, &upd);
  EXPECT_EQ(loss, 0.0);
  EXPECT_TRUE(upd.item_grads.empty());
}

}  // namespace
}  // namespace pieck
